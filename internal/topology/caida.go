package topology

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/idr"
)

// ReadCAIDA parses the CAIDA AS-relationship format:
//
//	# comment lines
//	<provider-as>|<customer-as>|-1
//	<peer-as>|<peer-as>|0
//
// Later serialisations add a fourth source field (e.g. "|bgp"), which
// is accepted and ignored. Duplicate links keep the first occurrence.
func ReadCAIDA(r io.Reader) (*Graph, error) {
	g := New()
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, "|")
		if len(fields) < 3 {
			return nil, fmt.Errorf("topology: caida line %d: want at least 3 |-separated fields, got %q", line, text)
		}
		a, err := parseASN(fields[0])
		if err != nil {
			return nil, fmt.Errorf("topology: caida line %d: %v", line, err)
		}
		b, err := parseASN(fields[1])
		if err != nil {
			return nil, fmt.Errorf("topology: caida line %d: %v", line, err)
		}
		rel, err := strconv.Atoi(strings.TrimSpace(fields[2]))
		if err != nil {
			return nil, fmt.Errorf("topology: caida line %d: bad relationship %q", line, fields[2])
		}
		var r Relationship
		switch rel {
		case 0:
			r = P2P
		case -1:
			r = P2C
		default:
			return nil, fmt.Errorf("topology: caida line %d: unknown relationship code %d", line, rel)
		}
		if g.HasEdge(a, b) {
			continue
		}
		if err := g.AddEdge(Edge{A: a, B: b, Rel: r}); err != nil {
			return nil, fmt.Errorf("topology: caida line %d: %v", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topology: reading caida data: %w", err)
	}
	return g, nil
}

func parseASN(s string) (idr.ASN, error) {
	v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad AS number %q", s)
	}
	return idr.ASN(v), nil
}

// WriteCAIDA serialises the graph in the CAIDA AS-relationship format,
// edges in deterministic order.
func WriteCAIDA(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# AS relationships (format: <as>|<as>|<rel>; -1 = provider|customer, 0 = peer|peer)"); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		code := 0
		if e.Rel == P2C {
			code = -1
		}
		if _, err := fmt.Fprintf(bw, "%d|%d|%d\n", uint32(e.A), uint32(e.B), code); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// InternetLikeConfig parameterises SynthesizeInternetLike.
type InternetLikeConfig struct {
	// ASes is the total number of ASes (>= 4).
	ASes int
	// Tier1s is the size of the fully-meshed top clique (default 3).
	Tier1s int
	// AvgProviders is the mean number of providers per non-tier-1 AS
	// (default 1.8, after measured multihoming rates).
	AvgProviders float64
	// PeerProb is the probability that two ASes at similar hierarchy
	// depth peer (default 0.05).
	PeerProb float64
}

func (c *InternetLikeConfig) setDefaults() {
	if c.Tier1s == 0 {
		c.Tier1s = 3
	}
	if c.AvgProviders == 0 {
		c.AvgProviders = 1.8
	}
	if c.PeerProb == 0 {
		c.PeerProb = 0.05
	}
}

// SynthesizeInternetLike generates a CAIDA-style AS graph: a tier-1
// clique of peers, a provider hierarchy grown by degree-preferential
// attachment, and lateral peering between ASes of similar depth. The
// real CAIDA dataset is no longer redistributable with this repo, so
// experiments use this generator (see DESIGN.md substitutions); the
// output round-trips through WriteCAIDA/ReadCAIDA.
func SynthesizeInternetLike(cfg InternetLikeConfig, rng *rand.Rand) (*Graph, error) {
	cfg.setDefaults()
	if cfg.ASes < cfg.Tier1s+1 {
		return nil, fmt.Errorf("topology: need more than %d ASes, got %d", cfg.Tier1s, cfg.ASes)
	}
	if rng == nil {
		return nil, fmt.Errorf("topology: SynthesizeInternetLike needs a random source")
	}
	g := New()
	asns := asnRange(cfg.ASes)
	depth := make(map[idr.ASN]int, cfg.ASes)

	// Tier-1 clique.
	for i := 0; i < cfg.Tier1s; i++ {
		g.AddNode(asns[i])
		depth[asns[i]] = 0
		for j := 0; j < i; j++ {
			if err := g.AddEdge(Edge{A: asns[j], B: asns[i], Rel: P2P}); err != nil {
				return nil, err
			}
		}
	}

	// Degree-weighted provider pool (each provider appears once per
	// customer it already has, plus once so everyone is reachable).
	pool := append([]idr.ASN(nil), asns[:cfg.Tier1s]...)
	for i := cfg.Tier1s; i < cfg.ASes; i++ {
		newcomer := asns[i]
		// 1 + Poisson-ish extra providers around AvgProviders.
		n := 1
		for float64(n) < cfg.AvgProviders && rng.Float64() < cfg.AvgProviders-1 {
			n++
		}
		chosen := make(map[idr.ASN]bool)
		for len(chosen) < n && len(chosen) < i {
			p := pool[rng.Intn(len(pool))]
			if p == newcomer {
				continue
			}
			chosen[p] = true
		}
		// Iterate the chosen set in sorted order: map iteration order
		// would otherwise leak into the provider pool and make the
		// same seed draw different graphs across runs.
		providers := make([]idr.ASN, 0, len(chosen))
		for p := range chosen {
			providers = append(providers, p)
		}
		sort.Slice(providers, func(a, b int) bool { return providers[a] < providers[b] })
		maxDepth := 0
		for _, p := range providers {
			if err := g.AddEdge(Edge{A: p, B: newcomer, Rel: P2C}); err != nil {
				return nil, err
			}
			pool = append(pool, p)
			if d := depth[p] + 1; d > maxDepth {
				maxDepth = d
			}
		}
		depth[newcomer] = maxDepth
		pool = append(pool, newcomer)
	}

	// Lateral peering between similar-depth ASes.
	for i := cfg.Tier1s; i < cfg.ASes; i++ {
		for j := i + 1; j < cfg.ASes; j++ {
			a, b := asns[i], asns[j]
			if g.HasEdge(a, b) {
				continue
			}
			dd := depth[a] - depth[b]
			if dd < 0 {
				dd = -dd
			}
			if dd <= 1 && rng.Float64() < cfg.PeerProb {
				if err := g.AddEdge(Edge{A: a, B: b, Rel: P2P}); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("topology: synthesized graph invalid: %w", err)
	}
	return g, nil
}
