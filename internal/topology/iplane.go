package topology

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/idr"
)

// PoP identifies a point of presence as "<asn>:<index>", following the
// iPlane convention of PoPs grouped by owning AS.
type PoP struct {
	ASN   idr.ASN
	Index int
}

// String renders the PoP in the textual dataset form.
func (p PoP) String() string { return fmt.Sprintf("%d:%d", uint32(p.ASN), p.Index) }

// PoPLink is one measured inter-PoP link with a round-trip latency.
type PoPLink struct {
	From, To PoP
	RTT      time.Duration
}

// ReadIPlane parses the iPlane inter-PoP links format used by this
// framework:
//
//	# comment
//	<asn>:<pop> <asn>:<pop> <latency-ms>
//
// The latency column is optional (defaults to 0 = experiment default).
func ReadIPlane(r io.Reader) ([]PoPLink, error) {
	var out []PoPLink
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("topology: iplane line %d: want 2+ fields, got %q", line, text)
		}
		from, err := parsePoP(fields[0])
		if err != nil {
			return nil, fmt.Errorf("topology: iplane line %d: %v", line, err)
		}
		to, err := parsePoP(fields[1])
		if err != nil {
			return nil, fmt.Errorf("topology: iplane line %d: %v", line, err)
		}
		var rtt time.Duration
		if len(fields) >= 3 {
			ms, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || ms < 0 {
				return nil, fmt.Errorf("topology: iplane line %d: bad latency %q", line, fields[2])
			}
			rtt = time.Duration(ms * float64(time.Millisecond))
		}
		out = append(out, PoPLink{From: from, To: to, RTT: rtt})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topology: reading iplane data: %w", err)
	}
	return out, nil
}

func parsePoP(s string) (PoP, error) {
	asnStr, popStr, ok := strings.Cut(s, ":")
	if !ok {
		return PoP{}, fmt.Errorf("bad PoP %q: want <asn>:<index>", s)
	}
	asn, err := parseASN(asnStr)
	if err != nil {
		return PoP{}, err
	}
	idx, err := strconv.Atoi(popStr)
	if err != nil || idx < 0 {
		return PoP{}, fmt.Errorf("bad PoP index in %q", s)
	}
	return PoP{ASN: asn, Index: idx}, nil
}

// WriteIPlane serialises PoP links in the textual format accepted by
// ReadIPlane.
func WriteIPlane(w io.Writer, links []PoPLink) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# iPlane inter-PoP links (format: <asn>:<pop> <asn>:<pop> <rtt-ms>)"); err != nil {
		return err
	}
	for _, l := range links {
		ms := float64(l.RTT) / float64(time.Millisecond)
		if _, err := fmt.Fprintf(bw, "%s %s %.3f\n", l.From, l.To, ms); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// CollapseToASGraph reduces PoP-level links to an AS-level graph, as
// the paper's framework does when building topologies from iPlane data
// ("every AS is emulated by a single network device"). Intra-AS links
// are dropped; parallel inter-AS links keep the minimum latency. Since
// iPlane carries no business relationships, edges default to P2P; pair
// it with CAIDA relationships via AnnotateRelationships.
func CollapseToASGraph(links []PoPLink) *Graph {
	g := New()
	for _, l := range links {
		a, b := l.From.ASN, l.To.ASN
		if a == b {
			continue
		}
		// One-way delay is half the measured RTT.
		delay := l.RTT / 2
		if prev, ok := g.EdgeBetween(a, b); ok {
			if prev.Delay <= delay && prev.Delay != 0 {
				continue
			}
			if delay == 0 {
				continue
			}
		}
		// Errors are impossible here: a != b is checked above.
		_ = g.AddEdge(Edge{A: a, B: b, Rel: P2P, Delay: delay})
	}
	return g
}

// AnnotateRelationships copies business relationships from rel (e.g. a
// CAIDA graph) onto the edges of g where both graphs have the link,
// returning how many edges were annotated.
func AnnotateRelationships(g, rel *Graph) int {
	n := 0
	for _, e := range g.Edges() {
		re, ok := rel.EdgeBetween(e.A, e.B)
		if !ok {
			continue
		}
		annotated := e
		annotated.Rel = re.Rel
		if re.Rel == P2C {
			// Preserve provider orientation from the relationship graph.
			annotated.A, annotated.B = re.A, re.B
		}
		// AddEdge replaces in place; endpoints unchanged so no error.
		_ = g.AddEdge(annotated)
		n++
	}
	return n
}

// SynthesizeIPlane produces a synthetic inter-PoP measurement set for
// the given AS graph: every AS gets 1..maxPoPs PoPs; every AS edge
// becomes one or more PoP-level links with geographic-ish latencies
// (5ms..120ms RTT); intra-AS backbone links connect each AS's PoPs in
// a chain. Output round-trips through WriteIPlane/ReadIPlane and
// collapses back to a graph whose edges match g.
func SynthesizeIPlane(g *Graph, maxPoPs int, rng *rand.Rand) ([]PoPLink, error) {
	if maxPoPs < 1 {
		return nil, fmt.Errorf("topology: maxPoPs %d < 1", maxPoPs)
	}
	if rng == nil {
		return nil, fmt.Errorf("topology: SynthesizeIPlane needs a random source")
	}
	popCount := make(map[idr.ASN]int)
	var links []PoPLink
	for _, asn := range g.Nodes() {
		popCount[asn] = 1 + rng.Intn(maxPoPs)
		// Chain the AS's PoPs with short backbone links.
		for i := 1; i < popCount[asn]; i++ {
			links = append(links, PoPLink{
				From: PoP{ASN: asn, Index: i - 1},
				To:   PoP{ASN: asn, Index: i},
				RTT:  time.Duration(1+rng.Intn(5)) * time.Millisecond,
			})
		}
	}
	for _, e := range g.Edges() {
		rtt := time.Duration(5+rng.Intn(115)) * time.Millisecond
		links = append(links, PoPLink{
			From: PoP{ASN: e.A, Index: rng.Intn(popCount[e.A])},
			To:   PoP{ASN: e.B, Index: rng.Intn(popCount[e.B])},
			RTT:  rtt,
		})
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].From.ASN != links[j].From.ASN {
			return links[i].From.ASN < links[j].From.ASN
		}
		if links[i].From.Index != links[j].From.Index {
			return links[i].From.Index < links[j].From.Index
		}
		if links[i].To.ASN != links[j].To.ASN {
			return links[i].To.ASN < links[j].To.ASN
		}
		return links[i].To.Index < links[j].To.Index
	})
	return links, nil
}
