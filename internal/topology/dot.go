package topology

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/idr"
)

// DOTOptions controls WriteDOT output.
type DOTOptions struct {
	// Name is the graph name (default "astopo").
	Name string
	// Highlight marks a set of ASes (e.g. the SDN cluster) that are
	// drawn filled; the paper's visualization tool distinguishes
	// cluster members the same way.
	Highlight map[idr.ASN]bool
	// EdgeLabels adds relationship labels to edges.
	EdgeLabels bool
}

// WriteDOT renders the graph in Graphviz DOT format, the framework's
// "network graph creation" output. P2C edges are drawn directed from
// provider to customer; P2P edges undirected (dir=none).
func WriteDOT(w io.Writer, g *Graph, opts DOTOptions) error {
	if opts.Name == "" {
		opts.Name = "astopo"
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n", opts.Name)
	fmt.Fprintln(bw, "  node [shape=circle];")
	for _, n := range g.Nodes() {
		if opts.Highlight[n] {
			fmt.Fprintf(bw, "  %q [style=filled, fillcolor=lightblue];\n", n.String())
		} else {
			fmt.Fprintf(bw, "  %q;\n", n.String())
		}
	}
	for _, e := range g.Edges() {
		attrs := ""
		if e.Rel == P2P {
			attrs = " [dir=none"
			if opts.EdgeLabels {
				attrs += `, label="p2p"`
			}
			attrs += "]"
		} else if opts.EdgeLabels {
			attrs = ` [label="p2c"]`
		}
		fmt.Fprintf(bw, "  %q -> %q%s;\n", e.A.String(), e.B.String(), attrs)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
