package topology

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/idr"
)

func TestClique(t *testing.T) {
	g, err := Clique(16)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 16 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if want := 16 * 15 / 2; g.NumEdges() != want {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), want)
	}
	for _, n := range g.Nodes() {
		if g.Degree(n) != 15 {
			t.Fatalf("degree(%v) = %d, want 15", n, g.Degree(n))
		}
	}
	for _, e := range g.Edges() {
		if e.Rel != P2P {
			t.Fatal("clique edges must be P2P")
		}
	}
	if _, err := Clique(0); err == nil {
		t.Fatal("Clique(0) should error")
	}
}

func TestLineRingStar(t *testing.T) {
	l, err := Line(5)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumEdges() != 4 || !l.Connected() {
		t.Fatalf("line: edges=%d connected=%v", l.NumEdges(), l.Connected())
	}

	r, err := Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumEdges() != 5 {
		t.Fatalf("ring edges = %d", r.NumEdges())
	}
	for _, n := range r.Nodes() {
		if r.Degree(n) != 2 {
			t.Fatalf("ring degree(%v) = %d", n, r.Degree(n))
		}
	}
	if _, err := Ring(2); err == nil {
		t.Fatal("Ring(2) should error")
	}

	s, err := Star(5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Degree(BaseASN) != 4 {
		t.Fatalf("star hub degree = %d", s.Degree(BaseASN))
	}
	if got := s.Customers(BaseASN); len(got) != 4 {
		t.Fatalf("star customers = %v", got)
	}
	if _, err := Star(1); err == nil {
		t.Fatal("Star(1) should error")
	}
}

func TestTree(t *testing.T) {
	g, err := Tree(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 6 || !g.Connected() {
		t.Fatalf("tree: edges=%d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Root has two customers; leaves have one provider.
	if got := g.Customers(BaseASN); len(got) != 2 {
		t.Fatalf("root customers = %v", got)
	}
	if got := g.Providers(BaseASN + 6); len(got) != 1 {
		t.Fatalf("leaf providers = %v", got)
	}
	if _, err := Tree(3, 0); err == nil {
		t.Fatal("fanout 0 should error")
	}
}

func TestGrid(t *testing.T) {
	g, err := Grid(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 12 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Edges: 4 rows * 2 + 3 cols * 3 = 8 + 9 = 17.
	if g.NumEdges() != 17 {
		t.Fatalf("edges = %d, want 17", g.NumEdges())
	}
	if !g.Connected() {
		t.Fatal("grid should be connected")
	}
	if _, err := Grid(0, 3); err == nil {
		t.Fatal("Grid(0,3) should error")
	}
}

func TestErdosRenyi(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := ErdosRenyi(20, 0.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 20 || !g.Connected() {
		t.Fatal("ER graph wrong")
	}
	if _, err := ErdosRenyi(10, 1.5, rng); err == nil {
		t.Fatal("p > 1 should error")
	}
	if _, err := ErdosRenyi(10, 0.5, nil); err == nil {
		t.Fatal("nil rng should error")
	}
	// p = 0 with n > 1 can never connect.
	if _, err := ErdosRenyi(5, 0, rng); err == nil {
		t.Fatal("disconnected draw should eventually error")
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a, err := ErdosRenyi(15, 0.5, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ErdosRenyi(15, 0.5, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("seeded ER graphs differ in size")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("seeded ER graphs differ")
		}
	}
}

func TestBarabasiAlbert(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := BarabasiAlbert(50, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 50 || !g.Connected() {
		t.Fatal("BA graph wrong")
	}
	// Seed clique is 3 peers; every later node adds 2 provider edges.
	if want := 3 + 47*2; g.NumEdges() != want {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), want)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := BarabasiAlbert(3, 3, rng); err == nil {
		t.Fatal("n <= m should error")
	}
	if _, err := BarabasiAlbert(10, 0, rng); err == nil {
		t.Fatal("m = 0 should error")
	}
	if _, err := BarabasiAlbert(10, 2, nil); err == nil {
		t.Fatal("nil rng should error")
	}
}

// Property: all generators produce connected, validated graphs over the
// advertised AS number range.
func TestPropertyGeneratorsWellFormed(t *testing.T) {
	f := func(rawN uint8) bool {
		n := int(rawN%20) + 3 // 3..22
		gens := []*Graph{}
		if g, err := Clique(n); err == nil {
			gens = append(gens, g)
		}
		if g, err := Line(n); err == nil {
			gens = append(gens, g)
		}
		if g, err := Ring(n); err == nil {
			gens = append(gens, g)
		}
		if g, err := Star(n); err == nil {
			gens = append(gens, g)
		}
		if g, err := Tree(n, 2); err == nil {
			gens = append(gens, g)
		}
		for _, g := range gens {
			if g.NumNodes() != n || !g.Connected() || g.Validate() != nil {
				return false
			}
			for _, node := range g.Nodes() {
				if node < BaseASN || node >= BaseASN+idr.ASN(n) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
