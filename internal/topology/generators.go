package topology

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/idr"
)

// BaseASN is the first AS number handed out by generators. Generators
// number ASes BaseASN, BaseASN+1, ... so experiment scripts can refer
// to them positionally.
const BaseASN idr.ASN = 1

// asnRange returns n consecutive AS numbers starting at BaseASN.
func asnRange(n int) []idr.ASN {
	out := make([]idr.ASN, n)
	for i := range out {
		out[i] = BaseASN + idr.ASN(i)
	}
	return out
}

// Clique returns the complete graph on n ASes with all-peer
// relationships — the topology of the paper's Figure 2 experiment
// ("16-AS clique topology").
func Clique(n int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: clique size %d < 1", n)
	}
	g := New()
	asns := asnRange(n)
	for _, a := range asns {
		g.AddNode(a)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := g.AddEdge(Edge{A: asns[i], B: asns[j], Rel: P2P}); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// Line returns a path graph A1-A2-...-An with peer links.
func Line(n int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: line size %d < 1", n)
	}
	g := New()
	asns := asnRange(n)
	for _, a := range asns {
		g.AddNode(a)
	}
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(Edge{A: asns[i], B: asns[i+1], Rel: P2P}); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Ring returns a cycle on n >= 3 ASes with peer links.
func Ring(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("topology: ring size %d < 3", n)
	}
	g, err := Line(n)
	if err != nil {
		return nil, err
	}
	asns := asnRange(n)
	if err := g.AddEdge(Edge{A: asns[n-1], B: asns[0], Rel: P2P}); err != nil {
		return nil, err
	}
	return g, nil
}

// Star returns a hub-and-spoke graph: AS1 is the provider of
// AS2..ASn. This models a transit provider with n-1 customers.
func Star(n int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: star size %d < 2", n)
	}
	g := New()
	asns := asnRange(n)
	hub := asns[0]
	g.AddNode(hub)
	for _, leaf := range asns[1:] {
		if err := g.AddEdge(Edge{A: hub, B: leaf, Rel: P2C}); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Tree returns a complete k-ary provider hierarchy with the given
// number of ASes: AS1 is the root (tier-1); every node is the provider
// of its children.
func Tree(n, fanout int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: tree size %d < 1", n)
	}
	if fanout < 1 {
		return nil, fmt.Errorf("topology: tree fanout %d < 1", fanout)
	}
	g := New()
	asns := asnRange(n)
	g.AddNode(asns[0])
	for i := 1; i < n; i++ {
		parent := asns[(i-1)/fanout]
		if err := g.AddEdge(Edge{A: parent, B: asns[i], Rel: P2C}); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Grid returns a w x h lattice with peer links, a simple model of a
// geographically meshed backbone.
func Grid(w, h int) (*Graph, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("topology: grid %dx%d invalid", w, h)
	}
	g := New()
	asns := asnRange(w * h)
	at := func(x, y int) idr.ASN { return asns[y*w+x] }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.AddNode(at(x, y))
			if x+1 < w {
				if err := g.AddEdge(Edge{A: at(x, y), B: at(x+1, y), Rel: P2P}); err != nil {
					return nil, err
				}
			}
			if y+1 < h {
				if err := g.AddEdge(Edge{A: at(x, y), B: at(x, y+1), Rel: P2P}); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// ErdosRenyi returns a G(n, p) random graph with peer links, retrying
// until connected (for p large enough to make that likely). The rng
// must not be nil.
func ErdosRenyi(n int, p float64, rng *rand.Rand) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: ER size %d < 1", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("topology: ER probability %v out of [0,1]", p)
	}
	if rng == nil {
		return nil, fmt.Errorf("topology: ErdosRenyi needs a random source")
	}
	const maxAttempts = 64
	asns := asnRange(n)
	for attempt := 0; attempt < maxAttempts; attempt++ {
		g := New()
		for _, a := range asns {
			g.AddNode(a)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < p {
					if err := g.AddEdge(Edge{A: asns[i], B: asns[j], Rel: P2P}); err != nil {
						return nil, err
					}
				}
			}
		}
		if g.Connected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("topology: could not draw a connected G(%d, %v) in %d attempts", n, p, maxAttempts)
}

// BarabasiAlbert returns a preferential-attachment graph of n ASes
// where each newcomer attaches to m existing ASes. Edges are oriented
// as provider→customer from the older (higher-degree) AS to the
// newcomer, yielding a valley-free-friendly hierarchy reminiscent of
// the measured Internet.
func BarabasiAlbert(n, m int, rng *rand.Rand) (*Graph, error) {
	if m < 1 {
		return nil, fmt.Errorf("topology: BA attachment m=%d < 1", m)
	}
	if n < m+1 {
		return nil, fmt.Errorf("topology: BA size %d must exceed m=%d", n, m)
	}
	if rng == nil {
		return nil, fmt.Errorf("topology: BarabasiAlbert needs a random source")
	}
	g := New()
	asns := asnRange(n)
	// Seed: a small clique of m+1 peers (the "tier-1" core).
	for i := 0; i <= m; i++ {
		g.AddNode(asns[i])
		for j := 0; j < i; j++ {
			if err := g.AddEdge(Edge{A: asns[j], B: asns[i], Rel: P2P}); err != nil {
				return nil, err
			}
		}
	}
	// targets holds one entry per edge endpoint, so sampling uniformly
	// from it is degree-proportional sampling.
	var targets []idr.ASN
	for _, e := range g.Edges() {
		targets = append(targets, e.A, e.B)
	}
	for i := m + 1; i < n; i++ {
		newcomer := asns[i]
		chosen := make(map[idr.ASN]bool)
		for len(chosen) < m {
			t := targets[rng.Intn(len(targets))]
			chosen[t] = true
		}
		// Iterate the chosen set in sorted order: map iteration order
		// would otherwise leak into the sampling pool and make the
		// same seed draw different graphs across runs.
		picked := make([]idr.ASN, 0, len(chosen))
		for t := range chosen {
			picked = append(picked, t)
		}
		sort.Slice(picked, func(a, b int) bool { return picked[a] < picked[b] })
		for _, t := range picked {
			if err := g.AddEdge(Edge{A: t, B: newcomer, Rel: P2C}); err != nil {
				return nil, err
			}
		}
		// Extend sampling pool after the fact so this node's picks were
		// not biased toward itself.
		for _, t := range picked {
			targets = append(targets, t, newcomer)
		}
	}
	return g, nil
}
