package topology

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/idr"
)

func TestReadCAIDA(t *testing.T) {
	const data = `# serial 20140801
1|2|-1
2|3|0
1|3|-1|bgp
`
	g, err := ReadCAIDA(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	if got := g.Customers(1); len(got) != 2 {
		t.Fatalf("Customers(1) = %v", got)
	}
	if got := g.Peers(2); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Peers(2) = %v", got)
	}
}

func TestReadCAIDAErrors(t *testing.T) {
	cases := []string{
		"1|2",        // too few fields
		"x|2|-1",     // bad ASN
		"1|y|0",      // bad ASN
		"1|2|banana", // bad relationship
		"1|2|7",      // unknown code
		"5|5|0",      // self-loop
	}
	for _, c := range cases {
		if _, err := ReadCAIDA(strings.NewReader(c)); err == nil {
			t.Errorf("ReadCAIDA(%q) should error", c)
		}
	}
}

func TestReadCAIDADuplicateKeepsFirst(t *testing.T) {
	g, err := ReadCAIDA(strings.NewReader("1|2|-1\n2|1|0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
	e, _ := g.EdgeBetween(1, 2)
	if e.Rel != P2C {
		t.Fatal("first occurrence should win")
	}
}

func TestCAIDARoundTrip(t *testing.T) {
	g, err := SynthesizeInternetLike(InternetLikeConfig{ASes: 40}, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCAIDA(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCAIDA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed size: %d/%d -> %d/%d",
			g.NumNodes(), g.NumEdges(), back.NumNodes(), back.NumEdges())
	}
	for _, e := range g.Edges() {
		be, ok := back.EdgeBetween(e.A, e.B)
		if !ok || be.Rel != e.Rel {
			t.Fatalf("edge %v-%v lost or changed", e.A, e.B)
		}
	}
}

func TestSynthesizeInternetLike(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := SynthesizeInternetLike(InternetLikeConfig{ASes: 100}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 100 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if !g.Connected() {
		t.Fatal("internet-like graph must be connected")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Tier-1s (first 3 ASes) have no providers.
	for asn := BaseASN; asn < BaseASN+3; asn++ {
		if len(g.Providers(asn)) != 0 {
			t.Fatalf("tier-1 %v has providers", asn)
		}
	}
	// Everyone else has at least one provider.
	for _, n := range g.Nodes()[3:] {
		if len(g.Providers(n)) == 0 {
			t.Fatalf("%v has no provider", n)
		}
	}
	if _, err := SynthesizeInternetLike(InternetLikeConfig{ASes: 2}, rng); err == nil {
		t.Fatal("too-small config should error")
	}
	if _, err := SynthesizeInternetLike(InternetLikeConfig{ASes: 50}, nil); err == nil {
		t.Fatal("nil rng should error")
	}
}

func TestReadIPlane(t *testing.T) {
	const data = `# synthetic
1:0 2:0 10.5
2:1 3:0 20
1:0 1:1 2
`
	links, err := ReadIPlane(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 3 {
		t.Fatalf("links = %d", len(links))
	}
	if links[0].RTT != 10500*time.Microsecond {
		t.Fatalf("RTT = %v", links[0].RTT)
	}
	if links[0].From.ASN != 1 || links[0].To.ASN != 2 {
		t.Fatal("endpoints wrong")
	}
}

func TestReadIPlaneErrors(t *testing.T) {
	cases := []string{
		"1:0",         // one field
		"1-0 2:0 5",   // bad pop syntax
		"x:0 2:0 5",   // bad asn
		"1:z 2:0 5",   // bad index
		"1:0 2:0 -3",  // negative latency
		"1:0 2:0 abc", // non-numeric latency
	}
	for _, c := range cases {
		if _, err := ReadIPlane(strings.NewReader(c)); err == nil {
			t.Errorf("ReadIPlane(%q) should error", c)
		}
	}
}

func TestIPlaneRoundTripAndCollapse(t *testing.T) {
	g, err := Clique(6)
	if err != nil {
		t.Fatal(err)
	}
	links, err := SynthesizeIPlane(g, 3, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteIPlane(&buf, links); err != nil {
		t.Fatal(err)
	}
	back, err := ReadIPlane(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(links) {
		t.Fatalf("round trip changed link count %d -> %d", len(links), len(back))
	}
	collapsed := CollapseToASGraph(back)
	if collapsed.NumNodes() != g.NumNodes() || collapsed.NumEdges() != g.NumEdges() {
		t.Fatalf("collapse: %d/%d, want %d/%d",
			collapsed.NumNodes(), collapsed.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	// Collapsed edges carry one-way delays (half RTT, > 0).
	for _, e := range collapsed.Edges() {
		if e.Delay <= 0 {
			t.Fatalf("edge %v-%v has no delay", e.A, e.B)
		}
	}
}

func TestCollapseKeepsMinimumLatency(t *testing.T) {
	links := []PoPLink{
		{From: PoP{ASN: 1, Index: 0}, To: PoP{ASN: 2, Index: 0}, RTT: 40 * time.Millisecond},
		{From: PoP{ASN: 1, Index: 1}, To: PoP{ASN: 2, Index: 1}, RTT: 10 * time.Millisecond},
		{From: PoP{ASN: 1, Index: 0}, To: PoP{ASN: 1, Index: 1}, RTT: 1 * time.Millisecond}, // intra-AS
	}
	g := CollapseToASGraph(links)
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
	e, _ := g.EdgeBetween(1, 2)
	if e.Delay != 5*time.Millisecond {
		t.Fatalf("delay = %v, want 5ms (half of min RTT)", e.Delay)
	}
}

func TestAnnotateRelationships(t *testing.T) {
	// AS graph from "iPlane" (all P2P) gets CAIDA relationships.
	g := New()
	for _, e := range []Edge{
		{A: 2, B: 1, Rel: P2P, Delay: 3 * time.Millisecond},
		{A: 2, B: 3, Rel: P2P},
	} {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	rel := New()
	if err := rel.AddEdge(Edge{A: 1, B: 2, Rel: P2C}); err != nil { // 1 provides 2
		t.Fatal(err)
	}
	n := AnnotateRelationships(g, rel)
	if n != 1 {
		t.Fatalf("annotated = %d, want 1", n)
	}
	e, _ := g.EdgeBetween(1, 2)
	if e.Rel != P2C || e.A != 1 || e.B != 2 {
		t.Fatalf("edge not annotated with provider orientation: %+v", e)
	}
	if e.Delay != 3*time.Millisecond {
		t.Fatal("annotation lost the latency")
	}
	e2, _ := g.EdgeBetween(2, 3)
	if e2.Rel != P2P {
		t.Fatal("unmatched edge should stay P2P")
	}
}

func TestWriteDOT(t *testing.T) {
	g, err := Star(3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	opts := DOTOptions{
		Highlight:  map[idr.ASN]bool{BaseASN: true},
		EdgeLabels: true,
	}
	if err := WriteDOT(&buf, g, opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", `"AS1"`, `"AS2"`, "fillcolor=lightblue", `label="p2c"`} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// P2P edges render undirected.
	g2, _ := Line(2)
	buf.Reset()
	if err := WriteDOT(&buf, g2, DOTOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dir=none") {
		t.Error("P2P edge should carry dir=none")
	}
}
