package topology

import (
	"testing"

	"repro/internal/idr"
)

func TestAddEdgeAndQueries(t *testing.T) {
	g := New()
	if err := g.AddEdge(Edge{A: 1, B: 2, Rel: P2C}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(Edge{A: 3, B: 2, Rel: P2P}); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("nodes=%d edges=%d, want 3/2", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge(2, 1) || !g.HasEdge(1, 2) {
		t.Fatal("HasEdge should be symmetric")
	}
	if g.HasEdge(1, 3) {
		t.Fatal("no edge between 1 and 3")
	}
	nbs := g.Neighbors(2)
	if len(nbs) != 2 || nbs[0] != 1 || nbs[1] != 3 {
		t.Fatalf("Neighbors(2) = %v", nbs)
	}
	if g.Degree(2) != 2 || g.Degree(1) != 1 {
		t.Fatal("Degree wrong")
	}
}

func TestSelfLoopRejected(t *testing.T) {
	g := New()
	if err := g.AddEdge(Edge{A: 5, B: 5}); err == nil {
		t.Fatal("self-loop should be rejected")
	}
}

func TestRelationships(t *testing.T) {
	g := New()
	// 1 is provider of 2; 2 peers with 3; 2 is provider of 4.
	for _, e := range []Edge{
		{A: 1, B: 2, Rel: P2C},
		{A: 2, B: 3, Rel: P2P},
		{A: 2, B: 4, Rel: P2C},
	} {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	if got := g.Providers(2); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Providers(2) = %v", got)
	}
	if got := g.Customers(2); len(got) != 1 || got[0] != 4 {
		t.Fatalf("Customers(2) = %v", got)
	}
	if got := g.Peers(2); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Peers(2) = %v", got)
	}
	kind, ok := g.RelationshipOf(2, 1)
	if !ok || kind != KindProvider {
		t.Fatalf("RelationshipOf(2,1) = %v, want provider", kind)
	}
	kind, _ = g.RelationshipOf(1, 2)
	if kind != KindCustomer {
		t.Fatalf("RelationshipOf(1,2) = %v, want customer", kind)
	}
	kind, _ = g.RelationshipOf(2, 3)
	if kind != KindPeer {
		t.Fatalf("RelationshipOf(2,3) = %v, want peer", kind)
	}
	if _, ok := g.RelationshipOf(1, 4); ok {
		t.Fatal("no relationship between 1 and 4")
	}
	if KindCustomer.String() != "customer" || KindNone.String() != "none" {
		t.Fatal("NeighborKind.String wrong")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New()
	if err := g.AddEdge(Edge{A: 1, B: 2, Rel: P2P}); err != nil {
		t.Fatal(err)
	}
	if !g.RemoveEdge(2, 1) {
		t.Fatal("RemoveEdge should report true")
	}
	if g.RemoveEdge(2, 1) {
		t.Fatal("second RemoveEdge should report false")
	}
	if g.HasEdge(1, 2) {
		t.Fatal("edge still present")
	}
	if !g.HasNode(1) || !g.HasNode(2) {
		t.Fatal("nodes should survive edge removal")
	}
}

func TestConnected(t *testing.T) {
	g := New()
	if !g.Connected() {
		t.Fatal("empty graph is connected by convention")
	}
	g.AddNode(1)
	g.AddNode(2)
	if g.Connected() {
		t.Fatal("two isolated nodes are not connected")
	}
	if err := g.AddEdge(Edge{A: 1, B: 2, Rel: P2P}); err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("1-2 should be connected")
	}
}

func TestClone(t *testing.T) {
	g := New()
	if err := g.AddEdge(Edge{A: 1, B: 2, Rel: P2C}); err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	c.RemoveEdge(1, 2)
	if !g.HasEdge(1, 2) {
		t.Fatal("mutating clone affected original")
	}
}

func TestValidateCycle(t *testing.T) {
	g := New()
	// 1 -> 2 -> 3 -> 1 provider cycle.
	for _, e := range []Edge{
		{A: 1, B: 2, Rel: P2C},
		{A: 2, B: 3, Rel: P2C},
		{A: 3, B: 1, Rel: P2C},
	} {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Validate(); err == nil {
		t.Fatal("provider cycle should fail validation")
	}
	// Acyclic hierarchy passes.
	g2 := New()
	for _, e := range []Edge{
		{A: 1, B: 2, Rel: P2C},
		{A: 1, B: 3, Rel: P2C},
		{A: 2, B: 4, Rel: P2C},
		{A: 3, B: 4, Rel: P2C}, // multihomed customer, still acyclic
	} {
		if err := g2.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := g2.Validate(); err != nil {
		t.Fatalf("acyclic hierarchy failed validation: %v", err)
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{A: 7, B: 9}
	if e.Other(7) != 9 || e.Other(9) != 7 {
		t.Fatal("Other wrong")
	}
}

func TestEdgeCanonical(t *testing.T) {
	e := Edge{A: 9, B: 7, Rel: P2P}.Canonical()
	if e.A != 7 || e.B != 9 {
		t.Fatalf("P2P canonical = %v-%v, want 7-9", e.A, e.B)
	}
	// P2C keeps provider orientation.
	e = Edge{A: 9, B: 7, Rel: P2C}.Canonical()
	if e.A != 9 || e.B != 7 {
		t.Fatalf("P2C canonical reordered: %v-%v", e.A, e.B)
	}
}

func TestNodesAndEdgesDeterministic(t *testing.T) {
	g := New()
	for i := 20; i >= 1; i-- {
		g.AddNode(idr.ASN(i))
	}
	ns := g.Nodes()
	for i := 1; i < len(ns); i++ {
		if ns[i-1] >= ns[i] {
			t.Fatalf("Nodes not sorted: %v", ns)
		}
	}
	for i := 1; i <= 19; i++ {
		if err := g.AddEdge(Edge{A: idr.ASN(i), B: idr.ASN(i + 1), Rel: P2P}); err != nil {
			t.Fatal(err)
		}
	}
	e1 := g.Edges()
	e2 := g.Edges()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("Edges() not deterministic")
		}
	}
}

func TestRelationshipString(t *testing.T) {
	if P2P.String() != "p2p" || P2C.String() != "p2c" {
		t.Fatal("Relationship.String wrong")
	}
	if Relationship(5).String() == "" {
		t.Fatal("unknown relationship should still render")
	}
}
