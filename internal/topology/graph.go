// Package topology models AS-level topologies and produces them from
// theoretical generators (clique, ring, trees, random graphs) or from
// measured-data formats (CAIDA AS relationships, iPlane inter-PoP
// links), mirroring the paper's framework (§3): "topologies can be
// either artificial or built from the iPlane Inter-PoP links and the
// CAIDA AS Relationship datasets".
package topology

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/idr"
)

// Relationship is the business relationship carried by an inter-AS
// link, following the CAIDA AS-relationship convention.
type Relationship int8

const (
	// P2P marks a settlement-free peering between two ASes
	// (CAIDA code 0).
	P2P Relationship = 0
	// P2C marks a provider-to-customer link; the edge's A side is the
	// provider and the B side the customer (CAIDA code -1).
	P2C Relationship = -1
)

// String returns the conventional name of the relationship.
func (r Relationship) String() string {
	switch r {
	case P2P:
		return "p2p"
	case P2C:
		return "p2c"
	default:
		return fmt.Sprintf("Relationship(%d)", int8(r))
	}
}

// Edge is an undirected inter-AS adjacency with business semantics.
// For P2C edges the direction matters: A is the provider of B. For P2P
// edges A and B are interchangeable.
type Edge struct {
	A, B idr.ASN
	Rel  Relationship
	// Delay is the one-way propagation delay of the link. Zero means
	// "use the experiment default".
	Delay time.Duration
}

// Other returns the far endpoint of the edge as seen from asn.
func (e Edge) Other(asn idr.ASN) idr.ASN {
	if e.A == asn {
		return e.B
	}
	return e.A
}

// Canonical returns the edge with endpoints ordered so that equal links
// compare equal: P2P edges are stored with A < B; P2C edges keep their
// provider→customer orientation.
func (e Edge) Canonical() Edge {
	if e.Rel == P2P && e.B < e.A {
		e.A, e.B = e.B, e.A
	}
	return e
}

// Graph is an AS-level topology: a set of AS numbers plus annotated
// edges. The zero value is an empty graph ready to use.
type Graph struct {
	nodes map[idr.ASN]bool
	edges map[[2]idr.ASN]Edge // keyed by canonical endpoints
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[idr.ASN]bool),
		edges: make(map[[2]idr.ASN]Edge),
	}
}

func edgeKey(a, b idr.ASN) [2]idr.ASN {
	if b < a {
		a, b = b, a
	}
	return [2]idr.ASN{a, b}
}

// AddNode ensures asn is present in the graph.
func (g *Graph) AddNode(asn idr.ASN) {
	g.nodes[asn] = true
}

// AddEdge inserts (or replaces) the link between e.A and e.B, adding
// the endpoints as needed. Self-loops are rejected.
func (g *Graph) AddEdge(e Edge) error {
	if e.A == e.B {
		return fmt.Errorf("topology: self-loop on %v", e.A)
	}
	g.AddNode(e.A)
	g.AddNode(e.B)
	g.edges[edgeKey(e.A, e.B)] = e.Canonical()
	return nil
}

// RemoveEdge deletes the link between a and b, reporting whether it
// existed.
func (g *Graph) RemoveEdge(a, b idr.ASN) bool {
	k := edgeKey(a, b)
	if _, ok := g.edges[k]; !ok {
		return false
	}
	delete(g.edges, k)
	return true
}

// HasNode reports whether asn is in the graph.
func (g *Graph) HasNode(asn idr.ASN) bool { return g.nodes[asn] }

// HasEdge reports whether a link exists between a and b.
func (g *Graph) HasEdge(a, b idr.ASN) bool {
	_, ok := g.edges[edgeKey(a, b)]
	return ok
}

// EdgeBetween returns the link between a and b.
func (g *Graph) EdgeBetween(a, b idr.ASN) (Edge, bool) {
	e, ok := g.edges[edgeKey(a, b)]
	return e, ok
}

// NumNodes returns the number of ASes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of links.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Nodes returns all AS numbers in ascending order.
func (g *Graph) Nodes() []idr.ASN {
	out := make([]idr.ASN, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edges returns all edges, ordered deterministically.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.edges))
	for _, e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		ki, kj := edgeKey(out[i].A, out[i].B), edgeKey(out[j].A, out[j].B)
		if ki[0] != kj[0] {
			return ki[0] < kj[0]
		}
		return ki[1] < kj[1]
	})
	return out
}

// Neighbors returns the ASes adjacent to asn in ascending order.
func (g *Graph) Neighbors(asn idr.ASN) []idr.ASN {
	var out []idr.ASN
	for _, e := range g.edges {
		if e.A == asn {
			out = append(out, e.B)
		} else if e.B == asn {
			out = append(out, e.A)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Degree returns the number of links attached to asn.
func (g *Graph) Degree(asn idr.ASN) int {
	n := 0
	for _, e := range g.edges {
		if e.A == asn || e.B == asn {
			n++
		}
	}
	return n
}

// Providers returns the providers of asn (ASes on the provider side of
// a P2C edge whose customer side is asn), ascending.
func (g *Graph) Providers(asn idr.ASN) []idr.ASN {
	var out []idr.ASN
	for _, e := range g.edges {
		if e.Rel == P2C && e.B == asn {
			out = append(out, e.A)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Customers returns the customers of asn, ascending.
func (g *Graph) Customers(asn idr.ASN) []idr.ASN {
	var out []idr.ASN
	for _, e := range g.edges {
		if e.Rel == P2C && e.A == asn {
			out = append(out, e.B)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Peers returns the settlement-free peers of asn, ascending.
func (g *Graph) Peers(asn idr.ASN) []idr.ASN {
	var out []idr.ASN
	for _, e := range g.edges {
		if e.Rel != P2P {
			continue
		}
		if e.A == asn {
			out = append(out, e.B)
		} else if e.B == asn {
			out = append(out, e.A)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RelationshipOf returns the relationship of neighbor as seen from asn:
// what the neighbor is *to* asn.
func (g *Graph) RelationshipOf(asn, neighbor idr.ASN) (NeighborKind, bool) {
	e, ok := g.EdgeBetween(asn, neighbor)
	if !ok {
		return KindNone, false
	}
	switch {
	case e.Rel == P2P:
		return KindPeer, true
	case e.A == asn: // asn is the provider, so the neighbor is a customer
		return KindCustomer, true
	default:
		return KindProvider, true
	}
}

// NeighborKind classifies a neighbor from the local AS's point of view.
type NeighborKind int8

const (
	// KindNone means no relationship (no link).
	KindNone NeighborKind = iota
	// KindCustomer: the neighbor pays us for transit.
	KindCustomer
	// KindPeer: settlement-free peer.
	KindPeer
	// KindProvider: we pay the neighbor for transit.
	KindProvider
)

// String names the neighbor kind.
func (k NeighborKind) String() string {
	switch k {
	case KindCustomer:
		return "customer"
	case KindPeer:
		return "peer"
	case KindProvider:
		return "provider"
	default:
		return "none"
	}
}

// Connected reports whether the graph is connected (ignoring edge
// direction and relationships). The empty graph is connected.
func (g *Graph) Connected() bool {
	if len(g.nodes) == 0 {
		return true
	}
	var start idr.ASN
	//lint:maporder any start node yields the same connectivity verdict
	for n := range g.nodes {
		start = n
		break
	}
	seen := map[idr.ASN]bool{start: true}
	queue := []idr.ASN{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.Neighbors(cur) {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return len(seen) == len(g.nodes)
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New()
	for n := range g.nodes {
		c.nodes[n] = true
	}
	for k, e := range g.edges {
		c.edges[k] = e
	}
	return c
}

// Validate checks structural invariants: every edge endpoint is a node
// and the provider hierarchy (P2C edges) is acyclic, the standard
// sanity condition for Gao-Rexford topologies.
func (g *Graph) Validate() error {
	// Sorted accessors keep the reported violation deterministic.
	for _, e := range g.Edges() {
		if !g.nodes[e.A] || !g.nodes[e.B] {
			return fmt.Errorf("topology: edge %v-%v references unknown node", e.A, e.B)
		}
	}
	// Detect a cycle in the directed provider→customer graph.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[idr.ASN]int, len(g.nodes))
	var visit func(idr.ASN) error
	visit = func(n idr.ASN) error {
		color[n] = gray
		for _, c := range g.Customers(n) {
			switch color[c] {
			case gray:
				return fmt.Errorf("topology: provider-customer cycle through %v and %v", n, c)
			case white:
				if err := visit(c); err != nil {
					return err
				}
			}
		}
		color[n] = black
		return nil
	}
	for _, n := range g.Nodes() {
		if color[n] == white {
			if err := visit(n); err != nil {
				return err
			}
		}
	}
	return nil
}
