// Package lab is the unified evaluation API: one fully-specified
// emulation run (Trial) returning one uniform metrics record (Result),
// swept along one declared Axis by a generic parallel Sweep, with one
// encoder layer (table, csv, json, SVG boxplot adapter) over the
// structured output.
//
// The paper's pitch is that users script arbitrary hybrid BGP/SDN
// experiments while the framework handles configuration and
// measurement; lab is the measurement half of that promise. A Trial
// names any topology generator (TopoSpec), an SDN placement strategy
// (Placement), the protocol timers, the triggering event and a seed —
// and Run executes the full emulation (build, establish, announce,
// converge, trigger, measure) on a private sim.Kernel, so trials are
// share-nothing and deterministic per seed. internal/figures declares
// the paper's figures and ablations as Sweep specs over this API;
// cmd/convergence exposes the same specs on the command line.
package lab

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bgp"
	"repro/internal/experiment"
	"repro/internal/idr"
	"repro/internal/topology"
)

// Event selects the triggering routing event a trial measures.
type Event int

// Trial events.
const (
	// Withdrawal: the origin AS withdraws an established prefix — the
	// paper's Figure 2 experiment.
	Withdrawal Event = iota
	// Announcement: the origin AS announces a fresh prefix (§4).
	Announcement
	// Failover: a dual-homed stub origin loses its primary attachment
	// while the prefix stays reachable over the backup (§4).
	Failover
	// Flap: the origin withdraws and re-announces its prefix for
	// FlapCycles periods of FlapPeriod — the stability-ablation storm.
	Flap
	// Hijack: the highest-numbered AS still running legacy BGP
	// announces the origin's prefix (a bogus origination). The result
	// reports how many ASes end up routing toward the attacker
	// (Result.HijackedASes) — the containment question behind the
	// policy figure family.
	Hijack
)

// String names the event.
func (ev Event) String() string {
	switch ev {
	case Withdrawal:
		return "withdrawal"
	case Announcement:
		return "announcement"
	case Failover:
		return "failover"
	case Flap:
		return "flap"
	case Hijack:
		return "hijack"
	default:
		return fmt.Sprintf("Event(%d)", int(ev))
	}
}

// ParseEvent parses an event name.
func ParseEvent(s string) (Event, error) {
	for _, ev := range []Event{Withdrawal, Announcement, Failover, Flap, Hijack} {
		if ev.String() == s {
			return ev, nil
		}
	}
	return 0, fmt.Errorf("lab: unknown event %q", s)
}

// Trial fully specifies one seeded emulation run. The zero value plus
// a Topo is runnable: default timers, pure BGP, withdrawal event.
type Trial struct {
	// Topo names the topology generator and its parameters.
	Topo TopoSpec
	// Placement decides the SDN cluster membership.
	Placement Placement
	// Policy selects the routing-policy template applied at every
	// legacy router (and the collector, when attached). The zero value
	// is permit-all — free transit — so existing policy-free trials
	// are unchanged; see PolicySpec for gao-rexford and prefix-filter.
	Policy PolicySpec
	// Event is the triggering routing event to measure.
	Event Event
	// Timers are the BGP protocol timers (zero value selects
	// bgp.DefaultTimers: MRAI 30s with jitter).
	Timers bgp.Timers
	// Debounce is the controller's delayed-recomputation window,
	// passed to experiment.Config verbatim. Zero selects the
	// controller default (core.DefaultDebounce); a negative value
	// disables the delay entirely (recompute immediately). This is the
	// one convention across lab, experiment and core — a zero-length
	// window is the same thing as disabled, so express it with a
	// negative value.
	Debounce time.Duration
	// Settle is the convergence quiescence window (zero derives it
	// from the MRAI; see experiment.Config.Settle).
	Settle time.Duration
	// ProcessingDelay is each router's per-UPDATE processing cost,
	// passed to experiment.Config verbatim (zero disables the model;
	// the clique sweep specs set 25ms, approximating the paper's
	// shared-host Quagga daemons).
	ProcessingDelay time.Duration
	// Damping enables RFC 2439 route-flap damping on legacy routers.
	Damping *bgp.DampingConfig
	// FlapCycles is the number of withdraw/announce cycles of the Flap
	// event (default 6).
	FlapCycles int
	// FlapPeriod is the duration of one flap cycle (default 20s).
	FlapPeriod time.Duration
	// OriginOnly restricts the warm-up to announcing only the trial
	// origin's prefix instead of every AS's. At internet-like scale a
	// full-table warm-up costs O(N²) RIB entries (every router holds a
	// route to every AS) which dominates both memory and run time;
	// every trial event only ever measures the origin prefix, so
	// origin-only warm-up preserves the measured dynamics while making
	// multi-thousand-AS trials feasible. False (the default) keeps the
	// historical full-table warm-up.
	OriginOnly bool
	// Seed drives the run's protocol randomness (MRAI jitter, loss
	// draws); same trial + same seed = identical run.
	Seed int64
	// TopoSeed seeds the random topology generators (internet, er,
	// ba); deterministic generators ignore it. It is separate from
	// Seed so a sweep measures one fixed graph across every cell and
	// run instead of confounding the swept axis with topology
	// variation — Sweep.Run pins it to the sweep's BaseSeed.
	TopoSeed int64
	// Timeout bounds each convergence wait (default 2h virtual).
	Timeout time.Duration
	// EstablishTimeout bounds session establishment (default 5m).
	EstablishTimeout time.Duration
}

// Result is the uniform metrics record of one trial, gathered from the
// monitor instrumentation. All counters cover the measurement phase
// (from the triggering event on), not the warm-up convergence.
type Result struct {
	// Convergence is the time from the triggering event to the last
	// routing activity it caused (zero for the Flap storm, which has
	// no single convergence instant).
	Convergence time.Duration
	// UpdatesSent and UpdatesReceived count legacy BGP UPDATE load
	// network-wide during the measurement phase.
	UpdatesSent, UpdatesReceived uint64
	// BestPathChanges counts best-route changes for the origin prefix
	// across all routers (the path-exploration metric after Oliveira
	// et al.).
	BestPathChanges int
	// Recomputes counts controller recomputation batches (zero in
	// pure-BGP trials).
	Recomputes uint64
	// ProbesSent and ProbesDelivered report data-plane probe outcomes
	// (zero unless the trial injects probes).
	ProbesSent, ProbesDelivered uint64
	// HijackedASes counts the ASes whose best route for the origin
	// prefix leads to the attacker once a Hijack trial settles (zero
	// for every other event). The origin and the attacker themselves
	// are not counted.
	HijackedASes int
	// ReachableAfter reports whether every other AS can reach the
	// origin prefix once the run settles (false after a withdrawal by
	// construction; the fail-over and flap checks).
	ReachableAfter bool
}

// withDefaults fills the documented defaults.
func (t Trial) withDefaults() Trial {
	if t.Timers == (bgp.Timers{}) {
		t.Timers = bgp.DefaultTimers()
	}
	if t.Timeout == 0 {
		t.Timeout = 2 * time.Hour
	}
	if t.EstablishTimeout == 0 {
		t.EstablishTimeout = 5 * time.Minute
	}
	if t.FlapCycles == 0 {
		t.FlapCycles = 6
	}
	if t.FlapPeriod == 0 {
		t.FlapPeriod = 20 * time.Second
	}
	return t
}

// Run executes the trial: build the topology, select the cluster,
// bring the network up, announce every prefix, converge, then trigger
// the event and measure. It returns the uniform metrics record.
func (t Trial) Run() (Result, error) {
	t = t.withDefaults()
	g, err := t.Topo.Build(rand.New(rand.NewSource(t.TopoSeed)))
	if err != nil {
		return Result{}, err
	}
	members, err := t.Placement.Select(g)
	if err != nil {
		return Result{}, err
	}
	origin := topology.BaseASN
	if t.Event == Failover {
		// The fail-over scenario dual-homes a stub origin onto the
		// first two non-origin ASes: failing the primary attachment
		// forces every AS to re-converge onto paths through the
		// backup, with real path exploration in the legacy part.
		if g.NumNodes() < 3 {
			return Result{}, fmt.Errorf("lab: failover needs >= 3 ASes, topology %q has %d", t.Topo, g.NumNodes())
		}
		origin = topology.BaseASN + idr.ASN(g.NumNodes())
		g.AddNode(origin)
		if err := g.AddEdge(topology.Edge{A: origin, B: topology.BaseASN + 1, Rel: topology.P2P}); err != nil {
			return Result{}, err
		}
		if err := g.AddEdge(topology.Edge{A: origin, B: topology.BaseASN + 2, Rel: topology.P2P}); err != nil {
			return Result{}, err
		}
	}
	// Resolve the policy template against the final graph (after the
	// fail-over origin was added, so the prefix-filter's address plan
	// matches the experiment's).
	pol, err := t.Policy.Build(g)
	if err != nil {
		return Result{}, err
	}
	e, err := experiment.New(experiment.Config{
		Seed:            t.Seed,
		Graph:           g,
		SDNMembers:      members,
		Policy:          pol,
		Timers:          t.Timers,
		Debounce:        t.Debounce,
		Settle:          t.Settle,
		ProcessingDelay: t.ProcessingDelay,
		Damping:         t.Damping,
	})
	if err != nil {
		return Result{}, err
	}
	if err := e.Start(); err != nil {
		return Result{}, err
	}
	if err := e.WaitEstablished(t.EstablishTimeout); err != nil {
		return Result{}, err
	}

	// Warm-up: announce every prefix (except the origin's for the
	// fresh-announcement event; only the origin's when OriginOnly
	// trims the warm-up table) and let routing settle.
	for _, asn := range e.ASNs() {
		if t.Event == Announcement && asn == origin {
			continue
		}
		if t.OriginOnly && asn != origin {
			continue
		}
		if err := e.Announce(asn); err != nil {
			return Result{}, err
		}
	}
	if _, err := e.WaitConverged(t.Timeout); err != nil {
		return Result{}, err
	}

	prefix, err := e.OriginPrefix(origin)
	if err != nil {
		return Result{}, err
	}
	sentBefore, recvBefore := updateCounts(e)
	recompBefore := recomputes(e)
	start := e.K.Now()

	var res Result
	var attacker idr.ASN
	switch t.Event {
	case Withdrawal:
		res.Convergence, err = e.MeasureConvergence(func() error { return e.Withdraw(origin) }, t.Timeout)
	case Announcement:
		res.Convergence, err = e.MeasureConvergence(func() error { return e.Announce(origin) }, t.Timeout)
	case Failover:
		primary := topology.BaseASN + 1
		res.Convergence, err = e.MeasureConvergence(func() error { return e.FailLink(origin, primary) }, t.Timeout)
	case Flap:
		err = runFlapStorm(e, origin, t)
	case Hijack:
		attacker, err = hijackAttacker(e, origin)
		if err != nil {
			return Result{}, err
		}
		res.Convergence, err = e.MeasureConvergence(func() error { return e.AnnounceForeign(attacker, prefix) }, t.Timeout)
	default:
		err = fmt.Errorf("lab: unknown event %v", t.Event)
	}
	if err != nil {
		return Result{}, err
	}
	if t.Event == Hijack {
		res.HijackedASes = countHijacked(e, origin, attacker)
	}

	sentAfter, recvAfter := updateCounts(e)
	res.UpdatesSent = sentAfter - sentBefore
	res.UpdatesReceived = recvAfter - recvBefore
	res.Recomputes = recomputes(e) - recompBefore
	for _, n := range e.Log.PathExplorationCount(prefix, start) {
		res.BestPathChanges += n
	}
	loss := e.Probes.TotalLoss()
	res.ProbesSent, res.ProbesDelivered = loss.Sent, loss.Delivered
	res.ReachableAfter = true
	for _, asn := range e.ASNs() {
		if asn == origin {
			continue
		}
		if !e.Reachable(asn, origin) {
			res.ReachableAfter = false
			break
		}
	}
	return res, nil
}

// runFlapStorm drives the Flap event: FlapCycles withdraw/announce
// cycles, then full settling (damping needs decay time).
func runFlapStorm(e *experiment.Experiment, origin idr.ASN, t Trial) error {
	for i := 0; i < t.FlapCycles; i++ {
		if err := e.Withdraw(origin); err != nil {
			return err
		}
		if err := e.RunFor(t.FlapPeriod / 2); err != nil {
			return err
		}
		if err := e.Announce(origin); err != nil {
			return err
		}
		if err := e.RunFor(t.FlapPeriod / 2); err != nil {
			return err
		}
	}
	if _, err := e.WaitConverged(t.Timeout); err != nil {
		return err
	}
	return e.RunFor(10 * time.Minute)
}

// hijackAttacker picks the bogus originator for a Hijack trial: the
// highest-numbered AS that still runs legacy BGP and is not the
// victim. A fully-clustered network has no legacy attacker and the
// trial errors out (sweep the cluster size below N).
func hijackAttacker(e *experiment.Experiment, origin idr.ASN) (idr.ASN, error) {
	asns := e.ASNs()
	for i := len(asns) - 1; i >= 0; i-- {
		if asns[i] != origin && !e.IsSDNMember(asns[i]) {
			return asns[i], nil
		}
	}
	return 0, fmt.Errorf("lab: hijack needs at least one legacy AS besides the origin")
}

// countHijacked counts the ASes (origin and attacker excluded) whose
// settled best route for the origin prefix terminates at the attacker.
func countHijacked(e *experiment.Experiment, origin, attacker idr.ASN) int {
	n := 0
	for _, asn := range e.ASNs() {
		if asn == origin || asn == attacker {
			continue
		}
		path, ok := e.BestPath(asn, origin)
		if !ok {
			continue
		}
		if last, has := path.Origin(); has && last == attacker {
			n++
		}
	}
	return n
}

func updateCounts(e *experiment.Experiment) (sent, recv uint64) {
	for _, r := range e.Routers {
		s := r.Stats()
		sent += s.UpdatesSent
		recv += s.UpdatesReceived
	}
	return sent, recv
}

func recomputes(e *experiment.Experiment) uint64 {
	if e.Ctrl == nil {
		return 0
	}
	return e.Ctrl.Stats().Recomputes
}
