// Package lab is the unified evaluation API: one fully-specified
// emulation run (Trial) returning one uniform metrics record (Result),
// swept along one declared Axis by a generic parallel Sweep, with one
// encoder layer (table, csv, json, SVG boxplot adapter) over the
// structured output.
//
// The paper's pitch is that users script arbitrary hybrid BGP/SDN
// experiments while the framework handles configuration and
// measurement; lab is the measurement half of that promise. A Trial
// names any topology generator (TopoSpec), an SDN placement strategy
// (Placement), the protocol timers, the triggering workload and a seed
// — and Run executes the full emulation (build, establish, announce,
// converge, trigger, measure) on a private sim.Kernel, so trials are
// share-nothing and deterministic per seed. The trigger is a Workload:
// an ordered schedule of typed, timestamped events, measured one epoch
// per event; the classic Trial.Event enum is documented sugar that
// compiles to an equivalent schedule. internal/figures declares the
// paper's figures and ablations as Sweep specs over this API;
// cmd/convergence exposes the same specs on the command line.
package lab

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bgp"
	"repro/internal/experiment"
	"repro/internal/idr"
	"repro/internal/topology"
)

// Event selects the triggering routing event a trial measures. It is
// sugar over the Workload schedule: each value compiles to its
// equivalent one-entry schedule (the Flap storm to FlapWorkload's
// withdraw/announce pairs), so a Trial with Event set behaves exactly
// like one with the explicit Workload. Set Trial.Workload for
// multi-event timelines; it takes precedence over Event.
type Event int

// Trial events. Their values coincide with the first EventKinds, and
// Event.String/ParseEvent share the workload name table.
const (
	// Withdrawal: the origin AS withdraws an established prefix — the
	// paper's Figure 2 experiment.
	Withdrawal Event = Event(KindWithdrawal)
	// Announcement: the origin AS announces a fresh prefix (§4).
	Announcement Event = Event(KindAnnouncement)
	// Failover: a dual-homed stub origin loses its primary attachment
	// while the prefix stays reachable over the backup (§4).
	Failover Event = Event(KindFailover)
	// Flap: the origin withdraws and re-announces its prefix for
	// FlapCycles periods of FlapPeriod — the stability-ablation storm.
	Flap Event = Event(KindFlap)
	// Hijack: the highest-numbered AS still running legacy BGP
	// announces the origin's prefix (a bogus origination). The result
	// reports how many ASes end up routing toward the attacker
	// (Result.HijackedASes) — the containment question behind the
	// policy figure family.
	Hijack Event = Event(KindHijack)
)

// String names the event through the shared workload name table.
func (ev Event) String() string { return EventKind(ev).String() }

// ParseEvent parses a trial-event name. Only the five trial events are
// accepted; the workload-only kinds (linkdown, linkup, migrate) need
// targets and are parsed by ParseWorkloadEvent.
func ParseEvent(s string) (Event, error) {
	k, err := ParseEventKind(s)
	if err != nil || k > KindHijack {
		return 0, fmt.Errorf("lab: unknown event %q", s)
	}
	return Event(k), nil
}

// Trial fully specifies one seeded emulation run. The zero value plus
// a Topo is runnable: default timers, pure BGP, withdrawal event.
type Trial struct {
	// Topo names the topology generator and its parameters.
	Topo TopoSpec
	// Placement decides the SDN cluster membership.
	Placement Placement
	// Policy selects the routing-policy template applied at every
	// legacy router (and the collector, when attached). The zero value
	// is permit-all — free transit — so existing policy-free trials
	// are unchanged; see PolicySpec for gao-rexford and prefix-filter.
	Policy PolicySpec
	// Event is the triggering routing event to measure — sugar that
	// compiles to a one-entry Workload (see Event). Ignored when
	// Workload is set.
	Event Event
	// Workload, when non-empty, is the trial's schedule of triggering
	// events, measured one epoch per event (Result.Epochs). Targets
	// default to the trial origin (WorkloadEvent.AS zero); the
	// schedule is run in At order.
	Workload Workload
	// Drain adds settling time after the final epoch reaches
	// quiescence, so slow-decaying state (route-flap damping) drains
	// before the end-of-run measurements. The Flap sugar uses 10m;
	// zero adds nothing.
	Drain time.Duration
	// Timers are the BGP protocol timers (zero value selects
	// bgp.DefaultTimers: MRAI 30s with jitter).
	Timers bgp.Timers
	// Debounce is the controller's delayed-recomputation window,
	// passed to experiment.Config verbatim. Zero selects the
	// controller default (core.DefaultDebounce); a negative value
	// disables the delay entirely (recompute immediately). This is the
	// one convention across lab, experiment and core — a zero-length
	// window is the same thing as disabled, so express it with a
	// negative value.
	Debounce time.Duration
	// Settle is the convergence quiescence window (zero derives it
	// from the MRAI; see experiment.Config.Settle).
	Settle time.Duration
	// ProcessingDelay is each router's per-UPDATE processing cost,
	// passed to experiment.Config verbatim (zero disables the model;
	// the clique sweep specs set 25ms, approximating the paper's
	// shared-host Quagga daemons).
	ProcessingDelay time.Duration
	// LinkDelay is the default one-way delay of every inter-AS link
	// (zero selects netem.DefaultDelay; per-edge delays from the
	// topology override it).
	LinkDelay time.Duration
	// LinkJitter is the maximum extra seeded random delay on unreliable
	// (probe) sends across every inter-AS link, uniform in
	// [0, LinkJitter].
	LinkJitter time.Duration
	// LinkLoss is the per-message loss probability in [0, 1] on every
	// inter-AS link, drawn from a per-link stream derived from Seed so
	// lossy runs stay byte-reproducible at any parallelism. Reliable
	// BGP transport recovers losses with retransmission delays (and
	// gives up entirely at Loss 1.0 — sessions never establish); probe
	// traffic is simply dropped.
	LinkLoss float64
	// Damping enables RFC 2439 route-flap damping on legacy routers.
	Damping *bgp.DampingConfig
	// Tuning selects hot-path execution strategies (RIB sharding,
	// kernel batching, timer wheel). Execution-only: every setting
	// yields byte-identical results, so it is excluded from spec
	// canonicalization and artifact cache keys.
	Tuning experiment.Tuning
	// FlapCycles is the number of withdraw/announce cycles of the Flap
	// event (default 6).
	FlapCycles int
	// FlapPeriod is the duration of one flap cycle (default 20s).
	FlapPeriod time.Duration
	// OriginOnly restricts the warm-up to announcing only the trial
	// origin's prefix instead of every AS's. At internet-like scale a
	// full-table warm-up costs O(N²) RIB entries (every router holds a
	// route to every AS) which dominates both memory and run time;
	// every trial event only ever measures the origin prefix, so
	// origin-only warm-up preserves the measured dynamics while making
	// multi-thousand-AS trials feasible. False (the default) keeps the
	// historical full-table warm-up.
	OriginOnly bool
	// Seed drives the run's protocol randomness (MRAI jitter, loss
	// draws); same trial + same seed = identical run.
	Seed int64
	// TopoSeed seeds the random topology generators (internet, er,
	// ba); deterministic generators ignore it. It is separate from
	// Seed so a sweep measures one fixed graph across every cell and
	// run instead of confounding the swept axis with topology
	// variation — Sweep.Run pins it to the sweep's BaseSeed.
	TopoSeed int64
	// Timeout bounds each convergence wait (default 2h virtual).
	Timeout time.Duration
	// EstablishTimeout bounds session establishment (default 5m).
	EstablishTimeout time.Duration
	// WallLimit bounds the trial's real (wall-clock) execution time;
	// when exceeded the kernel aborts with sim.ErrWallBudget. It is an
	// execution guard, not part of the trial's canonical identity: it
	// can only turn a run into a failure, never change a successful
	// result. Zero disables the guard.
	WallLimit time.Duration
}

// Result is the uniform metrics record of one trial, gathered from the
// monitor instrumentation. All counters cover the measurement phase
// (from the first triggering event on), not the warm-up convergence.
// Epochs carries the same counters windowed per scheduled event.
type Result struct {
	// Convergence is the final epoch's convergence time: from the last
	// scheduled event's trigger to the last routing activity it
	// caused. (For the Flap storm that is the time from the last
	// cycle's re-announce to quiescence.)
	Convergence time.Duration
	// UpdatesSent and UpdatesReceived count legacy BGP UPDATE load
	// network-wide during the measurement phase.
	UpdatesSent, UpdatesReceived uint64
	// BestPathChanges counts best-route changes for the origin prefix
	// across all routers (the path-exploration metric after Oliveira
	// et al.).
	BestPathChanges int
	// Recomputes counts controller recomputation batches (zero in
	// pure-BGP trials).
	Recomputes uint64
	// ProbesSent and ProbesDelivered report data-plane probe outcomes
	// (zero unless the trial injects probes).
	ProbesSent, ProbesDelivered uint64
	// HijackedASes counts the ASes whose best route for the victim's
	// prefix leads to the attacker once the run settles (zero when the
	// workload hijacks nothing). The victim and the attacker
	// themselves are not counted.
	HijackedASes int
	// ReachableAfter reports whether every other AS can reach the
	// origin prefix once the run settles (false after a withdrawal by
	// construction; the fail-over and flap checks).
	ReachableAfter bool
	// Epochs holds one record per scheduled workload event, in
	// schedule order: the per-event slice of the counters above
	// (single-event trials have exactly one epoch).
	Epochs []Epoch
}

// withDefaults fills the documented defaults.
func (t Trial) withDefaults() Trial {
	if t.Timers == (bgp.Timers{}) {
		t.Timers = bgp.DefaultTimers()
	}
	if t.Timeout == 0 {
		t.Timeout = 2 * time.Hour
	}
	if t.EstablishTimeout == 0 {
		t.EstablishTimeout = 5 * time.Minute
	}
	if t.FlapCycles == 0 {
		t.FlapCycles = 6
	}
	if t.FlapPeriod == 0 {
		t.FlapPeriod = 20 * time.Second
	}
	return t
}

// flapDrain is the settling time the Flap sugar appends after the
// storm's final quiescence (damping penalties need decay time).
const flapDrain = 10 * time.Minute

// workload resolves the trial's schedule: the explicit Workload when
// set (with the trial's Drain), otherwise the Event sugar compiled to
// its equivalent schedule.
func (t Trial) workload() (Workload, time.Duration, error) {
	if len(t.Workload) > 0 {
		if err := t.Workload.Validate(); err != nil {
			return nil, 0, err
		}
		return t.Workload.sorted(), t.Drain, nil
	}
	switch t.Event {
	case Withdrawal, Announcement, Failover, Hijack:
		return Workload{{Kind: EventKind(t.Event)}}, t.Drain, nil
	case Flap:
		drain := t.Drain
		if drain == 0 {
			drain = flapDrain
		}
		return FlapWorkload(t.FlapCycles, t.FlapPeriod), drain, nil
	default:
		return nil, 0, fmt.Errorf("lab: unknown event %v", t.Event)
	}
}

// Run executes the trial: build the topology, select the cluster,
// bring the network up, announce every prefix, converge, then run the
// workload schedule and measure one epoch per event. It returns the
// uniform metrics record.
func (t Trial) Run() (Result, error) {
	p, err := t.prepare()
	if err != nil {
		return Result{}, err
	}
	e, err := p.warmup()
	if err != nil {
		return Result{}, err
	}
	return p.measure(e)
}

// prepared is one trial resolved to its execution plan: defaults
// applied, the workload compiled and resolved against the origin, the
// topology built, the cluster selected and the experiment config
// assembled. It is the seam between the warm-up phase (whose converged
// state experiment.Snapshot captures) and the measurement phase.
type prepared struct {
	trial  Trial // with defaults applied
	w      Workload
	drain  time.Duration
	origin idr.ASN
	cfg    experiment.Config
}

// prepare resolves the trial to its execution plan without running
// anything.
func (t Trial) prepare() (*prepared, error) {
	t = t.withDefaults()
	w, drain, err := t.workload()
	if err != nil {
		return nil, err
	}
	g, err := t.Topo.Build(rand.New(rand.NewSource(t.TopoSeed)))
	if err != nil {
		return nil, err
	}
	members, err := t.Placement.Select(g)
	if err != nil {
		return nil, err
	}
	origin := topology.BaseASN
	if w.needsDualHomedOrigin() {
		// The fail-over scenario dual-homes a stub origin onto the
		// first two non-origin ASes: failing the primary attachment
		// forces every AS to re-converge onto paths through the
		// backup, with real path exploration in the legacy part. The
		// stub attaches as a customer (P2C toward it), so its prefix
		// propagates globally under valley-free policies too.
		if g.NumNodes() < 3 {
			return nil, fmt.Errorf("lab: failover needs >= 3 ASes, topology %q has %d", t.Topo, g.NumNodes())
		}
		origin = topology.BaseASN + idr.ASN(g.NumNodes())
		g.AddNode(origin)
		if err := g.AddEdge(topology.Edge{A: topology.BaseASN + 1, B: origin, Rel: topology.P2C}); err != nil {
			return nil, err
		}
		if err := g.AddEdge(topology.Edge{A: topology.BaseASN + 2, B: origin, Rel: topology.P2C}); err != nil {
			return nil, err
		}
	}
	w = w.resolve(origin, topology.BaseASN+1)
	// Resolve the policy template against the final graph (after the
	// fail-over origin was added, so the prefix-filter's address plan
	// matches the experiment's).
	pol, err := t.Policy.Build(g)
	if err != nil {
		return nil, err
	}
	return &prepared{
		trial:  t,
		w:      w,
		drain:  drain,
		origin: origin,
		cfg: experiment.Config{
			Seed:            t.Seed,
			Graph:           g,
			SDNMembers:      members,
			Policy:          pol,
			Timers:          t.Timers,
			Debounce:        t.Debounce,
			Settle:          t.Settle,
			ProcessingDelay: t.ProcessingDelay,
			LinkDelay:       t.LinkDelay,
			LinkJitter:      t.LinkJitter,
			LinkLoss:        t.LinkLoss,
			Damping:         t.Damping,
			Tuning:          t.Tuning,
		},
	}, nil
}

// warmup builds and starts the experiment, announces the warm-up
// prefixes and waits for full convergence — the state the snapshot
// cache captures and restores.
func (p *prepared) warmup() (*experiment.Experiment, error) {
	e, err := experiment.New(p.cfg)
	if err != nil {
		return nil, err
	}
	e.K.WallLimit = p.trial.WallLimit
	if err := e.Start(); err != nil {
		return nil, err
	}
	if err := e.WaitEstablished(p.trial.EstablishTimeout); err != nil {
		return nil, err
	}

	// Warm-up: announce every prefix and let routing settle. The
	// origin's own prefix stays unannounced when the schedule opens by
	// announcing it (the fresh-announcement measurement); OriginOnly
	// trims the warm-up to the origin prefix alone.
	skipOrigin := p.w[0].Kind == KindAnnouncement && p.w[0].AS == p.origin
	for _, asn := range e.ASNs() {
		if skipOrigin && asn == p.origin {
			continue
		}
		if p.trial.OriginOnly && asn != p.origin {
			continue
		}
		if err := e.Announce(asn); err != nil {
			return nil, err
		}
	}
	if _, err := e.WaitConverged(p.trial.Timeout); err != nil {
		return nil, err
	}
	return e, nil
}

// measure drives the workload schedule against a warmed-up (or
// restored) experiment and assembles the metrics record.
func (p *prepared) measure(e *experiment.Experiment) (Result, error) {
	prefix, err := e.OriginPrefix(p.origin)
	if err != nil {
		return Result{}, err
	}
	sentBefore, recvBefore := e.UpdateTotals()
	recompBefore := recomputes(e)
	start := e.K.Now().Add(p.w[0].At)

	epochs, hijacked, err := executeWorkload(e, p.w, workloadRun{
		origin:  p.origin,
		prefix:  prefix,
		timeout: p.trial.Timeout,
		drain:   p.drain,
	})
	if err != nil {
		return Result{}, err
	}

	var res Result
	res.Epochs = epochs
	res.Convergence = epochs[len(epochs)-1].Convergence
	if hijacked >= 0 {
		res.HijackedASes = hijacked
	}
	sentAfter, recvAfter := e.UpdateTotals()
	res.UpdatesSent = sentAfter - sentBefore
	res.UpdatesReceived = recvAfter - recvBefore
	res.Recomputes = recomputes(e) - recompBefore
	for _, n := range e.Log.PathExplorationCount(prefix, start) {
		res.BestPathChanges += n
	}
	loss := e.Probes.TotalLoss()
	res.ProbesSent, res.ProbesDelivered = loss.Sent, loss.Delivered
	res.ReachableAfter = true
	for _, asn := range e.ASNs() {
		if asn == p.origin {
			continue
		}
		if !e.Reachable(asn, p.origin) {
			res.ReachableAfter = false
			break
		}
	}
	return res, nil
}

// hijackAttacker picks the bogus originator for a hijack event: the
// highest-numbered AS that still runs legacy BGP and is not the
// victim. A fully-clustered network has no legacy attacker and the
// trial errors out (sweep the cluster size below N).
func hijackAttacker(e *experiment.Experiment, victim idr.ASN) (idr.ASN, error) {
	asns := e.ASNs()
	for i := len(asns) - 1; i >= 0; i-- {
		if asns[i] != victim && !e.IsSDNMember(asns[i]) {
			return asns[i], nil
		}
	}
	return 0, fmt.Errorf("lab: hijack needs at least one legacy AS besides the origin")
}

// countHijacked counts the ASes (victim and attacker excluded) whose
// settled best route for the victim's prefix terminates at the
// attacker.
func countHijacked(e *experiment.Experiment, victim, attacker idr.ASN) int {
	n := 0
	for _, asn := range e.ASNs() {
		if asn == victim || asn == attacker {
			continue
		}
		path, ok := e.BestPath(asn, victim)
		if !ok {
			continue
		}
		if last, has := path.Origin(); has && last == attacker {
			n++
		}
	}
	return n
}

func recomputes(e *experiment.Experiment) uint64 {
	if e.Ctrl == nil {
		return 0
	}
	return e.Ctrl.Stats().Recomputes
}
