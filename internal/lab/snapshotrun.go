package lab

import (
	"fmt"

	"repro/internal/experiment"
)

// The snapshot-backed execution path: RunWithSnapshots sources the
// trial's warmed-up converged state through a SnapshotCache keyed by
// WarmupKeyHash. On a miss the warm-up runs once and its snapshot is
// stored; hit or miss, the measurement ALWAYS starts from a restored
// snapshot, so a cache hit is byte-identical to a cold run by
// construction — the cold path exercises the exact restore the warm
// path replays. When the warm-up key is seed-shared (no MRAI jitter,
// no link loss), one snapshot serves every run seed: the restore
// re-derives the run's random streams from its own seed (the fork).

// RunWithSnapshots executes the trial like Run with its warm-up cached
// in cache. It reports whether the warm-up came from the cache.
func (t Trial) RunWithSnapshots(cache SnapshotCache) (Result, bool, error) {
	p, err := t.prepare()
	if err != nil {
		return Result{}, false, err
	}
	key, err := t.WarmupKeyHash()
	if err != nil {
		return Result{}, false, err
	}
	raw, hit, err := cache.Load(key)
	if err != nil {
		return Result{}, false, fmt.Errorf("lab: snapshot cache: %w", err)
	}
	if !hit {
		e, err := p.warmup()
		if err != nil {
			return Result{}, false, err
		}
		snap, err := e.Snapshot()
		if err != nil {
			return Result{}, false, err
		}
		if raw, err = experiment.EncodeSnapshot(snap); err != nil {
			return Result{}, false, err
		}
		if err := cache.Store(key, raw); err != nil {
			return Result{}, false, fmt.Errorf("lab: snapshot cache: %w", err)
		}
	}
	e, err := p.restore(raw)
	if err != nil {
		return Result{}, hit, fmt.Errorf("lab: warm-up snapshot %.12s: %w", key, err)
	}
	res, err := p.measure(e)
	return res, hit, err
}

// restore rebuilds a runnable warmed-up experiment from encoded
// snapshot bytes, re-deriving its random streams from the plan's own
// seed.
func (p *prepared) restore(raw []byte) (*experiment.Experiment, error) {
	snap, err := experiment.DecodeSnapshot(raw)
	if err != nil {
		return nil, err
	}
	e, err := experiment.Restore(p.cfg, snap)
	if err != nil {
		return nil, err
	}
	e.K.WallLimit = p.trial.WallLimit
	return e, nil
}

// WarmupSnapshot runs only the trial's warm-up phase and returns its
// encoded snapshot — the bytes RunWithSnapshots caches. Exposed for
// the benchmarks and the snapshot-equivalence harness.
func (t Trial) WarmupSnapshot() ([]byte, error) {
	p, err := t.prepare()
	if err != nil {
		return nil, err
	}
	e, err := p.warmup()
	if err != nil {
		return nil, err
	}
	snap, err := e.Snapshot()
	if err != nil {
		return nil, err
	}
	return experiment.EncodeSnapshot(snap)
}

// RestoreWarmup rebuilds the warmed-up experiment from WarmupSnapshot
// bytes taken under the same warm-up key. The trial's Seed chooses the
// continuation's random streams — a different seed forks the warm-up.
func (t Trial) RestoreWarmup(raw []byte) (*experiment.Experiment, error) {
	p, err := t.prepare()
	if err != nil {
		return nil, err
	}
	return p.restore(raw)
}
