package lab

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunnerDoCoversAllIndices(t *testing.T) {
	for _, p := range []int{0, 1, 3, 16} {
		n := 37
		hits := make([]atomic.Int32, n)
		err := Runner{Parallelism: p}.Do(n, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("parallelism %d: task %d ran %d times", p, i, got)
			}
		}
	}
	if err := (Runner{}).Do(0, func(int) error { panic("no tasks") }); err != nil {
		t.Fatal(err)
	}
}

func TestRunnerDoReturnsLowestIndexError(t *testing.T) {
	// Whatever the schedule, the reported error must be the
	// lowest-index failure, so parallel error output is deterministic.
	for _, p := range []int{1, 8} {
		err := Runner{Parallelism: p}.Do(20, func(i int) error {
			if i%2 == 1 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "task 1 failed") {
			t.Fatalf("parallelism %d: err = %v, want task 1's", p, err)
		}
	}
}
