package lab

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunnerDoCoversAllIndices(t *testing.T) {
	for _, p := range []int{0, 1, 3, 16} {
		n := 37
		hits := make([]atomic.Int32, n)
		err := Runner{Parallelism: p}.Do(n, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("parallelism %d: task %d ran %d times", p, i, got)
			}
		}
	}
	if err := (Runner{}).Do(0, func(int) error { panic("no tasks") }); err != nil {
		t.Fatal(err)
	}
}

func TestRunnerProgress(t *testing.T) {
	// Sequential: one call per task, done counts strictly 1..n.
	var seq []int
	err := Runner{Parallelism: 1, Progress: func(done, total int) {
		if total != 10 {
			t.Fatalf("total = %d, want 10", total)
		}
		seq = append(seq, done)
	}}.Do(10, func(int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 10 {
		t.Fatalf("progress calls = %d, want 10", len(seq))
	}
	for i, d := range seq {
		if d != i+1 {
			t.Fatalf("sequential progress[%d] = %d, want %d", i, d, i+1)
		}
	}

	// Parallel: exactly one call per task; the final done count must
	// reach n even though calls may interleave.
	var calls, max atomic.Int32
	err = Runner{Parallelism: 4, Progress: func(done, total int) {
		calls.Add(1)
		for {
			cur := max.Load()
			if int32(done) <= cur || max.CompareAndSwap(cur, int32(done)) {
				break
			}
		}
	}}.Do(25, func(int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 25 || max.Load() != 25 {
		t.Fatalf("parallel progress: %d calls, max done %d, want 25/25", calls.Load(), max.Load())
	}
}

// TestSweepProgressStreams wires the callback through a real sweep.
func TestSweepProgressStreams(t *testing.T) {
	var done atomic.Int32
	s := Sweep{
		Name:        "progress",
		Base:        Trial{Topo: TopoSpec{Kind: "line", N: 3}},
		Axis:        SDNCounts(0, 1),
		Runs:        2,
		Parallelism: 1,
		Progress:    func(d, total int) { done.Store(int32(d)); _ = total },
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if done.Load() != 4 {
		t.Fatalf("final progress done = %d, want 4 (2 cells x 2 runs)", done.Load())
	}
}

func TestRunnerDoReturnsLowestIndexError(t *testing.T) {
	// Whatever the schedule, the reported error must be the
	// lowest-index failure, so parallel error output is deterministic.
	for _, p := range []int{1, 8} {
		err := Runner{Parallelism: p}.Do(20, func(i int) error {
			if i%2 == 1 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "task 1 failed") {
			t.Fatalf("parallelism %d: err = %v, want task 1's", p, err)
		}
	}
}
