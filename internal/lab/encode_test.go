package lab

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/stats"
)

// fixedResult builds a small synthetic sweep result with hand-picked
// numbers so the encoder goldens are exact and fast (no emulation).
func fixedResult() *SweepResult {
	mk := func(durs []time.Duration, updates uint64, changes int, recomp uint64, reach bool) Cell {
		results := make([]Result, len(durs))
		for i, d := range durs {
			results[i] = Result{
				Convergence:     d,
				UpdatesSent:     updates,
				UpdatesReceived: updates,
				BestPathChanges: changes,
				Recomputes:      recomp,
				ReachableAfter:  reach,
			}
		}
		return Cell{Results: results, Summary: stats.SummarizeDurations(durs)}
	}
	sweep := Sweep{
		Name: "fig2",
		Base: Trial{Topo: TopoSpec{Kind: "clique", N: 4}, Event: Withdrawal},
		Axis: SDNCounts(0, 2),
		Runs: 2, BaseSeed: 1,
	}
	c0 := mk([]time.Duration{40 * time.Second, 50 * time.Second}, 120, 30, 0, false)
	c1 := mk([]time.Duration{10 * time.Second, 20 * time.Second}, 40, 10, 4, false)
	cells := []Cell{c0, c1}
	for i := range cells {
		cells[i].Label = sweep.Axis.Label(i)
		cells[i].Value = sweep.Axis.Value(i)
		cells[i].Fraction = cells[i].Value / float64(sweep.Base.Topo.Nodes())
	}
	return &SweepResult{
		Name: sweep.Name, Event: sweep.Base.Event, Topo: sweep.Base.Topo,
		Axis: sweep.Axis, Runs: sweep.Runs, BaseSeed: sweep.BaseSeed, Cells: cells,
	}
}

func encode(t *testing.T, f Format, res *SweepResult) string {
	t.Helper()
	var sb strings.Builder
	if err := Write(&sb, f, res); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestWriteTableGolden(t *testing.T) {
	got := encode(t, FormatTable, fixedResult())
	want := `# fig2: withdrawal convergence on clique 4 vs sdn_k (policy permit-all, 2 runs/point, seed 1)
sdn_k        fraction     n    min_s     q1_s    med_s     q3_s    max_s   mean_s   updates  best_chg recomputes reachable
0            0.000        2   40.000   42.500   45.000   47.500   50.000   45.000     120.0      30.0        0.0     false
2            0.500        2   10.000   12.500   15.000   17.500   20.000   15.000      40.0      10.0        4.0     false
# linear fit: t = 45.0s -60.0s*fraction (r2=1.000)
`
	if got != want {
		t.Fatalf("table golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWriteCSVGolden(t *testing.T) {
	got := encode(t, FormatCSV, fixedResult())
	want := `sdn_k,value,fraction,n,min_s,q1_s,med_s,q3_s,max_s,mean_s,updates_sent,updates_recv,best_path_changes,recomputes,hijacked,reachable_after,epoch,epoch_kind,epoch_at_s,failed
0,0,0,2,40,42.5,45,47.5,50,45,120,120,30,0,0,false,,,,0
2,2,0.5,2,10,12.5,15,17.5,20,15,40,40,10,4,0,false,,,,0
`
	if got != want {
		t.Fatalf("csv golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWriteJSONGolden(t *testing.T) {
	got := encode(t, FormatJSON, fixedResult())
	want := `{
  "experiment": "fig2",
  "event": "withdrawal",
  "topology": "clique 4",
  "policy": "permit-all",
  "axis": "sdn_k",
  "runs": 2,
  "base_seed": 1,
  "cells": [
    {
      "label": "0",
      "value": 0,
      "fraction": 0,
      "n": 2,
      "min_s": 40,
      "q1_s": 42.5,
      "med_s": 45,
      "q3_s": 47.5,
      "max_s": 50,
      "mean_s": 45,
      "durations_s": [
        40,
        50
      ],
      "updates_sent": 120,
      "updates_recv": 120,
      "best_path_changes": 30,
      "recomputes": 0,
      "hijacked": 0,
      "reachable_after": false
    },
    {
      "label": "2",
      "value": 2,
      "fraction": 0.5,
      "n": 2,
      "min_s": 10,
      "q1_s": 12.5,
      "med_s": 15,
      "q3_s": 17.5,
      "max_s": 20,
      "mean_s": 15,
      "durations_s": [
        10,
        20
      ],
      "updates_sent": 40,
      "updates_recv": 40,
      "best_path_changes": 10,
      "recomputes": 4,
      "hijacked": 0,
      "reachable_after": false
    }
  ],
  "fit": {
    "intercept_s": 45,
    "slope_s": -60,
    "r2": 1
  }
}
`
	if got != want {
		t.Fatalf("json golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// And it must be valid JSON, machine-readably.
	var parsed map[string]any
	if err := json.Unmarshal([]byte(got), &parsed); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
}

// TestWriteModeAxis covers the non-numeric axis: no value/fraction
// columns, no fit.
func TestWriteModeAxis(t *testing.T) {
	res := fixedResult()
	res.Name, res.Event = "flap", Flap
	res.Axis = Modes(ModeBGP, ModeSDN)
	for i := range res.Cells {
		res.Cells[i].Label = res.Axis.Label(i)
		res.Cells[i].Value = res.Axis.Value(i)
		res.Cells[i].Fraction = res.Axis.Value(i) // NaN
	}
	table := encode(t, FormatTable, res)
	if strings.Contains(table, "linear fit") {
		t.Fatalf("mode axis must not be fitted:\n%s", table)
	}
	if !strings.Contains(table, "mode") || !strings.Contains(table, "bgp") {
		t.Fatalf("mode labels missing:\n%s", table)
	}
	csv := encode(t, FormatCSV, res)
	if !strings.Contains(csv, "\nbgp,,,") {
		t.Fatalf("mode csv should leave value/fraction empty:\n%s", csv)
	}
	var parsed map[string]any
	if err := json.Unmarshal([]byte(encode(t, FormatJSON, res)), &parsed); err != nil {
		t.Fatalf("mode json invalid: %v", err)
	}
	if _, hasFit := parsed["fit"]; hasFit {
		t.Fatal("mode json must omit fit")
	}
}

// fixedWorkloadResult builds a synthetic two-event (maintenance
// window) sweep result with hand-picked per-epoch numbers, so the
// per-epoch encoder goldens are exact and fast.
func fixedWorkloadResult() *SweepResult {
	w := Workload{
		{At: 0, Kind: KindWithdrawal},
		{At: 2 * time.Minute, Kind: KindAnnouncement},
	}
	mkEpochs := func(c1, c2 time.Duration, u1, u2 uint64) []Epoch {
		return []Epoch{
			{Kind: KindWithdrawal, At: 0, Convergence: c1, UpdatesSent: u1, UpdatesReceived: u1, BestPathChanges: 5, Recomputes: 1},
			{Kind: KindAnnouncement, At: 2 * time.Minute, Convergence: c2, UpdatesSent: u2, UpdatesReceived: u2, BestPathChanges: 3, Recomputes: 1},
		}
	}
	mk := func(durs []time.Duration, updates uint64, epochs [][]Epoch) Cell {
		results := make([]Result, len(durs))
		for i, d := range durs {
			results[i] = Result{
				Convergence:     d,
				UpdatesSent:     updates,
				UpdatesReceived: updates,
				BestPathChanges: 8,
				Recomputes:      2,
				ReachableAfter:  true,
				Epochs:          epochs[i],
			}
		}
		c := Cell{Results: results, Summary: stats.SummarizeDurations(durs)}
		c.Epochs = summarizeEpochs(results)
		return c
	}
	sweep := Sweep{
		Name: "maint",
		Base: Trial{Topo: TopoSpec{Kind: "clique", N: 4}, Workload: w},
		Axis: SDNCounts(0, 2),
		Runs: 2, BaseSeed: 1,
	}
	c0 := mk([]time.Duration{20 * time.Second, 30 * time.Second}, 100,
		[][]Epoch{mkEpochs(40*time.Second, 20*time.Second, 60, 40), mkEpochs(50*time.Second, 30*time.Second, 60, 40)})
	c1 := mk([]time.Duration{5 * time.Second, 15 * time.Second}, 40,
		[][]Epoch{mkEpochs(10*time.Second, 5*time.Second, 25, 15), mkEpochs(20*time.Second, 15*time.Second, 25, 15)})
	cells := []Cell{c0, c1}
	for i := range cells {
		cells[i].Label = sweep.Axis.Label(i)
		cells[i].Value = sweep.Axis.Value(i)
		cells[i].Fraction = cells[i].Value / float64(sweep.Base.Topo.Nodes())
	}
	return &SweepResult{
		Name: sweep.Name, Event: sweep.Base.Event, Workload: w, Topo: sweep.Base.Topo,
		Axis: sweep.Axis, Runs: sweep.Runs, BaseSeed: sweep.BaseSeed, Cells: cells,
	}
}

// TestWriteTableWorkloadGolden pins the per-epoch sub-rows of the
// human table: one indented row per scheduled event under each cell.
func TestWriteTableWorkloadGolden(t *testing.T) {
	got := encode(t, FormatTable, fixedWorkloadResult())
	want := `# maint: withdraw@0s; announce@2m0s convergence on clique 4 vs sdn_k (policy permit-all, 2 runs/point, seed 1)
sdn_k        fraction     n    min_s     q1_s    med_s     q3_s    max_s   mean_s   updates  best_chg recomputes reachable
0            0.000        2   20.000   22.500   25.000   27.500   30.000   25.000     100.0       8.0        2.0      true
  @0s withdraw            2   40.000   42.500   45.000   47.500   50.000   45.000      60.0       5.0        1.0
  @2m0s announce          2   20.000   22.500   25.000   27.500   30.000   25.000      40.0       3.0        1.0
2            0.500        2    5.000    7.500   10.000   12.500   15.000   10.000      40.0       8.0        2.0      true
  @0s withdraw            2   10.000   12.500   15.000   17.500   20.000   15.000      25.0       5.0        1.0
  @2m0s announce          2    5.000    7.500   10.000   12.500   15.000   10.000      15.0       3.0        1.0
# linear fit: t = 25.0s -30.0s*fraction (r2=1.000)
`
	if got != want {
		t.Fatalf("workload table golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWriteCSVWorkloadGolden pins the per-epoch CSV rows: cell-summary
// rows leave the trailing epoch columns empty; epoch rows fill them
// and window every statistic column to the epoch.
func TestWriteCSVWorkloadGolden(t *testing.T) {
	got := encode(t, FormatCSV, fixedWorkloadResult())
	want := `sdn_k,value,fraction,n,min_s,q1_s,med_s,q3_s,max_s,mean_s,updates_sent,updates_recv,best_path_changes,recomputes,hijacked,reachable_after,epoch,epoch_kind,epoch_at_s,failed
0,0,0,2,20,22.5,25,27.5,30,25,100,100,8,2,0,true,,,,0
0,0,0,2,40,42.5,45,47.5,50,45,60,60,5,1,0,,0,withdrawal,0,
0,0,0,2,20,22.5,25,27.5,30,25,40,40,3,1,0,,1,announcement,120,
2,2,0.5,2,5,7.5,10,12.5,15,10,40,40,8,2,0,true,,,,0
2,2,0.5,2,10,12.5,15,17.5,20,15,25,25,5,1,0,,0,withdrawal,0,
2,2,0.5,2,5,7.5,10,12.5,15,10,15,15,3,1,0,,1,announcement,120,
`
	if got != want {
		t.Fatalf("workload csv golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWriteJSONWorkload pins the per-epoch JSON: the workload echo,
// the schedule-form event label, and the full epochs array content.
func TestWriteJSONWorkload(t *testing.T) {
	got := encode(t, FormatJSON, fixedWorkloadResult())
	var parsed struct {
		Event    string `json:"event"`
		Workload []struct {
			Kind string  `json:"kind"`
			AtS  float64 `json:"at_s"`
		} `json:"workload"`
		Cells []struct {
			Label  string `json:"label"`
			Epochs []struct {
				Epoch       int       `json:"epoch"`
				Kind        string    `json:"kind"`
				AtS         float64   `json:"at_s"`
				MedS        float64   `json:"med_s"`
				DurationsS  []float64 `json:"durations_s"`
				UpdatesSent float64   `json:"updates_sent"`
				Hijacked    float64   `json:"hijacked"`
			} `json:"epochs"`
		} `json:"cells"`
	}
	if err := json.Unmarshal([]byte(got), &parsed); err != nil {
		t.Fatalf("workload json invalid: %v", err)
	}
	if parsed.Event != "withdraw@0s; announce@2m0s" {
		t.Fatalf("event label = %q", parsed.Event)
	}
	if len(parsed.Workload) != 2 || parsed.Workload[0].Kind != "withdrawal" || parsed.Workload[1].AtS != 120 {
		t.Fatalf("workload echo = %+v", parsed.Workload)
	}
	if len(parsed.Cells) != 2 {
		t.Fatalf("cells = %d", len(parsed.Cells))
	}
	ep := parsed.Cells[0].Epochs
	if len(ep) != 2 {
		t.Fatalf("cell 0 epochs = %d, want 2", len(ep))
	}
	if ep[0].Kind != "withdrawal" || ep[0].MedS != 45 || !reflect.DeepEqual(ep[0].DurationsS, []float64{40, 50}) || ep[0].UpdatesSent != 60 {
		t.Fatalf("epoch 0 = %+v", ep[0])
	}
	if ep[1].Kind != "announcement" || ep[1].AtS != 120 || ep[1].MedS != 25 || ep[1].UpdatesSent != 40 {
		t.Fatalf("epoch 1 = %+v", ep[1])
	}
	// Single-event results must keep the epoch-free shape.
	single := encode(t, FormatJSON, fixedResult())
	if strings.Contains(single, `"epochs"`) || strings.Contains(single, `"workload"`) {
		t.Fatalf("single-event json must omit epochs/workload:\n%s", single)
	}
}

func TestParseFormat(t *testing.T) {
	for _, s := range []string{"table", "csv", "json"} {
		if _, err := ParseFormat(s); err != nil {
			t.Fatalf("%q: %v", s, err)
		}
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Fatal("unknown format should error")
	}
}

// TestWriteMarkdownGolden pins the GFM encoder: the config-echo line,
// the pipe table, and the full-precision fit line REPORT.md embeds.
func TestWriteMarkdownGolden(t *testing.T) {
	got := encode(t, FormatMarkdown, fixedResult())
	want := `**fig2** — withdrawal on clique 4 vs sdn_k (policy permit-all, 2 runs/point, seed 1)

| sdn_k | fraction | n | min_s | q1_s | med_s | q3_s | max_s | mean_s | updates | best_chg | recomputes | reachable |
|:--|--:|--:|--:|--:|--:|--:|--:|--:|--:|--:|--:|--:|
| 0 | 0.000 | 2 | 40.000 | 42.500 | 45.000 | 47.500 | 50.000 | 45.000 | 120.0 | 30.0 | 0.0 | false |
| 2 | 0.500 | 2 | 10.000 | 12.500 | 15.000 | 17.500 | 20.000 | 15.000 | 40.0 | 10.0 | 4.0 | false |

Linear fit: t = 45.000 s -60.000 s × fraction (r² = 1.000).
`
	if got != want {
		t.Fatalf("markdown golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWriteMarkdownWorkloadGolden pins the per-epoch sub-rows of the
// markdown table: one indented row per scheduled event under each
// cell, same statistic columns windowed to the epoch.
func TestWriteMarkdownWorkloadGolden(t *testing.T) {
	got := encode(t, FormatMarkdown, fixedWorkloadResult())
	want := `**maint** — withdraw@0s; announce@2m0s on clique 4 vs sdn_k (policy permit-all, 2 runs/point, seed 1)

| sdn_k | fraction | n | min_s | q1_s | med_s | q3_s | max_s | mean_s | updates | best_chg | recomputes | reachable |
|:--|--:|--:|--:|--:|--:|--:|--:|--:|--:|--:|--:|--:|
| 0 | 0.000 | 2 | 20.000 | 22.500 | 25.000 | 27.500 | 30.000 | 25.000 | 100.0 | 8.0 | 2.0 | true |
| &nbsp;&nbsp;@0s withdraw | 0.000 | 2 | 40.000 | 42.500 | 45.000 | 47.500 | 50.000 | 45.000 | 60.0 | 5.0 | 1.0 |  |
| &nbsp;&nbsp;@2m0s announce | 0.000 | 2 | 20.000 | 22.500 | 25.000 | 27.500 | 30.000 | 25.000 | 40.0 | 3.0 | 1.0 |  |
| 2 | 0.500 | 2 | 5.000 | 7.500 | 10.000 | 12.500 | 15.000 | 10.000 | 40.0 | 8.0 | 2.0 | true |
| &nbsp;&nbsp;@0s withdraw | 0.500 | 2 | 10.000 | 12.500 | 15.000 | 17.500 | 20.000 | 15.000 | 25.0 | 5.0 | 1.0 |  |
| &nbsp;&nbsp;@2m0s announce | 0.500 | 2 | 5.000 | 7.500 | 10.000 | 12.500 | 15.000 | 10.000 | 15.0 | 3.0 | 1.0 |  |

Linear fit: t = 25.000 s -30.000 s × fraction (r² = 1.000).
`
	if got != want {
		t.Fatalf("markdown workload golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
