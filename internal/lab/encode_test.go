package lab

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/stats"
)

// fixedResult builds a small synthetic sweep result with hand-picked
// numbers so the encoder goldens are exact and fast (no emulation).
func fixedResult() *SweepResult {
	mk := func(durs []time.Duration, updates uint64, changes int, recomp uint64, reach bool) Cell {
		results := make([]Result, len(durs))
		for i, d := range durs {
			results[i] = Result{
				Convergence:     d,
				UpdatesSent:     updates,
				UpdatesReceived: updates,
				BestPathChanges: changes,
				Recomputes:      recomp,
				ReachableAfter:  reach,
			}
		}
		return Cell{Results: results, Summary: stats.SummarizeDurations(durs)}
	}
	sweep := Sweep{
		Name: "fig2",
		Base: Trial{Topo: TopoSpec{Kind: "clique", N: 4}, Event: Withdrawal},
		Axis: SDNCounts(0, 2),
		Runs: 2, BaseSeed: 1,
	}
	c0 := mk([]time.Duration{40 * time.Second, 50 * time.Second}, 120, 30, 0, false)
	c1 := mk([]time.Duration{10 * time.Second, 20 * time.Second}, 40, 10, 4, false)
	cells := []Cell{c0, c1}
	for i := range cells {
		cells[i].Label = sweep.Axis.Label(i)
		cells[i].Value = sweep.Axis.Value(i)
		cells[i].Fraction = cells[i].Value / float64(sweep.Base.Topo.Nodes())
	}
	return &SweepResult{
		Name: sweep.Name, Event: sweep.Base.Event, Topo: sweep.Base.Topo,
		Axis: sweep.Axis, Runs: sweep.Runs, BaseSeed: sweep.BaseSeed, Cells: cells,
	}
}

func encode(t *testing.T, f Format, res *SweepResult) string {
	t.Helper()
	var sb strings.Builder
	if err := Write(&sb, f, res); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestWriteTableGolden(t *testing.T) {
	got := encode(t, FormatTable, fixedResult())
	want := `# fig2: withdrawal convergence on clique 4 vs sdn_k (policy permit-all, 2 runs/point, seed 1)
sdn_k        fraction     n    min_s     q1_s    med_s     q3_s    max_s   mean_s   updates  best_chg recomputes reachable
0            0.000        2   40.000   42.500   45.000   47.500   50.000   45.000     120.0      30.0        0.0     false
2            0.500        2   10.000   12.500   15.000   17.500   20.000   15.000      40.0      10.0        4.0     false
# linear fit: t = 45.0s -60.0s*fraction (r2=1.000)
`
	if got != want {
		t.Fatalf("table golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWriteCSVGolden(t *testing.T) {
	got := encode(t, FormatCSV, fixedResult())
	want := `sdn_k,value,fraction,n,min_s,q1_s,med_s,q3_s,max_s,mean_s,updates_sent,updates_recv,best_path_changes,recomputes,hijacked,reachable_after
0,0,0,2,40,42.5,45,47.5,50,45,120,120,30,0,0,false
2,2,0.5,2,10,12.5,15,17.5,20,15,40,40,10,4,0,false
`
	if got != want {
		t.Fatalf("csv golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWriteJSONGolden(t *testing.T) {
	got := encode(t, FormatJSON, fixedResult())
	want := `{
  "experiment": "fig2",
  "event": "withdrawal",
  "topology": "clique 4",
  "policy": "permit-all",
  "axis": "sdn_k",
  "runs": 2,
  "base_seed": 1,
  "cells": [
    {
      "label": "0",
      "value": 0,
      "fraction": 0,
      "n": 2,
      "min_s": 40,
      "q1_s": 42.5,
      "med_s": 45,
      "q3_s": 47.5,
      "max_s": 50,
      "mean_s": 45,
      "durations_s": [
        40,
        50
      ],
      "updates_sent": 120,
      "updates_recv": 120,
      "best_path_changes": 30,
      "recomputes": 0,
      "hijacked": 0,
      "reachable_after": false
    },
    {
      "label": "2",
      "value": 2,
      "fraction": 0.5,
      "n": 2,
      "min_s": 10,
      "q1_s": 12.5,
      "med_s": 15,
      "q3_s": 17.5,
      "max_s": 20,
      "mean_s": 15,
      "durations_s": [
        10,
        20
      ],
      "updates_sent": 40,
      "updates_recv": 40,
      "best_path_changes": 10,
      "recomputes": 4,
      "hijacked": 0,
      "reachable_after": false
    }
  ],
  "fit": {
    "intercept_s": 45,
    "slope_s": -60,
    "r2": 1
  }
}
`
	if got != want {
		t.Fatalf("json golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// And it must be valid JSON, machine-readably.
	var parsed map[string]any
	if err := json.Unmarshal([]byte(got), &parsed); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
}

// TestWriteModeAxis covers the non-numeric axis: no value/fraction
// columns, no fit.
func TestWriteModeAxis(t *testing.T) {
	res := fixedResult()
	res.Name, res.Event = "flap", Flap
	res.Axis = Modes(ModeBGP, ModeSDN)
	for i := range res.Cells {
		res.Cells[i].Label = res.Axis.Label(i)
		res.Cells[i].Value = res.Axis.Value(i)
		res.Cells[i].Fraction = res.Axis.Value(i) // NaN
	}
	table := encode(t, FormatTable, res)
	if strings.Contains(table, "linear fit") {
		t.Fatalf("mode axis must not be fitted:\n%s", table)
	}
	if !strings.Contains(table, "mode") || !strings.Contains(table, "bgp") {
		t.Fatalf("mode labels missing:\n%s", table)
	}
	csv := encode(t, FormatCSV, res)
	if !strings.Contains(csv, "\nbgp,,,") {
		t.Fatalf("mode csv should leave value/fraction empty:\n%s", csv)
	}
	var parsed map[string]any
	if err := json.Unmarshal([]byte(encode(t, FormatJSON, res)), &parsed); err != nil {
		t.Fatalf("mode json invalid: %v", err)
	}
	if _, hasFit := parsed["fit"]; hasFit {
		t.Fatal("mode json must omit fit")
	}
}

func TestParseFormat(t *testing.T) {
	for _, s := range []string{"table", "csv", "json"} {
		if _, err := ParseFormat(s); err != nil {
			t.Fatalf("%q: %v", s, err)
		}
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Fatal("unknown format should error")
	}
}
