package lab

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/bgp"
)

// snapTimers returns fast test timers; jitter makes the kernel RNG
// stream position (and so the per-run seed) matter.
func snapTimers(jitter bool) bgp.Timers {
	return bgp.Timers{
		HoldTime:          90 * time.Second,
		KeepaliveFraction: 3,
		ConnectRetry:      time.Second,
		MRAI:              2 * time.Second,
		MRAIJitter:        jitter,
	}
}

// TestRunWithSnapshotsMatchesRun is the lab-level round-trip property
// test: across seeded random (topology, policy, workload) triples, a
// trial run through the snapshot path — warm up, snapshot, restore,
// measure — must produce exactly the Result of the plain path, and a
// second run against the warm cache must hit and reproduce it again.
func TestRunWithSnapshotsMatchesRun(t *testing.T) {
	topos := []TopoSpec{
		{Kind: "clique", N: 5},
		{Kind: "ring", N: 6},
		{Kind: "line", N: 5},
		{Kind: "grid", N: 2, M: 3},
		{Kind: "er", N: 7, P: 0.6},
	}
	policies := []PolicySpec{{}, {Kind: PolicyGaoRexford}, {Kind: PolicyPrefixFilter}}
	workloads := []func(tr *Trial){
		func(tr *Trial) { tr.Event = Withdrawal },
		func(tr *Trial) { tr.Event = Announcement },
		func(tr *Trial) { tr.Event = Failover },
		func(tr *Trial) { tr.Event = Hijack },
		func(tr *Trial) {
			tr.Workload = Workload{
				{At: 0, Kind: KindWithdrawal},
				{At: 2 * time.Minute, Kind: KindAnnouncement},
			}
		},
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 8; i++ {
		tr := Trial{
			Topo:     topos[rng.Intn(len(topos))],
			Policy:   policies[rng.Intn(len(policies))],
			Timers:   snapTimers(rng.Intn(2) == 0),
			Seed:     rng.Int63n(1000),
			TopoSeed: 7,
		}
		workloads[rng.Intn(len(workloads))](&tr)
		if rng.Intn(2) == 0 && tr.Topo.Nodes() >= 5 {
			tr.Placement = Placement{Strategy: PlaceLast, K: 2}
		}
		name := tr.Topo.String() + "/" + tr.Policy.String()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			want, err := tr.Run()
			if err != nil {
				t.Fatal(err)
			}
			cache := NewMemorySnapshotCache()
			cold, hit, err := tr.RunWithSnapshots(cache)
			if err != nil {
				t.Fatal(err)
			}
			if hit {
				t.Fatal("first snapshot run reported a cache hit")
			}
			if !reflect.DeepEqual(cold, want) {
				t.Fatalf("cold snapshot run diverged from plain run:\nplain: %+v\nsnap:  %+v", want, cold)
			}
			warm, hit, err := tr.RunWithSnapshots(cache)
			if err != nil {
				t.Fatal(err)
			}
			if !hit {
				t.Fatal("second snapshot run missed the cache")
			}
			if !reflect.DeepEqual(warm, want) {
				t.Fatalf("warm snapshot run diverged from plain run:\nplain: %+v\nwarm:  %+v", want, warm)
			}
		})
	}
}

// TestWarmupKeySeparation pins which trial differences change the
// warm-up key (they reach the converged state) and which must not
// (they only shape the measurement after the fork point).
func TestWarmupKeySeparation(t *testing.T) {
	base := Trial{
		Topo:   TopoSpec{Kind: "clique", N: 5},
		Event:  Withdrawal,
		Timers: snapTimers(true),
		Seed:   1,
	}
	hash := func(tr Trial) string {
		h, err := tr.WarmupKeyHash()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	mutate := func(f func(*Trial)) Trial {
		tr := base
		f(&tr)
		return tr
	}

	// Warm-up-affecting differences must separate keys.
	differ := map[string]Trial{
		// OriginOnly trims the warm-up table: an origin-only and a
		// full-table warm-up must never share a snapshot (the >= 128
		// auto-enable in internal/figures relies on this).
		"origin-only":  mutate(func(tr *Trial) { tr.OriginOnly = true }),
		"topology":     mutate(func(tr *Trial) { tr.Topo = TopoSpec{Kind: "ring", N: 5} }),
		"topo-seed":    mutate(func(tr *Trial) { tr.TopoSeed = 9 }),
		"policy":       mutate(func(tr *Trial) { tr.Policy = PolicySpec{Kind: PolicyGaoRexford} }),
		"placement":    mutate(func(tr *Trial) { tr.Placement = Placement{Strategy: PlaceLast, K: 2} }),
		"mrai":         mutate(func(tr *Trial) { tr.Timers.MRAI = 5 * time.Second }),
		"link-loss":    mutate(func(tr *Trial) { tr.LinkLoss = 0.01 }),
		"damping":      mutate(func(tr *Trial) { tr.Damping = &bgp.DampingConfig{} }),
		"seed-jitter":  mutate(func(tr *Trial) { tr.Seed = 2 }),
		"first-event":  mutate(func(tr *Trial) { tr.Event = Announcement }),
		"dual-origin":  mutate(func(tr *Trial) { tr.Event = Failover }),
		"conv-timeout": mutate(func(tr *Trial) { tr.Timeout = time.Hour }),
	}
	for name, tr := range differ {
		if hash(tr) == hash(base) {
			t.Errorf("%s: warm-up key unchanged, trials would wrongly share a snapshot", name)
		}
	}

	// Measurement-only differences must share the key.
	same := map[string]Trial{
		"drain":      mutate(func(tr *Trial) { tr.Drain = 10 * time.Minute }),
		"wall-limit": mutate(func(tr *Trial) { tr.WallLimit = time.Minute }),
		"schedule-tail": mutate(func(tr *Trial) {
			tr.Event = 0
			tr.Workload = Workload{
				{At: 0, Kind: KindWithdrawal},
				{At: 5 * time.Minute, Kind: KindAnnouncement},
			}
		}),
	}
	for name, tr := range same {
		if hash(tr) != hash(base) {
			t.Errorf("%s: warm-up key changed, identical warm-ups would not share a snapshot", name)
		}
	}

	// The flap sugar's storm shape is pure measurement: every cycle
	// count compiles to the same withdraw-first warm-up.
	flap := mutate(func(tr *Trial) { tr.Event = Flap })
	flap12 := mutate(func(tr *Trial) { tr.Event = Flap; tr.FlapCycles = 12 })
	if hash(flap) != hash(flap12) {
		t.Error("flap cycle count changed the warm-up key")
	}

	// Without seeded warm-up draws (no jitter, no loss) one snapshot
	// serves every seed: the restore forks the shared warm-up.
	quiet := mutate(func(tr *Trial) { tr.Timers = snapTimers(false) })
	quiet2 := quiet
	quiet2.Seed = 99
	if hash(quiet) != hash(quiet2) {
		t.Error("seed changed the key of a draw-free warm-up; runs would never share it")
	}
}

// TestSweepSnapshotsEquivalent is the sweep-level equivalence check:
// the same sweep with and without a snapshot cache must produce
// deep-equal results and byte-identical encoded output, sequentially
// and across 8 workers — and the cache must actually get warm.
func TestSweepSnapshotsEquivalent(t *testing.T) {
	plain := baseSweep()
	plain.Parallelism = 1
	want, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}

	cache := NewMemorySnapshotCache()
	snap := baseSweep()
	snap.Parallelism = 1
	snap.Snapshots = cache
	got, err := snap.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot sweep diverged:\nplain: %+v\nsnap:  %+v", want, got)
	}
	// DefaultTimers jitter makes every (cell, run) seed-distinct, so
	// the first pass misses everywhere; a second pass over the same
	// cache must hit every warm-up and reproduce the results.
	if cache.Len() != 9 {
		t.Fatalf("cached %d warm-ups, want 9 (3 cells x 3 runs, jittered)", cache.Len())
	}
	before := cache.Hits()
	again := baseSweep()
	again.Parallelism = 1
	again.Snapshots = cache
	rerun, err := again.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rerun, want) {
		t.Fatalf("warm-cache sweep diverged:\nplain: %+v\nwarm:  %+v", want, rerun)
	}
	if hits := cache.Hits() - before; hits != 9 {
		t.Fatalf("warm rerun hit %d warm-ups, want 9", hits)
	}

	par := baseSweep()
	par.Parallelism = 8
	par.Snapshots = cache
	parRes, err := par.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parRes, want) {
		t.Fatalf("parallel snapshot sweep diverged:\nplain:    %+v\nparallel: %+v", want, parRes)
	}
	for _, f := range []Format{FormatTable, FormatCSV, FormatJSON} {
		var a, b strings.Builder
		if err := Write(&a, f, want); err != nil {
			t.Fatal(err)
		}
		if err := Write(&b, f, parRes); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("%s output differs with snapshots:\n--- plain ---\n%s--- snapshots ---\n%s", f, a.String(), b.String())
		}
	}
}

// TestSweepSnapshotsForkSharing pins the fork path inside a sweep:
// with jitter off and no loss the warm-up consumes no seeded draws, so
// one snapshot per cell serves every run seed and the per-run forks
// still match the plain (never-snapshotted) execution exactly.
func TestSweepSnapshotsForkSharing(t *testing.T) {
	mk := func() Sweep {
		sw := baseSweep()
		sw.Base.Timers = snapTimers(false)
		sw.Parallelism = 1
		return sw
	}
	plain := mk()
	want, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	cache := NewMemorySnapshotCache()
	snap := mk()
	snap.Snapshots = cache
	got, err := snap.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("forked sweep diverged:\nplain: %+v\nfork:  %+v", want, got)
	}
	if cache.Len() != 3 {
		t.Fatalf("cached %d warm-ups, want 3 (one per cell, shared across runs)", cache.Len())
	}
	if cache.Hits() != 6 {
		t.Fatalf("fork sharing hit %d warm-ups, want 6 (2 of 3 runs per cell)", cache.Hits())
	}
}
