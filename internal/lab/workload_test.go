package lab

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/bgp"
)

// TestEventNameRoundTrip is the property test over the shared name
// table: parse∘string and parse∘verb are the identity for every kind,
// and the trial-event sugar shares the same names.
func TestEventNameRoundTrip(t *testing.T) {
	kinds := EventKinds()
	if len(kinds) != 13 {
		t.Fatalf("kinds = %d, want 13", len(kinds))
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		for _, s := range []string{k.String(), k.Verb()} {
			got, err := ParseEventKind(s)
			if err != nil || got != k {
				t.Fatalf("ParseEventKind(%q) = %v, %v; want %v", s, got, err, k)
			}
		}
		if seen[k.String()] {
			t.Fatalf("duplicate kind name %q", k)
		}
		seen[k.String()] = true
	}
	for _, ev := range []Event{Withdrawal, Announcement, Failover, Flap, Hijack} {
		got, err := ParseEvent(ev.String())
		if err != nil || got != ev {
			t.Fatalf("ParseEvent(%q) = %v, %v", ev.String(), got, err)
		}
		if EventKind(ev).String() != ev.String() {
			t.Fatalf("event %v and kind %v disagree on the name", ev, EventKind(ev))
		}
	}
	if _, err := ParseEventKind("earthquake"); err == nil {
		t.Fatal("unknown kind should error")
	}
	// The workload-only kinds are not trial events.
	for _, s := range []string{"linkdown", "linkup", "migrate", "ctrl-down", "ctrl-up", "session-reset", "partition", "heal"} {
		if _, err := ParseEvent(s); err == nil {
			t.Fatalf("ParseEvent(%q) should error (workload-only kind)", s)
		}
	}
}

func TestParseWorkload(t *testing.T) {
	w, err := ParseWorkload("at 0s withdraw; at 10m announce 3;\nat 15m linkdown 1 2; at 16m linkup 1 2; at 20m migrate 4; at 21m failover 5 6; at 22m hijack")
	if err != nil {
		t.Fatal(err)
	}
	want := Workload{
		{At: 0, Kind: KindWithdrawal},
		{At: 10 * time.Minute, Kind: KindAnnouncement, AS: 3},
		{At: 15 * time.Minute, Kind: KindLinkDown, A: 1, B: 2},
		{At: 16 * time.Minute, Kind: KindLinkUp, A: 1, B: 2},
		{At: 20 * time.Minute, Kind: KindMigrate, AS: 4},
		{At: 21 * time.Minute, Kind: KindFailover, A: 5, B: 6},
		{At: 22 * time.Minute, Kind: KindHijack},
	}
	if !reflect.DeepEqual(w, want) {
		t.Fatalf("parsed = %+v, want %+v", w, want)
	}
	if got := w.String(); !strings.Contains(got, "withdraw@0s") || !strings.Contains(got, "linkdown(1-2)@15m0s") {
		t.Fatalf("Workload.String = %q", got)
	}
	for _, bad := range []string{
		"",                      // empty schedule
		"at x withdraw",         // bad offset
		"at 0s explode",         // unknown verb
		"at 0s linkdown 1",      // missing endpoint
		"at 0s withdraw 1 2",    // too many targets
		"at 0s flap",            // trial sugar, not schedulable
		"at -5s withdraw",       // negative offset
		"at 0s failover 1",      // failover takes 0 or 2 targets
		"at 0s announce twelve", // bad AS
	} {
		if _, err := ParseWorkload(bad); err == nil {
			t.Fatalf("ParseWorkload(%q) should error", bad)
		}
	}
}

// workloadTrial is the shared small trial the equivalence tests run.
func workloadTrial() Trial {
	timers := bgp.DefaultTimers()
	timers.MRAI = 5 * time.Second
	return Trial{
		Topo:      TopoSpec{Kind: "clique", N: 6},
		Placement: Placement{Strategy: PlaceLast, K: 2},
		Timers:    timers,
		Debounce:  100 * time.Millisecond,
		Seed:      21,
	}
}

// TestEventSugarEquivalence pins the tentpole's compatibility promise:
// Trial.Event is sugar for an equivalent explicit Workload, producing
// an identical Result — the epoch engine and the legacy single-event
// path are the same code.
func TestEventSugarEquivalence(t *testing.T) {
	for _, tc := range []struct {
		event    Event
		workload Workload
		drain    time.Duration
	}{
		{Withdrawal, Workload{{Kind: KindWithdrawal}}, 0},
		{Announcement, Workload{{Kind: KindAnnouncement}}, 0},
		{Failover, Workload{{Kind: KindFailover}}, 0},
		{Hijack, Workload{{Kind: KindHijack}}, 0},
		{Flap, FlapWorkload(6, 20*time.Second), 10 * time.Minute},
	} {
		sugar := workloadTrial()
		sugar.Event = tc.event
		explicit := workloadTrial()
		explicit.Workload = tc.workload
		explicit.Drain = tc.drain
		sugarRes, err := sugar.Run()
		if err != nil {
			t.Fatalf("%s sugar: %v", tc.event, err)
		}
		explicitRes, err := explicit.Run()
		if err != nil {
			t.Fatalf("%s explicit: %v", tc.event, err)
		}
		if !reflect.DeepEqual(sugarRes, explicitRes) {
			t.Fatalf("%s: sugar and explicit workload diverge:\nsugar:    %+v\nexplicit: %+v",
				tc.event, sugarRes, explicitRes)
		}
		if len(sugarRes.Epochs) == 0 {
			t.Fatalf("%s: no epochs recorded", tc.event)
		}
	}
}

// TestFlapConvergenceDefined pins the satellite fix: the Flap storm
// now reports a defined Result.Convergence — the time from the last
// cycle's re-announce to quiescence under the epoch model — instead
// of the old documented zero. The updates pin (277) matches the
// pre-epoch flap ablation for the same seed, so only the convergence
// definition changed.
func TestFlapConvergenceDefined(t *testing.T) {
	timers := bgp.DefaultTimers()
	timers.MRAI = 5 * time.Second
	trial := Trial{
		Topo:       TopoSpec{Kind: "clique", N: 6},
		Event:      Flap,
		FlapCycles: 4,
		FlapPeriod: 10 * time.Second,
		Timers:     timers,
		Seed:       13,
	}
	res, err := trial.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Convergence, 4320376076*time.Nanosecond; got != want {
		t.Fatalf("flap convergence = %v, want the pinned %v", got, want)
	}
	if res.UpdatesSent != 277 {
		t.Fatalf("flap updates = %d, want the pre-epoch 277", res.UpdatesSent)
	}
	if len(res.Epochs) != 8 {
		t.Fatalf("flap epochs = %d, want 2 per cycle = 8", len(res.Epochs))
	}
	last := res.Epochs[len(res.Epochs)-1]
	if last.Kind != KindAnnouncement || last.Convergence != res.Convergence {
		t.Fatalf("last epoch = %+v, want the final re-announce carrying the storm's convergence", last)
	}
	if !res.ReachableAfter {
		t.Fatal("prefix unreachable after the storm")
	}
}

// TestMaintenanceWindowTrial runs the canonical two-event timeline —
// withdraw, then re-announce after a maintenance window — and checks
// the per-epoch slices are consistent with the end-to-end totals.
func TestMaintenanceWindowTrial(t *testing.T) {
	trial := workloadTrial()
	trial.Workload = Workload{
		{At: 0, Kind: KindWithdrawal},
		{At: 2 * time.Minute, Kind: KindAnnouncement},
	}
	res, err := trial.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 2 {
		t.Fatalf("epochs = %d, want 2", len(res.Epochs))
	}
	if res.Epochs[0].Kind != KindWithdrawal || res.Epochs[1].Kind != KindAnnouncement {
		t.Fatalf("epoch kinds = %v, %v", res.Epochs[0].Kind, res.Epochs[1].Kind)
	}
	if !res.ReachableAfter {
		t.Fatal("prefix unreachable after the re-announce")
	}
	if res.Convergence != res.Epochs[1].Convergence {
		t.Fatalf("Result.Convergence %v != final epoch %v", res.Convergence, res.Epochs[1].Convergence)
	}
	for i, ep := range res.Epochs {
		if ep.Convergence <= 0 {
			t.Fatalf("epoch %d: no convergence measured", i)
		}
		if ep.UpdatesSent == 0 {
			t.Fatalf("epoch %d: no update load measured", i)
		}
	}
	var sent, recv uint64
	var changes int
	for _, ep := range res.Epochs {
		sent += ep.UpdatesSent
		recv += ep.UpdatesReceived
		changes += ep.BestPathChanges
	}
	if sent != res.UpdatesSent || recv != res.UpdatesReceived || changes != res.BestPathChanges {
		t.Fatalf("epoch sums (sent %d recv %d changes %d) != totals (%d %d %d)",
			sent, recv, changes, res.UpdatesSent, res.UpdatesReceived, res.BestPathChanges)
	}
}

// TestMigrateWorkloadTrial drives the new migrate event through a
// trial: a legacy AS joins the cluster mid-run, then the origin
// withdraws and re-announces — the network must end fully reachable
// with the migrated AS clustered.
func TestMigrateWorkloadTrial(t *testing.T) {
	trial := workloadTrial()
	trial.Workload = Workload{
		{At: 0, Kind: KindMigrate, AS: 2},
		{At: time.Minute, Kind: KindWithdrawal},
		{At: 3 * time.Minute, Kind: KindAnnouncement},
	}
	res, err := trial.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 3 {
		t.Fatalf("epochs = %d, want 3", len(res.Epochs))
	}
	if !res.ReachableAfter {
		t.Fatal("prefix unreachable after migrate + maintenance cycle")
	}
	if res.Epochs[0].Kind != KindMigrate {
		t.Fatalf("first epoch = %v, want migrate", res.Epochs[0].Kind)
	}
	// Migration re-establishes sessions with the speaker: real update
	// load must be attributed to its epoch.
	if res.Epochs[0].UpdatesSent == 0 {
		t.Fatal("migrate epoch measured no routing activity")
	}
}

// TestLinkDownUpWorkloadTrial exercises the linkdown/linkup pair: the
// origin loses a link and regains it; the network ends reachable.
func TestLinkDownUpWorkloadTrial(t *testing.T) {
	trial := workloadTrial()
	trial.Workload = Workload{
		{At: 0, Kind: KindLinkDown, A: 1, B: 2},
		{At: 2 * time.Minute, Kind: KindLinkUp, A: 1, B: 2},
	}
	res, err := trial.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReachableAfter {
		t.Fatal("prefix unreachable after link restore")
	}
	if res.Epochs[0].UpdatesSent == 0 {
		t.Fatal("linkdown epoch measured no routing activity")
	}
}

// TestWorkloadSweepDeterministicAcrossParallelism extends the
// determinism guard to multi-event workloads (including a mid-run
// migration): the same sweep must produce identical results — and
// byte-identical encodings — at any parallelism.
func TestWorkloadSweepDeterministicAcrossParallelism(t *testing.T) {
	mk := func(p int) Sweep {
		s := baseSweep()
		s.Axis = SDNCounts(2, 4)
		s.Base.Workload = Workload{
			{At: 0, Kind: KindMigrate, AS: 1},
			{At: time.Minute, Kind: KindWithdrawal},
			{At: 3 * time.Minute, Kind: KindAnnouncement},
		}
		s.Parallelism = p
		return s
	}
	seqRes, err := mk(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := mk(8).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqRes, parRes) {
		t.Fatalf("workload results differ:\nsequential: %+v\nparallel:   %+v", seqRes, parRes)
	}
	for _, f := range []Format{FormatTable, FormatCSV, FormatJSON} {
		var a, b strings.Builder
		if err := Write(&a, f, seqRes); err != nil {
			t.Fatal(err)
		}
		if err := Write(&b, f, parRes); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("%s output differs:\n--- sequential ---\n%s--- parallel ---\n%s", f, a.String(), b.String())
		}
	}
	for _, c := range seqRes.Cells {
		if len(c.Epochs) != 3 {
			t.Fatalf("cell %s: epoch aggregates = %d, want 3", c.Label, len(c.Epochs))
		}
	}
	// The SVG adapter exposes the same epochs, one box per cell.
	for i := 0; i < 3; i++ {
		if boxes := seqRes.EpochBoxes(i); len(boxes) != len(seqRes.Cells) {
			t.Fatalf("EpochBoxes(%d) = %d boxes, want %d", i, len(boxes), len(seqRes.Cells))
		}
	}
	if seqRes.EpochBoxes(3) != nil || seqRes.EpochBoxes(-1) != nil {
		t.Fatal("out-of-range EpochBoxes must be nil")
	}
}

// TestRunWorkloadValidation pins the scenario-context restrictions.
func TestRunWorkloadValidation(t *testing.T) {
	if _, err := RunWorkload(nil, Workload{{Kind: KindWithdrawal}}, 0, 0, 0); err == nil {
		t.Fatal("RunWorkload without an origin should error")
	}
	if _, err := RunWorkload(nil, Workload{{Kind: KindFailover}}, 1, 0, 0); err == nil {
		t.Fatal("RunWorkload with an unresolved failover should error")
	}
	if _, err := RunWorkload(nil, nil, 1, 0, 0); err == nil {
		t.Fatal("RunWorkload with an empty schedule should error")
	}
}

// TestWorkloadValidate covers the schedule-level checks not reachable
// through the string parser.
func TestWorkloadValidate(t *testing.T) {
	if err := (Workload{{Kind: EventKind(99)}}).Validate(); err == nil {
		t.Fatal("unknown kind should fail validation")
	}
	if err := (Workload{{Kind: KindFlap}}).Validate(); err == nil {
		t.Fatal("flap entries should fail validation")
	}
	if err := (Workload{{Kind: KindWithdrawal, At: -1}}).Validate(); err == nil {
		t.Fatal("negative offsets should fail validation")
	}
	// A failover names a whole link or none — one endpoint would only
	// fail mid-simulation, after the full warm-up.
	if err := (Workload{{Kind: KindFailover, A: 2}}).Validate(); err == nil {
		t.Fatal("failover with one endpoint should fail validation")
	}
	if err := (Workload{{Kind: KindFailover, A: 2, B: 3}}).Validate(); err != nil {
		t.Fatalf("failover with a full link should validate: %v", err)
	}
	if err := (Workload{{Kind: KindFailover}}).Validate(); err != nil {
		t.Fatalf("failover with no target should validate: %v", err)
	}
}

// TestPoissonWorkload pins the churn generator's shape: seeded
// determinism, alternation, even length, non-decreasing offsets.
func TestPoissonWorkload(t *testing.T) {
	a := PoissonWorkload(7, 5, 30*time.Second)
	b := PoissonWorkload(7, 5, 30*time.Second)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must draw the same schedule")
	}
	if len(a) != 6 {
		t.Fatalf("odd n must round up: len = %d, want 6", len(a))
	}
	for i, ev := range a {
		wantKind := KindWithdrawal
		if i%2 == 1 {
			wantKind = KindAnnouncement
		}
		if ev.Kind != wantKind {
			t.Fatalf("event %d kind = %v, want %v", i, ev.Kind, wantKind)
		}
		if i > 0 && ev.At < a[i-1].At {
			t.Fatalf("offsets must be non-decreasing: %v after %v", ev.At, a[i-1].At)
		}
	}
	if c := PoissonWorkload(8, 5, 30*time.Second); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should draw different schedules")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}
