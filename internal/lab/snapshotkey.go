package lab

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sync"
)

// The warm-up snapshot key: a stable, fully-resolved byte encoding of
// every trial field that shapes the warmed-up converged state — the
// prefix of the canonical trial that Sweep.Run snapshots and restores.
// Two trials with equal WarmupKey() bytes reach byte-identical
// converged state, so they may share one cached snapshot; everything
// after the fork point (the measurement schedule, drain, flap shape)
// is deliberately excluded so different measurements reuse the same
// warm-up.
//
// Like canonical.go, the encoding is JSON over an explicit mirror
// struct with documented defaults resolved, durations as integer
// nanoseconds. The snapshotkey lint contract (internal/lint) enforces
// that every Trial field is either read here or listed in the
// exclusion table with the reason it cannot change the warm-up.

// warmupKeyVersion bumps when warm-up semantics change in a way the
// key fields cannot express (every cached snapshot is then stale). It
// is independent of experiment.SnapshotVersion, which versions the
// snapshot *encoding*; this versions what the warm-up *means*.
const warmupKeyVersion = 1

// warmupKey is the canonical warm-up prefix of a trial. Field order is
// the encoding order; renaming or reordering is a deliberate cache
// invalidation.
type warmupKey struct {
	Version   int    `json:"version"`
	Topo      string `json:"topo"`
	TopoSeed  int64  `json:"topo_seed"`
	Placement string `json:"placement"`
	Policy    string `json:"policy"`
	// Resolved protocol timers (bgp.Timers.Resolved order).
	HoldTimeNS           int64 `json:"hold_time_ns"`
	KeepaliveFraction    int   `json:"keepalive_fraction"`
	ConnectRetryNS       int64 `json:"connect_retry_ns"`
	MRAINS               int64 `json:"mrai_ns"`
	WithdrawalsImmediate bool  `json:"withdrawals_immediate"`
	MRAIJitter           bool  `json:"mrai_jitter"`
	// Engine knobs that reach experiment.Config.
	DebounceNS        int64             `json:"debounce_ns"`
	SettleNS          int64             `json:"settle_ns"`
	ProcessingDelayNS int64             `json:"processing_delay_ns"`
	LinkDelayNS       int64             `json:"link_delay_ns"`
	LinkJitterNS      int64             `json:"link_jitter_ns"`
	LinkLoss          float64           `json:"link_loss"`
	Damping           *canonicalDamping `json:"damping,omitempty"`
	// Warm-up shape: which prefixes are announced before convergence.
	OriginOnly bool `json:"origin_only"`
	// The resolved schedule's opening event decides whether the origin
	// prefix stays unannounced (the fresh-announcement measurement),
	// and a trial-origin failover adds the dual-homed stub to the
	// graph. Both change the warmed-up state, so the raw ingredients
	// participate instead of the whole (post-fork) schedule.
	FirstKind       string `json:"first_kind"`
	FirstAS         uint32 `json:"first_as"`
	DualHomedOrigin bool   `json:"dual_homed_origin"`
	// Seed participates only when the warm-up consumes seeded draws
	// (MRAI jitter or link loss); otherwise the warm-up is
	// byte-identical for every seed and one snapshot serves all of
	// them — the restore re-derives the run's streams from its own
	// seed (the fork).
	SeedShared bool  `json:"seed_shared"`
	Seed       int64 `json:"seed"`
	// Bounds: a cached warm-up must not outlive a bound that would
	// have failed it fresh.
	TimeoutNS          int64 `json:"timeout_ns"`
	EstablishTimeoutNS int64 `json:"establish_timeout_ns"`
}

// WarmupKey returns the trial's canonical warm-up prefix encoding: a
// stable byte serialization of every field that shapes the warmed-up
// converged state (and nothing after the fork point). Equal bytes mean
// the trials can share one warm-up snapshot.
func (t Trial) WarmupKey() ([]byte, error) {
	t = t.withDefaults()
	w, _, err := t.workload()
	if err != nil {
		return nil, err
	}
	tm := t.Timers.Resolved()
	// Mirrors Workload.needsDualHomedOrigin, read here so the lint
	// contract sees which WorkloadEvent fields shape the warm-up.
	dual := false
	for _, ev := range w {
		if ev.Kind == KindFailover && ev.A == 0 && ev.B == 0 {
			dual = true
		}
	}
	shared := !tm.MRAIJitter && t.LinkLoss == 0
	seed := t.Seed
	if shared {
		seed = 0
	}
	k := warmupKey{
		Version:              warmupKeyVersion,
		Topo:                 t.Topo.String(),
		TopoSeed:             t.TopoSeed,
		Placement:            t.Placement.String(),
		Policy:               t.Policy.String(),
		HoldTimeNS:           int64(tm.HoldTime),
		KeepaliveFraction:    tm.KeepaliveFraction,
		ConnectRetryNS:       int64(tm.ConnectRetry),
		MRAINS:               int64(tm.MRAI),
		WithdrawalsImmediate: tm.WithdrawalsImmediate,
		MRAIJitter:           tm.MRAIJitter,
		DebounceNS:           int64(t.Debounce),
		SettleNS:             int64(t.Settle),
		ProcessingDelayNS:    int64(t.ProcessingDelay),
		LinkDelayNS:          int64(t.LinkDelay),
		LinkJitterNS:         int64(t.LinkJitter),
		LinkLoss:             t.LinkLoss,
		OriginOnly:           t.OriginOnly,
		FirstKind:            w[0].Kind.String(),
		FirstAS:              uint32(w[0].AS),
		DualHomedOrigin:      dual,
		SeedShared:           shared,
		Seed:                 seed,
		TimeoutNS:            int64(t.Timeout),
		EstablishTimeoutNS:   int64(t.EstablishTimeout),
	}
	if t.Damping != nil {
		d := t.Damping.Resolved()
		k.Damping = &canonicalDamping{
			WithdrawPenalty:   d.WithdrawPenalty,
			UpdatePenalty:     d.UpdatePenalty,
			SuppressThreshold: d.SuppressThreshold,
			ReuseThreshold:    d.ReuseThreshold,
			HalfLifeNS:        int64(d.HalfLife),
			MaxSuppressNS:     int64(d.MaxSuppress),
		}
	}
	return json.Marshal(k)
}

// WarmupKeyHash returns the hex SHA-256 of WarmupKey() — the address a
// SnapshotCache files the trial's warm-up snapshot under.
func (t Trial) WarmupKeyHash() (string, error) {
	b, err := t.WarmupKey()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// SnapshotCache stores encoded warm-up snapshots by warm-up key. Like
// Sweep.Cache it cannot change results — a restored warm-up is
// byte-identical to a fresh one — so it does not participate in
// Canonical(). Implementations must be safe for concurrent use
// (Sweep.Run calls them from worker goroutines).
type SnapshotCache interface {
	// Load returns the snapshot bytes filed under key, and whether
	// they exist. An error means the cache itself failed.
	Load(key string) ([]byte, bool, error)
	// Store files the snapshot bytes under key.
	Store(key string, snap []byte) error
}

// MemorySnapshotCache is the in-process SnapshotCache: one sweep's
// warm-ups shared across its cells and runs (the artifact store
// provides the durable, cross-invocation implementation).
type MemorySnapshotCache struct {
	mu    sync.Mutex
	snaps map[string][]byte
	hits  int
}

// NewMemorySnapshotCache returns an empty in-process snapshot cache.
func NewMemorySnapshotCache() *MemorySnapshotCache {
	return &MemorySnapshotCache{snaps: make(map[string][]byte)}
}

// Load returns the snapshot filed under key.
func (c *MemorySnapshotCache) Load(key string) ([]byte, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.snaps[key]
	if ok {
		c.hits++
	}
	return b, ok, nil
}

// Store files snap under key.
func (c *MemorySnapshotCache) Store(key string, snap []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.snaps[key] = snap
	return nil
}

// Hits reports how many Loads found their key; Len how many distinct
// warm-ups are cached.
func (c *MemorySnapshotCache) Hits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// Len reports the number of cached warm-up snapshots.
func (c *MemorySnapshotCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.snaps)
}
