package lab

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/idr"
	"repro/internal/topology"
)

// TopoSpec names one topology generator and its parameters. The same
// spec syntax is accepted by the scenario DSL's "topology" directive
// and the convergence CLI's -topology flag, so "grid 4 4" means the
// same network everywhere.
//
// Kinds and their parameters:
//
//	clique N            complete peer mesh (the paper's Figure 2 uses 16)
//	line N              path graph
//	ring N              cycle (N >= 3)
//	star N              hub-and-spoke provider hierarchy
//	tree N F            complete F-ary provider hierarchy on N ASes
//	grid W H            W x H peer lattice
//	internet N          synthetic Internet-like AS graph (seeded)
//	er N P              Erdős–Rényi G(N, P) peer graph (seeded)
//	ba N M              Barabási–Albert preferential attachment (seeded)
type TopoSpec struct {
	// Kind is the generator name (see the table above).
	Kind string
	// N is the primary size parameter (AS count; grid width).
	N int
	// M is the secondary integer parameter: tree fanout, grid height,
	// or Barabási–Albert attachment degree.
	M int
	// P is the Erdős–Rényi edge probability.
	P float64
}

// ParseTopo parses a whitespace-split topology spec such as
// ["clique", "16"] or ["grid", "4", "4"].
func ParseTopo(fields []string) (TopoSpec, error) {
	if len(fields) == 0 {
		return TopoSpec{}, fmt.Errorf("lab: empty topology spec")
	}
	kind := strings.ToLower(fields[0])
	argInt := func(i int) (int, error) {
		if len(fields) <= i {
			return 0, fmt.Errorf("lab: topology %s: missing size argument", kind)
		}
		v, err := strconv.Atoi(fields[i])
		if err != nil {
			return 0, fmt.Errorf("lab: topology %s: bad integer %q", kind, fields[i])
		}
		return v, nil
	}
	spec := TopoSpec{Kind: kind}
	arity := 2
	var err error
	switch kind {
	case "clique", "line", "ring", "star", "internet":
		spec.N, err = argInt(1)
	case "tree", "grid", "ba":
		arity = 3
		if spec.N, err = argInt(1); err != nil {
			return TopoSpec{}, err
		}
		spec.M, err = argInt(2)
	case "er":
		arity = 3
		if spec.N, err = argInt(1); err != nil {
			return TopoSpec{}, err
		}
		if len(fields) <= 2 {
			return TopoSpec{}, fmt.Errorf("lab: topology er: missing edge probability")
		}
		spec.P, err = strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return TopoSpec{}, fmt.Errorf("lab: topology er: bad probability %q", fields[2])
		}
	default:
		return TopoSpec{}, fmt.Errorf("lab: unknown topology %q", kind)
	}
	if err != nil {
		return TopoSpec{}, err
	}
	if len(fields) > arity {
		return TopoSpec{}, fmt.Errorf("lab: topology %s takes %d argument(s), got extra %q", kind, arity-1, fields[arity:])
	}
	return spec, nil
}

// ParseTopoString parses a topology spec given as one string, e.g.
// "grid 4 4".
func ParseTopoString(s string) (TopoSpec, error) {
	return ParseTopo(strings.Fields(s))
}

// String renders the spec in the form ParseTopo accepts, so specs
// round-trip between the CLI, the scenario DSL and structured output.
func (s TopoSpec) String() string {
	switch s.Kind {
	case "tree", "grid", "ba":
		return fmt.Sprintf("%s %d %d", s.Kind, s.N, s.M)
	case "er":
		return fmt.Sprintf("%s %d %s", s.Kind, s.N, strconv.FormatFloat(s.P, 'g', -1, 64))
	default:
		return fmt.Sprintf("%s %d", s.Kind, s.N)
	}
}

// Nodes returns the number of ASes the spec generates.
func (s TopoSpec) Nodes() int {
	if s.Kind == "grid" {
		return s.N * s.M
	}
	return s.N
}

// Build runs the generator. Random topologies (internet, er, ba) draw
// from rng; deterministic generators ignore it. rng must not be nil
// for the random kinds.
func (s TopoSpec) Build(rng *rand.Rand) (*topology.Graph, error) {
	switch s.Kind {
	case "clique":
		return topology.Clique(s.N)
	case "line":
		return topology.Line(s.N)
	case "ring":
		return topology.Ring(s.N)
	case "star":
		return topology.Star(s.N)
	case "tree":
		return topology.Tree(s.N, s.M)
	case "grid":
		return topology.Grid(s.N, s.M)
	case "internet":
		if rng == nil {
			return nil, fmt.Errorf("lab: topology internet needs a random source")
		}
		return topology.SynthesizeInternetLike(topology.InternetLikeConfig{ASes: s.N}, rng)
	case "er":
		return topology.ErdosRenyi(s.N, s.P, rng)
	case "ba":
		return topology.BarabasiAlbert(s.N, s.M, rng)
	default:
		return nil, fmt.Errorf("lab: unknown topology %q", s.Kind)
	}
}

// Placement strategies.
const (
	// PlaceLast selects the K highest-numbered ASes — the paper's
	// deployment model (the origin AS1 stays legacy until K = N), and
	// the zero-value default.
	PlaceLast = "last"
	// PlaceFirst selects the K lowest-numbered ASes (the origin joins
	// the cluster first).
	PlaceFirst = "first"
	// PlaceDegree selects the K highest-degree ASes (ties broken by
	// lower ASN) — centralize the best-connected networks first.
	PlaceDegree = "degree"
	// PlaceExplicit uses the listed ASNs verbatim.
	PlaceExplicit = "explicit"
	// PlaceNone runs pure BGP regardless of K.
	PlaceNone = "none"
)

// Placement decides which ASes operate as SDN cluster members under
// the IDR controller. The zero value (strategy PlaceLast, K 0) means
// pure BGP.
type Placement struct {
	// Strategy is one of the Place* constants; empty means PlaceLast.
	Strategy string
	// K is the cluster size for the first/last/degree strategies.
	K int
	// ASNs lists the members for PlaceExplicit.
	ASNs []idr.ASN
}

// ParsePlacement parses a placement given as whitespace-split fields:
// "none", "last [K]", "first [K]", "degree [K]", or "as 2,3,5" /
// "2,3,5" for explicit members. A strategy without K leaves K to the
// sweep axis (the sdn-count axis sets it per cell).
func ParsePlacement(fields []string) (Placement, error) {
	if len(fields) == 0 {
		return Placement{}, fmt.Errorf("lab: empty placement")
	}
	switch strings.ToLower(fields[0]) {
	case PlaceNone:
		return Placement{Strategy: PlaceNone}, nil
	case PlaceLast, PlaceFirst, PlaceDegree:
		p := Placement{Strategy: strings.ToLower(fields[0])}
		if len(fields) > 1 {
			k, err := strconv.Atoi(fields[1])
			if err != nil {
				return Placement{}, fmt.Errorf("lab: placement %s: bad count %q", p.Strategy, fields[1])
			}
			p.K = k
		}
		return p, nil
	case "as":
		return parseExplicit(fields[1:])
	default:
		return parseExplicit(fields)
	}
}

// ParsePlacementString parses a placement given as one string, e.g.
// "degree 4" or "2,3,5".
func ParsePlacementString(s string) (Placement, error) {
	return ParsePlacement(strings.Fields(s))
}

func parseExplicit(fields []string) (Placement, error) {
	p := Placement{Strategy: PlaceExplicit}
	for _, f := range fields {
		for _, tok := range strings.Split(f, ",") {
			if tok == "" {
				continue
			}
			v, err := strconv.ParseUint(tok, 10, 32)
			if err != nil {
				return Placement{}, fmt.Errorf("lab: placement: bad ASN %q", tok)
			}
			p.ASNs = append(p.ASNs, idr.ASN(v))
		}
	}
	if len(p.ASNs) == 0 {
		return Placement{}, fmt.Errorf("lab: placement: no ASNs listed")
	}
	return p, nil
}

// String renders the placement in the form ParsePlacement accepts.
func (p Placement) String() string {
	switch p.Strategy {
	case PlaceNone:
		return PlaceNone
	case PlaceExplicit:
		toks := make([]string, len(p.ASNs))
		for i, a := range p.ASNs {
			toks[i] = strconv.FormatUint(uint64(a), 10)
		}
		return "as " + strings.Join(toks, ",")
	case PlaceFirst, PlaceDegree:
		return fmt.Sprintf("%s %d", p.Strategy, p.K)
	default:
		return fmt.Sprintf("%s %d", PlaceLast, p.K)
	}
}

// Select resolves the placement against a concrete topology and
// returns the cluster member set.
func (p Placement) Select(g *topology.Graph) ([]idr.ASN, error) {
	switch p.Strategy {
	case PlaceNone:
		return nil, nil
	case PlaceExplicit:
		for _, a := range p.ASNs {
			if !g.HasNode(a) {
				return nil, fmt.Errorf("lab: placement member %v not in topology", a)
			}
		}
		return append([]idr.ASN(nil), p.ASNs...), nil
	}
	nodes := g.Nodes()
	if p.K < 0 || p.K > len(nodes) {
		return nil, fmt.Errorf("lab: SDN count %d outside 0..%d", p.K, len(nodes))
	}
	if p.K == 0 {
		return nil, nil
	}
	switch p.Strategy {
	case PlaceFirst:
		return nodes[:p.K], nil
	case PlaceDegree:
		sort.SliceStable(nodes, func(i, j int) bool {
			di, dj := g.Degree(nodes[i]), g.Degree(nodes[j])
			if di != dj {
				return di > dj
			}
			return nodes[i] < nodes[j]
		})
		picked := append([]idr.ASN(nil), nodes[:p.K]...)
		sort.Slice(picked, func(i, j int) bool { return picked[i] < picked[j] })
		return picked, nil
	case PlaceLast, "":
		return nodes[len(nodes)-p.K:], nil
	default:
		return nil, fmt.Errorf("lab: unknown placement strategy %q", p.Strategy)
	}
}
