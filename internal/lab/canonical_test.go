package lab

import (
	"testing"
	"time"

	"repro/internal/bgp"
)

// TestCanonicalPinned pins the canonical spec serialization byte for
// byte. The bytes are a cache address: any change to this encoding
// silently orphans every record in every artifact store, so changing
// it must be a deliberate act that updates this pin (and should bump
// canonicalVersion).
func TestCanonicalPinned(t *testing.T) {
	timers := bgp.DefaultTimers()
	timers.MRAI = 10 * time.Second
	sw := Sweep{
		Name: "fig2",
		Base: Trial{
			Topo:            TopoSpec{Kind: "clique", N: 6},
			Event:           Withdrawal,
			Timers:          timers,
			Debounce:        100 * time.Millisecond,
			ProcessingDelay: 25 * time.Millisecond,
		},
		Axis:       SDNCounts(0, 3, 6),
		Runs:       3,
		BaseSeed:   21,
		SeedPolicy: SeedCellRun,
	}
	got, err := sw.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	want := `{"version":2,"base":{"topo":"clique 6","placement":"last 0","policy":"permit-all","event":"withdrawal","drain_ns":0,"hold_time_ns":90000000000,"keepalive_fraction":3,"connect_retry_ns":5000000000,"mrai_ns":10000000000,"withdrawals_immediate":false,"mrai_jitter":true,"debounce_ns":100000000,"settle_ns":0,"processing_delay_ns":25000000,"link_delay_ns":0,"link_jitter_ns":0,"link_loss":0,"flap_cycles":6,"flap_period_ns":20000000000,"origin_only":false,"timeout_ns":7200000000000,"establish_timeout_ns":300000000000},"axis":{"name":"sdn_k","values":["0","3","6"]},"runs":3,"base_seed":21,"seed_policy":"cell-run"}`
	if string(got) != want {
		t.Fatalf("canonical bytes changed:\ngot:  %s\nwant: %s", got, want)
	}
}

// TestCanonicalIgnoresExecutionKnobs asserts that presentation and
// execution fields do not move the content address, while every
// result-determining field does.
func TestCanonicalIgnoresExecutionKnobs(t *testing.T) {
	base := func() Sweep {
		return Sweep{
			Base: Trial{
				Topo:  TopoSpec{Kind: "clique", N: 4},
				Event: Withdrawal,
			},
			Axis:     SDNCounts(0, 2),
			Runs:     2,
			BaseSeed: 5,
		}
	}
	ref, err := base().Canonical()
	if err != nil {
		t.Fatal(err)
	}

	same := []struct {
		name string
		mut  func(*Sweep)
	}{
		{"name", func(s *Sweep) { s.Name = "renamed" }},
		{"parallelism", func(s *Sweep) { s.Parallelism = 8 }},
		{"progress", func(s *Sweep) { s.Progress = func(int, int) {} }},
		{"cache", func(s *Sweep) { s.Cache = nopCache{} }},
		{"default runs spelled out", func(s *Sweep) { s.Runs = 2 }},
		{"default timers spelled out", func(s *Sweep) { s.Base.Timers = bgp.DefaultTimers() }},
		{"partial timers resolved", func(s *Sweep) {
			// A hand-built Timers whose unset fields the router
			// defaults anyway; jitter spelled out to match.
			s.Base.Timers = bgp.Timers{MRAI: 30 * time.Second, MRAIJitter: true}
		}},
		{"default timeout spelled out", func(s *Sweep) { s.Base.Timeout = 2 * time.Hour }},
		{"wall limit", func(s *Sweep) { s.Base.WallLimit = time.Minute }},
		{"tolerate", func(s *Sweep) { s.Tolerate = true }},
		{"retries", func(s *Sweep) { s.Retries = 2; s.RetryBackoff = time.Second }},
		{"inject seam", func(s *Sweep) { s.Inject = func(int, int) error { return nil } }},
	}
	for _, tc := range same {
		s := base()
		tc.mut(&s)
		got, err := s.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(ref) {
			t.Errorf("%s changed the canonical bytes but cannot change results", tc.name)
		}
	}

	differs := []struct {
		name string
		mut  func(*Sweep)
	}{
		{"topology", func(s *Sweep) { s.Base.Topo.N = 5 }},
		{"placement", func(s *Sweep) { s.Base.Placement = Placement{Strategy: PlaceDegree} }},
		{"policy", func(s *Sweep) { s.Base.Policy = PolicySpec{Kind: PolicyGaoRexford} }},
		{"event", func(s *Sweep) { s.Base.Event = Announcement }},
		{"workload", func(s *Sweep) { s.Base.Workload = Workload{{Kind: KindWithdrawal}} }},
		{"mrai", func(s *Sweep) { s.Base.Timers = bgp.DefaultTimers(); s.Base.Timers.MRAI = 5 * time.Second }},
		{"mrai jitter", func(s *Sweep) { s.Base.Timers = bgp.DefaultTimers(); s.Base.Timers.MRAIJitter = false }},
		{"withdrawals immediate", func(s *Sweep) { s.Base.Timers = bgp.DefaultTimers(); s.Base.Timers.WithdrawalsImmediate = true }},
		{"debounce", func(s *Sweep) { s.Base.Debounce = -1 }},
		{"damping", func(s *Sweep) { s.Base.Damping = &bgp.DampingConfig{} }},
		{"origin-only", func(s *Sweep) { s.Base.OriginOnly = true }},
		{"link delay", func(s *Sweep) { s.Base.LinkDelay = 7 * time.Millisecond }},
		{"link jitter", func(s *Sweep) { s.Base.LinkJitter = 2 * time.Millisecond }},
		{"link loss", func(s *Sweep) { s.Base.LinkLoss = 0.05 }},
		{"axis values", func(s *Sweep) { s.Axis = SDNCounts(0, 4) }},
		{"loss axis", func(s *Sweep) { s.Axis = Losses(0, 0.02) }},
		{"axis kind", func(s *Sweep) { s.Axis = TopoSizes(4, 6) }},
		{"runs", func(s *Sweep) { s.Runs = 3 }},
		{"base seed", func(s *Sweep) { s.BaseSeed = 6 }},
		{"seed policy", func(s *Sweep) { s.SeedPolicy = SeedCellRun }},
	}
	for _, tc := range differs {
		s := base()
		tc.mut(&s)
		got, err := s.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) == string(ref) {
			t.Errorf("%s did not change the canonical bytes but changes results", tc.name)
		}
	}
}

// TestCanonicalDampingDefaultsResolved asserts the zero DampingConfig
// and its spelled-out defaults share one address.
func TestCanonicalDampingDefaultsResolved(t *testing.T) {
	mk := func(d *bgp.DampingConfig) Sweep {
		return Sweep{
			Base: Trial{Topo: TopoSpec{Kind: "clique", N: 4}, Damping: d},
			Axis: SDNCounts(0),
		}
	}
	zero, err := mk(&bgp.DampingConfig{}).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	resolved := (&bgp.DampingConfig{}).Resolved()
	spelled, err := mk(&resolved).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(zero) != string(spelled) {
		t.Fatalf("zero damping and its resolved defaults address differently:\n%s\n%s", zero, spelled)
	}
}

// TestCanonicalWorkloadMasksEvent asserts the ignored Event sugar does
// not move the address once an explicit Workload is set.
func TestCanonicalWorkloadMasksEvent(t *testing.T) {
	mk := func(ev Event) Sweep {
		return Sweep{
			Base: Trial{
				Topo:     TopoSpec{Kind: "clique", N: 4},
				Event:    ev,
				Workload: Workload{{Kind: KindWithdrawal}},
			},
			Axis: SDNCounts(0),
		}
	}
	a, err := mk(Withdrawal).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk(Announcement).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("Event moved the address although an explicit Workload overrides it")
	}
}

// TestCanonicalDebounceAxisDisambiguated asserts distinct negative
// debounce values (both labelled "off") address differently.
func TestCanonicalDebounceAxisDisambiguated(t *testing.T) {
	mk := func(d time.Duration) Sweep {
		return Sweep{
			Base: Trial{Topo: TopoSpec{Kind: "clique", N: 4}, Placement: Placement{Strategy: PlaceLast, K: 2}},
			Axis: Debounces(d, time.Second),
		}
	}
	a, err := mk(-1).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk(-2 * time.Millisecond).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) == string(b) {
		t.Fatal("distinct debounce axis values share one address")
	}
}

// nopCache is a CellCache that never hits (for the knob test).
type nopCache struct{}

func (nopCache) Load(int, int) (Result, bool, error) { return Result{}, false, nil }
func (nopCache) Store(int, int, Result) error        { return nil }
