package lab

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/idr"
	"repro/internal/topology"
)

// TestTopoSpecRoundTrip pins the shared parser on every spec string
// the scenario DSL documents (plus the er/ba generators): parse,
// render, re-parse, and build a connected graph of the right size.
func TestTopoSpecRoundTrip(t *testing.T) {
	cases := []struct {
		in    string
		nodes int
	}{
		{"clique 16", 16},
		{"line 4", 4},
		{"ring 6", 6},
		{"star 5", 5},
		{"tree 7 2", 7},
		{"grid 4 4", 16},
		{"internet 20", 20},
		{"er 10 0.4", 10},
		{"ba 12 2", 12},
	}
	for _, c := range cases {
		spec, err := ParseTopoString(c.in)
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		if got := spec.String(); got != c.in {
			t.Fatalf("%q: String() = %q, does not round-trip", c.in, got)
		}
		again, err := ParseTopoString(spec.String())
		if err != nil || !reflect.DeepEqual(spec, again) {
			t.Fatalf("%q: re-parse = %+v (%v), want %+v", c.in, again, err, spec)
		}
		if spec.Nodes() != c.nodes {
			t.Fatalf("%q: Nodes() = %d, want %d", c.in, spec.Nodes(), c.nodes)
		}
		g, err := spec.Build(rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatalf("%q: Build: %v", c.in, err)
		}
		if g.NumNodes() != c.nodes {
			t.Fatalf("%q: built %d nodes, want %d", c.in, g.NumNodes(), c.nodes)
		}
		if !g.Connected() {
			t.Fatalf("%q: built graph not connected", c.in)
		}
	}
}

// TestTopoSpecSeededBuildDeterministic pins that random generators
// re-draw the same graph for the same seed (the property Trial relies
// on for reproducibility).
func TestTopoSpecSeededBuildDeterministic(t *testing.T) {
	for _, in := range []string{"internet 20", "er 10 0.4", "ba 12 2"} {
		spec, err := ParseTopoString(in)
		if err != nil {
			t.Fatal(err)
		}
		a, err := spec.Build(rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := spec.Build(rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Edges(), b.Edges()) {
			t.Fatalf("%q: same seed drew different graphs", in)
		}
	}
}

func TestTopoSpecParseErrors(t *testing.T) {
	for _, in := range []string{"", "mobius 4", "clique", "clique x", "grid 4", "er 10", "er 10 zero", "ba 12",
		"clique 8 16", "grid 4 4 9", "er 10 0.4 7"} {
		if _, err := ParseTopoString(in); err == nil {
			t.Fatalf("%q: want parse error", in)
		}
	}
	if _, err := (TopoSpec{Kind: "internet", N: 8}).Build(nil); err == nil {
		t.Fatal("random topology without rng should error")
	}
}

func TestPlacementSelect(t *testing.T) {
	g, err := topology.Star(5) // AS1 hub (degree 4), AS2..AS5 leaves
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		in   string
		want []idr.ASN
	}{
		{"none", nil},
		{"last 2", []idr.ASN{4, 5}},
		{"first 2", []idr.ASN{1, 2}},
		{"degree 1", []idr.ASN{1}},
		{"degree 3", []idr.ASN{1, 2, 3}},
		{"as 2,4", []idr.ASN{2, 4}},
		{"3,5", []idr.ASN{3, 5}},
	}
	for _, c := range cases {
		p, err := ParsePlacementString(c.in)
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		got, err := p.Select(g)
		if err != nil {
			t.Fatalf("%q: Select: %v", c.in, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("%q: Select = %v, want %v", c.in, got, c.want)
		}
		// The rendered form must select the same members.
		back, err := ParsePlacementString(p.String())
		if err != nil {
			t.Fatalf("%q: re-parse %q: %v", c.in, p.String(), err)
		}
		got2, err := back.Select(g)
		if err != nil || !reflect.DeepEqual(got2, c.want) {
			t.Fatalf("%q: round-trip via %q selected %v (%v)", c.in, p.String(), got2, err)
		}
	}

	// The zero value is the paper's deployment: last K.
	zero := Placement{K: 2}
	got, err := zero.Select(g)
	if err != nil || !reflect.DeepEqual(got, []idr.ASN{4, 5}) {
		t.Fatalf("zero-value placement = %v (%v), want last 2", got, err)
	}
}

func TestPlacementErrors(t *testing.T) {
	g, err := topology.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range []string{"", "as", "as x", "last x"} {
		if _, err := ParsePlacementString(in); err == nil {
			t.Fatalf("%q: want parse error", in)
		}
	}
	if _, err := (Placement{Strategy: PlaceLast, K: 5}).Select(g); err == nil {
		t.Fatal("K beyond topology should error")
	}
	if _, err := (Placement{Strategy: PlaceExplicit, ASNs: []idr.ASN{9}}).Select(g); err == nil {
		t.Fatal("explicit member outside topology should error")
	}
	if _, err := (Placement{Strategy: "random", K: 1}).Select(g); err == nil {
		t.Fatal("unknown strategy should error")
	}
}
