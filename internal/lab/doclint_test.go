package lab

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// TestExportedSymbolsDocumented is the repository's stand-in for a
// `revive exported` lint step (the container has no third-party
// linters): every exported top-level type, function, method, constant,
// variable and struct field in the evaluation-layer packages — lab,
// policy, figures, experiment, scenario and artifact — must carry a
// doc comment, so the evaluation API documents its units and
// zero-value behavior the way lab.Trial.Debounce does. CI runs this
// through the ordinary `go test` invocation.
func TestExportedSymbolsDocumented(t *testing.T) {
	for _, dir := range []string{".", "../policy", "../figures", "../experiment", "../scenario", "../artifact"} {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					checkDecl(t, fset, decl)
				}
			}
		}
	}
}

func checkDecl(t *testing.T, fset *token.FileSet, decl ast.Decl) {
	t.Helper()
	report := func(pos token.Pos, name string) {
		t.Errorf("%s: exported %s has no doc comment", fset.Position(pos), name)
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil {
			report(d.Pos(), "func "+d.Name.Name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					report(s.Pos(), "type "+s.Name.Name)
				}
				if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
					for _, field := range st.Fields.List {
						for _, name := range field.Names {
							if name.IsExported() && field.Doc == nil && field.Comment == nil {
								report(name.Pos(), "field "+s.Name.Name+"."+name.Name)
							}
						}
					}
				}
			case *ast.ValueSpec:
				for _, name := range s.Names {
					if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(name.Pos(), "value "+name.Name)
					}
				}
			}
		}
	}
}
