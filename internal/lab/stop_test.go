package lab

import (
	"errors"
	"sync"
	"testing"
)

// TestRunnerStopSequential pins the sequential drain: once Stop
// closes, no further task starts, the tasks already run keep their
// results, and Do reports ErrStopped.
func TestRunnerStopSequential(t *testing.T) {
	stop := make(chan struct{})
	var ran []int
	err := Runner{Parallelism: 1, Stop: stop}.Do(5, func(i int) error {
		ran = append(ran, i)
		if i == 1 {
			close(stop)
		}
		return nil
	})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("Do returned %v, want ErrStopped", err)
	}
	if len(ran) != 2 || ran[0] != 0 || ran[1] != 1 {
		t.Fatalf("ran %v, want [0 1]", ran)
	}
}

// TestRunnerStopParallel pins the parallel drain: workers finish their
// in-flight tasks (every claimed index completes) but claim nothing
// new, and the skipped remainder surfaces as ErrStopped.
func TestRunnerStopParallel(t *testing.T) {
	stop := make(chan struct{})
	var mu sync.Mutex
	done := map[int]bool{}
	var once sync.Once
	err := Runner{Parallelism: 4, Stop: stop}.Do(64, func(i int) error {
		once.Do(func() { close(stop) })
		mu.Lock()
		done[i] = true
		mu.Unlock()
		return nil
	})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("Do returned %v, want ErrStopped", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(done) == 0 || len(done) >= 64 {
		t.Fatalf("completed %d of 64 tasks, want a strict partial drain", len(done))
	}
}

// TestRunnerStopBeforeStart pins that a pre-closed Stop runs nothing.
func TestRunnerStopBeforeStart(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	for _, par := range []int{1, 4} {
		ran := 0
		err := Runner{Parallelism: par, Stop: stop}.Do(8, func(i int) error {
			ran++
			return nil
		})
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("parallelism %d: Do returned %v, want ErrStopped", par, err)
		}
		if ran != 0 {
			t.Fatalf("parallelism %d: ran %d tasks after pre-closed stop", par, ran)
		}
	}
}

// TestRunnerNilStopCompletes pins that the zero-value Runner (no Stop
// channel) is unaffected: all tasks run, no error.
func TestRunnerNilStopCompletes(t *testing.T) {
	ran := 0
	if err := (Runner{Parallelism: 1}).Do(5, func(i int) error { ran++; return nil }); err != nil {
		t.Fatal(err)
	}
	if ran != 5 {
		t.Fatalf("ran %d of 5", ran)
	}
}

// TestSweepStopStoresPartial pins the sweep-level contract behind
// graceful shutdown: a stopped sweep has already fed every completed
// (cell, run) to its Cache, so a resumed run re-executes only the
// remainder.
func TestSweepStopStoresPartial(t *testing.T) {
	sw := decodeSweeps()["sdn-count"]
	sw.Parallelism = 1
	stop := make(chan struct{})
	cache := &mapCache{results: map[[2]int]Result{}}
	sw.Cache = cache
	sw.Stop = stop
	var once sync.Once
	sw.Progress = func(done, total int) {
		if done >= 2 {
			once.Do(func() { close(stop) })
		}
	}
	if _, err := sw.Run(); !errors.Is(err, ErrStopped) {
		t.Fatalf("Run returned %v, want ErrStopped", err)
	}
	if len(cache.results) != 2 {
		t.Fatalf("stopped sweep stored %d results, want 2", len(cache.results))
	}
	// Resume: same spec, same cache, no stop — the two stored runs are
	// hits and the sweep completes.
	sw.Stop = nil
	sw.Progress = nil
	res, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := sw.Axis.Len() * sw.Runs; len(cache.results) != got {
		t.Fatalf("resumed sweep stored %d results, want %d", len(cache.results), got)
	}
	if cache.hits != 2 {
		t.Fatalf("resumed sweep hit %d cached runs, want 2", cache.hits)
	}
	if len(res.Cells) != sw.Axis.Len() {
		t.Fatalf("resumed sweep produced %d cells, want %d", len(res.Cells), sw.Axis.Len())
	}
}

// mapCache is an in-memory CellCache counting hits.
type mapCache struct {
	mu      sync.Mutex
	results map[[2]int]Result
	hits    int
}

func (c *mapCache) Load(cell, run int) (Result, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.results[[2]int{cell, run}]
	if ok {
		c.hits++
	}
	return r, ok, nil
}

func (c *mapCache) Store(cell, run int, r Result) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.results[[2]int{cell, run}] = r
	return nil
}
