package lab

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// Format selects a sweep output encoding.
type Format string

// Supported formats.
const (
	FormatTable    Format = "table"
	FormatCSV      Format = "csv"
	FormatJSON     Format = "json"
	FormatMarkdown Format = "markdown"
)

// ParseFormat parses a -format flag value.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case FormatTable, FormatCSV, FormatJSON, FormatMarkdown:
		return Format(s), nil
	default:
		return "", fmt.Errorf("lab: unknown format %q (want table, csv, json or markdown)", s)
	}
}

// Write encodes the sweep result in the requested format. Every
// format carries the same uniform record — axis value, the
// five-number convergence summary in seconds, and the per-cell mean
// update / best-path-change / recomputation counters — keyed by the
// sweep's axis metadata instead of per-experiment writers.
func Write(w io.Writer, f Format, res *SweepResult) error {
	switch f {
	case FormatTable:
		return writeTable(w, res)
	case FormatCSV:
		return writeCSV(w, res)
	case FormatJSON:
		return writeJSON(w, res)
	case FormatMarkdown:
		return writeMarkdown(w, res)
	default:
		return fmt.Errorf("lab: unknown format %q", f)
	}
}

func writeTable(w io.Writer, res *SweepResult) error {
	if _, err := fmt.Fprintf(w, "# %s: %s convergence on %s vs %s (policy %s, %d runs/point, seed %d)\n",
		res.Name, res.EventLabel(), res.TopoLabel(), res.Axis.Name(), res.PolicyLabel(), res.Runs, res.BaseSeed); err != nil {
		return err
	}
	sdn := res.Axis.Kind == AxisSDNCount
	hijack := res.hasHijack()
	header := fmt.Sprintf("%-12s ", res.Axis.Name())
	if sdn {
		header += fmt.Sprintf("%-9s ", "fraction")
	}
	header += fmt.Sprintf("%4s %8s %8s %8s %8s %8s %8s %9s %9s %10s",
		"n", "min_s", "q1_s", "med_s", "q3_s", "max_s", "mean_s",
		"updates", "best_chg", "recomputes")
	if hijack {
		header += fmt.Sprintf(" %9s", "hijacked")
	}
	header += fmt.Sprintf(" %9s", "reachable")
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, c := range res.Cells {
		row := fmt.Sprintf("%-12s ", c.Label)
		if sdn {
			row += fmt.Sprintf("%-9.3f ", c.Fraction)
		}
		s := c.Summary
		row += fmt.Sprintf("%4d %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f %9.1f %9.1f %10.1f",
			s.N, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean,
			c.MeanUpdatesSent(), c.MeanBestPathChanges(), c.MeanRecomputes())
		if hijack {
			row += fmt.Sprintf(" %9.1f", c.MeanHijacked())
		}
		row += fmt.Sprintf(" %9v", c.AllReachable())
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
		// Multi-event workloads: one indented sub-row per scheduled
		// event, same statistic columns windowed to the epoch. The
		// label pads to the cell rows' full prefix (axis column plus
		// the sdn-count fraction column) so the columns line up.
		labelWidth := 12
		if sdn {
			labelWidth += 10
		}
		for _, ep := range c.Epochs {
			label := fmt.Sprintf("  @%s %s", ep.At, ep.Kind.Verb())
			s := ep.Summary
			erow := fmt.Sprintf("%-*s %4d %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f %9.1f %9.1f %10.1f",
				labelWidth, label, s.N, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean,
				ep.MeanUpdatesSent, ep.MeanBestPathChanges, ep.MeanRecomputes)
			if hijack {
				erow += fmt.Sprintf(" %9.1f", ep.MeanHijacked)
			}
			if _, err := fmt.Fprintln(w, erow); err != nil {
				return err
			}
		}
	}
	if a, b, r2, ok := res.Fit(); ok {
		x := res.Axis.Name()
		if sdn {
			x = "fraction"
		}
		if _, err := fmt.Fprintf(w, "# linear fit: t = %.1fs %+.1fs*%s (r2=%.3f)\n", a, b, x, r2); err != nil {
			return err
		}
	}
	// Tolerant sweeps: one trailer line per failed (cell, run), so a
	// partial sweep is never mistaken for a complete one.
	for _, f := range res.Failures {
		if _, err := fmt.Fprintf(w, "# failed: %s=%s run %d (%s, attempts %d): %s\n",
			res.Axis.Name(), f.Label, f.Run, f.class(), f.Attempts, f.Err); err != nil {
			return err
		}
	}
	return nil
}

// writeMarkdown renders the sweep as a GitHub-flavored-markdown
// fragment: a configuration line, a pipe table (one row per cell, one
// indented sub-row per scheduled workload event), and the linear fit
// at full 3-decimal precision — the representation REPORT.md embeds,
// also available on the CLI as -format markdown. The output carries
// the same record set as the plain table; only the framing differs.
func writeMarkdown(w io.Writer, res *SweepResult) error {
	if _, err := fmt.Fprintf(w, "**%s** — %s on %s vs %s (policy %s, %d runs/point, seed %d)\n\n",
		res.Name, res.EventLabel(), res.TopoLabel(), res.Axis.Name(), res.PolicyLabel(), res.Runs, res.BaseSeed); err != nil {
		return err
	}
	sdn := res.Axis.Kind == AxisSDNCount
	hijack := res.hasHijack()
	cols := []string{res.Axis.Name()}
	if sdn {
		cols = append(cols, "fraction")
	}
	cols = append(cols, "n", "min_s", "q1_s", "med_s", "q3_s", "max_s", "mean_s",
		"updates", "best_chg", "recomputes")
	if hijack {
		cols = append(cols, "hijacked")
	}
	cols = append(cols, "reachable")
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cols, " | ")); err != nil {
		return err
	}
	rules := make([]string, len(cols))
	rules[0] = ":--"
	for i := 1; i < len(cols); i++ {
		rules[i] = "--:"
	}
	if _, err := fmt.Fprintf(w, "|%s|\n", strings.Join(rules, "|")); err != nil {
		return err
	}
	row := func(label string, frac string, s stats.Summary, updates, bestChg, recomputes, hijacked float64, reachable string) error {
		fields := []string{label}
		if sdn {
			fields = append(fields, frac)
		}
		fields = append(fields,
			strconv.Itoa(s.N),
			fmt.Sprintf("%.3f", s.Min), fmt.Sprintf("%.3f", s.Q1), fmt.Sprintf("%.3f", s.Median),
			fmt.Sprintf("%.3f", s.Q3), fmt.Sprintf("%.3f", s.Max), fmt.Sprintf("%.3f", s.Mean),
			fmt.Sprintf("%.1f", updates), fmt.Sprintf("%.1f", bestChg), fmt.Sprintf("%.1f", recomputes))
		if hijack {
			fields = append(fields, fmt.Sprintf("%.1f", hijacked))
		}
		fields = append(fields, reachable)
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(fields, " | "))
		return err
	}
	for _, c := range res.Cells {
		frac := ""
		if sdn {
			frac = fmt.Sprintf("%.3f", c.Fraction)
		}
		if err := row(c.Label, frac, c.Summary,
			c.MeanUpdatesSent(), c.MeanBestPathChanges(), c.MeanRecomputes(), c.MeanHijacked(),
			fmt.Sprintf("%v", c.AllReachable())); err != nil {
			return err
		}
		for _, ep := range c.Epochs {
			label := fmt.Sprintf("&nbsp;&nbsp;@%s %s", ep.At, ep.Kind.Verb())
			if err := row(label, frac, ep.Summary,
				ep.MeanUpdatesSent, ep.MeanBestPathChanges, ep.MeanRecomputes, ep.MeanHijacked, ""); err != nil {
				return err
			}
		}
	}
	if a, b, r2, ok := res.Fit(); ok {
		x := res.Axis.Name()
		if sdn {
			x = "fraction"
		}
		if _, err := fmt.Fprintf(w, "\nLinear fit: t = %.3f s %+.3f s × %s (r² = %.3f).\n", a, b, x, r2); err != nil {
			return err
		}
	}
	if len(res.Failures) > 0 {
		if _, err := fmt.Fprintf(w, "\n**Failed runs (%d):**\n\n", len(res.Failures)); err != nil {
			return err
		}
		for _, f := range res.Failures {
			if _, err := fmt.Fprintf(w, "- %s=%s run %d (%s, attempts %d): %s\n",
				res.Axis.Name(), f.Label, f.Run, f.class(), f.Attempts, f.Err); err != nil {
				return err
			}
		}
	}
	return nil
}

// fstr formats a float compactly for CSV ("" for NaN).
func fstr(x float64) string {
	if math.IsNaN(x) {
		return ""
	}
	return strconv.FormatFloat(x, 'g', -1, 64)
}

func writeCSV(w io.Writer, res *SweepResult) error {
	if _, err := fmt.Fprintf(w, "%s,value,fraction,n,min_s,q1_s,med_s,q3_s,max_s,mean_s,updates_sent,updates_recv,best_path_changes,recomputes,hijacked,reachable_after,epoch,epoch_kind,epoch_at_s,failed\n",
		res.Axis.Name()); err != nil {
		return err
	}
	for ci, c := range res.Cells {
		s := c.Summary
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%d,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%v,,,,%d\n",
			c.Label, fstr(c.Value), fstr(c.Fraction), s.N,
			fstr(s.Min), fstr(s.Q1), fstr(s.Median), fstr(s.Q3), fstr(s.Max), fstr(s.Mean),
			fstr(c.MeanUpdatesSent()), fstr(c.MeanUpdatesReceived()),
			fstr(c.MeanBestPathChanges()), fstr(c.MeanRecomputes()),
			fstr(c.MeanHijacked()), c.AllReachable(), len(res.CellFailures(ci))); err != nil {
			return err
		}
		// Multi-event workloads: one row per scheduled event with the
		// statistic columns windowed to the epoch and the trailing
		// epoch columns filled (cell-summary rows leave them empty).
		for i, ep := range c.Epochs {
			es := ep.Summary
			if _, err := fmt.Fprintf(w, "%s,%s,%s,%d,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,,%d,%s,%s,\n",
				c.Label, fstr(c.Value), fstr(c.Fraction), es.N,
				fstr(es.Min), fstr(es.Q1), fstr(es.Median), fstr(es.Q3), fstr(es.Max), fstr(es.Mean),
				fstr(ep.MeanUpdatesSent), fstr(ep.MeanUpdatesReceived),
				fstr(ep.MeanBestPathChanges), fstr(ep.MeanRecomputes),
				fstr(ep.MeanHijacked), i, ep.Kind, fstr(ep.At.Seconds())); err != nil {
				return err
			}
		}
	}
	return nil
}

type jsonFit struct {
	InterceptS float64 `json:"intercept_s"`
	SlopeS     float64 `json:"slope_s"`
	R2         float64 `json:"r2"`
}

type jsonEpoch struct {
	Epoch           int       `json:"epoch"`
	Kind            string    `json:"kind"`
	AtS             float64   `json:"at_s"`
	N               int       `json:"n"`
	MinS            float64   `json:"min_s"`
	Q1S             float64   `json:"q1_s"`
	MedS            float64   `json:"med_s"`
	Q3S             float64   `json:"q3_s"`
	MaxS            float64   `json:"max_s"`
	MeanS           float64   `json:"mean_s"`
	DurationsS      []float64 `json:"durations_s"`
	UpdatesSent     float64   `json:"updates_sent"`
	UpdatesRecv     float64   `json:"updates_recv"`
	BestPathChanges float64   `json:"best_path_changes"`
	Recomputes      float64   `json:"recomputes"`
	Hijacked        float64   `json:"hijacked"`
}

type jsonCell struct {
	Label           string      `json:"label"`
	Value           *float64    `json:"value,omitempty"`
	Fraction        *float64    `json:"fraction,omitempty"`
	N               int         `json:"n"`
	MinS            float64     `json:"min_s"`
	Q1S             float64     `json:"q1_s"`
	MedS            float64     `json:"med_s"`
	Q3S             float64     `json:"q3_s"`
	MaxS            float64     `json:"max_s"`
	MeanS           float64     `json:"mean_s"`
	DurationsS      []float64   `json:"durations_s"`
	UpdatesSent     float64     `json:"updates_sent"`
	UpdatesRecv     float64     `json:"updates_recv"`
	BestPathChanges float64     `json:"best_path_changes"`
	Recomputes      float64     `json:"recomputes"`
	Hijacked        float64     `json:"hijacked"`
	ReachableAfter  bool        `json:"reachable_after"`
	Failed          int         `json:"failed,omitempty"`
	Epochs          []jsonEpoch `json:"epochs,omitempty"`
}

type jsonFailure struct {
	Cell     int    `json:"cell"`
	Run      int    `json:"run"`
	Label    string `json:"label"`
	Err      string `json:"err"`
	Class    string `json:"class"`
	Attempts int    `json:"attempts"`
}

type jsonWorkloadEvent struct {
	Kind string  `json:"kind"`
	AtS  float64 `json:"at_s"`
	AS   uint32  `json:"as,omitempty"`
	A    uint32  `json:"a,omitempty"`
	B    uint32  `json:"b,omitempty"`
}

type jsonSweep struct {
	Experiment string              `json:"experiment"`
	Event      string              `json:"event"`
	Workload   []jsonWorkloadEvent `json:"workload,omitempty"`
	Topology   string              `json:"topology"`
	Policy     string              `json:"policy"`
	Axis       string              `json:"axis"`
	Runs       int                 `json:"runs"`
	BaseSeed   int64               `json:"base_seed"`
	Cells      []jsonCell          `json:"cells"`
	Failures   []jsonFailure       `json:"failures,omitempty"`
	Fit        *jsonFit            `json:"fit,omitempty"`
}

func fptr(x float64) *float64 {
	if math.IsNaN(x) {
		return nil
	}
	return &x
}

func writeJSON(w io.Writer, res *SweepResult) error {
	out := jsonSweep{
		Experiment: res.Name,
		Event:      res.EventLabel(),
		Topology:   res.TopoLabel(),
		Policy:     res.PolicyLabel(),
		Axis:       res.Axis.Name(),
		Runs:       res.Runs,
		BaseSeed:   res.BaseSeed,
		Cells:      make([]jsonCell, len(res.Cells)),
	}
	for _, ev := range res.Workload {
		out.Workload = append(out.Workload, jsonWorkloadEvent{
			Kind: ev.Kind.String(),
			AtS:  ev.At.Seconds(),
			AS:   uint32(ev.AS),
			A:    uint32(ev.A),
			B:    uint32(ev.B),
		})
	}
	for i, c := range res.Cells {
		s := c.Summary
		durs := make([]float64, len(c.Results))
		for j, r := range c.Results {
			durs[j] = r.Convergence.Seconds()
		}
		var epochs []jsonEpoch
		for ei, ep := range c.Epochs {
			es := ep.Summary
			edurs := make([]float64, len(c.Results))
			for j, r := range c.Results {
				edurs[j] = r.Epochs[ei].Convergence.Seconds()
			}
			epochs = append(epochs, jsonEpoch{
				Epoch:           ei,
				Kind:            ep.Kind.String(),
				AtS:             ep.At.Seconds(),
				N:               es.N,
				MinS:            es.Min,
				Q1S:             es.Q1,
				MedS:            es.Median,
				Q3S:             es.Q3,
				MaxS:            es.Max,
				MeanS:           es.Mean,
				DurationsS:      edurs,
				UpdatesSent:     ep.MeanUpdatesSent,
				UpdatesRecv:     ep.MeanUpdatesReceived,
				BestPathChanges: ep.MeanBestPathChanges,
				Recomputes:      ep.MeanRecomputes,
				Hijacked:        ep.MeanHijacked,
			})
		}
		out.Cells[i] = jsonCell{
			Label:           c.Label,
			Value:           fptr(c.Value),
			Fraction:        fptr(c.Fraction),
			N:               s.N,
			MinS:            s.Min,
			Q1S:             s.Q1,
			MedS:            s.Median,
			Q3S:             s.Q3,
			MaxS:            s.Max,
			MeanS:           s.Mean,
			DurationsS:      durs,
			UpdatesSent:     c.MeanUpdatesSent(),
			UpdatesRecv:     c.MeanUpdatesReceived(),
			BestPathChanges: c.MeanBestPathChanges(),
			Recomputes:      c.MeanRecomputes(),
			Hijacked:        c.MeanHijacked(),
			ReachableAfter:  c.AllReachable(),
			Failed:          len(res.CellFailures(i)),
			Epochs:          epochs,
		}
	}
	for _, f := range res.Failures {
		out.Failures = append(out.Failures, jsonFailure{
			Cell:     f.Cell,
			Run:      f.Run,
			Label:    f.Label,
			Err:      f.Err,
			Class:    f.class(),
			Attempts: f.Attempts,
		})
	}
	if a, b, r2, ok := res.Fit(); ok {
		out.Fit = &jsonFit{InterceptS: a, SlopeS: b, R2: r2}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
