package lab

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/monitor"
)

// lossySweep is baseSweep with the chaos link knobs turned on: 5%
// seeded per-link loss and a millisecond of probe jitter.
func lossySweep() Sweep {
	s := baseSweep()
	s.Base.LinkLoss = 0.05
	s.Base.LinkJitter = time.Millisecond
	return s
}

// TestLossySweepDeterministicAcrossParallelism pins the chaos
// reproducibility contract: because every link draws loss and jitter
// from its own stream seeded by the trial seed, a lossy sweep is
// byte-identical whether the runs execute sequentially or across 8
// workers.
func TestLossySweepDeterministicAcrossParallelism(t *testing.T) {
	seq := lossySweep()
	seq.Parallelism = 1
	seqRes, err := seq.Run()
	if err != nil {
		t.Fatal(err)
	}
	par := lossySweep()
	par.Parallelism = 8
	parRes, err := par.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqRes, parRes) {
		t.Fatalf("lossy results differ:\nsequential: %+v\nparallel:   %+v", seqRes, parRes)
	}
	var a, b strings.Builder
	if err := Write(&a, FormatJSON, seqRes); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, FormatJSON, parRes); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("lossy JSON differs across parallelism:\n--- sequential ---\n%s--- parallel ---\n%s", a.String(), b.String())
	}
	// And loss actually reaches the dynamics: the lossless twin
	// measures different numbers (retransmission penalties shift the
	// timeline; whether a given cell lands faster or slower depends on
	// which updates the loss pattern prunes from path exploration).
	clean := baseSweep()
	clean.Parallelism = 1
	cleanRes, err := clean.Run()
	if err != nil {
		t.Fatal(err)
	}
	if seqRes.Cells[0].Summary.Median == cleanRes.Cells[0].Summary.Median {
		t.Fatalf("5%% loss left the pure-BGP median untouched (%.3fs): the loss model is not wired into the transport",
			cleanRes.Cells[0].Summary.Median)
	}
}

// TestTotalLossIsDefinedNonConvergence pins the Loss=1.0 edge: with
// every message dropped, sessions never establish, and the trial fails
// with the establishment deadline — a timeout-class error, not a hang
// or a bogus result.
func TestTotalLossIsDefinedNonConvergence(t *testing.T) {
	s := baseSweep()
	s.Base.LinkLoss = 1.0
	s.Base.EstablishTimeout = time.Minute // virtual time: fails fast
	s.Axis = SDNCounts(0)
	s.Runs = 1

	// Direct: the error is classified as a timeout.
	_, err := s.trialFor(0, 0).Run()
	if err == nil {
		t.Fatal("total loss should fail the establishment deadline")
	}
	if !errors.Is(err, monitor.ErrTimeout) {
		t.Fatalf("total-loss error %v is not timeout-class", err)
	}

	// Tolerant: the run is recorded as a timed-out CellFailure and the
	// sweep still completes.
	s.Tolerate = true
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("failures = %d, want 1", len(res.Failures))
	}
	f := res.Failures[0]
	if !f.TimedOut || f.Panicked || f.Cell != 0 || f.Run != 0 {
		t.Fatalf("failure = %+v, want a timed-out cell 0 run 0", f)
	}
}

// TestTolerantSweepRecordsInjectedFailures drives the failure-tolerant
// runner through the Inject seam: one run panics, one times out after
// a retry, the rest survive — and every output format annotates the
// failures.
func TestTolerantSweepRecordsInjectedFailures(t *testing.T) {
	for _, parallelism := range []int{1, 8} {
		s := baseSweep()
		s.Parallelism = parallelism
		s.Tolerate = true
		s.Retries = 1
		s.Inject = func(cell, run int) error {
			switch {
			case cell == 1 && run == 0:
				panic("chaos: injected crash")
			case cell == 2 && run == 1:
				return fmt.Errorf("injected deadline: %w", monitor.ErrTimeout)
			}
			return nil
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		if len(res.Failures) != 2 {
			t.Fatalf("parallelism %d: failures = %+v, want 2", parallelism, res.Failures)
		}
		crash, deadline := res.Failures[0], res.Failures[1]
		if crash.Cell != 1 || crash.Run != 0 || !crash.Panicked || crash.Attempts != 1 {
			t.Fatalf("crash failure = %+v", crash)
		}
		if !strings.Contains(crash.Err, "chaos: injected crash") {
			t.Fatalf("crash error text = %q", crash.Err)
		}
		if deadline.Cell != 2 || deadline.Run != 1 || !deadline.TimedOut || deadline.Attempts != 2 {
			t.Fatalf("deadline failure = %+v (want 2 attempts: 1 + 1 retry)", deadline)
		}
		// Surviving runs still summarize: the crashed cell keeps its
		// other two runs.
		if n := res.Cells[1].Summary.N; n != 2 {
			t.Fatalf("crashed cell summarizes %d runs, want the 2 survivors", n)
		}
		if n := res.Cells[0].Summary.N; n != 3 {
			t.Fatalf("clean cell summarizes %d runs, want 3", n)
		}

		// Every format annotates the failures.
		var table, csv, md, js strings.Builder
		for _, enc := range []struct {
			w *strings.Builder
			f Format
		}{{&table, FormatTable}, {&csv, FormatCSV}, {&md, FormatMarkdown}, {&js, FormatJSON}} {
			if err := Write(enc.w, enc.f, res); err != nil {
				t.Fatal(err)
			}
		}
		if !strings.Contains(table.String(), "# failed: sdn_k=3 run 0 (panic, attempts 1)") ||
			!strings.Contains(table.String(), "# failed: sdn_k=6 run 1 (timeout, attempts 2)") {
			t.Fatalf("table missing failure trailer:\n%s", table.String())
		}
		if !strings.Contains(md.String(), "**Failed runs (2):**") {
			t.Fatalf("markdown missing failure section:\n%s", md.String())
		}
		if !strings.Contains(csv.String(), ",failed") {
			t.Fatalf("csv missing failed column:\n%s", csv.String())
		}
		var decoded struct {
			Failures []struct {
				Cell     int    `json:"cell"`
				Class    string `json:"class"`
				Attempts int    `json:"attempts"`
			} `json:"failures"`
		}
		if err := json.Unmarshal([]byte(js.String()), &decoded); err != nil {
			t.Fatal(err)
		}
		if len(decoded.Failures) != 2 || decoded.Failures[0].Class != "panic" || decoded.Failures[1].Class != "timeout" {
			t.Fatalf("json failures = %+v", decoded.Failures)
		}
	}
}

// TestRetryRecoversFlakyTimeout pins that a retry actually re-executes
// the run: a deadline that fails only on the first attempt leaves no
// failure behind.
func TestRetryRecoversFlakyTimeout(t *testing.T) {
	var mu sync.Mutex
	attempts := map[[2]int]int{}
	s := baseSweep()
	s.Axis = SDNCounts(0)
	s.Runs = 1
	s.Tolerate = true
	s.Retries = 1
	s.Inject = func(cell, run int) error {
		mu.Lock()
		defer mu.Unlock()
		attempts[[2]int{cell, run}]++
		if attempts[[2]int{cell, run}] == 1 {
			return fmt.Errorf("flaky: %w", monitor.ErrTimeout)
		}
		return nil
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("failures = %+v, want none (the retry should recover)", res.Failures)
	}
	if got := attempts[[2]int{0, 0}]; got != 2 {
		t.Fatalf("attempts = %d, want 2", got)
	}
	if res.Cells[0].Summary.N != 1 {
		t.Fatal("recovered run missing from the summary")
	}
}

// TestNonTolerantPanicAborts pins the default mode: without Tolerate
// an injected panic surfaces as a *PanicError-wrapped sweep error —
// and, with workers, the panic neither deadlocks the runner nor kills
// the sibling goroutines (the process would die if it did).
func TestNonTolerantPanicAborts(t *testing.T) {
	s := baseSweep()
	s.Parallelism = 4
	s.Inject = func(cell, run int) error {
		if cell == 0 && run == 0 {
			panic("chaos: unhandled")
		}
		return nil
	}
	_, err := s.Run()
	if err == nil {
		t.Fatal("non-tolerant sweep should abort on the injected panic")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a *PanicError in the chain", err)
	}
	if pe.Value != "chaos: unhandled" || !strings.Contains(pe.Stack, "goroutine") {
		t.Fatalf("panic error = %+v, want the injected value and a stack", pe)
	}
}

// TestRunnerPanicDoesNotKillSiblings is the mid-sweep crash drill for
// the bare Runner (run with -race in CI): one task panics while 8
// workers chew through 40 tasks. The panic must be recovered into
// Do's error — not kill the process or deadlock the WaitGroup — and
// the siblings already in flight must complete (the runner then stops
// claiming new work, its documented fail-fast contract).
func TestRunnerPanicDoesNotKillSiblings(t *testing.T) {
	var completed atomic.Int32
	err := Runner{Parallelism: 8}.Do(40, func(i int) error {
		if i == 7 {
			panic(fmt.Sprintf("task %d crashed", i))
		}
		completed.Add(1)
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a *PanicError", err)
	}
	if got := completed.Load(); got < 7 {
		t.Fatalf("completed siblings = %d, want at least the 7 in flight", got)
	}
}
