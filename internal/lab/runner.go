package lab

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// ErrStopped reports that a runner drained instead of finishing: its
// Stop channel closed while tasks were still unclaimed, so the
// in-flight tasks completed (and their results were stored through
// whatever cache the caller wired up) but at least one task never
// ran. Callers distinguish it from real failures with errors.Is — a
// stopped sweep is resumable, not broken.
var ErrStopped = errors.New("lab: stopped before completion")

// PanicError wraps a panic recovered from a runner task, so one
// crashing run surfaces as an ordinary per-index error instead of
// killing its worker goroutine (which would deadlock Do's WaitGroup)
// or the whole process. Stack holds the goroutine stack captured at
// recovery time.
type PanicError struct {
	// Value is the value the task panicked with.
	Value any
	// Stack is the formatted goroutine stack at the panic site.
	Stack string
}

// Error renders the recovered panic value.
func (e *PanicError) Error() string {
	return fmt.Sprintf("lab: task panicked: %v", e.Value)
}

// runTask invokes task(i), converting a panic into a *PanicError.
func runTask(task func(i int) error, i int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: string(debug.Stack())}
		}
	}()
	return task(i)
}

// Runner executes the independent seeded emulation runs of a sweep
// across a bounded pool of worker goroutines. Every run owns a private
// sim.Kernel (and everything hanging off it: routers, controller,
// network), so runs are share-nothing and the only coordination is the
// work counter. Each task writes its result into a slot identified by
// its index, which makes parallel output byte-identical to sequential
// execution regardless of completion order.
type Runner struct {
	// Parallelism bounds the number of concurrently executing runs.
	// 0 (or negative) means runtime.GOMAXPROCS(0); 1 runs strictly
	// sequentially on the calling goroutine.
	Parallelism int
	// Progress, when non-nil, is invoked after every task finishes
	// (successfully or not) with the number of completed tasks so far
	// and the total — the hook long sweeps use to stream per-run
	// completion. With Parallelism > 1 it is called concurrently from
	// worker goroutines and must be safe for concurrent use; each
	// done value 1..total is delivered exactly once, but calls may be
	// observed out of order, so a forward-only consumer (e.g. a
	// progress bar) should keep the maximum seen.
	Progress func(done, total int)
	// Stop, when non-nil, requests a graceful drain: once the channel
	// is closed workers stop claiming new task indices, finish the
	// tasks they are already running, and Do returns ErrStopped if any
	// task was left unclaimed. Closing Stop after the last task has
	// been claimed is a no-op — Do still returns nil. This is the
	// SIGINT seam: in-flight cells flush normally, nothing is killed
	// mid-run, and a re-run resumes from whatever completed.
	Stop <-chan struct{}
}

// stopped reports whether the stop channel has been closed. A nil
// channel never stops (receiving from nil blocks, so the default
// branch is taken).
func (r Runner) stopped() bool {
	select {
	case <-r.Stop:
		return true
	default:
		return false
	}
}

// Do invokes task(i) for every i in [0, n). Tasks run concurrently up
// to the configured parallelism; Do returns after all spawned tasks
// finish. Errors are collected per index and the lowest-index error is
// returned, so the reported failure is deterministic no matter how the
// schedule interleaves. A panicking task is recovered into a
// *PanicError for its index — sibling tasks finish (or stop claiming
// new work) normally and Do still returns.
func (r Runner) Do(n int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	p := r.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	var done atomic.Int64
	report := func() {
		d := int(done.Add(1))
		if r.Progress != nil {
			r.Progress(d, n)
		}
	}
	if p == 1 {
		for i := 0; i < n; i++ {
			if r.stopped() {
				return ErrStopped
			}
			err := runTask(task, i)
			report()
			if err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed, drained atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Stop claiming new work once any task has failed, so a
				// broken sweep fails fast like the sequential path.
				// Indices are dispensed monotonically, so every skipped
				// index exceeds the recorded failure and the
				// lowest-index error below is unaffected. A graceful
				// stop drains the same way, except it is recorded as
				// ErrStopped rather than a failure.
				if r.stopped() {
					drained.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := runTask(task, i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
				report()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if drained.Load() && int(next.Load()) < n {
		return ErrStopped
	}
	return nil
}
