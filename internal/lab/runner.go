package lab

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Runner executes the independent seeded emulation runs of a sweep
// across a bounded pool of worker goroutines. Every run owns a private
// sim.Kernel (and everything hanging off it: routers, controller,
// network), so runs are share-nothing and the only coordination is the
// work counter. Each task writes its result into a slot identified by
// its index, which makes parallel output byte-identical to sequential
// execution regardless of completion order.
type Runner struct {
	// Parallelism bounds the number of concurrently executing runs.
	// 0 (or negative) means runtime.GOMAXPROCS(0); 1 runs strictly
	// sequentially on the calling goroutine.
	Parallelism int
}

// Do invokes task(i) for every i in [0, n). Tasks run concurrently up
// to the configured parallelism; Do returns after all spawned tasks
// finish. Errors are collected per index and the lowest-index error is
// returned, so the reported failure is deterministic no matter how the
// schedule interleaves.
func (r Runner) Do(n int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	p := r.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p == 1 {
		for i := 0; i < n; i++ {
			if err := task(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Stop claiming new work once any task has failed, so a
				// broken sweep fails fast like the sequential path.
				// Indices are dispensed monotonically, so every skipped
				// index exceeds the recorded failure and the
				// lowest-index error below is unaffected.
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := task(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
