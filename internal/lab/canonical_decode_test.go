package lab

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/idr"
)

// decodeSweeps is the round-trip corpus: one sweep per axis kind plus
// the trickier trial shapes (explicit workload, damping, negative
// debounce, Erdős–Rényi float parameter).
func decodeSweeps() map[string]Sweep {
	return map[string]Sweep{
		"sdn-count": {
			Base: Trial{
				Topo:            TopoSpec{Kind: "clique", N: 6},
				Event:           Withdrawal,
				Debounce:        100 * time.Millisecond,
				ProcessingDelay: 25 * time.Millisecond,
			},
			Axis:       SDNCounts(0, 3, 6),
			Runs:       3,
			BaseSeed:   21,
			SeedPolicy: SeedCellRun,
		},
		"mrai": {
			Base: Trial{Topo: TopoSpec{Kind: "ring", N: 8}, Event: Announcement},
			Axis: MRAIs(time.Second, 5*time.Second, 30*time.Second),
			Runs: 2,
		},
		"size": {
			Base: Trial{Topo: TopoSpec{Kind: "er", N: 16, P: 0.25}, Event: Failover, OriginOnly: true},
			Axis: TopoSizes(8, 16, 32),
		},
		"debounce-off": {
			Base: Trial{Topo: TopoSpec{Kind: "star", N: 5}, Event: Withdrawal},
			// The negative "disabled" debounce labels as "off" but must
			// serialize as a value ("-1ns") to keep distinct settings at
			// distinct addresses — the decode must parse it back.
			Axis: Debounces(-time.Nanosecond, 0, time.Second),
		},
		"flap-modes": {
			Base: Trial{
				Topo:       TopoSpec{Kind: "grid", N: 3, M: 3},
				Event:      Flap,
				FlapCycles: 4,
				FlapPeriod: 10 * time.Second,
				Damping:    &bgp.DampingConfig{HalfLife: 2 * time.Minute},
				Drain:      10 * time.Minute,
			},
			Axis: Modes(ModeBGP, ModeDamping, ModeSDN),
		},
		"flap-period": {
			Base: Trial{Topo: TopoSpec{Kind: "clique", N: 4}, Event: Flap},
			Axis: FlapPeriods(5*time.Second, 20*time.Second),
		},
		"policy": {
			Base: Trial{Topo: TopoSpec{Kind: "tree", N: 7, M: 2}, Event: Hijack},
			Axis: Policies(PolicySpec{}, PolicySpec{Kind: "gao-rexford"}, PolicySpec{Kind: "prefix-filter"}),
		},
		"loss": {
			Base: Trial{
				Topo:       TopoSpec{Kind: "line", N: 5},
				Event:      Withdrawal,
				LinkDelay:  2 * time.Millisecond,
				LinkJitter: time.Millisecond,
			},
			Axis: Losses(0, 0.05, 0.2),
		},
		"workload": {
			Base: Trial{
				Topo: TopoSpec{Kind: "clique", N: 5},
				// Event is sugar-masked by the explicit schedule; the
				// canonical form must survive the round trip regardless.
				Event: Announcement,
				Workload: Workload{
					{At: 0, Kind: KindWithdrawal},
					{At: 30 * time.Second, Kind: KindAnnouncement, AS: 2},
					{At: time.Minute, Kind: KindLinkDown, A: 1, B: 3},
				},
				Placement: Placement{Strategy: PlaceExplicit, ASNs: []idr.ASN{2, 3}},
			},
			Axis: SDNCounts(2),
		},
	}
}

// TestParseCanonicalRoundTrip pins that ParseCanonical is the exact
// inverse of Canonical for every axis kind and trial shape: decode
// then re-encode reproduces the input bytes, so a spec shipped over
// the daemon wire reconstructs the identical content address.
func TestParseCanonicalRoundTrip(t *testing.T) {
	for name, sw := range decodeSweeps() {
		t.Run(name, func(t *testing.T) {
			data, err := sw.Canonical()
			if err != nil {
				t.Fatal(err)
			}
			got, err := ParseCanonical(data)
			if err != nil {
				t.Fatalf("ParseCanonical: %v", err)
			}
			back, err := got.Canonical()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back, data) {
				t.Fatalf("round trip changed the canonical bytes:\nin:  %s\nout: %s", data, back)
			}
		})
	}
}

// TestParseCanonicalGridMatches pins that a decoded sweep runs the
// same grid: same cell labels, same per-(cell,run) seeds — the
// properties the artifact store's (spec, cell, run) addressing relies
// on.
func TestParseCanonicalGridMatches(t *testing.T) {
	sw := decodeSweeps()["sdn-count"]
	data, err := sw.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseCanonical(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Axis.Len() != sw.Axis.Len() || got.Runs != sw.Runs {
		t.Fatalf("grid shape changed: got %dx%d, want %dx%d", got.Axis.Len(), got.Runs, sw.Axis.Len(), sw.Runs)
	}
	for ci := 0; ci < sw.Axis.Len(); ci++ {
		if got.Axis.Label(ci) != sw.Axis.Label(ci) {
			t.Errorf("cell %d label: got %q, want %q", ci, got.Axis.Label(ci), sw.Axis.Label(ci))
		}
		for run := 0; run < sw.Runs; run++ {
			if got.seed(ci, run) != sw.seed(ci, run) {
				t.Errorf("seed(%d,%d): got %d, want %d", ci, run, got.seed(ci, run), sw.seed(ci, run))
			}
		}
	}
}

// TestParseCanonicalRejects pins the admission checks: version skew,
// non-canonical spellings, unknown fields and junk all fail loudly
// instead of aliasing a different spec.
func TestParseCanonicalRejects(t *testing.T) {
	sw := decodeSweeps()["mrai"]
	data, err := sw.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"junk":           "not json",
		"version skew":   strings.Replace(string(data), `"version":2`, `"version":1`, 1),
		"unknown field":  strings.Replace(string(data), `"version":2`, `"version":2,"extra":true`, 1),
		"unknown axis":   strings.Replace(string(data), `"name":"mrai_s"`, `"name":"mrai_m"`, 1),
		"bad policy":     strings.Replace(string(data), `"policy":"permit-all"`, `"policy":"deny-most"`, 1),
		"zero runs":      strings.Replace(string(data), `"runs":2`, `"runs":0`, 1),
		"no event":       strings.Replace(string(data), `"event":"announcement"`, `"event":""`, 1),
		"bad seedpolicy": strings.Replace(string(data), `"seed_policy":"run"`, `"seed_policy":"dice"`, 1),
		// Whitespace is a different byte spelling of the same spec: it
		// must be rejected, or one sweep would get two store addresses.
		"non-canonical whitespace": strings.Replace(string(data), `"runs":2`, `"runs": 2`, 1),
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseCanonical([]byte(in)); err == nil {
				t.Fatalf("ParseCanonical accepted %s", name)
			}
		})
	}
}
