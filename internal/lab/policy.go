package lab

import (
	"fmt"
	"net/netip"
	"strings"

	"repro/internal/addressing"
	"repro/internal/idr"
	"repro/internal/policy"
	"repro/internal/topology"
)

// Policy template names accepted by ParsePolicy. The same names are
// accepted by the scenario DSL's "policy" directive and the
// convergence CLI's -policy flag, so "gao-rexford" means the same
// routing policy everywhere.
const (
	// PolicyPermitAll is free transit between all neighbors — the
	// classic setting for artificial topologies, and the default.
	PolicyPermitAll = "permit-all"
	// PolicyGaoRexford is valley-free business routing: prefer
	// customer routes; export customer routes to everyone, peer and
	// provider routes only to customers.
	PolicyGaoRexford = "gao-rexford"
	// PolicyPrefixFilter is Gao-Rexford plus IRR-style customer-cone
	// prefix lists: imports from customers and peers are accepted only
	// for prefixes legitimately originated inside the neighbor's
	// customer cone (policy.ConeFilter).
	PolicyPrefixFilter = "prefix-filter"
)

// PolicySpec names one routing-policy template. The zero value selects
// PolicyPermitAll, so a zero lab.Trial reproduces the policy-free
// experiments exactly.
type PolicySpec struct {
	// Kind is one of the Policy* constants; empty means PolicyPermitAll.
	Kind string
}

// ParsePolicy parses a policy template name as accepted by the CLI's
// -policy flag and the scenario DSL's policy directive.
func ParsePolicy(s string) (PolicySpec, error) {
	switch strings.ToLower(s) {
	case PolicyPermitAll, PolicyGaoRexford, PolicyPrefixFilter:
		return PolicySpec{Kind: strings.ToLower(s)}, nil
	default:
		return PolicySpec{}, fmt.Errorf("lab: unknown policy %q (want %s, %s or %s)",
			s, PolicyPermitAll, PolicyGaoRexford, PolicyPrefixFilter)
	}
}

// String renders the spec in the form ParsePolicy accepts; the zero
// value renders as "permit-all".
func (s PolicySpec) String() string {
	if s.Kind == "" {
		return PolicyPermitAll
	}
	return s.Kind
}

// Build resolves the template against a concrete topology. The
// prefix-filter template derives each AS's legitimate origin prefix
// from the deterministic address plan (the same plan the experiment
// builds) and each neighbor's customer cone from the topology's
// provider-customer edges; the other templates ignore the graph.
func (s PolicySpec) Build(g *topology.Graph) (policy.Policy, error) {
	switch s.Kind {
	case "", PolicyPermitAll:
		return policy.PermitAll{}, nil
	case PolicyGaoRexford:
		return policy.GaoRexford{}, nil
	case PolicyPrefixFilter:
		plan, err := addressing.NewPlan(g.Nodes())
		if err != nil {
			return nil, err
		}
		origins := make(map[netip.Prefix]idr.ASN, g.NumNodes())
		for _, asn := range g.Nodes() {
			prefix, err := plan.OriginPrefix(asn)
			if err != nil {
				return nil, err
			}
			origins[prefix] = asn
		}
		return policy.NewConeFilter(policy.GaoRexford{}, g, origins), nil
	default:
		return nil, fmt.Errorf("lab: unknown policy %q", s.Kind)
	}
}
