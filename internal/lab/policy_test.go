package lab

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/idr"
	"repro/internal/policy"
	"repro/internal/topology"
)

func TestParsePolicy(t *testing.T) {
	for _, name := range []string{PolicyPermitAll, PolicyGaoRexford, PolicyPrefixFilter} {
		spec, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if spec.String() != name {
			t.Fatalf("round-trip %q -> %q", name, spec.String())
		}
	}
	if _, err := ParsePolicy("open-bar"); err == nil {
		t.Fatal("unknown policy should error")
	}
	if got := (PolicySpec{}).String(); got != PolicyPermitAll {
		t.Fatalf("zero spec renders %q, want %q", got, PolicyPermitAll)
	}
}

func TestPolicySpecBuild(t *testing.T) {
	g, err := topology.Star(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		spec PolicySpec
		want string
	}{
		{PolicySpec{}, "policy.PermitAll"},
		{PolicySpec{Kind: PolicyPermitAll}, "policy.PermitAll"},
		{PolicySpec{Kind: PolicyGaoRexford}, "policy.GaoRexford"},
		{PolicySpec{Kind: PolicyPrefixFilter}, "policy.ConeFilter"},
	} {
		p, err := tc.spec.Build(g)
		if err != nil {
			t.Fatalf("%v: %v", tc.spec, err)
		}
		switch tc.want {
		case "policy.PermitAll":
			if _, ok := p.(policy.PermitAll); !ok {
				t.Fatalf("%v built %T", tc.spec, p)
			}
		case "policy.GaoRexford":
			if _, ok := p.(policy.GaoRexford); !ok {
				t.Fatalf("%v built %T", tc.spec, p)
			}
		case "policy.ConeFilter":
			cf, ok := p.(policy.ConeFilter)
			if !ok {
				t.Fatalf("%v built %T", tc.spec, p)
			}
			// The hub's cone covers everything; a leaf's only itself.
			if len(cf.Cones[topology.BaseASN]) != 4 {
				t.Fatalf("hub cone = %v, want all 4 ASes", cf.Cones[topology.BaseASN])
			}
			if len(cf.Cones[topology.BaseASN+1]) != 1 {
				t.Fatalf("leaf cone = %v, want itself only", cf.Cones[topology.BaseASN+1])
			}
			if len(cf.Origins) != 4 {
				t.Fatalf("origins = %v, want one prefix per AS", cf.Origins)
			}
		}
	}
	if _, err := (PolicySpec{Kind: "open-bar"}).Build(g); err == nil {
		t.Fatal("unknown policy kind should error at build")
	}
}

// TestGaoRexfordValleyFreeProperty runs a full emulation on a seeded
// internet-like topology under the gao-rexford template and asserts
// the valley-free property on every settled best path: traffic climbs
// customer→provider links, crosses at most one peering, then descends
// provider→customer — equivalently, no route learned from a peer or
// provider is ever exported to another peer or provider.
func TestGaoRexfordValleyFreeProperty(t *testing.T) {
	spec := TopoSpec{Kind: "internet", N: 40}
	g, err := spec.Build(rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	pol, err := PolicySpec{Kind: PolicyGaoRexford}.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	e, err := experiment.New(experiment.Config{Seed: 1, Graph: g, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.WaitEstablished(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	for _, asn := range e.ASNs() {
		if err := e.Announce(asn); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.WaitConverged(2 * time.Hour); err != nil {
		t.Fatal(err)
	}

	checked := 0
	for from, router := range e.Routers {
		for _, rt := range router.Table().BestRoutes() {
			if rt.Local {
				continue
			}
			var asns []idr.ASN
			for _, seg := range rt.Attrs.ASPath {
				asns = append(asns, seg.ASNs...)
			}
			hops := append([]idr.ASN{from}, asns...)
			// Valley-free state machine over the traffic direction:
			// climbing until the first peer crossing or descent, then
			// strictly descending.
			descending := false
			for i := 0; i+1 < len(hops); i++ {
				kind, hasEdge := g.RelationshipOf(hops[i], hops[i+1])
				if !hasEdge {
					t.Fatalf("path %v at %v uses non-adjacent hop %v-%v", hops, from, hops[i], hops[i+1])
				}
				switch kind {
				case topology.KindProvider, topology.KindPeer:
					if descending {
						t.Fatalf("valley in path %v at %v: %v-%v goes %v after a descent",
							hops, from, hops[i], hops[i+1], kind)
					}
					if kind == topology.KindPeer {
						descending = true
					}
				case topology.KindCustomer:
					descending = true
				}
			}
			checked++
		}
	}
	// A vacuous pass would hide a broken warm-up: with 40 ASes fully
	// announced the routers hold on the order of 40x40 best routes.
	if checked < 1000 {
		t.Fatalf("only %d best paths checked; warm-up did not populate the RIBs", checked)
	}
}

// TestHijackContainment pins the hijack event end to end. Under
// gao-rexford a stub's bogus origination spreads aggressively — the
// prefer-customer rule (LOCAL_PREF 200) beats the victim's shorter
// paths along the attacker's provider chain, the classic hijack
// amplification. Prefix filters drop it cold at the first provider,
// and centralizing route control shrinks the infected set — the
// containment question the hijack figure sweeps.
func TestHijackContainment(t *testing.T) {
	base := Trial{
		Topo:      TopoSpec{Kind: "internet", N: 24},
		Placement: Placement{Strategy: PlaceNone},
		Event:     Hijack,
		Seed:      1,
		TopoSeed:  1,
	}
	hijacked := make(map[string]int)
	for _, kind := range []string{PolicyPermitAll, PolicyGaoRexford, PolicyPrefixFilter} {
		trial := base
		trial.Policy = PolicySpec{Kind: kind}
		res, err := trial.Run()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !res.ReachableAfter {
			t.Fatalf("%s: origin prefix unreachable after hijack settles", kind)
		}
		hijacked[kind] = res.HijackedASes
	}
	if hijacked[PolicyPermitAll] == 0 {
		t.Fatal("permit-all: hijack attracted no ASes; the event is not firing")
	}
	if hijacked[PolicyGaoRexford] <= hijacked[PolicyPermitAll] {
		t.Fatalf("gao-rexford (%d hijacked) should amplify a stub hijack beyond permit-all (%d): prefer-customer beats path length",
			hijacked[PolicyGaoRexford], hijacked[PolicyPermitAll])
	}
	if hijacked[PolicyPrefixFilter] != 0 {
		t.Fatalf("prefix-filter: %d ASes hijacked, want 0 (cone filters drop the bogus origination at the first provider)",
			hijacked[PolicyPrefixFilter])
	}

	// Centralization containment: cluster the best-connected half of
	// the network under the controller and the infected set shrinks.
	clustered := base
	clustered.Policy = PolicySpec{Kind: PolicyGaoRexford}
	clustered.Placement = Placement{Strategy: PlaceDegree, K: 12}
	clustered.Debounce = 100 * time.Millisecond
	res, err := clustered.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.HijackedASes >= hijacked[PolicyGaoRexford] {
		t.Fatalf("half-clustered network: %d hijacked, want fewer than the pure-BGP %d (centralization localizes the bogus route)",
			res.HijackedASes, hijacked[PolicyGaoRexford])
	}
}

// TestHijackNeedsLegacyAttacker covers the degenerate full-deployment
// cell: with every AS clustered there is no legacy router left to
// originate the bogus announcement.
func TestHijackNeedsLegacyAttacker(t *testing.T) {
	trial := Trial{
		Topo:      TopoSpec{Kind: "clique", N: 4},
		Placement: Placement{Strategy: PlaceLast, K: 4},
		Event:     Hijack,
	}
	if _, err := trial.Run(); err == nil {
		t.Fatal("hijack with a fully-clustered network should error")
	}
}

// TestTrialOriginOnlyWarmup pins that the origin-only warm-up keeps
// the measured dynamics: a withdrawal still shows real convergence,
// and a fail-over still leaves the origin reachable over the backup —
// the reachability bookkeeping only ever concerned the origin prefix.
func TestTrialOriginOnlyWarmup(t *testing.T) {
	withdrawal := Trial{Topo: TopoSpec{Kind: "clique", N: 6}, Seed: 3, OriginOnly: true}
	res, err := withdrawal.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Convergence <= 0 {
		t.Fatalf("origin-only withdrawal convergence = %v, want > 0", res.Convergence)
	}
	if res.ReachableAfter {
		t.Fatal("origin prefix should be unreachable after its withdrawal")
	}
	failover := Trial{Topo: TopoSpec{Kind: "clique", N: 6}, Event: Failover, Seed: 3, OriginOnly: true}
	fres, err := failover.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !fres.ReachableAfter {
		t.Fatal("origin prefix should stay reachable over the backup attachment")
	}
}
