package lab

import (
	"encoding/json"
	"fmt"
)

// The canonical spec serialization: a stable, fully-resolved byte
// encoding of everything that determines a sweep's results. Two sweeps
// with equal Canonical() bytes are guaranteed to produce identical
// results (the engine is deterministic per seed), which is what lets
// the artifact store content-address cached cells by the spec hash.
// Presentation-only fields (Name) and execution-only fields
// (Parallelism, Progress, Cache, WallLimit and the failure-tolerance
// knobs) are deliberately excluded — they cannot change a successful
// result, so they must not change the address.
//
// The encoding is JSON over explicit mirror structs: struct fields
// marshal in declaration order, durations as integer nanoseconds, so
// the bytes are stable across runs, processes and Go versions as long
// as the semantics are unchanged. Renaming or reordering a canonical
// field is a deliberate cache invalidation.

// canonicalEvent mirrors WorkloadEvent for the canonical encoding.
type canonicalEvent struct {
	AtNS int64  `json:"at_ns"`
	Kind string `json:"kind"`
	AS   uint32 `json:"as"`
	A    uint32 `json:"a"`
	B    uint32 `json:"b"`
}

// canonicalDamping mirrors bgp.DampingConfig (nil when damping is
// off), with the documented defaults resolved.
type canonicalDamping struct {
	WithdrawPenalty   float64 `json:"withdraw_penalty"`
	UpdatePenalty     float64 `json:"update_penalty"`
	SuppressThreshold float64 `json:"suppress_threshold"`
	ReuseThreshold    float64 `json:"reuse_threshold"`
	HalfLifeNS        int64   `json:"half_life_ns"`
	MaxSuppressNS     int64   `json:"max_suppress_ns"`
}

// canonicalTrial is the fully-resolved trial template: every Trial
// field that reaches the engine, with the documented defaults applied
// so that spelling a default out loud addresses the same content.
type canonicalTrial struct {
	Topo                 string            `json:"topo"`
	Placement            string            `json:"placement"`
	Policy               string            `json:"policy"`
	Event                string            `json:"event"`
	Workload             []canonicalEvent  `json:"workload,omitempty"`
	DrainNS              int64             `json:"drain_ns"`
	HoldTimeNS           int64             `json:"hold_time_ns"`
	KeepaliveFraction    int               `json:"keepalive_fraction"`
	ConnectRetryNS       int64             `json:"connect_retry_ns"`
	MRAINS               int64             `json:"mrai_ns"`
	WithdrawalsImmediate bool              `json:"withdrawals_immediate"`
	MRAIJitter           bool              `json:"mrai_jitter"`
	DebounceNS           int64             `json:"debounce_ns"`
	SettleNS             int64             `json:"settle_ns"`
	ProcessingDelayNS    int64             `json:"processing_delay_ns"`
	LinkDelayNS          int64             `json:"link_delay_ns"`
	LinkJitterNS         int64             `json:"link_jitter_ns"`
	LinkLoss             float64           `json:"link_loss"`
	Damping              *canonicalDamping `json:"damping,omitempty"`
	FlapCycles           int               `json:"flap_cycles"`
	FlapPeriodNS         int64             `json:"flap_period_ns"`
	OriginOnly           bool              `json:"origin_only"`
	TimeoutNS            int64             `json:"timeout_ns"`
	EstablishTimeoutNS   int64             `json:"establish_timeout_ns"`
}

// canonicalAxis is the swept axis with its values rendered through the
// axis's own labels (which round-trip every value kind).
type canonicalAxis struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

// canonicalSweep is the full content address: the resolved base trial,
// the axis, and the seed derivation. Trial.Seed and Trial.TopoSeed are
// not part of the base — the sweep derives them per (cell, run) from
// BaseSeed and SeedPolicy, so those two fields cover them.
type canonicalSweep struct {
	Version    int            `json:"version"`
	Base       canonicalTrial `json:"base"`
	Axis       canonicalAxis  `json:"axis"`
	Runs       int            `json:"runs"`
	BaseSeed   int64          `json:"base_seed"`
	SeedPolicy string         `json:"seed_policy"`
}

// canonicalVersion bumps when the engine's semantics change in a way
// the spec fields cannot express (every cached result is then stale).
// Version 2: the link knobs (delay, jitter, loss) joined the canonical
// trial and reliable transport gained the seeded loss model.
const canonicalVersion = 2

// canonical resolves the trial to its canonical mirror.
func (t Trial) canonical() canonicalTrial {
	t = t.withDefaults()
	// Resolve the per-field timer defaults through the same path the
	// router uses, so a partially-specified Timers and its spelled-out
	// equivalent share an address. (MRAIJitter passes through as set —
	// it participates below because jitter changes every convergence
	// draw.)
	t.Timers = t.Timers.Resolved()
	// An explicit Workload takes precedence over the Event sugar, so
	// the ignored Event must not participate in the address.
	event := t.Event.String()
	if len(t.Workload) > 0 {
		event = ""
	}
	c := canonicalTrial{
		Topo:                 t.Topo.String(),
		Placement:            t.Placement.String(),
		Policy:               t.Policy.String(),
		Event:                event,
		DrainNS:              int64(t.Drain),
		HoldTimeNS:           int64(t.Timers.HoldTime),
		KeepaliveFraction:    t.Timers.KeepaliveFraction,
		ConnectRetryNS:       int64(t.Timers.ConnectRetry),
		MRAINS:               int64(t.Timers.MRAI),
		WithdrawalsImmediate: t.Timers.WithdrawalsImmediate,
		MRAIJitter:           t.Timers.MRAIJitter,
		DebounceNS:           int64(t.Debounce),
		SettleNS:             int64(t.Settle),
		ProcessingDelayNS:    int64(t.ProcessingDelay),
		LinkDelayNS:          int64(t.LinkDelay),
		LinkJitterNS:         int64(t.LinkJitter),
		LinkLoss:             t.LinkLoss,
		FlapCycles:           t.FlapCycles,
		FlapPeriodNS:         int64(t.FlapPeriod),
		OriginOnly:           t.OriginOnly,
		TimeoutNS:            int64(t.Timeout),
		EstablishTimeoutNS:   int64(t.EstablishTimeout),
	}
	for _, ev := range t.Workload {
		c.Workload = append(c.Workload, canonicalEvent{
			AtNS: int64(ev.At),
			Kind: ev.Kind.String(),
			AS:   uint32(ev.AS),
			A:    uint32(ev.A),
			B:    uint32(ev.B),
		})
	}
	if t.Damping != nil {
		// Resolve the damping defaults through the same path the
		// router uses, so DampingConfig{} and the spelled-out defaults
		// share an address.
		d := t.Damping.Resolved()
		c.Damping = &canonicalDamping{
			WithdrawPenalty:   d.WithdrawPenalty,
			UpdatePenalty:     d.UpdatePenalty,
			SuppressThreshold: d.SuppressThreshold,
			ReuseThreshold:    d.ReuseThreshold,
			HalfLifeNS:        int64(d.HalfLife),
			MaxSuppressNS:     int64(d.MaxSuppress),
		}
	}
	return c
}

// seedPolicyNames maps SeedPolicy values to their canonical names.
var seedPolicyNames = map[SeedPolicy]string{
	SeedRun:     "run",
	SeedCellRun: "cell-run",
}

// Canonical returns the sweep's canonical spec serialization: a
// stable, fully-resolved JSON encoding of every field that determines
// the sweep's results (topology, placement, policy, workload, timers,
// axis, runs, seed derivation — with documented defaults applied), and
// nothing else. Equal bytes mean equal results; the artifact store
// hashes these bytes into the content address its records are filed
// under. Presentation and execution knobs (Name, Parallelism,
// Progress, Cache) do not participate.
func (s Sweep) Canonical() ([]byte, error) {
	runs := s.Runs
	if runs <= 0 {
		runs = 1
	}
	pol, ok := seedPolicyNames[s.SeedPolicy]
	if !ok {
		return nil, fmt.Errorf("lab: unknown seed policy %d", int(s.SeedPolicy))
	}
	axis := canonicalAxis{Name: s.Axis.Name()}
	for i := 0; i < s.Axis.Len(); i++ {
		axis.Values = append(axis.Values, s.Axis.Label(i))
	}
	// Duration axes label "-1ns" as "off"; disambiguate by value so
	// distinct debounce settings never share an address.
	switch s.Axis.Kind {
	case AxisMRAI, AxisDebounce, AxisFlapPeriod:
		for i, d := range s.Axis.Durations {
			axis.Values[i] = d.String()
		}
	}
	return json.Marshal(canonicalSweep{
		Version:    canonicalVersion,
		Base:       s.Base.canonical(),
		Axis:       axis,
		Runs:       runs,
		BaseSeed:   s.BaseSeed,
		SeedPolicy: pol,
	})
}
