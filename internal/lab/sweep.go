package lab

import (
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"strconv"
	"time"

	"repro/internal/bgp"
	"repro/internal/monitor"
	"repro/internal/plot"
	"repro/internal/sim"
	"repro/internal/stats"
)

// AxisKind enumerates the trial parameter a sweep varies.
type AxisKind int

// Axis kinds.
const (
	// AxisSDNCount varies the cluster size K of the trial's placement.
	AxisSDNCount AxisKind = iota
	// AxisMRAI varies the BGP MinRouteAdvertisementInterval.
	AxisMRAI
	// AxisTopoSize varies the topology's primary size parameter N.
	AxisTopoSize
	// AxisDebounce varies the controller's delayed-recomputation
	// window (negative disables the delay — the ablation case).
	AxisDebounce
	// AxisFlapPeriod varies the flap storm's cycle period.
	AxisFlapPeriod
	// AxisMode varies the flap-containment regime: ModeBGP (plain),
	// ModeDamping (RFC 2439) or ModeSDN (half the ASes clustered with
	// a 1s debounce).
	AxisMode
	// AxisPolicy varies the routing-policy template (permit-all,
	// gao-rexford, prefix-filter) — the policy-vs-policy-free
	// update-load comparison.
	AxisPolicy
	// AxisLoss varies the per-message link-loss probability of every
	// inter-AS link (Trial.LinkLoss) — the chaos figure's x-axis.
	AxisLoss
)

// Flap-stability regimes for AxisMode.
const (
	ModeBGP     = "bgp"
	ModeDamping = "damping"
	ModeSDN     = "sdn"
)

// Axis declares the swept parameter and its values. Construct with
// SDNCounts, MRAIs, TopoSizes, Debounces, FlapPeriods, Modes,
// Policies or Losses.
type Axis struct {
	// Kind selects which trial parameter the axis varies.
	Kind AxisKind
	// Ints holds the values for AxisSDNCount and AxisTopoSize.
	Ints []int
	// Durations holds the values for AxisMRAI, AxisDebounce and
	// AxisFlapPeriod.
	Durations []time.Duration
	// Modes holds the values for AxisMode.
	Modes []string
	// PolicySpecs holds the values for AxisPolicy.
	PolicySpecs []PolicySpec
	// Floats holds the values for AxisLoss.
	Floats []float64
}

// SDNCounts declares an sdn-count axis.
func SDNCounts(ks ...int) Axis { return Axis{Kind: AxisSDNCount, Ints: ks} }

// MRAIs declares an MRAI axis.
func MRAIs(ds ...time.Duration) Axis { return Axis{Kind: AxisMRAI, Durations: ds} }

// TopoSizes declares a topology-size axis.
func TopoSizes(ns ...int) Axis { return Axis{Kind: AxisTopoSize, Ints: ns} }

// Debounces declares a controller-debounce axis (negative disables).
func Debounces(ds ...time.Duration) Axis { return Axis{Kind: AxisDebounce, Durations: ds} }

// FlapPeriods declares a flap-period axis.
func FlapPeriods(ds ...time.Duration) Axis { return Axis{Kind: AxisFlapPeriod, Durations: ds} }

// Modes declares a flap-containment regime axis.
func Modes(ms ...string) Axis { return Axis{Kind: AxisMode, Modes: ms} }

// Policies declares a routing-policy axis.
func Policies(ps ...PolicySpec) Axis { return Axis{Kind: AxisPolicy, PolicySpecs: ps} }

// Losses declares a link-loss-probability axis.
func Losses(ps ...float64) Axis { return Axis{Kind: AxisLoss, Floats: ps} }

// Len returns the number of sweep cells along the axis.
func (a Axis) Len() int {
	switch a.Kind {
	case AxisSDNCount, AxisTopoSize:
		return len(a.Ints)
	case AxisMode:
		return len(a.Modes)
	case AxisPolicy:
		return len(a.PolicySpecs)
	case AxisLoss:
		return len(a.Floats)
	default:
		return len(a.Durations)
	}
}

// Name returns the axis column name used by every encoder.
func (a Axis) Name() string {
	switch a.Kind {
	case AxisSDNCount:
		return "sdn_k"
	case AxisMRAI:
		return "mrai_s"
	case AxisTopoSize:
		return "size"
	case AxisDebounce:
		return "debounce_s"
	case AxisFlapPeriod:
		return "period_s"
	case AxisMode:
		return "mode"
	case AxisPolicy:
		return "policy"
	case AxisLoss:
		return "loss"
	default:
		return fmt.Sprintf("axis(%d)", int(a.Kind))
	}
}

// Label formats cell i's axis value for humans ("8", "30s", "off",
// "damping").
func (a Axis) Label(i int) string {
	switch a.Kind {
	case AxisSDNCount, AxisTopoSize:
		return strconv.Itoa(a.Ints[i])
	case AxisMode:
		return a.Modes[i]
	case AxisPolicy:
		return a.PolicySpecs[i].String()
	case AxisLoss:
		return strconv.FormatFloat(a.Floats[i], 'g', -1, 64)
	default:
		d := a.Durations[i]
		if d < 0 {
			return "off"
		}
		return d.String()
	}
}

// Value returns cell i's numeric axis value (duration axes in
// seconds, a disabled debounce as 0) or NaN for the non-numeric mode
// and policy axes.
func (a Axis) Value(i int) float64 {
	switch a.Kind {
	case AxisSDNCount, AxisTopoSize:
		return float64(a.Ints[i])
	case AxisMode, AxisPolicy:
		return math.NaN()
	case AxisLoss:
		return a.Floats[i]
	default:
		d := a.Durations[i]
		if d < 0 {
			return 0
		}
		return d.Seconds()
	}
}

// Apply configures trial t as sweep cell i.
func (a Axis) Apply(t *Trial, i int) {
	switch a.Kind {
	case AxisSDNCount:
		t.Placement.K = a.Ints[i]
	case AxisMRAI:
		if t.Timers == (bgp.Timers{}) {
			t.Timers = bgp.DefaultTimers()
		}
		t.Timers.MRAI = a.Durations[i]
	case AxisTopoSize:
		t.Topo.N = a.Ints[i]
	case AxisDebounce:
		t.Debounce = a.Durations[i]
	case AxisFlapPeriod:
		t.FlapPeriod = a.Durations[i]
	case AxisMode:
		switch a.Modes[i] {
		case ModeBGP:
			t.Placement = Placement{Strategy: PlaceNone}
			t.Damping = nil
		case ModeDamping:
			t.Placement = Placement{Strategy: PlaceNone}
			t.Damping = &bgp.DampingConfig{HalfLife: 2 * time.Minute}
		case ModeSDN:
			t.Placement = Placement{Strategy: PlaceLast, K: t.Topo.Nodes() / 2}
			t.Debounce = time.Second
			t.Damping = nil
		}
	case AxisPolicy:
		t.Policy = a.PolicySpecs[i]
	case AxisLoss:
		t.LinkLoss = a.Floats[i]
	}
}

// validate rejects axis values that cannot run against the base trial.
func (a Axis) validate(base Trial) error {
	if a.Len() == 0 {
		return fmt.Errorf("lab: empty axis")
	}
	switch a.Kind {
	case AxisSDNCount:
		// The axis sets Placement.K per cell; a placement that
		// ignores K would run the identical trial in every cell and
		// render the sweep a silent no-op.
		if s := base.Placement.Strategy; s == PlaceNone || s == PlaceExplicit {
			return fmt.Errorf("lab: an sdn-count axis needs a K-driven placement (%s/%s/%s), not %q",
				PlaceLast, PlaceFirst, PlaceDegree, s)
		}
		max := base.Topo.Nodes()
		for _, k := range a.Ints {
			if k < 0 || k > max {
				return fmt.Errorf("lab: SDN count %d outside 0..%d", k, max)
			}
		}
	case AxisTopoSize:
		// The axis sets TopoSpec.N, documented as the AS count; for a
		// grid N is only the width, so the labels would lie about the
		// network size.
		if base.Topo.Kind == "grid" {
			return fmt.Errorf("lab: the size axis sweeps the AS count; grid has two dimensions — use a single-parameter topology")
		}
	case AxisMode:
		for _, m := range a.Modes {
			if m != ModeBGP && m != ModeDamping && m != ModeSDN {
				return fmt.Errorf("lab: unknown mode %q", m)
			}
		}
	case AxisPolicy:
		for _, p := range a.PolicySpecs {
			if _, err := ParsePolicy(p.String()); err != nil {
				return err
			}
		}
	case AxisLoss:
		for _, p := range a.Floats {
			if p < 0 || p > 1 {
				return fmt.Errorf("lab: loss probability %v outside [0, 1]", p)
			}
		}
	}
	return nil
}

// SeedPolicy names how a sweep derives each run's seed from BaseSeed.
type SeedPolicy int

const (
	// SeedRun seeds run r of every cell with BaseSeed + r, so cells
	// differing only in the swept parameter share seeds (the ablation
	// convention: the axis is the only varying input).
	SeedRun SeedPolicy = iota
	// SeedCellRun seeds run r of the cell with integer axis value v
	// with BaseSeed + 1000r + v — the Figure 2 convention, giving
	// every (fraction, run) cell an independent jitter draw.
	SeedCellRun
)

// CellCache caches completed (cell, run) results of one sweep. The
// sweep consults it before executing a cell's run and stores every
// fresh result after, which is what lets an interrupted sweep resume
// and a repeated sweep skip all execution. Implementations (the
// artifact store) key their records by the sweep's Canonical() hash,
// so a cache bound to one spec never answers for another; positions
// identify records within the spec because the engine is
// deterministic — (spec, cell, run) fixes the result bit-for-bit.
// With Parallelism > 1 the methods are called concurrently from
// worker goroutines and must be safe for concurrent use (distinct
// (cell, run) pairs only; the sweep never asks twice for one).
type CellCache interface {
	// Load returns the cached result for (cell, run) and whether one
	// exists. A hit replaces the emulation entirely, so the returned
	// record must round-trip the Result exactly.
	Load(cell, run int) (Result, bool, error)
	// Store records a freshly computed result for (cell, run).
	Store(cell, run int, r Result) error
}

// Sweep varies one Axis of a base Trial over Runs seeded repetitions
// per cell, fanned across the parallel Runner. Results are placed by
// (cell, run) index, so the output is identical at any parallelism.
type Sweep struct {
	// Name labels the sweep in encoded output (the registry name).
	Name string
	// Base is the trial template every cell starts from.
	Base Trial
	// Axis declares the swept parameter and its values.
	Axis Axis
	// Runs is the number of seeded repetitions per cell (default 1).
	Runs int
	// BaseSeed offsets the per-run seeds (see SeedPolicy).
	BaseSeed int64
	// SeedPolicy selects the seed derivation (default SeedRun).
	SeedPolicy SeedPolicy
	// Parallelism bounds concurrent runs (0 = GOMAXPROCS, 1 =
	// sequential; results are identical either way).
	Parallelism int
	// Progress, when non-nil, receives (done, total) after every
	// completed run so long sweeps can stream completion. It is
	// forwarded to the Runner verbatim and shares its contract: with
	// Parallelism > 1 it is called concurrently from worker
	// goroutines. Cache hits count as completed runs.
	Progress func(done, total int)
	// Cache, when non-nil, is consulted before every (cell, run)
	// execution and fed every fresh result — the artifact store's
	// hook. Like Parallelism and Progress it cannot change the sweep's
	// results (a hit is bit-identical to the run it replaces), so it
	// does not participate in Canonical().
	Cache CellCache
	// Tolerate selects the failure-tolerant execution mode: a failing
	// (cell, run) — error, timeout or panic — is recorded as a
	// CellFailure in SweepResult.Failures instead of aborting the
	// sweep, and the surviving runs still summarize. Like Parallelism
	// it is an execution knob (it cannot change a successful run's
	// result) and does not participate in Canonical(). Cache
	// infrastructure errors still abort either way.
	Tolerate bool
	// Retries bounds additional attempts for a timed-out run (wall or
	// virtual budget, establishment or convergence deadline) before it
	// is recorded as failed. Only meaningful with Tolerate; determinism
	// makes retries useful mainly against wall-clock budgets, so the
	// default is 0.
	Retries int
	// RetryBackoff is the real-time sleep before each retry, doubling
	// per attempt (zero sleeps nothing).
	RetryBackoff time.Duration
	// Inject, when non-nil, runs before every trial execution; a
	// non-nil error (or a panic) replaces that run. It is the chaos
	// test seam for exercising the failure-tolerant machinery with
	// deterministic per-(cell, run) faults, and — like the other
	// execution knobs — does not participate in Canonical().
	Inject func(cell, run int) error
	// Snapshots, when non-nil, caches each trial's warmed-up converged
	// state by its warm-up key (Trial.WarmupKey): every distinct
	// warm-up in the grid runs once, is snapshotted, and every (cell,
	// run) sharing its key restores and forks from the snapshot
	// instead of re-converging. Measurements always start from a
	// restored snapshot (even on the run that warmed up), so results
	// are byte-identical with and without the cache; like Cache it
	// does not participate in Canonical().
	Snapshots SnapshotCache
	// Stop, when non-nil, requests a graceful drain when closed:
	// in-flight (cell, run) executions finish and store their results
	// through Cache, no new grid positions start, and Run returns
	// ErrStopped. It is forwarded to the Runner verbatim; like the
	// other execution knobs it cannot change a completed run's result
	// and does not participate in Canonical(). This is how SIGINT on
	// the CLI and daemon drain leave the artifact store resumable.
	Stop <-chan struct{}
}

// CellFailure records one (cell, run) that a tolerant sweep gave up
// on: the terminal error, its classification, and how many attempts
// were spent.
type CellFailure struct {
	// Cell and Run locate the failed run in the sweep grid.
	Cell, Run int
	// Label is the failed cell's axis label (the encoders' row key).
	Label string
	// Err is the terminal error's text.
	Err string
	// Panicked marks a run that crashed (recovered panic) rather than
	// erroring.
	Panicked bool
	// TimedOut marks a timeout-class failure: a wall or virtual budget
	// exhausted, or an establishment/convergence deadline missed.
	TimedOut bool
	// Attempts is the number of executions spent (1 + retries).
	Attempts int
}

// class names the failure's classification for output.
func (f CellFailure) class() string {
	switch {
	case f.Panicked:
		return "panic"
	case f.TimedOut:
		return "timeout"
	default:
		return "error"
	}
}

// FailureCache is the optional CellCache extension a tolerant sweep
// feeds its failures to, so a resumable store can file what failed
// alongside what succeeded (the artifact store implements it).
type FailureCache interface {
	CellCache
	// StoreFailure records a terminal failure for (cell, run).
	StoreFailure(cell, run int, f CellFailure) error
}

// Cell is one sweep point: an axis value with its per-run results.
type Cell struct {
	// Label renders the cell's axis value for humans ("8", "30s",
	// "gao-rexford").
	Label string
	// Value is the cell's numeric axis value (NaN for the mode and
	// policy axes).
	Value float64
	// Fraction is Value over the topology size for the sdn-count axis
	// (NaN otherwise) — the paper's x-axis.
	Fraction float64
	// Results holds one record per seeded run, in run order.
	Results []Result
	// Summary is the five-number summary of the per-run convergence
	// times in seconds (the boxplot behind Figure 2).
	Summary stats.Summary
	// Epochs aggregates the per-event epochs across the cell's runs,
	// one entry per scheduled workload event. Populated only for
	// multi-event workloads (a single-event cell is its own epoch).
	Epochs []EpochStats
}

// EpochStats aggregates one scheduled workload event's epochs across a
// cell's seeded runs — the per-epoch row behind the encoders.
type EpochStats struct {
	// Kind is the epoch's triggering event kind.
	Kind EventKind
	// At is the event's scheduled offset from measurement start.
	At time.Duration
	// Summary is the five-number summary of the per-run epoch
	// convergence times in seconds.
	Summary stats.Summary
	// MeanUpdatesSent and MeanUpdatesReceived are the mean per-run
	// UPDATE counts inside the epoch window.
	MeanUpdatesSent, MeanUpdatesReceived float64
	// MeanBestPathChanges is the mean per-run best-path-change count
	// inside the epoch window.
	MeanBestPathChanges float64
	// MeanRecomputes is the mean per-run controller recomputation
	// count inside the epoch window.
	MeanRecomputes float64
	// MeanHijacked is the mean per-run hijacked-AS count at the end of
	// the epoch (zero for non-hijack epochs).
	MeanHijacked float64
}

// summarizeEpochs aggregates per-run epochs into per-event rows; nil
// unless the runs carry a multi-event schedule.
func summarizeEpochs(results []Result) []EpochStats {
	if len(results) == 0 || len(results[0].Epochs) <= 1 {
		return nil
	}
	n := len(results[0].Epochs)
	out := make([]EpochStats, n)
	for i := 0; i < n; i++ {
		durs := make([]time.Duration, len(results))
		es := EpochStats{Kind: results[0].Epochs[i].Kind, At: results[0].Epochs[i].At}
		for r, res := range results {
			ep := res.Epochs[i]
			durs[r] = ep.Convergence
			es.MeanUpdatesSent += float64(ep.UpdatesSent)
			es.MeanUpdatesReceived += float64(ep.UpdatesReceived)
			es.MeanBestPathChanges += float64(ep.BestPathChanges)
			es.MeanRecomputes += float64(ep.Recomputes)
			es.MeanHijacked += float64(ep.HijackedASes)
		}
		runs := float64(len(results))
		es.MeanUpdatesSent /= runs
		es.MeanUpdatesReceived /= runs
		es.MeanBestPathChanges /= runs
		es.MeanRecomputes /= runs
		es.MeanHijacked /= runs
		es.Summary = stats.SummarizeDurations(durs)
		out[i] = es
	}
	return out
}

// Durations returns the per-run convergence times.
func (c Cell) Durations() []time.Duration {
	out := make([]time.Duration, len(c.Results))
	for i, r := range c.Results {
		out[i] = r.Convergence
	}
	return out
}

func (c Cell) mean(f func(Result) float64) float64 {
	if len(c.Results) == 0 {
		return 0
	}
	var s float64
	for _, r := range c.Results {
		s += f(r)
	}
	return s / float64(len(c.Results))
}

// MeanUpdatesSent is the mean per-run UPDATE count.
func (c Cell) MeanUpdatesSent() float64 {
	return c.mean(func(r Result) float64 { return float64(r.UpdatesSent) })
}

// MeanUpdatesReceived is the mean per-run received-UPDATE count.
func (c Cell) MeanUpdatesReceived() float64 {
	return c.mean(func(r Result) float64 { return float64(r.UpdatesReceived) })
}

// MeanBestPathChanges is the mean per-run best-path-change count.
func (c Cell) MeanBestPathChanges() float64 {
	return c.mean(func(r Result) float64 { return float64(r.BestPathChanges) })
}

// MeanRecomputes is the mean per-run controller recomputation count.
func (c Cell) MeanRecomputes() float64 {
	return c.mean(func(r Result) float64 { return float64(r.Recomputes) })
}

// MeanHijacked is the mean per-run count of ASes routing toward the
// hijack attacker (zero for every non-hijack event).
func (c Cell) MeanHijacked() float64 {
	return c.mean(func(r Result) float64 { return float64(r.HijackedASes) })
}

// AllReachable reports whether every run ended with the origin prefix
// reachable.
func (c Cell) AllReachable() bool {
	for _, r := range c.Results {
		if !r.ReachableAfter {
			return false
		}
	}
	return true
}

// SweepResult is a completed sweep: the configuration echo plus one
// Cell per axis value, in axis order.
type SweepResult struct {
	// Name is the sweep's registry name.
	Name string
	// Event is the base trial's triggering event (sugar; see Workload).
	Event Event
	// Workload is the base trial's explicit schedule, when one was set
	// (empty for single-event sugar trials). EventLabel prefers it.
	Workload Workload
	// Topo is the base trial's topology spec.
	Topo TopoSpec
	// Policy is the base trial's routing-policy template (overridden
	// per cell when Axis sweeps the policy — see PolicyLabel).
	Policy PolicySpec
	// Axis echoes the swept axis declaration.
	Axis Axis
	// Runs is the number of seeded repetitions per cell.
	Runs int
	// BaseSeed is the seed offset the runs derived from.
	BaseSeed int64
	// Cells holds one entry per axis value, in axis order.
	Cells []Cell
	// Failures lists the (cell, run) grid points a tolerant sweep gave
	// up on, in (cell, run) order — empty for a clean sweep (and always
	// empty without Tolerate, which aborts on the first failure). A
	// failed run is absent from its cell's Results, so the summaries
	// cover only the surviving runs.
	Failures []CellFailure
}

// CellFailures returns the recorded failures of cell ci, in run order.
func (r *SweepResult) CellFailures(ci int) []CellFailure {
	var out []CellFailure
	for _, f := range r.Failures {
		if f.Cell == ci {
			out = append(out, f)
		}
	}
	return out
}

// seed derives the seed for (cell, run) under the sweep's policy.
func (s Sweep) seed(cell, run int) int64 {
	if s.SeedPolicy == SeedCellRun {
		return s.BaseSeed + int64(run)*1000 + int64(s.Axis.Value(cell))
	}
	return s.BaseSeed + int64(run)
}

// trialFor instantiates sweep cell ci, run r: the base trial with the
// axis applied, the derived run seed, and the topology pinned to the
// sweep's BaseSeed so every cell measures the same graph.
func (s Sweep) trialFor(ci, run int) Trial {
	trial := s.Base
	s.Axis.Apply(&trial, ci)
	trial.Seed = s.seed(ci, run)
	trial.TopoSeed = s.BaseSeed
	return trial
}

// runTrial executes the trial with panic recovery, so a crashing run
// can be filed as a CellFailure instead of unwinding the sweep (the
// Runner's own recovery stays as the backstop for non-trial panics).
func (s Sweep) runTrial(ci, run int, t Trial) (res Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: string(debug.Stack())}
		}
	}()
	if s.Inject != nil {
		if err := s.Inject(ci, run); err != nil {
			return Result{}, err
		}
	}
	if s.Snapshots != nil {
		res, _, err := t.RunWithSnapshots(s.Snapshots)
		return res, err
	}
	return t.Run()
}

// isTimeout classifies timeout-class failures: an exhausted wall or
// event budget, or a missed establishment/convergence deadline.
func isTimeout(err error) bool {
	return errors.Is(err, monitor.ErrTimeout) ||
		errors.Is(err, sim.ErrWallBudget) ||
		errors.Is(err, sim.ErrEventBudget)
}

// attempt executes (cell, run), retrying timed-out runs up to Retries
// times under Tolerate. It reports the result, the attempts spent, and
// the terminal error.
func (s Sweep) attempt(ci, run int) (Result, int, error) {
	trial := s.trialFor(ci, run)
	backoff := s.RetryBackoff
	attempts := 0
	for {
		attempts++
		r, err := s.runTrial(ci, run, trial)
		if err == nil {
			return r, attempts, nil
		}
		if !s.Tolerate || !isTimeout(err) || attempts > s.Retries {
			return Result{}, attempts, err
		}
		if backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
	}
}

// Run executes the sweep. The (cell, run) grid fans out across the
// configured parallelism; results are gathered in cell order, so the
// returned series is identical for any Parallelism. Without Tolerate
// the first failing run aborts the sweep; with it, failures are
// recorded in SweepResult.Failures and the surviving runs summarize.
func (s Sweep) Run() (*SweepResult, error) {
	if s.Runs <= 0 {
		s.Runs = 1
	}
	if err := s.Axis.validate(s.Base); err != nil {
		return nil, err
	}
	n := s.Axis.Len()
	results := make([][]Result, n)
	okRun := make([][]bool, n)
	for i := range results {
		results[i] = make([]Result, s.Runs)
		okRun[i] = make([]bool, s.Runs)
	}
	fails := make([]*CellFailure, n*s.Runs)
	err := Runner{Parallelism: s.Parallelism, Progress: s.Progress, Stop: s.Stop}.Do(n*s.Runs, func(i int) error {
		ci, run := i/s.Runs, i%s.Runs
		if s.Cache != nil {
			if r, ok, err := s.Cache.Load(ci, run); err != nil {
				return fmt.Errorf("lab: %s %s=%s run %d: cache: %w", s.Name, s.Axis.Name(), s.Axis.Label(ci), run, err)
			} else if ok {
				results[ci][run] = r
				okRun[ci][run] = true
				return nil
			}
		}
		r, attempts, err := s.attempt(ci, run)
		if err != nil {
			if !s.Tolerate {
				return fmt.Errorf("lab: %s %s=%s run %d: %w", s.Name, s.Axis.Name(), s.Axis.Label(ci), run, err)
			}
			var pe *PanicError
			f := CellFailure{
				Cell:     ci,
				Run:      run,
				Label:    s.Axis.Label(ci),
				Err:      err.Error(),
				Panicked: errors.As(err, &pe),
				TimedOut: isTimeout(err),
				Attempts: attempts,
			}
			fails[i] = &f
			if fc, ok := s.Cache.(FailureCache); ok {
				if err := fc.StoreFailure(ci, run, f); err != nil {
					return fmt.Errorf("lab: %s %s=%s run %d: cache: %w", s.Name, s.Axis.Name(), s.Axis.Label(ci), run, err)
				}
			}
			return nil
		}
		if s.Cache != nil {
			if err := s.Cache.Store(ci, run, r); err != nil {
				return fmt.Errorf("lab: %s %s=%s run %d: cache: %w", s.Name, s.Axis.Name(), s.Axis.Label(ci), run, err)
			}
		}
		results[ci][run] = r
		okRun[ci][run] = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &SweepResult{
		Name:     s.Name,
		Event:    s.Base.Event,
		Workload: s.Base.Workload,
		Topo:     s.Base.Topo,
		Policy:   s.Base.Policy,
		Axis:     s.Axis,
		Runs:     s.Runs,
		BaseSeed: s.BaseSeed,
		Cells:    make([]Cell, n),
	}
	for _, f := range fails {
		if f != nil {
			res.Failures = append(res.Failures, *f)
		}
	}
	for ci := 0; ci < n; ci++ {
		surviving := make([]Result, 0, s.Runs)
		for run := 0; run < s.Runs; run++ {
			if okRun[ci][run] {
				surviving = append(surviving, results[ci][run])
			}
		}
		cell := Cell{
			Label:    s.Axis.Label(ci),
			Value:    s.Axis.Value(ci),
			Fraction: math.NaN(),
			Results:  surviving,
		}
		if s.Axis.Kind == AxisSDNCount && s.Base.Topo.Nodes() > 0 {
			cell.Fraction = cell.Value / float64(s.Base.Topo.Nodes())
		}
		if len(surviving) > 0 {
			cell.Summary = stats.SummarizeDurations(cell.Durations())
			cell.Epochs = summarizeEpochs(cell.Results)
		}
		res.Cells[ci] = cell
	}
	return res, nil
}

// TopoLabel renders the sweep's topology for output. When the axis
// sweeps the topology size, the base spec's N is overridden per cell,
// so only the generator kind is echoed.
func (r *SweepResult) TopoLabel() string {
	if r.Axis.Kind == AxisTopoSize {
		return r.Topo.Kind + " (size swept)"
	}
	return r.Topo.String()
}

// EventLabel renders the sweep's trigger for output: the schedule when
// an explicit workload is set, the single event name otherwise.
func (r *SweepResult) EventLabel() string {
	if len(r.Workload) > 0 {
		return r.Workload.String()
	}
	return r.Event.String()
}

// hasHijack reports whether the sweep's trigger hijacks a prefix (the
// encoders gate the hijacked column on it).
func (r *SweepResult) hasHijack() bool {
	if len(r.Workload) > 0 {
		return r.Workload.hasKind(KindHijack)
	}
	return r.Event == Hijack
}

// PolicyLabel renders the sweep's routing policy for output. When the
// axis sweeps the policy itself, the base template is overridden per
// cell, so "(swept)" is echoed instead.
func (r *SweepResult) PolicyLabel() string {
	if r.Axis.Kind == AxisPolicy {
		return "(swept)"
	}
	return r.Policy.String()
}

// Fit fits median convergence time against the axis (the SDN fraction
// for the sdn-count axis, the numeric value otherwise) and returns
// intercept, slope and r² — the check behind the paper's "convergence
// time can be linearly reduced" claim. ok is false for the
// non-numeric mode and policy axes.
func (r *SweepResult) Fit() (a, b, r2 float64, ok bool) {
	if r.Axis.Kind == AxisMode || r.Axis.Kind == AxisPolicy || len(r.Cells) < 2 {
		return 0, 0, 0, false
	}
	xs := make([]float64, len(r.Cells))
	ys := make([]float64, len(r.Cells))
	for i, c := range r.Cells {
		x := c.Value
		if r.Axis.Kind == AxisSDNCount {
			x = c.Fraction
		}
		xs[i] = x
		ys[i] = c.Summary.Median
	}
	a, b, r2 = stats.LinearFit(xs, ys)
	return a, b, r2, true
}

// Boxes adapts the sweep to the SVG boxplot renderer, one box per
// cell (percent labels on the sdn-count axis, Figure 2 style).
func (r *SweepResult) Boxes() []plot.Box {
	boxes := make([]plot.Box, len(r.Cells))
	for i, c := range r.Cells {
		label := c.Label
		if r.Axis.Kind == AxisSDNCount && !math.IsNaN(c.Fraction) {
			label = fmt.Sprintf("%.0f%%", 100*c.Fraction)
		}
		boxes[i] = plot.Box{Label: label, Summary: c.Summary}
	}
	return boxes
}

// EpochBoxes adapts one scheduled event's epoch to the SVG boxplot
// renderer: one box per cell of the per-run epoch convergence times.
// It returns nil when the sweep carries no per-epoch aggregates (a
// single-event trigger) or the index is out of range.
func (r *SweepResult) EpochBoxes(epoch int) []plot.Box {
	if len(r.Cells) == 0 || epoch < 0 || epoch >= len(r.Cells[0].Epochs) {
		return nil
	}
	boxes := make([]plot.Box, len(r.Cells))
	for i, c := range r.Cells {
		label := c.Label
		if r.Axis.Kind == AxisSDNCount && !math.IsNaN(c.Fraction) {
			label = fmt.Sprintf("%.0f%%", 100*c.Fraction)
		}
		boxes[i] = plot.Box{Label: label, Summary: c.Epochs[epoch].Summary}
	}
	return boxes
}
