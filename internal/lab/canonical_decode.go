package lab

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"repro/internal/bgp"
	"repro/internal/idr"
)

// The canonical spec deserialization: the exact inverse of
// Sweep.Canonical(), turning the stable wire bytes back into a
// runnable Sweep. This is what makes the canonical encoding a real
// wire format rather than just a hash preimage — a client can ship a
// spec to the lab daemon and the daemon reconstructs the identical
// sweep, with the round-trip enforced below: ParseCanonical rejects
// any bytes that do not re-encode to themselves, so every accepted
// spec is already in canonical form and its hash is the one true
// content address (no two spellings of one spec, no hash aliasing).

// seedPolicyValues is the inverse of seedPolicyNames.
var seedPolicyValues = map[string]SeedPolicy{
	"run":      SeedRun,
	"cell-run": SeedCellRun,
}

// trialFromCanonical reconstructs the base trial from its canonical
// mirror. Every canonical field is fully resolved, so the
// reconstruction round-trips: re-resolving resolved values is the
// identity.
func trialFromCanonical(c canonicalTrial) (Trial, error) {
	var t Trial
	var err error
	if t.Topo, err = ParseTopoString(c.Topo); err != nil {
		return Trial{}, err
	}
	if t.Placement, err = ParsePlacementString(c.Placement); err != nil {
		return Trial{}, err
	}
	if t.Policy, err = ParsePolicy(c.Policy); err != nil {
		return Trial{}, err
	}
	switch {
	case len(c.Workload) > 0:
		// An explicit workload takes precedence over Event, and the
		// canonical encoding blanks the ignored Event accordingly.
		for _, ev := range c.Workload {
			kind, err := ParseEventKind(ev.Kind)
			if err != nil {
				return Trial{}, err
			}
			t.Workload = append(t.Workload, WorkloadEvent{
				At:   time.Duration(ev.AtNS),
				Kind: kind,
				AS:   idr.ASN(ev.AS),
				A:    idr.ASN(ev.A),
				B:    idr.ASN(ev.B),
			})
		}
	case c.Event != "":
		if t.Event, err = ParseEvent(c.Event); err != nil {
			return Trial{}, err
		}
	default:
		return Trial{}, fmt.Errorf("lab: canonical trial has neither event nor workload")
	}
	t.Drain = time.Duration(c.DrainNS)
	t.Timers = bgp.Timers{
		HoldTime:             time.Duration(c.HoldTimeNS),
		KeepaliveFraction:    c.KeepaliveFraction,
		ConnectRetry:         time.Duration(c.ConnectRetryNS),
		MRAI:                 time.Duration(c.MRAINS),
		WithdrawalsImmediate: c.WithdrawalsImmediate,
		MRAIJitter:           c.MRAIJitter,
	}
	t.Debounce = time.Duration(c.DebounceNS)
	t.Settle = time.Duration(c.SettleNS)
	t.ProcessingDelay = time.Duration(c.ProcessingDelayNS)
	t.LinkDelay = time.Duration(c.LinkDelayNS)
	t.LinkJitter = time.Duration(c.LinkJitterNS)
	t.LinkLoss = c.LinkLoss
	if c.Damping != nil {
		t.Damping = &bgp.DampingConfig{
			WithdrawPenalty:   c.Damping.WithdrawPenalty,
			UpdatePenalty:     c.Damping.UpdatePenalty,
			SuppressThreshold: c.Damping.SuppressThreshold,
			ReuseThreshold:    c.Damping.ReuseThreshold,
			HalfLife:          time.Duration(c.Damping.HalfLifeNS),
			MaxSuppress:       time.Duration(c.Damping.MaxSuppressNS),
		}
	}
	t.FlapCycles = c.FlapCycles
	t.FlapPeriod = time.Duration(c.FlapPeriodNS)
	t.OriginOnly = c.OriginOnly
	t.Timeout = time.Duration(c.TimeoutNS)
	t.EstablishTimeout = time.Duration(c.EstablishTimeoutNS)
	return t, nil
}

// axisFromCanonical reconstructs the swept axis from its canonical
// name and values. Duration axes carry Duration.String() renderings
// (Canonical re-renders them past the "off" label), so every value
// kind parses back exactly.
func axisFromCanonical(c canonicalAxis) (Axis, error) {
	var a Axis
	switch c.Name {
	case "sdn_k", "size":
		if c.Name == "sdn_k" {
			a.Kind = AxisSDNCount
		} else {
			a.Kind = AxisTopoSize
		}
		for _, v := range c.Values {
			n, err := strconv.Atoi(v)
			if err != nil {
				return Axis{}, fmt.Errorf("lab: axis %s: bad value %q", c.Name, v)
			}
			a.Ints = append(a.Ints, n)
		}
	case "mrai_s", "debounce_s", "period_s":
		switch c.Name {
		case "mrai_s":
			a.Kind = AxisMRAI
		case "debounce_s":
			a.Kind = AxisDebounce
		default:
			a.Kind = AxisFlapPeriod
		}
		for _, v := range c.Values {
			d, err := time.ParseDuration(v)
			if err != nil {
				return Axis{}, fmt.Errorf("lab: axis %s: bad duration %q", c.Name, v)
			}
			a.Durations = append(a.Durations, d)
		}
	case "mode":
		a.Kind = AxisMode
		a.Modes = append(a.Modes, c.Values...)
	case "policy":
		a.Kind = AxisPolicy
		for _, v := range c.Values {
			p, err := ParsePolicy(v)
			if err != nil {
				return Axis{}, err
			}
			a.PolicySpecs = append(a.PolicySpecs, p)
		}
	case "loss":
		a.Kind = AxisLoss
		for _, v := range c.Values {
			p, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return Axis{}, fmt.Errorf("lab: axis loss: bad value %q", v)
			}
			a.Floats = append(a.Floats, p)
		}
	default:
		return Axis{}, fmt.Errorf("lab: unknown axis %q", c.Name)
	}
	return a, nil
}

// ParseCanonical parses a canonical spec serialization (the bytes
// Sweep.Canonical produces) back into a runnable Sweep. Only the
// canonical fields are populated — Name and the execution knobs
// (Parallelism, Progress, Cache, ...) are the caller's to set; none
// of them participate in the content address.
//
// The input must already be in canonical form: ParseCanonical
// re-encodes the parsed sweep and rejects the spec unless the bytes
// match exactly. This makes the function safe to use as a network
// admission check — an accepted spec's SHA-256 is its one true
// artifact-store address, so two clients submitting equal specs
// always coalesce onto the same records.
func ParseCanonical(data []byte) (Sweep, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c canonicalSweep
	if err := dec.Decode(&c); err != nil {
		return Sweep{}, fmt.Errorf("lab: bad canonical spec: %w", err)
	}
	if c.Version != canonicalVersion {
		return Sweep{}, fmt.Errorf("lab: canonical spec version %d, want %d", c.Version, canonicalVersion)
	}
	pol, ok := seedPolicyValues[c.SeedPolicy]
	if !ok {
		return Sweep{}, fmt.Errorf("lab: unknown seed policy %q", c.SeedPolicy)
	}
	if c.Runs < 1 {
		return Sweep{}, fmt.Errorf("lab: canonical spec runs %d, want >= 1", c.Runs)
	}
	base, err := trialFromCanonical(c.Base)
	if err != nil {
		return Sweep{}, err
	}
	axis, err := axisFromCanonical(c.Axis)
	if err != nil {
		return Sweep{}, err
	}
	s := Sweep{
		Base:       base,
		Axis:       axis,
		Runs:       c.Runs,
		BaseSeed:   c.BaseSeed,
		SeedPolicy: pol,
	}
	// Round-trip gate: the spec must be its own canonical form, or
	// its hash would alias another spelling of the same sweep.
	out, err := s.Canonical()
	if err != nil {
		return Sweep{}, err
	}
	if !bytes.Equal(out, data) {
		return Sweep{}, fmt.Errorf("lab: spec is not in canonical form (re-encodes differently)")
	}
	return s, nil
}
