package lab

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/bgp"
)

// baseSweep is the shared small-but-real sweep the engine tests run.
func baseSweep() Sweep {
	timers := bgp.DefaultTimers()
	timers.MRAI = 10 * time.Second
	return Sweep{
		Name: "fig2",
		Base: Trial{
			Topo:            TopoSpec{Kind: "clique", N: 6},
			Event:           Withdrawal,
			Timers:          timers,
			Debounce:        100 * time.Millisecond,
			ProcessingDelay: 25 * time.Millisecond,
		},
		Axis:       SDNCounts(0, 3, 6),
		Runs:       3,
		BaseSeed:   21,
		SeedPolicy: SeedCellRun,
	}
}

// TestSweepDeterministicAcrossParallelism is the regression guard for
// the parallel sweep engine: the same Sweep must produce identical
// cells — and byte-identical encoded output in every format — whether
// the runs execute sequentially or across 8 workers.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	seq := baseSweep()
	seq.Parallelism = 1
	seqRes, err := seq.Run()
	if err != nil {
		t.Fatal(err)
	}
	par := baseSweep()
	par.Parallelism = 8
	parRes, err := par.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqRes, parRes) {
		t.Fatalf("results differ:\nsequential: %+v\nparallel:   %+v", seqRes, parRes)
	}
	for _, f := range []Format{FormatTable, FormatCSV, FormatJSON} {
		var a, b strings.Builder
		if err := Write(&a, f, seqRes); err != nil {
			t.Fatal(err)
		}
		if err := Write(&b, f, parRes); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("%s output differs:\n--- sequential ---\n%s--- parallel ---\n%s", f, a.String(), b.String())
		}
	}
	// The sweep's own shape: medians fall as the SDN fraction grows.
	med := func(i int) float64 { return seqRes.Cells[i].Summary.Median }
	if !(med(0) > med(1) && med(1) > med(2)) {
		t.Fatalf("medians not decreasing: %.3f %.3f %.3f", med(0), med(1), med(2))
	}
}

// TestSweepErrorDeterministic pins that a failing cell reports the
// same error at any parallelism.
func TestSweepErrorDeterministic(t *testing.T) {
	mk := func(p int) error {
		sw := baseSweep()
		sw.Axis = SDNCounts(0, 99)
		sw.Parallelism = p
		_, err := sw.Run()
		return err
	}
	errSeq, errPar := mk(1), mk(8)
	if errSeq == nil || errPar == nil {
		t.Fatal("out-of-range SDN count should error at any parallelism")
	}
	if errSeq.Error() != errPar.Error() {
		t.Fatalf("error text differs: %q vs %q", errSeq, errPar)
	}
}

// TestSweepNonCliqueTopology is the acceptance check that the unified
// engine runs end-to-end on a non-clique generator with structured
// output: a grid sweep whose JSON round-trips.
func TestSweepNonCliqueTopology(t *testing.T) {
	timers := bgp.DefaultTimers()
	timers.MRAI = 5 * time.Second
	sw := Sweep{
		Name: "fig2",
		Base: Trial{
			Topo:     TopoSpec{Kind: "grid", N: 2, M: 3},
			Event:    Withdrawal,
			Timers:   timers,
			Debounce: 100 * time.Millisecond,
		},
		Axis:       SDNCounts(0, 3),
		Runs:       1,
		BaseSeed:   1,
		SeedPolicy: SeedCellRun,
	}
	res, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Results[0].Convergence <= 0 {
			t.Fatalf("cell %s: no convergence measured", c.Label)
		}
		if c.Results[0].UpdatesSent == 0 {
			t.Fatalf("cell %s: no update load measured", c.Label)
		}
	}
	// Centralizing half the grid must not slow the withdrawal down.
	if res.Cells[1].Summary.Median > res.Cells[0].Summary.Median {
		t.Fatalf("SDN slower than pure BGP on the grid: %.3f vs %.3f",
			res.Cells[1].Summary.Median, res.Cells[0].Summary.Median)
	}
	var sb strings.Builder
	if err := Write(&sb, FormatJSON, res); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Topology string `json:"topology"`
		Cells    []struct {
			Label string  `json:"label"`
			MedS  float64 `json:"med_s"`
		} `json:"cells"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &parsed); err != nil {
		t.Fatalf("json output invalid: %v", err)
	}
	if parsed.Topology != "grid 2 3" || len(parsed.Cells) != 2 {
		t.Fatalf("json echo wrong: %+v", parsed)
	}
}

// TestTrialEventsRunOnAnyTopology smoke-runs the other events on
// non-clique generators through the uniform Trial API.
func TestTrialEventsRunOnAnyTopology(t *testing.T) {
	timers := bgp.DefaultTimers()
	timers.MRAI = 2 * time.Second
	for _, tc := range []struct {
		topo  TopoSpec
		event Event
	}{
		{TopoSpec{Kind: "ring", N: 4}, Announcement},
		{TopoSpec{Kind: "line", N: 4}, Failover},
	} {
		trial := Trial{
			Topo:      tc.topo,
			Placement: Placement{Strategy: PlaceLast, K: 2},
			Event:     tc.event,
			Timers:    timers,
			Seed:      3,
		}
		res, err := trial.Run()
		if err != nil {
			t.Fatalf("%s on %s: %v", tc.event, tc.topo, err)
		}
		if res.Convergence <= 0 {
			t.Fatalf("%s on %s: no convergence measured", tc.event, tc.topo)
		}
		if !res.ReachableAfter {
			t.Fatalf("%s on %s: origin prefix unreachable after the event", tc.event, tc.topo)
		}
	}
}

func TestSeedPolicies(t *testing.T) {
	sw := Sweep{
		Base:       Trial{Topo: TopoSpec{Kind: "ba", N: 8, M: 2}, Placement: Placement{Strategy: PlaceLast}},
		Axis:       SDNCounts(0, 4),
		BaseSeed:   10,
		SeedPolicy: SeedCellRun,
	}
	if got := sw.seed(1, 2); got != 10+2000+4 {
		t.Fatalf("SeedCellRun seed = %d", got)
	}
	trial := sw.trialFor(1, 2)
	if trial.Seed != 10+2000+4 || trial.Placement.K != 4 {
		t.Fatalf("trialFor = seed %d K %d", trial.Seed, trial.Placement.K)
	}
	// Random topologies must stay fixed across the whole sweep: every
	// cell and run builds from the sweep's BaseSeed, never the run
	// seed, so the swept axis is the only varying input.
	for ci := 0; ci < 2; ci++ {
		for run := 0; run < 3; run++ {
			if got := sw.trialFor(ci, run).TopoSeed; got != sw.BaseSeed {
				t.Fatalf("cell %d run %d: TopoSeed = %d, want BaseSeed %d", ci, run, got, sw.BaseSeed)
			}
		}
	}
	sw.SeedPolicy = SeedRun
	if got := sw.seed(1, 2); got != 12 {
		t.Fatalf("SeedRun seed = %d", got)
	}
}

// TestSDNAxisNeedsKDrivenPlacement pins that an sdn-count axis over a
// placement that ignores K is rejected instead of silently running
// the identical trial in every cell.
func TestSDNAxisNeedsKDrivenPlacement(t *testing.T) {
	for _, p := range []Placement{
		{Strategy: PlaceNone},
		{Strategy: PlaceExplicit, ASNs: nil},
	} {
		sw := baseSweep()
		sw.Base.Placement = p
		if _, err := sw.Run(); err == nil {
			t.Fatalf("placement %q with sdn-count axis should error", p.Strategy)
		}
	}
}

func TestEventParse(t *testing.T) {
	for _, ev := range []Event{Withdrawal, Announcement, Failover, Flap} {
		got, err := ParseEvent(ev.String())
		if err != nil || got != ev {
			t.Fatalf("ParseEvent(%q) = %v, %v", ev.String(), got, err)
		}
	}
	if _, err := ParseEvent("earthquake"); err == nil {
		t.Fatal("unknown event should error")
	}
	if Event(9).String() == "" {
		t.Fatal("unknown Event.String empty")
	}
}
