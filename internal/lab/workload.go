package lab

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiment"
	"repro/internal/idr"
)

// EventKind enumerates the typed events a workload schedule can carry.
// The first five kinds are the classic single-event triggers behind
// Trial.Event; LinkDown, LinkUp and Migrate exist only as workload
// entries because they need explicit targets.
type EventKind int

// Workload event kinds.
const (
	// KindWithdrawal withdraws the target AS's origin prefix.
	KindWithdrawal EventKind = iota
	// KindAnnouncement (re-)announces the target AS's origin prefix.
	KindAnnouncement
	// KindFailover fails the named link — or, with no link named, the
	// trial's dual-homed stub origin loses its primary attachment
	// (the classic §4 fail-over setup).
	KindFailover
	// KindFlap is the flap-storm trial sugar. It never appears inside
	// an executable schedule: Trial compiles it to FlapWorkload's
	// withdraw/announce pairs, and Workload.Validate rejects it.
	KindFlap
	// KindHijack makes the highest-numbered legacy AS announce the
	// target AS's prefix (a bogus origination).
	KindHijack
	// KindLinkDown takes the named inter-AS link down.
	KindLinkDown
	// KindLinkUp restores the named inter-AS link.
	KindLinkUp
	// KindMigrate toggles the target AS between legacy BGP and the SDN
	// cluster mid-run (experiment.Migrate).
	KindMigrate
	// KindCtrlDown crashes the SDN controller: every cluster member
	// falls back to a plain legacy BGP router mid-run
	// (experiment.ControllerDown). A no-op in pure-BGP trials, so
	// cluster-size sweeps keep their K=0 baseline.
	KindCtrlDown
	// KindCtrlUp recovers the controller: the members that fell back at
	// crash time re-join the cluster (experiment.ControllerUp).
	KindCtrlUp
	// KindSessionReset tears down the BGP session on the named link and
	// lets it re-establish, exercising the reset/reconnect paths while
	// the link itself stays up (experiment.SessionReset).
	KindSessionReset
	// KindPartition fails every link across an AS cut seeded from the
	// trial seed, splitting the network (experiment.Partition).
	KindPartition
	// KindHeal restores the links the partition failed
	// (experiment.Heal).
	KindHeal
)

// eventTable is the single name table behind EventKind.String,
// ParseEventKind, Event.String, ParseEvent and the schedule directive
// verbs ("at <t> withdraw …") shared by the scenario DSL and the
// convergence CLI's -workload flag.
var eventTable = [...]struct{ name, verb string }{
	KindWithdrawal:   {"withdrawal", "withdraw"},
	KindAnnouncement: {"announcement", "announce"},
	KindFailover:     {"failover", "failover"},
	KindFlap:         {"flap", "flap"},
	KindHijack:       {"hijack", "hijack"},
	KindLinkDown:     {"linkdown", "linkdown"},
	KindLinkUp:       {"linkup", "linkup"},
	KindMigrate:      {"migrate", "migrate"},
	KindCtrlDown:     {"ctrl-down", "ctrl-down"},
	KindCtrlUp:       {"ctrl-up", "ctrl-up"},
	KindSessionReset: {"session-reset", "session-reset"},
	KindPartition:    {"partition", "partition"},
	KindHeal:         {"heal", "heal"},
}

// EventKinds returns every defined kind, in declaration order (the
// domain of the name table; parse∘string is the identity over it).
func EventKinds() []EventKind {
	out := make([]EventKind, len(eventTable))
	for i := range out {
		out[i] = EventKind(i)
	}
	return out
}

// String names the kind ("withdrawal", "linkdown", …).
func (k EventKind) String() string {
	if k < 0 || int(k) >= len(eventTable) {
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
	return eventTable[k].name
}

// Verb returns the kind's imperative schedule-directive form
// ("withdraw", "announce", …) accepted after "at <t>".
func (k EventKind) Verb() string {
	if k < 0 || int(k) >= len(eventTable) {
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
	return eventTable[k].verb
}

// ParseEventKind parses a kind by its name or its directive verb.
func ParseEventKind(s string) (EventKind, error) {
	for i, e := range eventTable {
		if e.name == s || e.verb == s {
			return EventKind(i), nil
		}
	}
	return 0, fmt.Errorf("lab: unknown event %q", s)
}

// WorkloadEvent is one scheduled, typed, timestamped trigger of a
// workload: what happens, to which AS or link, and when (as an offset
// from measurement start).
type WorkloadEvent struct {
	// At is the event's offset from measurement start (the instant the
	// first epoch begins). Events run in At order.
	At time.Duration
	// Kind selects the trigger.
	Kind EventKind
	// AS is the target AS for withdraw/announce/hijack/migrate. Zero
	// means the trial origin (Trial.Run resolves it; RunWorkload
	// resolves it against its origin argument).
	AS idr.ASN
	// A and B name the link for linkdown/linkup, and the failed
	// attachment for failover. Both zero on a failover selects the
	// trial's dual-homed stub origin and its primary attachment.
	A, B idr.ASN
}

// String renders the event in "verb[(target)]@offset" form.
func (ev WorkloadEvent) String() string {
	var target string
	switch ev.Kind {
	case KindLinkDown, KindLinkUp, KindSessionReset:
		target = fmt.Sprintf("(%d-%d)", uint32(ev.A), uint32(ev.B))
	case KindFailover:
		if ev.A != 0 || ev.B != 0 {
			target = fmt.Sprintf("(%d-%d)", uint32(ev.A), uint32(ev.B))
		}
	case KindCtrlDown, KindCtrlUp, KindPartition, KindHeal:
		// Targetless faults: the whole cluster or the seeded cut.
	default:
		if ev.AS != 0 {
			target = fmt.Sprintf("(%d)", uint32(ev.AS))
		}
	}
	return fmt.Sprintf("%s%s@%s", ev.Kind.Verb(), target, ev.At)
}

// Workload is an ordered schedule of typed, timestamped events — the
// composable generalization of the single Trial.Event trigger. A trial
// with a non-empty Workload measures one epoch per event: the window
// from the event's trigger to the next event (full quiescence for the
// last), each reported in Result.Epochs.
type Workload []WorkloadEvent

// String renders the schedule compactly ("withdraw@0s; announce@10m0s").
func (w Workload) String() string {
	parts := make([]string, len(w))
	for i, ev := range w {
		parts[i] = ev.String()
	}
	return strings.Join(parts, "; ")
}

// Validate rejects schedules the engine cannot run: empty schedules,
// negative offsets, unknown kinds, the KindFlap sugar (spell out the
// withdraw/announce cycles or use FlapWorkload), and link events
// without both endpoints.
func (w Workload) Validate() error {
	if len(w) == 0 {
		return fmt.Errorf("lab: empty workload")
	}
	for i, ev := range w {
		if ev.At < 0 {
			return fmt.Errorf("lab: workload event %d (%s): negative offset", i, ev)
		}
		if ev.Kind < 0 || int(ev.Kind) >= len(eventTable) {
			return fmt.Errorf("lab: workload event %d: unknown kind %d", i, int(ev.Kind))
		}
		switch ev.Kind {
		case KindFlap:
			return fmt.Errorf("lab: workload event %d: flap is trial sugar; use FlapWorkload or spell out the cycles", i)
		case KindLinkDown, KindLinkUp, KindSessionReset:
			if ev.A == 0 || ev.B == 0 {
				return fmt.Errorf("lab: workload event %d (%s): %s needs both link endpoints", i, ev, ev.Kind.Verb())
			}
		case KindFailover:
			// Either both endpoints (an explicit link) or neither (the
			// trial's dual-homed origin) — one alone names no link.
			if (ev.A == 0) != (ev.B == 0) {
				return fmt.Errorf("lab: workload event %d (%s): failover needs both link endpoints or none", i, ev)
			}
		}
	}
	return nil
}

// sorted returns the schedule ordered by At, stably, leaving w intact.
func (w Workload) sorted() Workload {
	out := append(Workload(nil), w...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// resolve fills the trial-context defaults: AS 0 becomes origin, and a
// failover without an explicit link becomes the dual-homed origin
// losing its primary attachment.
func (w Workload) resolve(origin, primary idr.ASN) Workload {
	out := append(Workload(nil), w...)
	for i := range out {
		ev := &out[i]
		if ev.AS == 0 {
			ev.AS = origin
		}
		if ev.Kind == KindFailover && ev.A == 0 && ev.B == 0 {
			ev.A, ev.B = origin, primary
		}
	}
	return out
}

// needsDualHomedOrigin reports whether the schedule contains a
// failover of the trial origin (no explicit link), which requires the
// dual-homed stub origin setup.
func (w Workload) needsDualHomedOrigin() bool {
	for _, ev := range w {
		if ev.Kind == KindFailover && ev.A == 0 && ev.B == 0 {
			return true
		}
	}
	return false
}

// hasKind reports whether the schedule contains an event of kind k.
func (w Workload) hasKind(k EventKind) bool {
	for _, ev := range w {
		if ev.Kind == k {
			return true
		}
	}
	return false
}

// FlapWorkload is the schedule the Flap trial sugar compiles to:
// cycles withdraw/re-announce pairs of the origin prefix, one pair per
// period (withdraw at the period start, re-announce half a period
// later). Pair it with Trial.Drain (the sugar uses 10m) so damping
// state decays before the final measurements.
func FlapWorkload(cycles int, period time.Duration) Workload {
	w := make(Workload, 0, 2*cycles)
	for i := 0; i < cycles; i++ {
		at := time.Duration(i) * period
		w = append(w,
			WorkloadEvent{At: at, Kind: KindWithdrawal},
			WorkloadEvent{At: at + period/2, Kind: KindAnnouncement},
		)
	}
	return w
}

// PoissonWorkload draws a measured-churn schedule: n alternating
// withdraw/re-announce events of the origin prefix whose gaps are
// exponentially distributed with the given mean, deterministically
// from seed. n is rounded up to even so the schedule ends announced.
func PoissonWorkload(seed int64, n int, mean time.Duration) Workload {
	if n%2 == 1 {
		n++
	}
	rng := rand.New(rand.NewSource(seed))
	w := make(Workload, 0, n)
	var at time.Duration
	for i := 0; i < n; i++ {
		at += time.Duration(rng.ExpFloat64() * float64(mean)).Round(time.Millisecond)
		kind := KindWithdrawal
		if i%2 == 1 {
			kind = KindAnnouncement
		}
		w = append(w, WorkloadEvent{At: at, Kind: kind})
	}
	return w
}

// ParseWorkloadEvent parses one schedule directive given as
// whitespace-split fields, with or without the leading "at":
//
//	at <offset> withdraw|announce|hijack|migrate [as]
//	at <offset> linkdown|linkup|session-reset <a> <b>
//	at <offset> failover [<a> <b>]
//	at <offset> ctrl-down|ctrl-up|partition|heal
//
// The same parser backs the scenario DSL's "at" directive and the
// convergence CLI's -workload flag.
func ParseWorkloadEvent(fields []string) (WorkloadEvent, error) {
	if len(fields) > 0 && strings.EqualFold(fields[0], "at") {
		fields = fields[1:]
	}
	if len(fields) < 2 {
		return WorkloadEvent{}, fmt.Errorf("lab: want: at <offset> <event> [target…]")
	}
	at, err := time.ParseDuration(fields[0])
	if err != nil {
		return WorkloadEvent{}, fmt.Errorf("lab: bad workload offset %q", fields[0])
	}
	kind, err := ParseEventKind(fields[1])
	if err != nil {
		return WorkloadEvent{}, err
	}
	ev := WorkloadEvent{At: at, Kind: kind}
	args := fields[2:]
	asn := func(s string) (idr.ASN, error) {
		v, err := strconv.ParseUint(s, 10, 32)
		if err != nil {
			return 0, fmt.Errorf("lab: bad AS number %q", s)
		}
		return idr.ASN(v), nil
	}
	switch kind {
	case KindCtrlDown, KindCtrlUp, KindPartition, KindHeal:
		if len(args) != 0 {
			return WorkloadEvent{}, fmt.Errorf("lab: %s takes no target", kind.Verb())
		}
	case KindLinkDown, KindLinkUp, KindSessionReset:
		if len(args) != 2 {
			return WorkloadEvent{}, fmt.Errorf("lab: %s needs two link-endpoint ASes", kind.Verb())
		}
		if ev.A, err = asn(args[0]); err != nil {
			return WorkloadEvent{}, err
		}
		if ev.B, err = asn(args[1]); err != nil {
			return WorkloadEvent{}, err
		}
	case KindFailover:
		switch len(args) {
		case 0:
		case 2:
			if ev.A, err = asn(args[0]); err != nil {
				return WorkloadEvent{}, err
			}
			if ev.B, err = asn(args[1]); err != nil {
				return WorkloadEvent{}, err
			}
		default:
			return WorkloadEvent{}, fmt.Errorf("lab: failover takes no target or two link-endpoint ASes")
		}
	default:
		switch len(args) {
		case 0:
		case 1:
			if ev.AS, err = asn(args[0]); err != nil {
				return WorkloadEvent{}, err
			}
		default:
			return WorkloadEvent{}, fmt.Errorf("lab: %s takes at most one target AS", kind.Verb())
		}
	}
	return ev, nil
}

// ParseWorkload parses a whole schedule given as one string of
// semicolon- or newline-separated directives, e.g.
// "at 0s withdraw; at 10m announce" (the -workload flag syntax).
func ParseWorkload(s string) (Workload, error) {
	var w Workload
	for _, clause := range strings.FieldsFunc(s, func(r rune) bool { return r == ';' || r == '\n' }) {
		fields := strings.Fields(clause)
		if len(fields) == 0 {
			continue
		}
		ev, err := ParseWorkloadEvent(fields)
		if err != nil {
			return nil, err
		}
		w = append(w, ev)
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// Epoch is the per-event slice of a trial's measurement: what one
// scheduled trigger caused, measured from its trigger instant to the
// next event's trigger (or, for the final epoch, to full quiescence).
// The monitor instrumentation is windowed per epoch, so a schedule of
// n events yields n rows of the same counters Result reports overall.
type Epoch struct {
	// Kind is the epoch's triggering event kind.
	Kind EventKind
	// At is the event's scheduled offset from measurement start.
	At time.Duration
	// Convergence is the time from the trigger to the last routing
	// activity inside the epoch window. For the final epoch that is
	// the full convergence time; an earlier epoch cut short by the
	// next event reports the last activity before the cut.
	Convergence time.Duration
	// UpdatesSent and UpdatesReceived count legacy BGP UPDATE load
	// network-wide inside the epoch window.
	UpdatesSent, UpdatesReceived uint64
	// BestPathChanges counts best-route changes for the measured
	// prefix across all routers inside the epoch window.
	BestPathChanges int
	// Recomputes counts controller recomputation batches inside the
	// epoch window.
	Recomputes uint64
	// HijackedASes counts the ASes routing toward the attacker at the
	// end of a hijack epoch (zero for every other kind).
	HijackedASes int
}

// workloadRun parameterizes one schedule execution.
type workloadRun struct {
	origin  idr.ASN
	prefix  netip.Prefix
	timeout time.Duration
	drain   time.Duration
}

// executeWorkload runs a resolved, sorted schedule against a running,
// warmed-up experiment. It returns the per-event epochs and the
// end-of-run hijacked-AS count (-1 when the schedule hijacks nothing).
func executeWorkload(e *experiment.Experiment, w Workload, cfg workloadRun) ([]Epoch, int, error) {
	base := e.K.Now()
	epochs := make([]Epoch, len(w))
	triggers := make([]time.Time, len(w))
	var lastVictim, lastAttacker idr.ASN
	haveHijack := false
	for i, ev := range w {
		if d := base.Add(ev.At).Sub(e.K.Now()); d > 0 {
			if err := e.RunFor(d); err != nil {
				return nil, -1, err
			}
		}
		sentB, recvB := e.UpdateTotals()
		recompB := recomputes(e)
		e.Detector.Reset()
		t0 := e.K.Now()
		triggers[i] = t0
		attacker, err := applyWorkloadEvent(e, ev)
		if err != nil {
			return nil, -1, fmt.Errorf("lab: workload event %d (%s): %w", i, ev, err)
		}
		var convEnd time.Time
		if i == len(w)-1 {
			instant, err := e.Detector.WaitConverged(e.K, cfg.timeout)
			if err != nil {
				return nil, -1, err
			}
			convEnd = instant
			if cfg.drain > 0 {
				if err := e.RunFor(cfg.drain); err != nil {
					return nil, -1, err
				}
			}
		} else {
			if d := base.Add(w[i+1].At).Sub(e.K.Now()); d > 0 {
				if err := e.RunFor(d); err != nil {
					return nil, -1, err
				}
			}
			convEnd = e.Detector.LastActivity()
		}
		conv := convEnd.Sub(t0)
		if conv < 0 {
			conv = 0
		}
		sentA, recvA := e.UpdateTotals()
		epochs[i] = Epoch{
			Kind:            ev.Kind,
			At:              ev.At,
			Convergence:     conv,
			UpdatesSent:     sentA - sentB,
			UpdatesReceived: recvA - recvB,
			Recomputes:      recomputes(e) - recompB,
		}
		if ev.Kind == KindHijack {
			epochs[i].HijackedASes = countHijacked(e, ev.AS, attacker)
			lastVictim, lastAttacker = ev.AS, attacker
			haveHijack = true
		}
	}
	for i := range w {
		var end time.Time
		if i+1 < len(w) {
			end = triggers[i+1]
		}
		for _, n := range e.Log.PathExplorationCountBetween(cfg.prefix, triggers[i], end) {
			epochs[i].BestPathChanges += n
		}
	}
	hijacked := -1
	if haveHijack {
		hijacked = countHijacked(e, lastVictim, lastAttacker)
	}
	return epochs, hijacked, nil
}

// applyWorkloadEvent fires one resolved event. For a hijack it also
// returns the chosen attacker.
func applyWorkloadEvent(e *experiment.Experiment, ev WorkloadEvent) (idr.ASN, error) {
	switch ev.Kind {
	case KindWithdrawal:
		return 0, e.Withdraw(ev.AS)
	case KindAnnouncement:
		return 0, e.Announce(ev.AS)
	case KindFailover, KindLinkDown:
		return 0, e.FailLink(ev.A, ev.B)
	case KindLinkUp:
		return 0, e.RestoreLink(ev.A, ev.B)
	case KindMigrate:
		return 0, e.Migrate(ev.AS)
	case KindCtrlDown:
		return 0, e.ControllerDown()
	case KindCtrlUp:
		return 0, e.ControllerUp()
	case KindSessionReset:
		return 0, e.SessionReset(ev.A, ev.B)
	case KindPartition:
		return 0, e.Partition()
	case KindHeal:
		return 0, e.Heal()
	case KindHijack:
		attacker, err := hijackAttacker(e, ev.AS)
		if err != nil {
			return 0, err
		}
		prefix, err := e.OriginPrefix(ev.AS)
		if err != nil {
			return 0, err
		}
		return attacker, e.AnnounceForeign(attacker, prefix)
	default:
		return 0, fmt.Errorf("lab: unknown workload event kind %v", ev.Kind)
	}
}

// RunWorkload executes a schedule against an already running,
// warmed-up experiment and returns the per-event epochs — the engine
// behind the scenario DSL's "at …; run-workload" commands. Targets
// resolve against origin (AS 0 means origin; a failover must name its
// link explicitly, since only Trial builds the dual-homed stub).
// origin's prefix is the one measured for per-epoch path exploration;
// timeout bounds the final convergence wait and drain adds settling
// time after it (zero for none).
func RunWorkload(e *experiment.Experiment, w Workload, origin idr.ASN, timeout, drain time.Duration) ([]Epoch, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if origin == 0 {
		return nil, fmt.Errorf("lab: RunWorkload needs an origin AS")
	}
	for i, ev := range w {
		if ev.Kind == KindFailover && ev.A == 0 && ev.B == 0 {
			return nil, fmt.Errorf("lab: workload event %d: failover outside a trial needs an explicit link", i)
		}
	}
	w = w.resolve(origin, 0).sorted()
	prefix, err := e.OriginPrefix(origin)
	if err != nil {
		return nil, err
	}
	if timeout <= 0 {
		timeout = 2 * time.Hour
	}
	epochs, _, err := executeWorkload(e, w, workloadRun{
		origin:  origin,
		prefix:  prefix,
		timeout: timeout,
		drain:   drain,
	})
	return epochs, err
}
