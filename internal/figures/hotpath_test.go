package figures

import (
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/lab"
)

// hotPathTunings enumerates the execution strategies the equivalence
// suite crosses: the default (sharded RIB, batched drain, timer wheel)
// against every legacy fallback, including the fully-historical
// configuration (single-map RIB, one event per scheduler pass, every
// timer in the binary heap).
var hotPathTunings = []struct {
	name   string
	tuning experiment.Tuning
}{
	{"default", experiment.Tuning{}},
	{"serial-drain", experiment.Tuning{SerialDrain: true}},
	{"single-shard", experiment.Tuning{RIBShards: 1}},
	{"heap-timers", experiment.Tuning{HeapTimers: true}},
	{"legacy", experiment.Tuning{RIBShards: 1, SerialDrain: true, HeapTimers: true}},
}

// TestRegistryHotPathEquivalence is the hot-path overhaul's acceptance
// check at registry breadth: every experiment spec, shrunk to smoke
// scale, must produce byte-identical output in all four encoders under
// every tuning combination. RIB sharding, same-timestamp batching and
// the timer wheel are execution details — any visible difference here
// is a determinism bug, not a tuning effect.
func TestRegistryHotPathEquivalence(t *testing.T) {
	encodeAll := func(t *testing.T, res *lab.SweepResult) map[lab.Format]string {
		t.Helper()
		out := map[lab.Format]string{}
		for _, f := range []lab.Format{lab.FormatTable, lab.FormatCSV, lab.FormatJSON, lab.FormatMarkdown} {
			var sb strings.Builder
			if err := lab.Write(&sb, f, res); err != nil {
				t.Fatal(err)
			}
			out[f] = sb.String()
		}
		return out
	}
	for _, spec := range Registry() {
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			var want map[lab.Format]string
			for _, tc := range hotPathTunings {
				sw := snapshotSmokeSweep(t, spec)
				sw.Parallelism = 1
				sw.Base.Tuning = tc.tuning
				res, err := sw.Run()
				if err != nil {
					t.Fatal(err)
				}
				got := encodeAll(t, res)
				if want == nil {
					want = got
					continue
				}
				for f, enc := range got {
					if enc != want[f] {
						t.Fatalf("%s output differs under tuning %s:\n--- default ---\n%s--- %s ---\n%s",
							f, tc.name, want[f], tc.name, enc)
					}
				}
			}
		})
	}
}
