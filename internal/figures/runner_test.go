package figures

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bgp"
)

func TestRunnerDoCoversAllIndices(t *testing.T) {
	for _, p := range []int{0, 1, 3, 16} {
		n := 37
		hits := make([]atomic.Int32, n)
		err := Runner{Parallelism: p}.Do(n, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("parallelism %d: task %d ran %d times", p, i, got)
			}
		}
	}
	if err := (Runner{}).Do(0, func(int) error { panic("no tasks") }); err != nil {
		t.Fatal(err)
	}
}

func TestRunnerDoReturnsLowestIndexError(t *testing.T) {
	// Whatever the schedule, the reported error must be the
	// lowest-index failure, so parallel error output is deterministic.
	for _, p := range []int{1, 8} {
		err := Runner{Parallelism: p}.Do(20, func(i int) error {
			if i%2 == 1 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "task 1 failed") {
			t.Fatalf("parallelism %d: err = %v, want task 1's", p, err)
		}
	}
}

// TestSweepDeterministicAcrossParallelism is the regression guard for
// the parallel sweep engine: the same SweepConfig must produce an
// identical Point series whether the runs execute sequentially or
// across 8 workers — same seeds, same durations, byte-identical
// rendered table.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	timers := bgp.DefaultTimers()
	timers.MRAI = 10 * time.Second
	base := SweepConfig{
		Kind:       Withdrawal,
		CliqueSize: 6,
		SDNCounts:  []int{0, 3, 6},
		Runs:       3,
		BaseSeed:   21,
		Timers:     timers,
	}

	seq := base
	seq.Parallelism = 1
	seqPoints, err := RunSweep(seq)
	if err != nil {
		t.Fatal(err)
	}

	par := base
	par.Parallelism = 8
	parPoints, err := RunSweep(par)
	if err != nil {
		t.Fatal(err)
	}

	if len(seqPoints) != len(parPoints) {
		t.Fatalf("point counts differ: %d vs %d", len(seqPoints), len(parPoints))
	}
	for i := range seqPoints {
		s, p := seqPoints[i], parPoints[i]
		if s.SDNCount != p.SDNCount || s.Fraction != p.Fraction {
			t.Fatalf("point %d differs: %+v vs %+v", i, s, p)
		}
		if len(s.Durations) != len(p.Durations) {
			t.Fatalf("point %d run counts differ: %d vs %d", i, len(s.Durations), len(p.Durations))
		}
		for j := range s.Durations {
			if s.Durations[j] != p.Durations[j] {
				t.Fatalf("point %d run %d: %v (sequential) != %v (parallel)",
					i, j, s.Durations[j], p.Durations[j])
			}
		}
		if s.Summary != p.Summary {
			t.Fatalf("point %d summaries differ: %+v vs %+v", i, s.Summary, p.Summary)
		}
	}

	var seqTab, parTab strings.Builder
	if err := WriteTable(&seqTab, base.Kind, base.CliqueSize, seqPoints); err != nil {
		t.Fatal(err)
	}
	if err := WriteTable(&parTab, base.Kind, base.CliqueSize, parPoints); err != nil {
		t.Fatal(err)
	}
	if seqTab.String() != parTab.String() {
		t.Fatalf("rendered tables differ:\n--- sequential ---\n%s--- parallel ---\n%s",
			seqTab.String(), parTab.String())
	}
}

// TestAblationsDeterministicAcrossParallelism extends the guard to the
// ablation sweeps, which share the Runner.
func TestAblationsDeterministicAcrossParallelism(t *testing.T) {
	timers := bgp.DefaultTimers()
	timers.MRAI = 5 * time.Second
	mrais := []time.Duration{5 * time.Second, 15 * time.Second}

	seqM, err := MRAISweep(4, 2, mrais, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	parM, err := MRAISweep(4, 2, mrais, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqM) != len(parM) {
		t.Fatalf("MRAI point counts differ")
	}
	for i := range seqM {
		if seqM[i] != parM[i] {
			t.Fatalf("MRAI point %d differs: %+v vs %+v", i, seqM[i], parM[i])
		}
	}

	seqS, err := CliqueSizeSweep([]int{4, 6}, 2, timers, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	parS, err := CliqueSizeSweep([]int{4, 6}, 2, timers, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seqS {
		if seqS[i] != parS[i] {
			t.Fatalf("size point %d differs: %+v vs %+v", i, seqS[i], parS[i])
		}
	}
}

func TestRunSweepErrorDeterministic(t *testing.T) {
	cfg := SweepConfig{
		Kind:       Withdrawal,
		CliqueSize: 6,
		SDNCounts:  []int{0, 99},
	}
	_, errSeq := RunSweep(cfg)
	cfg.Parallelism = 8
	_, errPar := RunSweep(cfg)
	if errSeq == nil || errPar == nil {
		t.Fatal("out-of-range SDN count should error at any parallelism")
	}
	if errSeq.Error() != errPar.Error() {
		t.Fatalf("error text differs: %q vs %q", errSeq, errPar)
	}
}
