package figures

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/lab"
)

// snapshotSmokeSweep shrinks a registry spec to snapshot-test scale:
// a 5-AS clique (16-AS internet graph for the policy family), one run
// per point, two axis points where the axis allows it. The shrink
// keeps every spec's workload, policy and placement semantics — only
// the sizes change.
func snapshotSmokeSweep(t *testing.T, spec Spec) lab.Sweep {
	t.Helper()
	o := Options{BaseSeed: 1, Runs: 1}
	clique := lab.TopoSpec{Kind: "clique", N: 5}
	inet := lab.TopoSpec{Kind: "internet", N: 16}
	switch spec.Name {
	case "vf", "policyload", "hijack", "cascade":
		o.Topo = &inet
	default:
		o.Topo = &clique
	}
	if spec.Name != "mrai" {
		// The mrai spec sweeps the MRAI itself and rejects the override.
		o.MRAI = 5 * time.Second
	}
	sw, err := spec.Build(o)
	if err != nil {
		t.Fatal(err)
	}
	switch sw.Axis.Kind {
	case lab.AxisSDNCount:
		sw.Axis = lab.SDNCounts(0, 2)
	case lab.AxisMRAI:
		sw.Axis = lab.MRAIs(2*time.Second, 5*time.Second)
	case lab.AxisTopoSize:
		sw.Axis = lab.TopoSizes(4, 5)
	case lab.AxisDebounce:
		sw.Axis = lab.Debounces(-1, time.Second)
	case lab.AxisLoss:
		sw.Axis = lab.Losses(0, 0.05)
	}
	return sw
}

// TestRegistrySnapshotEquivalence is the tentpole acceptance check at
// registry breadth: every experiment spec, shrunk to smoke scale, must
// produce deep-equal results and byte-identical output in all four
// encoders with the warm-up snapshot cache on versus off, sequentially
// and at parallelism 8. The cache is shared across the subtests, so
// cross-figure key collisions (two specs warming up the same converged
// network) are exercised too — a hit from another figure's warm-up
// must still reproduce this figure's plain result.
func TestRegistrySnapshotEquivalence(t *testing.T) {
	// encodeAll renders a result through all four encoders; comparing
	// the renderings (rather than reflect.DeepEqual) sidesteps the NaN
	// axis values of non-numeric axes, which never compare equal.
	encodeAll := func(t *testing.T, res *lab.SweepResult) map[lab.Format]string {
		t.Helper()
		out := map[lab.Format]string{}
		for _, f := range []lab.Format{lab.FormatTable, lab.FormatCSV, lab.FormatJSON, lab.FormatMarkdown} {
			var sb strings.Builder
			if err := lab.Write(&sb, f, res); err != nil {
				t.Fatal(err)
			}
			out[f] = sb.String()
		}
		return out
	}
	cache := lab.NewMemorySnapshotCache()
	for _, spec := range Registry() {
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			plain := snapshotSmokeSweep(t, spec)
			plain.Parallelism = 1
			res, err := plain.Run()
			if err != nil {
				t.Fatal(err)
			}
			want := encodeAll(t, res)

			for _, parallelism := range []int{1, 8} {
				snap := snapshotSmokeSweep(t, spec)
				snap.Parallelism = parallelism
				snap.Snapshots = cache
				res, err := snap.Run()
				if err != nil {
					t.Fatal(err)
				}
				for f, enc := range encodeAll(t, res) {
					if enc != want[f] {
						t.Fatalf("%s output differs with snapshots on at parallelism %d:\n--- plain ---\n%s--- snapshots ---\n%s",
							f, parallelism, want[f], enc)
					}
				}
			}
		})
	}
}

// TestFig2PaperConfigSnapshotEquivalence reruns the scientific-pin
// configuration with the warm-up snapshot cache on: the EXPERIMENTS.md
// metrics — s-pure-median 350.284, slope -369.785, r² 0.989 — must
// come out exactly even though every cell's measurement starts from a
// restored snapshot instead of the warm-up that produced it.
func TestFig2PaperConfigSnapshotEquivalence(t *testing.T) {
	cache := lab.NewMemorySnapshotCache()
	res := build(t, "fig2", Options{SDNCounts: []int{0, 4, 8, 12, 16}, Runs: 3, BaseSeed: 1},
		func(sw *lab.Sweep) { sw.Snapshots = cache })
	if cache.Len() == 0 {
		t.Fatal("snapshot cache stayed empty; the sweep did not take the snapshot path")
	}
	pinDurations(t, res.Cells[0], []time.Duration{352108071933, 346901627464, 350283820015})
	pinDurations(t, res.Cells[4], []time.Duration{100 * time.Millisecond, 100 * time.Millisecond, 100 * time.Millisecond})
	a, b, r2, ok := res.Fit()
	if !ok {
		t.Fatal("fit unavailable")
	}
	for _, c := range []struct {
		name string
		got  float64
		want string
	}{
		{"s-pure-median", res.Cells[0].Summary.Median, "350.284"},
		{"intercept", a, "358.154"},
		{"slope", b, "-369.785"},
		{"r2", r2, "0.989"},
	} {
		if got := fmt.Sprintf("%.3f", c.got); got != c.want {
			t.Fatalf("%s = %s with snapshots on, want the pinned %s", c.name, got, c.want)
		}
	}
}
