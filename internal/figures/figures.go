// Package figures declares the paper's evaluation as lab sweep specs:
// Figure 2 (withdrawal convergence on a 16-AS clique versus SDN
// deployment fraction, boxplots over 10 runs), the two experiments
// reported in prose in §4 (announcement and route fail-over), the
// policy family on internet-like AS graphs (valley-free convergence,
// policy-vs-policy-free update load, prefix-hijack containment), and
// the ablations indexed in DESIGN.md (MRAI, clique size, controller
// debounce, path exploration, flap stability). Each spec is a
// declarative description — topology, placement, policy, event, axis,
// seeds — that Build turns into a lab.Sweep; the lab package runs it
// and encodes the structured result. cmd/convergence exposes the
// registry on the command line.
package figures

import (
	"fmt"
	"time"

	"repro/internal/bgp"
	"repro/internal/lab"
)

// Options carries the caller's (typically CLI) overrides into a spec.
// Zero-valued fields keep the spec's documented defaults.
type Options struct {
	// Topo overrides the experiment's topology (nil keeps the spec
	// default, e.g. the paper's 16-AS clique for fig2).
	Topo *lab.TopoSpec
	// Placement overrides the SDN placement strategy (nil keeps the
	// spec default, the paper's last-K deployment). The sdn-count axis
	// still sets K per cell.
	Placement *lab.Placement
	// SDNCounts overrides the sdn-count axis values (fig2-family and
	// exploration; default 0..N in steps of 2, or the spec's list).
	SDNCounts []int
	// Runs overrides the per-point repetition count.
	Runs int
	// BaseSeed offsets the per-run seeds.
	BaseSeed int64
	// MRAI overrides the BGP MinRouteAdvertisementInterval on sweeps
	// that do not sweep it themselves (zero keeps the default 30s).
	MRAI time.Duration
	// Debounce overrides the controller recomputation delay (nil
	// keeps the spec default; negative disables the delay — see
	// lab.Trial.Debounce for the zero/negative convention).
	Debounce *time.Duration
	// Policy overrides the routing-policy template (zero keeps the
	// spec default: permit-all for the classic figures, gao-rexford
	// for the policy family). See lab.PolicySpec.
	Policy lab.PolicySpec
	// Workload replaces the experiment's triggering event with an
	// explicit multi-event schedule (the -workload flag). Only the
	// Figure 2 family honors it; the workload figures fix their own
	// schedules and every other spec rejects it.
	Workload lab.Workload
	// Parallelism bounds concurrent emulation runs (0 = GOMAXPROCS).
	Parallelism int
	// Progress, when non-nil, receives (done, total) after every
	// completed run (lab.Sweep.Progress; called concurrently when
	// Parallelism != 1).
	Progress func(done, total int)
}

func (o Options) topoOr(def lab.TopoSpec) lab.TopoSpec {
	if o.Topo != nil {
		return *o.Topo
	}
	return def
}

func (o Options) placementOr(def lab.Placement) lab.Placement {
	if o.Placement != nil {
		return *o.Placement
	}
	return def
}

func (o Options) runsOr(def int) int {
	if o.Runs > 0 {
		return o.Runs
	}
	return def
}

func (o Options) debounceOr(def time.Duration) time.Duration {
	if o.Debounce != nil {
		return *o.Debounce
	}
	return def
}

func (o Options) policyOr(def lab.PolicySpec) lab.PolicySpec {
	if o.Policy.Kind != "" {
		return o.Policy
	}
	return def
}

// originOnlyAt is the topology size (AS count) above which the
// figure specs switch the warm-up to origin-only announcements: a
// full-table warm-up holds O(N²) routes network-wide (and drives
// controller flow-mod load with the member×prefix product), which is
// what makes internet-scale sweeps infeasible, while every measured
// event concerns only the origin prefix. See lab.Trial.OriginOnly.
const originOnlyAt = 128

func originOnly(topo lab.TopoSpec) bool { return topo.Nodes() >= originOnlyAt }

// rejectUnused errors when the caller set an override this spec
// cannot honor — silently ignoring a -placement or SDN-count list
// would hand back numbers from a different experiment than requested.
func (o Options) rejectUnused(name, why string) error {
	if o.Placement != nil {
		return fmt.Errorf("figures: %s is %s; -placement does not apply", name, why)
	}
	if len(o.SDNCounts) > 0 {
		return fmt.Errorf("figures: %s is %s; an SDN-count list does not apply", name, why)
	}
	return o.rejectWorkload(name, why)
}

// rejectWorkload errors when the caller set -workload on a spec whose
// trigger is fixed (everything except the Figure 2 family).
func (o Options) rejectWorkload(name, why string) error {
	if len(o.Workload) > 0 {
		return fmt.Errorf("figures: %s is %s; -workload does not apply", name, why)
	}
	return nil
}

// timers returns the protocol timers with the MRAI override applied.
func (o Options) timers() bgp.Timers {
	t := bgp.DefaultTimers()
	if o.MRAI != 0 {
		t.MRAI = o.MRAI
	}
	return t
}

// sdnCountsOr returns the sdn-count axis values: the caller's
// override, or 0..n in steps of 2 (the paper's Figure 2 x-axis).
func (o Options) sdnCountsOr(n int) []int {
	if len(o.SDNCounts) > 0 {
		return o.SDNCounts
	}
	counts := make([]int, 0, n/2+1)
	for k := 0; k <= n; k += 2 {
		counts = append(counts, k)
	}
	return counts
}

// Spec is one registry entry: a named, declarative sweep description.
// Name, Title and Desc are the registry's documentation metadata — the
// lab report and the generated EXPERIMENTS.md registry block render
// them verbatim, so the registry is the single source of truth for
// what each experiment is and why it exists.
type Spec struct {
	// Name is the registry key (the CLI's -exp value).
	Name string
	// Title is a one-line description for listings.
	Title string
	// Desc is a short prose paragraph for generated documentation:
	// what the experiment measures and what the expected result shows.
	Desc string
	// Build resolves the spec and the caller's overrides into a
	// runnable lab.Sweep.
	Build func(Options) (lab.Sweep, error)
}

// convergenceSpec is the Figure 2 family: one triggering event swept
// over the SDN deployment fraction of a 16-AS clique (or any
// -topology), 10 runs per point, per-cell seeds, 100ms debounce and
// the 25ms per-UPDATE processing delay approximating the paper's
// shared-host Quagga daemons. A -workload override replaces the
// event with an explicit schedule on the same sweep.
func convergenceSpec(name, title, desc string, ev lab.Event) Spec {
	return Spec{Name: name, Title: title, Desc: desc, Build: func(o Options) (lab.Sweep, error) {
		topo := o.topoOr(lab.TopoSpec{Kind: "clique", N: 16})
		return lab.Sweep{
			Name: name,
			Base: lab.Trial{
				Topo:            topo,
				Placement:       o.placementOr(lab.Placement{Strategy: lab.PlaceLast}),
				Policy:          o.policyOr(lab.PolicySpec{}),
				Event:           ev,
				Workload:        o.Workload,
				Timers:          o.timers(),
				Debounce:        o.debounceOr(100 * time.Millisecond),
				ProcessingDelay: 25 * time.Millisecond,
				OriginOnly:      originOnly(topo),
			},
			Axis:        lab.SDNCounts(o.sdnCountsOr(topo.Nodes())...),
			Runs:        o.runsOr(10),
			BaseSeed:    o.BaseSeed,
			SeedPolicy:  lab.SeedCellRun,
			Parallelism: o.Parallelism,
			Progress:    o.Progress,
		}, nil
	}}
}

// policySteps returns the default sdn-count axis of the policy
// figures: 0..n in n/8 steps (deduplicated, always ending at a
// not-fully-clustered point plus full deployment where valid).
func policySteps(n int, includeFull bool) []int {
	step := n / 8
	if step < 1 {
		step = 1
	}
	var counts []int
	for k := 0; k <= n; k += step {
		if k == n && !includeFull {
			break
		}
		counts = append(counts, k)
	}
	if includeFull && (len(counts) == 0 || counts[len(counts)-1] != n) {
		counts = append(counts, n)
	}
	return counts
}

// registry is the experiment index, in presentation order.
var registry = []Spec{
	convergenceSpec("fig2", "Figure 2: withdrawal convergence vs SDN deployment fraction",
		"The paper's headline result: the origin AS withdraws an established prefix and the network re-converges, "+
			"measured while the SDN deployment fraction grows from pure BGP to full centralization. "+
			"Convergence time falls roughly linearly with the fraction of ASes under centralized route control — "+
			"the paper's \"convergence time can be linearly reduced\" claim, checked by the linear fit.",
		lab.Withdrawal),
	convergenceSpec("announce", "§4: fresh-prefix announcement vs SDN deployment fraction",
		"The §4 companion experiment: the origin announces a previously unseen prefix on the same sweep. "+
			"Announcements converge fast under plain BGP already (no path exploration), so the centralization "+
			"saving is much smaller than for withdrawals.",
		lab.Announcement),
	convergenceSpec("failover", "§4: dual-homed stub fail-over vs SDN deployment fraction",
		"A dual-homed stub origin loses its primary attachment while its prefix stays reachable over the backup. "+
			"Every AS must re-converge onto paths through the backup link, with real path exploration in the "+
			"legacy part of the network; centralization shortcuts that exploration.",
		lab.Failover),

	{Name: "vf", Title: "policy: valley-free withdrawal convergence vs SDN cluster size (internet-like graph)",
		Desc: "The Figure 2 question under realistic routing policy: withdrawal convergence on a seeded " +
			"internet-like AS graph with Gao-Rexford (valley-free) business policies, clustering the " +
			"highest-degree ASes first. Centralizing the well-connected core still shortens convergence " +
			"even when export rules constrain propagation.",
		Build: func(o Options) (lab.Sweep, error) {
			if err := o.rejectWorkload("vf", "a fixed-withdrawal policy figure"); err != nil {
				return lab.Sweep{}, err
			}
			topo := o.topoOr(lab.TopoSpec{Kind: "internet", N: 64})
			counts := o.SDNCounts
			if len(counts) == 0 {
				counts = policySteps(topo.Nodes(), true)
			}
			return lab.Sweep{
				Name: "vf",
				Base: lab.Trial{
					Topo:            topo,
					Placement:       o.placementOr(lab.Placement{Strategy: lab.PlaceDegree}),
					Policy:          o.policyOr(lab.PolicySpec{Kind: lab.PolicyGaoRexford}),
					Event:           lab.Withdrawal,
					Timers:          o.timers(),
					Debounce:        o.debounceOr(100 * time.Millisecond),
					ProcessingDelay: 25 * time.Millisecond,
					OriginOnly:      originOnly(topo),
				},
				Axis:        lab.SDNCounts(counts...),
				Runs:        o.runsOr(5),
				BaseSeed:    o.BaseSeed,
				Parallelism: o.Parallelism,
				Progress:    o.Progress,
			}, nil
		}},

	{Name: "policyload", Title: "policy: withdrawal update load under permit-all vs gao-rexford vs prefix-filter (pure BGP)",
		Desc: "A policy-axis comparison at pure BGP: the same withdrawal on the same internet-like graph under " +
			"free transit, valley-free business routing, and valley-free plus IRR-style customer-cone prefix " +
			"filters. Policy constrains propagation, so the UPDATE load drops sharply from permit-all to the " +
			"filtered templates — the cost of policy-free evaluation is overstated update churn.",
		Build: func(o Options) (lab.Sweep, error) {
			if err := o.rejectUnused("policyload", "a policy-axis comparison at pure BGP"); err != nil {
				return lab.Sweep{}, err
			}
			if o.Policy.Kind != "" {
				return lab.Sweep{}, fmt.Errorf("figures: policyload sweeps the policy itself; -policy does not apply")
			}
			topo := o.topoOr(lab.TopoSpec{Kind: "internet", N: 32})
			return lab.Sweep{
				Name: "policyload",
				Base: lab.Trial{
					Topo:            topo,
					Placement:       lab.Placement{Strategy: lab.PlaceNone},
					Event:           lab.Withdrawal,
					Timers:          o.timers(),
					ProcessingDelay: 25 * time.Millisecond,
					OriginOnly:      originOnly(topo),
				},
				Axis: lab.Policies(
					lab.PolicySpec{Kind: lab.PolicyPermitAll},
					lab.PolicySpec{Kind: lab.PolicyGaoRexford},
					lab.PolicySpec{Kind: lab.PolicyPrefixFilter},
				),
				Runs:        o.runsOr(5),
				BaseSeed:    o.BaseSeed,
				Parallelism: o.Parallelism,
				Progress:    o.Progress,
			}, nil
		}},

	{Name: "hijack", Title: "policy: prefix-hijack containment vs SDN cluster size (bogus-announcement reach)",
		Desc: "The highest-numbered legacy AS announces the origin's prefix (a bogus origination) and the row " +
			"reports how many ASes end up routing toward the attacker. Gao-Rexford's prefer-customer rule " +
			"amplifies stub hijacks, prefix filters kill them at the first filtered import, and growing the " +
			"SDN cluster localizes the damage — three containment regimes on one axis.",
		Build: func(o Options) (lab.Sweep, error) {
			if err := o.rejectWorkload("hijack", "a fixed-hijack policy figure"); err != nil {
				return lab.Sweep{}, err
			}
			topo := o.topoOr(lab.TopoSpec{Kind: "internet", N: 32})
			counts := o.SDNCounts
			if len(counts) == 0 {
				// Stop short of full deployment: a hijack needs at
				// least one AS still running legacy BGP to originate
				// the bogus announcement.
				counts = policySteps(topo.Nodes(), false)
			}
			for _, k := range counts {
				// Reject full deployment up front instead of after an
				// internet-scale warm-up: with every AS clustered no
				// legacy attacker exists (lab.Hijack).
				if k >= topo.Nodes() {
					return lab.Sweep{}, fmt.Errorf("figures: hijack needs a legacy attacker; SDN count %d covers all %d ASes", k, topo.Nodes())
				}
			}
			return lab.Sweep{
				Name: "hijack",
				Base: lab.Trial{
					Topo:            topo,
					Placement:       o.placementOr(lab.Placement{Strategy: lab.PlaceDegree}),
					Policy:          o.policyOr(lab.PolicySpec{Kind: lab.PolicyGaoRexford}),
					Event:           lab.Hijack,
					Timers:          o.timers(),
					Debounce:        o.debounceOr(100 * time.Millisecond),
					ProcessingDelay: 25 * time.Millisecond,
					OriginOnly:      originOnly(topo),
				},
				Axis:        lab.SDNCounts(counts...),
				Runs:        o.runsOr(5),
				BaseSeed:    o.BaseSeed,
				Parallelism: o.Parallelism,
				Progress:    o.Progress,
			}, nil
		}},

	{Name: "maint", Title: "workload: maintenance window (withdraw, re-announce) re-convergence vs SDN cluster size",
		Desc: "A two-event schedule: the origin withdraws its prefix, then re-announces it ten minutes later, " +
			"measured one epoch per event. The withdrawal epoch dominates and shrinks with centralization " +
			"(path exploration again), while the re-announce floods quickly at any cluster size — the " +
			"asymmetry operators see around planned maintenance.",
		Build: func(o Options) (lab.Sweep, error) {
			if err := o.rejectWorkload("maint", "a fixed maintenance-window schedule (use -exp fig2 -workload for custom timelines)"); err != nil {
				return lab.Sweep{}, err
			}
			topo := o.topoOr(lab.TopoSpec{Kind: "clique", N: 16})
			return lab.Sweep{
				Name: "maint",
				Base: lab.Trial{
					Topo:      topo,
					Placement: o.placementOr(lab.Placement{Strategy: lab.PlaceLast}),
					Policy:    o.policyOr(lab.PolicySpec{}),
					// The window (10m) exceeds the slowest pure-BGP
					// withdrawal convergence on the default clique, so
					// the re-announce measures a quiesced network — the
					// interesting epoch is the second one.
					Workload: lab.Workload{
						{Kind: lab.KindWithdrawal},
						{At: 10 * time.Minute, Kind: lab.KindAnnouncement},
					},
					Timers:          o.timers(),
					Debounce:        o.debounceOr(100 * time.Millisecond),
					ProcessingDelay: 25 * time.Millisecond,
					OriginOnly:      originOnly(topo),
				},
				Axis:        lab.SDNCounts(o.sdnCountsOr(topo.Nodes())...),
				Runs:        o.runsOr(5),
				BaseSeed:    o.BaseSeed,
				SeedPolicy:  lab.SeedCellRun,
				Parallelism: o.Parallelism,
				Progress:    o.Progress,
			}, nil
		}},

	{Name: "cascade", Title: "workload: cascading failure — fail-over then hijack of the weakened prefix vs SDN cluster size",
		Desc: "A second-order failure story on a gao-rexford internet graph: a dual-homed stub loses its primary " +
			"attachment, and five minutes later — mid-recovery weakness — a legacy AS hijacks its prefix. The " +
			"per-epoch hijacked column shows how much of the network the bogus route captures at each cluster " +
			"size while legitimate recovery is still in flight.",
		Build: func(o Options) (lab.Sweep, error) {
			if err := o.rejectWorkload("cascade", "a fixed fail-over-then-hijack schedule"); err != nil {
				return lab.Sweep{}, err
			}
			topo := o.topoOr(lab.TopoSpec{Kind: "internet", N: 32})
			counts := o.SDNCounts
			if len(counts) == 0 {
				// Stop short of full deployment: the hijack leg needs a
				// legacy attacker (see the hijack figure).
				counts = policySteps(topo.Nodes(), false)
			}
			for _, k := range counts {
				if k >= topo.Nodes() {
					return lab.Sweep{}, fmt.Errorf("figures: cascade needs a legacy attacker; SDN count %d covers all %d ASes", k, topo.Nodes())
				}
			}
			return lab.Sweep{
				Name: "cascade",
				Base: lab.Trial{
					Topo:      topo,
					Placement: o.placementOr(lab.Placement{Strategy: lab.PlaceDegree}),
					Policy:    o.policyOr(lab.PolicySpec{Kind: lab.PolicyGaoRexford}),
					// The dual-homed stub loses its primary attachment;
					// five minutes later — mid-recovery weakness — a
					// legacy AS hijacks its prefix. The per-epoch
					// hijacked column is the containment story.
					Workload: lab.Workload{
						{Kind: lab.KindFailover},
						{At: 5 * time.Minute, Kind: lab.KindHijack},
					},
					Timers:          o.timers(),
					Debounce:        o.debounceOr(100 * time.Millisecond),
					ProcessingDelay: 25 * time.Millisecond,
					OriginOnly:      originOnly(topo),
				},
				Axis:        lab.SDNCounts(counts...),
				Runs:        o.runsOr(5),
				BaseSeed:    o.BaseSeed,
				Parallelism: o.Parallelism,
				Progress:    o.Progress,
			}, nil
		}},

	{Name: "churn", Title: "workload: seeded Poisson withdraw/re-announce churn vs SDN cluster size",
		Desc: "Replayed, measured churn instead of a single trigger: six origin flaps with exponentially " +
			"distributed gaps (mean 90s, drawn deterministically from the base seed, identical across cells) " +
			"overlap the pure-BGP convergence tail. The per-epoch rows show how each regime digests events " +
			"that arrive before the previous one has settled.",
		Build: func(o Options) (lab.Sweep, error) {
			if err := o.rejectWorkload("churn", "a seed-derived Poisson schedule"); err != nil {
				return lab.Sweep{}, err
			}
			topo := o.topoOr(lab.TopoSpec{Kind: "clique", N: 16})
			return lab.Sweep{
				Name: "churn",
				Base: lab.Trial{
					Topo:      topo,
					Placement: o.placementOr(lab.Placement{Strategy: lab.PlaceLast}),
					Policy:    o.policyOr(lab.PolicySpec{}),
					// Six origin flaps with exponential gaps (mean 90s,
					// drawn from the base seed, identical across cells)
					// overlap the pure-BGP convergence tail — replayed,
					// measured churn rather than a single trigger.
					Workload:        lab.PoissonWorkload(o.BaseSeed, 6, 90*time.Second),
					Timers:          o.timers(),
					Debounce:        o.debounceOr(100 * time.Millisecond),
					ProcessingDelay: 25 * time.Millisecond,
					OriginOnly:      originOnly(topo),
				},
				Axis:        lab.SDNCounts(o.sdnCountsOr(topo.Nodes())...),
				Runs:        o.runsOr(3),
				BaseSeed:    o.BaseSeed,
				SeedPolicy:  lab.SeedCellRun,
				Parallelism: o.Parallelism,
				Progress:    o.Progress,
			}, nil
		}},

	{Name: "mrai", Title: "ablation: pure-BGP withdrawal convergence vs MRAI",
		Desc: "Pure-BGP withdrawal convergence as a function of the MinRouteAdvertisementInterval. Tdown scales " +
			"with the advertisement interval — the batching that tames update load is exactly what stretches " +
			"path exploration — which is the dynamics baseline every hybrid result is read against.",
		Build: func(o Options) (lab.Sweep, error) {
			if err := o.rejectUnused("mrai", "a pure-BGP ablation"); err != nil {
				return lab.Sweep{}, err
			}
			if o.MRAI != 0 {
				return lab.Sweep{}, fmt.Errorf("figures: mrai sweeps the MRAI itself; -mrai does not apply")
			}
			return lab.Sweep{
				Name: "mrai",
				Base: lab.Trial{
					Topo:            o.topoOr(lab.TopoSpec{Kind: "clique", N: 8}),
					Placement:       lab.Placement{Strategy: lab.PlaceNone},
					Policy:          o.policyOr(lab.PolicySpec{}),
					Event:           lab.Withdrawal,
					Timers:          bgp.DefaultTimers(),
					Debounce:        o.debounceOr(100 * time.Millisecond),
					ProcessingDelay: 25 * time.Millisecond,
				},
				Axis:        lab.MRAIs(5*time.Second, 15*time.Second, 30*time.Second, 60*time.Second),
				Runs:        o.runsOr(5),
				BaseSeed:    o.BaseSeed,
				Parallelism: o.Parallelism,
				Progress:    o.Progress,
			}, nil
		}},

	{Name: "size", Title: "ablation: pure-BGP withdrawal convergence vs topology size",
		Desc: "Pure-BGP withdrawal convergence as the clique grows: the candidate-path set grows with the mesh, " +
			"so path exploration — and with it Tdown — climbs with topology size.",
		Build: func(o Options) (lab.Sweep, error) {
			if err := o.rejectUnused("size", "a pure-BGP ablation"); err != nil {
				return lab.Sweep{}, err
			}
			return lab.Sweep{
				Name: "size",
				Base: lab.Trial{
					Topo:            o.topoOr(lab.TopoSpec{Kind: "clique", N: 8}),
					Placement:       lab.Placement{Strategy: lab.PlaceNone},
					Policy:          o.policyOr(lab.PolicySpec{}),
					Event:           lab.Withdrawal,
					Timers:          o.timers(),
					Debounce:        o.debounceOr(100 * time.Millisecond),
					ProcessingDelay: 25 * time.Millisecond,
				},
				Axis:        lab.TopoSizes(4, 8, 12, 16),
				Runs:        o.runsOr(5),
				BaseSeed:    o.BaseSeed,
				Parallelism: o.Parallelism,
				Progress:    o.Progress,
			}, nil
		}},

	{Name: "debounce", Title: "ablation: controller delayed recomputation (latency vs batches)",
		Desc: "The §3 design insight isolated: sweeping the controller's delayed-recomputation window at a fixed " +
			"half-clustered deployment. No delay recomputes on every event; longer windows batch bursts into " +
			"single recomputations at a small latency cost — the latency-versus-work trade the controller tunes.",
		Build: func(o Options) (lab.Sweep, error) {
			if err := o.rejectWorkload("debounce", "a fixed-withdrawal ablation"); err != nil {
				return lab.Sweep{}, err
			}
			if len(o.SDNCounts) > 0 {
				return lab.Sweep{}, fmt.Errorf("figures: debounce sweeps the recomputation window at a fixed placement; an SDN-count list does not apply")
			}
			if o.Debounce != nil {
				return lab.Sweep{}, fmt.Errorf("figures: debounce sweeps the recomputation window itself; -debounce does not apply")
			}
			topo := o.topoOr(lab.TopoSpec{Kind: "clique", N: 8})
			placement := o.placementOr(lab.Placement{Strategy: lab.PlaceLast, K: topo.Nodes() / 2})
			if placement.Strategy == lab.PlaceNone {
				return lab.Sweep{}, fmt.Errorf("figures: debounce needs a controller cluster; -placement none does not apply")
			}
			if placement.Strategy != lab.PlaceExplicit && placement.K == 0 {
				// A bare strategy override ("-placement degree") chooses
				// *which* ASes form the cluster; keep the spec's
				// half-the-network cluster size.
				placement.K = topo.Nodes() / 2
			}
			return lab.Sweep{
				Name: "debounce",
				Base: lab.Trial{
					Topo:      topo,
					Placement: placement,
					Policy:    o.policyOr(lab.PolicySpec{}),
					Event:     lab.Withdrawal,
					Timers:    o.timers(),
				},
				Axis:        lab.Debounces(-1, 500*time.Millisecond, time.Second, 2*time.Second),
				Runs:        o.runsOr(5),
				BaseSeed:    o.BaseSeed,
				Parallelism: o.Parallelism,
				Progress:    o.Progress,
			}, nil
		}},

	{Name: "exploration", Title: "ablation: best-path churn and update load vs SDN count",
		Desc: "The Oliveira et al. path-exploration metric: best-route changes for the withdrawn prefix across " +
			"all routers, with and without the cluster. Centralization removes the transient intermediate " +
			"bests that plain BGP walks through before settling.",
		Build: func(o Options) (lab.Sweep, error) {
			if err := o.rejectWorkload("exploration", "a fixed-withdrawal ablation"); err != nil {
				return lab.Sweep{}, err
			}
			topo := o.topoOr(lab.TopoSpec{Kind: "clique", N: 8})
			n := topo.Nodes()
			counts := o.SDNCounts
			if len(counts) == 0 {
				counts = []int{0, n / 4, n / 2, 3 * n / 4}
			}
			return lab.Sweep{
				Name: "exploration",
				Base: lab.Trial{
					Topo:      topo,
					Placement: o.placementOr(lab.Placement{Strategy: lab.PlaceLast}),
					Policy:    o.policyOr(lab.PolicySpec{}),
					Event:     lab.Withdrawal,
					Timers:    o.timers(),
					Debounce:  o.debounceOr(0),
				},
				Axis:        lab.SDNCounts(counts...),
				Runs:        o.runsOr(1),
				BaseSeed:    o.BaseSeed,
				Parallelism: o.Parallelism,
				Progress:    o.Progress,
			}, nil
		}},

	{Name: "flap", Title: "ablation: flap storm under plain BGP vs damping vs SDN debounce",
		Desc: "A withdraw/re-announce storm under three containment regimes: plain BGP (every flap propagates), " +
			"RFC 2439 route-flap damping (routers punish the flapping prefix), and a half-clustered deployment " +
			"with a one-second debounce (the controller absorbs the burst). Update totals compare distributed " +
			"versus centralized stability mechanisms.",
		Build: func(o Options) (lab.Sweep, error) {
			if err := o.rejectUnused("flap", "a mode-axis ablation whose regimes set the placement"); err != nil {
				return lab.Sweep{}, err
			}
			if o.Debounce != nil {
				return lab.Sweep{}, fmt.Errorf("figures: flap's regimes set the debounce (the sdn mode uses 1s); -debounce does not apply")
			}
			return lab.Sweep{
				Name: "flap",
				Base: lab.Trial{
					Topo:   o.topoOr(lab.TopoSpec{Kind: "clique", N: 8}),
					Policy: o.policyOr(lab.PolicySpec{}),
					Event:  lab.Flap,
					Timers: o.timers(),
				},
				Axis:        lab.Modes(lab.ModeBGP, lab.ModeDamping, lab.ModeSDN),
				Runs:        o.runsOr(1),
				BaseSeed:    o.BaseSeed,
				Parallelism: o.Parallelism,
				Progress:    o.Progress,
			}, nil
		}},

	{Name: "ctrlfail", Title: "chaos: withdrawal convergence with a crashed controller, then recovery, vs SDN cluster size",
		Desc: "The centralization story under its worst-case fault: the controller crashes, the origin withdraws " +
			"its prefix a minute later, the controller recovers after the dust settles, and the origin " +
			"re-announces. The withdrawal epoch shows every cluster size paying the pure-BGP path-exploration " +
			"price (the crashed members fall back to legacy routers), and the final epoch measures the " +
			"re-announce with the cluster re-adopted. At K=0 the crash and recovery are no-ops, so the " +
			"baseline column doubles as a sanity anchor.",
		Build: func(o Options) (lab.Sweep, error) {
			if err := o.rejectWorkload("ctrlfail", "a fixed crash/withdraw/recover schedule"); err != nil {
				return lab.Sweep{}, err
			}
			topo := o.topoOr(lab.TopoSpec{Kind: "clique", N: 16})
			return lab.Sweep{
				Name: "ctrlfail",
				Base: lab.Trial{
					Topo:      topo,
					Placement: o.placementOr(lab.Placement{Strategy: lab.PlaceLast}),
					Policy:    o.policyOr(lab.PolicySpec{}),
					// Crash first, withdraw while headless, recover, then
					// re-announce. The 14-minute degraded window exceeds
					// the slowest pure-BGP withdrawal convergence on the
					// default clique, so the recovery epoch measures a
					// quiesced network re-adopting the cluster and the
					// final epoch a clean announcement under the restored
					// controller.
					Workload: lab.Workload{
						{Kind: lab.KindCtrlDown},
						{At: time.Minute, Kind: lab.KindWithdrawal},
						{At: 15 * time.Minute, Kind: lab.KindCtrlUp},
						{At: 17 * time.Minute, Kind: lab.KindAnnouncement},
					},
					Timers:          o.timers(),
					Debounce:        o.debounceOr(100 * time.Millisecond),
					ProcessingDelay: 25 * time.Millisecond,
					OriginOnly:      originOnly(topo),
				},
				Axis:        lab.SDNCounts(o.sdnCountsOr(topo.Nodes())...),
				Runs:        o.runsOr(5),
				BaseSeed:    o.BaseSeed,
				SeedPolicy:  lab.SeedCellRun,
				Parallelism: o.Parallelism,
				Progress:    o.Progress,
			}, nil
		}},

	{Name: "lossy", Title: "chaos: withdrawal convergence vs link-loss rate (half-clustered deployment)",
		Desc: "Withdrawal convergence on a half-clustered clique as every inter-AS link drops messages at the " +
			"swept rate. Lost BGP messages cost doubling retransmission timeouts, so convergence degrades " +
			"super-linearly with loss while staying byte-reproducible: each link's loss stream is seeded from " +
			"the trial seed. The per-cell spread shows how loss turns a deterministic protocol into a " +
			"distribution.",
		Build: func(o Options) (lab.Sweep, error) {
			if err := o.rejectUnused("lossy", "a loss-axis ablation on a fixed half-clustered deployment"); err != nil {
				return lab.Sweep{}, err
			}
			topo := o.topoOr(lab.TopoSpec{Kind: "clique", N: 16})
			return lab.Sweep{
				Name: "lossy",
				Base: lab.Trial{
					Topo:            topo,
					Placement:       lab.Placement{Strategy: lab.PlaceLast, K: topo.Nodes() / 2},
					Policy:          o.policyOr(lab.PolicySpec{}),
					Event:           lab.Withdrawal,
					Timers:          o.timers(),
					Debounce:        o.debounceOr(100 * time.Millisecond),
					ProcessingDelay: 25 * time.Millisecond,
					OriginOnly:      originOnly(topo),
				},
				Axis:        lab.Losses(0, 0.01, 0.02, 0.05, 0.1, 0.2),
				Runs:        o.runsOr(5),
				BaseSeed:    o.BaseSeed,
				SeedPolicy:  lab.SeedCellRun,
				Parallelism: o.Parallelism,
				Progress:    o.Progress,
			}, nil
		}},
}

// Registry returns the experiment specs in presentation order.
func Registry() []Spec {
	return append([]Spec(nil), registry...)
}

// Lookup finds a spec by name.
func Lookup(name string) (Spec, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names lists the registry names in order (for usage strings).
func Names() []string {
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.Name
	}
	return out
}

// Run is the one-call convenience: resolve the named spec with the
// given options and execute the sweep.
func Run(name string, o Options) (*lab.SweepResult, error) {
	spec, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("figures: unknown experiment %q (have %v)", name, Names())
	}
	sweep, err := spec.Build(o)
	if err != nil {
		return nil, err
	}
	return sweep.Run()
}
