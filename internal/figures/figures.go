// Package figures regenerates the paper's evaluation results: Figure 2
// (withdrawal convergence on a 16-AS clique versus SDN deployment
// fraction, boxplots over 10 runs) and the two experiments reported in
// prose in §4 (announcement and route fail-over), plus the ablations
// indexed in DESIGN.md. Each experiment returns the raw per-run
// durations and a boxplot summary so the harness can print the same
// series the paper plots.
package figures

import (
	"fmt"
	"io"
	"time"

	"repro/internal/bgp"
	"repro/internal/experiment"
	"repro/internal/idr"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Kind selects which §4 experiment a sweep runs.
type Kind int

// Experiment kinds.
const (
	// Withdrawal: the origin AS withdraws an established prefix
	// (Figure 2).
	Withdrawal Kind = iota
	// Announcement: the origin AS announces a fresh prefix (§4).
	Announcement
	// Failover: the link between the origin and one neighbor fails
	// while the prefix stays reachable (§4).
	Failover
)

// String names the experiment kind.
func (k Kind) String() string {
	switch k {
	case Withdrawal:
		return "withdrawal"
	case Announcement:
		return "announcement"
	case Failover:
		return "failover"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// SweepConfig parameterises one convergence sweep.
type SweepConfig struct {
	// Kind selects the triggering event (default Withdrawal).
	Kind Kind
	// CliqueSize is the number of ASes (default 16, the paper's).
	CliqueSize int
	// SDNCounts lists the cluster sizes to sweep (default 0, 2, ...,
	// CliqueSize).
	SDNCounts []int
	// Runs is the number of seeded repetitions per point (default 10,
	// the paper's boxplots).
	Runs int
	// BaseSeed offsets the per-run seeds.
	BaseSeed int64
	// Timers are the BGP timers (default bgp.DefaultTimers: MRAI 30s
	// with jitter — the jitter is what spreads the boxplots).
	Timers bgp.Timers
	// Debounce is the controller's delayed-recomputation window. The
	// paper does not state its value; the sweeps default to 100ms (the
	// DebounceAblation explores the trade-off). Negative disables.
	Debounce time.Duration
	// Settle is the convergence quiescence window (default derived
	// from the MRAI by the experiment framework).
	Settle time.Duration
	// ProcessingDelay is the per-router per-UPDATE processing cost
	// (default 25ms, approximating Quagga daemons sharing one
	// emulation host as in the paper's Mininet setup). Negative
	// disables it.
	ProcessingDelay time.Duration
	// Timeout bounds one run's convergence wait (default 2h virtual).
	Timeout time.Duration
	// Parallelism bounds how many seeded runs execute concurrently
	// (each run owns a private sim.Kernel, so runs are share-nothing).
	// 0 means GOMAXPROCS; 1 is fully sequential. Results are identical
	// either way: every run is placed by its (SDN count, run) cell.
	Parallelism int
}

func (c *SweepConfig) setDefaults() {
	if c.CliqueSize == 0 {
		c.CliqueSize = 16
	}
	if len(c.SDNCounts) == 0 {
		for k := 0; k <= c.CliqueSize; k += 2 {
			c.SDNCounts = append(c.SDNCounts, k)
		}
	}
	if c.Runs == 0 {
		c.Runs = 10
	}
	if c.Timers == (bgp.Timers{}) {
		c.Timers = bgp.DefaultTimers()
	}
	if c.Timeout == 0 {
		c.Timeout = 2 * time.Hour
	}
	if c.Debounce == 0 {
		c.Debounce = 100 * time.Millisecond
	}
	switch {
	case c.ProcessingDelay < 0:
		c.ProcessingDelay = 0
	case c.ProcessingDelay == 0:
		c.ProcessingDelay = 25 * time.Millisecond
	}
}

// Point is one sweep point: a cluster size with its per-run
// convergence times.
type Point struct {
	SDNCount  int
	Fraction  float64
	Durations []time.Duration
	Summary   stats.Summary
}

// RunSweep executes the sweep and returns one Point per SDN count.
// The (SDN count, run) cells fan out across the configured
// parallelism; results are gathered in cell order, so the returned
// series is identical for any Parallelism.
func RunSweep(cfg SweepConfig) ([]Point, error) {
	cfg.setDefaults()
	for _, k := range cfg.SDNCounts {
		if k < 0 || k > cfg.CliqueSize {
			return nil, fmt.Errorf("figures: SDN count %d outside 0..%d", k, cfg.CliqueSize)
		}
	}
	durations := make([][]time.Duration, len(cfg.SDNCounts))
	for i := range durations {
		durations[i] = make([]time.Duration, cfg.Runs)
	}
	err := Runner{Parallelism: cfg.Parallelism}.Do(len(cfg.SDNCounts)*cfg.Runs, func(i int) error {
		ki, run := i/cfg.Runs, i%cfg.Runs
		k := cfg.SDNCounts[ki]
		seed := cfg.BaseSeed + int64(run)*1000 + int64(k)
		d, err := RunOnce(cfg, k, seed)
		if err != nil {
			return fmt.Errorf("figures: %v k=%d run=%d: %w", cfg.Kind, k, run, err)
		}
		durations[ki][run] = d
		return nil
	})
	if err != nil {
		return nil, err
	}
	points := make([]Point, 0, len(cfg.SDNCounts))
	for i, k := range cfg.SDNCounts {
		points = append(points, Point{
			SDNCount:  k,
			Fraction:  float64(k) / float64(cfg.CliqueSize),
			Durations: durations[i],
			Summary:   stats.SummarizeDurations(durations[i]),
		})
	}
	return points, nil
}

// members picks the k cluster members: the highest-numbered ASes, so
// the origin AS1 stays legacy until k = n (matching the paper's
// "remaining ASes use standard BGP").
func members(n, k int) []idr.ASN {
	out := make([]idr.ASN, 0, k)
	for i := n - k; i < n; i++ {
		out = append(out, topology.BaseASN+idr.ASN(i))
	}
	return out
}

// RunOnce executes a single seeded run of the sweep experiment with k
// cluster members and returns its convergence time.
func RunOnce(cfg SweepConfig, k int, seed int64) (time.Duration, error) {
	cfg.setDefaults()
	g, err := topology.Clique(cfg.CliqueSize)
	if err != nil {
		return 0, err
	}
	origin := topology.BaseASN // AS1
	if cfg.Kind == Failover {
		// The fail-over scenario dual-homes a stub origin onto two
		// clique members: failing the primary attachment forces every
		// AS to re-converge onto paths through the backup, with real
		// path exploration in the legacy part.
		origin = topology.BaseASN + idr.ASN(cfg.CliqueSize)
		g.AddNode(origin)
		if err := g.AddEdge(topology.Edge{A: origin, B: topology.BaseASN + 1, Rel: topology.P2P}); err != nil {
			return 0, err
		}
		if err := g.AddEdge(topology.Edge{A: origin, B: topology.BaseASN + 2, Rel: topology.P2P}); err != nil {
			return 0, err
		}
	}
	e, err := experiment.New(experiment.Config{
		Seed:            seed,
		Graph:           g,
		SDNMembers:      members(cfg.CliqueSize, k),
		Timers:          cfg.Timers,
		Debounce:        cfg.Debounce,
		Settle:          cfg.Settle,
		ProcessingDelay: cfg.ProcessingDelay,
	})
	if err != nil {
		return 0, err
	}
	if err := e.Start(); err != nil {
		return 0, err
	}
	if err := e.WaitEstablished(5 * time.Minute); err != nil {
		return 0, err
	}

	switch cfg.Kind {
	case Withdrawal:
		// Announce everything, settle, then withdraw the origin's
		// prefix and measure until quiescence (Figure 2).
		for _, asn := range e.ASNs() {
			if err := e.Announce(asn); err != nil {
				return 0, err
			}
		}
		if _, err := e.WaitConverged(cfg.Timeout); err != nil {
			return 0, err
		}
		return e.MeasureConvergence(func() error { return e.Withdraw(origin) }, cfg.Timeout)

	case Announcement:
		// Announce everything except the origin's prefix, settle, then
		// measure the fresh announcement (§4).
		for _, asn := range e.ASNs() {
			if asn == origin {
				continue
			}
			if err := e.Announce(asn); err != nil {
				return 0, err
			}
		}
		if _, err := e.WaitConverged(cfg.Timeout); err != nil {
			return 0, err
		}
		return e.MeasureConvergence(func() error { return e.Announce(origin) }, cfg.Timeout)

	case Failover:
		// Full convergence, then fail the stub origin's primary
		// attachment (to AS2): all routes to the origin's prefix
		// re-converge via the backup attachment (AS3) (§4).
		for _, asn := range e.ASNs() {
			if err := e.Announce(asn); err != nil {
				return 0, err
			}
		}
		if _, err := e.WaitConverged(cfg.Timeout); err != nil {
			return 0, err
		}
		primary := topology.BaseASN + 1
		return e.MeasureConvergence(func() error { return e.FailLink(origin, primary) }, cfg.Timeout)

	default:
		return 0, fmt.Errorf("figures: unknown experiment kind %v", cfg.Kind)
	}
}

// WriteTable renders the sweep as the rows behind Figure 2's boxplots:
// one line per SDN fraction with the five-number summary in seconds.
func WriteTable(w io.Writer, kind Kind, cliqueSize int, points []Point) error {
	if _, err := fmt.Fprintf(w, "# %s convergence on a %d-AS clique vs fraction of SDN ASes\n",
		kind, cliqueSize); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-8s %-9s %4s %8s %8s %8s %8s %8s %8s\n",
		"sdn_k", "fraction", "n", "min_s", "q1_s", "med_s", "q3_s", "max_s", "mean_s"); err != nil {
		return err
	}
	for _, p := range points {
		s := p.Summary
		if _, err := fmt.Fprintf(w, "%-8d %-9.3f %4d %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n",
			p.SDNCount, p.Fraction, s.N, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean); err != nil {
			return err
		}
	}
	return nil
}

// LinearFit fits median convergence time against SDN fraction and
// returns intercept, slope and r² — the check behind the paper's
// "convergence time can be linearly reduced" claim.
func LinearFit(points []Point) (a, b, r2 float64) {
	xs := make([]float64, len(points))
	ys := make([]float64, len(points))
	for i, p := range points {
		xs[i] = p.Fraction
		ys[i] = p.Summary.Median
	}
	return stats.LinearFit(xs, ys)
}
