package figures

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bgp"
)

// fastCfg shrinks the sweeps so the shape checks run in seconds of
// wall time while keeping the protocol dynamics.
func fastCfg(kind Kind) SweepConfig {
	timers := bgp.DefaultTimers()
	timers.MRAI = 10 * time.Second
	return SweepConfig{
		Kind:       kind,
		CliqueSize: 8,
		SDNCounts:  []int{0, 4, 8},
		Runs:       3,
		BaseSeed:   1,
		Timers:     timers,
	}
}

func TestFig2WithdrawalShape(t *testing.T) {
	points, err := RunSweep(fastCfg(Withdrawal))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// The paper's headline: convergence falls as the SDN fraction
	// grows, roughly linearly.
	med := func(i int) float64 { return points[i].Summary.Median }
	if !(med(0) > med(1) && med(1) > med(2)) {
		t.Fatalf("medians not decreasing: %.3f %.3f %.3f", med(0), med(1), med(2))
	}
	// Full deployment is dramatically faster than pure BGP.
	if med(2)*5 > med(0) {
		t.Fatalf("full SDN should be >5x faster: pure=%.3fs full=%.3fs", med(0), med(2))
	}
	// Pure BGP should be in the tens of seconds with MRAI 10s on an
	// 8-clique (path exploration over multiple rounds).
	if med(0) < 10 {
		t.Fatalf("pure BGP converged suspiciously fast: %.3fs", med(0))
	}
	_, slope, r2 := LinearFit(points)
	if slope >= 0 {
		t.Fatalf("slope = %v, want negative", slope)
	}
	if r2 < 0.7 {
		t.Logf("note: linear fit r2 = %.2f (3-point fast config)", r2)
	}
}

func TestFig2BoxplotSpread(t *testing.T) {
	// MRAI jitter must spread the runs: the boxplot has nonzero IQR
	// at the pure-BGP point.
	cfg := fastCfg(Withdrawal)
	cfg.SDNCounts = []int{0}
	cfg.Runs = 5
	points, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := points[0].Summary
	if s.Max == s.Min {
		t.Fatalf("no spread across seeded runs: %+v", s)
	}
}

func TestAnnouncementSmallerEffect(t *testing.T) {
	w, err := RunSweep(fastCfg(Withdrawal))
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunSweep(fastCfg(Announcement))
	if err != nil {
		t.Fatal(err)
	}
	// §4: announcement does not show the (large) linear reduction.
	// Compare absolute savings between 0% and 100% deployment.
	wSave := w[0].Summary.Median - w[len(w)-1].Summary.Median
	aSave := a[0].Summary.Median - a[len(a)-1].Summary.Median
	if aSave >= wSave {
		t.Fatalf("announcement saving (%.3fs) should be smaller than withdrawal saving (%.3fs)", aSave, wSave)
	}
	// Announcements converge fast in absolute terms (flooding, not
	// path exploration).
	if a[0].Summary.Median > w[0].Summary.Median/4 {
		t.Fatalf("announcement (%.3fs) should be much faster than withdrawal (%.3fs)",
			a[0].Summary.Median, w[0].Summary.Median)
	}
}

func TestFailoverSmallerEffect(t *testing.T) {
	w, err := RunSweep(fastCfg(Withdrawal))
	if err != nil {
		t.Fatal(err)
	}
	f, err := RunSweep(fastCfg(Failover))
	if err != nil {
		t.Fatal(err)
	}
	wSave := w[0].Summary.Median - w[len(w)-1].Summary.Median
	fSave := f[0].Summary.Median - f[len(f)-1].Summary.Median
	if fSave >= wSave {
		t.Fatalf("failover saving (%.3fs) should be smaller than withdrawal saving (%.3fs)", fSave, wSave)
	}
}

func TestWriteTable(t *testing.T) {
	cfg := fastCfg(Withdrawal)
	cfg.SDNCounts = []int{0, 8}
	cfg.Runs = 2
	points, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteTable(&sb, Withdrawal, 8, points); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"withdrawal", "fraction", "med_s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 4 {
		t.Fatalf("table lines = %d, want 4:\n%s", lines, out)
	}
}

func TestRunSweepValidation(t *testing.T) {
	cfg := fastCfg(Withdrawal)
	cfg.SDNCounts = []int{99}
	if _, err := RunSweep(cfg); err == nil {
		t.Fatal("out-of-range SDN count should error")
	}
	if _, err := RunOnce(SweepConfig{Kind: Kind(99), CliqueSize: 4, Runs: 1,
		Timers: bgp.Timers{MRAI: time.Second}}, 0, 1); err == nil {
		t.Fatal("unknown kind should error")
	}
	if Withdrawal.String() != "withdrawal" || Kind(9).String() == "" {
		t.Fatal("Kind.String wrong")
	}
}

func TestMRAISweepScales(t *testing.T) {
	points, err := MRAISweep(6, 2, []time.Duration{5 * time.Second, 20 * time.Second}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	// Tdown grows with MRAI.
	if points[1].Summary.Median <= points[0].Summary.Median {
		t.Fatalf("larger MRAI should converge slower: %v vs %v",
			points[0].Summary.Median, points[1].Summary.Median)
	}
	var sb strings.Builder
	if err := WriteMRAITable(&sb, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "mrai_s") {
		t.Fatal("table header missing")
	}
}

func TestCliqueSizeSweepScales(t *testing.T) {
	timers := bgp.DefaultTimers()
	timers.MRAI = 5 * time.Second
	points, err := CliqueSizeSweep([]int{4, 10}, 2, timers, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if points[1].Summary.Median <= points[0].Summary.Median {
		t.Fatalf("larger clique should converge slower: %v vs %v",
			points[0].Summary.Median, points[1].Summary.Median)
	}
	var sb strings.Builder
	if err := WriteSizeTable(&sb, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "clique") {
		t.Fatal("table header missing")
	}
}

func TestDebounceAblationTradeoff(t *testing.T) {
	timers := bgp.DefaultTimers()
	timers.MRAI = 5 * time.Second
	points, err := DebounceAblation(6, 3, 2,
		[]time.Duration{-1, 2 * time.Second}, timers, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	// The debounce rate-limits controller work: fewer recomputation
	// batches than the no-debounce ablation.
	if points[1].Recomputes >= points[0].Recomputes {
		t.Fatalf("debounce should reduce recomputes: %v vs %v",
			points[0].Recomputes, points[1].Recomputes)
	}
	var sb strings.Builder
	if err := WriteDebounceTable(&sb, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "recomputes") {
		t.Fatal("table header missing")
	}
}

func TestSubClusterSurvivesSplit(t *testing.T) {
	timers := bgp.DefaultTimers()
	timers.MRAI = 2 * time.Second
	res, err := SubClusterExperiment(timers, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReachableBeforeSplit {
		t.Fatal("cluster prefixes unreachable before split")
	}
	// The paper's design goal: the intra-cluster link failure must
	// not isolate the sub-clusters — legacy paths reconnect them.
	if !res.ReachableAfterSplit {
		t.Fatal("sub-clusters isolated after split; legacy reconnection failed")
	}
}

func TestPathExplorationDropsWithSDN(t *testing.T) {
	timers := bgp.DefaultTimers()
	timers.MRAI = 5 * time.Second
	points, err := PathExplorationSweep(8, []int{0, 6}, timers, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	if points[1].BestChanges >= points[0].BestChanges {
		t.Fatalf("SDN should reduce path exploration: %d vs %d",
			points[0].BestChanges, points[1].BestChanges)
	}
	if points[1].Updates >= points[0].Updates {
		t.Fatalf("SDN should reduce update count: %d vs %d",
			points[0].Updates, points[1].Updates)
	}
}

func TestFlapStabilityAblation(t *testing.T) {
	timers := bgp.DefaultTimers()
	timers.MRAI = 5 * time.Second
	points, err := FlapStabilityAblation(6, 4, 10*time.Second, timers, 13, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	byMode := map[string]FlapPoint{}
	for _, p := range points {
		byMode[p.Mode] = p
	}
	// Both stability mechanisms must beat plain BGP on update load.
	if byMode["damping"].Updates >= byMode["bgp"].Updates {
		t.Fatalf("damping should reduce updates: %d vs %d",
			byMode["damping"].Updates, byMode["bgp"].Updates)
	}
	if byMode["sdn"].Updates >= byMode["bgp"].Updates {
		t.Fatalf("sdn should reduce updates: %d vs %d",
			byMode["sdn"].Updates, byMode["bgp"].Updates)
	}
	// The network must be usable once the origin stabilises.
	for _, mode := range []string{"bgp", "sdn", "damping"} {
		if !byMode[mode].ReachableAfter {
			t.Fatalf("%s: prefix unreachable after the storm", mode)
		}
	}
	var sb strings.Builder
	if err := WriteFlapTable(&sb, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "reachable_after") {
		t.Fatal("table header missing")
	}
}
