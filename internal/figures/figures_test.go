package figures

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/lab"
)

// build resolves a registry spec, applies the test's mutation, and
// runs the sweep.
func build(t *testing.T, name string, o Options, mutate func(*lab.Sweep)) *lab.SweepResult {
	t.Helper()
	spec, ok := Lookup(name)
	if !ok {
		t.Fatalf("unknown experiment %q", name)
	}
	sw, err := spec.Build(o)
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(&sw)
	}
	res, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// fastOpts shrinks the Figure 2 family so the shape checks run in
// seconds of wall time while keeping the protocol dynamics — the same
// configuration the pre-refactor test suite used, so the pinned
// durations below are the pre-refactor numbers.
func fastOpts() Options {
	topo := lab.TopoSpec{Kind: "clique", N: 8}
	return Options{
		Topo:      &topo,
		SDNCounts: []int{0, 4, 8},
		Runs:      3,
		BaseSeed:  1,
		MRAI:      10 * time.Second,
	}
}

// fastWithdrawal caches the shared fast Figure 2 sweep across tests.
var fastWithdrawal = sync.OnceValues(func() (*lab.SweepResult, error) {
	spec, _ := Lookup("fig2")
	sw, err := spec.Build(fastOpts())
	if err != nil {
		return nil, err
	}
	return sw.Run()
})

func mustFastWithdrawal(t *testing.T) *lab.SweepResult {
	t.Helper()
	res, err := fastWithdrawal()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func pinDurations(t *testing.T, c lab.Cell, want []time.Duration) {
	t.Helper()
	got := c.Durations()
	if len(got) != len(want) {
		t.Fatalf("cell %s: %d runs, want %d", c.Label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %s run %d: %v, want the pre-refactor %v (same seeds must reproduce identical results)",
				c.Label, i, got[i], want[i])
		}
	}
}

// TestFig2FastEquivalence pins that the declarative fig2 spec
// reproduces the pre-refactor sweep exactly for the same seeds, and
// keeps the paper's headline shape.
func TestFig2FastEquivalence(t *testing.T) {
	res := mustFastWithdrawal(t)
	if len(res.Cells) != 3 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	// Exact per-run durations captured from the pre-refactor
	// figures.RunSweep for the identical configuration and seeds.
	pinDurations(t, res.Cells[0], []time.Duration{49775537696, 45376201332, 45091586428})
	pinDurations(t, res.Cells[1], []time.Duration{19211445023, 18655303436, 19149975571})
	pinDurations(t, res.Cells[2], []time.Duration{100 * time.Millisecond, 100 * time.Millisecond, 100 * time.Millisecond})

	// The paper's headline: convergence falls as the SDN fraction
	// grows, and full deployment is dramatically faster.
	med := func(i int) float64 { return res.Cells[i].Summary.Median }
	if !(med(0) > med(1) && med(1) > med(2)) {
		t.Fatalf("medians not decreasing: %.3f %.3f %.3f", med(0), med(1), med(2))
	}
	if med(2)*5 > med(0) {
		t.Fatalf("full SDN should be >5x faster: pure=%.3fs full=%.3fs", med(0), med(2))
	}
	if _, slope, _, ok := res.Fit(); !ok || slope >= 0 {
		t.Fatalf("slope = %v (ok=%v), want negative", slope, ok)
	}
}

// TestFig2PaperConfigEquivalence pins the benchmark configuration
// (16-AS clique, paper timers, seeds 1..) to the EXPERIMENTS.md
// scientific metrics: s-pure-median 350.3, slope -369.8, r² 0.9885.
func TestFig2PaperConfigEquivalence(t *testing.T) {
	res := build(t, "fig2", Options{SDNCounts: []int{0, 4, 8, 12, 16}, Runs: 3, BaseSeed: 1}, nil)
	pinDurations(t, res.Cells[0], []time.Duration{352108071933, 346901627464, 350283820015})
	pinDurations(t, res.Cells[4], []time.Duration{100 * time.Millisecond, 100 * time.Millisecond, 100 * time.Millisecond})
	a, b, r2, ok := res.Fit()
	if !ok {
		t.Fatal("fit unavailable")
	}
	for _, c := range []struct {
		name string
		got  float64
		want string
	}{
		{"s-pure-median", res.Cells[0].Summary.Median, "350.284"},
		{"intercept", a, "358.154"},
		{"slope", b, "-369.785"},
		{"r2", r2, "0.989"},
	} {
		if got := fmt.Sprintf("%.3f", c.got); got != c.want {
			t.Fatalf("%s = %s, want the pre-refactor %s", c.name, got, c.want)
		}
	}
}

// TestFig2PolicyPermitAllEquivalence pins that an explicit
// -policy permit-all is the identity: the same paper configuration
// with the permit-all template spelled out reproduces the pre-policy
// fig2 numbers exactly — s-pure-median 350.284, slope −369.785,
// r² 0.989 — so wiring policies through the evaluation API changed
// nothing for policy-free trials.
func TestFig2PolicyPermitAllEquivalence(t *testing.T) {
	opts := Options{
		SDNCounts: []int{0, 4, 8, 12, 16},
		Runs:      3,
		BaseSeed:  1,
		Policy:    lab.PolicySpec{Kind: lab.PolicyPermitAll},
	}
	res := build(t, "fig2", opts, nil)
	if got := res.Policy.String(); got != lab.PolicyPermitAll {
		t.Fatalf("result policy echo = %q, want %q", got, lab.PolicyPermitAll)
	}
	pinDurations(t, res.Cells[0], []time.Duration{352108071933, 346901627464, 350283820015})
	pinDurations(t, res.Cells[4], []time.Duration{100 * time.Millisecond, 100 * time.Millisecond, 100 * time.Millisecond})
	a, b, r2, ok := res.Fit()
	if !ok {
		t.Fatal("fit unavailable")
	}
	for _, c := range []struct {
		name string
		got  float64
		want string
	}{
		{"s-pure-median", res.Cells[0].Summary.Median, "350.284"},
		{"intercept", a, "358.154"},
		{"slope", b, "-369.785"},
		{"r2", r2, "0.989"},
	} {
		if got := fmt.Sprintf("%.3f", c.got); got != c.want {
			t.Fatalf("%s = %s under explicit permit-all, want the policy-free %s", c.name, got, c.want)
		}
	}
}

func TestAnnouncementSmallerEffect(t *testing.T) {
	w := mustFastWithdrawal(t)
	a := build(t, "announce", fastOpts(), nil)
	// Pre-refactor pins for the same seeds.
	pinDurations(t, a.Cells[0], []time.Duration{187854442, 212627597, 201954950})
	// §4: announcement does not show the (large) linear reduction.
	// Compare absolute savings between 0% and 100% deployment.
	wSave := w.Cells[0].Summary.Median - w.Cells[len(w.Cells)-1].Summary.Median
	aSave := a.Cells[0].Summary.Median - a.Cells[len(a.Cells)-1].Summary.Median
	if aSave >= wSave {
		t.Fatalf("announcement saving (%.3fs) should be smaller than withdrawal saving (%.3fs)", aSave, wSave)
	}
	// Announcements converge fast in absolute terms (flooding, not
	// path exploration).
	if a.Cells[0].Summary.Median > w.Cells[0].Summary.Median/4 {
		t.Fatalf("announcement (%.3fs) should be much faster than withdrawal (%.3fs)",
			a.Cells[0].Summary.Median, w.Cells[0].Summary.Median)
	}
}

func TestFailoverSmallerEffect(t *testing.T) {
	w := mustFastWithdrawal(t)
	f := build(t, "failover", fastOpts(), nil)
	pinDurations(t, f.Cells[0], []time.Duration{205762468, 195346724, 183601288})
	wSave := w.Cells[0].Summary.Median - w.Cells[len(w.Cells)-1].Summary.Median
	fSave := f.Cells[0].Summary.Median - f.Cells[len(f.Cells)-1].Summary.Median
	if fSave >= wSave {
		t.Fatalf("failover saving (%.3fs) should be smaller than withdrawal saving (%.3fs)", fSave, wSave)
	}
	// After the fail-over the prefix must stay reachable via the
	// backup attachment — the uniform Result exposes the check.
	for _, c := range f.Cells {
		if !c.AllReachable() {
			t.Fatalf("cell %s: origin unreachable after fail-over", c.Label)
		}
	}
}

func TestMRAIAblationScales(t *testing.T) {
	topo := lab.TopoSpec{Kind: "clique", N: 6}
	res := build(t, "mrai", Options{Topo: &topo, Runs: 2, BaseSeed: 3}, func(sw *lab.Sweep) {
		sw.Axis = lab.MRAIs(5*time.Second, 20*time.Second)
	})
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	// Pre-refactor medians: 16.621s and 68.459s.
	for i, want := range []string{"16.621", "68.459"} {
		if got := fmt.Sprintf("%.3f", res.Cells[i].Summary.Median); got != want {
			t.Fatalf("cell %d median = %s, want the pre-refactor %s", i, got, want)
		}
	}
	// Tdown grows with MRAI.
	if res.Cells[1].Summary.Median <= res.Cells[0].Summary.Median {
		t.Fatalf("larger MRAI should converge slower: %v vs %v",
			res.Cells[0].Summary.Median, res.Cells[1].Summary.Median)
	}
}

func TestSizeAblationScales(t *testing.T) {
	res := build(t, "size", Options{Runs: 2, BaseSeed: 5, MRAI: 5 * time.Second}, func(sw *lab.Sweep) {
		sw.Axis = lab.TopoSizes(4, 10)
	})
	// Pre-refactor medians: 8.756s and 34.909s.
	for i, want := range []string{"8.756", "34.909"} {
		if got := fmt.Sprintf("%.3f", res.Cells[i].Summary.Median); got != want {
			t.Fatalf("cell %d median = %s, want the pre-refactor %s", i, got, want)
		}
	}
	if res.Cells[1].Summary.Median <= res.Cells[0].Summary.Median {
		t.Fatalf("larger clique should converge slower: %v vs %v",
			res.Cells[0].Summary.Median, res.Cells[1].Summary.Median)
	}
}

func TestDebounceTradeoff(t *testing.T) {
	topo := lab.TopoSpec{Kind: "clique", N: 6}
	placement := lab.Placement{Strategy: lab.PlaceLast, K: 3}
	res := build(t, "debounce",
		Options{Topo: &topo, Placement: &placement, Runs: 2, BaseSeed: 7, MRAI: 5 * time.Second},
		func(sw *lab.Sweep) { sw.Axis = lab.Debounces(-1, 2*time.Second) })
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	// Pre-refactor recomputation means: 15 without debounce, 2 with.
	if got := res.Cells[0].MeanRecomputes(); got != 15 {
		t.Fatalf("no-debounce recomputes = %v, want the pre-refactor 15", got)
	}
	if got := res.Cells[1].MeanRecomputes(); got != 2 {
		t.Fatalf("2s-debounce recomputes = %v, want the pre-refactor 2", got)
	}
	// The debounce rate-limits controller work.
	if res.Cells[1].MeanRecomputes() >= res.Cells[0].MeanRecomputes() {
		t.Fatalf("debounce should reduce recomputes: %v vs %v",
			res.Cells[0].MeanRecomputes(), res.Cells[1].MeanRecomputes())
	}
}

func TestExplorationDropsWithSDN(t *testing.T) {
	res := build(t, "exploration",
		Options{SDNCounts: []int{0, 6}, BaseSeed: 11, MRAI: 5 * time.Second}, nil)
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	// Pre-refactor pins: 94/8 best-path changes, 222/20 updates.
	for i, want := range []struct{ changes, updates float64 }{{94, 222}, {8, 20}} {
		if got := res.Cells[i].MeanBestPathChanges(); got != want.changes {
			t.Fatalf("cell %d best changes = %v, want the pre-refactor %v", i, got, want.changes)
		}
		if got := res.Cells[i].MeanUpdatesSent(); got != want.updates {
			t.Fatalf("cell %d updates = %v, want the pre-refactor %v", i, got, want.updates)
		}
	}
	if res.Cells[1].MeanBestPathChanges() >= res.Cells[0].MeanBestPathChanges() {
		t.Fatal("SDN should reduce path exploration")
	}
	if res.Cells[1].MeanUpdatesSent() >= res.Cells[0].MeanUpdatesSent() {
		t.Fatal("SDN should reduce update count")
	}
}

func TestFlapStabilityAblation(t *testing.T) {
	topo := lab.TopoSpec{Kind: "clique", N: 6}
	res := build(t, "flap", Options{Topo: &topo, BaseSeed: 13, MRAI: 5 * time.Second},
		func(sw *lab.Sweep) {
			sw.Base.FlapCycles = 4
			sw.Base.FlapPeriod = 10 * time.Second
		})
	if len(res.Cells) != 3 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	byMode := map[string]lab.Cell{}
	for _, c := range res.Cells {
		byMode[c.Label] = c
	}
	// Pre-refactor update counts for the same seeds.
	for mode, want := range map[string]float64{"bgp": 277, "damping": 211, "sdn": 134} {
		if got := byMode[mode].MeanUpdatesSent(); got != want {
			t.Fatalf("%s updates = %v, want the pre-refactor %v", mode, got, want)
		}
	}
	// Both stability mechanisms must beat plain BGP on update load,
	// and the network must be usable once the origin stabilises.
	for _, mode := range []string{"damping", "sdn"} {
		if byMode[mode].MeanUpdatesSent() >= byMode["bgp"].MeanUpdatesSent() {
			t.Fatalf("%s should reduce updates below plain BGP", mode)
		}
	}
	for mode, c := range byMode {
		if !c.AllReachable() {
			t.Fatalf("%s: prefix unreachable after the storm", mode)
		}
	}
}

func TestSubClusterSurvivesSplit(t *testing.T) {
	timers := bgp.DefaultTimers()
	timers.MRAI = 2 * time.Second
	res, err := SubClusterExperiment(timers, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReachableBeforeSplit {
		t.Fatal("cluster prefixes unreachable before split")
	}
	// The paper's design goal: the intra-cluster link failure must
	// not isolate the sub-clusters — legacy paths reconnect them.
	if !res.ReachableAfterSplit {
		t.Fatal("sub-clusters isolated after split; legacy reconnection failed")
	}
}

func TestRegistry(t *testing.T) {
	want := []string{"fig2", "announce", "failover", "vf", "policyload", "hijack", "maint", "cascade", "churn", "mrai", "size", "debounce", "exploration", "flap", "ctrlfail", "lossy"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry names = %v, want %v", got, want)
		}
		if _, ok := Lookup(want[i]); !ok {
			t.Fatalf("Lookup(%q) failed", want[i])
		}
	}
	if _, err := Run("warp-drive", Options{}); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

// TestPolicyFamilySpecs pins the declarative shape of the policy
// registry entries without running their (internet-scale) sweeps.
func TestPolicyFamilySpecs(t *testing.T) {
	vf, _ := Lookup("vf")
	sw, err := vf.Build(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sw.Base.Policy.Kind != lab.PolicyGaoRexford {
		t.Fatalf("vf default policy = %q, want gao-rexford", sw.Base.Policy.Kind)
	}
	if sw.Base.Topo.Kind != "internet" {
		t.Fatalf("vf default topology = %q, want internet", sw.Base.Topo.Kind)
	}
	if sw.Axis.Kind != lab.AxisSDNCount {
		t.Fatalf("vf axis = %v, want sdn-count", sw.Axis.Kind)
	}

	pl, _ := Lookup("policyload")
	sw, err = pl.Build(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sw.Axis.Kind != lab.AxisPolicy || sw.Axis.Len() != 3 {
		t.Fatalf("policyload axis = %v len %d, want a 3-value policy axis", sw.Axis.Kind, sw.Axis.Len())
	}
	if _, err := pl.Build(Options{Policy: lab.PolicySpec{Kind: lab.PolicyGaoRexford}}); err == nil {
		t.Fatal("policyload must reject -policy (it sweeps the policy itself)")
	}
	if _, err := pl.Build(Options{SDNCounts: []int{1}}); err == nil {
		t.Fatal("policyload must reject an SDN-count list")
	}

	hj, _ := Lookup("hijack")
	sw, err = hj.Build(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sw.Base.Event != lab.Hijack {
		t.Fatalf("hijack event = %v", sw.Base.Event)
	}
	// The default axis must stop short of full deployment: a hijack
	// needs a legacy attacker.
	last := sw.Axis.Ints[len(sw.Axis.Ints)-1]
	if last >= sw.Base.Topo.Nodes() {
		t.Fatalf("hijack default axis reaches full deployment (K=%d of %d)", last, sw.Base.Topo.Nodes())
	}
}

// TestWorkloadFamilySpecs pins the declarative shape of the workload
// registry entries and runs a shrunk maintenance-window sweep end to
// end: per-epoch aggregates must flow through to the cells and the
// network must end reachable after the re-announce.
func TestWorkloadFamilySpecs(t *testing.T) {
	maint, ok := Lookup("maint")
	if !ok {
		t.Fatal("maint missing from the registry")
	}
	topo := lab.TopoSpec{Kind: "clique", N: 6}
	sw, err := maint.Build(Options{Topo: &topo, SDNCounts: []int{0, 3}, Runs: 2, BaseSeed: 1, MRAI: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Base.Workload) != 2 || sw.Base.Workload[0].Kind != lab.KindWithdrawal || sw.Base.Workload[1].Kind != lab.KindAnnouncement {
		t.Fatalf("maint workload = %v", sw.Base.Workload)
	}
	res, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if len(c.Epochs) != 2 {
			t.Fatalf("cell %s: epoch aggregates = %d, want 2", c.Label, len(c.Epochs))
		}
		if !c.AllReachable() {
			t.Fatalf("cell %s: origin unreachable after the maintenance window", c.Label)
		}
		if c.Epochs[1].Summary.Median <= 0 {
			t.Fatalf("cell %s: no re-convergence measured", c.Label)
		}
	}
	// The maintenance window's costly phase is the withdrawal (path
	// exploration); the re-announce floods quickly — and
	// centralization shrinks the withdrawal epoch.
	if res.Cells[0].Epochs[0].Summary.Median < 4*res.Cells[0].Epochs[1].Summary.Median {
		t.Fatalf("withdraw epoch (%.3f) should dwarf the re-announce epoch (%.3f)",
			res.Cells[0].Epochs[0].Summary.Median, res.Cells[0].Epochs[1].Summary.Median)
	}
	if res.Cells[1].Epochs[0].Summary.Median >= res.Cells[0].Epochs[0].Summary.Median {
		t.Fatalf("SDN withdraw epoch not faster: %.3f vs %.3f",
			res.Cells[1].Epochs[0].Summary.Median, res.Cells[0].Epochs[0].Summary.Median)
	}

	cascade, _ := Lookup("cascade")
	sw, err = cascade.Build(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Base.Workload) != 2 || sw.Base.Workload[0].Kind != lab.KindFailover || sw.Base.Workload[1].Kind != lab.KindHijack {
		t.Fatalf("cascade workload = %v", sw.Base.Workload)
	}
	if sw.Base.Policy.Kind != lab.PolicyGaoRexford || sw.Base.Topo.Kind != "internet" {
		t.Fatalf("cascade base = policy %q topo %q", sw.Base.Policy.Kind, sw.Base.Topo.Kind)
	}
	last := sw.Axis.Ints[len(sw.Axis.Ints)-1]
	if last >= sw.Base.Topo.Nodes() {
		t.Fatalf("cascade default axis reaches full deployment (K=%d of %d)", last, sw.Base.Topo.Nodes())
	}

	churn, _ := Lookup("churn")
	sw, err = churn.Build(Options{BaseSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Base.Workload) != 6 {
		t.Fatalf("churn workload length = %d, want 6", len(sw.Base.Workload))
	}
	sw2, err := churn.Build(Options{BaseSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if sw.Base.Workload.String() != sw2.Base.Workload.String() {
		t.Fatal("churn schedule must be deterministic in the base seed")
	}

	// The workload figures fix their schedules; only the Figure 2
	// family honors -workload.
	custom := lab.Workload{{Kind: lab.KindWithdrawal}}
	for _, name := range []string{"maint", "cascade", "churn", "vf", "hijack", "debounce", "exploration", "mrai", "size", "flap", "policyload", "ctrlfail", "lossy"} {
		spec, _ := Lookup(name)
		if _, err := spec.Build(Options{Workload: custom}); err == nil {
			t.Fatalf("%s: -workload override should error", name)
		}
	}
	fig2, _ := Lookup("fig2")
	sw, err = fig2.Build(Options{Workload: custom})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Base.Workload) != 1 {
		t.Fatalf("fig2 must honor -workload, got %v", sw.Base.Workload)
	}
}

// TestChaosFamilySpecs pins the declarative shape of the chaos
// registry entries and runs a shrunk controller-crash sweep end to
// end: the K=0 baseline must treat the crash and recovery as no-ops
// while the clustered cells pay (and survive) the degraded window.
func TestChaosFamilySpecs(t *testing.T) {
	cf, ok := Lookup("ctrlfail")
	if !ok {
		t.Fatal("ctrlfail missing from the registry")
	}
	sw, err := cf.Build(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Base.Workload) != 4 ||
		sw.Base.Workload[0].Kind != lab.KindCtrlDown ||
		sw.Base.Workload[1].Kind != lab.KindWithdrawal ||
		sw.Base.Workload[2].Kind != lab.KindCtrlUp ||
		sw.Base.Workload[3].Kind != lab.KindAnnouncement {
		t.Fatalf("ctrlfail workload = %v", sw.Base.Workload)
	}

	lo, ok := Lookup("lossy")
	if !ok {
		t.Fatal("lossy missing from the registry")
	}
	sw, err = lo.Build(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sw.Axis.Kind != lab.AxisLoss || sw.Axis.Len() < 3 {
		t.Fatalf("lossy axis = %v len %d, want a loss axis", sw.Axis.Kind, sw.Axis.Len())
	}
	if sw.Axis.Floats[0] != 0 {
		t.Fatalf("lossy axis must anchor at loss 0, got %v", sw.Axis.Floats)
	}
	if k, n := sw.Base.Placement.K, sw.Base.Topo.Nodes(); k != n/2 {
		t.Fatalf("lossy placement K = %d, want half of %d", k, n)
	}
	if _, err := lo.Build(Options{SDNCounts: []int{1}}); err == nil {
		t.Fatal("lossy must reject an SDN-count list (the axis is loss)")
	}

	// A shrunk crash sweep end to end: at K=0 the crash/recover epochs
	// are no-ops, at K>0 the crashed cluster pays the pure-BGP price
	// for the headless withdrawal.
	topo := lab.TopoSpec{Kind: "clique", N: 6}
	res := build(t, "ctrlfail",
		Options{Topo: &topo, SDNCounts: []int{0, 3}, Runs: 2, BaseSeed: 1, MRAI: 10 * time.Second}, nil)
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if len(c.Epochs) != 4 {
			t.Fatalf("cell %s: epoch aggregates = %d, want 4", c.Label, len(c.Epochs))
		}
		if !c.AllReachable() {
			t.Fatalf("cell %s: network unreachable after recovery", c.Label)
		}
	}
	// At K=0 the crash and recovery are no-ops: no cluster exists, so
	// those epochs must measure zero routing activity.
	for _, i := range []int{0, 2} {
		if got := res.Cells[0].Epochs[i].Summary.Median; got != 0 {
			t.Fatalf("K=0 epoch %d median = %v, want 0 (crash/recover must be no-ops without a cluster)", i, got)
		}
	}
	// The headless withdrawal converges like pure BGP in both cells:
	// the crash erases the centralization advantage.
	w0 := res.Cells[0].Epochs[1].Summary.Median
	w3 := res.Cells[1].Epochs[1].Summary.Median
	if w0 <= 0 || w3 <= 0 {
		t.Fatalf("withdrawal epochs not measured: %v, %v", w0, w3)
	}
	if w3 < w0/2 {
		t.Fatalf("crashed cluster converged too fast (%.3fs vs pure %.3fs): the crash should erase the SDN advantage", w3, w0)
	}
}

func TestRegistryValidatesSDNCounts(t *testing.T) {
	if _, err := Run("fig2", Options{SDNCounts: []int{99}, Runs: 1}); err == nil {
		t.Fatal("out-of-range SDN count should error before running")
	}
}

// TestDebounceDisabledExpressible pins the satellite fix: a disabled
// debounce (negative) flows from Options through the spec into the
// trial, where the shared zero/negative convention applies.
func TestDebounceDisabledExpressible(t *testing.T) {
	off := time.Duration(-1)
	spec, _ := Lookup("fig2")
	sw, err := spec.Build(Options{Debounce: &off})
	if err != nil {
		t.Fatal(err)
	}
	if sw.Base.Debounce >= 0 {
		t.Fatalf("Base.Debounce = %v, want negative (disabled)", sw.Base.Debounce)
	}
	// And the default stays the paper sweeps' 100ms.
	sw, err = spec.Build(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sw.Base.Debounce != 100*time.Millisecond {
		t.Fatalf("default Base.Debounce = %v, want 100ms", sw.Base.Debounce)
	}
}

// TestSpecsRejectInapplicableOverrides pins that overrides a spec
// cannot honor error out instead of being silently dropped.
func TestSpecsRejectInapplicableOverrides(t *testing.T) {
	p := lab.Placement{Strategy: lab.PlaceLast, K: 2}
	for _, name := range []string{"mrai", "size", "flap"} {
		spec, _ := Lookup(name)
		if _, err := spec.Build(Options{Placement: &p}); err == nil {
			t.Fatalf("%s: placement override should error", name)
		}
		if _, err := spec.Build(Options{SDNCounts: []int{0, 2}}); err == nil {
			t.Fatalf("%s: SDN-count override should error", name)
		}
	}
	spec, _ := Lookup("debounce")
	if _, err := spec.Build(Options{SDNCounts: []int{0, 2}}); err == nil {
		t.Fatal("debounce: SDN-count override should error")
	}
	if _, err := spec.Build(Options{Placement: &p}); err != nil {
		t.Fatalf("debounce honors placement, got error: %v", err)
	}
	// Axis-parameter overrides on the axis itself are rejected too.
	mraiSpec, _ := Lookup("mrai")
	if _, err := mraiSpec.Build(Options{MRAI: time.Second}); err == nil {
		t.Fatal("mrai: -mrai override should error")
	}
	off := time.Duration(-1)
	if _, err := spec.Build(Options{Debounce: &off}); err == nil {
		t.Fatal("debounce: -debounce override should error")
	}
	flapSpec, _ := Lookup("flap")
	if _, err := flapSpec.Build(Options{Debounce: &off}); err == nil {
		t.Fatal("flap: -debounce override should error")
	}
	none := lab.Placement{Strategy: lab.PlaceNone}
	if _, err := spec.Build(Options{Placement: &none}); err == nil {
		t.Fatal("debounce: -placement none should error (no controller to debounce)")
	}
	// A bare strategy override keeps the spec's half-network cluster
	// size instead of silently selecting zero members.
	bare := lab.Placement{Strategy: lab.PlaceDegree}
	sw, err := spec.Build(Options{Placement: &bare})
	if err != nil {
		t.Fatal(err)
	}
	if sw.Base.Placement.Strategy != lab.PlaceDegree || sw.Base.Placement.K != 4 {
		t.Fatalf("bare degree placement on debounce = %+v, want K=4", sw.Base.Placement)
	}
	// The size axis over a grid would mislabel widths as AS counts.
	grid := lab.TopoSpec{Kind: "grid", N: 2, M: 2}
	if _, err := Run("size", Options{Topo: &grid, Runs: 1}); err == nil {
		t.Fatal("size: grid topology should be rejected")
	}
}
