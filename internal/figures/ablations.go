package figures

import (
	"fmt"
	"io"
	"time"

	"repro/internal/bgp"
	"repro/internal/experiment"
	"repro/internal/idr"
	"repro/internal/stats"
	"repro/internal/topology"
)

// MRAIPoint is one MRAI-sweep result.
type MRAIPoint struct {
	MRAI    time.Duration
	Summary stats.Summary
}

// MRAISweep measures pure-BGP withdrawal convergence on a clique as a
// function of the MRAI — the sensitivity ablation behind DESIGN.md's
// experiment index (BGP's Tdown scales with the advertisement
// interval). The (MRAI, run) cells fan out across parallelism workers
// (0 = GOMAXPROCS, 1 = sequential) with deterministic results.
func MRAISweep(cliqueSize, runs int, mrais []time.Duration, baseSeed int64, parallelism int) ([]MRAIPoint, error) {
	if cliqueSize == 0 {
		cliqueSize = 8
	}
	if runs == 0 {
		runs = 5
	}
	if len(mrais) == 0 {
		mrais = []time.Duration{5 * time.Second, 15 * time.Second, 30 * time.Second, 60 * time.Second}
	}
	durations := make([][]time.Duration, len(mrais))
	for i := range durations {
		durations[i] = make([]time.Duration, runs)
	}
	err := Runner{Parallelism: parallelism}.Do(len(mrais)*runs, func(i int) error {
		mi, run := i/runs, i%runs
		timers := bgp.DefaultTimers()
		timers.MRAI = mrais[mi]
		cfg := SweepConfig{
			Kind:       Withdrawal,
			CliqueSize: cliqueSize,
			Runs:       runs,
			BaseSeed:   baseSeed,
			Timers:     timers,
		}
		d, err := RunOnce(cfg, 0, baseSeed+int64(run))
		if err != nil {
			return fmt.Errorf("figures: mrai sweep %v run %d: %w", mrais[mi], run, err)
		}
		durations[mi][run] = d
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]MRAIPoint, 0, len(mrais))
	for i, mrai := range mrais {
		out = append(out, MRAIPoint{MRAI: mrai, Summary: stats.SummarizeDurations(durations[i])})
	}
	return out, nil
}

// SizePoint is one clique-size sweep result.
type SizePoint struct {
	CliqueSize int
	Summary    stats.Summary
}

// CliqueSizeSweep measures pure-BGP withdrawal convergence across
// clique sizes: path exploration grows with the mesh, the effect SDN
// centralization removes. The (size, run) cells fan out across
// parallelism workers with deterministic results.
func CliqueSizeSweep(sizes []int, runs int, timers bgp.Timers, baseSeed int64, parallelism int) ([]SizePoint, error) {
	if len(sizes) == 0 {
		sizes = []int{4, 8, 12, 16}
	}
	if runs == 0 {
		runs = 5
	}
	durations := make([][]time.Duration, len(sizes))
	for i := range durations {
		durations[i] = make([]time.Duration, runs)
	}
	err := Runner{Parallelism: parallelism}.Do(len(sizes)*runs, func(i int) error {
		si, run := i/runs, i%runs
		cfg := SweepConfig{
			Kind:       Withdrawal,
			CliqueSize: sizes[si],
			Runs:       runs,
			BaseSeed:   baseSeed,
			Timers:     timers,
		}
		d, err := RunOnce(cfg, 0, baseSeed+int64(run))
		if err != nil {
			return fmt.Errorf("figures: size sweep n=%d run %d: %w", sizes[si], run, err)
		}
		durations[si][run] = d
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]SizePoint, 0, len(sizes))
	for i, n := range sizes {
		out = append(out, SizePoint{CliqueSize: n, Summary: stats.SummarizeDurations(durations[i])})
	}
	return out, nil
}

// DebouncePoint is one controller-debounce ablation result.
type DebouncePoint struct {
	Debounce time.Duration
	Summary  stats.Summary
	// Recomputes is the mean number of controller recomputation
	// batches per run — the stability metric the debounce trades
	// latency against.
	Recomputes float64
}

// DebounceAblation measures the withdrawal experiment at a fixed SDN
// fraction while varying the controller's delayed-recomputation
// window (the paper's §3 design insight: delay improves stability and
// rate-limits flaps). A negative debounce disables the delay.
func DebounceAblation(cliqueSize, sdnCount, runs int, debounces []time.Duration, timers bgp.Timers, baseSeed int64, parallelism int) ([]DebouncePoint, error) {
	if cliqueSize == 0 {
		cliqueSize = 8
	}
	if sdnCount == 0 {
		sdnCount = cliqueSize / 2
	}
	if runs == 0 {
		runs = 5
	}
	if len(debounces) == 0 {
		debounces = []time.Duration{-1, 500 * time.Millisecond, time.Second, 2 * time.Second}
	}
	type runResult struct {
		d          time.Duration
		recomputes uint64
	}
	results := make([][]runResult, len(debounces))
	for i := range results {
		results[i] = make([]runResult, runs)
	}
	err := Runner{Parallelism: parallelism}.Do(len(debounces)*runs, func(i int) error {
		di, run := i/runs, i%runs
		d, rc, err := debounceRun(cliqueSize, sdnCount, debounces[di], timers, baseSeed+int64(run))
		if err != nil {
			return err
		}
		results[di][run] = runResult{d: d, recomputes: rc}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]DebouncePoint, 0, len(debounces))
	for i, db := range debounces {
		durations := make([]time.Duration, 0, runs)
		var recomputes uint64
		for _, r := range results[i] {
			durations = append(durations, r.d)
			recomputes += r.recomputes
		}
		out = append(out, DebouncePoint{
			Debounce:   db,
			Summary:    stats.SummarizeDurations(durations),
			Recomputes: float64(recomputes) / float64(runs),
		})
	}
	return out, nil
}

// debounceRun executes one seeded withdrawal run at the given debounce
// window, returning its convergence time and controller recomputation
// count.
func debounceRun(cliqueSize, sdnCount int, db time.Duration, timers bgp.Timers, seed int64) (time.Duration, uint64, error) {
	g, err := topology.Clique(cliqueSize)
	if err != nil {
		return 0, 0, err
	}
	e, err := experiment.New(experiment.Config{
		Seed:       seed,
		Graph:      g,
		SDNMembers: members(cliqueSize, sdnCount),
		Timers:     timers,
		Debounce:   db,
	})
	if err != nil {
		return 0, 0, err
	}
	if err := e.Start(); err != nil {
		return 0, 0, err
	}
	if err := e.WaitEstablished(5 * time.Minute); err != nil {
		return 0, 0, err
	}
	for _, asn := range e.ASNs() {
		if err := e.Announce(asn); err != nil {
			return 0, 0, err
		}
	}
	if _, err := e.WaitConverged(2 * time.Hour); err != nil {
		return 0, 0, err
	}
	before := e.Ctrl.Stats().Recomputes
	d, err := e.MeasureConvergence(func() error { return e.Withdraw(topology.BaseASN) }, 2*time.Hour)
	if err != nil {
		return 0, 0, err
	}
	return d, e.Ctrl.Stats().Recomputes - before, nil
}

// SubClusterResult reports the sub-cluster split experiment (design
// goal §2: an intra-cluster link failure must not isolate controlled
// ASes — legacy paths reconnect the sub-clusters).
type SubClusterResult struct {
	// ReachableBeforeSplit and ReachableAfterSplit report whether the
	// two cluster islands could reach each other's prefixes.
	ReachableBeforeSplit, ReachableAfterSplit bool
	// ReconvergenceTime is how long routing took to stabilise after
	// the split.
	ReconvergenceTime time.Duration
}

// SubClusterExperiment builds a ring with two cluster members on
// opposite sides, fails the only intra-cluster link, and verifies the
// islands still reach each other over the legacy world.
func SubClusterExperiment(timers bgp.Timers, seed int64) (SubClusterResult, error) {
	var res SubClusterResult
	// Topology: 1 - m2 - m3 - 4 ring, members {m2, m3} adjacent.
	// After failing m2-m3, the path between them runs over legacy
	// ASes 1 and 4.
	g, err := topology.Ring(4)
	if err != nil {
		return res, err
	}
	membersList := []idr.ASN{2, 3}
	e, err := experiment.New(experiment.Config{
		Seed:       seed,
		Graph:      g,
		SDNMembers: membersList,
		Timers:     timers,
	})
	if err != nil {
		return res, err
	}
	if err := e.Start(); err != nil {
		return res, err
	}
	if err := e.WaitEstablished(5 * time.Minute); err != nil {
		return res, err
	}
	for _, asn := range e.ASNs() {
		if err := e.Announce(asn); err != nil {
			return res, err
		}
	}
	if _, err := e.WaitConverged(time.Hour); err != nil {
		return res, err
	}
	res.ReachableBeforeSplit = e.Reachable(2, 3) && e.Reachable(3, 2)
	d, err := e.MeasureConvergence(func() error { return e.FailLink(2, 3) }, time.Hour)
	if err != nil {
		return res, err
	}
	res.ReconvergenceTime = d
	res.ReachableAfterSplit = e.Reachable(2, 3) && e.Reachable(3, 2)
	return res, nil
}

// ExplorationPoint pairs an SDN count with the total number of best-
// path changes observed during withdrawal convergence — the path
// exploration metric after Oliveira et al. [13].
type ExplorationPoint struct {
	SDNCount    int
	BestChanges int
	Updates     uint64
}

// PathExplorationSweep counts routing churn during the withdrawal
// experiment across SDN fractions, one concurrent run per fraction.
func PathExplorationSweep(cliqueSize int, sdnCounts []int, timers bgp.Timers, seed int64, parallelism int) ([]ExplorationPoint, error) {
	if cliqueSize == 0 {
		cliqueSize = 8
	}
	if len(sdnCounts) == 0 {
		sdnCounts = []int{0, cliqueSize / 4, cliqueSize / 2, 3 * cliqueSize / 4}
	}
	out := make([]ExplorationPoint, len(sdnCounts))
	err := Runner{Parallelism: parallelism}.Do(len(sdnCounts), func(i int) error {
		p, err := explorationRun(cliqueSize, sdnCounts[i], timers, seed)
		if err != nil {
			return err
		}
		out[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// explorationRun executes one withdrawal run at k SDN members,
// counting best-path changes and UPDATE load.
func explorationRun(cliqueSize, k int, timers bgp.Timers, seed int64) (ExplorationPoint, error) {
	g, err := topology.Clique(cliqueSize)
	if err != nil {
		return ExplorationPoint{}, err
	}
	e, err := experiment.New(experiment.Config{
		Seed:       seed,
		Graph:      g,
		SDNMembers: members(cliqueSize, k),
		Timers:     timers,
	})
	if err != nil {
		return ExplorationPoint{}, err
	}
	if err := e.Start(); err != nil {
		return ExplorationPoint{}, err
	}
	if err := e.WaitEstablished(5 * time.Minute); err != nil {
		return ExplorationPoint{}, err
	}
	for _, asn := range e.ASNs() {
		if err := e.Announce(asn); err != nil {
			return ExplorationPoint{}, err
		}
	}
	if _, err := e.WaitConverged(2 * time.Hour); err != nil {
		return ExplorationPoint{}, err
	}
	origin := topology.BaseASN
	prefix, err := e.OriginPrefix(origin)
	if err != nil {
		return ExplorationPoint{}, err
	}
	var updatesBefore uint64
	for _, r := range e.Routers {
		updatesBefore += r.Stats().UpdatesSent
	}
	start := e.K.Now()
	if _, err := e.MeasureConvergence(func() error { return e.Withdraw(origin) }, 2*time.Hour); err != nil {
		return ExplorationPoint{}, err
	}
	changes := 0
	for _, n := range e.Log.PathExplorationCount(prefix, start) {
		changes += n
	}
	var updatesAfter uint64
	for _, r := range e.Routers {
		updatesAfter += r.Stats().UpdatesSent
	}
	return ExplorationPoint{
		SDNCount:    k,
		BestChanges: changes,
		Updates:     updatesAfter - updatesBefore,
	}, nil
}

// WriteMRAITable renders the MRAI sweep.
func WriteMRAITable(w io.Writer, points []MRAIPoint) error {
	if _, err := fmt.Fprintf(w, "%-10s %8s %8s %8s\n", "mrai_s", "med_s", "min_s", "max_s"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%-10.0f %8.3f %8.3f %8.3f\n",
			p.MRAI.Seconds(), p.Summary.Median, p.Summary.Min, p.Summary.Max); err != nil {
			return err
		}
	}
	return nil
}

// WriteSizeTable renders the clique-size sweep.
func WriteSizeTable(w io.Writer, points []SizePoint) error {
	if _, err := fmt.Fprintf(w, "%-8s %8s %8s %8s\n", "clique", "med_s", "min_s", "max_s"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%-8d %8.3f %8.3f %8.3f\n",
			p.CliqueSize, p.Summary.Median, p.Summary.Min, p.Summary.Max); err != nil {
			return err
		}
	}
	return nil
}

// WriteDebounceTable renders the debounce ablation.
func WriteDebounceTable(w io.Writer, points []DebouncePoint) error {
	if _, err := fmt.Fprintf(w, "%-12s %8s %12s\n", "debounce_s", "med_s", "recomputes"); err != nil {
		return err
	}
	for _, p := range points {
		db := p.Debounce.Seconds()
		if p.Debounce < 0 {
			db = 0
		}
		if _, err := fmt.Fprintf(w, "%-12.2f %8.3f %12.1f\n", db, p.Summary.Median, p.Recomputes); err != nil {
			return err
		}
	}
	return nil
}

// FlapPoint is one flap-stability ablation result.
type FlapPoint struct {
	// Mode names the stability mechanism: "bgp", "damping" or "sdn".
	Mode string
	// Updates is the network-wide BGP update count during the flap
	// storm (controller flow-mods excluded: the metric is legacy
	// control-plane load, which is what damping and the debounce both
	// try to contain).
	Updates uint64
	// ReachableAfter reports whether the flapping prefix is usable
	// once the origin finally stabilises.
	ReachableAfter bool
}

// FlapStabilityAblation subjects a clique to a flapping origin (the
// origin announces and withdraws its prefix repeatedly, one cycle per
// period) and compares the update load under three regimes: plain
// BGP, BGP with RFC 2439 route-flap damping, and an SDN cluster with
// debounced recomputation. After the storm the origin stays announced
// and the run verifies the prefix is (eventually) reachable — under
// damping this takes until the penalty decays.
func FlapStabilityAblation(cliqueSize, cycles int, period time.Duration, timers bgp.Timers, seed int64, parallelism int) ([]FlapPoint, error) {
	if cliqueSize == 0 {
		cliqueSize = 8
	}
	if cycles == 0 {
		cycles = 6
	}
	if period == 0 {
		period = 20 * time.Second
	}
	run := func(mode string) (FlapPoint, error) {
		cfg := experiment.Config{
			Seed:   seed,
			Timers: timers,
		}
		g, err := topology.Clique(cliqueSize)
		if err != nil {
			return FlapPoint{}, err
		}
		cfg.Graph = g
		switch mode {
		case "damping":
			cfg.Damping = &bgp.DampingConfig{HalfLife: 2 * time.Minute}
		case "sdn":
			cfg.SDNMembers = members(cliqueSize, cliqueSize/2)
			cfg.Debounce = time.Second
		}
		e, err := experiment.New(cfg)
		if err != nil {
			return FlapPoint{}, err
		}
		if err := e.Start(); err != nil {
			return FlapPoint{}, err
		}
		if err := e.WaitEstablished(5 * time.Minute); err != nil {
			return FlapPoint{}, err
		}
		for _, asn := range e.ASNs() {
			if err := e.Announce(asn); err != nil {
				return FlapPoint{}, err
			}
		}
		if _, err := e.WaitConverged(2 * time.Hour); err != nil {
			return FlapPoint{}, err
		}
		origin := topology.BaseASN
		countUpdates := func() uint64 {
			var n uint64
			for _, r := range e.Routers {
				n += r.Stats().UpdatesSent
			}
			return n
		}
		before := countUpdates()
		// The storm: withdraw/announce each period.
		for i := 0; i < cycles; i++ {
			if err := e.Withdraw(origin); err != nil {
				return FlapPoint{}, err
			}
			if err := e.RunFor(period / 2); err != nil {
				return FlapPoint{}, err
			}
			if err := e.Announce(origin); err != nil {
				return FlapPoint{}, err
			}
			if err := e.RunFor(period / 2); err != nil {
				return FlapPoint{}, err
			}
		}
		// Let everything settle (damping needs decay time).
		if _, err := e.WaitConverged(2 * time.Hour); err != nil {
			return FlapPoint{}, err
		}
		if err := e.RunFor(10 * time.Minute); err != nil {
			return FlapPoint{}, err
		}
		point := FlapPoint{Mode: mode, Updates: countUpdates() - before}
		reachable := true
		for _, asn := range e.ASNs() {
			if asn == origin {
				continue
			}
			if !e.Reachable(asn, origin) {
				reachable = false
				break
			}
		}
		point.ReachableAfter = reachable
		return point, nil
	}
	modes := []string{"bgp", "damping", "sdn"}
	out := make([]FlapPoint, len(modes))
	err := Runner{Parallelism: parallelism}.Do(len(modes), func(i int) error {
		p, err := run(modes[i])
		if err != nil {
			return fmt.Errorf("figures: flap ablation %s: %w", modes[i], err)
		}
		out[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WriteFlapTable renders the flap-stability ablation.
func WriteFlapTable(w io.Writer, points []FlapPoint) error {
	if _, err := fmt.Fprintf(w, "%-10s %10s %16s\n", "mode", "updates", "reachable_after"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%-10s %10d %16v\n", p.Mode, p.Updates, p.ReachableAfter); err != nil {
			return err
		}
	}
	return nil
}
