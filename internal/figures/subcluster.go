package figures

import (
	"time"

	"repro/internal/bgp"
	"repro/internal/experiment"
	"repro/internal/idr"
	"repro/internal/topology"
)

// SubClusterResult reports the sub-cluster split experiment (design
// goal §2: an intra-cluster link failure must not isolate controlled
// ASes — legacy paths reconnect the sub-clusters).
type SubClusterResult struct {
	// ReachableBeforeSplit and ReachableAfterSplit report whether the
	// two cluster islands could reach each other's prefixes.
	ReachableBeforeSplit, ReachableAfterSplit bool
	// ReconvergenceTime is how long routing took to stabilise after
	// the split.
	ReconvergenceTime time.Duration
}

// SubClusterExperiment builds a ring with two cluster members on
// opposite sides, fails the only intra-cluster link, and verifies the
// islands still reach each other over the legacy world. It is the one
// experiment that is a scripted sequence rather than a sweep, so it
// lives beside the registry instead of in it.
func SubClusterExperiment(timers bgp.Timers, seed int64) (SubClusterResult, error) {
	var res SubClusterResult
	// Topology: 1 - m2 - m3 - 4 ring, members {m2, m3} adjacent.
	// After failing m2-m3, the path between them runs over legacy
	// ASes 1 and 4.
	g, err := topology.Ring(4)
	if err != nil {
		return res, err
	}
	membersList := []idr.ASN{2, 3}
	e, err := experiment.New(experiment.Config{
		Seed:       seed,
		Graph:      g,
		SDNMembers: membersList,
		Timers:     timers,
	})
	if err != nil {
		return res, err
	}
	if err := e.Start(); err != nil {
		return res, err
	}
	if err := e.WaitEstablished(5 * time.Minute); err != nil {
		return res, err
	}
	for _, asn := range e.ASNs() {
		if err := e.Announce(asn); err != nil {
			return res, err
		}
	}
	if _, err := e.WaitConverged(time.Hour); err != nil {
		return res, err
	}
	res.ReachableBeforeSplit = e.Reachable(2, 3) && e.Reachable(3, 2)
	d, err := e.MeasureConvergence(func() error { return e.FailLink(2, 3) }, time.Hour)
	if err != nil {
		return res, err
	}
	res.ReconvergenceTime = d
	res.ReachableAfterSplit = e.Reachable(2, 3) && e.Reachable(3, 2)
	return res, nil
}
