package policy

import (
	"net/netip"
	"testing"

	"repro/internal/bgp/rib"
	"repro/internal/bgp/wire"
	"repro/internal/idr"
	"repro/internal/topology"
)

var pfx = netip.MustParsePrefix("10.0.1.0/24")

func neighbor(kind topology.NeighborKind) Neighbor {
	return Neighbor{Key: "p", ASN: 2, Kind: kind}
}

func testRoute() *rib.Route {
	return &rib.Route{
		Prefix: pfx,
		Attrs: wire.PathAttrs{
			Origin:  wire.OriginIGP,
			ASPath:  wire.NewASPath(2),
			NextHop: netip.MustParseAddr("100.64.0.2"),
		},
	}
}

func TestPermitAll(t *testing.T) {
	var p Policy = PermitAll{}
	r := testRoute()
	if !p.Import(neighbor(topology.KindPeer), r) {
		t.Fatal("PermitAll should import")
	}
	if !p.Export(neighbor(topology.KindPeer), neighbor(topology.KindProvider), r) {
		t.Fatal("PermitAll should export")
	}
	if r.Attrs.LocalPref != nil {
		t.Fatal("PermitAll must not set LOCAL_PREF")
	}
}

func TestGaoRexfordImportPrefs(t *testing.T) {
	g := GaoRexford{}
	cases := []struct {
		kind topology.NeighborKind
		want uint32
	}{
		{topology.KindCustomer, CustomerPref},
		{topology.KindPeer, PeerPref},
		{topology.KindProvider, ProviderPref},
	}
	for _, c := range cases {
		r := testRoute()
		if !g.Import(neighbor(c.kind), r) {
			t.Fatalf("import from %v rejected", c.kind)
		}
		if r.Attrs.LocalPref == nil || *r.Attrs.LocalPref != c.want {
			t.Fatalf("LOCAL_PREF from %v = %v, want %d", c.kind, r.Attrs.LocalPref, c.want)
		}
	}
}

func TestGaoRexfordCustomPrefs(t *testing.T) {
	g := GaoRexford{CustomerPref: 500}
	r := testRoute()
	g.Import(neighbor(topology.KindCustomer), r)
	if *r.Attrs.LocalPref != 500 {
		t.Fatalf("LOCAL_PREF = %d", *r.Attrs.LocalPref)
	}
	// Unset kinds keep defaults.
	r2 := testRoute()
	g.Import(neighbor(topology.KindPeer), r2)
	if *r2.Attrs.LocalPref != PeerPref {
		t.Fatalf("peer LOCAL_PREF = %d", *r2.Attrs.LocalPref)
	}
}

func TestGaoRexfordCommunities(t *testing.T) {
	g := GaoRexford{TagCommunities: true}
	r := testRoute()
	g.Import(neighbor(topology.KindCustomer), r)
	if !r.Attrs.HasCommunity(CommunityFromCustomer) {
		t.Fatal("customer community missing")
	}
	r2 := testRoute()
	g.Import(neighbor(topology.KindProvider), r2)
	if !r2.Attrs.HasCommunity(CommunityFromProvider) {
		t.Fatal("provider community missing")
	}
	// Without the flag, no tags.
	r3 := testRoute()
	GaoRexford{}.Import(neighbor(topology.KindPeer), r3)
	if len(r3.Attrs.Communities) != 0 {
		t.Fatal("untagged policy attached communities")
	}
}

func TestGaoRexfordExportValleyFree(t *testing.T) {
	g := GaoRexford{}
	r := testRoute()
	customer := neighbor(topology.KindCustomer)
	peer := neighbor(topology.KindPeer)
	provider := neighbor(topology.KindProvider)

	// Customer-learned: export to everyone.
	for _, to := range []Neighbor{customer, peer, provider} {
		if !g.Export(to, customer, r) {
			t.Fatalf("customer route must export to %v", to.Kind)
		}
	}
	// Local: export to everyone.
	for _, to := range []Neighbor{customer, peer, provider} {
		if !g.Export(to, Local, r) {
			t.Fatalf("local route must export to %v", to.Kind)
		}
	}
	// Peer-learned: only to customers.
	if !g.Export(customer, peer, r) {
		t.Fatal("peer route must export to customer")
	}
	if g.Export(peer, peer, r) || g.Export(provider, peer, r) {
		t.Fatal("peer route must not export to peer/provider")
	}
	// Provider-learned: only to customers.
	if !g.Export(customer, provider, r) {
		t.Fatal("provider route must export to customer")
	}
	if g.Export(peer, provider, r) || g.Export(provider, provider, r) {
		t.Fatal("provider route must not export to peer/provider")
	}
}

func TestPrefixFilter(t *testing.T) {
	f := PrefixFilter{
		Inner:      PermitAll{},
		DenyImport: map[netip.Prefix]bool{pfx: true},
	}
	r := testRoute()
	if f.Import(neighbor(topology.KindPeer), r) {
		t.Fatal("denied import accepted")
	}
	other := *r
	other.Prefix = netip.MustParsePrefix("10.0.2.0/24")
	if !f.Import(neighbor(topology.KindPeer), &other) {
		t.Fatal("unlisted prefix rejected")
	}
	f2 := PrefixFilter{Inner: PermitAll{}, DenyExport: map[netip.Prefix]bool{pfx: true}}
	if f2.Export(neighbor(topology.KindPeer), Local, r) {
		t.Fatal("denied export accepted")
	}
	if !f2.Import(neighbor(topology.KindPeer), r) {
		t.Fatal("import should pass through")
	}
}

func TestHonorNoExport(t *testing.T) {
	h := HonorNoExport{Inner: PermitAll{}}
	r := testRoute()
	if !h.Export(neighbor(topology.KindPeer), Local, r) {
		t.Fatal("plain route should export")
	}
	r.Attrs = r.Attrs.AddCommunity(wire.CommunityNoExport)
	if h.Export(neighbor(topology.KindPeer), Local, r) {
		t.Fatal("NO_EXPORT route must not export")
	}
	r2 := testRoute()
	r2.Attrs = r2.Attrs.AddCommunity(wire.CommunityNoAdvertise)
	if h.Export(neighbor(topology.KindPeer), Local, r2) {
		t.Fatal("NO_ADVERTISE route must not export")
	}
	if !h.Import(neighbor(topology.KindPeer), r2) {
		t.Fatal("import should pass through")
	}
}

func TestFromTopology(t *testing.T) {
	g := topology.New()
	if err := g.AddEdge(topology.Edge{A: 1, B: 2, Rel: topology.P2C}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(topology.Edge{A: 2, B: 3, Rel: topology.P2P}); err != nil {
		t.Fatal(err)
	}
	kinds := FromTopology(g)
	if kinds[[2]idr.ASN{1, 2}] != topology.KindCustomer {
		t.Fatal("AS2 should be AS1's customer")
	}
	if kinds[[2]idr.ASN{2, 1}] != topology.KindProvider {
		t.Fatal("AS1 should be AS2's provider")
	}
	if kinds[[2]idr.ASN{2, 3}] != topology.KindPeer || kinds[[2]idr.ASN{3, 2}] != topology.KindPeer {
		t.Fatal("AS2-AS3 should be peers")
	}
	if _, ok := kinds[[2]idr.ASN{1, 3}]; ok {
		t.Fatal("no relationship between AS1 and AS3")
	}
}
