// Package policy implements the framework's BGP policy templates
// (paper §3: the framework "configures network devices, including
// customer-to-provider and peer-to-peer relationships").
//
// Three templates ship with the framework:
//
//   - PermitAll: free transit between all neighbors, the classic
//     setting for artificial topologies such as the Figure 2 clique,
//     where every AS re-exports everything and withdrawal triggers
//     full path exploration;
//   - GaoRexford: valley-free business routing for measured
//     topologies — prefer customer routes, export customer routes to
//     everyone, export peer/provider routes only to customers;
//   - ConeFilter: IRR-style prefix-list filtering layered over any
//     inner policy — imports from customers and peers are accepted
//     only for prefixes whose legitimate origin lies inside that
//     neighbor's customer cone (the classic hijack defense).
//
// The evaluation API names these templates through lab.PolicySpec
// ("permit-all", "gao-rexford", "prefix-filter"); the scenario DSL's
// policy directive and the convergence CLI's -policy flag accept the
// same names.
package policy

import (
	"net/netip"

	"repro/internal/bgp/rib"
	"repro/internal/bgp/wire"
	"repro/internal/idr"
	"repro/internal/topology"
)

// Neighbor describes one BGP neighbor for policy evaluation.
type Neighbor struct {
	// Key is the session's identifier on the local router.
	Key rib.PeerKey
	// ASN is the neighbor's AS number.
	ASN idr.ASN
	// Kind is the neighbor's business relationship as seen from the
	// local AS (customer, peer, provider; KindNone when unrelated).
	Kind topology.NeighborKind
}

// Local is the pseudo-neighbor representing locally-originated routes
// when they are evaluated for export.
var Local = Neighbor{Kind: topology.KindNone}

// Policy decides route admission and propagation. Import may modify
// the route in place by replacing attribute fields (set LOCAL_PREF,
// attach communities via PathAttrs.AddCommunity, assign a fresh
// ASPath); it must not mutate slice contents or pointed-to values,
// because attribute sets are shared structurally across the import
// and export paths. Export must not modify the route at all.
type Policy interface {
	// Import filters a route learned from 'from'; returning false
	// rejects it before it reaches the Adj-RIB-In.
	Import(from Neighbor, r *rib.Route) bool

	// Export decides whether a route learned from 'learnedFrom'
	// (policy.Local for originated routes) may be advertised to 'to'.
	Export(to, learnedFrom Neighbor, r *rib.Route) bool
}

// PermitAll accepts and propagates everything (full transit).
type PermitAll struct{}

// Import implements Policy.
func (PermitAll) Import(Neighbor, *rib.Route) bool { return true }

// Export implements Policy.
func (PermitAll) Export(Neighbor, Neighbor, *rib.Route) bool { return true }

// Default LOCAL_PREF values assigned by GaoRexford on import.
const (
	CustomerPref uint32 = 200
	PeerPref     uint32 = 100
	ProviderPref uint32 = 50
)

// Community values GaoRexford attaches on import to record the
// learned-from relationship (asn half = 65535 reserved test range).
var (
	CommunityFromCustomer = wire.NewCommunity(65535, 1)
	CommunityFromPeer     = wire.NewCommunity(65535, 2)
	CommunityFromProvider = wire.NewCommunity(65535, 3)
)

// GaoRexford implements valley-free routing. The zero value uses the
// package default preference values.
type GaoRexford struct {
	// Prefs overrides the LOCAL_PREF per neighbor kind when non-zero.
	CustomerPref, PeerPref, ProviderPref uint32
	// TagCommunities attaches the CommunityFrom* marker on import.
	TagCommunities bool
}

func (g GaoRexford) pref(kind topology.NeighborKind) uint32 {
	switch kind {
	case topology.KindCustomer:
		if g.CustomerPref != 0 {
			return g.CustomerPref
		}
		return CustomerPref
	case topology.KindPeer:
		if g.PeerPref != 0 {
			return g.PeerPref
		}
		return PeerPref
	default:
		if g.ProviderPref != 0 {
			return g.ProviderPref
		}
		return ProviderPref
	}
}

// Import implements Policy: it assigns LOCAL_PREF from the business
// relationship (customer > peer > provider) and optionally tags the
// route with a relationship community.
func (g GaoRexford) Import(from Neighbor, r *rib.Route) bool {
	p := g.pref(from.Kind)
	r.Attrs.LocalPref = &p
	if g.TagCommunities {
		switch from.Kind {
		case topology.KindCustomer:
			r.Attrs = r.Attrs.AddCommunity(CommunityFromCustomer)
		case topology.KindPeer:
			r.Attrs = r.Attrs.AddCommunity(CommunityFromPeer)
		case topology.KindProvider:
			r.Attrs = r.Attrs.AddCommunity(CommunityFromProvider)
		}
	}
	return true
}

// Export implements Policy: originated and customer-learned routes go
// to everyone; peer- and provider-learned routes go only to customers
// (no valleys, no peer-to-peer transit).
func (g GaoRexford) Export(to, learnedFrom Neighbor, r *rib.Route) bool {
	switch learnedFrom.Kind {
	case topology.KindNone, topology.KindCustomer:
		return true
	default:
		return to.Kind == topology.KindCustomer
	}
}

// PrefixFilter wraps a Policy, additionally rejecting imports and
// exports of listed prefixes (the framework's prefix-filter template).
type PrefixFilter struct {
	// Inner is the wrapped policy (required).
	Inner Policy
	// DenyImport lists exact prefixes to reject on import.
	DenyImport map[netip.Prefix]bool
	// DenyExport lists exact prefixes to suppress on export.
	DenyExport map[netip.Prefix]bool
}

// Import implements Policy.
func (f PrefixFilter) Import(from Neighbor, r *rib.Route) bool {
	if f.DenyImport[r.Prefix] {
		return false
	}
	return f.Inner.Import(from, r)
}

// Export implements Policy.
func (f PrefixFilter) Export(to, learnedFrom Neighbor, r *rib.Route) bool {
	if f.DenyExport[r.Prefix] {
		return false
	}
	return f.Inner.Export(to, learnedFrom, r)
}

// HonorNoExport wraps a Policy and additionally suppresses export of
// routes carrying the well-known NO_EXPORT or NO_ADVERTISE
// communities (RFC 1997).
type HonorNoExport struct {
	// Inner is the wrapped policy (required).
	Inner Policy
}

// Import implements Policy.
func (h HonorNoExport) Import(from Neighbor, r *rib.Route) bool {
	return h.Inner.Import(from, r)
}

// Export implements Policy.
func (h HonorNoExport) Export(to, learnedFrom Neighbor, r *rib.Route) bool {
	if r.Attrs.HasCommunity(wire.CommunityNoExport) || r.Attrs.HasCommunity(wire.CommunityNoAdvertise) {
		return false
	}
	return h.Inner.Export(to, learnedFrom, r)
}

// FromTopology builds the per-AS neighbor kinds for a topology graph,
// keyed by (local, neighbor). The experiment layer computes this table
// once at trial setup and resolves every session's policy.Neighbor
// from it, so no per-UPDATE path ever probes the graph again.
func FromTopology(g *topology.Graph) map[[2]idr.ASN]topology.NeighborKind {
	out := make(map[[2]idr.ASN]topology.NeighborKind, 2*g.NumEdges())
	for _, e := range g.Edges() {
		ka, _ := g.RelationshipOf(e.A, e.B)
		kb, _ := g.RelationshipOf(e.B, e.A)
		out[[2]idr.ASN{e.A, e.B}] = ka
		out[[2]idr.ASN{e.B, e.A}] = kb
	}
	return out
}

// ConeFilter layers IRR-style prefix-list filtering over an inner
// policy: a route learned from a customer or from a peer is accepted
// only when the prefix's legitimate origin AS lies inside that
// neighbor's customer cone (the neighbor itself, its customers, their
// customers, and so on). Routes from providers are not filtered — a
// provider's announcements cannot be enumerated — and exports are
// delegated to the inner policy untouched.
//
// This is the framework's "prefix-filter" template: it models the
// per-customer prefix lists real transit providers build from IRR
// data, and it is the classic containment mechanism for prefix
// hijacks originated by stub networks.
type ConeFilter struct {
	// Inner is the wrapped policy (required; typically GaoRexford).
	Inner Policy
	// Origins maps each prefix to the AS that legitimately originates
	// it (the experiment's address plan).
	Origins map[netip.Prefix]idr.ASN
	// Cones maps each AS to its customer-cone membership set. An AS is
	// always a member of its own cone.
	Cones map[idr.ASN]map[idr.ASN]bool
}

// NewConeFilter computes every AS's customer cone from the topology's
// provider-customer edges and returns the assembled filter. The
// topology's P2C hierarchy must be acyclic (topology.Graph.Validate);
// on a cycle the affected cones are truncated rather than recursed
// into forever.
func NewConeFilter(inner Policy, g *topology.Graph, origins map[netip.Prefix]idr.ASN) ConeFilter {
	// One pass over the edges builds the customer adjacency, so cone
	// construction is linear in the graph instead of re-scanning (and
	// re-sorting) the full edge list per AS — this runs once per
	// trial, inside internet-scale sweeps.
	customers := make(map[idr.ASN][]idr.ASN)
	for _, e := range g.Edges() {
		if e.Rel == topology.P2C {
			customers[e.A] = append(customers[e.A], e.B)
		}
	}
	cones := make(map[idr.ASN]map[idr.ASN]bool, g.NumNodes())
	visiting := make(map[idr.ASN]bool)
	var cone func(asn idr.ASN) map[idr.ASN]bool
	cone = func(asn idr.ASN) map[idr.ASN]bool {
		if c, ok := cones[asn]; ok {
			return c
		}
		if visiting[asn] {
			// Provider-customer cycle: stop the recursion; Validate
			// rejects such graphs, this just keeps the builder total.
			return map[idr.ASN]bool{asn: true}
		}
		visiting[asn] = true
		c := map[idr.ASN]bool{asn: true}
		for _, customer := range customers[asn] {
			for member := range cone(customer) {
				c[member] = true
			}
		}
		delete(visiting, asn)
		cones[asn] = c
		return c
	}
	for _, asn := range g.Nodes() {
		cone(asn)
	}
	return ConeFilter{Inner: inner, Origins: origins, Cones: cones}
}

// Import implements Policy: customer and peer routes are checked
// against the neighbor's customer cone before the inner policy runs.
func (f ConeFilter) Import(from Neighbor, r *rib.Route) bool {
	switch from.Kind {
	case topology.KindCustomer, topology.KindPeer:
		origin, known := f.Origins[r.Prefix]
		if !known || !f.Cones[from.ASN][origin] {
			return false
		}
	}
	return f.Inner.Import(from, r)
}

// Export implements Policy by delegating to the inner policy.
func (f ConeFilter) Export(to, learnedFrom Neighbor, r *rib.Route) bool {
	return f.Inner.Export(to, learnedFrom, r)
}
