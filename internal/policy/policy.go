// Package policy implements the framework's BGP policy templates
// (paper §3: the framework "configures network devices, including
// customer-to-provider and peer-to-peer relationships").
//
// Two templates ship with the framework:
//
//   - PermitAll: free transit between all neighbors, the classic
//     setting for artificial topologies such as the Figure 2 clique,
//     where every AS re-exports everything and withdrawal triggers
//     full path exploration;
//   - GaoRexford: valley-free business routing for measured
//     topologies — prefer customer routes, export customer routes to
//     everyone, export peer/provider routes only to customers.
package policy

import (
	"net/netip"

	"repro/internal/bgp/rib"
	"repro/internal/bgp/wire"
	"repro/internal/idr"
	"repro/internal/topology"
)

// Neighbor describes one BGP neighbor for policy evaluation.
type Neighbor struct {
	Key  rib.PeerKey
	ASN  idr.ASN
	Kind topology.NeighborKind
}

// Local is the pseudo-neighbor representing locally-originated routes
// when they are evaluated for export.
var Local = Neighbor{Kind: topology.KindNone}

// Policy decides route admission and propagation. Import may modify
// the route in place (set LOCAL_PREF, attach communities); Export must
// not modify it.
type Policy interface {
	// Import filters a route learned from 'from'; returning false
	// rejects it before it reaches the Adj-RIB-In.
	Import(from Neighbor, r *rib.Route) bool

	// Export decides whether a route learned from 'learnedFrom'
	// (policy.Local for originated routes) may be advertised to 'to'.
	Export(to, learnedFrom Neighbor, r *rib.Route) bool
}

// PermitAll accepts and propagates everything (full transit).
type PermitAll struct{}

// Import implements Policy.
func (PermitAll) Import(Neighbor, *rib.Route) bool { return true }

// Export implements Policy.
func (PermitAll) Export(Neighbor, Neighbor, *rib.Route) bool { return true }

// Default LOCAL_PREF values assigned by GaoRexford on import.
const (
	CustomerPref uint32 = 200
	PeerPref     uint32 = 100
	ProviderPref uint32 = 50
)

// Community values GaoRexford attaches on import to record the
// learned-from relationship (asn half = 65535 reserved test range).
var (
	CommunityFromCustomer = wire.NewCommunity(65535, 1)
	CommunityFromPeer     = wire.NewCommunity(65535, 2)
	CommunityFromProvider = wire.NewCommunity(65535, 3)
)

// GaoRexford implements valley-free routing. The zero value uses the
// package default preference values.
type GaoRexford struct {
	// Prefs overrides the LOCAL_PREF per neighbor kind when non-zero.
	CustomerPref, PeerPref, ProviderPref uint32
	// TagCommunities attaches the CommunityFrom* marker on import.
	TagCommunities bool
}

func (g GaoRexford) pref(kind topology.NeighborKind) uint32 {
	switch kind {
	case topology.KindCustomer:
		if g.CustomerPref != 0 {
			return g.CustomerPref
		}
		return CustomerPref
	case topology.KindPeer:
		if g.PeerPref != 0 {
			return g.PeerPref
		}
		return PeerPref
	default:
		if g.ProviderPref != 0 {
			return g.ProviderPref
		}
		return ProviderPref
	}
}

// Import implements Policy: it assigns LOCAL_PREF from the business
// relationship (customer > peer > provider) and optionally tags the
// route with a relationship community.
func (g GaoRexford) Import(from Neighbor, r *rib.Route) bool {
	p := g.pref(from.Kind)
	r.Attrs.LocalPref = &p
	if g.TagCommunities {
		switch from.Kind {
		case topology.KindCustomer:
			r.Attrs = r.Attrs.AddCommunity(CommunityFromCustomer)
		case topology.KindPeer:
			r.Attrs = r.Attrs.AddCommunity(CommunityFromPeer)
		case topology.KindProvider:
			r.Attrs = r.Attrs.AddCommunity(CommunityFromProvider)
		}
	}
	return true
}

// Export implements Policy: originated and customer-learned routes go
// to everyone; peer- and provider-learned routes go only to customers
// (no valleys, no peer-to-peer transit).
func (g GaoRexford) Export(to, learnedFrom Neighbor, r *rib.Route) bool {
	switch learnedFrom.Kind {
	case topology.KindNone, topology.KindCustomer:
		return true
	default:
		return to.Kind == topology.KindCustomer
	}
}

// PrefixFilter wraps a Policy, additionally rejecting imports and
// exports of listed prefixes (the framework's prefix-filter template).
type PrefixFilter struct {
	// Inner is the wrapped policy (required).
	Inner Policy
	// DenyImport and DenyExport list exact prefixes to block.
	DenyImport map[netip.Prefix]bool
	DenyExport map[netip.Prefix]bool
}

// Import implements Policy.
func (f PrefixFilter) Import(from Neighbor, r *rib.Route) bool {
	if f.DenyImport[r.Prefix] {
		return false
	}
	return f.Inner.Import(from, r)
}

// Export implements Policy.
func (f PrefixFilter) Export(to, learnedFrom Neighbor, r *rib.Route) bool {
	if f.DenyExport[r.Prefix] {
		return false
	}
	return f.Inner.Export(to, learnedFrom, r)
}

// HonorNoExport wraps a Policy and additionally suppresses export of
// routes carrying the well-known NO_EXPORT or NO_ADVERTISE
// communities (RFC 1997).
type HonorNoExport struct {
	Inner Policy
}

// Import implements Policy.
func (h HonorNoExport) Import(from Neighbor, r *rib.Route) bool {
	return h.Inner.Import(from, r)
}

// Export implements Policy.
func (h HonorNoExport) Export(to, learnedFrom Neighbor, r *rib.Route) bool {
	if r.Attrs.HasCommunity(wire.CommunityNoExport) || r.Attrs.HasCommunity(wire.CommunityNoAdvertise) {
		return false
	}
	return h.Inner.Export(to, learnedFrom, r)
}

// FromTopology builds the per-AS neighbor kinds for a topology graph,
// keyed by (local, neighbor). It is a convenience for experiment
// wiring.
func FromTopology(g *topology.Graph) map[[2]idr.ASN]topology.NeighborKind {
	out := make(map[[2]idr.ASN]topology.NeighborKind)
	for _, e := range g.Edges() {
		ka, _ := g.RelationshipOf(e.A, e.B)
		kb, _ := g.RelationshipOf(e.B, e.A)
		out[[2]idr.ASN{e.A, e.B}] = ka
		out[[2]idr.ASN{e.B, e.A}] = kb
	}
	return out
}
