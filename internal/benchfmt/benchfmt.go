// Package benchfmt parses `go test -bench` text output into the
// stable JSON document shape archived as the repo's BENCH_*.json
// trajectory files. cmd/benchjson is the CLI over it; the repolint
// zeroalloc gate reads the same shape back to compare allocs/op
// against the committed baseline.
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line. The three standard Go metrics
// get named fields; every other `<value> <unit>` pair (b.ReportMetric
// output) lands in Metrics keyed by unit.
type Benchmark struct {
	// Name is the benchmark name without the "Benchmark" prefix and
	// without the -N GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS the benchmark ran under (the -N name
	// suffix; 1 when the suffix is absent).
	Procs int `json:"procs"`
	// Iterations is b.N for the reported timing.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the ns/op metric.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is the B/op metric, if -benchmem was on.
	BytesPerOp *float64 `json:"bytes_per_op,omitempty"`
	// AllocsPerOp is the allocs/op metric, if -benchmem was on.
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds any further unit → value pairs on the line.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full document: the `key: value` header lines go test
// prints (goos, goarch, pkg, cpu), an optional caller-supplied label,
// and every benchmark line in input order.
type Report struct {
	// Label is the caller-supplied run label (e.g. smoke, ci-smoke).
	Label string `json:"label,omitempty"`
	// Goos echoes the goos header line.
	Goos string `json:"goos,omitempty"`
	// Goarch echoes the goarch header line.
	Goarch string `json:"goarch,omitempty"`
	// Pkg echoes the pkg header line.
	Pkg string `json:"pkg,omitempty"`
	// CPU echoes the cpu header line.
	CPU string `json:"cpu,omitempty"`
	// GoVersion is the toolchain that ran the conversion (Stamp), so
	// archived documents record the environment they were measured in.
	GoVersion string `json:"go_version,omitempty"`
	// GoMaxProcs is runtime.GOMAXPROCS at conversion time (Stamp).
	GoMaxProcs int `json:"go_max_procs,omitempty"`
	// NumCPU is runtime.NumCPU at conversion time (Stamp); with the
	// cpu header line it pins the hardware a trajectory point ran on.
	NumCPU int `json:"num_cpu,omitempty"`
	// Benchmarks holds every parsed result line in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Stamp records the running environment — Go version, GOMAXPROCS and
// CPU count — into the report, so every archived BENCH_*.json
// identifies the toolchain and parallelism it was measured under.
// The cpu model string comes from go test's own header line (CPU);
// Stamp never overwrites a parsed header.
func (r *Report) Stamp() {
	r.GoVersion = runtime.Version()
	r.GoMaxProcs = runtime.GOMAXPROCS(0)
	r.NumCPU = runtime.NumCPU()
}

// Find returns the named benchmark (repolint's baseline lookups).
func (r Report) Find(name string) (Benchmark, bool) {
	for _, b := range r.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// benchLine matches `BenchmarkName[-procs] <iterations> <rest>`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+(.*)$`)

// Parse reads `go test -bench` output and collects the header fields
// and result lines. Unrecognized lines (PASS, ok, test logs) are
// skipped; a malformed metric pair on a benchmark line is an error so
// silent truncation cannot masquerade as a clean conversion.
func Parse(r io.Reader) (Report, error) {
	var rep Report
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if key, val, ok := strings.Cut(line, ": "); ok && !strings.Contains(key, " ") {
			switch key {
			case "goos":
				rep.Goos = val
			case "goarch":
				rep.Goarch = val
			case "pkg":
				rep.Pkg = val
			case "cpu":
				rep.CPU = strings.TrimSpace(val)
			}
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Benchmark{Name: strings.TrimPrefix(m[1], "Benchmark"), Procs: 1}
		if m[2] != "" {
			p, err := strconv.Atoi(m[2])
			if err != nil {
				return rep, fmt.Errorf("benchfmt: %q: bad procs suffix: %v", line, err)
			}
			b.Procs = p
		}
		iters, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			return rep, fmt.Errorf("benchfmt: %q: bad iteration count: %v", line, err)
		}
		b.Iterations = iters
		fields := strings.Fields(m[4])
		if len(fields)%2 != 0 {
			return rep, fmt.Errorf("benchfmt: %q: odd metric fields %v", line, fields)
		}
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return rep, fmt.Errorf("benchfmt: %q: bad metric value %q: %v", line, fields[i], err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				val := v
				b.BytesPerOp = &val
			case "allocs/op":
				val := v
				b.AllocsPerOp = &val
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	return rep, nil
}
