package benchfmt

import (
	"runtime"
	"strings"
	"testing"
)

// TestParseBenchOutput pins the parser on a realistic transcript:
// header fields, a procs-suffixed line with -benchmem columns, a
// suffix-free line, a custom ReportMetric unit, and noise lines that
// must be skipped.
func TestParseBenchOutput(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkWireMarshalUpdate-8 	    1000	      9976 ns/op	     328 B/op	       5 allocs/op
BenchmarkFig2Withdrawal 	       1	 123456789 ns/op	       35.4 s-converge
PASS
ok  	repro	0.003s
`
	rep, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "repro" || !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("header = %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %+v, want 2", rep.Benchmarks)
	}
	b := rep.Benchmarks[0]
	if b.Name != "WireMarshalUpdate" || b.Procs != 8 || b.Iterations != 1000 || b.NsPerOp != 9976 {
		t.Fatalf("first = %+v", b)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 328 || b.AllocsPerOp == nil || *b.AllocsPerOp != 5 {
		t.Fatalf("first memory columns = %+v", b)
	}
	b = rep.Benchmarks[1]
	if b.Name != "Fig2Withdrawal" || b.Procs != 1 || b.Iterations != 1 {
		t.Fatalf("second = %+v", b)
	}
	if b.Metrics["s-converge"] != 35.4 {
		t.Fatalf("custom metric = %+v", b.Metrics)
	}
	if got, ok := rep.Find("Fig2Withdrawal"); !ok || got.Name != "Fig2Withdrawal" {
		t.Fatalf("Find = %+v, %v", got, ok)
	}
	if _, ok := rep.Find("NoSuchBench"); ok {
		t.Fatal("Find should miss on an unknown name")
	}
}

// TestParseRejectsMalformedMetrics asserts a truncated metric pair is
// an error, not a silently shorter record.
func TestParseRejectsMalformedMetrics(t *testing.T) {
	_, err := Parse(strings.NewReader("BenchmarkX-4 	 10 	 5 ns/op 	 extra\n"))
	if err == nil {
		t.Fatal("odd metric fields should error")
	}
	_, err = Parse(strings.NewReader("BenchmarkX 	 10 	 abc ns/op\n"))
	if err == nil {
		t.Fatal("non-numeric metric value should error")
	}
}

// TestStamp asserts the environment stamp records the live toolchain
// and parallelism without disturbing parsed headers.
func TestStamp(t *testing.T) {
	rep := Report{CPU: "model-from-header"}
	rep.Stamp()
	if rep.GoVersion != runtime.Version() {
		t.Fatalf("GoVersion = %q, want %q", rep.GoVersion, runtime.Version())
	}
	if rep.GoMaxProcs != runtime.GOMAXPROCS(0) || rep.GoMaxProcs < 1 {
		t.Fatalf("GoMaxProcs = %d", rep.GoMaxProcs)
	}
	if rep.NumCPU != runtime.NumCPU() || rep.NumCPU < 1 {
		t.Fatalf("NumCPU = %d", rep.NumCPU)
	}
	if rep.CPU != "model-from-header" {
		t.Fatalf("Stamp overwrote the parsed cpu header: %q", rep.CPU)
	}
}
