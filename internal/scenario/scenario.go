// Package scenario implements the framework's experiment scripting
// language: the stand-in for the paper's Python experiment setups and
// "additional Mininet-BGP commands to announce prefixes, wait until
// BGP has converged, etc.".
//
// A scenario is a line-oriented script. Configuration directives come
// first, then "start", then lifecycle commands:
//
//	# configuration
//	topology clique 16        (also: line/ring/star N, tree N F,
//	                           grid W H, internet N, er N P, ba N M —
//	                           the shared lab.TopoSpec syntax, identical
//	                           to the convergence CLI's -topology flag)
//	sdn last 8                (also: first K / degree K / sdn 9 10 11 12
//	                           / sdn none — the shared lab.Placement
//	                           strategies)
//	seed 42
//	mrai 30s
//	no-mrai-jitter
//	debounce 1s
//	processing-delay 25ms
//	policy gao-rexford        (also: permit-all, prefix-filter — the
//	                           shared lab.PolicySpec templates, identical
//	                           to the convergence CLI's -policy flag)
//	loss 0.05                 (per-message loss probability on every
//	                           inter-AS link, seeded per link from the
//	                           script seed — reruns are reproducible)
//	jitter 5ms                (max extra seeded random delay on
//	                           data-plane probe sends)
//	collector on
//
//	# lifecycle
//	start
//	wait-established 5m
//	announce all              (or: announce 3)
//	wait-converged 2h
//	measure withdraw 1 2h     (reset, trigger, wait; prints the time)
//	measure announce 1 2h
//	measure fail-link 1 2 2h
//	fail-link 1 2
//	restore-link 1 2
//	migrate 3                 (toggle an AS between legacy BGP and the
//	                           SDN cluster mid-run)
//	ctrl-down                 (crash the controller: members fall back
//	                           to legacy BGP; ctrl-up recovers them)
//	ctrl-up
//	session-reset 1 2         (bounce the BGP session on a live link)
//	partition                 (fail every link across a seeded AS cut;
//	                           heal restores them)
//	heal
//	run-for 30s
//	probe 1 4
//	print summary|timeline <as>|loss|paths <as>|rib <as>
//
//	# scheduled workloads (shared lab.Workload parser, identical to
//	# the convergence CLI's -workload flag)
//	at 0s withdraw 1          (also: announce, hijack, migrate <as>;
//	                           linkdown/linkup <a> <b>; failover <a> <b>;
//	                           ctrl-down; ctrl-up; session-reset <a> <b>;
//	                           partition; heal)
//	at 10m announce 1
//	run-workload 1 2h         (execute the accumulated schedule against
//	                           origin AS 1; prints one line per epoch)
package scenario

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"net/netip"
	"strconv"
	"strings"
	"time"

	"repro/internal/bgp"
	"repro/internal/bgp/wire"
	"repro/internal/experiment"
	"repro/internal/idr"
	"repro/internal/lab"
	"repro/internal/monitor"
	"repro/internal/topology"
)

// Script is a parsed scenario.
type Script struct {
	statements []statement
}

type statement struct {
	line int
	verb string
	args []string
}

// Parse reads a scenario script.
func Parse(r io.Reader) (*Script, error) {
	var s Script
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		s.statements = append(s.statements, statement{
			line: line,
			verb: strings.ToLower(fields[0]),
			args: fields[1:],
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scenario: reading script: %w", err)
	}
	if len(s.statements) == 0 {
		return nil, fmt.Errorf("scenario: empty script")
	}
	return &s, nil
}

// Runner executes a parsed scenario.
type Runner struct {
	out io.Writer

	// configuration being accumulated before "start"
	graph    *topology.Graph
	sdn      []idr.ASN
	cfg      experiment.Config
	pol      lab.PolicySpec
	started  bool
	exp      *experiment.Experiment
	topoRand *rand.Rand
	// pending accumulates "at" directives until "run-workload".
	pending lab.Workload
}

// NewRunner returns a Runner writing command output to out.
func NewRunner(out io.Writer) *Runner {
	return &Runner{out: out}
}

// Experiment returns the running experiment (nil before "start").
func (r *Runner) Experiment() *experiment.Experiment { return r.exp }

// Run executes the script, stopping at the first failing statement.
func (r *Runner) Run(s *Script) error {
	for _, st := range s.statements {
		if err := r.exec(st); err != nil {
			return fmt.Errorf("scenario: line %d (%s): %w", st.line, st.verb, err)
		}
	}
	return nil
}

func (r *Runner) exec(st statement) error {
	if r.started {
		return r.execLifecycle(st)
	}
	switch st.verb {
	case "topology":
		return r.execTopology(st.args)
	case "sdn":
		return r.execSDN(st.args)
	case "seed":
		v, err := parseInt(st.args, 0)
		if err != nil {
			return err
		}
		r.cfg.Seed = int64(v)
		r.topoRand = rand.New(rand.NewSource(int64(v)))
		return nil
	case "mrai":
		d, err := parseDuration(st.args, 0)
		if err != nil {
			return err
		}
		r.ensureTimers()
		r.cfg.Timers.MRAI = d
		return nil
	case "no-mrai-jitter":
		r.ensureTimers()
		r.cfg.Timers.MRAIJitter = false
		return nil
	case "hold-time":
		d, err := parseDuration(st.args, 0)
		if err != nil {
			return err
		}
		r.ensureTimers()
		r.cfg.Timers.HoldTime = d
		return nil
	case "debounce":
		d, err := parseDuration(st.args, 0)
		if err != nil {
			return err
		}
		r.cfg.Debounce = d
		return nil
	case "processing-delay":
		d, err := parseDuration(st.args, 0)
		if err != nil {
			return err
		}
		r.cfg.ProcessingDelay = d
		return nil
	case "link-delay":
		d, err := parseDuration(st.args, 0)
		if err != nil {
			return err
		}
		r.cfg.LinkDelay = d
		return nil
	case "loss":
		if len(st.args) != 1 {
			return fmt.Errorf("want: loss <probability>")
		}
		p, err := strconv.ParseFloat(st.args[0], 64)
		if err != nil || p < 0 || p > 1 {
			return fmt.Errorf("bad loss probability %q (want 0..1)", st.args[0])
		}
		r.cfg.LinkLoss = p
		return nil
	case "jitter":
		d, err := parseDuration(st.args, 0)
		if err != nil {
			return err
		}
		r.cfg.LinkJitter = d
		return nil
	case "settle":
		d, err := parseDuration(st.args, 0)
		if err != nil {
			return err
		}
		r.cfg.Settle = d
		return nil
	case "damping":
		if len(st.args) != 1 || (st.args[0] != "on" && st.args[0] != "off") {
			return fmt.Errorf("want: damping on|off")
		}
		if st.args[0] == "on" {
			r.cfg.Damping = &bgp.DampingConfig{}
		} else {
			r.cfg.Damping = nil
		}
		return nil
	case "policy":
		if len(st.args) != 1 {
			return fmt.Errorf("want one policy name")
		}
		spec, err := lab.ParsePolicy(st.args[0])
		if err != nil {
			return err
		}
		r.pol = spec
		return nil
	case "collector":
		if len(st.args) != 1 || (st.args[0] != "on" && st.args[0] != "off") {
			return fmt.Errorf("want: collector on|off")
		}
		r.cfg.WithCollector = st.args[0] == "on"
		return nil
	case "start":
		return r.execStart()
	default:
		return fmt.Errorf("unknown or out-of-order directive")
	}
}

func (r *Runner) ensureTimers() {
	if r.cfg.Timers == (bgp.Timers{}) {
		r.cfg.Timers = bgp.DefaultTimers()
	}
}

// execTopology parses the spec with the shared lab parser (the same
// one behind the convergence CLI's -topology flag) and builds the
// graph; random generators draw from the script's seed.
func (r *Runner) execTopology(args []string) error {
	spec, err := lab.ParseTopo(args)
	if err != nil {
		return err
	}
	rng := r.topoRand
	if rng == nil {
		rng = rand.New(rand.NewSource(r.cfg.Seed))
	}
	r.graph, err = spec.Build(rng)
	return err
}

// execSDN resolves cluster membership through the shared lab
// placement strategies, so "sdn last 8", "sdn first 4", "sdn degree 3"
// and explicit member lists mean the same thing as the CLI's
// -placement flag.
func (r *Runner) execSDN(args []string) error {
	if r.graph == nil {
		return fmt.Errorf("set a topology before sdn")
	}
	p, err := lab.ParsePlacement(args)
	if err != nil {
		return err
	}
	switch p.Strategy {
	case lab.PlaceLast, lab.PlaceFirst, lab.PlaceDegree:
		if len(args) < 2 {
			return fmt.Errorf("want: sdn %s K", p.Strategy)
		}
	}
	r.sdn, err = p.Select(r.graph)
	return err
}

func (r *Runner) execStart() error {
	if r.graph == nil {
		return fmt.Errorf("no topology configured")
	}
	// The policy template resolves against the final graph (the
	// prefix-filter derives cones and origin prefixes from it).
	pol, err := r.pol.Build(r.graph)
	if err != nil {
		return err
	}
	cfg := r.cfg
	cfg.Graph = r.graph
	cfg.SDNMembers = r.sdn
	cfg.Policy = pol
	exp, err := experiment.New(cfg)
	if err != nil {
		return err
	}
	if err := exp.Start(); err != nil {
		return err
	}
	r.exp = exp
	r.started = true
	fmt.Fprintf(r.out, "started: %d ASes (%d SDN), %d links\n",
		r.graph.NumNodes(), len(r.sdn), r.graph.NumEdges())
	return nil
}

func (r *Runner) execLifecycle(st statement) error {
	e := r.exp
	switch st.verb {
	case "wait-established":
		d, err := parseDuration(st.args, 5*time.Minute)
		if err != nil {
			return err
		}
		if err := e.WaitEstablished(d); err != nil {
			return err
		}
		fmt.Fprintln(r.out, "all sessions established")
		return nil
	case "announce", "withdraw":
		if len(st.args) == 1 && st.args[0] == "all" {
			for _, asn := range e.ASNs() {
				if err := r.announceOrWithdraw(st.verb, asn); err != nil {
					return err
				}
			}
			return nil
		}
		asn, err := parseASN(st.args, 0)
		if err != nil {
			return err
		}
		return r.announceOrWithdraw(st.verb, asn)
	case "wait-converged":
		d, err := parseDuration(st.args, 2*time.Hour)
		if err != nil {
			return err
		}
		took, err := e.WaitConverged(d)
		if err != nil {
			return err
		}
		fmt.Fprintf(r.out, "converged (last activity %.3fs after trigger)\n", took.Seconds())
		return nil
	case "measure":
		return r.execMeasure(st.args)
	case "fail-link":
		a, b, err := parseTwoASNs(st.args)
		if err != nil {
			return err
		}
		return e.FailLink(a, b)
	case "restore-link":
		a, b, err := parseTwoASNs(st.args)
		if err != nil {
			return err
		}
		return e.RestoreLink(a, b)
	case "migrate":
		asn, err := parseASN(st.args, 0)
		if err != nil {
			return err
		}
		if err := e.Migrate(asn); err != nil {
			return err
		}
		side := "into the SDN cluster"
		if !e.IsSDNMember(asn) {
			side = "back to legacy BGP"
		}
		fmt.Fprintf(r.out, "migrated %v %s\n", asn, side)
		return nil
	case "ctrl-down":
		if err := e.ControllerDown(); err != nil {
			return err
		}
		fmt.Fprintln(r.out, "controller down: members fell back to legacy BGP")
		return nil
	case "ctrl-up":
		if err := e.ControllerUp(); err != nil {
			return err
		}
		fmt.Fprintln(r.out, "controller up: members re-joined the cluster")
		return nil
	case "session-reset":
		a, b, err := parseTwoASNs(st.args)
		if err != nil {
			return err
		}
		return e.SessionReset(a, b)
	case "partition":
		if err := e.Partition(); err != nil {
			return err
		}
		fmt.Fprintf(r.out, "partitioned: %d links cut\n", len(e.PartitionCut()))
		return nil
	case "heal":
		return e.Heal()
	case "at":
		ev, err := lab.ParseWorkloadEvent(st.args)
		if err != nil {
			return err
		}
		r.pending = append(r.pending, ev)
		return nil
	case "run-workload":
		return r.execRunWorkload(st.args)
	case "run-for":
		d, err := parseDuration(st.args, 0)
		if err != nil {
			return err
		}
		return e.RunFor(d)
	case "probe":
		a, b, err := parseTwoASNs(st.args)
		if err != nil {
			return err
		}
		if err := e.InjectProbe(a, b); err != nil {
			return err
		}
		return e.RunFor(time.Second)
	case "print":
		return r.execPrint(st.args)
	default:
		return fmt.Errorf("unknown command after start")
	}
}

// execRunWorkload executes the accumulated "at" schedule through the
// shared lab engine and prints one line per epoch.
func (r *Runner) execRunWorkload(args []string) error {
	if len(r.pending) == 0 {
		return fmt.Errorf("no scheduled events; add \"at <offset> <event> …\" directives first")
	}
	origin, err := parseASN(args, 0)
	if err != nil {
		return fmt.Errorf("want: run-workload <origin-as> [timeout]: %w", err)
	}
	timeout := 2 * time.Hour
	if len(args) > 1 {
		timeout, err = time.ParseDuration(args[1])
		if err != nil {
			return fmt.Errorf("bad timeout %q", args[1])
		}
	}
	w := r.pending
	r.pending = nil
	epochs, err := lab.RunWorkload(r.exp, w, origin, timeout, 0)
	if err != nil {
		return err
	}
	for i, ep := range epochs {
		fmt.Fprintf(r.out, "epoch %d @%s %s: convergence %.3fs updates %d best-changes %d hijacked %d\n",
			i, ep.At, ep.Kind.Verb(), ep.Convergence.Seconds(), ep.UpdatesSent, ep.BestPathChanges, ep.HijackedASes)
	}
	return nil
}

func (r *Runner) announceOrWithdraw(verb string, asn idr.ASN) error {
	if verb == "announce" {
		return r.exp.Announce(asn)
	}
	return r.exp.Withdraw(asn)
}

func (r *Runner) execMeasure(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("want: measure withdraw|announce <as> [timeout] | measure fail-link <a> <b> [timeout]")
	}
	e := r.exp
	var trigger func() error
	var rest []string
	switch args[0] {
	case "withdraw":
		asn, err := parseASN(args, 1)
		if err != nil {
			return err
		}
		trigger = func() error { return e.Withdraw(asn) }
		rest = args[2:]
	case "announce":
		asn, err := parseASN(args, 1)
		if err != nil {
			return err
		}
		trigger = func() error { return e.Announce(asn) }
		rest = args[2:]
	case "fail-link":
		a, b, err := parseTwoASNs(args[1:3])
		if err != nil {
			return err
		}
		trigger = func() error { return e.FailLink(a, b) }
		rest = args[3:]
	default:
		return fmt.Errorf("unknown measure trigger %q", args[0])
	}
	timeout := 2 * time.Hour
	if len(rest) > 0 {
		var err error
		timeout, err = time.ParseDuration(rest[0])
		if err != nil {
			return fmt.Errorf("bad timeout %q", rest[0])
		}
	}
	d, err := e.MeasureConvergence(trigger, timeout)
	if err != nil {
		return err
	}
	fmt.Fprintf(r.out, "measure %s: convergence %.3fs\n", args[0], d.Seconds())
	return nil
}

func (r *Runner) execPrint(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("want: print summary|timeline <as>|loss|paths <as>")
	}
	e := r.exp
	switch args[0] {
	case "summary":
		for _, s := range e.Log.Summarize() {
			fmt.Fprintf(r.out, "%v: sent=%d recv=%d best-changes=%d state-changes=%d\n",
				s.Router, s.UpdatesSent, s.UpdatesRecv, s.BestChanges, s.StateChanges)
		}
		return nil
	case "timeline":
		asn, err := parseASN(args, 1)
		if err != nil {
			return err
		}
		pfx, err := e.OriginPrefix(asn)
		if err != nil {
			return err
		}
		return e.Log.WriteTimeline(r.out, pfx)
	case "loss":
		return e.Probes.WriteReport(r.out)
	case "rib":
		asn, err := parseASN(args, 1)
		if err != nil {
			return err
		}
		router, ok := e.Routers[asn]
		if !ok {
			return fmt.Errorf("%v is not a legacy BGP router (cluster members have no RIB)", asn)
		}
		return router.WriteRIB(r.out)
	case "stats":
		fmt.Fprintf(r.out, "network: delivered=%d dropped=%d bytes=%d\n",
			e.Net.Delivered, e.Net.Dropped, e.Net.BytesDelivered)
		// UpdateTotals keeps counting routers retired by migration.
		sent, recv := e.UpdateTotals()
		fmt.Fprintf(r.out, "bgp: updates sent=%d received=%d\n", sent, recv)
		if e.Ctrl != nil {
			s := e.Ctrl.Stats()
			fmt.Fprintf(r.out, "controller: recomputes=%d flowmods=%d route-events=%d announces=%d withdraws=%d\n",
				s.Recomputes, s.FlowModsSent, s.RouteEvents, s.AnnounceCommands, s.WithdrawCommands)
		}
		return nil
	case "paths":
		asn, err := parseASN(args, 1)
		if err != nil {
			return err
		}
		pfx, err := e.OriginPrefix(asn)
		if err != nil {
			return err
		}
		providers := make(map[idr.ASN]monitor.RouteProvider)
		for _, a := range e.ASNs() {
			a := a
			providers[a] = func(netip.Prefix) (wire.ASPath, bool) {
				return e.BestPath(a, asn)
			}
		}
		return monitor.WriteForwardingDOT(r.out, pfx, providers)
	default:
		return fmt.Errorf("unknown print target %q", args[0])
	}
}

func parseInt(args []string, i int) (int, error) {
	if len(args) <= i {
		return 0, fmt.Errorf("missing integer argument")
	}
	return strconv.Atoi(args[i])
}

func parseDuration(args []string, def time.Duration) (time.Duration, error) {
	if len(args) == 0 {
		if def > 0 {
			return def, nil
		}
		return 0, fmt.Errorf("missing duration argument")
	}
	return time.ParseDuration(args[0])
}

func parseASN(args []string, i int) (idr.ASN, error) {
	if len(args) <= i {
		return 0, fmt.Errorf("missing AS number")
	}
	v, err := strconv.ParseUint(args[i], 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad AS number %q", args[i])
	}
	return idr.ASN(v), nil
}

func parseTwoASNs(args []string) (idr.ASN, idr.ASN, error) {
	if len(args) < 2 {
		return 0, 0, fmt.Errorf("want two AS numbers")
	}
	a, err := parseASN(args, 0)
	if err != nil {
		return 0, 0, err
	}
	b, err := parseASN(args, 1)
	if err != nil {
		return 0, 0, err
	}
	return a, b, nil
}
