package scenario

import (
	"os"
	"strings"
	"testing"
)

func run(t *testing.T, script string) (string, error) {
	t.Helper()
	s, err := Parse(strings.NewReader(script))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	r := NewRunner(&out)
	err = r.Run(s)
	return out.String(), err
}

const header = `
topology line 3
seed 1
mrai 2s
no-mrai-jitter
start
wait-established 2m
`

func TestBasicScenario(t *testing.T) {
	out, err := run(t, header+`
announce all
wait-converged 30m
probe 1 3
print loss
print summary
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"started: 3 ASes (0 SDN), 2 links",
		"all sessions established", "converged", "AS1 -> AS3", "loss=0.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMeasureWithdraw(t *testing.T) {
	out, err := run(t, header+`
announce all
wait-converged 30m
measure withdraw 1 1h
`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "measure withdraw: convergence") {
		t.Fatalf("output = %s", out)
	}
}

func TestHybridScenario(t *testing.T) {
	out, err := run(t, `
topology line 4
sdn last 2
seed 3
mrai 2s
no-mrai-jitter
debounce 200ms
start
wait-established 2m
announce all
wait-converged 30m
print timeline 1
print paths 1
`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "started: 4 ASes (2 SDN), 3 links") {
		t.Fatalf("output = %s", out)
	}
	if !strings.Contains(out, "digraph") {
		t.Fatal("paths DOT missing")
	}
}

func TestLinkCommands(t *testing.T) {
	_, err := run(t, `
topology ring 4
seed 1
mrai 2s
no-mrai-jitter
start
wait-established 2m
announce all
wait-converged 30m
fail-link 1 2
wait-converged 30m
restore-link 1 2
wait-converged 30m
`)
	if err != nil {
		t.Fatal(err)
	}
}

func TestExplicitSDNMembersAndPolicies(t *testing.T) {
	_, err := run(t, `
topology star 4
sdn 2 3
policy gao-rexford
collector on
seed 1
mrai 2s
no-mrai-jitter
processing-delay 5ms
link-delay 2ms
hold-time 60s
debounce 100ms
start
wait-established 2m
announce all
wait-converged 30m
run-for 10s
`)
	if err != nil {
		t.Fatal(err)
	}
}

// TestPrefixFilterPolicyDirective covers the shared-parser policy
// directive end to end: the prefix-filter template resolves its
// customer cones against the scripted topology at start.
func TestPrefixFilterPolicyDirective(t *testing.T) {
	out, err := run(t, `
seed 5
topology internet 12
policy prefix-filter
mrai 2s
no-mrai-jitter
start
wait-established 2m
announce all
wait-converged 30m
`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "started: 12 ASes") {
		t.Fatalf("output = %q", out)
	}
}

func TestInternetTopology(t *testing.T) {
	_, err := run(t, `
seed 5
topology internet 12
policy gao-rexford
mrai 2s
no-mrai-jitter
start
wait-established 2m
announce all
wait-converged 30m
`)
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("")); err == nil {
		t.Fatal("empty script should fail")
	}
	if _, err := Parse(strings.NewReader("# only comments\n\n")); err == nil {
		t.Fatal("comment-only script should fail")
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name   string
		script string
	}{
		{"unknown directive", "bogus 1\n"},
		{"start without topology", "start\n"},
		{"sdn before topology", "sdn last 2\n"},
		{"bad topology kind", "topology mobius 4\n"},
		{"bad topology size", "topology clique x\n"},
		{"bad policy", "topology line 2\npolicy anarchy\n"},
		{"bad collector", "topology line 2\ncollector maybe\n"},
		{"sdn bad asn", "topology line 2\nsdn x\n"},
		{"sdn last out of range", "topology line 2\nsdn last 5\n"},
		{"lifecycle before start", "topology line 2\nannounce 1\n"},
		{"unknown command after start", header + "dance\n"},
		{"bad measure trigger", header + "measure explode 1\n"},
		{"bad print", header + "print everything\n"},
		{"withdraw before announce", header + "withdraw 1\n"},
		{"probe unknown", header + "probe 1 9\n"},
		{"bad duration", header + "run-for xyz\n"},
		{"fail unknown link", header + "fail-link 1 3\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := run(t, c.script); err == nil {
				t.Fatalf("script should fail:\n%s", c.script)
			}
		})
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	_, err := run(t, `
# a comment
topology line 2   # trailing comment

seed 9
mrai 2s
no-mrai-jitter
start
wait-established 2m
`)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPrintRIB(t *testing.T) {
	out, err := run(t, header+`
announce all
wait-converged 30m
print rib 1
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"AS1 RIB", "10.0.1.0/24", "local", "path=[2 3]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rib output missing %q:\n%s", want, out)
		}
	}
	// Cluster members have no router RIB.
	if _, err := run(t, `
topology line 3
sdn 2
seed 1
mrai 2s
no-mrai-jitter
start
wait-established 2m
print rib 2
`); err == nil {
		t.Fatal("print rib for a cluster member should error")
	}
}

func TestShippedScenarioFiles(t *testing.T) {
	// The scenario files under examples/scenarios must stay runnable.
	for _, name := range []string{"hybrid-tour.lab", "fig2-point.lab", "maintenance-window.lab"} {
		name := name
		t.Run(name, func(t *testing.T) {
			if testing.Short() && name == "fig2-point.lab" {
				t.Skip("full Figure 2 point is slow")
			}
			f, err := os.Open("../../examples/scenarios/" + name)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			s, err := Parse(f)
			if err != nil {
				t.Fatal(err)
			}
			var out strings.Builder
			if err := NewRunner(&out).Run(s); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWorkloadCommands drives the scheduled-workload directives: "at"
// clauses accumulate through the shared lab parser and "run-workload"
// executes them with one report line per epoch.
func TestWorkloadCommands(t *testing.T) {
	out, err := run(t, `
topology ring 5
sdn last 1
seed 3
mrai 2s
no-mrai-jitter
start
wait-established 2m
announce all
wait-converged 30m
at 0s withdraw 1
at 1m migrate 2
at 2m announce 1
run-workload 1 1h
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"epoch 0 @0s withdraw: convergence ",
		"epoch 1 @1m0s migrate: convergence ",
		"epoch 2 @2m0s announce: convergence ",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestMigrateCommand toggles an AS across the legacy/SDN boundary
// through the direct lifecycle command.
func TestMigrateCommand(t *testing.T) {
	out, err := run(t, `
topology line 4
sdn last 1
seed 3
mrai 2s
no-mrai-jitter
start
wait-established 2m
announce all
wait-converged 30m
migrate 2
wait-converged 30m
migrate 2
wait-converged 30m
`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "migrated AS2 into the SDN cluster") {
		t.Fatalf("missing migrate-in banner:\n%s", out)
	}
	if !strings.Contains(out, "migrated AS2 back to legacy BGP") {
		t.Fatalf("missing migrate-out banner:\n%s", out)
	}
}

func TestWorkloadCommandErrors(t *testing.T) {
	for name, script := range map[string]string{
		"run-workload without at":     header + "run-workload 1\n",
		"at with bad offset":          header + "at x withdraw 1\n",
		"at with unknown verb":        header + "at 0s explode\n",
		"run-workload missing origin": header + "at 0s withdraw 1\nrun-workload\n",
		"run-workload bad timeout":    header + "at 0s withdraw 1\nrun-workload 1 soon\n",
		"at before start":             "topology line 3\nat 0s withdraw 1\n",
		"migrate unknown as":          header + "migrate 9\n",
	} {
		if _, err := run(t, script); err == nil {
			t.Fatalf("%s: script should fail", name)
		}
	}
}

func TestPrintStats(t *testing.T) {
	out, err := run(t, `
topology line 3
sdn 3
seed 1
mrai 2s
no-mrai-jitter
settle 5s
start
wait-established 2m
announce all
wait-converged 30m
print stats
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"network: delivered=", "bgp: updates sent=", "controller: recomputes="} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}
}

func TestDampingDirective(t *testing.T) {
	if _, err := run(t, `
topology line 3
damping on
seed 1
mrai 2s
no-mrai-jitter
start
wait-established 2m
announce all
wait-converged 30m
`); err != nil {
		t.Fatal(err)
	}
	if _, err := run(t, "topology line 2\ndamping maybe\n"); err == nil {
		t.Fatal("bad damping arg should error")
	}
}

// TestSharedTopologyParser pins that the scenario DSL rides the shared
// lab.TopoSpec parser: every documented spec string — including the
// er/ba generators and multi-argument forms like "grid 4 4" — builds
// and starts, and placement strategies beyond "last" work.
func TestSharedTopologyParser(t *testing.T) {
	for _, topo := range []string{
		"clique 4", "line 4", "ring 4", "star 4", "tree 5 2",
		"grid 2 2", "internet 8", "er 6 0.8", "ba 6 2",
	} {
		out, err := run(t, "seed 5\ntopology "+topo+"\nstart\n")
		if err != nil {
			t.Fatalf("topology %q: %v", topo, err)
		}
		if !strings.Contains(out, "started:") {
			t.Fatalf("topology %q: no start banner:\n%s", topo, out)
		}
	}
}

func TestPlacementStrategies(t *testing.T) {
	for _, sdn := range []string{"first 2", "degree 2", "last 2", "none", "2 3"} {
		if _, err := run(t, "topology ring 4\nsdn "+sdn+"\nstart\n"); err != nil {
			t.Fatalf("sdn %q: %v", sdn, err)
		}
	}
	if _, err := run(t, "topology ring 4\nsdn degree\nstart\n"); err == nil {
		t.Fatal("strategy without K should error")
	}
}

// TestChaosDirectives pins the fault-injection surface of the DSL: the
// loss/jitter configuration knobs and the immediate fault verbs
// (controller crash/recovery, session reset, partition/heal), plus the
// fault event kinds in "at" schedules.
func TestChaosDirectives(t *testing.T) {
	out, err := run(t, `
topology clique 4
sdn last 2
seed 1
mrai 2s
no-mrai-jitter
loss 0.01
jitter 2ms
start
wait-established 2m
announce all
wait-converged 30m
session-reset 1 2
wait-converged 30m
ctrl-down
wait-converged 30m
ctrl-up
wait-converged 30m
partition
wait-converged 30m
heal
wait-converged 30m
probe 1 4
print loss
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"controller down: members fell back to legacy BGP",
		"controller up: members re-joined the cluster",
		"partitioned:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if _, err := run(t, "topology line 2\nloss 1.5\n"); err == nil {
		t.Fatal("out-of-range loss should error")
	}
	if _, err := run(t, "topology line 2\nloss\n"); err == nil {
		t.Fatal("missing loss argument should error")
	}
}

// TestScheduledFaultEvents pins that the fault kinds flow through the
// shared workload parser in "at" directives.
func TestScheduledFaultEvents(t *testing.T) {
	out, err := run(t, `
topology clique 4
sdn last 2
seed 1
mrai 2s
no-mrai-jitter
start
wait-established 2m
announce all
wait-converged 30m
at 0s ctrl-down
at 10s withdraw 1
at 10m ctrl-up
run-workload 1 1h
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"epoch 0 @0s ctrl-down", "epoch 1 @10s withdraw", "epoch 2 @10m0s ctrl-up"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
