package speaker

import (
	"net/netip"
	"sort"
	"time"

	"repro/internal/bgp/wire"
	"repro/internal/idr"
	"repro/internal/sim"
)

// Snapshot support: SessionState captures one controller-driven eBGP
// session — FSM state, negotiated hold time, what the controller has
// announced on it, what was learned from the legacy neighbor, and the
// pending timers as (deadline, original sequence) references. The
// re-armed callbacks are the same named methods the live timers run.

// AdvEntry is one controller-announced (prefix, attrs) record.
type AdvEntry struct {
	// Prefix and Attrs are the advertisement as sent (NEXT_HOP set,
	// LOCAL_PREF stripped).
	Prefix netip.Prefix   `json:"prefix"`
	Attrs  wire.PathAttrs `json:"attrs"`
}

// SessionState is the serializable state of one Session.
type SessionState struct {
	// State is the FSM state.
	State State `json:"state"`
	// TransportUp mirrors the transport signal.
	TransportUp bool `json:"transport_up"`
	// HoldTimeNS is the negotiated hold time in nanoseconds.
	HoldTimeNS int64 `json:"hold_time_ns"`
	// RemoteID was learned from the neighbor's OPEN.
	RemoteID idr.RouterID `json:"remote_id"`
	// Advertised lists the controller's announcements, sorted by
	// prefix.
	Advertised []AdvEntry `json:"advertised,omitempty"`
	// AdjIn lists the prefixes learned on the session, sorted.
	AdjIn []netip.Prefix `json:"adj_in,omitempty"`
	// Hold, Keepalive and Retry reference the pending timers.
	Hold      *sim.TimerRef `json:"hold,omitempty"`
	Keepalive *sim.TimerRef `json:"keepalive,omitempty"`
	Retry     *sim.TimerRef `json:"retry,omitempty"`
}

// Snapshot captures the session's serializable state.
func (s *Session) Snapshot() SessionState {
	st := SessionState{
		State:       s.state,
		TransportUp: s.transportUp,
		HoldTimeNS:  int64(s.holdTime),
		RemoteID:    s.remoteID,
		Hold:        sim.RefOf(s.holdTimer),
		Keepalive:   sim.RefOf(s.keepaliveTimer),
		Retry:       sim.RefOf(s.retryTimer),
	}
	for _, p := range s.Advertised() {
		st.Advertised = append(st.Advertised, AdvEntry{Prefix: p, Attrs: s.advertised[p]})
	}
	for p := range s.adjIn {
		st.AdjIn = append(st.AdjIn, p)
	}
	sort.Slice(st.AdjIn, func(i, j int) bool { return idr.PrefixLess(st.AdjIn[i], st.AdjIn[j]) })
	return st
}

// RestoreState overlays a captured state onto a freshly built session
// with the identical configuration, returning the timer arms for the
// experiment layer to execute in global order.
func (s *Session) RestoreState(st SessionState) []sim.TimerArm {
	s.state = st.State
	s.transportUp = st.TransportUp
	s.holdTime = time.Duration(st.HoldTimeNS)
	s.remoteID = st.RemoteID
	for _, ae := range st.Advertised {
		s.advertised[ae.Prefix] = ae.Attrs.Clone()
	}
	for _, p := range st.AdjIn {
		s.adjIn[p] = true
	}
	var arms []sim.TimerArm
	arm := func(ref *sim.TimerRef, set func(sim.Timer), fire func()) {
		if ref == nil {
			return
		}
		at := ref.Deadline()
		arms = append(arms, sim.TimerArm{At: at, Seq: ref.Seq, Arm: func() {
			set(s.cfg.Clock.AfterFunc(at.Sub(s.cfg.Clock.Now()), fire))
		}})
	}
	// In OpenSent the hold timer is the OPEN guard with a plain reset
	// callback; elsewhere it is the negotiated hold timer that also
	// notifies the neighbor.
	holdFire := s.holdExpire
	if st.State == StateOpenSent {
		holdFire = s.openGuardExpire
	}
	arm(st.Hold, func(t sim.Timer) { s.holdTimer = t }, holdFire)
	arm(st.Keepalive, func(t sim.Timer) { s.keepaliveTimer = t }, s.keepaliveFire)
	arm(st.Retry, func(t sim.Timer) { s.retryTimer = t }, s.startOpen)
	return arms
}
