// Package speaker implements the cluster BGP speaker of the paper's
// architecture (§3): the ExaBGP-equivalent that "relays routing
// information between external BGP routers and the SDN controller".
//
// A Session terminates one eBGP peering with a legacy router on behalf
// of a cluster border AS — the member keeps its AS identity, so the
// session speaks with the member's ASN and router ID. The speaker runs
// no decision process: learned routes are surfaced to the controller
// via a callback, and announcements are made only when the controller
// commands them (with fully-formed attributes, including the
// cluster-internal AS path).
package speaker

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"repro/internal/bgp/wire"
	"repro/internal/idr"
	"repro/internal/sim"
)

// RouteEvent is one piece of external routing information relayed to
// the controller.
type RouteEvent struct {
	Prefix    netip.Prefix
	Attrs     wire.PathAttrs
	Withdrawn bool
}

// Config configures one speaker session.
type Config struct {
	// LocalASN and LocalID identify the border member AS the session
	// speaks for (cluster transparency: members keep their identity).
	LocalASN idr.ASN
	LocalID  idr.RouterID
	// RemoteASN is the expected legacy neighbor.
	RemoteASN idr.ASN
	// NextHop is advertised on announcements from this session.
	NextHop netip.Addr
	// HoldTime proposed in OPEN (default 90s).
	HoldTime time.Duration
	Clock    sim.Clock
	// Send transmits one BGP wire frame toward the neighbor (the
	// controller wires this through PacketOut relays).
	Send func([]byte) error
	// OnRoute receives learned/withdrawn external routes.
	OnRoute func(RouteEvent)
	// OnState reports session up/down transitions.
	OnState func(established bool)
}

// State is the session state, reusing the BGP FSM shape.
type State int

// Session states.
const (
	StateIdle State = iota
	StateOpenSent
	StateOpenConfirm
	StateEstablished
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "Idle"
	case StateOpenSent:
		return "OpenSent"
	case StateOpenConfirm:
		return "OpenConfirm"
	case StateEstablished:
		return "Established"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

const defaultHoldTime = 90 * time.Second
const connectRetry = 5 * time.Second

// Session is one controller-driven eBGP session.
type Session struct {
	cfg   Config
	state State

	transportUp bool
	holdTime    time.Duration
	remoteID    idr.RouterID

	holdTimer      sim.Timer
	keepaliveTimer sim.Timer
	retryTimer     sim.Timer

	// advertised tracks what the controller has announced on this
	// session, so withdrawals and idempotent re-announcements work.
	advertised map[netip.Prefix]wire.PathAttrs
	// adjIn remembers learned prefixes so a session reset can emit
	// synthetic withdrawals to the controller.
	adjIn map[netip.Prefix]bool
}

// New validates cfg and returns an Idle session.
func New(cfg Config) (*Session, error) {
	if cfg.LocalASN == 0 || cfg.RemoteASN == 0 {
		return nil, fmt.Errorf("speaker: session needs local and remote ASNs")
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("speaker: session needs a clock")
	}
	if cfg.Send == nil {
		return nil, fmt.Errorf("speaker: session needs a send function")
	}
	if cfg.HoldTime == 0 {
		cfg.HoldTime = defaultHoldTime
	}
	return &Session{
		cfg:        cfg,
		advertised: make(map[netip.Prefix]wire.PathAttrs),
		adjIn:      make(map[netip.Prefix]bool),
	}, nil
}

// State returns the session state.
func (s *Session) State() State { return s.state }

// LocalASN returns the border member AS this session speaks for.
func (s *Session) LocalASN() idr.ASN { return s.cfg.LocalASN }

// RemoteASN returns the legacy neighbor AS.
func (s *Session) RemoteASN() idr.ASN { return s.cfg.RemoteASN }

// Advertised returns the prefixes currently announced, sorted.
func (s *Session) Advertised() []netip.Prefix {
	out := make([]netip.Prefix, 0, len(s.advertised))
	for p := range s.advertised {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return idr.PrefixLess(out[i], out[j]) })
	return out
}

// TransportUp starts session establishment.
func (s *Session) TransportUp() {
	if s.transportUp {
		return
	}
	s.transportUp = true
	s.startOpen()
}

// TransportDown resets the session until the transport returns.
func (s *Session) TransportDown() {
	if !s.transportUp {
		return
	}
	s.transportUp = false
	s.reset(false)
}

func (s *Session) startOpen() {
	if !s.transportUp || s.state != StateIdle {
		return
	}
	if err := s.sendOpen(); err != nil {
		s.armRetry()
		return
	}
	s.state = StateOpenSent
	guard := 4 * time.Minute
	if s.cfg.HoldTime > guard {
		guard = s.cfg.HoldTime
	}
	s.stopTimer(&s.holdTimer)
	s.holdTimer = s.cfg.Clock.AfterFunc(guard, s.openGuardExpire)
}

// openGuardExpire is the hold-timer callback while in OpenSent: the
// RFC 4271 §8.2.2 large guard, which resets without notifying.
func (s *Session) openGuardExpire() { s.reset(true) }

func (s *Session) armRetry() {
	s.stopTimer(&s.retryTimer)
	s.retryTimer = s.cfg.Clock.AfterFunc(connectRetry, s.startOpen)
}

func (s *Session) stopTimer(t *sim.Timer) {
	if *t != nil {
		(*t).Stop()
		*t = nil
	}
}

func (s *Session) sendOpen() error {
	msg := wire.Open{
		AS:           s.cfg.LocalASN,
		HoldTimeSecs: uint16(s.cfg.HoldTime / time.Second),
		ID:           s.cfg.LocalID,
	}
	frame, err := wire.Marshal(msg)
	if err != nil {
		return err
	}
	return s.cfg.Send(frame)
}

func (s *Session) send(m wire.Message) error {
	frame, err := wire.Marshal(m)
	if err != nil {
		return err
	}
	return s.cfg.Send(frame)
}

// Deliver processes one BGP frame relayed from the border switch.
func (s *Session) Deliver(frame []byte) {
	if !s.transportUp {
		return
	}
	msg, err := wire.Unmarshal(frame)
	if err != nil {
		if de, ok := err.(*wire.DecodeError); ok {
			_ = s.send(wire.Notification{Code: de.Code, Subcode: de.Subcode})
		}
		s.reset(true)
		return
	}
	switch m := msg.(type) {
	case wire.Open:
		s.handleOpen(m)
	case wire.Keepalive:
		s.handleKeepalive()
	case wire.Update:
		s.handleUpdate(m)
	case wire.Notification:
		s.reset(true)
	}
}

func (s *Session) handleOpen(m wire.Open) {
	if m.AS != s.cfg.RemoteASN {
		_ = s.send(wire.Notification{Code: wire.NotifOpenMessageError, Subcode: 2})
		s.reset(true)
		return
	}
	switch s.state {
	case StateIdle:
		if err := s.sendOpen(); err != nil {
			s.armRetry()
			return
		}
	case StateOpenSent:
	default:
		_ = s.send(wire.Notification{Code: wire.NotifFSMError})
		s.reset(true)
		return
	}
	s.remoteID = m.ID
	s.holdTime = s.cfg.HoldTime
	if remote := time.Duration(m.HoldTimeSecs) * time.Second; remote < s.holdTime {
		s.holdTime = remote
	}
	if err := s.send(wire.Keepalive{}); err != nil {
		s.reset(true)
		return
	}
	s.state = StateOpenConfirm
	s.armHoldTimer()
}

func (s *Session) handleKeepalive() {
	switch s.state {
	case StateOpenConfirm:
		s.state = StateEstablished
		s.armHoldTimer()
		s.armKeepalive()
		if s.cfg.OnState != nil {
			s.cfg.OnState(true)
		}
	case StateEstablished:
		s.armHoldTimer()
	default:
		_ = s.send(wire.Notification{Code: wire.NotifFSMError})
		s.reset(true)
	}
}

func (s *Session) handleUpdate(m wire.Update) {
	if s.state != StateEstablished {
		_ = s.send(wire.Notification{Code: wire.NotifFSMError})
		s.reset(true)
		return
	}
	s.armHoldTimer()
	if s.cfg.OnRoute == nil {
		return
	}
	for _, p := range m.Withdrawn {
		delete(s.adjIn, p)
		s.cfg.OnRoute(RouteEvent{Prefix: p, Withdrawn: true})
	}
	if len(m.NLRI) == 0 {
		return
	}
	// Loop check against the border member's own ASN.
	if m.Attrs.ASPath.Contains(s.cfg.LocalASN) {
		return
	}
	for _, p := range m.NLRI {
		s.adjIn[p] = true
		s.cfg.OnRoute(RouteEvent{Prefix: p, Attrs: m.Attrs.Clone()})
	}
}

func (s *Session) armHoldTimer() {
	if s.holdTime == 0 {
		return
	}
	s.stopTimer(&s.holdTimer)
	s.holdTimer = s.cfg.Clock.AfterFunc(s.holdTime, s.holdExpire)
}

// holdExpire is the negotiated hold-timer callback: notify the
// neighbor, then reset.
func (s *Session) holdExpire() {
	_ = s.send(wire.Notification{Code: wire.NotifHoldTimerExpired})
	s.reset(true)
}

func (s *Session) armKeepalive() {
	if s.holdTime == 0 {
		return
	}
	interval := s.holdTime / 3
	if interval <= 0 {
		interval = time.Second
	}
	s.stopTimer(&s.keepaliveTimer)
	s.keepaliveTimer = s.cfg.Clock.AfterFunc(interval, s.keepaliveFire)
}

// keepaliveFire is the keepalive-timer callback: send one keepalive
// and re-arm.
func (s *Session) keepaliveFire() {
	if s.state != StateEstablished {
		return
	}
	_ = s.send(wire.Keepalive{})
	s.armKeepalive()
}

// Announce advertises prefix with the controller-built attributes.
// The speaker sets only NEXT_HOP; the AS path must already carry the
// cluster-internal sequence. Re-announcing identical attributes is a
// no-op.
func (s *Session) Announce(prefix netip.Prefix, attrs wire.PathAttrs) error {
	if s.state != StateEstablished {
		return fmt.Errorf("speaker: session %v->%v not established", s.cfg.LocalASN, s.cfg.RemoteASN)
	}
	attrs = attrs.Clone()
	attrs.NextHop = s.cfg.NextHop
	attrs.LocalPref = nil
	if prev, ok := s.advertised[prefix]; ok && prev.Equal(attrs) {
		return nil
	}
	if err := s.send(wire.Update{Attrs: attrs, NLRI: []netip.Prefix{prefix}}); err != nil {
		return err
	}
	s.advertised[prefix] = attrs
	return nil
}

// WithdrawPrefix retracts a previously announced prefix (no-op when it
// was never advertised).
func (s *Session) WithdrawPrefix(prefix netip.Prefix) error {
	if s.state != StateEstablished {
		return fmt.Errorf("speaker: session %v->%v not established", s.cfg.LocalASN, s.cfg.RemoteASN)
	}
	if _, ok := s.advertised[prefix]; !ok {
		return nil
	}
	if err := s.send(wire.Update{Withdrawn: []netip.Prefix{prefix}}); err != nil {
		return err
	}
	delete(s.advertised, prefix)
	return nil
}

// reset tears the session down, emitting synthetic withdrawals to the
// controller for everything learned on it.
func (s *Session) reset(reconnect bool) {
	wasEstablished := s.state == StateEstablished
	s.state = StateIdle
	s.stopTimer(&s.holdTimer)
	s.stopTimer(&s.keepaliveTimer)
	s.stopTimer(&s.retryTimer)
	s.remoteID = idr.RouterID{}
	s.advertised = make(map[netip.Prefix]wire.PathAttrs)
	learned := make([]netip.Prefix, 0, len(s.adjIn))
	for p := range s.adjIn {
		learned = append(learned, p)
	}
	sort.Slice(learned, func(i, j int) bool { return idr.PrefixLess(learned[i], learned[j]) })
	s.adjIn = make(map[netip.Prefix]bool)
	if wasEstablished {
		if s.cfg.OnRoute != nil {
			for _, p := range learned {
				s.cfg.OnRoute(RouteEvent{Prefix: p, Withdrawn: true})
			}
		}
		if s.cfg.OnState != nil {
			s.cfg.OnState(false)
		}
	}
	if reconnect && s.transportUp {
		s.armRetry()
	}
}
