package speaker

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/bgp/wire"
	"repro/internal/idr"
	"repro/internal/netem"
	"repro/internal/sim"
)

// rig wires one speaker session (for border AS 10) against one legacy
// bgp.Router (AS 2) over a netem link.
type rig struct {
	k      *sim.Kernel
	sess   *Session
	router *bgp.Router
	link   *netem.Link
	events []RouteEvent
	states []bool
}

func newRig(t *testing.T) *rig {
	t.Helper()
	k := sim.NewKernel(1)
	net := netem.NewNetwork(k, k.Rand())
	swNode, err := net.AddNode("sw")
	if err != nil {
		t.Fatal(err)
	}
	rNode, err := net.AddNode("r")
	if err != nil {
		t.Fatal(err)
	}
	link, err := net.Connect(swNode, rNode, netem.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	epSw, epR := link.Endpoints()

	g := &rig{k: k, link: link}

	router, err := bgp.New(bgp.Config{
		ASN:      2,
		RouterID: idr.RouterIDFromAddr(netip.MustParseAddr("172.16.0.2")),
		Clock:    k,
		Rand:     k.Rand(),
		Timers:   bgp.Timers{MRAI: time.Second, MRAIJitter: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	peer, err := router.AddPeer(bgp.PeerConfig{
		Key:       "to-AS10",
		RemoteASN: 10,
		NextHop:   netip.MustParseAddr("100.64.0.2"),
		Send:      epR.Send,
	})
	if err != nil {
		t.Fatal(err)
	}
	rNode.OnMessage(func(from *netem.Endpoint, data []byte) {
		router.Deliver("to-AS10", data)
	})

	sess, err := New(Config{
		LocalASN:  10,
		LocalID:   idr.RouterIDFromAddr(netip.MustParseAddr("172.16.0.10")),
		RemoteASN: 2,
		NextHop:   netip.MustParseAddr("100.64.0.1"),
		Clock:     k,
		Send:      epSw.Send,
		OnRoute:   func(ev RouteEvent) { g.events = append(g.events, ev) },
		OnState:   func(up bool) { g.states = append(g.states, up) },
	})
	if err != nil {
		t.Fatal(err)
	}
	swNode.OnMessage(func(from *netem.Endpoint, data []byte) {
		sess.Deliver(data)
	})
	link.OnStateChange(func(up bool) {
		if up {
			sess.TransportUp()
			peer.TransportUp()
		} else {
			sess.TransportDown()
			peer.TransportDown()
		}
	})
	g.sess = sess
	g.router = router
	k.Go(func() {
		sess.TransportUp()
		peer.TransportUp()
	})
	return g
}

func TestSessionEstablishes(t *testing.T) {
	g := newRig(t)
	if err := g.k.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if g.sess.State() != StateEstablished {
		t.Fatalf("speaker state = %v", g.sess.State())
	}
	if g.router.EstablishedCount() != 1 {
		t.Fatal("router side not established")
	}
	if len(g.states) != 1 || !g.states[0] {
		t.Fatalf("state events = %v", g.states)
	}
	if g.sess.LocalASN() != 10 || g.sess.RemoteASN() != 2 {
		t.Fatal("session identity wrong")
	}
}

func TestLearnsExternalRoutes(t *testing.T) {
	g := newRig(t)
	pfx := netip.MustParsePrefix("10.0.2.0/24")
	g.k.AfterFunc(time.Second, func() { _ = g.router.Announce(pfx) })
	if err := g.k.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(g.events) != 1 {
		t.Fatalf("route events = %v", g.events)
	}
	ev := g.events[0]
	if ev.Withdrawn || ev.Prefix != pfx {
		t.Fatalf("event = %+v", ev)
	}
	if !ev.Attrs.ASPath.Equal(wire.NewASPath(2)) {
		t.Fatalf("path = %v", ev.Attrs.ASPath)
	}
	// Withdrawal surfaces too.
	g.k.Go(func() { _ = g.router.Withdraw(pfx) })
	if err := g.k.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(g.events) != 2 || !g.events[1].Withdrawn {
		t.Fatalf("events = %v", g.events)
	}
}

func TestAnnounceToLegacy(t *testing.T) {
	g := newRig(t)
	if err := g.k.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	pfx := netip.MustParsePrefix("10.0.10.0/24")
	attrs := wire.PathAttrs{
		Origin: wire.OriginIGP,
		ASPath: wire.NewASPath(10, 11), // cluster-internal sequence
	}
	g.k.Go(func() {
		if err := g.sess.Announce(pfx, attrs); err != nil {
			t.Error(err)
		}
	})
	if err := g.k.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	best, ok := g.router.Table().Best(pfx)
	if !ok {
		t.Fatal("legacy router did not learn the cluster prefix")
	}
	if !best.Attrs.ASPath.Equal(wire.NewASPath(10, 11)) {
		t.Fatalf("path = %v", best.Attrs.ASPath)
	}
	if best.Attrs.NextHop != netip.MustParseAddr("100.64.0.1") {
		t.Fatalf("next hop = %v", best.Attrs.NextHop)
	}
	if adv := g.sess.Advertised(); len(adv) != 1 || adv[0] != pfx {
		t.Fatalf("Advertised = %v", adv)
	}
	// Idempotent re-announce sends nothing new (no error, state same).
	g.k.Go(func() {
		if err := g.sess.Announce(pfx, attrs); err != nil {
			t.Error(err)
		}
	})
	if err := g.k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	// Withdraw.
	g.k.Go(func() {
		if err := g.sess.WithdrawPrefix(pfx); err != nil {
			t.Error(err)
		}
	})
	if err := g.k.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.router.Table().Best(pfx); ok {
		t.Fatal("withdrawal did not reach the legacy router")
	}
	if len(g.sess.Advertised()) != 0 {
		t.Fatal("Advertised should be empty")
	}
	// Withdrawing again is a no-op.
	g.k.Go(func() {
		if err := g.sess.WithdrawPrefix(pfx); err != nil {
			t.Error(err)
		}
	})
	if err := g.k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestAnnounceRequiresEstablished(t *testing.T) {
	k := sim.NewKernel(1)
	sess, err := New(Config{
		LocalASN: 10, RemoteASN: 2, Clock: k,
		Send: func([]byte) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Announce(netip.MustParsePrefix("10.0.0.0/24"), wire.PathAttrs{}); err == nil {
		t.Fatal("announce while Idle should error")
	}
	if err := sess.WithdrawPrefix(netip.MustParsePrefix("10.0.0.0/24")); err == nil {
		t.Fatal("withdraw while Idle should error")
	}
}

func TestResetEmitsSyntheticWithdrawals(t *testing.T) {
	g := newRig(t)
	pfx := netip.MustParsePrefix("10.0.2.0/24")
	g.k.AfterFunc(time.Second, func() { _ = g.router.Announce(pfx) })
	if err := g.k.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(g.events) != 1 {
		t.Fatalf("setup events = %v", g.events)
	}
	g.k.Go(func() { g.link.SetUp(false) })
	if err := g.k.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(g.events) != 2 || !g.events[1].Withdrawn || g.events[1].Prefix != pfx {
		t.Fatalf("expected synthetic withdrawal, events = %v", g.events)
	}
	if len(g.states) != 2 || g.states[1] {
		t.Fatalf("state events = %v", g.states)
	}
	// Recovery re-establishes and relearns.
	g.k.Go(func() { g.link.SetUp(true) })
	if err := g.k.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if g.sess.State() != StateEstablished {
		t.Fatal("session should recover")
	}
	last := g.events[len(g.events)-1]
	if last.Withdrawn || last.Prefix != pfx {
		t.Fatalf("route should be relearned, events = %v", g.events)
	}
}

func TestConfigValidation(t *testing.T) {
	k := sim.NewKernel(1)
	send := func([]byte) error { return nil }
	if _, err := New(Config{RemoteASN: 2, Clock: k, Send: send}); err == nil {
		t.Fatal("missing local ASN should error")
	}
	if _, err := New(Config{LocalASN: 1, Clock: k, Send: send}); err == nil {
		t.Fatal("missing remote ASN should error")
	}
	if _, err := New(Config{LocalASN: 1, RemoteASN: 2, Send: send}); err == nil {
		t.Fatal("missing clock should error")
	}
	if _, err := New(Config{LocalASN: 1, RemoteASN: 2, Clock: k}); err == nil {
		t.Fatal("missing send should error")
	}
	if StateIdle.String() != "Idle" || State(9).String() == "" {
		t.Fatal("State.String wrong")
	}
}

func TestWrongRemoteASNRejected(t *testing.T) {
	g := newRig(t)
	// Sabotage: speaker expects AS 2 but we reconfigure it to expect 99
	// before transport comes up is hard here; instead check the router
	// side still works and speaker rejects a wrong OPEN by crafting one.
	if err := g.k.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Deliver a spoofed OPEN with the wrong ASN on the established
	// session: FSM error path resets the session.
	open, err := wire.Marshal(wire.Open{AS: 99, HoldTimeSecs: 90})
	if err != nil {
		t.Fatal(err)
	}
	g.k.Go(func() { g.sess.Deliver(open) })
	if err := g.k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if g.sess.State() == StateEstablished {
		t.Fatal("spoofed OPEN should reset the session")
	}
}
