package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); !almost(got, 2.5) {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almost(got, math.Sqrt(32.0/7.0)) {
		t.Fatalf("StdDev = %v", got)
	}
	if !math.IsNaN(StdDev([]float64{1})) {
		t.Fatal("StdDev of single value should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Interpolation on even-length input.
	if got := Median([]float64{1, 2, 3, 4}); !almost(got, 2.5) {
		t.Fatalf("Median = %v, want 2.5", got)
	}
	// Clamping out-of-range q.
	if got := Quantile(xs, -1); !almost(got, 1) {
		t.Fatalf("Quantile(-1) = %v, want 1", got)
	}
	if got := Quantile(xs, 2); !almost(got, 5) {
		t.Fatalf("Quantile(2) = %v, want 5", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("Quantile(nil) should be NaN")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.N != 5 || !almost(s.Min, 1) || !almost(s.Max, 5) || !almost(s.Median, 3) {
		t.Fatalf("Summarize = %+v", s)
	}
	if !almost(s.Q1, 2) || !almost(s.Q3, 4) || !almost(s.IQR(), 2) {
		t.Fatalf("quartiles wrong: %+v", s)
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Median) {
		t.Fatalf("empty summary = %+v", empty)
	}
	if empty.String() == "" {
		t.Fatal("String() should render")
	}
}

func TestSummarizeDurations(t *testing.T) {
	s := SummarizeDurations([]time.Duration{time.Second, 3 * time.Second})
	if !almost(s.Mean, 2) {
		t.Fatalf("mean = %v, want 2s", s.Mean)
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 1 + 2x
	a, b, r2 := LinearFit(x, y)
	if !almost(a, 1) || !almost(b, 2) || !almost(r2, 1) {
		t.Fatalf("fit = (%v, %v, %v), want (1, 2, 1)", a, b, r2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	a, b, r2 := LinearFit([]float64{1, 1}, []float64{2, 3})
	if !math.IsNaN(a) || !math.IsNaN(b) || !math.IsNaN(r2) {
		t.Fatal("constant x should yield NaNs")
	}
	a, b, r2 = LinearFit([]float64{1}, []float64{2})
	if !math.IsNaN(a) || !math.IsNaN(b) || !math.IsNaN(r2) {
		t.Fatal("single point should yield NaNs")
	}
	// Constant y: slope 0, perfect fit.
	a, b, r2 = LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if !almost(a, 4) || !almost(b, 0) || !almost(r2, 1) {
		t.Fatalf("constant-y fit = (%v, %v, %v)", a, b, r2)
	}
}

// Property: min <= q1 <= median <= q3 <= max for any input.
func TestPropertySummaryOrdered(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is monotone in q.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(xs []float64, q1, q2 float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 || math.IsNaN(q1) || math.IsNaN(q2) {
			return true
		}
		lo, hi := math.Mod(math.Abs(q1), 1), math.Mod(math.Abs(q2), 1)
		if lo > hi {
			lo, hi = hi, lo
		}
		return Quantile(clean, lo) <= Quantile(clean, hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
