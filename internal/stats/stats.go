// Package stats provides the small set of summary statistics the
// experiment harness reports: means, quantiles and five-number boxplot
// summaries (the paper's Figure 2 shows boxplots over 10 runs).
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary is a five-number summary plus mean, as drawn in a boxplot.
type Summary struct {
	N      int
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	Mean   float64
}

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (NaN if n < 2).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type 7, the R/NumPy default).
// It returns NaN for empty input and does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Summarize computes the boxplot summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		nan := math.NaN()
		return Summary{N: 0, Min: nan, Q1: nan, Median: nan, Q3: nan, Max: nan, Mean: nan}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Summary{
		N:      len(s),
		Min:    s[0],
		Q1:     Quantile(s, 0.25),
		Median: Quantile(s, 0.5),
		Q3:     Quantile(s, 0.75),
		Max:    s[len(s)-1],
		Mean:   Mean(s),
	}
}

// SummarizeDurations converts ds to seconds and summarizes them.
func SummarizeDurations(ds []time.Duration) Summary {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = d.Seconds()
	}
	return Summarize(xs)
}

// String renders the summary as one human-readable line, in seconds
// when the values are times.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f mean=%.3f",
		s.N, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean)
}

// IQR returns the interquartile range.
func (s Summary) IQR() float64 { return s.Q3 - s.Q1 }

// LinearFit fits y = a + b*x by least squares and returns (a, b, r2).
// It returns NaNs when fewer than two distinct x values exist. The
// harness uses it to check the paper's "linear reduction" claim.
func LinearFit(x, y []float64) (a, b, r2 float64) {
	nan := math.NaN()
	if len(x) != len(y) || len(x) < 2 {
		return nan, nan, nan
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return nan, nan, nan
	}
	b = sxy / sxx
	a = my - b*mx
	if syy == 0 {
		return a, b, 1
	}
	r2 = (sxy * sxy) / (sxx * syy)
	return a, b, r2
}
