package addressing

import (
	"net/netip"
	"testing"
	"testing/quick"

	"repro/internal/idr"
)

func mustPlan(t *testing.T, asns ...idr.ASN) *Plan {
	t.Helper()
	p, err := NewPlan(asns)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestOriginPrefixScheme(t *testing.T) {
	p := mustPlan(t, 1, 258)
	pre, err := p.OriginPrefix(1)
	if err != nil {
		t.Fatal(err)
	}
	if pre != netip.MustParsePrefix("10.0.1.0/24") {
		t.Fatalf("AS1 prefix = %v", pre)
	}
	pre, _ = p.OriginPrefix(258) // 258 = 0x0102
	if pre != netip.MustParsePrefix("10.1.2.0/24") {
		t.Fatalf("AS258 prefix = %v", pre)
	}
	if _, err := p.OriginPrefix(99); err == nil {
		t.Fatal("unknown ASN should error")
	}
}

func TestRouterIDScheme(t *testing.T) {
	p := mustPlan(t, 7)
	id, err := p.RouterID(7)
	if err != nil {
		t.Fatal(err)
	}
	if id.String() != "172.16.0.7" {
		t.Fatalf("router ID = %v", id)
	}
	if _, err := p.RouterID(8); err == nil {
		t.Fatal("unknown ASN should error")
	}
}

func TestNewPlanRejectsBadASNs(t *testing.T) {
	if _, err := NewPlan([]idr.ASN{0}); err == nil {
		t.Fatal("ASN 0 should be rejected")
	}
	if _, err := NewPlan([]idr.ASN{70000}); err == nil {
		t.Fatal("ASN > 65535 should be rejected")
	}
	if _, err := NewPlan([]idr.ASN{5, 5}); err == nil {
		t.Fatal("duplicate ASN should be rejected")
	}
}

func TestAddLink(t *testing.T) {
	p := mustPlan(t, 1, 2, 3)
	ln, err := p.AddLink(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ln.Prefix != netip.MustParsePrefix("100.64.0.0/30") {
		t.Fatalf("first link prefix = %v", ln.Prefix)
	}
	a1, ok := ln.Addr(1)
	if !ok || a1 != netip.MustParseAddr("100.64.0.1") {
		t.Fatalf("AS1 addr = %v", a1)
	}
	a2, _ := ln.Addr(2)
	if a2 != netip.MustParseAddr("100.64.0.2") {
		t.Fatalf("AS2 addr = %v", a2)
	}
	if _, ok := ln.Addr(3); ok {
		t.Fatal("AS3 has no address on this link")
	}

	// Second distinct link gets the next /30.
	ln2, err := p.AddLink(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ln2.Prefix != netip.MustParsePrefix("100.64.0.4/30") {
		t.Fatalf("second link prefix = %v", ln2.Prefix)
	}

	// Re-adding returns the same allocation, in either order.
	again, err := p.AddLink(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if again.Prefix != ln.Prefix {
		t.Fatal("re-add allocated a new network")
	}
	if p.NumLinks() != 2 {
		t.Fatalf("NumLinks = %d, want 2", p.NumLinks())
	}
}

func TestAddLinkErrors(t *testing.T) {
	p := mustPlan(t, 1, 2)
	if _, err := p.AddLink(1, 1); err == nil {
		t.Fatal("self link should error")
	}
	if _, err := p.AddLink(1, 9); err == nil {
		t.Fatal("unknown endpoint should error")
	}
}

func TestLinkLookup(t *testing.T) {
	p := mustPlan(t, 1, 2)
	if _, ok := p.Link(1, 2); ok {
		t.Fatal("link not yet allocated")
	}
	if _, err := p.AddLink(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Link(2, 1); !ok {
		t.Fatal("lookup should be order-independent")
	}
}

func TestHostAddr(t *testing.T) {
	p := mustPlan(t, 1)
	h, err := p.HostAddr(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h != netip.MustParseAddr("10.0.1.10") {
		t.Fatalf("host addr = %v", h)
	}
	if _, err := p.HostAddr(1, 0); err == nil {
		t.Fatal("host index 0 should error")
	}
	if _, err := p.HostAddr(1, 255); err == nil {
		t.Fatal("host index 255 should error")
	}
	if _, err := p.HostAddr(2, 1); err == nil {
		t.Fatal("unknown AS should error")
	}
}

func TestASNsSorted(t *testing.T) {
	p := mustPlan(t, 9, 3, 7)
	got := p.ASNs()
	want := []idr.ASN{3, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ASNs() = %v", got)
		}
	}
}

// Property: every AS's origin prefix, router ID and link addresses are
// mutually disjoint across the plan.
func TestPropertyNoAddressCollisions(t *testing.T) {
	f := func(raw []uint16) bool {
		seenASN := map[idr.ASN]bool{}
		var asns []idr.ASN
		for _, r := range raw {
			a := idr.ASN(r%2000) + 1
			if !seenASN[a] {
				seenASN[a] = true
				asns = append(asns, a)
			}
			if len(asns) == 12 {
				break
			}
		}
		if len(asns) < 2 {
			return true
		}
		p, err := NewPlan(asns)
		if err != nil {
			return false
		}
		used := map[netip.Addr]bool{}
		add := func(a netip.Addr) bool {
			if used[a] {
				return false
			}
			used[a] = true
			return true
		}
		for _, a := range asns {
			pre, _ := p.OriginPrefix(a)
			if !add(pre.Addr()) {
				return false
			}
			id, _ := p.RouterID(a)
			if !add(id.Addr()) {
				return false
			}
		}
		for i := 0; i < len(asns); i++ {
			for j := i + 1; j < len(asns); j++ {
				ln, err := p.AddLink(asns[i], asns[j])
				if err != nil {
					return false
				}
				ai, _ := ln.Addr(asns[i])
				aj, _ := ln.Addr(asns[j])
				if !add(ai) || !add(aj) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
