// Package addressing implements the framework's automatic configuration
// management for IP resources (paper §2: "the framework should take
// care of configuration management such as IP prefixes"). Given a set
// of ASes and links it deterministically assigns:
//
//   - one origin /24 per AS (the prefix the AS may announce),
//   - one router ID per AS,
//   - one /30 transfer network per inter-AS link with one address per
//     endpoint.
//
// The plan is pure data: the emulator and BGP layers consume it.
package addressing

import (
	"fmt"
	"net/netip"
	"sort"

	"repro/internal/idr"
)

// Plan is a complete address assignment for one experiment.
type Plan struct {
	origin   map[idr.ASN]netip.Prefix
	routerID map[idr.ASN]idr.RouterID
	links    map[[2]idr.ASN]LinkNet
	nextLink uint32
}

// LinkNet is the /30 transfer network of one inter-AS link.
type LinkNet struct {
	Prefix netip.Prefix
	// AddrOf maps each endpoint AS to its interface address.
	addrs map[idr.ASN]netip.Addr
}

// Addr returns the interface address of asn on this link.
func (l LinkNet) Addr(asn idr.ASN) (netip.Addr, bool) {
	a, ok := l.addrs[asn]
	return a, ok
}

const (
	maxASN   = 0xFFFF // the 10.x.y.0/24 scheme addresses 16-bit ASNs
	maxLinks = 1 << 20
)

// NewPlan allocates addresses for the given ASes. Links are added with
// AddLink. ASNs above 65535 are rejected: the deterministic scheme
// packs the ASN into the second and third octets.
func NewPlan(asns []idr.ASN) (*Plan, error) {
	p := &Plan{
		origin:   make(map[idr.ASN]netip.Prefix, len(asns)),
		routerID: make(map[idr.ASN]idr.RouterID, len(asns)),
		links:    make(map[[2]idr.ASN]LinkNet),
	}
	sorted := append([]idr.ASN(nil), asns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, a := range sorted {
		if i > 0 && sorted[i-1] == a {
			return nil, fmt.Errorf("addressing: duplicate ASN %v", a)
		}
		if a == 0 || a > maxASN {
			return nil, fmt.Errorf("addressing: ASN %v outside supported range 1..%d", a, maxASN)
		}
		hi, lo := byte(a>>8), byte(a&0xFF)
		p.origin[a] = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, hi, lo, 0}), 24)
		p.routerID[a] = idr.RouterIDFromAddr(netip.AddrFrom4([4]byte{172, 16, hi, lo}))
	}
	return p, nil
}

// OriginPrefix returns the /24 an AS originates.
func (p *Plan) OriginPrefix(asn idr.ASN) (netip.Prefix, error) {
	pre, ok := p.origin[asn]
	if !ok {
		return netip.Prefix{}, fmt.Errorf("addressing: unknown ASN %v", asn)
	}
	return pre, nil
}

// RouterID returns the BGP identifier of an AS's router.
func (p *Plan) RouterID(asn idr.ASN) (idr.RouterID, error) {
	id, ok := p.routerID[asn]
	if !ok {
		return idr.RouterID{}, fmt.Errorf("addressing: unknown ASN %v", asn)
	}
	return id, nil
}

// ASNs returns all planned ASes in ascending order.
func (p *Plan) ASNs() []idr.ASN {
	out := make([]idr.ASN, 0, len(p.origin))
	for a := range p.origin {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func linkKey(a, b idr.ASN) [2]idr.ASN {
	if b < a {
		a, b = b, a
	}
	return [2]idr.ASN{a, b}
}

// AddLink allocates the next /30 transfer network from 100.64.0.0/10
// (the shared-address space) for the link a-b. The lower-numbered AS
// gets the first usable address. Adding the same link twice returns
// the existing allocation.
func (p *Plan) AddLink(a, b idr.ASN) (LinkNet, error) {
	if a == b {
		return LinkNet{}, fmt.Errorf("addressing: link endpoints equal (%v)", a)
	}
	if _, ok := p.origin[a]; !ok {
		return LinkNet{}, fmt.Errorf("addressing: unknown ASN %v", a)
	}
	if _, ok := p.origin[b]; !ok {
		return LinkNet{}, fmt.Errorf("addressing: unknown ASN %v", b)
	}
	key := linkKey(a, b)
	if ln, ok := p.links[key]; ok {
		return ln, nil
	}
	if p.nextLink >= maxLinks {
		return LinkNet{}, fmt.Errorf("addressing: out of /30 transfer networks")
	}
	base := uint32(100)<<24 | uint32(64)<<16 // 100.64.0.0
	net := base + p.nextLink*4
	p.nextLink++
	var b4 [4]byte
	b4[0] = byte(net >> 24)
	b4[1] = byte(net >> 16)
	b4[2] = byte(net >> 8)
	b4[3] = byte(net)
	prefix := netip.PrefixFrom(netip.AddrFrom4(b4), 30)
	lo, hi := key[0], key[1]
	addr1 := addrPlus(b4, 1)
	addr2 := addrPlus(b4, 2)
	ln := LinkNet{
		Prefix: prefix,
		addrs:  map[idr.ASN]netip.Addr{lo: addr1, hi: addr2},
	}
	p.links[key] = ln
	return ln, nil
}

func addrPlus(base [4]byte, n byte) netip.Addr {
	base[3] += n
	return netip.AddrFrom4(base)
}

// Link returns the allocation for link a-b, if present.
func (p *Plan) Link(a, b idr.ASN) (LinkNet, bool) {
	ln, ok := p.links[linkKey(a, b)]
	return ln, ok
}

// NumLinks returns how many transfer networks have been allocated.
func (p *Plan) NumLinks() int { return len(p.links) }

// HostAddr returns the i-th host address (1-based) inside an AS's
// origin prefix, used when attaching monitoring hosts (paper §3: "it is
// also possible to add hosts with IP addresses within a particular
// prefix").
func (p *Plan) HostAddr(asn idr.ASN, i int) (netip.Addr, error) {
	pre, err := p.OriginPrefix(asn)
	if err != nil {
		return netip.Addr{}, err
	}
	if i < 1 || i > 254 {
		return netip.Addr{}, fmt.Errorf("addressing: host index %d outside 1..254", i)
	}
	b4 := pre.Addr().As4()
	b4[3] = byte(i)
	return netip.AddrFrom4(b4), nil
}
