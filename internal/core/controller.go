// Package core implements the paper's primary contribution: the
// proof-of-concept IDR SDN controller that exploits centralization to
// improve inter-domain routing convergence (§3).
//
// The controller sits over the cluster BGP speaker and the cluster's
// switches. It maintains two graphs, exactly as the paper describes:
//
//   - the Switch graph — the physical topology of the cluster's
//     switches (member ASes and their intra-cluster links), and
//   - the AS topology graph — a per-destination-prefix transformation
//     of the switch graph that adds the usable external egress routes
//     and removes egresses whose AS paths would re-enter the same
//     sub-cluster, "taking carefully into account paths that cross the
//     legacy world and the SDN cluster so as to avoid loops".
//
// Best paths are computed with Dijkstra on the AS topology graph and
// compiled to flow rules on the member switches. Recomputation is
// delayed (debounced) "so as to improve overall stability and
// rate-limit route flaps due to bursts in external BGP input" — the
// paper's second design insight. Disjoint sub-clusters under one
// controller are supported: an intra-cluster link failure splits the
// switch graph into components that keep routing independently, with
// legacy paths able to reconnect them.
package core

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"repro/internal/bgp/wire"
	"repro/internal/frames"
	"repro/internal/idr"
	"repro/internal/sdn/ofp"
	"repro/internal/sim"
	"repro/internal/speaker"
)

// DefaultDebounce is the default delayed-recomputation window.
const DefaultDebounce = 1 * time.Second

// SessKey identifies one external eBGP peering: the border member it
// terminates on and the switch port it uses.
type SessKey struct {
	Border idr.ASN
	Port   uint32
}

// String renders the key for logs.
func (k SessKey) String() string { return fmt.Sprintf("%v#%d", k.Border, k.Port) }

// Stats counts controller activity for the analysis tools.
type Stats struct {
	Recomputes       uint64
	FlowModsSent     uint64
	RouteEvents      uint64
	AnnounceCommands uint64
	WithdrawCommands uint64
}

// Config configures the controller.
type Config struct {
	Clock sim.Clock
	// Debounce is the delayed-recomputation window (default
	// DefaultDebounce). Zero selects the default; negative disables
	// debouncing entirely (recompute immediately — the ablation case).
	Debounce time.Duration
	// HoldTime proposed on external sessions (default speaker's 90s).
	HoldTime time.Duration
	// OnRecompute, when set, observes every recomputation batch.
	OnRecompute func(dirty int)
}

// Controller is the IDR controller instance (one per cluster).
type Controller struct {
	cfg      Config
	members  map[idr.ASN]*member
	sessions map[SessKey]*extSession
	// extRoutes: per prefix, the candidate external routes by session.
	extRoutes map[netip.Prefix]map[SessKey]wire.PathAttrs
	// owned: cluster-originated prefixes and their owner member.
	owned map[netip.Prefix]idr.ASN

	dirty         map[netip.Prefix]bool
	allDirty      bool
	debounceTimer sim.Timer
	started       bool

	xid   uint32
	stats Stats
}

type member struct {
	asn   idr.ASN
	send  func([]byte) error
	ports map[uint32]*portInfo
}

type portInfo struct {
	neighbor idr.ASN
	isMember bool
	up       bool
	sess     *extSession
}

type extSession struct {
	key         SessKey
	remote      idr.ASN
	sess        *speaker.Session
	established bool
}

// New returns a controller on the given clock.
func New(cfg Config) (*Controller, error) {
	if cfg.Clock == nil {
		return nil, fmt.Errorf("core: controller needs a clock")
	}
	if cfg.Debounce == 0 {
		cfg.Debounce = DefaultDebounce
	}
	return &Controller{
		cfg:       cfg,
		members:   make(map[idr.ASN]*member),
		sessions:  make(map[SessKey]*extSession),
		extRoutes: make(map[netip.Prefix]map[SessKey]wire.PathAttrs),
		owned:     make(map[netip.Prefix]idr.ASN),
		dirty:     make(map[netip.Prefix]bool),
	}, nil
}

// Stats returns a snapshot of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// Members returns the cluster membership, sorted.
func (c *Controller) Members() []idr.ASN {
	out := make([]idr.ASN, 0, len(c.members))
	for a := range c.members {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsMember reports cluster membership.
func (c *Controller) IsMember(asn idr.ASN) bool {
	_, ok := c.members[asn]
	return ok
}

// AddMember registers a cluster member switch with its control-channel
// transmit function. On a started controller (a mid-run migration) the
// new member is greeted immediately.
func (c *Controller) AddMember(asn idr.ASN, send func([]byte) error) error {
	if asn == 0 {
		return fmt.Errorf("core: member needs an ASN")
	}
	if send == nil {
		return fmt.Errorf("core: member %v needs a control channel", asn)
	}
	if _, dup := c.members[asn]; dup {
		return fmt.Errorf("core: duplicate member %v", asn)
	}
	m := &member{asn: asn, send: send, ports: make(map[uint32]*portInfo)}
	c.members[asn] = m
	if c.started {
		return c.greet(m)
	}
	return nil
}

// RemoveMember retracts a cluster member mid-run (the AS migrates back
// to legacy BGP): every external peering on its ports is torn down
// (emitting synthetic withdrawals toward the route computation), its
// switch-graph ports disappear, and every prefix reroutes.
func (c *Controller) RemoveMember(asn idr.ASN) error {
	m, ok := c.members[asn]
	if !ok {
		return fmt.Errorf("core: unknown member %v", asn)
	}
	for _, key := range c.sessionKeys() {
		if key.Border != asn {
			continue
		}
		es := c.sessions[key]
		es.sess.TransportDown()
		delete(c.sessions, key)
	}
	for _, pi := range m.ports {
		pi.sess = nil
	}
	delete(c.members, asn)
	c.markAllDirty()
	return nil
}

// RemovePeering tears down the external peering on a member port (the
// far side migrates into the cluster, so the eBGP session it
// terminated disappears). The session's routes are withdrawn from the
// route computation; the port itself stays registered.
func (c *Controller) RemovePeering(memberASN idr.ASN, port uint32) error {
	m, ok := c.members[memberASN]
	if !ok {
		return fmt.Errorf("core: unknown member %v", memberASN)
	}
	pi, ok := m.ports[port]
	if !ok {
		return fmt.Errorf("core: member %v has no port %d", memberASN, port)
	}
	if pi.sess == nil {
		return fmt.Errorf("core: member %v port %d has no peering", memberASN, port)
	}
	pi.sess.sess.TransportDown()
	delete(c.sessions, pi.sess.key)
	pi.sess = nil
	return nil
}

// SetPortMembership re-flags a registered port as intra-cluster or
// external after a mid-run migration changed what its neighbor is. An
// intra-cluster port must face a current member and carry no peering
// (RemovePeering first); flagging external frees the port for
// AddExternalPeering. The switch graph changed, so every prefix
// reroutes.
func (c *Controller) SetPortMembership(memberASN idr.ASN, port uint32, isMember bool) error {
	m, ok := c.members[memberASN]
	if !ok {
		return fmt.Errorf("core: unknown member %v", memberASN)
	}
	pi, ok := m.ports[port]
	if !ok {
		return fmt.Errorf("core: member %v has no port %d", memberASN, port)
	}
	if isMember {
		if pi.sess != nil {
			return fmt.Errorf("core: member %v port %d still has a peering", memberASN, port)
		}
		if _, ok := c.members[pi.neighbor]; !ok {
			return fmt.Errorf("core: member %v port %d: neighbor %v is not a member", memberASN, port, pi.neighbor)
		}
	}
	pi.isMember = isMember
	c.markAllDirty()
	return nil
}

// Originator returns the member that originates prefix into the
// cluster, if any (migration hands the origination back to the
// member's reborn legacy router).
func (c *Controller) Originator(prefix netip.Prefix) (idr.ASN, bool) {
	owner, ok := c.owned[prefix]
	return owner, ok
}

// RegisterPort teaches the controller the switch graph: member's port
// leads to neighbor (isMember marks intra-cluster links). Ports start
// up.
func (c *Controller) RegisterPort(memberASN idr.ASN, port uint32, neighbor idr.ASN, isMember bool) error {
	m, ok := c.members[memberASN]
	if !ok {
		return fmt.Errorf("core: unknown member %v", memberASN)
	}
	if _, dup := m.ports[port]; dup {
		return fmt.Errorf("core: member %v port %d already registered", memberASN, port)
	}
	if isMember {
		if _, ok := c.members[neighbor]; !ok {
			return fmt.Errorf("core: member %v port %d: intra-cluster neighbor %v is not a member", memberASN, port, neighbor)
		}
	}
	m.ports[port] = &portInfo{neighbor: neighbor, isMember: isMember, up: true}
	return nil
}

// AddExternalPeering creates the speaker session for the eBGP peering
// with remoteASN on the given border port. localID is the border
// member's BGP identifier (members keep their AS identity); nextHop is
// the member's address on the external link.
func (c *Controller) AddExternalPeering(borderASN idr.ASN, port uint32, remoteASN idr.ASN, localID idr.RouterID, nextHop netip.Addr) error {
	m, ok := c.members[borderASN]
	if !ok {
		return fmt.Errorf("core: unknown member %v", borderASN)
	}
	pi, ok := m.ports[port]
	if !ok {
		return fmt.Errorf("core: member %v has no port %d", borderASN, port)
	}
	if pi.isMember {
		return fmt.Errorf("core: member %v port %d is intra-cluster", borderASN, port)
	}
	if pi.sess != nil {
		return fmt.Errorf("core: member %v port %d already has a peering", borderASN, port)
	}
	key := SessKey{Border: borderASN, Port: port}
	es := &extSession{key: key, remote: remoteASN}
	sess, err := speaker.New(speaker.Config{
		LocalASN:  borderASN,
		LocalID:   localID,
		RemoteASN: remoteASN,
		NextHop:   nextHop,
		HoldTime:  c.cfg.HoldTime,
		Clock:     c.cfg.Clock,
		Send: func(bgpFrame []byte) error {
			return c.sendPacketOut(m, port, bgpFrame)
		},
		OnRoute: func(ev speaker.RouteEvent) { c.onRoute(key, ev) },
		OnState: func(up bool) { c.onSessionState(es, up) },
	})
	if err != nil {
		return err
	}
	es.sess = sess
	pi.sess = es
	c.sessions[key] = es
	// A peering added after Start (a mid-run migration) comes up
	// immediately; at build time Start brings it up.
	if c.started && pi.up {
		sess.TransportUp()
	}
	return nil
}

func (c *Controller) nextXid() uint32 {
	c.xid++
	return c.xid
}

func (c *Controller) sendPacketOut(m *member, port uint32, bgpFrame []byte) error {
	po := ofp.PacketOut{OutPort: port, Data: frames.Encode(frames.KindBGP, bgpFrame)}
	frame, err := ofp.Marshal(po, c.nextXid())
	if err != nil {
		return err
	}
	return m.send(frame)
}

// greet performs the OpenFlow handshake toward one member switch.
func (c *Controller) greet(m *member) error {
	for _, msg := range []ofp.Message{ofp.Hello{}, ofp.FeaturesRequest{}} {
		frame, err := ofp.Marshal(msg, c.nextXid())
		if err != nil {
			return err
		}
		if err := m.send(frame); err != nil {
			return err
		}
	}
	return nil
}

// Start greets every switch and brings up the external sessions whose
// ports are up.
func (c *Controller) Start() error {
	if c.started {
		return fmt.Errorf("core: controller already started")
	}
	c.started = true
	for _, asn := range c.Members() {
		if err := c.greet(c.members[asn]); err != nil {
			return err
		}
	}
	for _, key := range c.sessionKeys() {
		es := c.sessions[key]
		pi := c.members[es.key.Border].ports[es.key.Port]
		if pi.up {
			es.sess.TransportUp()
		}
	}
	return nil
}

// sessionKeys returns the external peering keys in sorted order.
func (c *Controller) sessionKeys() []SessKey {
	keys := make([]SessKey, 0, len(c.sessions))
	for k := range c.sessions {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Border != keys[j].Border {
			return keys[i].Border < keys[j].Border
		}
		return keys[i].Port < keys[j].Port
	})
	return keys
}

// OriginatePrefix announces a cluster-originated prefix owned by a
// member AS.
func (c *Controller) OriginatePrefix(owner idr.ASN, prefix netip.Prefix) error {
	if _, ok := c.members[owner]; !ok {
		return fmt.Errorf("core: unknown member %v", owner)
	}
	c.owned[prefix] = owner
	c.markDirty(prefix)
	return nil
}

// WithdrawOriginated retracts a cluster-originated prefix.
func (c *Controller) WithdrawOriginated(prefix netip.Prefix) error {
	if _, ok := c.owned[prefix]; !ok {
		return fmt.Errorf("core: %v is not cluster-originated", prefix)
	}
	delete(c.owned, prefix)
	c.markDirty(prefix)
	return nil
}

// HandleControl processes one OpenFlow frame arriving from a member
// switch.
func (c *Controller) HandleControl(memberASN idr.ASN, frame []byte) error {
	m, ok := c.members[memberASN]
	if !ok {
		return fmt.Errorf("core: control frame from unknown member %v", memberASN)
	}
	msg, xid, err := ofp.Unmarshal(frame)
	if err != nil {
		return fmt.Errorf("core: from member %v: %w", memberASN, err)
	}
	switch v := msg.(type) {
	case ofp.Hello, ofp.FeaturesReply, ofp.EchoReply:
		return nil
	case ofp.EchoRequest:
		reply, err := ofp.Marshal(ofp.EchoReply{Data: v.Data}, xid)
		if err != nil {
			return err
		}
		return m.send(reply)
	case ofp.PacketIn:
		return c.handlePacketIn(m, v)
	case ofp.PortStatus:
		c.handlePortStatus(m, v)
		return nil
	default:
		return fmt.Errorf("core: unexpected %v from member %v", msg.Type(), memberASN)
	}
}

func (c *Controller) handlePacketIn(m *member, pin ofp.PacketIn) error {
	pi, ok := m.ports[pin.InPort]
	if !ok || pi.sess == nil {
		// BGP traffic on a port with no configured peering: drop.
		return nil
	}
	pi.sess.sess.Deliver(pin.Data)
	return nil
}

func (c *Controller) handlePortStatus(m *member, ps ofp.PortStatus) {
	pi, ok := m.ports[ps.Port]
	if !ok || pi.up == ps.Up {
		return
	}
	pi.up = ps.Up
	if pi.sess != nil {
		if ps.Up {
			pi.sess.sess.TransportUp()
		} else {
			pi.sess.sess.TransportDown()
		}
		return
	}
	if pi.isMember {
		// The switch graph changed: every prefix may reroute.
		c.markAllDirty()
	}
}

// onRoute records an external route event and schedules recomputation.
func (c *Controller) onRoute(key SessKey, ev speaker.RouteEvent) {
	c.stats.RouteEvents++
	if ev.Withdrawn {
		if m := c.extRoutes[ev.Prefix]; m != nil {
			delete(m, key)
			if len(m) == 0 {
				delete(c.extRoutes, ev.Prefix)
			}
		}
	} else {
		m := c.extRoutes[ev.Prefix]
		if m == nil {
			m = make(map[SessKey]wire.PathAttrs)
			c.extRoutes[ev.Prefix] = m
		}
		m[key] = ev.Attrs
	}
	c.markDirty(ev.Prefix)
}

func (c *Controller) onSessionState(es *extSession, up bool) {
	es.established = up
	if up {
		// Re-advertise current state on the fresh session.
		c.markAllDirty()
	}
	// Session loss already produced synthetic withdrawals via OnRoute.
}

// markDirty schedules a delayed recomputation for one prefix.
func (c *Controller) markDirty(prefix netip.Prefix) {
	c.dirty[prefix] = true
	c.armDebounce()
}

// markAllDirty schedules recomputation of every known prefix.
func (c *Controller) markAllDirty() {
	c.allDirty = true
	c.armDebounce()
}

func (c *Controller) armDebounce() {
	if c.cfg.Debounce < 0 {
		// Debouncing disabled (ablation): recompute synchronously.
		c.recompute()
		return
	}
	if c.debounceTimer != nil && c.debounceTimer.Active() {
		return
	}
	c.debounceTimer = c.cfg.Clock.AfterFunc(c.cfg.Debounce, c.recompute)
}

// knownPrefixes returns every prefix with state, sorted.
func (c *Controller) knownPrefixes() []netip.Prefix {
	set := make(map[netip.Prefix]bool, len(c.extRoutes)+len(c.owned))
	for p := range c.extRoutes {
		set[p] = true
	}
	for p := range c.owned {
		set[p] = true
	}
	out := make([]netip.Prefix, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return idr.PrefixLess(out[i], out[j]) })
	return out
}

// recompute runs the delayed best-path recomputation for all dirty
// prefixes.
func (c *Controller) recompute() {
	var prefixes []netip.Prefix
	if c.allDirty {
		prefixes = c.knownPrefixes()
		// Previously-known prefixes that lost all state still need
		// their flows/announcements cleaned up.
		for p := range c.dirty {
			if _, known := c.extRoutes[p]; known {
				continue
			}
			if _, own := c.owned[p]; own {
				continue
			}
			prefixes = append(prefixes, p)
		}
	} else {
		prefixes = make([]netip.Prefix, 0, len(c.dirty))
		for p := range c.dirty {
			prefixes = append(prefixes, p)
		}
		sort.Slice(prefixes, func(i, j int) bool { return idr.PrefixLess(prefixes[i], prefixes[j]) })
	}
	c.allDirty = false
	c.dirty = make(map[netip.Prefix]bool)
	if len(prefixes) == 0 {
		return
	}
	c.stats.Recomputes++
	if c.cfg.OnRecompute != nil {
		c.cfg.OnRecompute(len(prefixes))
	}
	for _, p := range prefixes {
		c.recomputePrefix(p)
	}
}
