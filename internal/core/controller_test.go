package core

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/bgp/wire"
	"repro/internal/idr"
	"repro/internal/sdn/ofp"
	"repro/internal/sim"
	"repro/internal/speaker"
)

// capture collects control frames sent to one member switch.
type capture struct {
	frames [][]byte
}

func (c *capture) send(b []byte) error {
	c.frames = append(c.frames, b)
	return nil
}

// flowMods decodes the captured FlowMod messages.
func (c *capture) flowMods(t *testing.T) []ofp.FlowMod {
	t.Helper()
	var out []ofp.FlowMod
	for _, f := range c.frames {
		msg, _, err := ofp.Unmarshal(f)
		if err != nil {
			t.Fatal(err)
		}
		if fm, ok := msg.(ofp.FlowMod); ok {
			out = append(out, fm)
		}
	}
	return out
}

// testCluster builds a controller with members 11,12,13 in a line
// (11-12-13), a capture per member, and an established external
// session on 11 port 2 toward legacy AS 2 and on 13 port 2 toward
// legacy AS 3.
func testCluster(t *testing.T) (*Controller, *sim.Kernel, map[idr.ASN]*capture) {
	t.Helper()
	k := sim.NewKernel(1)
	c, err := New(Config{Clock: k, Debounce: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	caps := map[idr.ASN]*capture{11: {}, 12: {}, 13: {}}
	for asn, cp := range caps {
		if err := c.AddMember(asn, cp.send); err != nil {
			t.Fatal(err)
		}
	}
	// Switch graph: 11 port1 <-> 12 port1; 12 port2 <-> 13 port1.
	mustRegister := func(m idr.ASN, port uint32, nb idr.ASN, member bool) {
		t.Helper()
		if err := c.RegisterPort(m, port, nb, member); err != nil {
			t.Fatal(err)
		}
	}
	mustRegister(11, 1, 12, true)
	mustRegister(12, 1, 11, true)
	mustRegister(12, 2, 13, true)
	mustRegister(13, 1, 12, true)
	mustRegister(11, 2, 2, false)
	mustRegister(13, 2, 3, false)
	id := func(a idr.ASN) idr.RouterID {
		return idr.RouterIDFromAddr(netip.AddrFrom4([4]byte{172, 16, 0, byte(a)}))
	}
	if err := c.AddExternalPeering(11, 2, 2, id(11), netip.MustParseAddr("100.64.0.1")); err != nil {
		t.Fatal(err)
	}
	if err := c.AddExternalPeering(13, 2, 3, id(13), netip.MustParseAddr("100.64.0.5")); err != nil {
		t.Fatal(err)
	}
	// Mark the sessions established without running the FSM: these
	// white-box tests exercise the graph logic, not the speaker.
	for _, es := range c.sessions {
		es.established = true
	}
	return c, k, caps
}

var testPrefix = netip.MustParsePrefix("10.0.2.0/24")

func extAttrs(path ...idr.ASN) wire.PathAttrs {
	return wire.PathAttrs{
		Origin:  wire.OriginIGP,
		ASPath:  wire.NewASPath(path...),
		NextHop: netip.MustParseAddr("100.64.0.2"),
	}
}

func TestSubClusters(t *testing.T) {
	c, _, _ := testCluster(t)
	comp := c.subClusters()
	if comp[11] != comp[12] || comp[12] != comp[13] {
		t.Fatalf("connected cluster should be one component: %v", comp)
	}
	// Fail 12<->13: splits into {11,12} and {13}.
	c.members[12].ports[2].up = false
	c.members[13].ports[1].up = false
	comp = c.subClusters()
	if comp[11] != comp[12] {
		t.Fatal("11 and 12 should stay together")
	}
	if comp[13] == comp[11] {
		t.Fatal("13 should be isolated")
	}
}

func TestDijkstraExternalPrefix(t *testing.T) {
	c, _, _ := testCluster(t)
	// Route learned only at border 11 from AS 2 with path [2].
	c.onRoute(SessKey{Border: 11, Port: 2}, speaker.RouteEvent{
		Prefix: testPrefix, Attrs: extAttrs(2),
	})
	res := c.dijkstra(testPrefix, c.subClusters())
	// 11 exits directly: cost 1 + len([2]) = 2.
	if res.dist[11] != 2 {
		t.Fatalf("dist[11] = %d, want 2", res.dist[11])
	}
	if res.dist[12] != 3 || res.dist[13] != 4 {
		t.Fatalf("dist = %v", res.dist)
	}
	if res.next[12] != 11 || res.next[13] != 12 {
		t.Fatalf("next = %v", res.next)
	}
	if res.egress[11].key != (SessKey{Border: 11, Port: 2}) {
		t.Fatalf("egress = %v", res.egress)
	}
	path, ok := res.forwardingPath(13)
	if !ok || len(path) != 3 || path[0] != 13 || path[2] != 11 {
		t.Fatalf("forwardingPath(13) = %v", path)
	}
}

func TestDijkstraPrefersShorterExternalPath(t *testing.T) {
	c, _, _ := testCluster(t)
	// Border 11 hears a long path, border 13 a short one.
	c.onRoute(SessKey{Border: 11, Port: 2}, speaker.RouteEvent{
		Prefix: testPrefix, Attrs: extAttrs(2, 7, 8, 9),
	})
	c.onRoute(SessKey{Border: 13, Port: 2}, speaker.RouteEvent{
		Prefix: testPrefix, Attrs: extAttrs(3),
	})
	res := c.dijkstra(testPrefix, c.subClusters())
	// 12 should prefer egress via 13 (cost 2+1=3) over 11 (cost 5+1).
	if res.next[12] != 13 {
		t.Fatalf("next[12] = %v, want 13", res.next[12])
	}
	// 11 itself: direct exit costs 5; via 12,13 costs 2+2=4 -> transit.
	if res.next[11] != 12 {
		t.Fatalf("next[11] = %v, want 12 (transit beats long exit)", res.next[11])
	}
	if _, isEgress := res.egress[11]; isEgress {
		t.Fatal("11 should not be an egress")
	}
}

func TestCandidateLoopAvoidance(t *testing.T) {
	c, _, _ := testCluster(t)
	// External path re-entering the cluster (contains member 12):
	// unusable from any border in the same component.
	c.onRoute(SessKey{Border: 11, Port: 2}, speaker.RouteEvent{
		Prefix: testPrefix, Attrs: extAttrs(2, 12, 5),
	})
	cands := c.candidatesFor(testPrefix, c.subClusters())
	if len(cands) != 0 {
		t.Fatalf("re-entering path must be filtered, got %v", cands)
	}
	// After a partition isolating 13, a path through 13 is usable
	// from component {11,12} (sub-clusters reach each other over the
	// legacy world).
	c.members[12].ports[2].up = false
	c.members[13].ports[1].up = false
	c.onRoute(SessKey{Border: 11, Port: 2}, speaker.RouteEvent{
		Prefix: testPrefix, Attrs: extAttrs(2, 13, 5),
	})
	cands = c.candidatesFor(testPrefix, c.subClusters())
	if len(cands) != 1 {
		t.Fatalf("cross-sub-cluster path should be usable, got %v", cands)
	}
}

func TestDijkstraOwnedPrefix(t *testing.T) {
	c, _, _ := testCluster(t)
	owned := netip.MustParsePrefix("10.0.13.0/24")
	if err := c.OriginatePrefix(13, owned); err != nil {
		t.Fatal(err)
	}
	res := c.dijkstra(owned, c.subClusters())
	if res.owner != 13 || res.dist[13] != 0 {
		t.Fatalf("owner routing wrong: %+v", res)
	}
	if res.dist[11] != 2 || res.next[11] != 12 {
		t.Fatalf("11's path to owner wrong: dist=%v next=%v", res.dist, res.next)
	}
}

func TestPushFlowsProgramsSwitches(t *testing.T) {
	c, k, caps := testCluster(t)
	c.onRoute(SessKey{Border: 11, Port: 2}, speaker.RouteEvent{
		Prefix: testPrefix, Attrs: extAttrs(2),
	})
	if err := k.Run(); err != nil { // debounce fires, recompute runs
		t.Fatal(err)
	}
	// Member 13 forwards toward 12 (its port 1).
	mods := caps[13].flowMods(t)
	if len(mods) != 1 || mods[0].Command != ofp.FlowAdd || mods[0].OutPort != 1 {
		t.Fatalf("member 13 flow mods = %v", mods)
	}
	// Member 12 forwards toward 11 (its port 1).
	mods = caps[12].flowMods(t)
	if len(mods) != 1 || mods[0].OutPort != 1 {
		t.Fatalf("member 12 flow mods = %v", mods)
	}
	// Border 11 exits on its external port 2.
	mods = caps[11].flowMods(t)
	if len(mods) != 1 || mods[0].OutPort != 2 {
		t.Fatalf("member 11 flow mods = %v", mods)
	}
	if c.Stats().FlowModsSent != 3 || c.Stats().Recomputes != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
}

func TestWithdrawalRemovesFlows(t *testing.T) {
	c, k, caps := testCluster(t)
	key := SessKey{Border: 11, Port: 2}
	c.onRoute(key, speaker.RouteEvent{Prefix: testPrefix, Attrs: extAttrs(2)})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	c.onRoute(key, speaker.RouteEvent{Prefix: testPrefix, Withdrawn: true})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	mods := caps[12].flowMods(t)
	last := mods[len(mods)-1]
	if last.Command != ofp.FlowDelete || last.Match != testPrefix {
		t.Fatalf("expected FlowDelete, got %v", last)
	}
}

func TestDebounceBatchesRecomputes(t *testing.T) {
	c, k, _ := testCluster(t)
	key := SessKey{Border: 11, Port: 2}
	// A burst of 10 route events within the debounce window yields one
	// recomputation (the paper's rate-limiting insight).
	for i := 0; i < 10; i++ {
		pfx := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 0, byte(i), 0}), 24)
		c.onRoute(key, speaker.RouteEvent{Prefix: pfx, Attrs: extAttrs(2)})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Recomputes; got != 1 {
		t.Fatalf("recomputes = %d, want 1 (debounced)", got)
	}
}

func TestNoDebounceAblation(t *testing.T) {
	k := sim.NewKernel(1)
	c, err := New(Config{Clock: k, Debounce: -1})
	if err != nil {
		t.Fatal(err)
	}
	cp := &capture{}
	if err := c.AddMember(11, cp.send); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterPort(11, 1, 2, false); err != nil {
		t.Fatal(err)
	}
	id := idr.RouterIDFromAddr(netip.MustParseAddr("172.16.0.11"))
	if err := c.AddExternalPeering(11, 1, 2, id, netip.MustParseAddr("100.64.0.1")); err != nil {
		t.Fatal(err)
	}
	for _, es := range c.sessions {
		es.established = true
	}
	key := SessKey{Border: 11, Port: 1}
	for i := 0; i < 5; i++ {
		pfx := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 0, byte(i), 0}), 24)
		c.onRoute(key, speaker.RouteEvent{Prefix: pfx, Attrs: extAttrs(2)})
	}
	if got := c.Stats().Recomputes; got != 5 {
		t.Fatalf("recomputes = %d, want 5 (no debounce)", got)
	}
}

func TestAnnouncementForTransparency(t *testing.T) {
	c, k, _ := testCluster(t)
	// Route at border 11 from AS2 path [2 9]. Border 13's announcement
	// to AS3 must carry the full internal path [13 12 11] + [2 9].
	c.onRoute(SessKey{Border: 11, Port: 2}, speaker.RouteEvent{
		Prefix: testPrefix, Attrs: extAttrs(2, 9),
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	res := c.dijkstra(testPrefix, c.subClusters())
	k13 := SessKey{Border: 13, Port: 2}
	attrs, ok := c.announcementFor(k13, c.sessions[k13], testPrefix, res)
	if !ok {
		t.Fatal("13 should announce to AS3")
	}
	want := wire.NewASPath(13, 12, 11, 2, 9)
	if !attrs.ASPath.Equal(want) {
		t.Fatalf("announced path = %v, want %v", attrs.ASPath, want)
	}
	// Border 11 must NOT announce back to AS2 (split horizon).
	k11 := SessKey{Border: 11, Port: 2}
	if _, ok := c.announcementFor(k11, c.sessions[k11], testPrefix, res); ok {
		t.Fatal("split horizon violated")
	}
}

func TestAnnouncementSkipsReceiverLoop(t *testing.T) {
	c, k, _ := testCluster(t)
	// Path already contains AS3 — announcing to AS3 would loop.
	c.onRoute(SessKey{Border: 11, Port: 2}, speaker.RouteEvent{
		Prefix: testPrefix, Attrs: extAttrs(2, 3),
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	res := c.dijkstra(testPrefix, c.subClusters())
	k13 := SessKey{Border: 13, Port: 2}
	if _, ok := c.announcementFor(k13, c.sessions[k13], testPrefix, res); ok {
		t.Fatal("announcement containing the receiver must be skipped")
	}
}

func TestOwnedPrefixAnnouncement(t *testing.T) {
	c, k, _ := testCluster(t)
	owned := netip.MustParsePrefix("10.0.13.0/24")
	if err := c.OriginatePrefix(13, owned); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	res := c.dijkstra(owned, c.subClusters())
	k11 := SessKey{Border: 11, Port: 2}
	attrs, ok := c.announcementFor(k11, c.sessions[k11], owned, res)
	if !ok {
		t.Fatal("owned prefix should be announced at border 11")
	}
	if want := wire.NewASPath(11, 12, 13); !attrs.ASPath.Equal(want) {
		t.Fatalf("owned path = %v, want %v", attrs.ASPath, want)
	}
	// Withdrawing removes it.
	if err := c.WithdrawOriginated(owned); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	res = c.dijkstra(owned, c.subClusters())
	if _, ok := c.announcementFor(k11, c.sessions[k11], owned, res); ok {
		t.Fatal("withdrawn prefix still announced")
	}
	if err := c.WithdrawOriginated(owned); err == nil {
		t.Fatal("double withdraw should error")
	}
}

func TestPartitionIsolatesRouting(t *testing.T) {
	c, k, caps := testCluster(t)
	c.onRoute(SessKey{Border: 11, Port: 2}, speaker.RouteEvent{
		Prefix: testPrefix, Attrs: extAttrs(2),
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Partition: ports on the 12<->13 link go down (PortStatus).
	ps, _ := ofp.Marshal(ofp.PortStatus{Port: 2, Up: false}, 1)
	if err := c.HandleControl(12, ps); err != nil {
		t.Fatal(err)
	}
	ps13, _ := ofp.Marshal(ofp.PortStatus{Port: 1, Up: false}, 1)
	if err := c.HandleControl(13, ps13); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 13 has no path now: its last flow mod must be a delete.
	mods := caps[13].flowMods(t)
	last := mods[len(mods)-1]
	if last.Command != ofp.FlowDelete {
		t.Fatalf("13 should lose its flow after partition, got %v", last)
	}
	// 12 still routes via 11.
	mods = caps[12].flowMods(t)
	last = mods[len(mods)-1]
	if last.Command != ofp.FlowAdd || last.OutPort != 1 {
		t.Fatalf("12 should still route via 11, got %v", last)
	}
}

func TestConfigAndWiringValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing clock should error")
	}
	k := sim.NewKernel(1)
	c, err := New(Config{Clock: k})
	if err != nil {
		t.Fatal(err)
	}
	send := func([]byte) error { return nil }
	if err := c.AddMember(0, send); err == nil {
		t.Fatal("zero ASN should error")
	}
	if err := c.AddMember(1, nil); err == nil {
		t.Fatal("nil send should error")
	}
	if err := c.AddMember(1, send); err != nil {
		t.Fatal(err)
	}
	if err := c.AddMember(1, send); err == nil {
		t.Fatal("duplicate member should error")
	}
	if err := c.RegisterPort(9, 1, 2, false); err == nil {
		t.Fatal("unknown member should error")
	}
	if err := c.RegisterPort(1, 1, 5, true); err == nil {
		t.Fatal("intra-cluster to non-member should error")
	}
	if err := c.RegisterPort(1, 1, 2, false); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterPort(1, 1, 2, false); err == nil {
		t.Fatal("duplicate port should error")
	}
	id := idr.RouterIDFromAddr(netip.MustParseAddr("172.16.0.1"))
	nh := netip.MustParseAddr("100.64.0.1")
	if err := c.AddExternalPeering(9, 1, 2, id, nh); err == nil {
		t.Fatal("unknown member peering should error")
	}
	if err := c.AddExternalPeering(1, 9, 2, id, nh); err == nil {
		t.Fatal("unknown port peering should error")
	}
	if err := c.AddExternalPeering(1, 1, 2, id, nh); err != nil {
		t.Fatal(err)
	}
	if err := c.AddExternalPeering(1, 1, 3, id, nh); err == nil {
		t.Fatal("duplicate peering should error")
	}
	if err := c.OriginatePrefix(9, testPrefix); err == nil {
		t.Fatal("originate at non-member should error")
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err == nil {
		t.Fatal("double start should error")
	}
	if err := c.HandleControl(9, nil); err == nil {
		t.Fatal("control from unknown member should error")
	}
	if err := c.HandleControl(1, []byte{1}); err == nil {
		t.Fatal("garbage control frame should error")
	}
	if !c.IsMember(1) || c.IsMember(9) {
		t.Fatal("IsMember wrong")
	}
	if len(c.Members()) != 1 {
		t.Fatal("Members wrong")
	}
	if (SessKey{Border: 1, Port: 2}).String() == "" {
		t.Fatal("SessKey.String empty")
	}
}
