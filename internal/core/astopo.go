package core

import (
	"container/heap"
	"net/netip"
	"sort"

	"repro/internal/bgp/wire"
	"repro/internal/idr"
	"repro/internal/sdn/ofp"
)

// subClusters computes the connected components of the switch graph
// over links that are up — the paper's disjoint sub-clusters. The
// result maps each member to a component id.
func (c *Controller) subClusters() map[idr.ASN]int {
	comp := make(map[idr.ASN]int, len(c.members))
	id := 0
	for _, start := range c.Members() {
		if _, seen := comp[start]; seen {
			continue
		}
		id++
		queue := []idr.ASN{start}
		comp[start] = id
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range c.upMemberNeighbors(cur) {
				if _, seen := comp[nb]; !seen {
					comp[nb] = id
					queue = append(queue, nb)
				}
			}
		}
	}
	return comp
}

// upMemberNeighbors lists the members adjacent to asn over up
// intra-cluster links, sorted for determinism.
func (c *Controller) upMemberNeighbors(asn idr.ASN) []idr.ASN {
	m := c.members[asn]
	var out []idr.ASN
	for _, pi := range m.ports {
		if pi.isMember && pi.up {
			out = append(out, pi.neighbor)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// portToMember returns member asn's up port leading to the neighbor
// member, choosing the lowest-numbered when parallel links exist.
func (c *Controller) portToMember(asn, neighbor idr.ASN) (uint32, bool) {
	m := c.members[asn]
	best := uint32(0)
	found := false
	for port, pi := range m.ports {
		if pi.isMember && pi.up && pi.neighbor == neighbor {
			if !found || port < best {
				best = port
				found = true
			}
		}
	}
	return best, found
}

// candidate is one usable egress for a prefix after the per-prefix AS
// topology graph transformation.
type candidate struct {
	key   SessKey
	attrs wire.PathAttrs
	cost  int
}

// candidatesFor applies the AS-topology-graph transformation for one
// prefix: collect the external routes and drop every egress whose AS
// path would re-enter the egress border's own sub-cluster — those
// paths cross the legacy world back into this very component and would
// loop. Paths through members of *other* sub-clusters remain usable
// (that is how disjoint sub-clusters reach each other over the legacy
// Internet).
func (c *Controller) candidatesFor(prefix netip.Prefix, comp map[idr.ASN]int) []candidate {
	routes := c.extRoutes[prefix]
	if len(routes) == 0 {
		return nil
	}
	keys := make([]SessKey, 0, len(routes))
	for k := range routes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Border != keys[j].Border {
			return keys[i].Border < keys[j].Border
		}
		return keys[i].Port < keys[j].Port
	})
	var out []candidate
	for _, k := range keys {
		attrs := routes[k]
		if !c.sessions[k].established {
			continue
		}
		reenters := false
		for other := range c.members {
			if comp[other] == comp[k.Border] && attrs.ASPath.Contains(other) {
				reenters = true
				break
			}
		}
		if reenters {
			continue
		}
		out = append(out, candidate{key: k, attrs: attrs, cost: 1 + attrs.ASPath.Length()})
	}
	return out
}

// routingResult is the outcome of Dijkstra for one prefix.
type routingResult struct {
	// dist is each member's total cost to the destination (absent =
	// unreachable).
	dist map[idr.ASN]int
	// next is the downstream member on the best path (absent for the
	// egress border itself and for the owner member).
	next map[idr.ASN]idr.ASN
	// egress maps each border member that exits directly to its chosen
	// candidate.
	egress map[idr.ASN]candidate
	// owner is the destination member for cluster-originated prefixes
	// (zero otherwise).
	owner idr.ASN
}

// pqItem is a Dijkstra frontier entry.
type pqItem struct {
	asn  idr.ASN
	dist int
}

type pq []pqItem

func (p pq) Len() int { return len(p) }
func (p pq) Less(i, j int) bool {
	if p[i].dist != p[j].dist {
		return p[i].dist < p[j].dist
	}
	return p[i].asn < p[j].asn
}
func (p pq) Swap(i, j int) { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)   { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// dijkstra computes every member's best path to the destination of
// prefix on the AS topology graph: either toward the owner member
// (cluster-originated) or toward the cheapest egress candidate.
// Intra-cluster hops cost 1; an egress costs 1 + external path length,
// making the total comparable to an AS-path length as BGP would see it.
func (c *Controller) dijkstra(prefix netip.Prefix, comp map[idr.ASN]int) routingResult {
	res := routingResult{
		dist:   make(map[idr.ASN]int),
		next:   make(map[idr.ASN]idr.ASN),
		egress: make(map[idr.ASN]candidate),
	}
	var frontier pq
	if owner, ok := c.owned[prefix]; ok {
		// Cluster-originated: the owner is the zero-cost destination.
		res.owner = owner
		res.dist[owner] = 0
		heap.Push(&frontier, pqItem{asn: owner, dist: 0})
	}
	// External egresses are usable destinations too. For external
	// prefixes they are the only ones; for owned prefixes they give
	// members in *other* sub-clusters a way back to the owner over the
	// legacy world (design goal §2: an intra-cluster link failure must
	// not isolate the controlled ASes).
	best := make(map[idr.ASN]candidate)
	for _, cand := range c.candidatesFor(prefix, comp) {
		cur, ok := best[cand.key.Border]
		if !ok || cand.cost < cur.cost {
			best[cand.key.Border] = cand
		}
	}
	borders := make([]idr.ASN, 0, len(best))
	for b := range best {
		borders = append(borders, b)
	}
	sort.Slice(borders, func(i, j int) bool { return borders[i] < borders[j] })
	for _, b := range borders {
		cand := best[b]
		if cur, seeded := res.dist[b]; seeded && cur <= cand.cost {
			continue // the owner itself, or a better seed
		}
		res.dist[b] = cand.cost
		res.egress[b] = cand
		heap.Push(&frontier, pqItem{asn: b, dist: cand.cost})
	}
	settled := make(map[idr.ASN]bool)
	for frontier.Len() > 0 {
		it := heap.Pop(&frontier).(pqItem)
		if settled[it.asn] || it.dist != res.dist[it.asn] {
			continue
		}
		settled[it.asn] = true
		for _, nb := range c.upMemberNeighbors(it.asn) {
			nd := it.dist + 1
			cur, ok := res.dist[nb]
			if !ok || nd < cur {
				res.dist[nb] = nd
				res.next[nb] = it.asn
				delete(res.egress, nb) // better path is via a neighbor now
				heap.Push(&frontier, pqItem{asn: nb, dist: nd})
			}
		}
	}
	return res
}

// forwardingPath returns the member sequence from m to its egress (or
// owner), inclusive, following next pointers. ok is false when m has
// no route.
func (res *routingResult) forwardingPath(m idr.ASN) (path []idr.ASN, ok bool) {
	if _, reachable := res.dist[m]; !reachable {
		return nil, false
	}
	cur := m
	path = append(path, cur)
	for {
		nxt, more := res.next[cur]
		if !more {
			return path, true
		}
		cur = nxt
		path = append(path, cur)
		if len(path) > len(res.dist)+1 {
			// Defensive: next pointers must not cycle.
			return nil, false
		}
	}
}

// prependSequence prepends the member sequence onto an external path,
// merging into the leading AS_SEQUENCE segment when one exists so the
// result looks exactly like hop-by-hop eBGP prepending.
func prependSequence(members []idr.ASN, external wire.ASPath) wire.ASPath {
	out := external.Clone()
	for i := len(members) - 1; i >= 0; i-- {
		out = out.Prepend(members[i])
	}
	return out
}

// recomputePrefix recompiles flow rules and external announcements for
// one prefix — the per-prefix half of the paper's route selection.
func (c *Controller) recomputePrefix(prefix netip.Prefix) {
	comp := c.subClusters()
	res := c.dijkstra(prefix, comp)
	c.pushFlows(prefix, res)
	c.updateAnnouncements(prefix, res)
}

// PathFrom returns the AS-level path member m currently uses toward
// prefix: the internal member sequence to the egress or owner, plus
// the chosen external route's path. ok is false when m has no route.
// (Monitoring helper — the data plane uses the compiled flow rules.)
func (c *Controller) PathFrom(m idr.ASN, prefix netip.Prefix) (wire.ASPath, bool) {
	if _, isMember := c.members[m]; !isMember {
		return nil, false
	}
	comp := c.subClusters()
	res := c.dijkstra(prefix, comp)
	internal, ok := res.forwardingPath(m)
	if !ok {
		return nil, false
	}
	egressMember := internal[len(internal)-1]
	if res.owner != 0 && egressMember == res.owner {
		// Path excludes the querying member itself, mirroring how a
		// BGP router's Loc-RIB path excludes its own ASN.
		return wire.NewASPath(internal[1:]...), true
	}
	cand, isEgress := res.egress[egressMember]
	if !isEgress {
		return nil, false
	}
	return prependSequence(internal[1:], cand.attrs.ASPath), true
}

// flowPriority is the fixed priority used for IDR flow entries.
const flowPriority = 100

// pushFlows programs every member's flow entry for prefix.
func (c *Controller) pushFlows(prefix netip.Prefix, res routingResult) {
	for _, asn := range c.Members() {
		m := c.members[asn]
		var mod ofp.FlowMod
		switch {
		case asn == res.owner && res.owner != 0:
			// The owner delivers locally; the switch's local-prefix
			// set handles it. Remove any stale transit entry.
			mod = ofp.FlowMod{Command: ofp.FlowDelete, Match: prefix}
		case res.egress[asn].key != SessKey{}:
			mod = ofp.FlowMod{
				Command: ofp.FlowAdd, Priority: flowPriority,
				Match: prefix, OutPort: res.egress[asn].key.Port,
			}
		default:
			nxt, ok := res.next[asn]
			if !ok {
				mod = ofp.FlowMod{Command: ofp.FlowDelete, Match: prefix}
				break
			}
			port, havePort := c.portToMember(asn, nxt)
			if !havePort {
				mod = ofp.FlowMod{Command: ofp.FlowDelete, Match: prefix}
				break
			}
			mod = ofp.FlowMod{
				Command: ofp.FlowAdd, Priority: flowPriority,
				Match: prefix, OutPort: port,
			}
		}
		frame, err := ofp.Marshal(mod, c.nextXid())
		if err != nil {
			continue
		}
		if m.send(frame) == nil {
			c.stats.FlowModsSent++
		}
	}
}

// updateAnnouncements drives every external session's view of prefix:
// announce the border's best cluster path (with the full internal AS
// sequence, keeping the cluster transparent to the legacy world) or
// withdraw.
func (c *Controller) updateAnnouncements(prefix netip.Prefix, res routingResult) {
	keys := make([]SessKey, 0, len(c.sessions))
	for k := range c.sessions {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Border != keys[j].Border {
			return keys[i].Border < keys[j].Border
		}
		return keys[i].Port < keys[j].Port
	})
	for _, k := range keys {
		es := c.sessions[k]
		if !es.established {
			continue
		}
		attrs, ok := c.announcementFor(k, es, prefix, res)
		if !ok {
			if es.sess.WithdrawPrefix(prefix) == nil {
				c.stats.WithdrawCommands++
			}
			continue
		}
		if es.sess.Announce(prefix, attrs) == nil {
			c.stats.AnnounceCommands++
		}
	}
}

// announcementFor builds the AS path announced for prefix on session k
// (border b): the internal member sequence from b to the egress or
// owner, then the external route's path. ok is false when nothing may
// be announced (no route, split horizon, or receiver loop).
func (c *Controller) announcementFor(k SessKey, es *extSession, prefix netip.Prefix, res routingResult) (wire.PathAttrs, bool) {
	b := k.Border
	internal, reachable := res.forwardingPath(b)
	if !reachable {
		return wire.PathAttrs{}, false
	}
	egressMember := internal[len(internal)-1]
	var attrs wire.PathAttrs
	if res.owner != 0 && egressMember == res.owner {
		// Cluster-originated and internally reachable: the path is
		// just the internal member sequence.
		attrs = wire.PathAttrs{Origin: wire.OriginIGP, ASPath: wire.NewASPath(internal...)}
	} else {
		cand, isEgress := res.egress[egressMember]
		if !isEgress {
			return wire.PathAttrs{}, false
		}
		// Split horizon: never announce back over the session the
		// route exits through.
		if cand.key == k {
			return wire.PathAttrs{}, false
		}
		attrs = cand.attrs.Clone()
		attrs.ASPath = prependSequence(internal, attrs.ASPath)
		attrs.MED = nil
		attrs.LocalPref = nil
	}
	// Receiver-side loop prevention: the neighbor would reject paths
	// containing itself anyway; skip the no-op announcement.
	if attrs.ASPath.Contains(es.remote) {
		return wire.PathAttrs{}, false
	}
	return attrs, true
}
