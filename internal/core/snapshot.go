package core

import (
	"fmt"
	"net/netip"
	"sort"

	"repro/internal/bgp/wire"
	"repro/internal/idr"
	"repro/internal/sim"
	"repro/internal/speaker"
)

// Snapshot support: ControllerState captures the controller's mutable
// state — the external route candidates, cluster originations, dirty
// set and debounce timer, port operational flags, the per-peering
// speaker sessions, and the counters. The switch graph itself (members,
// ports, peering wiring) is configuration, rebuilt identically by
// construction; only what changed since Start is serialized.

// ExtRoute is one candidate external route: the session it was learned
// on and its attributes.
type ExtRoute struct {
	// Border and Port identify the session (SessKey).
	Border idr.ASN `json:"border"`
	Port   uint32  `json:"port"`
	// Attrs are the learned path attributes.
	Attrs wire.PathAttrs `json:"attrs"`
}

// ExtRouteEntry lists one prefix's candidate external routes, sorted
// by session key.
type ExtRouteEntry struct {
	// Prefix is the destination.
	Prefix netip.Prefix `json:"prefix"`
	// Routes are the candidates by session.
	Routes []ExtRoute `json:"routes"`
}

// OwnedEntry is one cluster-originated prefix and its owner member.
type OwnedEntry struct {
	// Prefix is the origination; Owner the member AS announcing it.
	Prefix netip.Prefix `json:"prefix"`
	Owner  idr.ASN      `json:"owner"`
}

// PortFlag is one member port's operational state.
type PortFlag struct {
	// Member and Port identify the port; Up is its operational state.
	Member idr.ASN `json:"member"`
	Port   uint32  `json:"port"`
	Up     bool    `json:"up"`
}

// SessionSnap is one external peering's state: the controller-side
// established flag plus the speaker session itself.
type SessionSnap struct {
	// Border and Port identify the peering (SessKey).
	Border idr.ASN `json:"border"`
	Port   uint32  `json:"port"`
	// Established is the controller's view of the session.
	Established bool `json:"established"`
	// Speaker is the underlying session state.
	Speaker speaker.SessionState `json:"speaker"`
}

// ControllerState is the serializable state of a Controller.
type ControllerState struct {
	// ExtRoutes lists the candidate external routes, sorted by prefix.
	ExtRoutes []ExtRouteEntry `json:"ext_routes,omitempty"`
	// Owned lists the cluster originations, sorted by prefix.
	Owned []OwnedEntry `json:"owned,omitempty"`
	// Dirty lists prefixes awaiting recomputation, sorted; AllDirty
	// marks a pending full recomputation.
	Dirty    []netip.Prefix `json:"dirty,omitempty"`
	AllDirty bool           `json:"all_dirty,omitempty"`
	// Debounce references the pending recomputation timer.
	Debounce *sim.TimerRef `json:"debounce,omitempty"`
	// Started mirrors whether Start ran.
	Started bool `json:"started"`
	// Xid is the last OpenFlow transaction id assigned.
	Xid uint32 `json:"xid"`
	// Stats are the activity counters, verbatim.
	Stats Stats `json:"stats"`
	// Ports holds every registered port's operational flag, sorted by
	// (member, port).
	Ports []PortFlag `json:"ports,omitempty"`
	// Sessions holds the external peerings, sorted by key.
	Sessions []SessionSnap `json:"sessions,omitempty"`
}

// State captures the controller's serializable state.
func (c *Controller) State() ControllerState {
	st := ControllerState{
		AllDirty: c.allDirty,
		Debounce: sim.RefOf(c.debounceTimer),
		Started:  c.started,
		Xid:      c.xid,
		Stats:    c.stats,
	}
	extPrefixes := make([]netip.Prefix, 0, len(c.extRoutes))
	for p := range c.extRoutes {
		extPrefixes = append(extPrefixes, p)
	}
	sort.Slice(extPrefixes, func(i, j int) bool { return idr.PrefixLess(extPrefixes[i], extPrefixes[j]) })
	for _, p := range extPrefixes {
		bySess := c.extRoutes[p]
		keys := make([]SessKey, 0, len(bySess))
		for k := range bySess {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].Border != keys[j].Border {
				return keys[i].Border < keys[j].Border
			}
			return keys[i].Port < keys[j].Port
		})
		e := ExtRouteEntry{Prefix: p}
		for _, k := range keys {
			e.Routes = append(e.Routes, ExtRoute{Border: k.Border, Port: k.Port, Attrs: bySess[k]})
		}
		st.ExtRoutes = append(st.ExtRoutes, e)
	}
	for p := range c.owned {
		st.Owned = append(st.Owned, OwnedEntry{Prefix: p, Owner: c.owned[p]})
	}
	sort.Slice(st.Owned, func(i, j int) bool { return idr.PrefixLess(st.Owned[i].Prefix, st.Owned[j].Prefix) })
	for p := range c.dirty {
		st.Dirty = append(st.Dirty, p)
	}
	sort.Slice(st.Dirty, func(i, j int) bool { return idr.PrefixLess(st.Dirty[i], st.Dirty[j]) })
	for _, asn := range c.Members() {
		m := c.members[asn]
		ports := make([]uint32, 0, len(m.ports))
		for port := range m.ports {
			ports = append(ports, port)
		}
		sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
		for _, port := range ports {
			st.Ports = append(st.Ports, PortFlag{Member: asn, Port: port, Up: m.ports[port].up})
		}
	}
	for _, key := range c.sessionKeys() {
		es := c.sessions[key]
		st.Sessions = append(st.Sessions, SessionSnap{
			Border:      key.Border,
			Port:        key.Port,
			Established: es.established,
			Speaker:     es.sess.Snapshot(),
		})
	}
	return st
}

// RestoreState overlays a captured state onto a freshly built
// controller with the identical cluster wiring (same members, ports
// and peerings). Start must NOT have run and must not run afterwards:
// the captured Started flag is adopted directly, so no greeting or
// transport-up frames are generated. The returned timer arms must be
// executed by the caller in global order.
func (c *Controller) RestoreState(st ControllerState) ([]sim.TimerArm, error) {
	for _, e := range st.ExtRoutes {
		bySess := make(map[SessKey]wire.PathAttrs, len(e.Routes))
		for _, r := range e.Routes {
			bySess[SessKey{Border: r.Border, Port: r.Port}] = r.Attrs.Clone()
		}
		c.extRoutes[e.Prefix] = bySess
	}
	for _, o := range st.Owned {
		c.owned[o.Prefix] = o.Owner
	}
	for _, p := range st.Dirty {
		c.dirty[p] = true
	}
	c.allDirty = st.AllDirty
	c.started = st.Started
	c.xid = st.Xid
	c.stats = st.Stats
	for _, pf := range st.Ports {
		m, ok := c.members[pf.Member]
		if !ok {
			return nil, fmt.Errorf("core: restore: unknown member %v", pf.Member)
		}
		pi, ok := m.ports[pf.Port]
		if !ok {
			return nil, fmt.Errorf("core: restore: member %v has no port %d", pf.Member, pf.Port)
		}
		pi.up = pf.Up
	}
	var arms []sim.TimerArm
	for _, ss := range st.Sessions {
		es, ok := c.sessions[SessKey{Border: ss.Border, Port: ss.Port}]
		if !ok {
			return nil, fmt.Errorf("core: restore: no peering %v#%d", ss.Border, ss.Port)
		}
		es.established = ss.Established
		arms = append(arms, es.sess.RestoreState(ss.Speaker)...)
	}
	if st.Debounce != nil {
		at := st.Debounce.Deadline()
		arms = append(arms, sim.TimerArm{At: at, Seq: st.Debounce.Seq, Arm: func() {
			c.debounceTimer = c.cfg.Clock.AfterFunc(at.Sub(c.cfg.Clock.Now()), c.recompute)
		}})
	}
	return arms, nil
}
