package artifact

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/lab"
)

// testSweep is a small-but-real sweep: a 4-AS clique withdrawal over
// three cluster sizes, two seeded runs per cell.
func testSweep() lab.Sweep {
	timers := bgp.DefaultTimers()
	timers.MRAI = 5 * time.Second
	return lab.Sweep{
		Name: "fig2",
		Base: lab.Trial{
			Topo:            lab.TopoSpec{Kind: "clique", N: 4},
			Event:           lab.Withdrawal,
			Timers:          timers,
			Debounce:        100 * time.Millisecond,
			ProcessingDelay: 25 * time.Millisecond,
		},
		Axis:       lab.SDNCounts(0, 2, 4),
		Runs:       2,
		BaseSeed:   7,
		SeedPolicy: lab.SeedCellRun,
	}
}

// workloadSweep exercises the multi-event path (epochs must round-trip
// through the store too).
func workloadSweep() lab.Sweep {
	timers := bgp.DefaultTimers()
	timers.MRAI = 5 * time.Second
	return lab.Sweep{
		Name: "maint",
		Base: lab.Trial{
			Topo: lab.TopoSpec{Kind: "clique", N: 4},
			Workload: lab.Workload{
				{Kind: lab.KindWithdrawal},
				{At: 2 * time.Minute, Kind: lab.KindAnnouncement},
			},
			Timers:   timers,
			Debounce: 100 * time.Millisecond,
		},
		Axis:     lab.SDNCounts(0, 2),
		Runs:     2,
		BaseSeed: 3,
	}
}

func encodeAll(t *testing.T, res *lab.SweepResult) map[lab.Format]string {
	t.Helper()
	out := map[lab.Format]string{}
	for _, f := range []lab.Format{lab.FormatTable, lab.FormatCSV, lab.FormatJSON, lab.FormatMarkdown} {
		var sb strings.Builder
		if err := lab.Write(&sb, f, res); err != nil {
			t.Fatal(err)
		}
		out[f] = sb.String()
	}
	return out
}

// TestCachedSweepByteIdentical is the determinism guard the issue
// demands: a sweep run twice into the same store performs zero
// emulations the second time, and both the cached and the fresh runs
// encode byte-identically in every output format.
func TestCachedSweepByteIdentical(t *testing.T) {
	for _, mk := range []struct {
		name string
		mk   func() lab.Sweep
	}{{"fig2", testSweep}, {"maint-workload", workloadSweep}} {
		t.Run(mk.name, func(t *testing.T) {
			fresh, err := mk.mk().Run()
			if err != nil {
				t.Fatal(err)
			}
			want := encodeAll(t, fresh)

			store, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			first, stats1, err := RunSweep(store, mk.mk())
			if err != nil {
				t.Fatal(err)
			}
			if stats1.Hits != 0 || stats1.Executed != stats1.Total {
				t.Fatalf("first stored run: hits=%d executed=%d total=%d, want all executed",
					stats1.Hits, stats1.Executed, stats1.Total)
			}
			second, stats2, err := RunSweep(store, mk.mk())
			if err != nil {
				t.Fatal(err)
			}
			if stats2.Executed != 0 || stats2.Hits != stats2.Total {
				t.Fatalf("second stored run: hits=%d executed=%d total=%d, want zero emulations",
					stats2.Hits, stats2.Executed, stats2.Total)
			}
			if stats1.SpecHash != stats2.SpecHash {
				t.Fatalf("spec hash changed across runs: %s vs %s", stats1.SpecHash, stats2.SpecHash)
			}
			if !reflect.DeepEqual(fresh, second) {
				t.Fatalf("cached result differs from fresh run:\nfresh:  %+v\ncached: %+v", fresh, second)
			}
			for f, enc := range encodeAll(t, first) {
				if enc != want[f] {
					t.Errorf("%s output of first stored run differs from cache-free run", f)
				}
			}
			for f, enc := range encodeAll(t, second) {
				if enc != want[f] {
					t.Errorf("%s output of fully cached run differs from cache-free run", f)
				}
			}
		})
	}
}

// TestStoreResume simulates an interrupted sweep: with some records
// deleted, a re-run executes exactly the missing cells and serves the
// rest from the store.
func TestStoreResume(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	full, stats, err := RunSweep(store, testSweep())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, stats.SpecHash, "c1-r0.json")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, stats.SpecHash, "c2-r1.json")); err != nil {
		t.Fatal(err)
	}
	resumed, stats2, err := RunSweep(store, testSweep())
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Executed != 2 || stats2.Hits != stats2.Total-2 {
		t.Fatalf("resume: hits=%d executed=%d total=%d, want exactly the 2 deleted cells executed",
			stats2.Hits, stats2.Executed, stats2.Total)
	}
	if !reflect.DeepEqual(full, resumed) {
		t.Fatalf("resumed result differs from the full run")
	}
}

// TestSweepParallelCacheRace drives the store through the parallel
// runner (8 workers) so `go test -race` covers the concurrent
// Load/Store paths.
func TestSweepParallelCacheRace(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sw := testSweep()
	sw.Parallelism = 8
	seq, err := testSweep().Run()
	if err != nil {
		t.Fatal(err)
	}
	stored, _, err := RunSweep(store, sw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, stored) {
		t.Fatal("parallel stored run differs from sequential cache-free run")
	}
	sw2 := testSweep()
	sw2.Parallelism = 8
	cached, stats, err := RunSweep(store, sw2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != 0 {
		t.Fatalf("parallel cached run executed %d cells, want 0", stats.Executed)
	}
	if !reflect.DeepEqual(seq, cached) {
		t.Fatal("parallel cached run differs from sequential cache-free run")
	}
}

// TestManifestVerify covers the seal chain: a finished sweep verifies,
// and flipping one byte of one record is detected.
func TestManifestVerify(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := RunSweep(store, testSweep())
	if err != nil {
		t.Fatal(err)
	}
	sweepDir := filepath.Join(dir, stats.SpecHash)
	if err := VerifySweepDir(sweepDir); err != nil {
		t.Fatalf("freshly finished sweep does not verify: %v", err)
	}
	var m SweepManifest
	data, err := os.ReadFile(filepath.Join(sweepDir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if !m.Complete {
		t.Fatal("manifest of a finished sweep is not complete")
	}
	if len(m.Records) != stats.Total {
		t.Fatalf("manifest lists %d records, want %d", len(m.Records), stats.Total)
	}

	rec := filepath.Join(sweepDir, m.Records[0].File)
	orig, err := os.ReadFile(rec)
	if err != nil {
		t.Fatal(err)
	}
	tampered := append([]byte(nil), orig...)
	tampered[len(tampered)/2] ^= 1
	if err := os.WriteFile(rec, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifySweepDir(sweepDir); err == nil {
		t.Fatal("tampered record passed verification")
	}
	if err := os.WriteFile(rec, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifySweepDir(sweepDir); err != nil {
		t.Fatalf("restored sweep does not verify: %v", err)
	}
}

// TestFinishIgnoresStrandedTempFiles simulates a run killed between
// CreateTemp and Rename: the stranded temp file must not be indexed
// as a record, so the resumed sweep's manifest stays complete and
// byte-identical to a clean run's.
func TestFinishIgnoresStrandedTempFiles(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := RunSweep(store, testSweep())
	if err != nil {
		t.Fatal(err)
	}
	sweepDir := filepath.Join(dir, stats.SpecHash)
	clean, err := os.ReadFile(filepath.Join(sweepDir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sweepDir, ".c0-r0.json.tmp-99999"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunSweep(store, testSweep()); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(filepath.Join(sweepDir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(clean) != string(after) {
		t.Fatal("a stranded temp file changed the sealed manifest")
	}
	var m SweepManifest
	if err := json.Unmarshal(after, &m); err != nil {
		t.Fatal(err)
	}
	if !m.Complete || len(m.Records) != stats.Total {
		t.Fatalf("manifest complete=%v records=%d, want complete with %d records", m.Complete, len(m.Records), stats.Total)
	}
	if err := VerifySweepDir(sweepDir); err != nil {
		t.Fatal(err)
	}
}

// TestRecordRejectsWrongSpec pins the content-address check: a record
// filed under another spec hash must never be served.
func TestRecordRejectsWrongSpec(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := RunSweep(store, testSweep())
	if err != nil {
		t.Fatal(err)
	}
	rec := filepath.Join(dir, stats.SpecHash, "c0-r0.json")
	data, err := os.ReadFile(rec)
	if err != nil {
		t.Fatal(err)
	}
	mutated := strings.Replace(string(data), stats.SpecHash, strings.Repeat("0", 64), 1)
	if err := os.WriteFile(rec, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	ss, err := store.Sweep(testSweep())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ss.Load(0, 0); err == nil {
		t.Fatal("record with a foreign spec hash was served")
	}
}

// TestReportManifestValidate covers the schema validator: a well-
// formed sealed manifest passes; structural violations and a broken
// seal are rejected; the shipped JSON Schema document parses.
func TestReportManifestValidate(t *testing.T) {
	m := &ReportManifest{
		Version:   1,
		Generator: "labreport",
		Profile:   "smoke",
		Figures: []ReportFigure{{
			Name:       "fig2",
			Title:      "Figure 2",
			SpecSHA256: strings.Repeat("ab", 32),
			Topology:   "clique 16",
			Policy:     "permit-all",
			Event:      "withdrawal",
			Axis:       "sdn_k",
			Runs:       3,
			BaseSeed:   1,
			SVG:        "figures/fig2.svg",
			Cells:      []ReportCell{{Label: "0", N: 3, MedianS: 350.284, MeanUpdates: 500}},
			Fit:        &ReportFit{InterceptS: 358.154, SlopeS: -369.785, R2: 0.989},
		}},
	}
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateReportManifest(data); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}

	broken := strings.Replace(string(data), `"profile": "smoke"`, `"profile": ""`, 1)
	if err := ValidateReportManifest([]byte(broken)); err == nil {
		t.Fatal("manifest with empty profile accepted")
	}
	resealed := strings.Replace(string(data), "350.284", "351.000", 1)
	if err := ValidateReportManifest([]byte(resealed)); err == nil {
		t.Fatal("manifest with altered content but stale seal accepted")
	}
	unknown := strings.Replace(string(data), `"version": 1`, `"version": 1, "timestamp": "2026-07-29"`, 1)
	if err := ValidateReportManifest([]byte(unknown)); err == nil {
		t.Fatal("manifest with unknown field accepted (schema forbids additional properties)")
	}

	var schema map[string]any
	if err := json.Unmarshal(ReportManifestSchema, &schema); err != nil {
		t.Fatalf("shipped JSON Schema does not parse: %v", err)
	}
	if schema["$id"] != "repro/report-manifest" {
		t.Fatalf("schema $id = %v", schema["$id"])
	}
}
