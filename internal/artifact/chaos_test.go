package artifact

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"testing"

	"repro/internal/lab"
	"repro/internal/monitor"
)

// chaosInject fails two grid positions of testSweep: (cell 1, run 0)
// panics and (cell 2, run 1) misses its deadline.
func chaosInject(cell, run int) error {
	switch {
	case cell == 1 && run == 0:
		panic("chaos: injected crash")
	case cell == 2 && run == 1:
		return fmt.Errorf("injected deadline: %w", monitor.ErrTimeout)
	}
	return nil
}

// TestTolerantSweepFilesFailures is the issue's acceptance scenario:
// a tolerant sweep with an injected panic and a timed-out run finishes
// with both failures filed in the sealed artifact directory, the
// manifest indexes them (and stays verifiable), and a re-run against
// the same store retries exactly the failed positions — completing the
// sweep byte-identically to a clean run.
func TestTolerantSweepFilesFailures(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sw := testSweep()
	sw.Tolerate = true
	sw.Inject = chaosInject
	res, stats, err := RunSweep(store, sw)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 2 || stats.Executed != stats.Total-2 || stats.Hits != 0 {
		t.Fatalf("chaos run: hits=%d executed=%d failed=%d total=%d", stats.Hits, stats.Executed, stats.Failed, stats.Total)
	}
	if len(res.Failures) != 2 || !res.Failures[0].Panicked || !res.Failures[1].TimedOut {
		t.Fatalf("failures = %+v", res.Failures)
	}

	sweepDir := filepath.Join(dir, stats.SpecHash)
	for _, name := range []string{"c1-r0.failed.json", "c2-r1.failed.json"} {
		data, err := os.ReadFile(filepath.Join(sweepDir, name))
		if err != nil {
			t.Fatalf("failure file missing: %v", err)
		}
		var fr struct {
			SpecSHA256 string          `json:"spec_sha256"`
			Failure    lab.CellFailure `json:"failure"`
		}
		if err := json.Unmarshal(data, &fr); err != nil {
			t.Fatal(err)
		}
		if fr.SpecSHA256 != stats.SpecHash || fr.Failure.Err == "" {
			t.Fatalf("failure record %s = %+v", name, fr)
		}
	}

	// The partial sweep seals and verifies; the manifest indexes the
	// failures separately and is not complete.
	if err := VerifySweepDir(sweepDir); err != nil {
		t.Fatalf("partial chaos sweep does not verify: %v", err)
	}
	var m SweepManifest
	data, err := os.ReadFile(filepath.Join(sweepDir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.Complete {
		t.Fatal("manifest with failures claims completeness")
	}
	if len(m.Records) != stats.Total-2 || len(m.Failures) != 2 {
		t.Fatalf("manifest: %d records, %d failures, want %d and 2", len(m.Records), len(m.Failures), stats.Total-2)
	}

	// The re-run without the injected faults retries exactly the two
	// failed positions (failure files never serve as hits), clears the
	// stale failure files, and completes the manifest. Inject is an
	// execution knob, so the spec hash — the store address — is
	// unchanged.
	clean := testSweep()
	clean.Tolerate = true
	rerun, stats2, err := RunSweep(store, clean)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.SpecHash != stats.SpecHash {
		t.Fatalf("spec hash changed: %s vs %s (Inject must stay execution-only)", stats2.SpecHash, stats.SpecHash)
	}
	if stats2.Hits != stats.Total-2 || stats2.Executed != 2 || stats2.Failed != 0 {
		t.Fatalf("re-run: hits=%d executed=%d failed=%d, want exactly the 2 failed positions executed",
			stats2.Hits, stats2.Executed, stats2.Failed)
	}
	for _, name := range []string{"c1-r0.failed.json", "c2-r1.failed.json"} {
		if _, err := os.Stat(filepath.Join(sweepDir, name)); !os.IsNotExist(err) {
			t.Fatalf("stale failure file %s survived the successful re-run", name)
		}
	}
	var m2 SweepManifest
	data, err = os.ReadFile(filepath.Join(sweepDir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &m2); err != nil {
		t.Fatal(err)
	}
	if !m2.Complete || len(m2.Failures) != 0 || len(m2.Records) != stats.Total {
		t.Fatalf("re-run manifest: complete=%v records=%d failures=%d", m2.Complete, len(m2.Records), len(m2.Failures))
	}
	if err := VerifySweepDir(sweepDir); err != nil {
		t.Fatal(err)
	}

	// And the completed result matches a store-free clean run exactly.
	want, err := testSweep().Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, rerun) {
		t.Fatal("completed chaos sweep differs from a clean run")
	}
}

// TestVerifyReportsFullDigests pins the audit-trail contract: a digest
// mismatch names the failing file by path and quotes BOTH full SHA-256
// digests — recorded and computed — so the report is actionable
// without re-hashing anything by hand. Failure records are covered by
// the same check.
func TestVerifyReportsFullDigests(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sw := testSweep()
	sw.Tolerate = true
	sw.Inject = chaosInject
	_, stats, err := RunSweep(store, sw)
	if err != nil {
		t.Fatal(err)
	}
	sweepDir := filepath.Join(dir, stats.SpecHash)

	fullHex := regexp.MustCompile(`\b[0-9a-f]{64}\b`)
	for _, name := range []string{"c0-r0.json", "c1-r0.failed.json"} {
		path := filepath.Join(sweepDir, name)
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		tampered := append([]byte(nil), orig...)
		tampered[len(tampered)/2] ^= 1
		if err := os.WriteFile(path, tampered, 0o644); err != nil {
			t.Fatal(err)
		}
		verr := VerifySweepDir(sweepDir)
		if verr == nil {
			t.Fatalf("tampered %s passed verification", name)
		}
		msg := verr.Error()
		if !regexp.MustCompile(regexp.QuoteMeta(name)).MatchString(msg) {
			t.Fatalf("mismatch error does not name %s: %q", name, msg)
		}
		digests := fullHex.FindAllString(msg, -1)
		if len(digests) < 2 || digests[0] == digests[1] {
			t.Fatalf("mismatch error must quote both full digests, got %q", msg)
		}
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := VerifySweepDir(sweepDir); err != nil {
		t.Fatalf("restored sweep does not verify: %v", err)
	}
}
