// Package artifact is the reproducible result store: a content-
// addressed, on-disk cache of every sweep cell the evaluation engine
// computes, plus the sealed manifests that make a finished run an
// auditable artifact.
//
// The paper's pitch is an *open, reproducible* evaluation framework;
// this package is the discipline that keeps our own runs honest.
// Every result is filed under the SHA-256 of its sweep's canonical
// spec serialization (lab.Sweep.Canonical — topology, placement,
// policy, workload, timers, axis, seed derivation, with defaults
// resolved), so a record can never be replayed against a different
// experiment than produced it. Within one spec, the engine is
// deterministic per seed, which is what makes caching sound: a
// (spec, cell, run) triple fixes the result bit-for-bit, so a cache
// hit is byte-identical to the emulation it replaces (guarded by the
// determinism tests in this package).
//
// Layout of a store directory:
//
//	<dir>/<spec-sha256>/spec.json     the canonical spec bytes
//	<dir>/<spec-sha256>/c<i>-r<j>.json  one record per (cell, run)
//	<dir>/<spec-sha256>/c<i>-r<j>.failed.json  one failure per given-up (cell, run)
//	<dir>/<spec-sha256>/manifest.json   sealed record index (on Finish)
//
// Failure files are written by tolerant sweeps (lab.Sweep.Tolerate)
// for cells that timed out, panicked or errored. They are not records:
// Load never serves them, so a re-run against the same store retries
// exactly the failed cells, and a later success replaces the failure
// file. The manifest indexes them separately so a partial sweep is an
// auditable artifact too.
//
// Records are written atomically (temp file + rename), so an
// interrupted internet-scale sweep leaves only whole records behind
// and the next run against the same store resumes where it left off.
// The manifest lists every record with its SHA-256 and carries a seal
// over its own canonical bytes; Verify detects any post-hoc record
// tampering or corruption.
package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync/atomic"

	"repro/internal/lab"
)

// Store is one on-disk artifact directory holding any number of
// sweeps, each filed under its spec hash.
type Store struct {
	dir string
}

// Open creates (if necessary) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("artifact: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Sweep binds the store to one sweep: it computes the spec's content
// address, materializes the spec directory, and returns the cache the
// sweep consults per (cell, run). If the spec directory already holds
// records from an earlier (possibly interrupted) run they are served
// as hits; a spec.json that disagrees with the computed canonical
// bytes is corruption and errors out.
func (s *Store) Sweep(sw lab.Sweep) (*SweepStore, error) {
	spec, err := sw.Canonical()
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(spec)
	hash := hex.EncodeToString(sum[:])
	dir := filepath.Join(s.dir, hash)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	runs := sw.Runs
	if runs <= 0 {
		runs = 1
	}
	ss := &SweepStore{
		dir:   dir,
		hash:  hash,
		spec:  spec,
		name:  sw.Name,
		cells: sw.Axis.Len(),
		runs:  runs,
	}
	specPath := filepath.Join(dir, "spec.json")
	if prev, err := os.ReadFile(specPath); err == nil {
		if string(prev) != string(spec) {
			return nil, fmt.Errorf("artifact: %s/spec.json does not match the sweep's canonical spec (corrupt store or hash collision)", hash)
		}
	} else if os.IsNotExist(err) {
		if err := writeFileAtomic(specPath, spec); err != nil {
			return nil, err
		}
	} else {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	return ss, nil
}

// SweepStore is a store bound to one sweep spec. It implements
// lab.CellCache; all methods are safe for concurrent use by the
// parallel runner (distinct records live in distinct files, and the
// counters are atomic).
type SweepStore struct {
	dir   string
	hash  string
	spec  []byte
	name  string
	cells int
	runs  int

	hits     atomic.Int64
	executed atomic.Int64
	failed   atomic.Int64
}

// SpecHash returns the sweep's content address (the hex SHA-256 of
// its canonical spec serialization).
func (ss *SweepStore) SpecHash() string { return ss.hash }

// Spec returns the canonical spec bytes the address was computed from.
func (ss *SweepStore) Spec() []byte { return append([]byte(nil), ss.spec...) }

// Hits returns the number of records served from the store so far.
func (ss *SweepStore) Hits() int { return int(ss.hits.Load()) }

// Executed returns the number of fresh emulation results stored so
// far — the emulations the cache did not save.
func (ss *SweepStore) Executed() int { return int(ss.executed.Load()) }

// Failed returns the number of failures filed so far (tolerant sweeps
// only).
func (ss *SweepStore) Failed() int { return int(ss.failed.Load()) }

// Total returns the sweep's (cell, run) grid size.
func (ss *SweepStore) Total() int { return ss.cells * ss.runs }

// record is the on-disk schema of one cached (cell, run) result.
type record struct {
	// SpecSHA256 echoes the spec hash the record was computed under,
	// so a record file can never be replayed against another spec.
	SpecSHA256 string `json:"spec_sha256"`
	// Cell and Run locate the record in the sweep grid.
	Cell int `json:"cell"`
	Run  int `json:"run"`
	// Result is the trial's uniform metrics record, verbatim.
	// Durations marshal as integer nanoseconds, so the round-trip is
	// exact and a cache hit is byte-identical to the run it replaces.
	Result lab.Result `json:"result"`
}

// failureRecord is the on-disk schema of one given-up (cell, run).
type failureRecord struct {
	// SpecSHA256 echoes the spec hash, mirroring record.
	SpecSHA256 string `json:"spec_sha256"`
	// Cell and Run locate the failure in the sweep grid.
	Cell int `json:"cell"`
	Run  int `json:"run"`
	// Failure is the sweep's failure record, verbatim.
	Failure lab.CellFailure `json:"failure"`
}

// recordName matches the record files Finish indexes (and nothing
// else in the spec directory: spec.json, manifest.json, failure
// files, stranded temp files).
var recordName = regexp.MustCompile(`^c\d+-r\d+\.json$`)

// failureName matches the failure files of given-up (cell, run)s.
var failureName = regexp.MustCompile(`^c\d+-r\d+\.failed\.json$`)

func (ss *SweepStore) recordPath(cell, run int) string {
	return filepath.Join(ss.dir, fmt.Sprintf("c%d-r%d.json", cell, run))
}

func (ss *SweepStore) failurePath(cell, run int) string {
	return filepath.Join(ss.dir, fmt.Sprintf("c%d-r%d.failed.json", cell, run))
}

// Load implements lab.CellCache: it returns the stored result for
// (cell, run) if a record exists, verifying that the record was filed
// under this spec hash at this position.
func (ss *SweepStore) Load(cell, run int) (lab.Result, bool, error) {
	data, err := os.ReadFile(ss.recordPath(cell, run))
	if os.IsNotExist(err) {
		return lab.Result{}, false, nil
	}
	if err != nil {
		return lab.Result{}, false, fmt.Errorf("artifact: %w", err)
	}
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		return lab.Result{}, false, fmt.Errorf("artifact: %s: %w", ss.recordPath(cell, run), err)
	}
	if rec.SpecSHA256 != ss.hash || rec.Cell != cell || rec.Run != run {
		return lab.Result{}, false, fmt.Errorf("artifact: %s: record claims (spec %.12s, cell %d, run %d), expected (spec %.12s, cell %d, run %d)",
			ss.recordPath(cell, run), rec.SpecSHA256, rec.Cell, rec.Run, ss.hash, cell, run)
	}
	ss.hits.Add(1)
	return rec.Result, true, nil
}

// Store implements lab.CellCache: it files a freshly computed result
// atomically under the spec directory.
func (ss *SweepStore) Store(cell, run int, r lab.Result) error {
	data, err := json.MarshalIndent(record{
		SpecSHA256: ss.hash,
		Cell:       cell,
		Run:        run,
		Result:     r,
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	if err := writeFileAtomic(ss.recordPath(cell, run), append(data, '\n')); err != nil {
		return err
	}
	// A success supersedes any failure a previous tolerant run filed
	// for this position.
	if err := os.Remove(ss.failurePath(cell, run)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("artifact: %w", err)
	}
	ss.executed.Add(1)
	return nil
}

// StoreFailure implements lab.FailureCache: it files a tolerant
// sweep's given-up (cell, run) atomically under the spec directory.
// Failure files never serve as cache hits, so the next run against
// this store retries exactly these positions.
func (ss *SweepStore) StoreFailure(cell, run int, f lab.CellFailure) error {
	data, err := json.MarshalIndent(failureRecord{
		SpecSHA256: ss.hash,
		Cell:       cell,
		Run:        run,
		Failure:    f,
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	if err := writeFileAtomic(ss.failurePath(cell, run), append(data, '\n')); err != nil {
		return err
	}
	ss.failed.Add(1)
	return nil
}

// RecordDigest is one manifest entry: a record file and its SHA-256.
type RecordDigest struct {
	// File is the record's name within the spec directory.
	File string `json:"file"`
	// SHA256 is the hex digest of the record file's bytes.
	SHA256 string `json:"sha256"`
}

// SweepManifest is the sealed index of one sweep's records, written by
// Finish and checked by Verify. It is deterministic for a given record
// set — records sort by file name and the seal covers the canonical
// manifest bytes — so re-running a fully cached sweep rewrites an
// identical manifest.
type SweepManifest struct {
	// Version is the manifest schema version.
	Version int `json:"version"`
	// Name is the sweep's registry name (presentation only; not part
	// of the content address).
	Name string `json:"name"`
	// SpecSHA256 is the sweep's content address.
	SpecSHA256 string `json:"spec_sha256"`
	// Cells is the number of axis values in the sweep grid.
	Cells int `json:"cells"`
	// Runs is the number of seeded repetitions per cell.
	Runs int `json:"runs"`
	// Complete reports whether every (cell, run) record is present.
	Complete bool `json:"complete"`
	// Records lists every record file with its digest, sorted by name.
	Records []RecordDigest `json:"records"`
	// Failures lists every failure file with its digest, sorted by
	// name — present only for partial sweeps a tolerant run gave up
	// cells of (omitted otherwise, so pre-existing sealed manifests
	// verify unchanged).
	Failures []RecordDigest `json:"failures,omitempty"`
	// SealSHA256 is the hex SHA-256 of the manifest's own canonical
	// bytes (this struct with an empty seal), closing the digest chain:
	// spec bytes → spec hash → record digests → seal.
	SealSHA256 string `json:"seal_sha256"`
}

// seal computes the manifest's seal over its canonical bytes.
func (m SweepManifest) seal() (string, error) {
	m.SealSHA256 = ""
	data, err := json.Marshal(m)
	if err != nil {
		return "", fmt.Errorf("artifact: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Finish writes the sealed manifest indexing every record currently
// present. Call it after the sweep completes; an interrupted run can
// skip it — Load never consults the manifest, so resume works from
// the records alone — but only a finished, sealed sweep verifies.
func (ss *SweepStore) Finish() error {
	entries, err := os.ReadDir(ss.dir)
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	m := SweepManifest{
		Version:    1,
		Name:       ss.name,
		SpecSHA256: ss.hash,
		Cells:      ss.cells,
		Runs:       ss.runs,
	}
	for _, e := range entries {
		name := e.Name()
		// Index only whole records and failures: spec.json and
		// manifest.json are neither, and a crash between CreateTemp and
		// Rename can strand a writeFileAtomic temp file here — listing
		// it would corrupt the manifest (and its determinism) for good.
		if e.IsDir() || (!recordName.MatchString(name) && !failureName.MatchString(name)) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(ss.dir, name))
		if err != nil {
			return fmt.Errorf("artifact: %w", err)
		}
		sum := sha256.Sum256(data)
		rd := RecordDigest{File: name, SHA256: hex.EncodeToString(sum[:])}
		if failureName.MatchString(name) {
			m.Failures = append(m.Failures, rd)
		} else {
			m.Records = append(m.Records, rd)
		}
	}
	sort.Slice(m.Records, func(i, j int) bool { return m.Records[i].File < m.Records[j].File })
	sort.Slice(m.Failures, func(i, j int) bool { return m.Failures[i].File < m.Failures[j].File })
	m.Complete = len(m.Records) == ss.Total()
	if m.SealSHA256, err = m.seal(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	return writeFileAtomic(filepath.Join(ss.dir, "manifest.json"), append(data, '\n'))
}

// Verify re-checks a sealed sweep directory: the manifest's seal, the
// spec bytes against the directory's content address, and every
// listed record against its digest. It reports the first discrepancy.
func (ss *SweepStore) Verify() error {
	return VerifySweepDir(ss.dir)
}

// VerifySweepDir verifies one <store>/<spec-hash> directory: manifest
// seal, spec hash, and record digests.
func VerifySweepDir(dir string) error {
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	var m SweepManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("artifact: %s: %w", dir, err)
	}
	want, err := m.seal()
	if err != nil {
		return err
	}
	if m.SealSHA256 != want {
		return fmt.Errorf("artifact: %s: manifest seal mismatch (recorded %.12s, computed %.12s)", dir, m.SealSHA256, want)
	}
	spec, err := os.ReadFile(filepath.Join(dir, "spec.json"))
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	sum := sha256.Sum256(spec)
	if got := hex.EncodeToString(sum[:]); got != m.SpecSHA256 {
		return fmt.Errorf("artifact: %s: spec.json hashes to %.12s, manifest says %.12s", dir, got, m.SpecSHA256)
	}
	for _, rd := range append(append([]RecordDigest(nil), m.Records...), m.Failures...) {
		data, err := os.ReadFile(filepath.Join(dir, rd.File))
		if err != nil {
			return fmt.Errorf("artifact: %w", err)
		}
		sum := sha256.Sum256(data)
		// Full digests on purpose: a digest mismatch is the audit trail's
		// terminal finding, and the reader needs both complete hashes to
		// tell tampering from truncation or to look the bytes up
		// elsewhere.
		if got := hex.EncodeToString(sum[:]); got != rd.SHA256 {
			return fmt.Errorf("artifact: %s: digest mismatch\n  recorded %s\n  computed %s", filepath.Join(dir, rd.File), rd.SHA256, got)
		}
	}
	return nil
}

// RunStats reports how one stored sweep execution went. The unit is
// one (cell, run) record — a sweep of C cells × R seeded runs has
// Total = C*R.
type RunStats struct {
	// SpecHash is the sweep's content address.
	SpecHash string
	// Hits is the number of (cell, run) records served from the store.
	Hits int
	// Executed is the number of (cell, run) records emulated fresh.
	Executed int
	// Failed is the number of (cell, run) failures filed (tolerant
	// sweeps only; zero otherwise).
	Failed int
	// Total is the sweep's (cell, run) grid size.
	Total int
}

// Stats snapshots the store's counters for this execution.
func (ss *SweepStore) Stats() RunStats {
	return RunStats{
		SpecHash: ss.SpecHash(),
		Hits:     ss.Hits(),
		Executed: ss.Executed(),
		Failed:   ss.Failed(),
		Total:    ss.Total(),
	}
}

// RunSweep executes a sweep through the store: cached cells load,
// fresh cells run and are filed, and the sealed manifest is written on
// completion. It is the one call behind `convergence -out` and every
// labreport figure.
//
// A graceful drain (Sweep.Stop closed mid-run) is not a failure: the
// in-flight cells have already flushed their records, so RunSweep
// seals the partial manifest (Complete=false), returns the stats of
// what did run, and reports lab.ErrStopped — a re-run of the same
// spec resumes from the stored records.
func RunSweep(store *Store, sw lab.Sweep) (*lab.SweepResult, RunStats, error) {
	ss, err := store.Sweep(sw)
	if err != nil {
		return nil, RunStats{}, err
	}
	sw.Cache = ss
	res, err := sw.Run()
	if err != nil {
		if errors.Is(err, lab.ErrStopped) {
			if ferr := ss.Finish(); ferr != nil {
				return nil, RunStats{}, ferr
			}
			return nil, ss.Stats(), err
		}
		return nil, RunStats{}, err
	}
	if err := ss.Finish(); err != nil {
		return nil, RunStats{}, err
	}
	return res, ss.Stats(), nil
}

// WriteFileAtomic writes data to path via a temp file and rename, so
// concurrent readers and interrupted runs only ever observe whole
// files — the write discipline behind every store record and every
// generated report file.
func WriteFileAtomic(path string, data []byte) error {
	return writeFileAtomic(path, data)
}

func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		//lint:errcheck best-effort cleanup after a failed write; the write error is returned
		tmp.Close()
		//lint:errcheck best-effort cleanup after a failed write; the write error is returned
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		//lint:errcheck best-effort cleanup after a failed close; the close error is returned
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		//lint:errcheck best-effort cleanup after a failed rename; the rename error is returned
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: %w", err)
	}
	return nil
}
