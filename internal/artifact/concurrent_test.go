package artifact

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/lab"
)

// readManifest decodes a sweep directory's sealed manifest.
func readManifest(t *testing.T, dir string) SweepManifest {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m SweepManifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRunSweepStopped pins the graceful-shutdown contract end to end:
// a sweep stopped mid-run still flushes every completed record, seals
// a partial (Complete=false) manifest, and reports lab.ErrStopped —
// and a re-run of the same spec against the same store resumes from
// the partial records and seals a complete manifest.
func TestRunSweepStopped(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sw := testSweep()
	sw.Parallelism = 1
	stop := make(chan struct{})
	var once sync.Once
	sw.Progress = func(done, total int) {
		if done >= 2 {
			once.Do(func() { close(stop) })
		}
	}
	sw.Stop = stop
	res, stats, err := RunSweep(store, sw)
	if !errors.Is(err, lab.ErrStopped) {
		t.Fatalf("RunSweep returned %v, want lab.ErrStopped", err)
	}
	if res != nil {
		t.Fatalf("stopped RunSweep returned a result")
	}
	if stats.Executed != 2 {
		t.Fatalf("stopped RunSweep executed %d runs, want 2", stats.Executed)
	}
	// The partial manifest is sealed and auditable, just not complete.
	sweepDir := filepath.Join(dir, stats.SpecHash)
	if err := VerifySweepDir(sweepDir); err != nil {
		t.Fatalf("partial manifest does not verify: %v", err)
	}
	m := readManifest(t, sweepDir)
	if m.Complete {
		t.Fatal("partial manifest claims Complete")
	}
	if len(m.Records) != 2 {
		t.Fatalf("partial manifest lists %d records, want 2", len(m.Records))
	}
	// Resume: no stop channel this time. The two stored runs are hits.
	sw.Stop = nil
	sw.Progress = nil
	res, stats, err = RunSweep(store, sw)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("resumed RunSweep returned no result")
	}
	if stats.Hits != 2 || stats.Executed != stats.Total-2 {
		t.Fatalf("resume stats %+v, want 2 hits and %d executed", stats, stats.Total-2)
	}
	m = readManifest(t, sweepDir)
	if !m.Complete {
		t.Fatal("resumed manifest not Complete")
	}
}

// TestConcurrentSweepStores is the daemon's common case: many
// goroutines sharing one store directory, each running its own sweep
// through its own SweepStore — including two goroutines racing the
// *same* spec (uncoalesced clients). Atomic record writes and the
// deterministic engine make the race benign: both writers produce
// byte-identical records, so whoever wins the rename leaves the same
// bytes.
func TestConcurrentSweepStores(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Four workers: two race the identical spec, two run distinct
	// seeds of it (distinct content addresses, same directory tree).
	sweeps := make([]lab.Sweep, 4)
	for i := range sweeps {
		sw := testSweep()
		sw.Parallelism = 1
		if i >= 2 {
			sw.BaseSeed = int64(100 + i)
		}
		sweeps[i] = sw
	}
	var wg sync.WaitGroup
	errs := make([]error, len(sweeps))
	hashes := make([]string, len(sweeps))
	for i, sw := range sweeps {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, stats, err := RunSweep(store, sw)
			errs[i] = err
			hashes[i] = stats.SpecHash
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if hashes[0] != hashes[1] {
		t.Fatalf("identical specs got distinct addresses %.12s, %.12s", hashes[0], hashes[1])
	}
	if hashes[2] == hashes[3] || hashes[2] == hashes[0] {
		t.Fatal("distinct seeds share a content address")
	}
	// Every sweep directory seals and verifies after the dust settles.
	for _, h := range hashes {
		if err := VerifySweepDir(filepath.Join(dir, h)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentSnapshotStore races many goroutines over one shared
// snapshot directory: concurrent stores of the same key, loads racing
// stores, and distinct keys in flight together. The store's contract
// is that readers only ever observe whole files.
func TestConcurrentSnapshotStore(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ss, err := store.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 4)
	blobs := make([][]byte, 4)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i+1)
		blobs[i] = []byte(fmt.Sprintf(`{"snapshot":%d}`, i))
	}
	var wg sync.WaitGroup
	var fail error
	var mu sync.Mutex
	report := func(err error) {
		mu.Lock()
		if fail == nil {
			fail = err
		}
		mu.Unlock()
	}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				k := (w + iter) % len(keys)
				if err := ss.Store(keys[k], blobs[k]); err != nil {
					report(err)
					return
				}
				data, ok, err := ss.Load(keys[k])
				if err != nil {
					report(err)
					return
				}
				if ok && string(data) != string(blobs[k]) {
					report(fmt.Errorf("key %s: read %q, want %q", keys[k], data, blobs[k]))
					return
				}
			}
		}()
	}
	wg.Wait()
	if fail != nil {
		t.Fatal(fail)
	}
	st := ss.Stats()
	if st.Stored == 0 || st.Hits == 0 {
		t.Fatalf("counters did not move: %+v", st)
	}
}
