package artifact

import (
	"bytes"
	"strings"
	"testing"
)

const snapKey = "ab12cd34ef56ab12cd34ef56ab12cd34ef56ab12cd34ef56ab12cd34ef56ab12"

// TestSnapshotStoreRoundTrip pins the durable warm-up cache contract:
// a stored snapshot loads byte-identical, a fresh key misses without
// error, and the counters account for every outcome.
func TestSnapshotStoreRoundTrip(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := store.Snapshots()
	if err != nil {
		t.Fatal(err)
	}

	if _, ok, err := snaps.Load(snapKey); err != nil || ok {
		t.Fatalf("empty cache: Load = ok=%v err=%v, want miss", ok, err)
	}
	payload := []byte(`{"version":1,"fake":"snapshot"}`)
	if err := snaps.Store(snapKey, payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := snaps.Load(snapKey)
	if err != nil || !ok {
		t.Fatalf("warm cache: Load = ok=%v err=%v, want hit", ok, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round-trip corrupted snapshot: got %q want %q", got, payload)
	}
	if st := snaps.Stats(); st != (SnapshotStats{Hits: 1, Misses: 1, Stored: 1}) {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 stored", st)
	}

	// Snapshots persist across reopen: a second handle over the same
	// store hits immediately (fresh counters — they are per handle).
	again, err := store.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err = again.Load(snapKey)
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("reopened cache: Load = %q ok=%v err=%v", got, ok, err)
	}
	if st := again.Stats(); st != (SnapshotStats{Hits: 1}) {
		t.Fatalf("reopened stats = %+v, want exactly 1 hit", st)
	}
}

// TestSnapshotStoreRejectsBadKeys pins that malformed keys — anything
// but a hex SHA-256, notably path fragments — never touch the
// filesystem.
func TestSnapshotStoreRejectsBadKeys(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := store.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"",
		"short",
		strings.Repeat("g", 64),
		strings.Repeat("A", 64),
		"../" + snapKey[:61],
		snapKey + "00",
	} {
		if _, _, err := snaps.Load(key); err == nil {
			t.Errorf("Load(%q) accepted a malformed key", key)
		}
		if err := snaps.Store(key, []byte("x")); err == nil {
			t.Errorf("Store(%q) accepted a malformed key", key)
		}
	}
	if st := snaps.Stats(); st != (SnapshotStats{}) {
		t.Fatalf("rejected keys moved the counters: %+v", st)
	}
}
