package artifact

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sync/atomic"
)

// The durable warm-up snapshot cache: encoded experiment snapshots
// filed under <store>/snapshots/<warmup-key>.json, one file per
// distinct warm-up key (lab.Trial.WarmupKey). Unlike sweep records the
// files are keyed by the warm-up prefix alone, so every sweep and
// figure in the store shares them: two figures over the same warmed-up
// network converge once. Snapshot files are a pure accelerator — they
// never change a result (the lab restores even freshly-warmed state,
// so hits and misses are byte-identical) — which is why they live
// outside the sealed per-sweep manifests: deleting the snapshots
// directory only makes the next run slower.

// snapshotKeyRE validates cache keys before they touch the filesystem:
// lab.Trial.WarmupKeyHash always produces a hex SHA-256.
var snapshotKeyRE = regexp.MustCompile(`^[0-9a-f]{64}$`)

// SnapshotStore is the on-disk lab.SnapshotCache of one artifact
// store. All methods are safe for concurrent use: distinct keys live
// in distinct files, writes are atomic, and the counters are atomic.
type SnapshotStore struct {
	dir string

	hits   atomic.Int64
	misses atomic.Int64
	stored atomic.Int64
}

// Snapshots opens (creating if necessary) the store's shared warm-up
// snapshot cache.
func (s *Store) Snapshots() (*SnapshotStore, error) {
	dir := filepath.Join(s.dir, "snapshots")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	return &SnapshotStore{dir: dir}, nil
}

// Dir returns the snapshot cache directory.
func (ss *SnapshotStore) Dir() string { return ss.dir }

func (ss *SnapshotStore) path(key string) string {
	return filepath.Join(ss.dir, key+".json")
}

// Load implements lab.SnapshotCache: it returns the snapshot bytes
// filed under key, counting a hit or a miss.
func (ss *SnapshotStore) Load(key string) ([]byte, bool, error) {
	if !snapshotKeyRE.MatchString(key) {
		return nil, false, fmt.Errorf("artifact: bad snapshot key %q", key)
	}
	data, err := os.ReadFile(ss.path(key))
	if os.IsNotExist(err) {
		ss.misses.Add(1)
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("artifact: %w", err)
	}
	ss.hits.Add(1)
	return data, true, nil
}

// Store implements lab.SnapshotCache: it files the snapshot bytes
// atomically under key.
func (ss *SnapshotStore) Store(key string, snap []byte) error {
	if !snapshotKeyRE.MatchString(key) {
		return fmt.Errorf("artifact: bad snapshot key %q", key)
	}
	if err := writeFileAtomic(ss.path(key), snap); err != nil {
		return err
	}
	ss.stored.Add(1)
	return nil
}

// SnapshotStats reports how the warm-up cache fared over some span of
// executions: Hits warm-ups restored from disk, Misses warmed up
// fresh, Stored snapshot files written.
type SnapshotStats struct {
	// Hits counts warm-ups restored from a cached snapshot.
	Hits int `json:"hits"`
	// Misses counts warm-ups executed fresh (no snapshot on disk).
	Misses int `json:"misses"`
	// Stored counts snapshot files written.
	Stored int `json:"stored"`
}

// Stats returns the counters accumulated since the store was opened.
func (ss *SnapshotStore) Stats() SnapshotStats {
	return SnapshotStats{
		Hits:   int(ss.hits.Load()),
		Misses: int(ss.misses.Load()),
		Stored: int(ss.stored.Load()),
	}
}
