package artifact

import (
	"bytes"
	"crypto/sha256"
	_ "embed"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"regexp"
)

// ReportManifest is the machine-readable index of one generated lab
// report (cmd/labreport's manifest.json): which figures were rendered,
// under which content addresses, with their headline numbers. Like
// the sweep manifests it is deterministic — no timestamps, no host
// information — and sealed, so two runs of the same profile over the
// same engine emit byte-identical manifests.
//
// The schema is documented as JSON Schema in
// report-manifest.schema.json (embedded; ReportManifestSchema) and
// enforced structurally by ValidateReportManifest.
type ReportManifest struct {
	// Version is the manifest schema version.
	Version int `json:"version"`
	// Generator identifies the emitting tool ("labreport").
	Generator string `json:"generator"`
	// Profile names the figure profile the report ran.
	Profile string `json:"profile"`
	// Figures lists one entry per rendered figure, in report order.
	Figures []ReportFigure `json:"figures"`
	// SealSHA256 is the hex SHA-256 of the manifest's canonical bytes
	// (this struct with an empty seal).
	SealSHA256 string `json:"seal_sha256"`
}

// ReportFigure is one figure's manifest entry: the resolved spec echo,
// its content address, the emitted files and the headline statistics.
type ReportFigure struct {
	// Name is the registry name (the CLI's -exp value).
	Name string `json:"name"`
	// Title is the registry's one-line description.
	Title string `json:"title"`
	// SpecSHA256 is the sweep's content address in the store.
	SpecSHA256 string `json:"spec_sha256"`
	// Topology echoes the resolved sweep's topology spec.
	Topology string `json:"topology"`
	// Policy echoes the routing-policy template.
	Policy string `json:"policy"`
	// Event echoes the trigger (the workload schedule when one is set).
	Event string `json:"event"`
	// Axis echoes the swept axis name.
	Axis string `json:"axis"`
	// Runs is the number of seeded repetitions per cell.
	Runs int `json:"runs"`
	// BaseSeed is the seed offset the runs derived from.
	BaseSeed int64 `json:"base_seed"`
	// SVG is the figure's boxplot file, relative to the report dir.
	SVG string `json:"svg"`
	// EpochSVGs lists the per-epoch boxplots of multi-event sweeps.
	EpochSVGs []string `json:"epoch_svgs,omitempty"`
	// Cells carries the per-cell headline numbers.
	Cells []ReportCell `json:"cells"`
	// Fit is the linear fit over the cells, when the axis is numeric.
	Fit *ReportFit `json:"fit,omitempty"`
}

// ReportCell is one cell's headline entry in the report manifest.
type ReportCell struct {
	// Label is the cell's axis value ("8", "30s", "gao-rexford").
	Label string `json:"label"`
	// N is the number of seeded runs behind the summary.
	N int `json:"n"`
	// MedianS is the median convergence time in seconds.
	MedianS float64 `json:"med_s"`
	// MeanUpdates is the mean per-run UPDATE count.
	MeanUpdates float64 `json:"updates_sent"`
}

// ReportFit echoes a sweep's linear fit (lab.SweepResult.Fit).
type ReportFit struct {
	// InterceptS is the fit's intercept in seconds.
	InterceptS float64 `json:"intercept_s"`
	// SlopeS is the fit's slope in seconds per axis unit.
	SlopeS float64 `json:"slope_s"`
	// R2 is the fit's coefficient of determination.
	R2 float64 `json:"r2"`
}

// ReportManifestSchema is the JSON Schema document describing
// ReportManifest, shipped for external consumers; the Go validator
// below enforces the same constraints without third-party schema
// libraries.
//
//go:embed report-manifest.schema.json
var ReportManifestSchema []byte

// Seal computes and fills the manifest's seal; call it last.
func (m *ReportManifest) Seal() error {
	seal, err := m.sealHex()
	if err != nil {
		return err
	}
	m.SealSHA256 = seal
	return nil
}

// Encode renders the sealed manifest as deterministic, indented JSON.
func (m *ReportManifest) Encode() ([]byte, error) {
	if err := m.Seal(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	return append(data, '\n'), nil
}

var hexHash = regexp.MustCompile(`^[0-9a-f]{64}$`)

// ValidateReportManifest checks manifest bytes against the report
// manifest schema: required fields, types (unknown fields rejected),
// hash formats, and the seal. It is the check behind labreport -check
// and the CI report-smoke job.
func ValidateReportManifest(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var m ReportManifest
	if err := dec.Decode(&m); err != nil {
		return fmt.Errorf("artifact: report manifest: %w", err)
	}
	if m.Version != 1 {
		return fmt.Errorf("artifact: report manifest: unsupported version %d", m.Version)
	}
	if m.Generator == "" {
		return fmt.Errorf("artifact: report manifest: missing generator")
	}
	if m.Profile == "" {
		return fmt.Errorf("artifact: report manifest: missing profile")
	}
	if len(m.Figures) == 0 {
		return fmt.Errorf("artifact: report manifest: no figures")
	}
	for i, f := range m.Figures {
		if f.Name == "" {
			return fmt.Errorf("artifact: report manifest: figure %d: missing name", i)
		}
		if f.Title == "" {
			return fmt.Errorf("artifact: report manifest: figure %q: missing title", f.Name)
		}
		if !hexHash.MatchString(f.SpecSHA256) {
			return fmt.Errorf("artifact: report manifest: figure %q: spec_sha256 %q is not a hex SHA-256", f.Name, f.SpecSHA256)
		}
		if f.Topology == "" || f.Axis == "" || f.Policy == "" {
			return fmt.Errorf("artifact: report manifest: figure %q: missing spec echo (topology/axis/policy)", f.Name)
		}
		if f.Runs <= 0 {
			return fmt.Errorf("artifact: report manifest: figure %q: runs %d", f.Name, f.Runs)
		}
		if f.SVG == "" {
			return fmt.Errorf("artifact: report manifest: figure %q: missing svg", f.Name)
		}
		if len(f.Cells) == 0 {
			return fmt.Errorf("artifact: report manifest: figure %q: no cells", f.Name)
		}
		for j, c := range f.Cells {
			if c.Label == "" {
				return fmt.Errorf("artifact: report manifest: figure %q: cell %d: missing label", f.Name, j)
			}
			if c.N <= 0 {
				return fmt.Errorf("artifact: report manifest: figure %q: cell %q: n = %d", f.Name, c.Label, c.N)
			}
		}
	}
	want, err := m.sealHex()
	if err != nil {
		return err
	}
	if m.SealSHA256 != want {
		return fmt.Errorf("artifact: report manifest: seal mismatch (recorded %.12s, computed %.12s)", m.SealSHA256, want)
	}
	return nil
}

// sealHex computes the seal without mutating the receiver's seal.
func (m *ReportManifest) sealHex() (string, error) {
	cp := *m
	cp.SealSHA256 = ""
	data, err := json.Marshal(cp)
	if err != nil {
		return "", fmt.Errorf("artifact: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
