package sim

import (
	"container/heap"
	"math/bits"
	"time"
)

// This file implements the hierarchical timer wheel that backs the
// kernel's long-delay timers (MRAI, hold, keepalive, retry, damping
// reuse). The design follows the ndn-dpdk minute-wheel idiom: O(1)
// insert and O(1) amortized advance, against O(log n) per heap
// operation with n pending timers.
//
// The wheel is a pure staging area in front of the event heap, never a
// second execution path: before the kernel pops or peeks an event, it
// flushes every wheel slot whose span starts at or before the heap
// head's tick, moving those entries into the heap with their ORIGINAL
// (deadline, sequence) keys. Sequence numbers are assigned by the same
// counter whether an event is filed in the wheel or the heap, so the
// executed (time, seq) trace — and therefore every byte-equality pin —
// is identical with the wheel on or off (see TestWheelHeapEquivalence).
//
// Timing coarseness never leaks: a slot may be flushed up to one slot
// span before its entries are due, but the heap then orders them by
// exact deadline. Early flushing costs a little heap residency, not
// correctness.

const (
	// wheelLevels and wheelSlots size the hierarchy: level l slots span
	// 64^l ticks, so 5 levels of 64 slots cover ~2ms .. ~26 days.
	wheelLevels   = 5
	wheelSlots    = 64
	wheelSlotBits = 6

	// wheelTickShift converts nanoseconds since Epoch to wheel ticks:
	// one tick is 2^21ns ≈ 2.1ms, well under every wheel-eligible
	// timer's granularity.
	wheelTickShift = 21
)

// wheelMinDelay is the shortest delay filed in the wheel. Short-range
// events (packet deliveries, processing completions, debounce) go
// straight to the heap — they are about to execute anyway — while the
// protocol timers that dominate pending-event population (hold 90s,
// keepalive 30s, MRAI ≤30s, retry 5s, damping reuse ≥1s) take the O(1)
// wheel path.
const wheelMinDelay = time.Second

// wheelEntry pins one scheduled revision of an event in a slot. seq is
// the revision the entry was filed under: if the event has been
// rescheduled since (ev.seq differs), the entry is stale and is dropped
// at flush time.
type wheelEntry struct {
	ev  *event
	seq uint64
}

// timerWheel is the kernel's hierarchical wheel. flushed[l] is the last
// absolute slot index at level l whose contents have been released;
// every resident entry at level l lives in an absolute slot in
// (flushed[l], flushed[l]+wheelSlots], so absolute slots map injectively
// onto the wheelSlots physical slots and a physical slot never mixes
// entries from two different absolute slots.
type timerWheel struct {
	slots   [wheelLevels][wheelSlots][]wheelEntry
	flushed [wheelLevels]int64
	// count is the number of current-revision entries resident in the
	// wheel (stale revisions left behind by Reset are pre-deducted when
	// the replacement is filed, mirroring the heap's lazy-cancel
	// accounting in Pending).
	count int
}

// tickOf converts an absolute instant to an absolute wheel tick.
func tickOf(at time.Time) int64 {
	return at.Sub(Epoch).Nanoseconds() >> wheelTickShift
}

// insert files ev under its current (at, seq) revision, reporting false
// when the deadline is too near (its tick is not strictly ahead of the
// wheel) or too far (beyond the top level) for the wheel, in which case
// the caller must use the heap. When the event's previous revision
// already sits in the target slot, the entry is re-keyed in place, so
// repeated Reset of a long-range timer — the MRAI/hold churn pattern —
// neither allocates nor grows the slot.
func (w *timerWheel) insert(ev *event) bool {
	tick := tickOf(ev.at)
	delta := tick - w.flushed[0]
	if delta <= 0 {
		return false
	}
	l := (bits.Len64(uint64(delta)) - 1) / wheelSlotBits
	if l >= wheelLevels {
		return false
	}
	s := uint8((tick >> (uint(l) * wheelSlotBits)) & (wheelSlots - 1))
	slot := &w.slots[l][s]
	if ev.walive && ev.wlevel == uint8(l) && ev.wslot == s {
		if i := int(ev.windex); i < len(*slot) && (*slot)[i].ev == ev {
			(*slot)[i].seq = ev.seq
			return true
		}
	}
	if ev.walive {
		// The previous revision's entry elsewhere in the wheel becomes
		// stale; pre-deduct it so count tracks current revisions only.
		w.count--
	}
	ev.walive = true
	ev.wlevel = uint8(l)
	ev.wslot = s
	ev.windex = int32(len(*slot))
	*slot = append(*slot, wheelEntry{ev, ev.seq})
	w.count++
	return true
}

// release advances the wheel through tick, flushing every slot whose
// span starts at or before it. Flushed entries that are due (or within
// one tick of due) move to the heap under their original (at, seq)
// keys; entries still ahead re-file into a finer level. Returns how
// many live events moved to the heap.
func (k *Kernel) wheelRelease(tick int64) int {
	w := &k.wheel
	var from [wheelLevels]int64
	advanced := false
	for l := 0; l < wheelLevels; l++ {
		from[l] = w.flushed[l]
		if target := tick >> (uint(l) * wheelSlotBits); target > w.flushed[l] {
			w.flushed[l] = target
			advanced = true
		}
	}
	if !advanced {
		return 0
	}
	moved := 0
	for l := 0; l < wheelLevels; l++ {
		lo, hi := from[l], w.flushed[l]
		if hi-lo > wheelSlots {
			// A jump past a full revolution visits each physical slot
			// exactly once.
			lo = hi - wheelSlots
		}
		for s := lo + 1; s <= hi; s++ {
			moved += k.flushSlot(l, int(s&(wheelSlots-1)))
		}
	}
	return moved
}

// flushSlot drains one physical slot. Re-filed entries always land in a
// strictly lower level (an entry in a flushable level-l slot is at most
// 64^l ticks ahead of the flush point), so the slot being drained is
// never appended to mid-iteration and its backing array can be reused.
func (k *Kernel) flushSlot(l, s int) int {
	w := &k.wheel
	entries := w.slots[l][s]
	if len(entries) == 0 {
		return 0
	}
	w.slots[l][s] = entries[:0]
	moved := 0
	for _, e := range entries {
		ev := e.ev
		if ev.seq != e.seq {
			// Stale revision: its replacement was counted when filed.
			continue
		}
		w.count--
		ev.walive = false
		if ev.cancelled {
			continue
		}
		if w.insert(ev) {
			continue
		}
		heap.Push(&k.queue, ev)
		moved++
	}
	clear(entries)
	return moved
}

// next returns the start tick of the earliest occupied slot, or false
// when the wheel holds nothing. The start is a lower bound on the
// earliest resident deadline; releasing through it surfaces (or
// re-files toward level 0) everything that could fire first.
func (w *timerWheel) next() (int64, bool) {
	best := int64(0)
	found := false
	for l := 0; l < wheelLevels; l++ {
		for s := w.flushed[l] + 1; s <= w.flushed[l]+wheelSlots; s++ {
			if len(w.slots[l][int(s&(wheelSlots-1))]) > 0 {
				if start := s << (uint(l) * wheelSlotBits); !found || start < best {
					best = start
					found = true
				}
				break
			}
		}
	}
	return best, found
}
