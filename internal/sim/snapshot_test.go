package sim

import (
	"math/rand"
	"testing"
	"time"
)

// TestCountingSourceStreamIdentity pins the property the whole
// checkpointing design rests on: a *rand.Rand over a CountingSource
// emits the byte-identical stream of one over a plain rand.NewSource,
// across every consumption method the emulation uses.
func TestCountingSourceStreamIdentity(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, -7, 1 << 40} {
		plain := rand.New(rand.NewSource(seed))
		counted := rand.New(NewCountingSource(seed))
		for i := 0; i < 1000; i++ {
			switch i % 5 {
			case 0:
				if a, b := plain.Int63(), counted.Int63(); a != b {
					t.Fatalf("seed %d draw %d: Int63 %d != %d", seed, i, a, b)
				}
			case 1:
				if a, b := plain.Float64(), counted.Float64(); a != b {
					t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, a, b)
				}
			case 2:
				if a, b := plain.Uint64(), counted.Uint64(); a != b {
					t.Fatalf("seed %d draw %d: Uint64 %d != %d", seed, i, a, b)
				}
			case 3:
				if a, b := plain.Int63n(1000), counted.Int63n(1000); a != b {
					t.Fatalf("seed %d draw %d: Int63n %d != %d", seed, i, a, b)
				}
			case 4:
				if a, b := plain.Perm(10), counted.Perm(10); len(a) == len(b) {
					for j := range a {
						if a[j] != b[j] {
							t.Fatalf("seed %d draw %d: Perm mismatch", seed, i)
						}
					}
				}
			}
		}
	}
}

// TestCountingSourceFastForward pins that (seed, draws) fully locates
// a stream position: re-seeding and fast-forwarding reproduces the
// continuation exactly.
func TestCountingSourceFastForward(t *testing.T) {
	src := NewCountingSource(99)
	r := rand.New(src)
	for i := 0; i < 137; i++ {
		r.Float64()
	}
	draws := src.Draws()
	var want []int64
	for i := 0; i < 50; i++ {
		want = append(want, r.Int63())
	}

	src2 := NewCountingSource(0)
	src2.Seed(99)
	src2.FastForward(draws)
	r2 := rand.New(src2)
	for i, w := range want {
		if got := r2.Int63(); got != w {
			t.Fatalf("draw %d after fast-forward: %d != %d", i, got, w)
		}
	}
}

// TestKernelStateRoundTrip pins the kernel restore protocol: capture
// state mid-run, rebuild a fresh kernel, re-arm the pending timer,
// finish the restore, and the continuation matches the original.
func TestKernelStateRoundTrip(t *testing.T) {
	run := func() KernelState {
		k := NewKernel(7)
		k.AfterFunc(time.Second, func() {})
		for i := 0; i < 10; i++ {
			k.Rand().Float64()
		}
		if !k.Step() {
			t.Fatal("no event to step")
		}
		k.AfterFunc(2*time.Second, func() {})
		return k.State()
	}
	st := run()

	k := NewKernel(7)
	for i := 0; i < 3; i++ {
		k.Rand().Float64() // desync deliberately; BeginRestore must resync
	}
	k.BeginRestore(st, 7)
	var fired time.Time
	k.AfterFunc(2*time.Second, func() { fired = k.Now() })
	k.FinishRestore(st)

	if k.Now().Sub(Epoch) != time.Second {
		t.Fatalf("restored clock at %v, want Epoch+1s", k.Now().Sub(Epoch))
	}
	if k.Events() != 1 {
		t.Fatalf("restored events %d, want 1", k.Events())
	}
	want := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		want.Float64()
	}
	if got, w := k.Rand().Float64(), want.Float64(); got != w {
		t.Fatalf("restored RNG continuation %v != %v", got, w)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired.Sub(Epoch) != 3*time.Second {
		t.Fatalf("re-armed timer fired at %v, want Epoch+3s", fired.Sub(Epoch))
	}
}

// TestTimerState pins the timer inspection API: active kernel timers
// report (deadline, seq); fired, stopped and nil timers do not.
func TestTimerState(t *testing.T) {
	k := NewKernel(1)
	tm := k.AfterFunc(5*time.Second, func() {})
	at, seq, ok := TimerState(tm)
	if !ok || at.Sub(Epoch) != 5*time.Second || seq == 0 {
		t.Fatalf("active timer: at=%v seq=%d ok=%v", at.Sub(Epoch), seq, ok)
	}
	tm.Stop()
	if _, _, ok := TimerState(tm); ok {
		t.Fatal("stopped timer reported active state")
	}
	if _, _, ok := TimerState(nil); ok {
		t.Fatal("nil timer reported active state")
	}
}
