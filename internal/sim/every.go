package sim

import "time"

// Every schedules fn to run repeatedly at the given interval, starting
// one interval from now — the recurring-probe/keepalive idiom. The
// returned stop function cancels the series; it is safe to call more
// than once.
func Every(clock Clock, interval time.Duration, fn func()) (stop func()) {
	if interval <= 0 {
		panic("sim: Every with non-positive interval")
	}
	stopped := false
	var timer Timer
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			timer = clock.AfterFunc(interval, tick)
		}
	}
	timer = clock.AfterFunc(interval, tick)
	return func() {
		stopped = true
		if timer != nil {
			timer.Stop()
		}
	}
}
