package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestKernelStartsAtEpoch(t *testing.T) {
	k := NewKernel(1)
	if !k.Now().Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", k.Now(), Epoch)
	}
	if k.Elapsed() != 0 {
		t.Fatalf("Elapsed() = %v, want 0", k.Elapsed())
	}
}

func TestAfterFuncOrdering(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.AfterFunc(3*time.Second, func() { got = append(got, 3) })
	k.AfterFunc(1*time.Second, func() { got = append(got, 1) })
	k.AfterFunc(2*time.Second, func() { got = append(got, 2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	k := NewKernel(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.AfterFunc(time.Second, func() { got = append(got, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant order = %v, want FIFO", got)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	k := NewKernel(1)
	var at time.Time
	k.AfterFunc(5*time.Second, func() { at = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if want := Epoch.Add(5 * time.Second); !at.Equal(want) {
		t.Fatalf("event saw Now() = %v, want %v", at, want)
	}
}

func TestNegativeDelayRunsImmediately(t *testing.T) {
	k := NewKernel(1)
	ran := false
	k.AfterFunc(-time.Second, func() { ran = true })
	k.Step()
	if !ran {
		t.Fatal("negative-delay event did not run on first step")
	}
	if !k.Now().Equal(Epoch) {
		t.Fatalf("clock moved backwards: %v", k.Now())
	}
}

func TestTimerStop(t *testing.T) {
	k := NewKernel(1)
	ran := false
	tm := k.AfterFunc(time.Second, func() { ran = true })
	if !tm.Active() {
		t.Fatal("timer should be active before firing")
	}
	if !tm.Stop() {
		t.Fatal("Stop() = false on active timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("stopped timer fired")
	}
	if tm.Active() {
		t.Fatal("stopped timer reports active")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	k := NewKernel(1)
	tm := k.AfterFunc(time.Second, func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if tm.Stop() {
		t.Fatal("Stop() = true after the timer fired")
	}
	if tm.Active() {
		t.Fatal("fired timer reports active")
	}
}

func TestTimerReset(t *testing.T) {
	k := NewKernel(1)
	var fireTimes []time.Duration
	var tm Timer
	tm = k.AfterFunc(time.Second, func() {
		fireTimes = append(fireTimes, k.Elapsed())
	})
	// Push it out before it fires.
	if !tm.Reset(3 * time.Second) {
		t.Fatal("Reset on pending timer should report true")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fireTimes) != 1 || fireTimes[0] != 3*time.Second {
		t.Fatalf("fireTimes = %v, want [3s]", fireTimes)
	}
	// Reset after firing re-arms it.
	if tm.Reset(2*time.Second) != false {
		t.Fatal("Reset on fired timer should report false")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fireTimes) != 2 || fireTimes[1] != 5*time.Second {
		t.Fatalf("fireTimes = %v, want second firing at 5s", fireTimes)
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel(1)
	var fired []int
	k.AfterFunc(1*time.Second, func() { fired = append(fired, 1) })
	k.AfterFunc(10*time.Second, func() { fired = append(fired, 10) })
	if err := k.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v, want [1]", fired)
	}
	if k.Elapsed() != 5*time.Second {
		t.Fatalf("Elapsed() = %v, want 5s", k.Elapsed())
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", k.Pending())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want both events", fired)
	}
}

func TestNestedScheduling(t *testing.T) {
	k := NewKernel(1)
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			k.AfterFunc(time.Millisecond, rec)
		}
	}
	k.Go(rec)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if want := 99 * time.Millisecond; k.Elapsed() != want {
		t.Fatalf("Elapsed() = %v, want %v", k.Elapsed(), want)
	}
}

func TestEventBudget(t *testing.T) {
	k := NewKernel(1)
	k.MaxEvents = 50
	var loop func()
	loop = func() { k.AfterFunc(time.Millisecond, loop) }
	k.Go(loop)
	if err := k.Run(); err != ErrEventBudget {
		t.Fatalf("Run() = %v, want ErrEventBudget", err)
	}
	if k.Events() != 50 {
		t.Fatalf("Events() = %d, want 50", k.Events())
	}
}

func TestDeterminismAcrossKernels(t *testing.T) {
	run := func(seed int64) []int {
		k := NewKernel(seed)
		var out []int
		for i := 0; i < 50; i++ {
			d := time.Duration(k.Rand().Intn(1000)) * time.Millisecond
			v := i
			k.AfterFunc(d, func() { out = append(out, v) })
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(42), run(42)
	c := run(43)
	if len(a) != 50 || len(b) != 50 {
		t.Fatal("missing events")
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff && same {
		t.Log("seeds 42 and 43 produced identical order (possible but unlikely)")
	}
}

func TestRunWhile(t *testing.T) {
	k := NewKernel(1)
	n := 0
	var loop func()
	loop = func() {
		n++
		k.AfterFunc(time.Second, loop)
	}
	k.Go(loop)
	if err := k.RunWhile(func() bool { return n < 10 }); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("n = %d, want 10", n)
	}
}

// Property: for any set of non-negative delays, events fire in
// non-decreasing timestamp order.
func TestPropertyEventsFireInOrder(t *testing.T) {
	f := func(delaysMs []uint16) bool {
		k := NewKernel(7)
		var fired []time.Time
		for _, d := range delaysMs {
			k.AfterFunc(time.Duration(d)*time.Millisecond, func() {
				fired = append(fired, k.Now())
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].Before(fired[i-1]) {
				return false
			}
		}
		return len(fired) == len(delaysMs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: stopping any subset of timers prevents exactly that subset
// from firing.
func TestPropertyStopPreventsFiring(t *testing.T) {
	f := func(stopMask []bool) bool {
		k := NewKernel(9)
		fired := make([]bool, len(stopMask))
		timers := make([]Timer, len(stopMask))
		for i := range stopMask {
			i := i
			timers[i] = k.AfterFunc(time.Duration(i)*time.Millisecond, func() { fired[i] = true })
		}
		for i, stop := range stopMask {
			if stop {
				timers[i].Stop()
			}
		}
		if err := k.Run(); err != nil {
			return false
		}
		for i, stop := range stopMask {
			if fired[i] == stop {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWallClock(t *testing.T) {
	var c Clock = WallClock{}
	if d := time.Since(c.Now()); d > time.Minute || d < -time.Minute {
		t.Fatalf("WallClock.Now far from time.Now: %v", d)
	}
	done := make(chan struct{})
	tm := c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WallClock timer did not fire")
	}
	if tm.Stop() {
		t.Fatal("Stop after fire = true")
	}
	// Go runs the function.
	ran := make(chan struct{})
	c.Go(func() { close(ran) })
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("WallClock.Go did not run")
	}
}

func TestEvery(t *testing.T) {
	k := NewKernel(1)
	n := 0
	stop := Every(k, time.Second, func() { n++ })
	if err := k.RunFor(5500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("ticks = %d, want 5", n)
	}
	stop()
	stop() // idempotent
	if err := k.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("ticks after stop = %d, want 5", n)
	}
}

func TestEveryStopFromWithinCallback(t *testing.T) {
	k := NewKernel(1)
	n := 0
	var stop func()
	stop = Every(k, time.Second, func() {
		n++
		if n == 3 {
			stop()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("ticks = %d, want 3", n)
	}
}

func TestEveryPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Every(NewKernel(1), 0, func() {})
}
