package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// traceKernel runs a randomized timer schedule on k and returns the
// (elapsed, id) trace of every firing. The schedule derives entirely
// from rng, so two kernels driven by equally-seeded generators execute
// the identical logical workload.
func traceKernel(k *Kernel, rng *rand.Rand, ops int) [][2]int64 {
	var trace [][2]int64
	var timers []Timer
	id := 0
	schedule := func() {
		// Mix short heap-bound delays with long wheel-bound ones.
		var d time.Duration
		if rng.Intn(2) == 0 {
			d = time.Duration(rng.Intn(2000)) * time.Millisecond
		} else {
			d = time.Duration(rng.Intn(120)) * time.Second
		}
		n := id
		id++
		timers = append(timers, k.AfterFunc(d, func() {
			trace = append(trace, [2]int64{int64(k.Elapsed()), int64(n)})
		}))
	}
	for i := 0; i < 8; i++ {
		schedule()
	}
	for i := 0; i < ops; i++ {
		switch rng.Intn(4) {
		case 0:
			schedule()
		case 1:
			if len(timers) > 0 {
				timers[rng.Intn(len(timers))].Stop()
			}
		case 2:
			if len(timers) > 0 {
				d := time.Duration(rng.Intn(90)) * time.Second
				timers[rng.Intn(len(timers))].Reset(d)
			}
		case 3:
			k.RunFor(time.Duration(rng.Intn(5000)) * time.Millisecond)
		}
	}
	if err := k.Run(); err != nil {
		panic(err)
	}
	return trace
}

// Property: the timer wheel is execution-invisible — any schedule of
// AfterFunc/Stop/Reset interleaved with partial runs fires in exactly
// the same order, at the same instants, with the wheel on or off.
func TestWheelHeapEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		wheel := NewKernel(1)
		heapOnly := NewKernel(1)
		heapOnly.NoWheel = true
		a := traceKernel(wheel, rand.New(rand.NewSource(seed)), 200)
		b := traceKernel(heapOnly, rand.New(rand.NewSource(seed)), 200)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return wheel.Events() == heapOnly.Events() && wheel.seq == heapOnly.seq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: batch draining is execution-invisible — same trace, same
// event and sequence counters, with SerialDrain on or off.
func TestBatchSerialEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		batched := NewKernel(1)
		serial := NewKernel(1)
		serial.SerialDrain = true
		a := traceKernel(batched, rand.New(rand.NewSource(seed)), 200)
		b := traceKernel(serial, rand.New(rand.NewSource(seed)), 200)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return batched.Events() == serial.Events() && batched.seq == serial.seq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Same-instant events scheduled during a batch must run after the
// events already in the batch — the heap-pop order (time, seq) — and
// events stopped or rescheduled by an earlier batch member must not
// fire from their superseded slot.
func TestBatchMidDrainMutation(t *testing.T) {
	k := NewKernel(1)
	var got []int
	var victim, moved Timer
	k.AfterFunc(time.Second, func() {
		got = append(got, 0)
		victim.Stop()
		moved.Reset(time.Second)                        // re-keys to t=2s
		k.AfterFunc(0, func() { got = append(got, 9) }) // joins this instant, after peers
	})
	victim = k.AfterFunc(time.Second, func() { got = append(got, 1) })
	moved = k.AfterFunc(time.Second, func() { got = append(got, 2) })
	k.AfterFunc(time.Second, func() { got = append(got, 3) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 3, 9, 2}
	if len(got) != len(want) {
		t.Fatalf("trace = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trace = %v, want %v", got, want)
		}
	}
}

// A snapshot taken mid-batch — via RunWhile stopping partway through a
// same-instant burst — must still see every unexecuted event as Active
// with its original (deadline, seq), so component snapshots capture it.
func TestMidBatchTimerStateAndPending(t *testing.T) {
	k := NewKernel(1)
	ran := 0
	var timers []Timer
	for i := 0; i < 6; i++ {
		timers = append(timers, k.AfterFunc(time.Second, func() { ran++ }))
	}
	if err := k.RunWhile(func() bool { return ran < 3 }); err != nil {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Fatalf("ran = %d, want 3", ran)
	}
	if got := k.Pending(); got != 3 {
		t.Fatalf("Pending() mid-batch = %d, want 3", got)
	}
	for i, tm := range timers {
		at, seq, ok := TimerState(tm)
		if i < 3 {
			if ok {
				t.Fatalf("timer %d: executed but still snapshot-visible", i)
			}
			continue
		}
		if !ok {
			t.Fatalf("timer %d: unexecuted batch member invisible to snapshot", i)
		}
		if want := Epoch.Add(time.Second); !at.Equal(want) {
			t.Fatalf("timer %d: at = %v, want %v", i, at, want)
		}
		if seq != uint64(i+1) {
			t.Fatalf("timer %d: seq = %d, want %d", i, seq, i+1)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 6 {
		t.Fatalf("ran = %d after drain, want 6", ran)
	}
}

// Wheel-resident timers must be re-keyed in place by Reset: the
// MRAI/hold churn pattern — repeatedly pushing a long deadline out —
// allocates nothing and leaves at most one wheel entry per timer slot.
func TestWheelResetInPlaceZeroAlloc(t *testing.T) {
	k := NewKernel(1)
	tm := k.AfterFunc(90*time.Second, func() {})
	allocs := testing.AllocsPerRun(1000, func() {
		tm.Reset(90 * time.Second)
	})
	if allocs != 0 {
		t.Fatalf("wheel Reset allocs/op = %v, want 0", allocs)
	}
	if k.wheel.count != 1 {
		t.Fatalf("wheel count after churn = %d, want 1", k.wheel.count)
	}
}

// A long jump of virtual time must cascade wheel entries down the
// levels and fire them at their exact deadlines.
func TestWheelCascadeAcrossLevels(t *testing.T) {
	k := NewKernel(1)
	deadlines := []time.Duration{
		2 * time.Second,     // level 1 territory
		5 * time.Minute,     // level 2
		7 * time.Hour,       // level 3
		30 * 24 * time.Hour, // beyond the wheel: heap fallback
	}
	fired := map[time.Duration]time.Duration{}
	for _, d := range deadlines {
		d := d
		k.AfterFunc(d, func() { fired[d] = k.Elapsed() })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, d := range deadlines {
		at, ok := fired[d]
		if !ok {
			t.Fatalf("timer at %v never fired", d)
		}
		if at != d {
			t.Fatalf("timer at %v fired at %v", d, at)
		}
	}
}
