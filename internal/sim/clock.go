// Package sim provides a deterministic discrete-event simulation kernel.
//
// All protocol code in this repository is written against the Clock
// interface so that the same BGP and SDN implementations run either in
// virtual time (fast, reproducible sweeps; see Kernel) or in wall-clock
// time (live demos over real connections; see WallClock).
//
// The virtual-time kernel is single-threaded and cooperative: events run
// one at a time in timestamp order. This mirrors the cooperative
// multitasking design the paper adopts ("we can focus more on research
// questions than on state consistency and concurrency issues") and makes
// every experiment deterministic given a seed.
package sim

import (
	"sync/atomic"
	"time"
)

// Clock abstracts time for protocol code. Implementations: *Kernel
// (virtual time) and *WallClock (real time).
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time

	// AfterFunc schedules fn to run once, d from now, and returns a
	// Timer that can cancel or reschedule it. fn runs on the clock's
	// executor: for Kernel that is the event loop goroutine; for
	// WallClock it is a fresh goroutine (as with time.AfterFunc).
	AfterFunc(d time.Duration, fn func()) Timer

	// Go schedules fn to run as soon as possible (a zero-delay event).
	// It is the clock's analogue of the go statement.
	Go(fn func())
}

// Timer is a cancellable scheduled callback, analogous to *time.Timer
// created by time.AfterFunc.
type Timer interface {
	// Stop cancels the timer. It reports whether the call prevented the
	// callback from firing.
	Stop() bool

	// Reset reschedules the callback to fire d from now. It reports
	// whether the timer had been active.
	Reset(d time.Duration) bool

	// Active reports whether the callback is still pending.
	Active() bool
}

// WallClock implements Clock using the real time package. It is safe for
// concurrent use.
type WallClock struct{}

// Now returns time.Now().
//
//lint:walltime WallClock is the explicit real-time implementation; simulations use the virtual clock
func (WallClock) Now() time.Time { return time.Now() }

// AfterFunc wraps time.AfterFunc.
func (WallClock) AfterFunc(d time.Duration, fn func()) Timer {
	t := &wallTimer{d: d, fn: fn}
	t.t = time.AfterFunc(d, func() {
		t.fired.Store(true)
		fn()
	})
	return t
}

// Go runs fn on a new goroutine.
func (WallClock) Go(fn func()) { go fn() }

type wallTimer struct {
	t     *time.Timer
	d     time.Duration
	fn    func()
	fired atomic.Bool
}

func (w *wallTimer) Stop() bool { return w.t.Stop() }

func (w *wallTimer) Reset(d time.Duration) bool {
	w.fired.Store(false)
	return w.t.Reset(d)
}

func (w *wallTimer) Active() bool { return !w.fired.Load() }
