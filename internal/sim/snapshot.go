package sim

import (
	"math/rand"
	"sort"
	"time"
)

// This file is the kernel half of converged-state checkpointing: it
// exposes exactly the execution state a snapshot must capture (virtual
// clock, scheduling sequence, event count, RNG position) and the
// restore protocol that rebuilds it. Pending timer callbacks are NOT
// serialized here — function values cannot be; instead each component
// records its own timers' (deadline, seq) pairs via TimerState and
// re-arms equivalent callbacks on restore, and the kernel then adopts
// the captured counters so the replayed schedule is byte-identical.

// CountingSource is a deterministic rand.Source64 that counts the
// generator steps it has served. Both Int63 and Uint64 of the stdlib
// source consume exactly one step of the underlying additive
// generator (Int63 is the masked Uint64), so a *rand.Rand over a
// CountingSource emits the byte-identical stream of one over a plain
// rand.NewSource while every consumed value is counted. That makes
// (seed, draws) a complete, replayable serialization of the stream
// position: restore re-seeds and discards the first `draws` steps.
type CountingSource struct {
	src rand.Source64
	n   uint64
}

// NewCountingSource returns a counting source seeded with seed.
func NewCountingSource(seed int64) *CountingSource {
	// rand.NewSource's concrete source implements Source64.
	return &CountingSource{src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 returns the next value from the underlying source, counting
// one generator step.
func (c *CountingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

// Uint64 returns the next raw 64-bit value from the underlying
// source, counting one generator step.
func (c *CountingSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

// Seed re-seeds the underlying source and resets the draw count.
func (c *CountingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n = 0
}

// Draws returns how many generator steps have been served since the
// last seed.
func (c *CountingSource) Draws() uint64 { return c.n }

// FastForward advances the stream until exactly draws generator steps
// have been served since the last seed. It panics if the stream is
// already past that point — a snapshot/restore protocol error.
func (c *CountingSource) FastForward(draws uint64) {
	if c.n > draws {
		panic("sim: CountingSource.FastForward target already passed")
	}
	for c.n < draws {
		c.n++
		c.src.Int63()
	}
}

// TimeNone is the serialized form of the zero time.Time in snapshot
// timestamp fields (which otherwise hold nanoseconds since Epoch).
const TimeNone = int64(-1) << 62

// TimeToNS serializes a timestamp as nanoseconds since Epoch,
// preserving the zero value as TimeNone.
func TimeToNS(t time.Time) int64 {
	if t.IsZero() {
		return TimeNone
	}
	return t.Sub(Epoch).Nanoseconds()
}

// TimeFromNS is the inverse of TimeToNS.
func TimeFromNS(ns int64) time.Time {
	if ns == TimeNone {
		return time.Time{}
	}
	return Epoch.Add(time.Duration(ns))
}

// KernelState is the serializable execution state of a Kernel: the
// virtual clock, the scheduling-sequence and executed-event counters,
// and the RNG position as (seed, draws). The pending event queue is
// not part of it — timers are re-armed by their owning components.
type KernelState struct {
	// NowNS is the virtual clock as nanoseconds since Epoch.
	NowNS int64 `json:"now_ns"`
	// Seq is the last scheduling sequence number assigned.
	Seq uint64 `json:"seq"`
	// Events is the number of events executed so far (restoring it
	// preserves the wall-budget check phase, which is the only thing
	// it feeds).
	Events uint64 `json:"events"`
	// Seed is the seed the kernel RNG stream was created with.
	Seed int64 `json:"seed"`
	// Draws is the number of Int63 draws the kernel RNG has consumed.
	Draws uint64 `json:"draws"`
}

// State captures the kernel's execution state for a snapshot.
func (k *Kernel) State() KernelState {
	return KernelState{
		NowNS:  k.now.Sub(Epoch).Nanoseconds(),
		Seq:    k.seq,
		Events: k.events,
		Seed:   k.seed,
		Draws:  k.src.Draws(),
	}
}

// Seed returns the seed the kernel was created with.
func (k *Kernel) Seed() int64 { return k.seed }

// BeginRestore starts restoring st onto a freshly built kernel: it
// sets the virtual clock and replays the RNG stream to the captured
// position (re-deriving it from seed rather than deserializing
// generator internals). Components then re-arm their timers with
// AfterFunc — deadlines are computed against the restored clock — and
// the caller finishes with FinishRestore. When the restored run should
// consume a DIFFERENT seed (a fork), pass it as seed; the stream is
// re-derived from the new seed at the same position, so fork runs
// diverge exactly where randomness enters and nowhere else.
func (k *Kernel) BeginRestore(st KernelState, seed int64) {
	k.now = Epoch.Add(time.Duration(st.NowNS))
	k.seed = seed
	k.src.Seed(seed)
	k.src.FastForward(st.Draws)
}

// FinishRestore adopts the captured scheduling counters after every
// timer has been re-armed. Events re-armed during restore received
// fresh low sequence numbers in arm order (which the experiment layer
// sorts by original (deadline, seq), preserving same-instant firing
// order); adopting the captured Seq guarantees every event scheduled
// after the restore point sorts behind them, exactly as in the
// original run.
func (k *Kernel) FinishRestore(st KernelState) {
	if st.Seq > k.seq {
		k.seq = st.Seq
	}
	k.events = st.Events
}

// TimerState reports the pending deadline and scheduling sequence of
// a virtual-time timer, for snapshotting. ok is false for an inactive
// (fired, stopped or nil) timer or a non-kernel timer — such timers
// are simply absent from the snapshot.
func TimerState(t Timer) (at time.Time, seq uint64, ok bool) {
	st, isSim := t.(*simTimer)
	if !isSim || st == nil || !st.Active() {
		return time.Time{}, 0, false
	}
	return st.ev.at, st.ev.seq, true
}

// TimerRef is the serialized identity of one pending timer: its
// absolute deadline as nanoseconds since Epoch, and the scheduling
// sequence it held in the original kernel (which orders same-instant
// events).
type TimerRef struct {
	AtNS int64  `json:"at_ns"`
	Seq  uint64 `json:"seq"`
}

// RefOf captures a TimerRef for an active virtual-time timer, or nil
// for an inactive one.
func RefOf(t Timer) *TimerRef {
	at, seq, ok := TimerState(t)
	if !ok {
		return nil
	}
	return &TimerRef{AtNS: at.Sub(Epoch).Nanoseconds(), Seq: seq}
}

// Deadline returns the timer's absolute deadline.
func (r *TimerRef) Deadline() time.Time { return Epoch.Add(time.Duration(r.AtNS)) }

// TimerArm is one deferred timer re-arm collected during a restore:
// the original (deadline, sequence) pair for ordering, and the Arm
// callback that actually schedules the replacement timer. Components
// contribute arms instead of scheduling directly so the restore can
// execute ALL arms globally sorted by (deadline, original sequence) —
// preserving the relative firing order of same-instant events across
// components — before the kernel adopts the captured sequence counter.
type TimerArm struct {
	At  time.Time
	Seq uint64
	Arm func()
}

// ArmAll sorts the collected arms by (deadline, original sequence)
// and executes them in that order.
func ArmAll(arms []TimerArm) {
	sort.Slice(arms, func(i, j int) bool {
		if !arms[i].At.Equal(arms[j].At) {
			return arms[i].At.Before(arms[j].At)
		}
		return arms[i].Seq < arms[j].Seq
	})
	for _, a := range arms {
		a.Arm()
	}
}
