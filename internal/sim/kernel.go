package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Epoch is the instant at which every Kernel starts. A fixed epoch keeps
// runs reproducible and log timestamps comparable across experiments.
var Epoch = time.Date(2014, 8, 18, 0, 0, 0, 0, time.UTC)

// Kernel is a deterministic discrete-event scheduler implementing Clock.
//
// Events execute strictly in (time, sequence) order on the goroutine that
// calls Run, Step or RunUntil. Two events scheduled for the same instant
// run in the order they were scheduled. The zero Kernel is not usable;
// call NewKernel.
type Kernel struct {
	now    time.Time
	seq    uint64
	queue  eventHeap
	rng    *rand.Rand
	src    *CountingSource
	seed   int64
	events uint64 // total events executed

	// MaxEvents aborts Run with ErrEventBudget once this many events
	// have executed, guarding against livelock (e.g. mutually
	// re-scheduling timers). Zero means no limit.
	MaxEvents uint64

	// WallLimit aborts the Run family with ErrWallBudget once that much
	// real (wall-clock) time has been spent stepping events, guarding a
	// runaway cell against hanging its worker when the virtual clock
	// stops advancing. Zero means no limit. The guard is checked every
	// wallCheckEvery events, so it never perturbs a run that finishes
	// within its budget — virtual-time results stay deterministic.
	WallLimit time.Duration
	wallStart time.Time
}

// ErrEventBudget is returned by the Run family when MaxEvents is hit.
var ErrEventBudget = fmt.Errorf("sim: event budget exhausted")

// ErrWallBudget is returned by the Run family when WallLimit is
// exceeded.
var ErrWallBudget = fmt.Errorf("sim: wall-clock budget exhausted")

// wallCheckEvery is how many events pass between wall-clock checks.
const wallCheckEvery = 4096

// overBudget reports whether either execution budget is exhausted. It
// is consulted by the Run family after every event.
func (k *Kernel) overBudget() error {
	if k.MaxEvents > 0 && k.events >= k.MaxEvents {
		return ErrEventBudget
	}
	if k.WallLimit > 0 && k.events%wallCheckEvery == 0 {
		if k.wallStart.IsZero() {
			//lint:walltime the wall budget measures real runtime by design; it aborts a run, never shapes its results
			k.wallStart = time.Now()
			//lint:walltime the wall budget measures real runtime by design; it aborts a run, never shapes its results
		} else if time.Since(k.wallStart) > k.WallLimit {
			return ErrWallBudget
		}
	}
	return nil
}

// NewKernel returns a Kernel whose clock reads Epoch and whose random
// source is seeded with seed. The source is draw-counted (see
// CountingSource) so a snapshot can record exactly how far the stream
// has advanced and a restore can replay it to the same point.
func NewKernel(seed int64) *Kernel {
	src := NewCountingSource(seed)
	return &Kernel{
		now:  Epoch,
		rng:  rand.New(src),
		src:  src,
		seed: seed,
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Time { return k.now }

// Rand returns the kernel's deterministic random source. All randomness
// in an experiment (jitter, loss, tie-breaks) must come from here so a
// seed fully determines a run.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Elapsed returns how much virtual time has passed since Epoch.
func (k *Kernel) Elapsed() time.Duration { return k.now.Sub(Epoch) }

// Events returns the number of events executed so far.
func (k *Kernel) Events() uint64 { return k.events }

// Pending returns the number of scheduled, not-yet-fired events.
func (k *Kernel) Pending() int { return k.queue.Len() }

// Go schedules fn as a zero-delay event.
func (k *Kernel) Go(fn func()) { k.AfterFunc(0, fn) }

// AfterFunc schedules fn to run d from now. Negative d is treated as 0.
func (k *Kernel) AfterFunc(d time.Duration, fn func()) Timer {
	if fn == nil {
		panic("sim: AfterFunc with nil function")
	}
	if d < 0 {
		d = 0
	}
	ev := &event{at: k.now.Add(d), kernel: k}
	ev.fn = func() { ev.fired = true; fn() }
	k.push(ev)
	return &simTimer{k: k, ev: ev, fn: fn}
}

func (k *Kernel) push(ev *event) {
	k.seq++
	ev.seq = k.seq
	heap.Push(&k.queue, ev)
}

// Step executes the single earliest pending event, advancing the clock
// to its timestamp. It reports whether an event was executed.
func (k *Kernel) Step() bool {
	for k.queue.Len() > 0 {
		ev := heap.Pop(&k.queue).(*event)
		if ev.cancelled {
			continue
		}
		if ev.at.After(k.now) {
			k.now = ev.at
		}
		k.events++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty (the simulation is
// quiescent) or an execution budget is exhausted.
func (k *Kernel) Run() error {
	for k.Step() {
		if err := k.overBudget(); err != nil {
			return err
		}
	}
	return nil
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t. Events scheduled beyond t remain pending.
func (k *Kernel) RunUntil(t time.Time) error {
	for {
		ev := k.peek()
		if ev == nil || ev.at.After(t) {
			break
		}
		k.Step()
		if err := k.overBudget(); err != nil {
			return err
		}
	}
	if t.After(k.now) {
		k.now = t
	}
	return nil
}

// RunFor executes events for the next d of virtual time.
func (k *Kernel) RunFor(d time.Duration) error { return k.RunUntil(k.now.Add(d)) }

// RunWhile executes events as long as cond returns true and events
// remain. It evaluates cond after every event.
func (k *Kernel) RunWhile(cond func() bool) error {
	for cond() {
		if !k.Step() {
			return nil
		}
		if err := k.overBudget(); err != nil {
			return err
		}
	}
	return nil
}

func (k *Kernel) peek() *event {
	for k.queue.Len() > 0 {
		ev := k.queue[0]
		if !ev.cancelled {
			return ev
		}
		heap.Pop(&k.queue)
	}
	return nil
}

// event is a scheduled callback. index is the event's position in the
// kernel's heap (-1 once popped), which lets timers reschedule an
// event in place instead of allocating a replacement per Reset.
type event struct {
	at        time.Time
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
	kernel    *Kernel
	index     int
}

// simTimer implements Timer over a kernel event.
type simTimer struct {
	k  *Kernel
	ev *event
	fn func()
}

func (t *simTimer) Stop() bool {
	if t.ev == nil || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Reset reschedules the timer, reusing its event: if the event is
// still in the heap (pending or lazily cancelled) it is re-keyed in
// place with heap.Fix; if it already fired or was popped, the same
// struct is reset and pushed again. Either way the MRAI-churn path
// allocates nothing.
func (t *simTimer) Reset(d time.Duration) bool {
	ev := t.ev
	was := ev != nil && !ev.cancelled && !ev.fired
	if d < 0 {
		d = 0
	}
	ev.cancelled = false
	ev.fired = false
	ev.at = t.k.now.Add(d)
	if ev.index >= 0 {
		t.k.seq++
		ev.seq = t.k.seq
		heap.Fix(&t.k.queue, ev.index)
	} else {
		t.k.push(ev)
	}
	return was
}

func (t *simTimer) Active() bool {
	return t.ev != nil && !t.ev.cancelled && !t.ev.fired
}

// eventHeap orders events by (time, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
