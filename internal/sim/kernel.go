package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Epoch is the instant at which every Kernel starts. A fixed epoch keeps
// runs reproducible and log timestamps comparable across experiments.
var Epoch = time.Date(2014, 8, 18, 0, 0, 0, 0, time.UTC)

// Kernel is a deterministic discrete-event scheduler implementing Clock.
//
// Events execute strictly in (time, sequence) order on the goroutine that
// calls Run, Step or RunUntil. Two events scheduled for the same instant
// run in the order they were scheduled. The zero Kernel is not usable;
// call NewKernel.
//
// Internally the kernel keeps three structures, none of which changes
// the executed (time, seq) order: a binary heap for short-range events,
// a hierarchical timer wheel (wheel.go) that stages long-delay timers
// in O(1) until their slot is released into the heap, and a drain batch
// that pops all events sharing the earliest timestamp in one pass so
// same-instant bursts (a router fanning UPDATEs to its peers) cost one
// heap sift each instead of a full pop/push cycle. Both optimizations
// are pinned byte-identical against the serial heap-only mode by the
// equivalence tests in wheel_test.go and the hot-path suite.
type Kernel struct {
	now   time.Time
	seq   uint64
	queue eventHeap
	wheel timerWheel

	// batch holds the run of same-timestamp events most recently popped
	// from the heap; batchPos is the next entry to execute. Entries
	// whose event was stopped or rescheduled by an earlier event in the
	// batch are detected by sequence mismatch and skipped.
	batch    []batchEntry
	batchPos int

	rng    *rand.Rand
	src    *CountingSource
	seed   int64
	events uint64 // total events executed

	// SerialDrain disables same-timestamp batch draining: every event
	// is popped from the heap individually. This is the reference mode
	// the batch-equivalence tests compare against; results are
	// byte-identical either way.
	SerialDrain bool

	// NoWheel files every timer in the heap, bypassing the timer wheel.
	// This is the reference mode for the wheel property tests; results
	// are byte-identical either way.
	NoWheel bool

	// MaxEvents aborts Run with ErrEventBudget once this many events
	// have executed, guarding against livelock (e.g. mutually
	// re-scheduling timers). Zero means no limit.
	MaxEvents uint64

	// WallLimit aborts the Run family with ErrWallBudget once that much
	// real (wall-clock) time has been spent stepping events, guarding a
	// runaway cell against hanging its worker when the virtual clock
	// stops advancing. Zero means no limit. The guard is checked every
	// wallCheckEvery events, so it never perturbs a run that finishes
	// within its budget — virtual-time results stay deterministic.
	WallLimit time.Duration
	wallStart time.Time
}

// ErrEventBudget is returned by the Run family when MaxEvents is hit.
var ErrEventBudget = fmt.Errorf("sim: event budget exhausted")

// ErrWallBudget is returned by the Run family when WallLimit is
// exceeded.
var ErrWallBudget = fmt.Errorf("sim: wall-clock budget exhausted")

// wallCheckEvery is how many events pass between wall-clock checks.
const wallCheckEvery = 4096

// overBudget reports whether either execution budget is exhausted. It
// is consulted by the Run family after every event.
func (k *Kernel) overBudget() error {
	if k.MaxEvents > 0 && k.events >= k.MaxEvents {
		return ErrEventBudget
	}
	if k.WallLimit > 0 && k.events%wallCheckEvery == 0 {
		if k.wallStart.IsZero() {
			//lint:walltime the wall budget measures real runtime by design; it aborts a run, never shapes its results
			k.wallStart = time.Now()
			//lint:walltime the wall budget measures real runtime by design; it aborts a run, never shapes its results
		} else if time.Since(k.wallStart) > k.WallLimit {
			return ErrWallBudget
		}
	}
	return nil
}

// NewKernel returns a Kernel whose clock reads Epoch and whose random
// source is seeded with seed. The source is draw-counted (see
// CountingSource) so a snapshot can record exactly how far the stream
// has advanced and a restore can replay it to the same point.
func NewKernel(seed int64) *Kernel {
	src := NewCountingSource(seed)
	return &Kernel{
		now:  Epoch,
		rng:  rand.New(src),
		src:  src,
		seed: seed,
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Time { return k.now }

// Rand returns the kernel's deterministic random source. All randomness
// in an experiment (jitter, loss, tie-breaks) must come from here so a
// seed fully determines a run.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Elapsed returns how much virtual time has passed since Epoch.
func (k *Kernel) Elapsed() time.Duration { return k.now.Sub(Epoch) }

// Events returns the number of events executed so far.
func (k *Kernel) Events() uint64 { return k.events }

// Pending returns the number of scheduled, not-yet-fired events across
// the heap, the timer wheel and the current drain batch. Like the
// heap's lazy cancellation, events stopped but not yet discarded are
// still counted.
func (k *Kernel) Pending() int {
	return k.queue.Len() + k.wheel.count + (len(k.batch) - k.batchPos)
}

// Go schedules fn as a zero-delay event.
func (k *Kernel) Go(fn func()) { k.AfterFunc(0, fn) }

// AfterFunc schedules fn to run d from now. Negative d is treated as 0.
func (k *Kernel) AfterFunc(d time.Duration, fn func()) Timer {
	if fn == nil {
		panic("sim: AfterFunc with nil function")
	}
	if d < 0 {
		d = 0
	}
	ev := &event{at: k.now.Add(d), kernel: k, index: -1}
	ev.fn = func() { ev.fired = true; fn() }
	k.schedule(ev, d)
	return &simTimer{k: k, ev: ev, fn: fn}
}

// schedule assigns the next scheduling sequence number and files the
// event: long delays go through the timer wheel, near ones into the
// heap. The sequence counter advances identically on both paths, so
// the executed (time, seq) trace does not depend on which structure
// held the event.
func (k *Kernel) schedule(ev *event, d time.Duration) {
	k.seq++
	ev.seq = k.seq
	if !k.NoWheel && d >= wheelMinDelay && k.wheel.insert(ev) {
		ev.index = -1
		return
	}
	if ev.walive {
		// A previous revision of this event still sits in the wheel;
		// that entry is now stale and pre-deducted from the count.
		k.wheel.count--
		ev.walive = false
	}
	heap.Push(&k.queue, ev)
}

// batchEntry pins one event revision in the drain batch.
type batchEntry struct {
	ev  *event
	seq uint64
}

// nextEvent returns the earliest live pending event, consuming it from
// the drain batch (refilled from the heap and wheel as it empties), or
// nil when the kernel is quiescent.
func (k *Kernel) nextEvent() *event {
	for {
		for k.batchPos < len(k.batch) {
			e := k.batch[k.batchPos]
			k.batch[k.batchPos] = batchEntry{}
			k.batchPos++
			if e.ev.cancelled || e.ev.seq != e.seq {
				// Stopped or rescheduled by an earlier event in the
				// batch.
				continue
			}
			return e.ev
		}
		if len(k.batch) > 0 {
			k.batch = k.batch[:0]
			k.batchPos = 0
		}
		if !k.refill() {
			return nil
		}
	}
}

// refill pops the run of events sharing the earliest pending timestamp
// from the heap into the drain batch (a single event in SerialDrain
// mode). It reports whether anything is pending.
func (k *Kernel) refill() bool {
	ev := k.peekQueue()
	if ev == nil {
		return false
	}
	heap.Pop(&k.queue)
	k.batch = append(k.batch, batchEntry{ev, ev.seq})
	if k.SerialDrain {
		return true
	}
	at := ev.at
	for k.queue.Len() > 0 {
		top := k.queue[0]
		if top.cancelled {
			heap.Pop(&k.queue)
			continue
		}
		if !top.at.Equal(at) {
			break
		}
		heap.Pop(&k.queue)
		k.batch = append(k.batch, batchEntry{top, top.seq})
	}
	return true
}

// peekNext returns the earliest live pending event without consuming
// it, or nil when the kernel is quiescent.
func (k *Kernel) peekNext() *event {
	for k.batchPos < len(k.batch) {
		e := k.batch[k.batchPos]
		if !e.ev.cancelled && e.ev.seq == e.seq {
			return e.ev
		}
		k.batch[k.batchPos] = batchEntry{}
		k.batchPos++
	}
	return k.peekQueue()
}

// peekQueue returns the earliest live event in the heap without
// popping it, first syncing the timer wheel: any wheel slot that could
// hold an entry due at or before the heap head is released into the
// heap, so the returned event is globally earliest by (time, seq).
func (k *Kernel) peekQueue() *event {
	for {
		var top *event
		for k.queue.Len() > 0 {
			if k.queue[0].cancelled {
				heap.Pop(&k.queue)
				continue
			}
			top = k.queue[0]
			break
		}
		if k.wheel.count == 0 {
			return top
		}
		if top != nil {
			if k.wheelRelease(tickOf(top.at)) == 0 {
				return top
			}
			continue // the release may have surfaced an earlier event
		}
		start, ok := k.wheel.next()
		if !ok {
			return nil
		}
		k.wheelRelease(start)
	}
}

// Step executes the single earliest pending event, advancing the clock
// to its timestamp. It reports whether an event was executed.
func (k *Kernel) Step() bool {
	ev := k.nextEvent()
	if ev == nil {
		return false
	}
	if ev.at.After(k.now) {
		k.now = ev.at
	}
	k.events++
	ev.fn()
	return true
}

// Run executes events until the queue is empty (the simulation is
// quiescent) or an execution budget is exhausted.
func (k *Kernel) Run() error {
	for k.Step() {
		if err := k.overBudget(); err != nil {
			return err
		}
	}
	return nil
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t. Events scheduled beyond t remain pending.
func (k *Kernel) RunUntil(t time.Time) error {
	for {
		ev := k.peekNext()
		if ev == nil || ev.at.After(t) {
			break
		}
		k.Step()
		if err := k.overBudget(); err != nil {
			return err
		}
	}
	if t.After(k.now) {
		k.now = t
	}
	return nil
}

// RunFor executes events for the next d of virtual time.
func (k *Kernel) RunFor(d time.Duration) error { return k.RunUntil(k.now.Add(d)) }

// RunWhile executes events as long as cond returns true and events
// remain. It evaluates cond after every event.
func (k *Kernel) RunWhile(cond func() bool) error {
	for cond() {
		if !k.Step() {
			return nil
		}
		if err := k.overBudget(); err != nil {
			return err
		}
	}
	return nil
}

// event is a scheduled callback. index is the event's position in the
// kernel's heap (-1 once popped or while wheel-resident), which lets
// timers reschedule an event in place instead of allocating a
// replacement per Reset. The w* fields locate the event's current
// revision in the timer wheel while walive is set, enabling the same
// in-place re-key for wheel-resident timers.
type event struct {
	at        time.Time
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
	kernel    *Kernel
	index     int

	walive bool
	wlevel uint8
	wslot  uint8
	windex int32
}

// simTimer implements Timer over a kernel event.
type simTimer struct {
	k  *Kernel
	ev *event
	fn func()
}

func (t *simTimer) Stop() bool {
	if t.ev == nil || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Reset reschedules the timer, reusing its event: if the event is
// still in the heap (pending or lazily cancelled) it is re-keyed in
// place with heap.Fix; if it is wheel-resident and stays in the same
// slot it is re-keyed there; otherwise the same struct is reset and
// filed again. Either way the MRAI-churn path allocates nothing, and
// the sequence counter advances exactly once per Reset on every path.
func (t *simTimer) Reset(d time.Duration) bool {
	ev := t.ev
	was := ev != nil && !ev.cancelled && !ev.fired
	if d < 0 {
		d = 0
	}
	ev.cancelled = false
	ev.fired = false
	ev.at = t.k.now.Add(d)
	if ev.index >= 0 {
		t.k.seq++
		ev.seq = t.k.seq
		heap.Fix(&t.k.queue, ev.index)
	} else {
		t.k.schedule(ev, d)
	}
	return was
}

func (t *simTimer) Active() bool {
	return t.ev != nil && !t.ev.cancelled && !t.ev.fired
}

// eventHeap orders events by (time, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
