package labd

import (
	"fmt"
	"time"

	"repro/internal/figures"
	"repro/internal/lab"
)

// The preset bridge: the figures registry exposed as named presets
// over the API. A preset submission resolves exactly like the
// `convergence` CLI resolves its flags — same option set-detection,
// same Build call, same post-build overlays — so `labctl submit -exp
// fig2 -mrai 5s` and `convergence -exp fig2 -mrai 5s` produce the
// identical canonical spec, hence the identical content address,
// manifest and outputs.

// PresetOptions are the wire overrides for a preset submission. A
// field left at its zero value keeps the experiment default, exactly
// like an unset CLI flag; strings parse through the same lab parsers
// the CLI uses.
type PresetOptions struct {
	// Topology overrides the topology spec, e.g. "clique 16".
	Topology string `json:"topology,omitempty"`
	// Placement overrides the SDN placement, e.g. "degree".
	Placement string `json:"placement,omitempty"`
	// Policy overrides the routing-policy template.
	Policy string `json:"policy,omitempty"`
	// SDNCounts overrides the sdn-count axis values.
	SDNCounts []int `json:"sdn_counts,omitempty"`
	// Workload replaces the trigger with a schedule (the -workload
	// DSL, e.g. "at 0s withdraw; at 10m announce").
	Workload string `json:"workload,omitempty"`
	// Runs overrides the per-point repetition count.
	Runs int `json:"runs,omitempty"`
	// Seed is the base seed (the CLI default is 1; zero here means 0,
	// so clients should send their seed explicitly — labctl always
	// does).
	Seed int64 `json:"seed,omitempty"`
	// MRAI overrides the BGP MinRouteAdvertisementInterval, as a
	// duration string ("5s"); empty keeps the default.
	MRAI string `json:"mrai,omitempty"`
	// Debounce overrides the controller recomputation delay, as a
	// duration string; "0" disables the delay (the CLI convention).
	Debounce string `json:"debounce,omitempty"`
	// Loss sets the per-message link-loss probability overlay.
	Loss float64 `json:"loss,omitempty"`
	// Delay sets the one-way link-delay overlay, as a duration string.
	Delay string `json:"delay,omitempty"`
	// Jitter sets the probe-jitter overlay, as a duration string.
	Jitter string `json:"jitter,omitempty"`
}

// Preset is the wire listing of one registry entry.
type Preset struct {
	// Name is the registry key (the -exp value).
	Name string `json:"name"`
	// Title is the one-line description.
	Title string `json:"title"`
	// Desc is the documentation paragraph.
	Desc string `json:"desc"`
}

// Presets lists the experiment registry.
func Presets() []Preset {
	reg := figures.Registry()
	out := make([]Preset, len(reg))
	for i, s := range reg {
		out[i] = Preset{Name: s.Name, Title: s.Title, Desc: s.Desc}
	}
	return out
}

// BuildPreset resolves a named preset and its overrides into the
// sweep's canonical spec bytes, mirroring the CLI's flag handling
// byte for byte.
func BuildPreset(name string, opt PresetOptions) ([]byte, error) {
	spec, ok := figures.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("labd: unknown preset %q (have %v)", name, figures.Names())
	}
	o := figures.Options{
		BaseSeed:  opt.Seed,
		Runs:      opt.Runs,
		SDNCounts: opt.SDNCounts,
	}
	if opt.Topology != "" {
		t, err := lab.ParseTopoString(opt.Topology)
		if err != nil {
			return nil, err
		}
		o.Topo = &t
	}
	if opt.Placement != "" {
		p, err := lab.ParsePlacementString(opt.Placement)
		if err != nil {
			return nil, err
		}
		o.Placement = &p
	}
	if opt.Policy != "" {
		p, err := lab.ParsePolicy(opt.Policy)
		if err != nil {
			return nil, err
		}
		o.Policy = p
	}
	if opt.Workload != "" {
		w, err := lab.ParseWorkload(opt.Workload)
		if err != nil {
			return nil, err
		}
		o.Workload = w
	}
	if opt.MRAI != "" {
		d, err := time.ParseDuration(opt.MRAI)
		if err != nil {
			return nil, fmt.Errorf("labd: bad mrai %q: %w", opt.MRAI, err)
		}
		o.MRAI = d
	}
	if opt.Debounce != "" {
		d, err := time.ParseDuration(opt.Debounce)
		if err != nil {
			return nil, fmt.Errorf("labd: bad debounce %q: %w", opt.Debounce, err)
		}
		if d == 0 {
			// The CLI convention: an explicit zero window disables the
			// delay entirely (the config reserves 0 for "default").
			d = -1
		}
		o.Debounce = &d
	}
	sweep, err := spec.Build(o)
	if err != nil {
		return nil, err
	}
	// The chaos overlays mutate the built sweep, exactly like the CLI.
	if opt.Loss != 0 {
		if sweep.Axis.Kind == lab.AxisLoss {
			return nil, fmt.Errorf("labd: loss does not apply to %s: the experiment sweeps the loss rate itself", name)
		}
		sweep.Base.LinkLoss = opt.Loss
	}
	if opt.Delay != "" {
		d, err := time.ParseDuration(opt.Delay)
		if err != nil {
			return nil, fmt.Errorf("labd: bad delay %q: %w", opt.Delay, err)
		}
		sweep.Base.LinkDelay = d
	}
	if opt.Jitter != "" {
		d, err := time.ParseDuration(opt.Jitter)
		if err != nil {
			return nil, fmt.Errorf("labd: bad jitter %q: %w", opt.Jitter, err)
		}
		sweep.Base.LinkJitter = d
	}
	return sweep.Canonical()
}
