package labd

import "sync"

// scheduler is the multi-tenant fair queue: one FIFO per client,
// served round-robin across clients, so a client submitting a burst
// of N jobs cannot starve a client submitting one — under contention
// completions interleave across clients. Jobs within one client run
// in submission order.
type scheduler struct {
	mu     sync.Mutex
	queues map[string][]*Job
	order  []string // round-robin ring of client names, first-seen order
	next   int      // ring cursor: the client served next
	notify chan struct{}
}

// newScheduler builds an empty scheduler.
func newScheduler() *scheduler {
	return &scheduler{
		queues: map[string][]*Job{},
		notify: make(chan struct{}, 1),
	}
}

// enqueue appends a job to the client's queue and wakes one waiting
// worker.
func (s *scheduler) enqueue(client string, j *Job) {
	s.mu.Lock()
	if _, ok := s.queues[client]; !ok {
		s.order = append(s.order, client)
	}
	s.queues[client] = append(s.queues[client], j)
	s.mu.Unlock()
	s.kick()
}

// kick signals the (buffered) wakeup channel without blocking.
func (s *scheduler) kick() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// dequeue blocks until a job is available (returning it) or stop
// closes (returning false). Fairness: the ring cursor advances past
// each served client, so every client with pending work is served
// once per round.
func (s *scheduler) dequeue(stop <-chan struct{}) (*Job, bool) {
	for {
		if j, more, ok := s.tryDequeue(); ok {
			if more {
				// Work remains: re-arm the wakeup so sibling workers
				// that missed the (coalescing) notify still drain it.
				s.kick()
			}
			return j, true
		}
		select {
		case <-s.notify:
		case <-stop:
			return nil, false
		}
	}
}

// tryDequeue pops the next job round-robin. It reports the job,
// whether more jobs remain queued, and whether a job was found.
func (s *scheduler) tryDequeue() (*Job, bool, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.order)
	for k := 0; k < n; k++ {
		c := s.order[(s.next+k)%n]
		q := s.queues[c]
		if len(q) == 0 {
			continue
		}
		j := q[0]
		s.queues[c] = q[1:]
		s.next = (s.next + k + 1) % n
		more := false
		for _, oc := range s.order {
			if len(s.queues[oc]) > 0 {
				more = true
				break
			}
		}
		return j, more, true
	}
	return nil, false, false
}
