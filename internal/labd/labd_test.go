package labd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/bgp"
	"repro/internal/lab"
)

// testLabSweep is the tiny-but-real sweep the daemon tests run: a
// 4-AS clique withdrawal over two cluster sizes, one run per cell.
func testLabSweep() lab.Sweep {
	timers := bgp.DefaultTimers()
	timers.MRAI = 5 * time.Second
	return lab.Sweep{
		Name: "fig2",
		Base: lab.Trial{
			Topo:            lab.TopoSpec{Kind: "clique", N: 4},
			Event:           lab.Withdrawal,
			Timers:          timers,
			Debounce:        100 * time.Millisecond,
			ProcessingDelay: 25 * time.Millisecond,
		},
		Axis:       lab.SDNCounts(0, 2),
		Runs:       1,
		BaseSeed:   7,
		SeedPolicy: lab.SeedCellRun,
	}
}

// newTestServer builds an unstarted server over a fresh store.
// Submissions queue deterministically until Start.
func newTestServer(t *testing.T) (*Server, string) {
	t.Helper()
	dir := t.TempDir()
	store, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store, Workers: 1, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	return srv, dir
}

// postJSON posts a SubmitRequest and decodes the response envelope.
func postJSON(t *testing.T, url string, req SubmitRequest) (SubmitResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out SubmitResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

// waitDone subscribes to the job and blocks until it is terminal.
func waitDone(t *testing.T, srv *Server, id string) string {
	t.Helper()
	j, err := srv.Job(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Subscribe(nil, 0, func(Event) error { return nil }); err != nil {
		t.Fatal(err)
	}
	return j.State()
}

// TestSubmitCoalesceAndByteEquivalence is the tentpole pin: identical
// concurrent submissions coalesce into one execution; the daemon's
// sealed manifest and every encoder output are byte-identical to the
// same spec run through artifact.RunSweep (the `convergence -out`
// path); and a resubmission after completion performs zero emulation.
func TestSubmitCoalesceAndByteEquivalence(t *testing.T) {
	srv, dir := newTestServer(t)
	url, shutdown := serve(t, srv)
	defer shutdown()

	sw := testLabSweep()
	spec, err := sw.Canonical()
	if err != nil {
		t.Fatal(err)
	}

	// Two clients submit the identical spec before any worker runs:
	// the second must coalesce onto the first's job.
	r1, code := postJSON(t, url, SubmitRequest{Client: "alice", Name: "fig2", Spec: spec})
	if code != http.StatusCreated || r1.Coalesced {
		t.Fatalf("first submit: code %d coalesced %v", code, r1.Coalesced)
	}
	r2, code := postJSON(t, url, SubmitRequest{Client: "bob", Name: "ignored", Spec: spec})
	if code != http.StatusOK || !r2.Coalesced {
		t.Fatalf("second submit: code %d coalesced %v", code, r2.Coalesced)
	}
	if r1.Job.ID != r2.Job.ID {
		t.Fatalf("identical specs got distinct jobs %.12s, %.12s", r1.Job.ID, r2.Job.ID)
	}
	if got := r2.Job.Clients; len(got) != 2 || got[0] != "alice" || got[1] != "bob" {
		t.Fatalf("coalesced clients %v, want [alice bob]", got)
	}

	srv.Start()
	if st := waitDone(t, srv, r1.Job.ID); st != StateDone {
		t.Fatalf("job finished %s", st)
	}

	// Reference run: the same spec through the CLI's code path into a
	// second store.
	refDir := t.TempDir()
	refStore, err := artifact.Open(refDir)
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := artifact.RunSweep(refStore, sw)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SpecHash != r1.Job.ID {
		t.Fatalf("daemon job %.12s, CLI spec %.12s — not the same address", r1.Job.ID, stats.SpecHash)
	}

	// The sealed manifests are byte-identical.
	daemonManifest := httpGet(t, url+"/v1/jobs/"+r1.Job.ID[:12]+"/manifest")
	refManifest, err := os.ReadFile(filepath.Join(refDir, stats.SpecHash, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(daemonManifest, refManifest) {
		t.Fatalf("manifest bytes differ:\ndaemon: %s\ncli:    %s", daemonManifest, refManifest)
	}
	storeManifest, err := os.ReadFile(filepath.Join(dir, stats.SpecHash, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(storeManifest, refManifest) {
		t.Fatal("daemon store manifest differs from CLI store manifest")
	}

	// Every encoder output is byte-identical to lab.Write on the CLI
	// result.
	for _, f := range []lab.Format{lab.FormatTable, lab.FormatCSV, lab.FormatJSON, lab.FormatMarkdown} {
		var want bytes.Buffer
		if err := lab.Write(&want, f, res); err != nil {
			t.Fatal(err)
		}
		got := httpGet(t, url+"/v1/jobs/"+r1.Job.ID+"/result?format="+string(f))
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("%s output differs:\ndaemon:\n%s\ncli:\n%s", f, got, want.Bytes())
		}
	}

	// A third submission after completion coalesces onto the done job:
	// zero new emulation, stats unchanged.
	r3, code := postJSON(t, url, SubmitRequest{Client: "carol", Spec: spec})
	if code != http.StatusOK || !r3.Coalesced {
		t.Fatalf("post-completion submit: code %d coalesced %v", code, r3.Coalesced)
	}
	if r3.Job.State != StateDone {
		t.Fatalf("post-completion submit state %s", r3.Job.State)
	}
	if r3.Job.Stats == nil || r3.Job.Stats.Executed != 2 || r3.Job.Stats.Hits != 0 {
		t.Fatalf("post-completion stats %+v changed", r3.Job.Stats)
	}
}

// serve starts an httptest server over the daemon handler.
func serve(t *testing.T, srv *Server) (string, func()) {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	return ts.URL, func() {
		srv.Drain()
		ts.Close()
	}
}

// httpGet fetches a URL's body.
func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, buf.Bytes())
	}
	return buf.Bytes()
}

// sseEvents reads one SSE stream to completion, decoding every data
// payload.
func sseEvents(t *testing.T, url string) []Event {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}
	var out []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatal(err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSSEExactlyOnce pins the telemetry contract: every SSE
// subscriber — early or late — receives every per-run completion
// event exactly once, in log order, ending with the terminal state.
func TestSSEExactlyOnce(t *testing.T) {
	srv, _ := newTestServer(t)
	url, shutdown := serve(t, srv)
	defer shutdown()

	sw := testLabSweep()
	spec, err := sw.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	r, code := postJSON(t, url, SubmitRequest{Client: "alice", Name: "fig2", Spec: spec})
	if code != http.StatusCreated {
		t.Fatalf("submit: %d", code)
	}

	// Two subscribers attach while the job is still queued.
	type streamResult struct{ events []Event }
	streams := make(chan streamResult, 3)
	for i := 0; i < 2; i++ {
		go func() {
			streams <- streamResult{sseEvents(t, url+"/v1/jobs/"+r.Job.ID+"/events")}
		}()
	}
	// Give the early subscribers a beat to connect before work starts,
	// so the test exercises the live-follow path, not just replay.
	time.Sleep(50 * time.Millisecond)
	srv.Start()
	if st := waitDone(t, srv, r.Job.ID); st != StateDone {
		t.Fatalf("job finished %s", st)
	}
	// A late subscriber replays the completed log.
	go func() {
		streams <- streamResult{sseEvents(t, url+"/v1/jobs/"+r.Job.ID+"/events")}
	}()

	total := sw.Axis.Len() * sw.Runs
	for i := 0; i < 3; i++ {
		st := <-streams
		runs := map[[2]int]int{}
		last := 0
		for _, ev := range st.events {
			if ev.Seq != last+1 {
				t.Fatalf("subscriber %d: seq %d after %d (gap or duplicate)", i, ev.Seq, last)
			}
			last = ev.Seq
			if ev.Type == "run" {
				runs[[2]int{ev.Run.Cell, ev.Run.Run}]++
			}
		}
		if len(runs) != total {
			t.Fatalf("subscriber %d: saw %d distinct runs, want %d", i, len(runs), total)
		}
		for pos, n := range runs {
			if n != 1 {
				t.Fatalf("subscriber %d: run %v delivered %d times", i, pos, n)
			}
		}
		final := st.events[len(st.events)-1]
		if final.Type != "state" || final.State != StateDone {
			t.Fatalf("subscriber %d: stream ended on %s/%s", i, final.Type, final.State)
		}
	}
}

// TestSSEResumeFrom pins cursor resume: a subscriber reconnecting
// with from=<seq> sees exactly the suffix.
func TestSSEResumeFrom(t *testing.T) {
	srv, _ := newTestServer(t)
	url, shutdown := serve(t, srv)
	defer shutdown()
	spec, err := testLabSweep().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	r, _ := postJSON(t, url, SubmitRequest{Client: "alice", Spec: spec})
	srv.Start()
	waitDone(t, srv, r.Job.ID)
	all := sseEvents(t, url+"/v1/jobs/"+r.Job.ID+"/events")
	if len(all) < 3 {
		t.Fatalf("short event log: %d events", len(all))
	}
	tail := sseEvents(t, url+fmt.Sprintf("/v1/jobs/%s/events?from=%d", r.Job.ID, all[1].Seq))
	if len(tail) != len(all)-2 {
		t.Fatalf("resume from %d returned %d events, want %d", all[1].Seq, len(tail), len(all)-2)
	}
	if tail[0].Seq != all[2].Seq {
		t.Fatalf("resume started at seq %d, want %d", tail[0].Seq, all[2].Seq)
	}
}

// TestPresetSubmission pins the preset bridge: submitting a preset
// with options produces the same job identity as submitting the
// equivalent locally-built canonical spec — the registry over the API
// is the registry in the CLI.
func TestPresetSubmission(t *testing.T) {
	srv, _ := newTestServer(t)
	url, shutdown := serve(t, srv)
	defer shutdown()

	spec, err := BuildPreset("fig2", PresetOptions{
		Topology:  "clique 4",
		SDNCounts: []int{0, 2},
		Runs:      1,
		Seed:      1,
		MRAI:      "5s",
	})
	if err != nil {
		t.Fatal(err)
	}
	r1, code := postJSON(t, url, SubmitRequest{Client: "alice", Preset: "fig2", Options: &PresetOptions{
		Topology:  "clique 4",
		SDNCounts: []int{0, 2},
		Runs:      1,
		Seed:      1,
		MRAI:      "5s",
	}})
	if code != http.StatusCreated {
		t.Fatalf("preset submit: %d", code)
	}
	if r1.Job.Name != "fig2" {
		t.Fatalf("preset job name %q", r1.Job.Name)
	}
	r2, code := postJSON(t, url, SubmitRequest{Client: "bob", Spec: spec})
	if code != http.StatusOK || !r2.Coalesced {
		t.Fatalf("equivalent raw spec did not coalesce (code %d)", code)
	}
	if r1.Job.ID != r2.Job.ID {
		t.Fatal("preset and equivalent raw spec got distinct job identities")
	}
}

// TestSubmitRejectsBadSpecs pins the admission errors.
func TestSubmitRejectsBadSpecs(t *testing.T) {
	srv, _ := newTestServer(t)
	url, shutdown := serve(t, srv)
	defer shutdown()
	cases := map[string]SubmitRequest{
		"no payload":     {Client: "x"},
		"both payloads":  {Client: "x", Preset: "fig2", Spec: json.RawMessage(`{}`)},
		"junk spec":      {Client: "x", Spec: json.RawMessage(`{"version":99}`)},
		"unknown preset": {Client: "x", Preset: "fig999"},
	}
	for name, req := range cases {
		if _, code := postJSON(t, url, req); code != http.StatusBadRequest {
			t.Fatalf("%s: code %d, want 400", name, code)
		}
	}
}

// TestDrainInterruptsQueued pins shutdown bookkeeping: a job still
// queued at Drain is marked interrupted (with the store untouched),
// and a later daemon over the same store re-runs it on resubmission.
func TestDrainInterruptsQueued(t *testing.T) {
	srv, dir := newTestServer(t)
	spec, err := testLabSweep().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	j, coalesced, err := srv.Submit("alice", "fig2", spec)
	if err != nil || coalesced {
		t.Fatalf("submit: %v coalesced=%v", err, coalesced)
	}
	srv.Drain() // never started: the queued job is interrupted
	if st := j.State(); st != StateInterrupted {
		t.Fatalf("drained queued job is %s", st)
	}
	if _, _, err := srv.Submit("alice", "fig2", spec); err == nil {
		t.Fatal("draining server accepted a submission")
	}

	// A fresh daemon over the same store accepts the spec again and
	// completes it.
	store, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := New(Config{Store: store, Workers: 1, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	j2, _, err := srv2.Submit("alice", "fig2", spec)
	if err != nil {
		t.Fatal(err)
	}
	srv2.Start()
	defer srv2.Drain()
	if st := waitDone(t, srv2, j2.ID()); st != StateDone {
		t.Fatalf("resubmitted job finished %s", st)
	}
}

// TestResubmitAfterInterrupt pins in-process resume bookkeeping: an
// interrupted job returns to the queue when its spec is resubmitted.
func TestResubmitAfterInterrupt(t *testing.T) {
	srv, _ := newTestServer(t)
	spec, err := testLabSweep().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := srv.Submit("alice", "fig2", spec)
	if err != nil {
		t.Fatal(err)
	}
	j.interrupt(nil, "synthetic interruption")
	j2, coalesced, err := srv.Submit("bob", "fig2", spec)
	if err != nil {
		t.Fatal(err)
	}
	if coalesced || j2 != j {
		t.Fatalf("resubmission coalesced=%v job=%p want requeue of %p", coalesced, j2, j)
	}
	if st := j.State(); st != StateQueued {
		t.Fatalf("resubmitted job is %s, want queued", st)
	}
}
