package labd

import (
	"sort"
	"sync"

	"repro/internal/artifact"
	"repro/internal/lab"
)

// Job states. A job moves queued → running → done/failed/interrupted;
// a failed or interrupted job returns to queued when its spec is
// resubmitted (resuming from its stored records).
const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued = "queued"
	// StateRunning: executing on a worker.
	StateRunning = "running"
	// StateDone: completed; results and sealed manifest available.
	StateDone = "done"
	// StateFailed: aborted on an error (non-tolerant failure or
	// store trouble); resubmission retries.
	StateFailed = "failed"
	// StateInterrupted: gracefully drained mid-run; the completed
	// records are stored and resubmission resumes.
	StateInterrupted = "interrupted"
)

// terminal reports whether a state ends the event stream.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateInterrupted
}

// RunStats mirrors artifact.RunStats for the wire.
type RunStats struct {
	// Spec is the sweep's content address (the job ID).
	Spec string `json:"spec"`
	// Hits counts (cell, run) records served from the store.
	Hits int `json:"hits"`
	// Executed counts records emulated fresh.
	Executed int `json:"executed"`
	// Failed counts failures filed (tolerant sweeps only).
	Failed int `json:"failed"`
	// Total is the sweep's (cell, run) grid size.
	Total int `json:"total"`
}

// wireStats converts store stats to the wire mirror.
func wireStats(st artifact.RunStats) *RunStats {
	return &RunStats{Spec: st.SpecHash, Hits: st.Hits, Executed: st.Executed, Failed: st.Failed, Total: st.Total}
}

// RunEvent is one per-run completion: grid position, axis label,
// whether the store served it, and the full result record.
type RunEvent struct {
	// Cell and Run locate the record in the sweep grid.
	Cell int `json:"cell"`
	// Run is the seeded repetition index within the cell.
	Run int `json:"run"`
	// Label is the cell's axis label ("8", "30s", "gao-rexford").
	Label string `json:"label"`
	// Cached reports a store hit (no emulation ran).
	Cached bool `json:"cached"`
	// Result is the run's full metrics record, epochs included.
	Result lab.Result `json:"result"`
}

// Event is one entry of a job's append-only event log. Seq numbers
// events from 1 within the job; a subscriber that replays from its
// last seen Seq receives every event exactly once.
type Event struct {
	// Seq is the event's position in the job's log, from 1.
	Seq int `json:"seq"`
	// Type discriminates the payload: "state", "run" or "failure".
	Type string `json:"type"`
	// Job is the owning job's ID (spec hash).
	Job string `json:"job"`
	// State carries the new state for "state" events.
	State string `json:"state,omitempty"`
	// Error carries the failure text of a terminal "state" event.
	Error string `json:"error,omitempty"`
	// Run carries the per-run completion for "run" events.
	Run *RunEvent `json:"run,omitempty"`
	// Failure carries the filed cell failure for "failure" events.
	Failure *lab.CellFailure `json:"failure,omitempty"`
	// Stats carries the execution stats on a terminal "state" event.
	Stats *RunStats `json:"stats,omitempty"`
}

// JobStatus is the wire snapshot of one job.
type JobStatus struct {
	// ID is the spec hash — the job's content address.
	ID string `json:"id"`
	// Name labels the sweep in encoder output (presentation only).
	Name string `json:"name"`
	// State is the current job state.
	State string `json:"state"`
	// Clients lists the clients coalesced onto this job, sorted.
	Clients []string `json:"clients"`
	// Total is the sweep's (cell, run) grid size.
	Total int `json:"total"`
	// Completed counts per-run completions so far (hits + fresh).
	Completed int `json:"completed"`
	// FailedRuns counts cell failures filed so far.
	FailedRuns int `json:"failed_runs"`
	// Events is the current length of the job's event log.
	Events int `json:"events"`
	// Error is the terminal error text, when failed/interrupted.
	Error string `json:"error,omitempty"`
	// Stats reports the last execution's store traffic, when the job
	// has reached a terminal state.
	Stats *RunStats `json:"stats,omitempty"`
}

// Job is one accepted spec: its identity, its sweep, its subscriber
// event log, and its lifecycle state. All mutation goes through the
// mutex; the event log is append-only, so subscribers iterate it
// lock-free once they have snapshotted a slice.
type Job struct {
	hash  string
	name  string
	spec  []byte
	sweep lab.Sweep

	mu         sync.Mutex
	changed    chan struct{} // closed and replaced on every append
	state      string
	errText    string
	clients    []string
	events     []Event
	completed  int
	failedRuns int
	res        *lab.SweepResult
	stats      *RunStats
}

// newJob builds a queued job and seeds its event log with the queued
// state.
func newJob(hash, name string, spec []byte, sweep lab.Sweep) *Job {
	j := &Job{
		hash:    hash,
		name:    name,
		spec:    append([]byte(nil), spec...),
		sweep:   sweep,
		changed: make(chan struct{}),
		state:   StateQueued,
	}
	j.publish(Event{Type: "state", State: StateQueued})
	return j
}

// ID returns the job's spec hash.
func (j *Job) ID() string { return j.hash }

// Spec returns a copy of the canonical spec bytes.
func (j *Job) Spec() []byte { return append([]byte(nil), j.spec...) }

// State returns the current state.
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the completed sweep result, or nil before StateDone.
func (j *Job) Result() *lab.SweepResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.res
}

// Status snapshots the job for the wire.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:         j.hash,
		Name:       j.name,
		State:      j.state,
		Clients:    append([]string(nil), j.clients...),
		Total:      j.sweep.Axis.Len() * j.sweep.Runs,
		Completed:  j.completed,
		FailedRuns: j.failedRuns,
		Events:     len(j.events),
		Error:      j.errText,
		Stats:      j.stats,
	}
	return st
}

// publish appends one event to the log and wakes subscribers. Callers
// must not hold j.mu.
func (j *Job) publish(ev Event) {
	j.mu.Lock()
	j.appendLocked(ev)
	j.mu.Unlock()
}

// appendLocked stamps and appends the event under j.mu.
func (j *Job) appendLocked(ev Event) {
	ev.Seq = len(j.events) + 1
	ev.Job = j.hash
	j.events = append(j.events, ev)
	close(j.changed)
	j.changed = make(chan struct{})
}

// publishRun records one per-run completion.
func (j *Job) publishRun(cell, run int, cached bool, r lab.Result) {
	j.mu.Lock()
	j.completed++
	j.appendLocked(Event{Type: "run", Run: &RunEvent{
		Cell:   cell,
		Run:    run,
		Label:  j.sweep.Axis.Label(cell),
		Cached: cached,
		Result: r,
	}})
	j.mu.Unlock()
}

// publishFailure records one filed cell failure.
func (j *Job) publishFailure(f lab.CellFailure) {
	j.mu.Lock()
	j.failedRuns++
	j.appendLocked(Event{Type: "failure", Failure: &f})
	j.mu.Unlock()
}

// setState transitions the job and publishes the state event.
func (j *Job) setState(state string) {
	j.mu.Lock()
	j.state = state
	j.appendLocked(Event{Type: "state", State: state})
	j.mu.Unlock()
}

// complete marks the job done with its result and stats.
func (j *Job) complete(res *lab.SweepResult, stats artifact.RunStats) {
	j.mu.Lock()
	j.state = StateDone
	j.res = res
	j.errText = ""
	j.stats = wireStats(stats)
	j.appendLocked(Event{Type: "state", State: StateDone, Stats: j.stats})
	j.mu.Unlock()
}

// fail marks the job failed.
func (j *Job) fail(err error) {
	j.mu.Lock()
	j.state = StateFailed
	j.errText = err.Error()
	j.appendLocked(Event{Type: "state", State: StateFailed, Error: j.errText})
	j.mu.Unlock()
}

// interrupt marks the job gracefully drained. stats may be nil (a job
// that never started).
func (j *Job) interrupt(stats *artifact.RunStats, why string) {
	j.mu.Lock()
	j.state = StateInterrupted
	j.errText = why
	if stats != nil {
		j.stats = wireStats(*stats)
	}
	j.appendLocked(Event{Type: "state", State: StateInterrupted, Error: why, Stats: j.stats})
	j.mu.Unlock()
}

// requeue returns a failed/interrupted job to the queue (the caller
// enqueues it on the scheduler).
func (j *Job) requeue() {
	j.mu.Lock()
	j.state = StateQueued
	j.errText = ""
	j.appendLocked(Event{Type: "state", State: StateQueued})
	j.mu.Unlock()
}

// addClient joins a client to the job's subscriber set (sorted,
// deduplicated).
func (j *Job) addClient(client string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	i := sort.SearchStrings(j.clients, client)
	if i < len(j.clients) && j.clients[i] == client {
		return
	}
	j.clients = append(j.clients, "")
	copy(j.clients[i+1:], j.clients[i:])
	j.clients[i] = client
}

// Subscribe replays the job's event log from sequence after+1 onward
// and then follows live appends, invoking fn once per event in log
// order — every event is delivered exactly once per subscriber. It
// returns nil once the job reaches a terminal state and every logged
// event has been delivered, when cancel closes, or fn's error as soon
// as fn fails. (A job resubmitted after a terminal state starts a new
// stream segment; a subscriber that ended at the terminal event picks
// it up by resubscribing from its last seen sequence.)
func (j *Job) Subscribe(cancel <-chan struct{}, after int, fn func(Event) error) error {
	i := after
	if i < 0 {
		i = 0
	}
	for {
		j.mu.Lock()
		if i > len(j.events) {
			i = len(j.events)
		}
		pending := j.events[i:]
		done := terminal(j.state)
		ch := j.changed
		j.mu.Unlock()
		for _, ev := range pending {
			if err := fn(ev); err != nil {
				return err
			}
			i++
		}
		if done && len(pending) == 0 {
			return nil
		}
		if done {
			// Deliver anything that raced in, then re-check.
			continue
		}
		select {
		case <-ch:
		case <-cancel:
			return nil
		}
	}
}
