package labd

import (
	"fmt"
	"testing"
	"time"
)

// schedJob builds a bare job for scheduler tests (never executed).
func schedJob(name string) *Job {
	return newJob(fmt.Sprintf("%064x", len(name)+int(name[0])<<8+int(name[len(name)-1])), name, []byte("{}"), testLabSweep())
}

// TestSchedulerFairRoundRobin pins the fair-queueing contract: with
// two clients each holding a burst of queued jobs, dequeue order
// interleaves across clients — client A's burst cannot starve client
// B even though A enqueued first.
func TestSchedulerFairRoundRobin(t *testing.T) {
	s := newScheduler()
	for i := 0; i < 3; i++ {
		s.enqueue("alice", schedJob(fmt.Sprintf("a%d", i)))
	}
	for i := 0; i < 3; i++ {
		s.enqueue("bob", schedJob(fmt.Sprintf("b%d", i)))
	}
	var got []string
	for i := 0; i < 6; i++ {
		j, more, ok := s.tryDequeue()
		if !ok {
			t.Fatalf("dequeue %d: no job", i)
		}
		if wantMore := i < 5; more != wantMore {
			t.Fatalf("dequeue %d: more=%v, want %v", i, more, wantMore)
		}
		got = append(got, j.name)
	}
	want := []string{"a0", "b0", "a1", "b1", "a2", "b2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("unfair dequeue order %v, want %v", got, want)
		}
	}
	if _, _, ok := s.tryDequeue(); ok {
		t.Fatal("dequeue from empty scheduler succeeded")
	}
}

// TestSchedulerUnevenClients pins round-robin with ragged queues: a
// client whose queue empties drops out of the rotation without
// stalling it.
func TestSchedulerUnevenClients(t *testing.T) {
	s := newScheduler()
	s.enqueue("alice", schedJob("a0"))
	s.enqueue("bob", schedJob("b0"))
	s.enqueue("bob", schedJob("b1"))
	s.enqueue("bob", schedJob("b2"))
	var got []string
	for {
		j, _, ok := s.tryDequeue()
		if !ok {
			break
		}
		got = append(got, j.name)
	}
	want := []string{"a0", "b0", "b1", "b2"}
	if len(got) != len(want) {
		t.Fatalf("dequeued %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dequeued %v, want %v", got, want)
		}
	}
}

// TestSchedulerDequeueStops pins that a blocked dequeue unblocks on
// stop, and that an enqueue wakes a blocked worker.
func TestSchedulerDequeueStops(t *testing.T) {
	s := newScheduler()
	stop := make(chan struct{})
	done := make(chan bool, 1)
	go func() {
		_, ok := s.dequeue(stop)
		done <- ok
	}()
	close(stop)
	select {
	case ok := <-done:
		if ok {
			t.Fatal("stopped dequeue returned a job")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dequeue did not unblock on stop")
	}

	got := make(chan *Job, 1)
	go func() {
		j, ok := s.dequeue(make(chan struct{}))
		if ok {
			got <- j
		}
	}()
	s.enqueue("alice", schedJob("a0"))
	select {
	case j := <-got:
		if j.name != "a0" {
			t.Fatalf("dequeued %q, want a0", j.name)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("enqueue did not wake the blocked dequeue")
	}
}
