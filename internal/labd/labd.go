// Package labd is the lab-as-a-service layer: a resident daemon that
// multiplexes many experimenters over one hot artifact store and
// snapshot cache. Clients submit canonical sweep specs
// (lab.Sweep.Canonical — the wire format and the dedup key), the
// server schedules them on a shared worker pool through a
// multi-tenant queue with per-client fair scheduling, and every
// per-run completion streams to SSE subscribers as it lands.
//
// The daemon adds no semantics of its own — that is the design
// invariant. A job executes through exactly the code path of
// `convergence -out` (artifact.Store → lab.Sweep.Run → sealed
// manifest), so a sweep run through the daemon produces byte-identical
// records, manifests and encoder outputs to the same spec run from
// the CLI. What the daemon adds is residency: the spec hash is the
// job identity, so a resubmitted spec is served from the store with
// zero emulation, identical concurrent submissions coalesce into one
// execution with fanned-out subscribers, and an interrupted job
// resumes from its partial records on the next submission.
package labd

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/artifact"
	"repro/internal/lab"
)

// Config assembles a Server.
type Config struct {
	// Store is the shared content-addressed artifact store every job
	// reads and writes. Required.
	Store *artifact.Store
	// Snapshots, when non-nil, is the shared warm-up snapshot cache
	// wired into every job (byte-identical results, faster warm-ups).
	Snapshots *artifact.SnapshotStore
	// Workers bounds the number of concurrently executing jobs
	// (default 1). Total emulation parallelism is Workers ×
	// Parallelism.
	Workers int
	// Parallelism bounds concurrent emulation runs within one job
	// (lab.Sweep.Parallelism; 0 = GOMAXPROCS).
	Parallelism int
}

// Server is the daemon state: the shared store, the fair scheduler,
// and the job index keyed by spec hash.
type Server struct {
	store       *artifact.Store
	snapshots   *artifact.SnapshotStore
	workers     int
	parallelism int

	sched *scheduler
	stop  chan struct{}
	wg    sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job // by full spec hash
	order    []*Job          // submission order (the deterministic listing)
	started  bool
	draining bool
}

// New builds a Server from the config. Call Start to launch the
// worker pool; the HTTP handler (Handler) is usable before Start —
// submissions queue until workers exist, which is also the test seam
// for deterministic coalescing.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("labd: config needs a store")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	return &Server{
		store:       cfg.Store,
		snapshots:   cfg.Snapshots,
		workers:     workers,
		parallelism: cfg.Parallelism,
		sched:       newScheduler(),
		stop:        make(chan struct{}),
		jobs:        map[string]*Job{},
	}, nil
}

// Start launches the worker pool. Idempotent.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.draining {
		return
	}
	s.started = true
	for w := 0; w < s.workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Drain gracefully shuts the server down: no new submissions are
// accepted, no queued job starts, running jobs drain (in-flight cells
// finish and flush their records, the partial manifest seals), and
// every job left unfinished is marked interrupted — the store is
// resumable, so resubmitting an interrupted spec picks up where it
// stopped. Drain blocks until the workers exit. Idempotent.
func (s *Server) Drain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.order {
		if st := j.State(); st == StateQueued || st == StateRunning {
			j.interrupt(nil, "daemon drained before the job finished")
		}
	}
}

// Submit files a canonical spec for execution on behalf of client.
// The spec's SHA-256 is the job identity: a spec already known —
// queued, running or done — coalesces onto the existing job (the
// second return is true) and the client joins its subscriber set; a
// failed or interrupted job is re-enqueued, resuming from whatever
// records its earlier attempts stored. name labels the sweep in
// encoder output and the sealed manifest (presentation only — it does
// not participate in the job identity; the first submission's name
// wins).
func (s *Server) Submit(client, name string, spec []byte) (*Job, bool, error) {
	sweep, err := lab.ParseCanonical(spec)
	if err != nil {
		return nil, false, err
	}
	if client == "" {
		client = "anonymous"
	}
	sum := sha256.Sum256(spec)
	hash := hex.EncodeToString(sum[:])
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, errors.New("labd: draining, not accepting jobs")
	}
	if j := s.jobs[hash]; j != nil {
		j.addClient(client)
		switch j.State() {
		case StateFailed, StateInterrupted:
			// Resubmission retries: records already stored replay as
			// cache hits, so only the missing grid positions execute.
			j.requeue()
			s.sched.enqueue(client, j)
			return j, false, nil
		default:
			return j, true, nil
		}
	}
	if name == "" {
		name = hash[:12]
	}
	sweep.Name = name
	j := newJob(hash, name, spec, sweep)
	j.addClient(client)
	s.jobs[hash] = j
	s.order = append(s.order, j)
	s.sched.enqueue(client, j)
	return j, false, nil
}

// Job finds a job by its full spec hash or a unique prefix (at least
// 8 hex digits).
func (s *Server) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j := s.jobs[id]; j != nil {
		return j, nil
	}
	if len(id) < 8 {
		return nil, fmt.Errorf("labd: job id %q too short (want >= 8 hex digits)", id)
	}
	var found *Job
	for _, j := range s.order {
		if len(id) <= len(j.hash) && j.hash[:len(id)] == id {
			if found != nil {
				return nil, fmt.Errorf("labd: job id %q is ambiguous", id)
			}
			found = j
		}
	}
	if found == nil {
		return nil, fmt.Errorf("labd: no job %q", id)
	}
	return found, nil
}

// Jobs snapshots every job's status in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, len(s.order))
	for i, j := range s.order {
		out[i] = j.Status()
	}
	return out
}

// Status is the daemon-level status snapshot.
type Status struct {
	// Workers is the configured job concurrency.
	Workers int `json:"workers"`
	// Parallelism is the per-job emulation parallelism (0 =
	// GOMAXPROCS).
	Parallelism int `json:"parallelism"`
	// Draining reports whether Drain has begun.
	Draining bool `json:"draining"`
	// Jobs counts jobs by state, keys sorted.
	Jobs map[string]int `json:"jobs"`
	// Queued counts queued jobs per client, keys sorted.
	Queued map[string]int `json:"queued"`
	// Snapshots carries the shared warm-up cache counters, when the
	// cache is enabled.
	Snapshots *artifact.SnapshotStats `json:"snapshots,omitempty"`
}

// Status snapshots the daemon state.
func (s *Server) Status() Status {
	s.mu.Lock()
	st := Status{
		Workers:     s.workers,
		Parallelism: s.parallelism,
		Draining:    s.draining,
		Jobs:        map[string]int{},
	}
	for _, j := range s.order {
		st.Jobs[j.State()]++
	}
	s.mu.Unlock()
	st.Queued = s.sched.depths()
	if s.snapshots != nil {
		snap := s.snapshots.Stats()
		st.Snapshots = &snap
	}
	return st
}

// worker pulls jobs off the fair scheduler until Drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.sched.dequeue(s.stop)
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one job through the exact `convergence -out` path:
// bind the sweep to its store directory, run with the shared caches,
// seal the manifest. The only addition is telemetry — the cache
// wrapper publishes every per-run completion to the job's event log.
func (s *Server) runJob(j *Job) {
	j.setState(StateRunning)
	ss, err := s.store.Sweep(j.sweep)
	if err != nil {
		j.fail(err)
		return
	}
	sw := j.sweep
	sw.Cache = &jobCache{inner: ss, job: j}
	sw.Parallelism = s.parallelism
	sw.Stop = s.stop
	if s.snapshots != nil {
		sw.Snapshots = s.snapshots
	}
	res, err := sw.Run()
	stats := ss.Stats()
	if err != nil {
		if errors.Is(err, lab.ErrStopped) {
			// Graceful drain: seal the partial manifest so the store
			// stays auditable; the stored records resume the job later.
			if ferr := ss.Finish(); ferr != nil {
				j.fail(ferr)
				return
			}
			j.interrupt(&stats, "drained mid-run; resubmit to resume")
			return
		}
		j.fail(err)
		return
	}
	if err := ss.Finish(); err != nil {
		j.fail(err)
		return
	}
	j.complete(res, stats)
}

// jobCache wraps the job's SweepStore, forwarding every cache call
// verbatim and publishing the per-run telemetry the SSE stream fans
// out. It cannot change results: a wrapped hit or store returns
// exactly what the store returned.
type jobCache struct {
	inner *artifact.SweepStore
	job   *Job
}

// Load consults the store; a hit is published as a cached per-run
// completion.
func (c *jobCache) Load(cell, run int) (lab.Result, bool, error) {
	r, ok, err := c.inner.Load(cell, run)
	if err == nil && ok {
		c.job.publishRun(cell, run, true, r)
	}
	return r, ok, err
}

// Store files the fresh result and publishes the completion.
func (c *jobCache) Store(cell, run int, r lab.Result) error {
	if err := c.inner.Store(cell, run, r); err != nil {
		return err
	}
	c.job.publishRun(cell, run, false, r)
	return nil
}

// StoreFailure files the failure and publishes it.
func (c *jobCache) StoreFailure(cell, run int, f lab.CellFailure) error {
	if err := c.inner.StoreFailure(cell, run, f); err != nil {
		return err
	}
	c.job.publishFailure(f)
	return nil
}

// depths snapshots the per-client queue depths with sorted keys.
func (s *scheduler) depths() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[string]int{}
	clients := append([]string(nil), s.order...)
	sort.Strings(clients)
	for _, c := range clients {
		if n := len(s.queues[c]); n > 0 {
			out[c] = n
		}
	}
	return out
}
