package labd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/lab"
)

// The control API, all JSON over stdlib net/http:
//
//	GET  /v1/healthz             liveness
//	GET  /v1/status              daemon status (workers, queues, states)
//	GET  /v1/presets             the experiment registry as named presets
//	POST /v1/jobs                submit a spec (canonical bytes or preset)
//	GET  /v1/jobs                all jobs, submission order
//	GET  /v1/jobs/{id}           one job's status
//	GET  /v1/jobs/{id}/spec      the job's canonical spec bytes
//	GET  /v1/jobs/{id}/result    encoded result (?format=table|csv|json|markdown)
//	GET  /v1/jobs/{id}/manifest  the sealed manifest from the store
//	GET  /v1/jobs/{id}/events    SSE stream of the job's event log (?from=seq)
//
// {id} is the spec hash or any unique prefix of at least 8 digits.

// SubmitRequest is the POST /v1/jobs body. Exactly one of Spec and
// Preset must be set.
type SubmitRequest struct {
	// Client identifies the submitting tenant for fair scheduling
	// (empty maps to "anonymous").
	Client string `json:"client,omitempty"`
	// Name labels the sweep in encoder output and the manifest; for a
	// preset submission it defaults to the preset name. Presentation
	// only — never part of the job identity.
	Name string `json:"name,omitempty"`
	// Spec is a canonical sweep spec (lab.Sweep.Canonical bytes),
	// submitted verbatim.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Preset names a registry experiment to build server-side.
	Preset string `json:"preset,omitempty"`
	// Options override the preset's defaults (ignored with Spec).
	Options *PresetOptions `json:"options,omitempty"`
}

// SubmitResponse is the POST /v1/jobs reply.
type SubmitResponse struct {
	// Job is the accepted (or coalesced-onto) job's status.
	Job JobStatus `json:"job"`
	// Coalesced reports that an equivalent job already existed: the
	// submission joined it instead of executing anything new.
	Coalesced bool `json:"coalesced"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Status())
	})
	mux.HandleFunc("GET /v1/presets", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string][]Preset{"presets": Presets()})
	})
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string][]JobStatus{"jobs": s.Jobs()})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", s.withJob(func(w http.ResponseWriter, r *http.Request, j *Job) {
		writeJSON(w, http.StatusOK, j.Status())
	}))
	mux.HandleFunc("GET /v1/jobs/{id}/spec", s.withJob(func(w http.ResponseWriter, r *http.Request, j *Job) {
		w.Header().Set("Content-Type", "application/json")
		//lint:errcheck a failed client write has no recovery beyond the log the caller keeps
		w.Write(j.Spec())
	}))
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.withJob(s.handleResult))
	mux.HandleFunc("GET /v1/jobs/{id}/manifest", s.withJob(s.handleManifest))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.withJob(s.handleEvents))
	return mux
}

// handleSubmit accepts a spec or preset submission.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req SubmitRequest
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("labd: bad submit body: %w", err))
		return
	}
	var spec []byte
	name := req.Name
	switch {
	case req.Preset != "" && len(req.Spec) > 0:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("labd: submit either spec or preset, not both"))
		return
	case req.Preset != "":
		var opt PresetOptions
		if req.Options != nil {
			opt = *req.Options
		}
		var err error
		if spec, err = BuildPreset(req.Preset, opt); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if name == "" {
			name = req.Preset
		}
	case len(req.Spec) > 0:
		spec = req.Spec
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("labd: submit needs a spec or a preset"))
		return
	}
	j, coalesced, err := s.Submit(req.Client, name, spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	code := http.StatusCreated
	if coalesced {
		code = http.StatusOK
	}
	writeJSON(w, code, SubmitResponse{Job: j.Status(), Coalesced: coalesced})
}

// handleResult encodes a done job's sweep result in the requested
// format — through the same lab encoders the CLI uses, so the bytes
// match `convergence` stdout for the same spec.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request, j *Job) {
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "table"
	}
	f, err := lab.ParseFormat(format)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res := j.Result()
	if res == nil {
		writeErr(w, http.StatusConflict, fmt.Errorf("labd: job %.12s is %s, result not available", j.ID(), j.State()))
		return
	}
	var buf bytes.Buffer
	if err := lab.Write(&buf, f, res); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if f == lab.FormatJSON {
		w.Header().Set("Content-Type", "application/json")
	} else {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	//lint:errcheck a failed client write has no recovery beyond the log the caller keeps
	w.Write(buf.Bytes())
}

// handleManifest serves the job's sealed manifest bytes from the
// store directory.
func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request, j *Job) {
	data, err := os.ReadFile(filepath.Join(s.store.Dir(), j.ID(), "manifest.json"))
	if err != nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("labd: job %.12s has no sealed manifest yet", j.ID()))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	//lint:errcheck a failed client write has no recovery beyond the log the caller keeps
	w.Write(data)
}

// handleEvents streams the job's event log as Server-Sent Events:
// one `event:`/`id:`/`data:` block per log entry, replayed from
// ?from=<seq> (default 0, the full history) and then followed live
// until the job reaches a terminal state. Exactly-once per
// subscriber: the log is append-only and Seq-numbered, so a client
// that reconnects with from=<last seen seq> resumes without gaps or
// duplicates.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, j *Job) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("labd: response writer cannot stream"))
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("labd: bad from %q", v))
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	//lint:errcheck a dropped subscriber ends its own stream; Subscribe returns on the write error
	j.Subscribe(r.Context().Done(), from, func(ev Event) error {
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
			return err
		}
		flusher.Flush()
		return nil
	})
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//lint:errcheck a failed client write has no recovery beyond the log the caller keeps
	enc.Encode(v)
}

// writeErr writes the uniform error body.
func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

// withJob resolves the {id} path value to a job or 404s.
func (s *Server) withJob(fn func(http.ResponseWriter, *http.Request, *Job)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, err := s.Job(r.PathValue("id"))
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		fn(w, r, j)
	}
}
