// Package plot renders the framework's measurement results as SVG:
// boxplot series (the paper's Figure 2 presentation) and route-change
// timelines. Pure stdlib; output is a standalone SVG document.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/stats"
)

// Box is one boxplot column.
type Box struct {
	Label   string
	Summary stats.Summary
}

// BoxplotConfig styles a boxplot chart.
type BoxplotConfig struct {
	Title  string
	XLabel string
	YLabel string
	// Subtitle is an optional smaller line under the title — the lab
	// report stamps each figure's spec content address here, so a
	// chart stays traceable to the archived configuration that
	// produced it even after it is copied out of the report.
	Subtitle string
	// Width and Height of the SVG canvas (defaults 640x420).
	Width, Height int
}

const (
	marginLeft   = 70
	marginRight  = 20
	marginTop    = 40
	marginBottom = 55
)

func (c *BoxplotConfig) setDefaults() {
	if c.Width == 0 {
		c.Width = 640
	}
	if c.Height == 0 {
		c.Height = 420
	}
}

// WriteBoxplot renders the series as an SVG boxplot chart, one box per
// entry in order — the shape of the paper's Figure 2.
func WriteBoxplot(w io.Writer, cfg BoxplotConfig, boxes []Box) error {
	cfg.setDefaults()
	if len(boxes) == 0 {
		return fmt.Errorf("plot: no boxes to draw")
	}
	maxY := 0.0
	for _, b := range boxes {
		if !math.IsNaN(b.Summary.Max) && b.Summary.Max > maxY {
			maxY = b.Summary.Max
		}
	}
	if maxY == 0 {
		maxY = 1
	}
	maxY *= 1.08 // headroom

	plotW := float64(cfg.Width - marginLeft - marginRight)
	plotH := float64(cfg.Height - marginTop - marginBottom)
	yOf := func(v float64) float64 {
		return float64(marginTop) + plotH*(1-v/maxY)
	}
	colW := plotW / float64(len(boxes))
	boxW := colW * 0.45

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n",
		cfg.Width, cfg.Height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if cfg.Title != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="20" text-anchor="middle" font-size="14">%s</text>`+"\n",
			cfg.Width/2, escape(cfg.Title))
	}
	if cfg.Subtitle != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="34" text-anchor="middle" font-size="9" fill="#666">%s</text>`+"\n",
			cfg.Width/2, escape(cfg.Subtitle))
	}

	// Axes.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, cfg.Height-marginBottom)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, cfg.Height-marginBottom, cfg.Width-marginRight, cfg.Height-marginBottom)

	// Y ticks and gridlines.
	for i := 0; i <= 5; i++ {
		v := maxY * float64(i) / 5
		y := yOf(v)
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginLeft, y, cfg.Width-marginRight, y)
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, y+4, formatTick(v))
	}
	if cfg.YLabel != "" {
		fmt.Fprintf(&sb, `<text x="14" y="%d" transform="rotate(-90 14 %d)" text-anchor="middle">%s</text>`+"\n",
			cfg.Height/2, cfg.Height/2, escape(cfg.YLabel))
	}
	if cfg.XLabel != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n",
			marginLeft+int(plotW/2), cfg.Height-12, escape(cfg.XLabel))
	}

	// Boxes.
	for i, b := range boxes {
		s := b.Summary
		cx := float64(marginLeft) + colW*(float64(i)+0.5)
		left := cx - boxW/2
		right := cx + boxW/2
		if s.N > 0 && !math.IsNaN(s.Median) {
			// Whiskers.
			fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
				cx, yOf(s.Min), cx, yOf(s.Q1))
			fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
				cx, yOf(s.Q3), cx, yOf(s.Max))
			for _, v := range []float64{s.Min, s.Max} {
				fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
					cx-boxW/4, yOf(v), cx+boxW/4, yOf(v))
			}
			// Interquartile box.
			fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#9ecae1" stroke="black"/>`+"\n",
				left, yOf(s.Q3), right-left, math.Max(yOf(s.Q1)-yOf(s.Q3), 0.5))
			// Median.
			fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black" stroke-width="2"/>`+"\n",
				left, yOf(s.Median), right, yOf(s.Median))
		}
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			cx, cfg.Height-marginBottom+16, escape(b.Label))
	}
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// Series is one line in a timeseries chart.
type Series struct {
	Label string
	Color string // SVG color; default assigned by index
	X, Y  []float64
}

// LineConfig styles a line chart.
type LineConfig struct {
	Title         string
	XLabel        string
	YLabel        string
	Width, Height int
}

var defaultColors = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e"}

// WriteLines renders one or more X/Y series as an SVG line chart (used
// for update-rate and loss timelines).
func WriteLines(w io.Writer, cfg LineConfig, series []Series) error {
	bc := BoxplotConfig{Width: cfg.Width, Height: cfg.Height}
	bc.setDefaults()
	cfg.Width, cfg.Height = bc.Width, bc.Height
	if len(series) == 0 {
		return fmt.Errorf("plot: no series to draw")
	}
	maxX, maxY := 0.0, 0.0
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x values and %d y values", s.Label, len(s.X), len(s.Y))
		}
		for i := range s.X {
			if s.X[i] > maxX {
				maxX = s.X[i]
			}
			if s.Y[i] > maxY {
				maxY = s.Y[i]
			}
		}
	}
	if maxX == 0 {
		maxX = 1
	}
	if maxY == 0 {
		maxY = 1
	}
	maxY *= 1.08

	plotW := float64(cfg.Width - marginLeft - marginRight)
	plotH := float64(cfg.Height - marginTop - marginBottom)
	xOf := func(v float64) float64 { return float64(marginLeft) + plotW*v/maxX }
	yOf := func(v float64) float64 { return float64(marginTop) + plotH*(1-v/maxY) }

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n",
		cfg.Width, cfg.Height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if cfg.Title != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="20" text-anchor="middle" font-size="14">%s</text>`+"\n",
			cfg.Width/2, escape(cfg.Title))
	}
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, cfg.Height-marginBottom)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, cfg.Height-marginBottom, cfg.Width-marginRight, cfg.Height-marginBottom)
	for i := 0; i <= 5; i++ {
		v := maxY * float64(i) / 5
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, yOf(v)+4, formatTick(v))
		xv := maxX * float64(i) / 5
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			xOf(xv), cfg.Height-marginBottom+16, formatTick(xv))
	}
	if cfg.YLabel != "" {
		fmt.Fprintf(&sb, `<text x="14" y="%d" transform="rotate(-90 14 %d)" text-anchor="middle">%s</text>`+"\n",
			cfg.Height/2, cfg.Height/2, escape(cfg.YLabel))
	}
	if cfg.XLabel != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n",
			marginLeft+int(plotW/2), cfg.Height-12, escape(cfg.XLabel))
	}
	for si, s := range series {
		color := s.Color
		if color == "" {
			color = defaultColors[si%len(defaultColors)]
		}
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xOf(s.X[i]), yOf(s.Y[i])))
		}
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
			strings.Join(pts, " "), color)
		if s.Label != "" {
			fmt.Fprintf(&sb, `<text x="%d" y="%d" fill="%s">%s</text>`+"\n",
				cfg.Width-marginRight-120, marginTop+14*(si+1), color, escape(s.Label))
		}
	}
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func formatTick(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
