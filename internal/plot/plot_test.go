package plot

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func boxes() []Box {
	return []Box{
		{Label: "0%", Summary: stats.Summarize([]float64{300, 320, 340, 360})},
		{Label: "50%", Summary: stats.Summarize([]float64{150, 160, 170})},
		{Label: "100%", Summary: stats.Summarize([]float64{1, 1, 1})},
	}
}

func TestWriteBoxplot(t *testing.T) {
	var sb strings.Builder
	cfg := BoxplotConfig{
		Title:  "Fig 2 — withdrawal convergence",
		XLabel: "SDN fraction",
		YLabel: "seconds",
	}
	if err := WriteBoxplot(&sb, cfg, boxes()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"<svg", "</svg>", "Fig 2", "SDN fraction", "seconds",
		"0%", "50%", "100%", "<rect", "<line",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// One interquartile rect per box (plus the background rect).
	if got := strings.Count(out, "<rect"); got != 4 {
		t.Fatalf("rect count = %d, want 4", got)
	}
}

func TestWriteBoxplotEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteBoxplot(&sb, BoxplotConfig{}, nil); err == nil {
		t.Fatal("empty input should error")
	}
}

func TestWriteBoxplotEscapes(t *testing.T) {
	var sb strings.Builder
	cfg := BoxplotConfig{Title: `a<b&"c"`}
	if err := WriteBoxplot(&sb, cfg, boxes()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), `a<b`) {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(sb.String(), "a&lt;b&amp;") {
		t.Fatal("escaped title missing")
	}
}

func TestWriteLines(t *testing.T) {
	var sb strings.Builder
	cfg := LineConfig{Title: "updates", XLabel: "t (s)", YLabel: "msgs"}
	series := []Series{
		{Label: "pure", X: []float64{0, 1, 2, 3}, Y: []float64{0, 10, 5, 0}},
		{Label: "sdn", Color: "#000", X: []float64{0, 1, 2}, Y: []float64{0, 2, 0}},
	}
	if err := WriteLines(&sb, cfg, series); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"<polyline", "pure", "sdn", "#000", "updates"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Fatalf("polyline count = %d, want 2", got)
	}
}

func TestWriteLinesErrors(t *testing.T) {
	var sb strings.Builder
	if err := WriteLines(&sb, LineConfig{}, nil); err == nil {
		t.Fatal("empty input should error")
	}
	bad := []Series{{X: []float64{1}, Y: []float64{1, 2}}}
	if err := WriteLines(&sb, LineConfig{}, bad); err == nil {
		t.Fatal("mismatched lengths should error")
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{0: "0", 350: "350", 5.25: "5.2", 0.5: "0.50"}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}
