package monitor

import (
	"sort"

	"repro/internal/idr"
	"repro/internal/sim"
)

// Snapshot support: the convergence detector's quiescence window state
// and the probe engine's in-flight/accumulated statistics. The event
// log is deliberately NOT snapshotted: every analysis the lab runs
// over it is windowed to start at or after the measurement trigger,
// which is always later than the warm-up fork point, so warm-up
// entries can never influence a result.

// DetectorState is the serializable state of a Detector.
type DetectorState struct {
	// LastNS is the time of the most recent activity, as nanoseconds
	// since sim.Epoch.
	LastNS int64 `json:"last_ns"`
	// Events counts activity touches since the last reset.
	Events uint64 `json:"events"`
}

// State captures the detector's serializable state.
func (d *Detector) State() DetectorState {
	return DetectorState{LastNS: sim.TimeToNS(d.last), Events: d.events}
}

// RestoreState overlays a captured state.
func (d *Detector) RestoreState(st DetectorState) {
	d.last = sim.TimeFromNS(st.LastNS)
	d.events = st.Events
}

// PendingProbe is one in-flight probe: its id and the flow it belongs
// to.
type PendingProbe struct {
	// ID is the probe id; Src and Dst the flow.
	ID  uint64  `json:"id"`
	Src idr.ASN `json:"src"`
	Dst idr.ASN `json:"dst"`
}

// FlowStat is one flow's accumulated statistics.
type FlowStat struct {
	// Src and Dst identify the flow.
	Src idr.ASN `json:"src"`
	Dst idr.ASN `json:"dst"`
	// Sent and Delivered are the counters.
	Sent      uint64 `json:"sent"`
	Delivered uint64 `json:"delivered"`
}

// ProbeState is the serializable state of a ProbeEngine. Injection
// functions are wiring, re-registered by the experiment on use.
type ProbeState struct {
	// NextID is the last probe id assigned.
	NextID uint64 `json:"next_id"`
	// Pending lists the in-flight probes, sorted by id.
	Pending []PendingProbe `json:"pending,omitempty"`
	// Stats lists the per-flow counters, sorted by (src, dst).
	Stats []FlowStat `json:"stats,omitempty"`
}

// State captures the probe engine's serializable state.
func (e *ProbeEngine) State() ProbeState {
	st := ProbeState{NextID: e.nextID}
	for id, key := range e.pending {
		st.Pending = append(st.Pending, PendingProbe{ID: id, Src: key.Src, Dst: key.Dst})
	}
	sort.Slice(st.Pending, func(i, j int) bool { return st.Pending[i].ID < st.Pending[j].ID })
	for key, s := range e.stats {
		st.Stats = append(st.Stats, FlowStat{Src: key.Src, Dst: key.Dst, Sent: s.Sent, Delivered: s.Delivered})
	}
	sort.Slice(st.Stats, func(i, j int) bool {
		if st.Stats[i].Src != st.Stats[j].Src {
			return st.Stats[i].Src < st.Stats[j].Src
		}
		return st.Stats[i].Dst < st.Stats[j].Dst
	})
	return st
}

// RestoreState overlays a captured state.
func (e *ProbeEngine) RestoreState(st ProbeState) {
	e.nextID = st.NextID
	e.pending = make(map[uint64]FlowKey, len(st.Pending))
	for _, p := range st.Pending {
		e.pending[p.ID] = FlowKey{Src: p.Src, Dst: p.Dst}
	}
	e.stats = make(map[FlowKey]*ProbeStats, len(st.Stats))
	for _, f := range st.Stats {
		e.stats[FlowKey{Src: f.Src, Dst: f.Dst}] = &ProbeStats{Sent: f.Sent, Delivered: f.Delivered}
	}
}
