package monitor

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/bgp/rib"
	"repro/internal/bgp/wire"
	"repro/internal/frames"
	"repro/internal/idr"
	"repro/internal/sim"
)

func TestDetectorBasics(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDetector(k, 5*time.Second)
	if d.Converged() {
		t.Fatal("fresh detector should not be converged (no settle elapsed)")
	}
	if err := k.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !d.Converged() {
		t.Fatal("quiet detector should converge after settle")
	}
	d.Touch()
	if d.Converged() {
		t.Fatal("touch should restart the window")
	}
	if d.Events() != 1 {
		t.Fatalf("events = %d", d.Events())
	}
	d.Reset()
	if d.Events() != 0 {
		t.Fatal("reset should clear events")
	}
	if NewDetector(k, 0) == nil {
		t.Fatal("default settle constructor failed")
	}
}

func TestDetectorWaitConverged(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDetector(k, 2*time.Second)
	// Activity at 1s and 2s, then silence.
	k.AfterFunc(time.Second, d.Touch)
	k.AfterFunc(2*time.Second, d.Touch)
	instant, err := d.WaitConverged(k, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if want := sim.Epoch.Add(2 * time.Second); !instant.Equal(want) {
		t.Fatalf("convergence instant = %v, want %v", instant, want)
	}
}

func TestDetectorWaitTimeout(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDetector(k, 2*time.Second)
	// Perpetual activity every second: never converges.
	var tick func()
	tick = func() {
		d.Touch()
		k.AfterFunc(time.Second, tick)
	}
	k.Go(tick)
	if _, err := d.WaitConverged(k, 10*time.Second); err == nil {
		t.Fatal("expected timeout")
	}
}

func TestDetectorBGPActivityTrace(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDetector(k, time.Second)
	// Updates count.
	d.BGPActivityTrace(bgp.TraceEvent{Kind: bgp.TraceSend, Msg: wire.Update{}})
	if d.Events() != 1 {
		t.Fatal("update send should touch")
	}
	d.BGPActivityTrace(bgp.TraceEvent{Kind: bgp.TraceRecv, Msg: wire.Update{}})
	if d.Events() != 2 {
		t.Fatal("update recv should touch")
	}
	// Keepalives and state changes do not.
	d.BGPActivityTrace(bgp.TraceEvent{Kind: bgp.TraceSend, Msg: wire.Keepalive{}})
	d.BGPActivityTrace(bgp.TraceEvent{Kind: bgp.TraceState})
	d.BGPActivityTrace(bgp.TraceEvent{Kind: bgp.TraceBest})
	if d.Events() != 2 {
		t.Fatalf("non-update events touched the detector: %d", d.Events())
	}
}

func TestProbeEngine(t *testing.T) {
	k := sim.NewKernel(1)
	e := NewProbeEngine(k)
	src, dst := netip.MustParseAddr("10.0.1.10"), netip.MustParseAddr("10.0.2.10")
	if err := e.Send(1, 2, src, dst); err == nil {
		t.Fatal("send without registered source should error")
	}
	var inFlight []frames.Probe
	e.RegisterSource(1, func(p frames.Probe) error {
		inFlight = append(inFlight, p)
		return nil
	})
	for i := 0; i < 4; i++ {
		if err := e.Send(1, 2, src, dst); err != nil {
			t.Fatal(err)
		}
	}
	// Deliver 3 of 4.
	for _, p := range inFlight[:3] {
		e.OnDelivered(p)
	}
	// Duplicate delivery is ignored.
	e.OnDelivered(inFlight[0])
	// Unknown probe is ignored.
	e.OnDelivered(frames.Probe{ID: 999})
	stats := e.Stats()[FlowKey{Src: 1, Dst: 2}]
	if stats.Sent != 4 || stats.Delivered != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	if loss := stats.Loss(); loss < 0.24 || loss > 0.26 {
		t.Fatalf("loss = %v, want 0.25", loss)
	}
	total := e.TotalLoss()
	if total.Sent != 4 || total.Delivered != 3 {
		t.Fatalf("total = %+v", total)
	}
	var sb strings.Builder
	if err := e.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "AS1 -> AS2") {
		t.Fatalf("report = %q", sb.String())
	}
	e.ResetStats()
	if len(e.Stats()) != 0 {
		t.Fatal("reset failed")
	}
	if (ProbeStats{}).Loss() != 0 {
		t.Fatal("zero-sent loss should be 0")
	}
}

func fabricatedLog() *EventLog {
	l := NewEventLog()
	pfx := netip.MustParsePrefix("10.0.1.0/24")
	mk := func(at time.Duration, router idr.ASN, kind bgp.TraceKind, msg wire.Message, ch *rib.Change) bgp.TraceEvent {
		return bgp.TraceEvent{
			Time: sim.Epoch.Add(at), Router: router, Kind: kind, Msg: msg, Change: ch,
		}
	}
	routeVia := func(path ...idr.ASN) *rib.Route {
		return &rib.Route{Prefix: pfx, Peer: "p", Attrs: wire.PathAttrs{ASPath: wire.NewASPath(path...)}}
	}
	l.Append(mk(1*time.Second, 2, bgp.TraceRecv, wire.Update{NLRI: []netip.Prefix{pfx}}, nil))
	l.Append(mk(1*time.Second, 2, bgp.TraceBest, nil, &rib.Change{Prefix: pfx, New: routeVia(1)}))
	l.Append(mk(2*time.Second, 2, bgp.TraceSend, wire.Update{NLRI: []netip.Prefix{pfx}}, nil))
	l.Append(mk(3*time.Second, 2, bgp.TraceBest, nil, &rib.Change{Prefix: pfx, Old: routeVia(1), New: routeVia(3, 1)}))
	l.Append(mk(4*time.Second, 2, bgp.TraceBest, nil, &rib.Change{Prefix: pfx, Old: routeVia(3, 1)}))
	l.Append(mk(5*time.Second, 3, bgp.TraceState, nil, nil))
	l.Append(mk(5*time.Second, 3, bgp.TraceSend, wire.Keepalive{}, nil))
	return l
}

func TestEventLogSummarize(t *testing.T) {
	l := fabricatedLog()
	if l.Len() != 7 {
		t.Fatalf("len = %d", l.Len())
	}
	sums := l.Summarize()
	if len(sums) != 2 {
		t.Fatalf("summaries = %d", len(sums))
	}
	s2 := sums[0]
	if s2.Router != 2 || s2.UpdatesSent != 1 || s2.UpdatesRecv != 1 || s2.BestChanges != 3 {
		t.Fatalf("router 2 summary = %+v", s2)
	}
	s3 := sums[1]
	if s3.Router != 3 || s3.StateChanges != 1 || s3.UpdatesSent != 0 {
		t.Fatalf("router 3 summary = %+v", s3)
	}
	if s2.FirstActivity.After(s2.LastActivity) {
		t.Fatal("activity window inverted")
	}
}

func TestEventLogPathChanges(t *testing.T) {
	l := fabricatedLog()
	pfx := netip.MustParsePrefix("10.0.1.0/24")
	changes := l.PathChanges(pfx)
	if len(changes) != 3 {
		t.Fatalf("changes = %d", len(changes))
	}
	if changes[0].OldPath != "" || changes[0].NewPath != "1" {
		t.Fatalf("first change = %+v", changes[0])
	}
	if changes[2].NewPath != "" {
		t.Fatalf("last change should be a loss: %+v", changes[2])
	}
	counts := l.PathExplorationCount(pfx, sim.Epoch.Add(2*time.Second))
	if counts[2] != 2 {
		t.Fatalf("exploration count = %v", counts)
	}
	// Nothing for an unknown prefix.
	if got := l.PathChanges(netip.MustParsePrefix("10.9.9.0/24")); len(got) != 0 {
		t.Fatal("unknown prefix should have no changes")
	}
}

// TestPathExplorationCountBetween pins the windowed form backing the
// per-epoch workload instrumentation: [start, end) half-open windows
// partition the log, and a zero end leaves the window open.
func TestPathExplorationCountBetween(t *testing.T) {
	l := fabricatedLog()
	pfx := netip.MustParsePrefix("10.0.1.0/24")
	// Changes sit at 1s, 3s and 4s. A window [1s, 4s) takes the first
	// two; [4s, zero) takes the last.
	first := l.PathExplorationCountBetween(pfx, sim.Epoch.Add(time.Second), sim.Epoch.Add(4*time.Second))
	if first[2] != 2 {
		t.Fatalf("[1s,4s) count = %v, want 2 for router 2", first)
	}
	rest := l.PathExplorationCountBetween(pfx, sim.Epoch.Add(4*time.Second), time.Time{})
	if rest[2] != 1 {
		t.Fatalf("[4s,∞) count = %v, want 1 for router 2", rest)
	}
	// Windows partition: the sum over contiguous windows equals the
	// unwindowed count.
	total := l.PathExplorationCount(pfx, sim.Epoch)
	if first[2]+rest[2] != total[2] {
		t.Fatalf("window sum %d != total %d", first[2]+rest[2], total[2])
	}
	if got := l.PathExplorationCountBetween(pfx, sim.Epoch.Add(10*time.Second), time.Time{}); len(got) != 0 {
		t.Fatalf("empty window should count nothing, got %v", got)
	}
}

func TestEventLogTimeline(t *testing.T) {
	l := fabricatedLog()
	var sb strings.Builder
	if err := l.WriteTimeline(&sb, netip.MustParsePrefix("10.0.1.0/24")); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "[1] -> [3 1]") || !strings.Contains(out, "(none)") {
		t.Fatalf("timeline = %q", out)
	}
}

func TestWriteForwardingDOT(t *testing.T) {
	pfx := netip.MustParsePrefix("10.0.1.0/24")
	providers := map[idr.ASN]RouteProvider{
		1: func(netip.Prefix) (wire.ASPath, bool) { return nil, true }, // origin
		2: func(netip.Prefix) (wire.ASPath, bool) { return wire.NewASPath(1), true },
		3: func(netip.Prefix) (wire.ASPath, bool) { return wire.NewASPath(2, 1), true },
		4: func(netip.Prefix) (wire.ASPath, bool) { return nil, false }, // no route
	}
	var sb strings.Builder
	if err := WriteForwardingDOT(&sb, pfx, providers); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"AS2" -> "AS1"`, `"AS3" -> "AS2"`, "doublecircle", "dashed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
}
