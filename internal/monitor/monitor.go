// Package monitor implements the framework's measurement and analysis
// tools (paper §3): convergence detection ("the framework detects when
// the network has converged"), data-plane loss measurement via probe
// traffic (the ping/video-app equivalent), log analysis over router
// trace events, and route-change visualization.
package monitor

import (
	"errors"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"time"

	"repro/internal/bgp"
	"repro/internal/bgp/wire"
	"repro/internal/frames"
	"repro/internal/idr"
	"repro/internal/sim"
)

// ErrTimeout marks a virtual-clock deadline expiring before the waited
// condition held (convergence, session establishment). Waiters wrap it
// so callers can classify timeout-class failures with errors.Is — the
// failure-tolerant sweep runner files these as timed-out cells.
var ErrTimeout = errors.New("timed out")

// Detector detects routing convergence by quiescence: the network is
// considered converged once no routing activity (updates sent or
// received, controller recomputations) has occurred for a settle
// window. The convergence instant is the time of the last activity.
type Detector struct {
	clock  sim.Clock
	settle time.Duration
	last   time.Time
	events uint64
}

// DefaultSettle is the default quiescence window.
const DefaultSettle = 5 * time.Second

// NewDetector builds a detector; settle <= 0 selects DefaultSettle.
func NewDetector(clock sim.Clock, settle time.Duration) *Detector {
	if settle <= 0 {
		settle = DefaultSettle
	}
	return &Detector{clock: clock, settle: settle, last: clock.Now()}
}

// Touch records routing activity now.
func (d *Detector) Touch() {
	d.last = d.clock.Now()
	d.events++
}

// Reset restarts observation from now (call when triggering an event
// whose convergence is to be measured).
func (d *Detector) Reset() {
	d.last = d.clock.Now()
	d.events = 0
}

// Events returns the number of activity touches since the last reset.
func (d *Detector) Events() uint64 { return d.events }

// LastActivity returns the time of the most recent activity.
func (d *Detector) LastActivity() time.Time { return d.last }

// Converged reports whether the settle window has elapsed since the
// last activity.
func (d *Detector) Converged() bool {
	return d.clock.Now().Sub(d.last) >= d.settle
}

// BGPActivityTrace adapts the detector to a bgp.Router trace hook:
// UPDATE traffic counts as activity (keepalives and state changes do
// not).
func (d *Detector) BGPActivityTrace(ev bgp.TraceEvent) {
	if ev.Kind != bgp.TraceSend && ev.Kind != bgp.TraceRecv {
		return
	}
	if ev.Msg != nil && ev.Msg.Type() == wire.MsgUpdate {
		d.Touch()
	}
}

// WaitConverged advances the kernel until the detector reports
// convergence or until timeout elapses. It returns the convergence
// instant (the last routing activity) or an error on timeout.
func (d *Detector) WaitConverged(k *sim.Kernel, timeout time.Duration) (time.Time, error) {
	deadline := k.Now().Add(timeout)
	for {
		if d.Converged() {
			return d.last, nil
		}
		step := d.settle - k.Now().Sub(d.last)
		if step <= 0 {
			step = time.Millisecond
		}
		if k.Now().Add(step).After(deadline) {
			if err := k.RunUntil(deadline); err != nil {
				return time.Time{}, err
			}
			if d.Converged() {
				return d.last, nil
			}
			return time.Time{}, fmt.Errorf("monitor: no convergence within %v (last activity %v): %w", timeout, d.last.Sub(sim.Epoch), ErrTimeout)
		}
		if err := k.RunFor(step); err != nil {
			return time.Time{}, err
		}
	}
}

// ProbeStats aggregates data-plane probe outcomes over an observation
// interval.
type ProbeStats struct {
	Sent, Delivered uint64
}

// Loss returns the loss fraction in [0, 1] (0 when nothing was sent).
func (s ProbeStats) Loss() float64 {
	if s.Sent == 0 {
		return 0
	}
	return 1 - float64(s.Delivered)/float64(s.Sent)
}

// FlowKey identifies a probe flow between two ASes.
type FlowKey struct {
	Src, Dst idr.ASN
}

// ProbeEngine injects probes on a schedule and matches deliveries,
// yielding per-flow loss statistics — the framework's "loss
// measurement" and "stable connectivity between all hosts" check.
type ProbeEngine struct {
	clock  sim.Clock
	nextID uint64
	// inject sends a probe from the source AS into the network.
	inject map[idr.ASN]func(frames.Probe) error

	pending map[uint64]FlowKey
	stats   map[FlowKey]*ProbeStats
}

// NewProbeEngine builds an engine on the clock.
func NewProbeEngine(clock sim.Clock) *ProbeEngine {
	return &ProbeEngine{
		clock:   clock,
		inject:  make(map[idr.ASN]func(frames.Probe) error),
		pending: make(map[uint64]FlowKey),
		stats:   make(map[FlowKey]*ProbeStats),
	}
}

// RegisterSource installs the injection function for probes sourced at
// an AS (wired by the experiment to the node's forwarding entry point).
func (e *ProbeEngine) RegisterSource(asn idr.ASN, inject func(frames.Probe) error) {
	e.inject[asn] = inject
}

// OnDelivered must be called (by node wiring) whenever a probe reaches
// a node originating the destination prefix.
func (e *ProbeEngine) OnDelivered(p frames.Probe) {
	key, ok := e.pending[p.ID]
	if !ok {
		return
	}
	delete(e.pending, p.ID)
	e.stats[key].Delivered++
}

// Send injects one probe from src toward dst's address.
func (e *ProbeEngine) Send(src, dst idr.ASN, srcAddr, dstAddr netip.Addr) error {
	inject, ok := e.inject[src]
	if !ok {
		return fmt.Errorf("monitor: no probe source registered for %v", src)
	}
	e.nextID++
	id := e.nextID
	key := FlowKey{Src: src, Dst: dst}
	if e.stats[key] == nil {
		e.stats[key] = &ProbeStats{}
	}
	e.stats[key].Sent++
	e.pending[id] = key
	return inject(frames.Probe{ID: id, Src: srcAddr, Dst: dstAddr, TTL: frames.DefaultTTL})
}

// Stats returns the accumulated per-flow statistics.
func (e *ProbeEngine) Stats() map[FlowKey]ProbeStats {
	out := make(map[FlowKey]ProbeStats, len(e.stats))
	for k, v := range e.stats {
		out[k] = *v
	}
	return out
}

// TotalLoss aggregates loss across all flows.
func (e *ProbeEngine) TotalLoss() ProbeStats {
	var total ProbeStats
	for _, v := range e.stats {
		total.Sent += v.Sent
		total.Delivered += v.Delivered
	}
	return total
}

// ResetStats clears accumulated statistics and forgets in-flight
// probes.
func (e *ProbeEngine) ResetStats() {
	e.pending = make(map[uint64]FlowKey)
	e.stats = make(map[FlowKey]*ProbeStats)
}

// WriteReport renders per-flow loss sorted by flow.
func (e *ProbeEngine) WriteReport(w io.Writer) error {
	keys := make([]FlowKey, 0, len(e.stats))
	for k := range e.stats {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Src != keys[j].Src {
			return keys[i].Src < keys[j].Src
		}
		return keys[i].Dst < keys[j].Dst
	})
	for _, k := range keys {
		s := e.stats[k]
		if _, err := fmt.Fprintf(w, "%v -> %v: sent=%d delivered=%d loss=%.1f%%\n",
			k.Src, k.Dst, s.Sent, s.Delivered, 100*s.Loss()); err != nil {
			return err
		}
	}
	return nil
}
