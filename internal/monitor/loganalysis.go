package monitor

import (
	"fmt"
	"io"
	"net/netip"
	"sort"
	"time"

	"repro/internal/bgp"
	"repro/internal/bgp/wire"
	"repro/internal/idr"
	"repro/internal/sim"
)

// EventLog accumulates router trace events for the framework's
// "automatic log file analysis" and "route change visualization".
type EventLog struct {
	events []bgp.TraceEvent
}

// NewEventLog returns an empty log.
func NewEventLog() *EventLog { return &EventLog{} }

// Append records one event (install as a bgp.Config.Trace hook,
// fan-in from all routers).
func (l *EventLog) Append(ev bgp.TraceEvent) { l.events = append(l.events, ev) }

// Len returns the number of recorded events.
func (l *EventLog) Len() int { return len(l.events) }

// Events returns the raw event slice.
func (l *EventLog) Events() []bgp.TraceEvent { return l.events }

// RouterSummary aggregates per-router activity.
type RouterSummary struct {
	Router                      idr.ASN
	UpdatesSent, UpdatesRecv    int
	BestChanges                 int
	StateChanges                int
	FirstActivity, LastActivity time.Time
}

// Summarize computes per-router summaries, sorted by ASN.
func (l *EventLog) Summarize() []RouterSummary {
	byRouter := make(map[idr.ASN]*RouterSummary)
	get := func(asn idr.ASN) *RouterSummary {
		s, ok := byRouter[asn]
		if !ok {
			s = &RouterSummary{Router: asn}
			byRouter[asn] = s
		}
		return s
	}
	for _, ev := range l.events {
		s := get(ev.Router)
		if s.FirstActivity.IsZero() || ev.Time.Before(s.FirstActivity) {
			s.FirstActivity = ev.Time
		}
		if ev.Time.After(s.LastActivity) {
			s.LastActivity = ev.Time
		}
		switch ev.Kind {
		case bgp.TraceSend:
			if ev.Msg != nil && ev.Msg.Type() == wire.MsgUpdate {
				s.UpdatesSent++
			}
		case bgp.TraceRecv:
			if ev.Msg != nil && ev.Msg.Type() == wire.MsgUpdate {
				s.UpdatesRecv++
			}
		case bgp.TraceBest:
			s.BestChanges++
		case bgp.TraceState:
			s.StateChanges++
		}
	}
	out := make([]RouterSummary, 0, len(byRouter))
	for _, s := range byRouter {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Router < out[j].Router })
	return out
}

// PathChange is one best-route transition at one router.
type PathChange struct {
	Time    time.Time
	Router  idr.ASN
	Prefix  netip.Prefix
	OldPath string // "" = none
	NewPath string // "" = none
}

// PathChanges extracts the best-route transitions for prefix in time
// order — the raw material of the route-change visualization and the
// path-exploration count of Oliveira et al. [13].
func (l *EventLog) PathChanges(prefix netip.Prefix) []PathChange {
	var out []PathChange
	for _, ev := range l.events {
		if ev.Kind != bgp.TraceBest || ev.Change == nil || ev.Change.Prefix != prefix {
			continue
		}
		pc := PathChange{Time: ev.Time, Router: ev.Router, Prefix: prefix}
		if ev.Change.Old != nil {
			pc.OldPath = ev.Change.Old.Attrs.ASPath.String()
			if ev.Change.Old.Local {
				pc.OldPath = "local"
			}
		}
		if ev.Change.New != nil {
			pc.NewPath = ev.Change.New.Attrs.ASPath.String()
			if ev.Change.New.Local {
				pc.NewPath = "local"
			}
		}
		out = append(out, pc)
	}
	return out
}

// PathExplorationCount returns, per router, how many distinct best
// paths it tried for prefix after start (the path exploration metric).
func (l *EventLog) PathExplorationCount(prefix netip.Prefix, start time.Time) map[idr.ASN]int {
	return l.PathExplorationCountBetween(prefix, start, time.Time{})
}

// PathExplorationCountBetween is the windowed form of
// PathExplorationCount: it counts best-path transitions for prefix in
// [start, end). A zero end leaves the window open-ended — the
// per-epoch workload instrumentation windows each scheduled event's
// exploration between its trigger and the next.
func (l *EventLog) PathExplorationCountBetween(prefix netip.Prefix, start, end time.Time) map[idr.ASN]int {
	out := make(map[idr.ASN]int)
	for _, pc := range l.PathChanges(prefix) {
		if pc.Time.Before(start) {
			continue
		}
		if !end.IsZero() && !pc.Time.Before(end) {
			continue
		}
		out[pc.Router]++
	}
	return out
}

// WriteTimeline renders the route-change timeline for prefix as
// aligned text, one line per transition.
func (l *EventLog) WriteTimeline(w io.Writer, prefix netip.Prefix) error {
	for _, pc := range l.PathChanges(prefix) {
		old, new_ := pc.OldPath, pc.NewPath
		if old == "" {
			old = "(none)"
		}
		if new_ == "" {
			new_ = "(none)"
		}
		if _, err := fmt.Fprintf(w, "%10.3fs %8s %v: [%s] -> [%s]\n",
			pc.Time.Sub(sim.Epoch).Seconds(), pc.Router, prefix, old, new_); err != nil {
			return err
		}
	}
	return nil
}

// RouteProvider exposes the current best path for a prefix (both
// bgp.Router tables and the experiment's cluster view implement this
// shape via closures).
type RouteProvider func(prefix netip.Prefix) (asPath wire.ASPath, ok bool)

// WriteForwardingDOT renders the current forwarding tree toward prefix
// as a DOT digraph: an edge from each AS to the first AS on its best
// path. providers maps each AS to its route view.
func WriteForwardingDOT(w io.Writer, prefix netip.Prefix, providers map[idr.ASN]RouteProvider) error {
	asns := make([]idr.ASN, 0, len(providers))
	for a := range providers {
		asns = append(asns, a)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	if _, err := fmt.Fprintf(w, "digraph %q {\n", "routes_"+prefix.String()); err != nil {
		return err
	}
	for _, asn := range asns {
		path, ok := providers[asn](prefix)
		if !ok {
			fmt.Fprintf(w, "  %q [style=dashed]; // no route\n", asn.String())
			continue
		}
		if first, has := path.First(); has {
			fmt.Fprintf(w, "  %q -> %q;\n", asn.String(), first.String())
		} else {
			fmt.Fprintf(w, "  %q [shape=doublecircle]; // origin\n", asn.String())
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
