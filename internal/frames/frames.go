// Package frames defines the link-layer framing used on every emulated
// link: a one-byte kind discriminator in front of the payload. Three
// traffic classes share the links, as in the paper's experiments:
//
//   - BGP control-plane messages (RFC 4271 frames),
//   - OpenFlow-like switch-controller control traffic,
//   - data-plane probe packets (the framework's ping-equivalent for
//     connectivity/loss measurement).
package frames

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Kind discriminates the traffic class of a frame.
type Kind uint8

// Frame kinds.
const (
	KindBGP      Kind = 1
	KindOpenFlow Kind = 2
	KindProbe    Kind = 3
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindBGP:
		return "bgp"
	case KindOpenFlow:
		return "openflow"
	case KindProbe:
		return "probe"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Encode prepends the kind byte to payload.
func Encode(kind Kind, payload []byte) []byte {
	out := make([]byte, 1+len(payload))
	out[0] = byte(kind)
	copy(out[1:], payload)
	return out
}

// Decode splits a frame into kind and payload.
func Decode(frame []byte) (Kind, []byte, error) {
	if len(frame) < 1 {
		return 0, nil, fmt.Errorf("frames: empty frame")
	}
	k := Kind(frame[0])
	switch k {
	case KindBGP, KindOpenFlow, KindProbe:
		return k, frame[1:], nil
	default:
		return 0, nil, fmt.Errorf("frames: unknown kind %d", frame[0])
	}
}

// Probe is the data-plane test packet: the framework's stand-in for
// the ping/video traffic the paper uses to verify end-to-end
// connectivity. Probes are forwarded hop by hop using each node's
// current forwarding state (Loc-RIB or flow table), so blackholes and
// loops during convergence show up as probe loss.
type Probe struct {
	// ID correlates the probe at the receiver with its send record.
	ID uint64
	// Src and Dst are host addresses inside origin prefixes.
	Src, Dst netip.Addr
	// TTL guards against forwarding loops.
	TTL uint8
}

// DefaultTTL is the initial probe TTL (generous for AS-level paths).
const DefaultTTL = 64

const probeLen = 8 + 4 + 4 + 1

// EncodeProbe serialises a probe.
func EncodeProbe(p Probe) ([]byte, error) {
	if !p.Src.Is4() || !p.Dst.Is4() {
		return nil, fmt.Errorf("frames: probe addresses must be IPv4 (src=%v dst=%v)", p.Src, p.Dst)
	}
	out := make([]byte, probeLen)
	binary.BigEndian.PutUint64(out, p.ID)
	src, dst := p.Src.As4(), p.Dst.As4()
	copy(out[8:], src[:])
	copy(out[12:], dst[:])
	out[16] = p.TTL
	return out, nil
}

// DecodeProbe parses a probe payload.
func DecodeProbe(b []byte) (Probe, error) {
	if len(b) != probeLen {
		return Probe{}, fmt.Errorf("frames: probe payload %d bytes, want %d", len(b), probeLen)
	}
	var src, dst [4]byte
	copy(src[:], b[8:12])
	copy(dst[:], b[12:16])
	return Probe{
		ID:  binary.BigEndian.Uint64(b),
		Src: netip.AddrFrom4(src),
		Dst: netip.AddrFrom4(dst),
		TTL: b[16],
	}, nil
}
