package frames

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestEncodeDecode(t *testing.T) {
	for _, k := range []Kind{KindBGP, KindOpenFlow, KindProbe} {
		frame := Encode(k, []byte("payload"))
		kind, payload, err := Decode(frame)
		if err != nil {
			t.Fatal(err)
		}
		if kind != k || string(payload) != "payload" {
			t.Fatalf("round trip: kind=%v payload=%q", kind, payload)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Fatal("empty frame should fail")
	}
	if _, _, err := Decode([]byte{99, 1, 2}); err == nil {
		t.Fatal("unknown kind should fail")
	}
}

func TestKindString(t *testing.T) {
	if KindBGP.String() != "bgp" || KindProbe.String() != "probe" ||
		KindOpenFlow.String() != "openflow" || Kind(9).String() == "" {
		t.Fatal("Kind.String wrong")
	}
}

func TestProbeRoundTrip(t *testing.T) {
	in := Probe{
		ID:  123456789,
		Src: netip.MustParseAddr("10.0.1.10"),
		Dst: netip.MustParseAddr("10.0.7.10"),
		TTL: DefaultTTL,
	}
	b, err := EncodeProbe(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeProbe(b)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v -> %+v", in, out)
	}
}

func TestProbeErrors(t *testing.T) {
	if _, err := EncodeProbe(Probe{Src: netip.MustParseAddr("::1"), Dst: netip.MustParseAddr("10.0.0.1")}); err == nil {
		t.Fatal("IPv6 src should fail")
	}
	if _, err := DecodeProbe([]byte{1, 2, 3}); err == nil {
		t.Fatal("short payload should fail")
	}
}

// Property: probe encoding round-trips for arbitrary fields.
func TestPropertyProbeRoundTrip(t *testing.T) {
	f := func(id uint64, src, dst [4]byte, ttl uint8) bool {
		in := Probe{ID: id, Src: netip.AddrFrom4(src), Dst: netip.AddrFrom4(dst), TTL: ttl}
		b, err := EncodeProbe(in)
		if err != nil {
			return false
		}
		out, err := DecodeProbe(b)
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
