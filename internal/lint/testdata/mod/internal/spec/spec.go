// Package spec is a canonical-completeness fixture: Spec stands in
// for lab.Trial/lab.Sweep, canonical.go for the cache-key encoder.
package spec

// Nested is reachable from Spec through a field, so its own fields
// fall under the contract too.
type Nested struct {
	// Kept is serialized by the encoder (not flagged).
	Kept int
	// Dropped is neither serialized nor excluded — by either contract.
	Dropped int // want "in canonical.go" "in snapkey.go"
}

// List is a named slice: the contract recurses through it, so Item
// falls under the watch set even though no field has type Item.
type List []Item

// Item is reachable only through the named List slice.
type Item struct {
	// Val is serialized by both encoders (not flagged).
	Val int
	// Lost is neither serialized nor excluded — by either contract.
	Lost int // want "in canonical.go" "in snapkey.go"
}

// Opaque is excluded wholesale via the type-exclusion list; its
// fields are never individually watched.
type Opaque struct {
	// Hidden needs no serialization: the whole type is excluded.
	Hidden int
}

// Spec is the fixture root struct.
type Spec struct {
	// A is serialized by the encoder (not flagged).
	A int
	// B is the dummy result-affecting field nobody serialized.
	B int // want "in canonical.go" "in snapkey.go"
	// Skipped is deliberately excluded with a reason (not flagged).
	Skipped int
	// Both is serialized AND excluded — a stale exclusion entry.
	Both int // want "canonical"
	// Ann is unserialized but annotated in the source (suppressed).
	//lint:canonical fixture: observation-only knob
	Ann int
	// N pulls Nested into the watched set.
	N Nested
	// L pulls Item into the watched set through the named slice.
	L List
	// O stops the recursion at the excluded type.
	O *Opaque
}
