// The second encoder file: fixtureSnapshotKey covers the same Spec
// root through this file, standing in for lab's WarmupKey(). It reads
// Spec.A and Nested.Kept only — Spec.B and Nested.Dropped fire under
// this contract too, Spec.Both is excluded here (not stale, unlike the
// canonical contract), and the want on the package clause is the
// stale snapshot-key exclusion finding.
package spec // want "Spec.SnapGone"

import "fmt"

// SnapKey renders the snapshot-key subset of Spec.
func SnapKey(s Spec) string {
	return fmt.Sprint(s.A, s.N.Kept, s.L[0].Val, s.O)
}
