// The fixture encoder file: it reads Spec.A, Spec.Both and
// Nested.Kept, and nothing else. The two wants on the package clause
// are the stale-exclusion findings, which anchor on this file.
package spec // want "Spec.Gone" "Unknown"

import "fmt"

// Canonical renders the serialized subset of Spec. It reads s.O, but
// the excluded Opaque type keeps Opaque.Hidden out of the watch set.
func Canonical(s Spec) string {
	return fmt.Sprint(s.A, s.Both, s.N.Kept, s.L[0].Val, s.O)
}
