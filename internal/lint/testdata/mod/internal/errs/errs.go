// Package errs is an errcheck-analyzer fixture.
package errs

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

// Drop discards an error result.
func Drop() {
	os.Remove("x") // want "errcheck"
}

// DropAnnotated documents why the drop is safe (suppressed).
func DropAnnotated() {
	//lint:errcheck fixture: best-effort cleanup on an error path
	os.Remove("x")
}

// Checked returns the error (not flagged).
func Checked() error {
	return os.Remove("x")
}

// Buffered writes through never-failing writers and the fmt print
// family (not flagged).
func Buffered(b *bytes.Buffer, sb *strings.Builder) {
	b.WriteString("ok")
	sb.WriteString("ok")
	fmt.Fprintf(b, "%d", 1)
	fmt.Println("ok")
}

// DeferredDrop discards a deferred Close on a writable file.
func DeferredDrop() error {
	f, err := os.Create("x")
	if err != nil {
		return err
	}
	defer f.Close() // want "errcheck"
	_, err = f.Write([]byte("y"))
	return err
}

// SpawnedDrop discards an error inside a go statement.
func SpawnedDrop() {
	go os.Remove("x") // want "errcheck"
}
