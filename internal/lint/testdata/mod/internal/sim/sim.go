// Package sim is a determinism-analyzer fixture: the want comments
// mark the sites that must fire, the //lint: annotations mark the
// sites that must stay silent.
package sim

import (
	"math/rand"
	"sort"
	"time"
)

// Keys is the plain collect-then-sort extraction (not flagged).
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FilteredKeys collects behind a pure filter with a continue and an
// if/else branch (not flagged — the generalized idiom).
func FilteredKeys(m map[string]int) []string {
	var out []string
	for k, v := range m {
		if v == 0 {
			continue
		}
		if v > 0 {
			out = append(out, k)
		} else {
			out = append(out, k+"!")
		}
	}
	sort.Strings(out)
	return out
}

// Sum accumulates integers commutatively (not flagged).
func Sum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Copy writes through the distinct range key (not flagged).
func Copy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Leak returns map keys in randomized order: collected but never
// sorted.
func Leak(m map[string]int) []string {
	var out []string
	for k := range m { // want "maporder"
		out = append(out, k)
	}
	return out
}

// MeanDrift accumulates floats, where summation order changes the
// rounding (flagged by design).
func MeanDrift(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want "maporder"
		total += v
	}
	return total
}

// First picks an arbitrary element at an annotated site (suppressed).
func First(m map[string]int) string {
	//lint:maporder fixture: any element yields the same downstream verdict
	for k := range m {
		return k
	}
	return ""
}

// Bogus carries a reason-less marker: the marker itself is flagged and
// it suppresses nothing.
func Bogus(m map[string]int) string {
	// want-below "annotation"
	//lint:maporder
	for k := range m { // want "maporder"
		return k
	}
	return ""
}

// Draw uses the process-global generator.
func Draw() int {
	return rand.Int() // want "globalrand"
}

// DrawSeeded draws from a seeded stream (not flagged), built by the
// constructor the invariant wants (also not flagged).
func DrawSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Int()
}

// Stamp reads the wall clock inside the simulation scope.
func Stamp() time.Time {
	return time.Now() // want "walltime"
}

// Budget reads the wall clock at an annotated wall-budget site
// (suppressed).
func Budget() time.Time {
	//lint:walltime fixture: wall budget measures real runtime by design
	return time.Now()
}

//lint:sortorder the check key does not exist // want "annotation"
var _ = Keys
