// Package lab is a doc-analyzer fixture (the directory name puts it
// in the analyzer's evaluation-layer scope). The want markers sit a
// blank line away from their targets because an adjacent comment
// would itself count as documentation.
package lab

// Documented carries a doc comment (not flagged).
type Documented struct {
	// Field carries a doc comment (not flagged).
	Field int

	Inline int // a trailing comment counts as documentation (not flagged)

	// want-below:2 "doc"

	Bare int
}

// want-below:2 "doc"

type Naked struct{}

// DocumentedFunc carries a doc comment (not flagged).
func DocumentedFunc() {}

// want-below:2 "doc"

func Undocumented() {}

func Suppressed() {} //lint:doc fixture: the name is self-describing

// unexported symbols are out of scope (not flagged).
func unexported() {}
