package lint

import (
	"fmt"
	"go/ast"
)

// docScope lists the evaluation-layer package directories whose
// exported API must be documented — the same set the former
// TestExportedSymbolsDocumented covered (this analyzer is its
// migration into the one lint engine).
var docScope = []string{
	"internal/lab",
	"internal/policy",
	"internal/figures",
	"internal/experiment",
	"internal/scenario",
	"internal/artifact",
	"internal/lint",
	"internal/benchfmt",
	"internal/labd",
	"cmd/labd",
	"cmd/labctl",
}

// DocAnalyzer checks that every exported top-level type, function,
// method, constant, variable and struct field in the evaluation-layer
// packages carries a doc comment — the container-local stand-in for a
// `revive exported` step (no third-party linters in the image).
func DocAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "doc",
		Doc:  "exported symbols in the evaluation-layer packages carry doc comments",
		Run:  runDoc,
	}
}

// runDoc scans one package for undocumented exported symbols.
func runDoc(prog *Program, pkg *Package) []Diagnostic {
	inScope := false
	for _, p := range docScope {
		if pkg.Dir == p {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	var diags []Diagnostic
	report := func(n ast.Node, what string) {
		diags = append(diags, Diagnostic{
			Pos:     prog.Position(n.Pos()),
			Check:   CheckDoc,
			Message: fmt.Sprintf("exported %s has no doc comment", what),
		})
	}
	for _, f := range pkg.Files {
		for _, decl := range f.AST.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					report(d, "func "+d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(s, "type "+s.Name.Name)
						}
						if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
							for _, field := range st.Fields.List {
								for _, name := range field.Names {
									if name.IsExported() && field.Doc == nil && field.Comment == nil {
										report(name, "field "+s.Name.Name+"."+name.Name)
									}
								}
							}
						}
					case *ast.ValueSpec:
						for _, name := range s.Names {
							if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								report(name, "value "+name.Name)
							}
						}
					}
				}
			}
		}
	}
	return diags
}
