package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// File is one parsed source file with its suppression annotations.
type File struct {
	// Name is the file path relative to the module root.
	Name string
	// AST is the parsed file (comments included).
	AST *ast.File
	// Annotations holds the file's //lint: markers, keyed by line.
	Annotations map[int][]Annotation
}

// Package is one loaded, type-checked module package.
type Package struct {
	// Path is the package import path (module path + directory).
	Path string
	// Dir is the package directory relative to the module root.
	Dir string
	// Files holds the package's non-test sources, sorted by name.
	Files []*File
	// Types is the type-checked package.
	Types *types.Package
	// Info is the type-checker's expression/object tables.
	Info *types.Info
}

// Program is a loaded module: every package, type-checked against one
// shared file set, in deterministic (import-path) order.
type Program struct {
	// Root is the absolute module root directory.
	Root string
	// ModulePath is the module path from go.mod.
	ModulePath string
	// Fset positions every loaded file.
	Fset *token.FileSet
	// Packages holds all module packages, sorted by import path.
	Packages []*Package
}

// Lookup returns the loaded package with the given import path.
func (p *Program) Lookup(path string) *Package {
	for _, pkg := range p.Packages {
		if pkg.Path == path {
			return pkg
		}
	}
	return nil
}

// Position renders pos relative to the module root (stable output
// regardless of the invocation directory).
func (p *Program) Position(pos token.Pos) token.Position {
	position := p.Fset.Position(pos)
	if rel, err := filepath.Rel(p.Root, position.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		position.Filename = rel
	}
	return position
}

// FindModuleRoot walks up from dir to the directory holding go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// skipDir names directories the loader never descends into.
func skipDir(name string) bool {
	return name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// Load parses and type-checks every non-test package under the module
// rooted at dir (or the nearest go.mod above it). It uses only the
// standard library: module packages are type-checked from source in
// dependency order, standard-library imports resolve through the
// source importer.
func Load(dir string) (*Program, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	prog := &Program{Root: root, ModulePath: mod, Fset: token.NewFileSet()}

	// Collect every directory holding at least one non-test .go file.
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dirs = append(dirs, filepath.Dir(path))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	dirs = dedupe(dirs)

	// Parse each directory into a pre-typecheck package shell.
	type shell struct {
		pkg     *Package
		imports []string
	}
	shells := map[string]*shell{}
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, err
		}
		path := mod
		if rel != "." {
			path = mod + "/" + filepath.ToSlash(rel)
		}
		pkg := &Package{Path: path, Dir: rel}
		sh := &shell{pkg: pkg}
		entries, err := os.ReadDir(d)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			full := filepath.Join(d, e.Name())
			f, err := parser.ParseFile(prog.Fset, full, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			name := filepath.ToSlash(filepath.Join(rel, e.Name()))
			if rel == "." {
				name = e.Name()
			}
			pkg.Files = append(pkg.Files, &File{Name: name, AST: f, Annotations: fileAnnotations(prog.Fset, f)})
			for _, imp := range f.Imports {
				sh.imports = append(sh.imports, strings.Trim(imp.Path.Value, `"`))
			}
		}
		if len(pkg.Files) > 0 {
			shells[path] = sh
		}
	}

	// Type-check in dependency order: module imports first.
	src := importer.ForCompiler(prog.Fset, "source", nil)
	checked := map[string]*types.Package{}
	imp := &programImporter{src: src, checked: checked}
	var order []string
	for path := range shells {
		order = append(order, path)
	}
	sort.Strings(order)
	done := map[string]bool{}
	var visit func(path string, stack []string) error
	visit = func(path string, stack []string) error {
		if done[path] {
			return nil
		}
		for _, s := range stack {
			if s == path {
				return fmt.Errorf("lint: import cycle through %s", path)
			}
		}
		sh := shells[path]
		for _, dep := range sh.imports {
			if _, ok := shells[dep]; ok {
				if err := visit(dep, append(stack, path)); err != nil {
					return err
				}
			}
		}
		done[path] = true
		pkg := sh.pkg
		pkg.Info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{Importer: imp}
		files := make([]*ast.File, len(pkg.Files))
		for i, f := range pkg.Files {
			files[i] = f.AST
		}
		tpkg, err := conf.Check(path, prog.Fset, files, pkg.Info)
		if err != nil {
			return fmt.Errorf("lint: type-checking %s: %w", path, err)
		}
		pkg.Types = tpkg
		checked[path] = tpkg
		prog.Packages = append(prog.Packages, pkg)
		return nil
	}
	for _, path := range order {
		if err := visit(path, nil); err != nil {
			return nil, err
		}
	}
	sort.Slice(prog.Packages, func(i, j int) bool { return prog.Packages[i].Path < prog.Packages[j].Path })
	return prog, nil
}

// programImporter resolves module packages from the already-checked
// set and everything else (the standard library) from source.
type programImporter struct {
	src     types.Importer
	checked map[string]*types.Package
}

// Import implements types.Importer.
func (i *programImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := i.checked[path]; ok {
		return pkg, nil
	}
	return i.src.Import(path)
}

// dedupe removes adjacent duplicates from a sorted slice.
func dedupe(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || s[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}
