// Package lint is the repository's zero-dependency static-analysis
// suite (stdlib go/ast + go/types only), mechanizing the invariants
// the reproduction's scientific claims rest on: seeded determinism,
// the Canonical() cache-invalidation contract, zero-alloc hot paths,
// handled errors, and a documented evaluation API. cmd/repolint is
// the CLI; TestRepoLintClean runs the same suite as a tier-1 test.
//
// A finding at a genuinely-safe site is suppressed in the source with
// an annotation naming the reason:
//
//	//lint:<check> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory — a bare marker is itself a finding — so every exemption
// documents why the invariant holds anyway.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Check keys: every diagnostic carries the key that a //lint:<check>
// annotation must name to suppress it.
const (
	// CheckMapOrder flags iteration over a map with result-visible,
	// order-sensitive side effects.
	CheckMapOrder = "maporder"
	// CheckGlobalRand flags the process-global math/rand functions
	// (seeded determinism requires a *rand.Rand stream).
	CheckGlobalRand = "globalrand"
	// CheckWallTime flags wall-clock reads (time.Now / time.Since /
	// time.Until) inside the simulation packages.
	CheckWallTime = "walltime"
	// CheckCanonical flags Trial/Sweep fields neither serialized by
	// Canonical() nor excluded, and stale exclusion entries.
	CheckCanonical = "canonical"
	// CheckEscape flags new heap-escape diagnostics inside the
	// declared zero-alloc hot functions.
	CheckEscape = "escape"
	// CheckErrcheck flags dropped error returns.
	CheckErrcheck = "errcheck"
	// CheckDoc flags undocumented exported symbols in the
	// evaluation-layer packages.
	CheckDoc = "doc"
	// CheckAnnotation flags malformed //lint: markers (unknown check
	// key or missing reason). It is not itself suppressible.
	CheckAnnotation = "annotation"
)

// knownChecks is the set of valid annotation keys.
var knownChecks = map[string]bool{
	CheckMapOrder:   true,
	CheckGlobalRand: true,
	CheckWallTime:   true,
	CheckCanonical:  true,
	CheckEscape:     true,
	CheckErrcheck:   true,
	CheckDoc:        true,
}

// Annotation is one parsed //lint:<check> <reason> marker.
type Annotation struct {
	// Check is the check key the marker suppresses.
	Check string
	// Reason is the mandatory justification text.
	Reason string
	// Line is the marker's source line.
	Line int
}

// annotationRe matches a //lint: marker line.
var annotationRe = regexp.MustCompile(`^//lint:(\S+)[ \t]*(.*)$`)

// fileAnnotations collects the //lint: markers of a parsed file,
// keyed by line number.
func fileAnnotations(fset *token.FileSet, f *ast.File) map[int][]Annotation {
	out := map[int][]Annotation{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := annotationRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			line := fset.Position(c.Pos()).Line
			out[line] = append(out[line], Annotation{
				Check:  m[1],
				Reason: strings.TrimSpace(m[2]),
				Line:   line,
			})
		}
	}
	return out
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding (filename relative to the module root).
	Pos token.Position
	// Check is the suppression key (see the Check constants).
	Check string
	// Message states the violated invariant at this site.
	Message string
}

// String renders the diagnostic in the conventional file:line:col
// form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Analyzer is one named invariant checker. Exactly one of Run and
// RunProgram is set: Run is invoked once per loaded package,
// RunProgram once for the whole module (the cross-package checks).
type Analyzer struct {
	// Name is the analyzer's registry name (repolint -only/-skip).
	Name string
	// Doc is the one-line description shown by repolint -list.
	Doc string
	// Run analyzes one package.
	Run func(prog *Program, pkg *Package) []Diagnostic
	// RunProgram analyzes the whole module.
	RunProgram func(prog *Program) ([]Diagnostic, error)
}

// Analyzers returns the full suite in execution order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer(),
		CanonicalAnalyzer(),
		SnapshotKeyAnalyzer(),
		ZeroAllocAnalyzer(),
		ErrcheckAnalyzer(),
		DocAnalyzer(),
	}
}

// RunAnalyzers executes the given analyzers over the program and
// returns the surviving (unsuppressed) diagnostics, sorted by
// position, plus one diagnostic per malformed annotation.
func RunAnalyzers(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.RunProgram != nil {
			ds, err := a.RunProgram(prog)
			if err != nil {
				return nil, fmt.Errorf("lint: %s: %w", a.Name, err)
			}
			diags = append(diags, ds...)
			continue
		}
		for _, pkg := range prog.Packages {
			diags = append(diags, a.Run(prog, pkg)...)
		}
	}
	diags = suppress(prog, diags)
	diags = append(diags, checkAnnotations(prog)...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags, nil
}

// suppress drops diagnostics covered by a matching, well-formed
// annotation on the same line or the line directly above.
func suppress(prog *Program, diags []Diagnostic) []Diagnostic {
	byFile := map[string]map[int][]Annotation{}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			byFile[f.Name] = f.Annotations
		}
	}
	out := diags[:0]
	for _, d := range diags {
		if !suppressed(byFile[d.Pos.Filename], d) {
			out = append(out, d)
		}
	}
	return out
}

// suppressed reports whether d is covered by an annotation.
func suppressed(anns map[int][]Annotation, d Diagnostic) bool {
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, a := range anns[line] {
			if a.Check == d.Check && a.Reason != "" {
				return true
			}
		}
	}
	return false
}

// checkAnnotations flags malformed markers: an unknown check key or a
// missing reason. These are never suppressible — a bare marker would
// otherwise silently disable a real check.
func checkAnnotations(prog *Program) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, anns := range f.Annotations {
				for _, a := range anns {
					switch {
					case !knownChecks[a.Check]:
						out = append(out, Diagnostic{
							Pos:     token.Position{Filename: f.Name, Line: a.Line, Column: 1},
							Check:   CheckAnnotation,
							Message: fmt.Sprintf("unknown lint check %q (known: maporder, globalrand, walltime, canonical, escape, errcheck, doc)", a.Check),
						})
					case a.Reason == "":
						out = append(out, Diagnostic{
							Pos:     token.Position{Filename: f.Name, Line: a.Line, Column: 1},
							Check:   CheckAnnotation,
							Message: fmt.Sprintf("//lint:%s marker without a reason — name why the site is safe", a.Check),
						})
					}
				}
			}
		}
	}
	return out
}
