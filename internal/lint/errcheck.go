package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ErrcheckAnalyzer flags calls whose error result is silently
// discarded (an expression statement, or a defer/go statement) in
// non-test code. A failure the caller never sees is how a lossy write
// or a half-torn-down emulation masquerades as a clean run. Sites
// where dropping the error is genuinely correct carry a
// //lint:errcheck annotation naming the reason.
//
// Two stdlib receivers are allowed without annotation because their
// Write methods are documented to never return an error:
// *bytes.Buffer and *strings.Builder. The fmt print family
// (Print/Printf/Println and their Fprint variants) is also allowed —
// that is the "lite" in errcheck-lite: formatted output is treated as
// best-effort rendering, and a genuinely lossy sink still surfaces at
// the Close/Flush/Write call the analyzer does flag.
func ErrcheckAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "errcheck",
		Doc:  "dropped error returns in non-test code",
		Run:  runErrcheck,
	}
}

// runErrcheck scans one package for discarded error results.
func runErrcheck(prog *Program, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	check := func(call *ast.CallExpr, how string) {
		if d, ok := droppedError(prog, pkg, call, how); ok {
			diags = append(diags, d)
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					check(call, "call")
				}
			case *ast.DeferStmt:
				check(n.Call, "deferred call")
			case *ast.GoStmt:
				check(n.Call, "goroutine call")
			}
			return true
		})
	}
	return diags
}

// droppedError reports a call whose error result is discarded.
func droppedError(prog *Program, pkg *Package, call *ast.CallExpr, how string) (Diagnostic, bool) {
	tv, ok := pkg.Info.Types[call]
	if !ok {
		return Diagnostic{}, false
	}
	if !returnsError(tv.Type) {
		return Diagnostic{}, false
	}
	if allowedErrorDrop(pkg, call) {
		return Diagnostic{}, false
	}
	name := calleeName(pkg, call)
	return Diagnostic{
		Pos:     prog.Position(call.Pos()),
		Check:   CheckErrcheck,
		Message: fmt.Sprintf("%s to %s drops its error result; handle it or annotate why it cannot matter", how, name),
	}, true
}

// returnsError reports whether a call result type carries an error
// (the single result, or the last of a tuple).
func returnsError(t types.Type) bool {
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(tuple.Len() - 1).Type()
	}
	return types.AssignableTo(t, types.Universe.Lookup("error").Type())
}

// allowedErrorDrop is the small builtin allowlist: never-failing
// stdlib writers and stdout prints.
func allowedErrorDrop(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil {
		switch recv.Type().String() {
		case "*bytes.Buffer", "*strings.Builder":
			return true
		}
		return false
	}
	if fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	}
	return false
}

// calleeName renders the callee for the message ("pkg.Func" or
// "Type.Method").
func calleeName(pkg *Package, call *ast.CallExpr) string {
	fn := calleeFunc(pkg, call)
	if fn == nil {
		return "function"
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return pathBase(fn.Pkg().Path()) + "." + fn.Name()
	}
	return fn.Name()
}
