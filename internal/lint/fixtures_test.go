package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// fixtureCanonical parameterizes the canonical analyzer for the
// fixture module under testdata/mod: Spec.B is the unlisted dummy
// field that must be caught, Spec.Both and the Gone/Unknown entries
// exercise the stale-exclusion findings.
var fixtureCanonical = CanonicalConfig{
	Package: "fixture/internal/spec",
	Roots:   []string{"Spec"},
	File:    "canonical.go",
	ExcludeFields: map[string]string{
		"Spec.Skipped": "fixture: deliberately excluded",
		"Spec.Both":    "fixture: stale — the encoder also reads it",
		"Spec.Gone":    "fixture: matches no field",
	},
	ExcludeTypes: map[string]string{
		"Opaque":  "fixture: serialized wholesale",
		"Unknown": "fixture: matches no struct",
	},
}

// fixtureSnapshotKey is the second contract over the same fixture
// root, standing in for the snapshot-key contract: a different encoder
// file (snapkey.go), its own exclusions (Spec.Both is legitimately
// excluded here while stale under fixtureCanonical), and its own
// stale-exclusion finding (Spec.SnapGone).
var fixtureSnapshotKey = CanonicalConfig{
	Package: "fixture/internal/spec",
	Roots:   []string{"Spec"},
	File:    "snapkey.go",
	Encoder: "SnapKey()",
	ExcludeFields: map[string]string{
		"Spec.Skipped":  "fixture: deliberately excluded",
		"Spec.Both":     "fixture: excluded from the snapshot key only",
		"Spec.SnapGone": "fixture: matches no field",
	},
	ExcludeTypes: map[string]string{
		"Opaque": "fixture: serialized wholesale",
	},
}

// markerRe matches a want marker; quoteRe pulls the expected
// substrings out of its tail. `// want "x"` expects a diagnostic on
// the same line, `// want-below "x"` on the next line, and
// `// want-below:N "x"` N lines down (for sites where an adjacent
// comment would change the analyzed code, e.g. doc comments).
var (
	markerRe = regexp.MustCompile(`// want(-below(?::(\d+))?)? (.+)$`)
	quoteRe  = regexp.MustCompile(`"([^"]*)"`)
)

// TestFixtures runs the source-level analyzers over the fixture
// module and checks every finding against the want markers: each
// marker must match a diagnostic on its line, and no diagnostic may
// be unaccounted for (which is what proves the //lint: suppressions
// in the fixtures actually suppress).
func TestFixtures(t *testing.T) {
	prog, err := Load(filepath.Join("testdata", "mod"))
	if err != nil {
		t.Fatal(err)
	}
	analyzers := []*Analyzer{
		DeterminismAnalyzer(),
		CanonicalAnalyzerWith(fixtureCanonical),
		CanonicalAnalyzerWith(fixtureSnapshotKey),
		ErrcheckAnalyzer(),
		DocAnalyzer(),
	}
	diags, err := RunAnalyzers(prog, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("fixture run produced no diagnostics at all")
	}

	type site struct {
		file string
		line int
	}
	wants := map[site][]string{}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			data, err := os.ReadFile(filepath.Join(prog.Root, f.Name))
			if err != nil {
				t.Fatal(err)
			}
			for i, text := range strings.Split(string(data), "\n") {
				m := markerRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				line := i + 1
				if m[1] != "" {
					off := 1
					if m[2] != "" {
						off, _ = strconv.Atoi(m[2])
					}
					line += off
				}
				for _, q := range quoteRe.FindAllStringSubmatch(m[3], -1) {
					s := site{f.Name, line}
					wants[s] = append(wants[s], q[1])
				}
			}
		}
	}

	for _, d := range diags {
		s := site{d.Pos.Filename, d.Pos.Line}
		text := d.Check + ": " + d.Message
		idx := -1
		for i, w := range wants[s] {
			if w != "" && strings.Contains(text, w) {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		wants[s][idx] = ""
	}
	for s, ws := range wants {
		for _, w := range ws {
			if w != "" {
				t.Errorf("%s:%d: want a diagnostic matching %q, got none", s.file, s.line, w)
			}
		}
	}
}
