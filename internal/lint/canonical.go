package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// CanonicalConfig parameterizes the canonical-completeness check: the
// package holding the spec structs, the root struct names, the file
// holding the canonical encoders, and the explicit exclusion lists.
type CanonicalConfig struct {
	// Package is the import path of the spec package.
	Package string
	// Roots names the root spec structs (every struct reachable from
	// them through fields is covered too).
	Roots []string
	// File is the base name of the file holding the canonical
	// encoders; a field counts as serialized when that file reads it.
	File string
	// ExcludeFields maps "Type.Field" to the reason the field is
	// deliberately NOT part of the canonical serialization.
	ExcludeFields map[string]string
	// ExcludeTypes maps a struct type name to the reason its fields
	// are covered wholesale (e.g. serialized via String()), stopping
	// the per-field recursion there.
	ExcludeTypes map[string]string
	// Encoder names the encoding function in diagnostics (default
	// "Canonical()").
	Encoder string
}

// CanonicalContract is the repository's configuration: every
// result-affecting lab.Trial / lab.Sweep field must be serialized by
// Canonical() in canonical.go or listed here with the reason it
// cannot change a successful result. Adding a struct field without
// serializing or excluding it fails the build — that is the artifact
// store's cache-invalidation contract (a field the address ignores
// would silently serve stale cells).
var CanonicalContract = CanonicalConfig{
	Package: "repro/internal/lab",
	Roots:   []string{"Trial", "Sweep"},
	File:    "canonical.go",
	ExcludeFields: map[string]string{
		// Trial.Seed and Trial.TopoSeed are derived per (cell, run)
		// from the serialized BaseSeed + SeedPolicy, so the sweep
		// fields cover them.
		"Trial.Seed":     "derived from the serialized Sweep.BaseSeed via SeedPolicy",
		"Trial.TopoSeed": "pinned to the serialized Sweep.BaseSeed by Sweep.trialFor",
		// Execution guards and knobs: they can fail or reschedule a
		// run but never change a successful result.
		"Trial.WallLimit":    "wall-clock guard; can only turn a run into a failure",
		"Trial.Tuning":       "hot-path execution knobs; every setting is pinned byte-identical by the equivalence suite",
		"Sweep.Name":         "presentation label, echoed in output only",
		"Sweep.Parallelism":  "execution knob; results are identical at any parallelism",
		"Sweep.Progress":     "progress callback, observation only",
		"Sweep.Cache":        "cache hook; a hit is bit-identical to the run it replaces",
		"Sweep.Snapshots":    "warm-up cache hook; a restored warm-up is byte-identical to a fresh one",
		"Sweep.Tolerate":     "failure-tolerance knob; cannot change a successful result",
		"Sweep.Retries":      "failure-tolerance knob; retries re-run the identical trial",
		"Sweep.RetryBackoff": "real-time sleep between retries, invisible to results",
		"Sweep.Inject":       "chaos test seam; can only fail a run, never alter one",
		"Sweep.Stop":         "graceful-drain signal; stops scheduling, never alters a completed run",
	},
	ExcludeTypes: map[string]string{
		// These are serialized wholesale through their String() form,
		// whose round-trip is pinned by their own parse tests.
		"TopoSpec":   "serialized via String(); ParseTopo round-trip is pinned",
		"Placement":  "serialized via String(); parse round-trip is pinned",
		"PolicySpec": "serialized via String(); ParsePolicy round-trip is pinned",
		// The axis serializes through Name() + Label() (and the
		// duration disambiguation), which render every value kind.
		"Axis": "serialized via Name()+Label(), which render every value kind",
		// Execution-only hot-path knobs (RIB sharding, kernel batching,
		// timer wheel); results are pinned byte-identical across every
		// setting, so none of its fields may reach a cache key.
		"Tuning": "hot-path execution knobs; every setting is pinned byte-identical by the equivalence suite",
	},
}

// SnapshotKeyContract is the warm-up snapshot key's configuration:
// every lab.Trial field that can shape the warmed-up converged state
// must be read by WarmupKey() in snapshotkey.go or listed here with
// the reason it cannot — the snapshot cache's invalidation contract
// (a field the key ignores would silently share a stale warm-up
// between trials that converge to different states).
var SnapshotKeyContract = CanonicalConfig{
	Package: "repro/internal/lab",
	Roots:   []string{"Trial"},
	File:    "snapshotkey.go",
	Encoder: "WarmupKey()",
	ExcludeFields: map[string]string{
		// The measurement schedule runs entirely after the fork point;
		// only its opening event shapes the warm-up (whether the origin
		// prefix stays unannounced, and whether a dual-homed stub joins
		// the graph), so WarmupKey reads those raw ingredients from the
		// resolved workload instead of these fields.
		"Trial.Event":      "compiled into the workload; the resolved schedule's opening event is read instead",
		"Trial.Workload":   "post-fork measurement schedule; the opening event's ingredients are read via t.workload()",
		"Trial.Drain":      "post-measurement settle window, entirely after the fork point",
		"Trial.FlapCycles": "flap storm shape, entirely after the fork point (the sugar always opens with the same withdrawal)",
		"Trial.FlapPeriod": "flap storm shape, entirely after the fork point",
		"Trial.WallLimit":  "wall-clock guard; can only turn a run into a failure and is re-applied after restore",
		"Trial.Tuning":     "hot-path execution knobs; the warmed-up state is byte-identical at every setting",
		"WorkloadEvent.At": "event offsets are relative to the fork point; only the opening event's kind and targets shape the warm-up",
	},
	ExcludeTypes: map[string]string{
		// Serialized wholesale through String(), as in CanonicalContract.
		"TopoSpec":   "serialized via String(); ParseTopo round-trip is pinned",
		"Placement":  "serialized via String(); parse round-trip is pinned",
		"PolicySpec": "serialized via String(); parse round-trip is pinned",
		// See CanonicalContract: execution-only, byte-identical results.
		"Tuning": "hot-path execution knobs; the warmed-up state is byte-identical at every setting",
	},
}

// CanonicalAnalyzer checks the Canonical() cache-invalidation
// contract with the repository configuration (CanonicalContract).
func CanonicalAnalyzer() *Analyzer {
	return CanonicalAnalyzerWith(CanonicalContract)
}

// SnapshotKeyAnalyzer checks the WarmupKey() snapshot-sharing contract
// with the repository configuration (SnapshotKeyContract): the same
// completeness diff as the canonical analyzer, over the warm-up key
// encoder and rooted at Trial alone.
func SnapshotKeyAnalyzer() *Analyzer {
	a := CanonicalAnalyzerWith(SnapshotKeyContract)
	a.Name = "snapshotkey"
	a.Doc = "every warm-up-shaping Trial field is read by WarmupKey() or explicitly excluded"
	return a
}

// CanonicalAnalyzerWith builds the canonical-completeness analyzer
// over an explicit configuration (the fixture tests use small spec
// packages of their own).
func CanonicalAnalyzerWith(cfg CanonicalConfig) *Analyzer {
	return &Analyzer{
		Name: "canonical",
		Doc:  "every result-affecting spec field is serialized by Canonical() or explicitly excluded",
		RunProgram: func(prog *Program) ([]Diagnostic, error) {
			return runCanonical(prog, cfg)
		},
	}
}

// encoderName names the contract's encoding function in diagnostics.
func encoderName(cfg CanonicalConfig) string {
	if cfg.Encoder != "" {
		return cfg.Encoder
	}
	return "Canonical()"
}

// watchedField is one struct field under the contract.
type watchedField struct {
	owner string // type name
	field *types.Var
}

// runCanonical diffs the reachable spec fields against the reads in
// the canonical file plus the exclusion lists.
func runCanonical(prog *Program, cfg CanonicalConfig) ([]Diagnostic, error) {
	pkg := prog.Lookup(cfg.Package)
	if pkg == nil {
		return nil, fmt.Errorf("canonical: spec package %s not loaded", cfg.Package)
	}

	// Collect the watched structs: the roots plus every module struct
	// reachable through their fields, stopping at excluded types.
	watched := map[*types.Named]bool{}
	seen := map[*types.Named]bool{}
	usedTypeExcl := map[string]bool{}
	var collect func(t types.Type)
	collect = func(t types.Type) {
		switch t := t.(type) {
		case *types.Pointer:
			collect(t.Elem())
		case *types.Slice:
			collect(t.Elem())
		case *types.Array:
			collect(t.Elem())
		case *types.Map:
			collect(t.Key())
			collect(t.Elem())
		case *types.Named:
			obj := t.Obj()
			if obj.Pkg() == nil || !strings.HasPrefix(obj.Pkg().Path(), prog.ModulePath) {
				return
			}
			if _, excluded := cfg.ExcludeTypes[obj.Name()]; excluded {
				usedTypeExcl[obj.Name()] = true
				return
			}
			if seen[t] {
				return
			}
			seen[t] = true
			st, ok := t.Underlying().(*types.Struct)
			if !ok {
				// A named slice/map/array (e.g. lab.Workload) is a
				// window onto its element structs — recurse through the
				// underlying type so they fall under the contract too.
				collect(t.Underlying())
				return
			}
			watched[t] = true
			for i := 0; i < st.NumFields(); i++ {
				collect(st.Field(i).Type())
			}
		}
	}
	for _, root := range cfg.Roots {
		obj := pkg.Types.Scope().Lookup(root)
		if obj == nil {
			return nil, fmt.Errorf("canonical: root struct %s not found in %s", root, cfg.Package)
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			return nil, fmt.Errorf("canonical: root %s is not a named type", root)
		}
		collect(named)
	}

	// Index the watched fields by their type-checker object.
	fields := map[types.Object]watchedField{}
	for named := range watched {
		st := named.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			fields[f] = watchedField{owner: named.Obj().Name(), field: f}
		}
	}

	// Collect every watched-field read in the canonical file. The
	// encoders live in the spec package, so its Info covers them.
	var canonicalFile *File
	for _, f := range pkg.Files {
		if pathBase(f.Name) == cfg.File {
			canonicalFile = f
			break
		}
	}
	if canonicalFile == nil {
		return nil, fmt.Errorf("canonical: file %s not found in %s", cfg.File, cfg.Package)
	}
	read := map[types.Object]bool{}
	ast.Inspect(canonicalFile.AST, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if obj := pkg.Info.Uses[sel.Sel]; obj != nil {
			if _, watched := fields[obj]; watched {
				read[obj] = true
			}
		}
		return true
	})

	// Diff: every watched field must be read or excluded, exclusions
	// must be live, and a field must not be both.
	var diags []Diagnostic
	usedFieldExcl := map[string]bool{}
	var ordered []types.Object
	for obj := range fields {
		ordered = append(ordered, obj)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Pos() < ordered[j].Pos() })
	for _, obj := range ordered {
		wf := fields[obj]
		key := wf.owner + "." + obj.Name()
		_, excluded := cfg.ExcludeFields[key]
		if excluded {
			usedFieldExcl[key] = true
		}
		switch {
		case !read[obj] && !excluded:
			diags = append(diags, Diagnostic{
				Pos:   prog.Position(obj.Pos()),
				Check: CheckCanonical,
				Message: fmt.Sprintf("field %s is neither serialized in %s nor in the canonical exclusion list — a new result-affecting field must join %s or the cached state it can change goes stale",
					key, cfg.File, encoderName(cfg)),
			})
		case read[obj] && excluded:
			diags = append(diags, Diagnostic{
				Pos:     prog.Position(obj.Pos()),
				Check:   CheckCanonical,
				Message: fmt.Sprintf("field %s is serialized in %s but also excluded — remove the stale exclusion entry", key, cfg.File),
			})
		}
	}
	var exclKeys []string
	for key := range cfg.ExcludeFields {
		exclKeys = append(exclKeys, key)
	}
	sort.Strings(exclKeys)
	for _, key := range exclKeys {
		if !usedFieldExcl[key] {
			diags = append(diags, Diagnostic{
				Pos:     prog.Position(canonicalFile.AST.Pos()),
				Check:   CheckCanonical,
				Message: fmt.Sprintf("exclusion entry %q matches no reachable spec field — remove or rename it", key),
			})
		}
	}
	var typeKeys []string
	for key := range cfg.ExcludeTypes {
		typeKeys = append(typeKeys, key)
	}
	sort.Strings(typeKeys)
	for _, key := range typeKeys {
		if !usedTypeExcl[key] {
			diags = append(diags, Diagnostic{
				Pos:     prog.Position(canonicalFile.AST.Pos()),
				Check:   CheckCanonical,
				Message: fmt.Sprintf("type-exclusion entry %q matches no reachable spec struct — remove or rename it", key),
			})
		}
	}
	return diags, nil
}
