package lint

import (
	"strings"
	"testing"

	"repro/internal/benchfmt"
)

// TestDiffEscapes drives the escape gate's diff logic with canned
// observations: counts above the baseline fire at the site, counts
// below it fire the tighten-the-baseline finding, equal counts pass.
func TestDiffEscapes(t *testing.T) {
	baseline := escapeBaseline{
		"pkg.F": {"x escapes to heap": 1},
	}
	rep := map[string]Diagnostic{
		"pkg.F\x00x escapes to heap": {Pos: positionFrom("pkg/f.go", 10, 2), Check: CheckEscape},
		"pkg.G\x00y escapes to heap": {Pos: positionFrom("pkg/g.go", 20, 2), Check: CheckEscape},
	}

	equal := escapeBaseline{"pkg.F": {"x escapes to heap": 1}}
	if diags := diffEscapes(nil, baseline, equal, rep); len(diags) != 0 {
		t.Errorf("equal counts: want clean, got %v", diags)
	}

	over := escapeBaseline{
		"pkg.F": {"x escapes to heap": 2},
		"pkg.G": {"y escapes to heap": 1},
	}
	diags := diffEscapes(nil, baseline, over, rep)
	if len(diags) != 2 {
		t.Fatalf("over baseline: want 2 findings, got %v", diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "gained a heap escape") {
			t.Errorf("unexpected message: %s", d)
		}
	}
	if diags[0].Pos.Filename != "pkg/f.go" || diags[0].Pos.Line != 10 {
		t.Errorf("finding not anchored at the escape site: %s", diags[0])
	}

	diags = diffEscapes(nil, baseline, escapeBaseline{}, nil)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "tighten the baseline") {
		t.Errorf("improved path: want one tighten-the-baseline finding, got %v", diags)
	}
}

// TestDiffBenchAllocs drives the bench gate's comparison: regressions
// beyond the slack fire, noise within it passes, and a baseline
// benchmark that vanished or stopped reporting allocs fires too.
func TestDiffBenchAllocs(t *testing.T) {
	f := func(v float64) *float64 { return &v }
	baseline := benchfmt.Report{Benchmarks: []benchfmt.Benchmark{
		{Name: "RIBDecision", AllocsPerOp: f(121)},
		{Name: "SingleRun", AllocsPerOp: f(683374)},
	}}

	pass := benchfmt.Report{Benchmarks: []benchfmt.Benchmark{
		{Name: "RIBDecision", AllocsPerOp: f(121)},
		{Name: "SingleRun", AllocsPerOp: f(683377)}, // within the 0.2% slack
	}}
	if diags := diffBenchAllocs(baseline, pass, "B.json"); len(diags) != 0 {
		t.Errorf("within slack: want clean, got %v", diags)
	}

	regress := benchfmt.Report{Benchmarks: []benchfmt.Benchmark{
		{Name: "RIBDecision", AllocsPerOp: f(122)},
		{Name: "SingleRun", AllocsPerOp: f(700000)},
	}}
	diags := diffBenchAllocs(baseline, regress, "B.json")
	if len(diags) != 2 {
		t.Fatalf("regressions: want 2 findings, got %v", diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "allocs/op regression") {
			t.Errorf("unexpected message: %s", d)
		}
	}

	missing := benchfmt.Report{Benchmarks: []benchfmt.Benchmark{
		{Name: "RIBDecision", AllocsPerOp: f(121)},
		{Name: "SingleRun"}, // lost its ReportAllocs
	}}
	diags = diffBenchAllocs(baseline, missing, "B.json")
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "no longer reports allocs/op") {
		t.Errorf("lost allocs: want one finding, got %v", diags)
	}

	gone := benchfmt.Report{Benchmarks: []benchfmt.Benchmark{
		{Name: "RIBDecision", AllocsPerOp: f(121)},
	}}
	diags = diffBenchAllocs(baseline, gone, "B.json")
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "did not run") {
		t.Errorf("vanished benchmark: want one finding, got %v", diags)
	}
}

// TestHotFunctionSpans pins the manifest against the real repository:
// every declared hot function must resolve to a declaration (a rename
// must force a manifest update, not silently narrow the gate).
func TestHotFunctionSpans(t *testing.T) {
	prog := repoProgram(t)
	spans, err := hotFunctionSpans(prog)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, fns := range HotFunctions {
		n += len(fns)
	}
	if len(spans) < n {
		t.Errorf("resolved %d spans for %d manifest entries", len(spans), n)
	}
	if key := spans.find("does/not/exist.go", 1); key != "" {
		t.Errorf("find on unknown file returned %q", key)
	}
}
