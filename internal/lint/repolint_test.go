package lint

import (
	"maps"
	"sync"
	"testing"
)

// repoProg caches the loaded repository program across the tests in
// this package (loading + type-checking the module once is enough).
var repoProg = sync.OnceValues(func() (*Program, error) {
	return Load(".")
})

// repoProgram loads the repository's own module (the test runs in
// internal/lint; Load walks up to go.mod).
func repoProgram(t *testing.T) *Program {
	t.Helper()
	prog, err := repoProg()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestRepoLintClean is the tier-1 gate: the full analyzer suite over
// the repository itself must be clean. This is what turns the lint
// invariants into build failures — deleting a field read from
// Canonical(), adding an unserialized Trial field, a new heap escape
// in a hot function, or an unsorted map iteration in the simulation
// packages all land here.
func TestRepoLintClean(t *testing.T) {
	prog := repoProgram(t)
	diags, err := RunAnalyzers(prog, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestCanonicalExclusionsAreLoadBearing removes one entry from the
// contract's exclusion list and asserts the analyzer notices — i.e.
// the committed list is exactly the set of fields Canonical() skips,
// with nothing vestigial holding the diff closed.
func TestCanonicalExclusionsAreLoadBearing(t *testing.T) {
	prog := repoProgram(t)
	for _, dropped := range []string{"Trial.WallLimit", "Sweep.Name"} {
		cfg := CanonicalContract
		cfg.ExcludeFields = maps.Clone(CanonicalContract.ExcludeFields)
		delete(cfg.ExcludeFields, dropped)
		diags, err := runCanonical(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, d := range diags {
			if d.Check == CheckCanonical {
				found = true
			}
		}
		if !found {
			t.Errorf("dropping exclusion %q produced no canonical finding — the entry is vestigial", dropped)
		}
	}
}
