package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// determinismScope lists the simulation / result-producing package
// directories (module-root-relative, subpackages included) whose code
// must be deterministic per seed: any order-sensitive map iteration,
// process-global randomness or wall-clock read here can change a
// published number between two runs of the same spec.
var determinismScope = []string{
	"internal/sim",
	"internal/bgp",
	"internal/experiment",
	"internal/lab",
	"internal/topology",
	"internal/netem",
	"internal/figures",
	"internal/policy",
	// The service layer executes the same sweeps: a wall-clock read or
	// order-sensitive map walk in the daemon would break its
	// byte-equality pin against the CLI path.
	"internal/labd",
}

// inDeterminismScope reports whether the package is covered.
func inDeterminismScope(pkg *Package) bool {
	for _, p := range determinismScope {
		if pkg.Dir == p || strings.HasPrefix(pkg.Dir, p+"/") {
			return true
		}
	}
	return false
}

// DeterminismAnalyzer checks the seeded-determinism invariant in the
// simulation packages: map iteration must not have order-sensitive,
// result-visible side effects (Go randomizes map order per run);
// randomness must come from a seeded *rand.Rand, never the global
// math/rand functions; and virtual-time code must not read the wall
// clock. Checks: maporder, globalrand, walltime.
func DeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "map-iteration order, global math/rand and wall-clock reads in the simulation packages",
		Run:  runDeterminism,
	}
}

// runDeterminism applies the three determinism checks to one package.
func runDeterminism(prog *Program, pkg *Package) []Diagnostic {
	if !inDeterminismScope(pkg) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		funcs := functionNodes(f.AST)
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if d, ok := checkMapRange(prog, pkg, f, funcs, n); ok {
					diags = append(diags, d)
				}
			case *ast.CallExpr:
				if d, ok := checkDeterminismCall(prog, pkg, n); ok {
					diags = append(diags, d)
				}
			}
			return true
		})
	}
	return diags
}

// checkDeterminismCall flags global math/rand draws and wall-clock
// reads.
func checkDeterminismCall(prog *Program, pkg *Package, call *ast.CallExpr) (Diagnostic, bool) {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return Diagnostic{}, false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return Diagnostic{}, false
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		// Constructors build seeded streams — exactly what the
		// invariant wants; everything else draws from the process
		// global.
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return Diagnostic{}, false
		}
		return Diagnostic{
			Pos:     prog.Position(call.Pos()),
			Check:   CheckGlobalRand,
			Message: fmt.Sprintf("global %s.%s breaks seeded determinism; draw from a seeded *rand.Rand", pathBase(fn.Pkg().Path()), fn.Name()),
		}, true
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return Diagnostic{
				Pos:     prog.Position(call.Pos()),
				Check:   CheckWallTime,
				Message: fmt.Sprintf("time.%s reads the wall clock inside the simulation packages; use the sim clock (annotate wall-budget sites)", fn.Name()),
			}, true
		}
	}
	return Diagnostic{}, false
}

// calleeFunc resolves a call's callee to its function object, if it
// is a plain (non-builtin) function or method.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}

// pathBase returns the last element of an import path.
func pathBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// checkMapRange flags a range over a map unless its body is provably
// order-insensitive or it is the collect-then-sort idiom.
func checkMapRange(prog *Program, pkg *Package, f *File, funcs []ast.Node, rng *ast.RangeStmt) (Diagnostic, bool) {
	tv, ok := pkg.Info.Types[rng.X]
	if !ok {
		return Diagnostic{}, false
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return Diagnostic{}, false
	}
	ins := orderInsensitivity{pkg: pkg, rangeKey: rangeKeyObject(pkg, rng)}
	if ins.blockOK(rng.Body) {
		return Diagnostic{}, false
	}
	if isCollectThenSort(pkg, funcs, rng) {
		return Diagnostic{}, false
	}
	return Diagnostic{
		Pos:     prog.Position(rng.Pos()),
		Check:   CheckMapOrder,
		Message: "map iteration order is randomized and this loop body is order-sensitive; sort the keys first or annotate why the order cannot affect results",
	}, true
}

// rangeKeyObject returns the object of the loop's key variable, when
// it is a plain identifier.
func rangeKeyObject(pkg *Package, rng *ast.RangeStmt) types.Object {
	id, ok := rng.Key.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return pkg.Info.Uses[id]
}

// orderInsensitivity decides whether a loop body cannot observe the
// iteration order. The whitelist is deliberately narrow — integer
// commutative accumulation, writes keyed by the (distinct) range key,
// deletes, and per-iteration locals; anything else (calls, float
// accumulation, early exits, appends without a following sort) is
// treated as order-sensitive and needs a sort or an annotation.
type orderInsensitivity struct {
	pkg      *Package
	rangeKey types.Object
}

// blockOK reports whether every statement in the block is
// order-insensitive.
func (o orderInsensitivity) blockOK(b *ast.BlockStmt) bool {
	for _, s := range b.List {
		if !o.stmtOK(s) {
			return false
		}
	}
	return true
}

// stmtOK reports whether one statement is order-insensitive.
func (o orderInsensitivity) stmtOK(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.EmptyStmt:
		return true
	case *ast.BranchStmt:
		// continue skips an iteration (a pure filter); break/goto
		// select an order-dependent stopping point.
		return s.Tok == token.CONTINUE
	case *ast.IncDecStmt:
		return o.integerLvalue(s.X)
	case *ast.AssignStmt:
		return o.assignOK(s)
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		// delete removes a set of keys; the final state does not
		// depend on removal order.
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := o.pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
				return true
			}
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil && !o.stmtOK(s.Init) {
			return false
		}
		if !o.pureExpr(s.Cond) {
			return false
		}
		if !o.blockOK(s.Body) {
			return false
		}
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				return o.blockOK(e)
			case *ast.IfStmt:
				return o.stmtOK(e)
			default:
				return false
			}
		}
		return true
	case *ast.ForStmt:
		if s.Init != nil && !o.stmtOK(s.Init) {
			return false
		}
		if s.Cond != nil && !o.pureExpr(s.Cond) {
			return false
		}
		if s.Post != nil && !o.stmtOK(s.Post) {
			return false
		}
		return o.blockOK(s.Body)
	case *ast.RangeStmt:
		// A nested map range is checked at its own site; here only
		// the body's order effects matter.
		return o.blockOK(s.Body)
	case *ast.BlockStmt:
		return o.blockOK(s)
	case *ast.DeclStmt:
		return true
	default:
		return false
	}
}

// assignOK allows per-iteration locals (:=), integer commutative
// accumulation (+= -= |= &= ^= *=), and writes indexed by the range
// key (distinct per iteration, so order-free).
func (o orderInsensitivity) assignOK(s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.DEFINE:
		for _, rhs := range s.Rhs {
			if !o.pureExpr(rhs) {
				return false
			}
		}
		return true
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
		return len(s.Lhs) == 1 && o.integerLvalue(s.Lhs[0]) && o.pureExpr(s.Rhs[0])
	case token.ASSIGN:
		for _, lhs := range s.Lhs {
			if !o.keyIndexedOrLocal(lhs) {
				return false
			}
		}
		for _, rhs := range s.Rhs {
			if !o.pureExpr(rhs) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// keyIndexedOrLocal reports whether an assignment target is the blank
// identifier or an index expression keyed by the range key variable —
// a distinct slot per iteration.
func (o orderInsensitivity) keyIndexedOrLocal(lhs ast.Expr) bool {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return true
	}
	idx, ok := lhs.(*ast.IndexExpr)
	if !ok || o.rangeKey == nil {
		return false
	}
	id, ok := ast.Unparen(idx.Index).(*ast.Ident)
	return ok && o.pkg.Info.Uses[id] == o.rangeKey
}

// integerLvalue reports whether the expression has integer type —
// integer accumulation commutes exactly; float accumulation rounds
// differently per order.
func (o orderInsensitivity) integerLvalue(e ast.Expr) bool {
	tv, ok := o.pkg.Info.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// pureExpr reports whether evaluating the expression cannot have side
// effects: no calls except len/cap and no channel receives.
func (o orderInsensitivity) pureExpr(e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok {
				pure = false
				return false
			}
			b, ok := o.pkg.Info.Uses[id].(*types.Builtin)
			if !ok || (b.Name() != "len" && b.Name() != "cap") {
				pure = false
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pure = false
				return false
			}
		}
		return true
	})
	return pure
}

// isCollectThenSort recognizes the sorted-extraction idiom: the loop
// body only appends to one slice (appends may sit behind pure if/else
// filters, continues and per-iteration locals) and that slice is later
// passed to a sort/slices sorting call in the same function.
func isCollectThenSort(pkg *Package, funcs []ast.Node, rng *ast.RangeStmt) bool {
	targetObj := collectTarget(pkg, rng.Body)
	if targetObj == nil {
		return false
	}
	fn := enclosingFunction(funcs, rng.Pos())
	if fn == nil {
		return false
	}
	sorted := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() {
			return true
		}
		callee := calleeFunc(pkg, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		p := callee.Pkg().Path()
		if p != "sort" && p != "slices" {
			return true
		}
		if !strings.HasPrefix(callee.Name(), "Sort") && !isSortHelper(p, callee.Name()) {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && objectOf(pkg, id) == targetObj {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// collectTarget returns the single slice variable the loop body
// appends to, when the body does nothing else: appends to one target,
// optionally guarded by pure if/else filters, plus continue statements
// and pure per-iteration := locals. Returns nil for any other body.
func collectTarget(pkg *Package, body *ast.BlockStmt) types.Object {
	pure := orderInsensitivity{pkg: pkg}
	var target types.Object
	var blockOK func(stmts []ast.Stmt) bool
	var stmtOK func(s ast.Stmt) bool
	stmtOK = func(s ast.Stmt) bool {
		switch s := s.(type) {
		case *ast.BranchStmt:
			return s.Tok == token.CONTINUE
		case *ast.AssignStmt:
			if appendTo := appendTarget(pkg, s); appendTo != nil {
				if target == nil {
					target = appendTo
				}
				return appendTo == target
			}
			if s.Tok != token.DEFINE {
				return false
			}
			for _, rhs := range s.Rhs {
				if !pure.pureExpr(rhs) {
					return false
				}
			}
			return true
		case *ast.IfStmt:
			if s.Init != nil && !stmtOK(s.Init) {
				return false
			}
			if !pure.pureExpr(s.Cond) {
				return false
			}
			if !blockOK(s.Body.List) {
				return false
			}
			switch e := s.Else.(type) {
			case nil:
				return true
			case *ast.BlockStmt:
				return blockOK(e.List)
			case *ast.IfStmt:
				return stmtOK(e)
			default:
				return false
			}
		case *ast.BlockStmt:
			return blockOK(s.List)
		default:
			return false
		}
	}
	blockOK = func(stmts []ast.Stmt) bool {
		for _, s := range stmts {
			if !stmtOK(s) {
				return false
			}
		}
		return true
	}
	if !blockOK(body.List) {
		return nil
	}
	return target
}

// appendTarget returns the variable appended to when the statement is
// `xs = append(xs, …)` (or :=), nil otherwise.
func appendTarget(pkg *Package, s *ast.AssignStmt) types.Object {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 || (s.Tok != token.ASSIGN && s.Tok != token.DEFINE) {
		return nil
	}
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	fnID, ok := call.Fun.(*ast.Ident)
	if !ok {
		return nil
	}
	if b, ok := pkg.Info.Uses[fnID].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	return objectOf(pkg, id)
}

// isSortHelper names the sorting entry points without a Sort prefix.
func isSortHelper(pkgPath, name string) bool {
	if pkgPath == "sort" {
		switch name {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Stable":
			return true
		}
	}
	return false
}

// objectOf resolves an identifier to its object (use or definition).
func objectOf(pkg *Package, id *ast.Ident) types.Object {
	if obj := pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return pkg.Info.Defs[id]
}

// functionNodes collects every function declaration and literal in a
// file, for enclosing-function lookups.
func functionNodes(f *ast.File) []ast.Node {
	var out []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			out = append(out, n)
		}
		return true
	})
	return out
}

// enclosingFunction returns the innermost function node containing
// pos.
func enclosingFunction(funcs []ast.Node, pos token.Pos) ast.Node {
	var best ast.Node
	for _, fn := range funcs {
		if fn.Pos() <= pos && pos < fn.End() {
			if best == nil || fn.Pos() > best.Pos() {
				best = fn
			}
		}
	}
	return best
}
