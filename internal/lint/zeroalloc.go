package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"repro/internal/benchfmt"
)

// HotFunctions is the declared zero-alloc manifest: the functions on
// the emulation hot paths (PR 1 made them allocation-free; ROADMAP
// item 3 asks for the CI check that they stay that way). The escape
// gate compiles their packages with -gcflags=-m and fails on any
// heap-escape diagnostic inside these functions that the committed
// baseline (zeroalloc_baseline.json) does not already allow — so a
// change that silently re-introduces a per-UPDATE allocation fails
// the build instead of shifting a benchmark percentile.
//
// Keys are "<import path>" → function names; methods are named
// "Type.method" (pointer receivers without the star).
var HotFunctions = map[string][]string{
	"repro/internal/bgp/rib": {
		// The per-UPDATE decision path and its candidate index
		// (per-shard since the table was sharded by prefix hash).
		"Table.decide", "Table.setBest", "Table.SetAdjIn", "Table.WithdrawAdjIn",
		"tableShard.indexCand", "tableShard.unindexCand", "searchCands", "Better",
		// The shard router and the longest-prefix-match lookup.
		"Table.shardOf", "Table.Lookup",
	},
	"repro/internal/bgp": {
		// The export hot path: AS-path prepends served from the
		// per-router interning arena.
		"attrArena.prepend", "hashPath",
	},
	"repro/internal/bgp/wire": {
		// The UPDATE encode path: one header-reserved buffer.
		"Marshal", "estimateBody", "estimateUpdate",
		"appendUpdate", "appendPrefixes", "appendAttrHeader", "appendAttrs",
	},
	"repro/internal/sim": {
		// Timer re-arm: re-keyed in place (heap.Fix or wheel slot),
		// no per-reset event.
		"simTimer.Reset", "simTimer.Stop",
		// The timer wheel and the batched drain: scheduling, slot
		// insert/flush and batch refill all run per event.
		"Kernel.schedule", "timerWheel.insert", "Kernel.flushSlot",
		"Kernel.wheelRelease", "Kernel.nextEvent", "Kernel.refill",
		"Kernel.peekQueue",
	},
	"repro/internal/netem": {
		// The per-message send path, loss model included.
		"Endpoint.Send", "Endpoint.SendUnreliable", "Endpoint.departAt",
		"Link.lossPenalty", "Link.rand",
	},
}

// escapeBaselineFile is the committed allowance, relative to the
// module root: per hot function, the -gcflags=-m heap-escape messages
// that are understood and accepted (error paths, one-time lazy
// initialization, the returned buffer), with their counts.
const escapeBaselineFile = "internal/lint/zeroalloc_baseline.json"

// escapeBaseline maps "pkg.func" → message → allowed count.
type escapeBaseline map[string]map[string]int

// ZeroAllocAnalyzer builds the escape-gate analyzer over the declared
// HotFunctions manifest and the committed baseline.
func ZeroAllocAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "zeroalloc",
		Doc:  "no new heap escapes (-gcflags=-m) inside the declared hot functions",
		RunProgram: func(prog *Program) ([]Diagnostic, error) {
			baseline, err := loadEscapeBaseline(prog.Root)
			if err != nil {
				return nil, err
			}
			observed, diagsAt, err := observeEscapes(prog)
			if err != nil {
				return nil, err
			}
			return diffEscapes(prog, baseline, observed, diagsAt), nil
		},
	}
}

// loadEscapeBaseline reads the committed allowance.
func loadEscapeBaseline(root string) (escapeBaseline, error) {
	data, err := os.ReadFile(filepath.Join(root, escapeBaselineFile))
	if os.IsNotExist(err) {
		return escapeBaseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b escapeBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", escapeBaselineFile, err)
	}
	return b, nil
}

// escapeRe matches one compiler diagnostic line.
var escapeRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// observeEscapes compiles the manifest packages with -gcflags=-m and
// collects the heap-escape diagnostics inside the hot functions:
// "pkg.func" → message → count, plus a representative position per
// (func, message).
func observeEscapes(prog *Program) (escapeBaseline, map[string]Diagnostic, error) {
	spans, err := hotFunctionSpans(prog)
	if err != nil {
		return nil, nil, err
	}
	var pkgs []string
	for path := range HotFunctions {
		rel := strings.TrimPrefix(path, prog.ModulePath+"/")
		pkgs = append(pkgs, "./"+filepath.ToSlash(rel))
	}
	sort.Strings(pkgs)
	cmd := exec.Command("go", append([]string{"build", "-gcflags=-m"}, pkgs...)...)
	cmd.Dir = prog.Root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out)
	}
	observed := escapeBaseline{}
	reps := map[string]Diagnostic{}
	for _, line := range strings.Split(string(out), "\n") {
		m := escapeRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		file := filepath.ToSlash(m[1])
		lineNo := atoi(m[2])
		key := spans.find(file, lineNo)
		if key == "" {
			continue
		}
		if observed[key] == nil {
			observed[key] = map[string]int{}
		}
		observed[key][msg]++
		if _, ok := reps[key+"\x00"+msg]; !ok {
			reps[key+"\x00"+msg] = Diagnostic{
				Pos:   positionFrom(file, lineNo, atoi(m[3])),
				Check: CheckEscape,
			}
		}
	}
	return observed, reps, nil
}

// diffEscapes reports observed escapes the baseline does not allow,
// and baseline entries that no longer occur (so the allowance shrinks
// with the code instead of rotting).
func diffEscapes(prog *Program, baseline, observed escapeBaseline, reps map[string]Diagnostic) []Diagnostic {
	var diags []Diagnostic
	var keys []string
	for key := range observed {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		var msgs []string
		for msg := range observed[key] {
			msgs = append(msgs, msg)
		}
		sort.Strings(msgs)
		for _, msg := range msgs {
			n := observed[key][msg]
			allowed := baseline[key][msg]
			if n > allowed {
				d := reps[key+"\x00"+msg]
				d.Message = fmt.Sprintf("hot function %s gained a heap escape (%q ×%d, baseline allows %d); keep the hot path allocation-free or regenerate the baseline with repolint -write-escape-baseline and justify it in review",
					key, msg, n, allowed)
				diags = append(diags, d)
			}
		}
	}
	var bkeys []string
	for key := range baseline {
		bkeys = append(bkeys, key)
	}
	sort.Strings(bkeys)
	for _, key := range bkeys {
		var msgs []string
		for msg := range baseline[key] {
			msgs = append(msgs, msg)
		}
		sort.Strings(msgs)
		for _, msg := range msgs {
			if observed[key][msg] < baseline[key][msg] {
				diags = append(diags, Diagnostic{
					Pos:   positionFrom(escapeBaselineFile, 1, 1),
					Check: CheckEscape,
					Message: fmt.Sprintf("baseline allows %q ×%d in %s but only %d observed — the hot path improved; tighten the baseline with repolint -write-escape-baseline",
						msg, baseline[key][msg], key, observed[key][msg]),
				})
			}
		}
	}
	return diags
}

// WriteEscapeBaseline regenerates the committed allowance from the
// current compiler output.
func WriteEscapeBaseline(prog *Program) error {
	observed, _, err := observeEscapes(prog)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(observed, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(filepath.Join(prog.Root, escapeBaselineFile), data, 0o644)
}

// funcSpan is one hot function's source extent.
type funcSpan struct {
	file       string
	start, end int
	key        string
}

// funcSpans locates manifest functions in the loaded program.
type funcSpans []funcSpan

// find returns the hot-function key covering file:line, or "".
func (s funcSpans) find(file string, line int) string {
	for _, sp := range s {
		if sp.file == file && sp.start <= line && line <= sp.end {
			return sp.key
		}
	}
	return ""
}

// hotFunctionSpans resolves every manifest entry to its declaration's
// line span; a manifest entry that matches no declaration is an error
// (the manifest must not rot as code is renamed).
func hotFunctionSpans(prog *Program) (funcSpans, error) {
	var spans funcSpans
	for path, fns := range HotFunctions {
		pkg := prog.Lookup(path)
		if pkg == nil {
			return nil, fmt.Errorf("zeroalloc: manifest package %s not loaded", path)
		}
		want := map[string]bool{}
		for _, fn := range fns {
			want[fn] = true
		}
		found := map[string]bool{}
		for _, f := range pkg.Files {
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				key := funcKey(fd)
				if !want[key] {
					continue
				}
				found[key] = true
				spans = append(spans, funcSpan{
					file:  filepath.ToSlash(filepath.Join(pkg.Dir, pathBase(f.Name))),
					start: prog.Fset.Position(fd.Pos()).Line,
					end:   prog.Fset.Position(fd.End()).Line,
					key:   path + "." + key,
				})
			}
		}
		for _, fn := range fns {
			if !found[fn] {
				return nil, fmt.Errorf("zeroalloc: manifest function %s.%s not found — update the HotFunctions manifest", path, fn)
			}
		}
	}
	return spans, nil
}

// funcKey names a declaration the way the manifest does:
// "Type.method" or "Func".
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// BenchAllocBaseline names the benchmarks whose allocs/op the bench
// gate compares against the committed BENCH_*.json trajectory file —
// the alloc-sensitive microbenchmarks over the manifest's hot paths.
var BenchAllocBaseline = []string{
	"WireMarshalUpdate", "WireUnmarshalUpdate",
	"RIBDecision", "RIBDecisionSharded", "RIBLookup",
	"TimerReset", "TimerWheel", "KernelBatchDrain",
	"FlowTableLookup", "OFPFlowModRoundTrip",
	"SingleRun",
}

// BenchGate runs the alloc-sensitive benchmarks (benchtime=1x) and
// fails on any allocs/op regression against the baseline document
// (BENCH_SMOKE.json by default). It is the slow half of the zeroalloc
// analyzer, run on demand (repolint -bench and the CI lint job).
func BenchGate(root, baselinePath string) ([]Diagnostic, error) {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return nil, err
	}
	var baseline benchfmt.Report
	if err := json.Unmarshal(data, &baseline); err != nil {
		return nil, fmt.Errorf("%s: %w", baselinePath, err)
	}
	var names []string
	for _, name := range BenchAllocBaseline {
		if b, ok := baseline.Find(name); ok && b.AllocsPerOp != nil {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no alloc-reporting baseline entries among %v", baselinePath, BenchAllocBaseline)
	}
	pattern := "^Benchmark(" + strings.Join(names, "|") + ")$"
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern, "-benchtime", "1x", ".")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %v\n%s", err, out)
	}
	rep, err := benchfmt.Parse(strings.NewReader(string(out)))
	if err != nil {
		return nil, err
	}
	return diffBenchAllocs(baseline, rep, filepath.Base(baselinePath)), nil
}

// benchAllocSlack is the relative headroom the gate grants over the
// baseline allocs/op: 0.2% keeps the micro benchmarks exact to ±2
// allocations while absorbing the single-digit runtime noise a
// whole-simulation macro benchmark shows at -benchtime=1x.
const benchAllocSlack = 0.002

// diffBenchAllocs compares current allocs/op against the baseline.
func diffBenchAllocs(baseline, current benchfmt.Report, baselineName string) []Diagnostic {
	var diags []Diagnostic
	for _, name := range BenchAllocBaseline {
		base, ok := baseline.Find(name)
		if !ok || base.AllocsPerOp == nil {
			continue
		}
		cur, ok := current.Find(name)
		if !ok {
			diags = append(diags, Diagnostic{
				Pos:     positionFrom(baselineName, 1, 1),
				Check:   CheckEscape,
				Message: fmt.Sprintf("benchmark %s is in the alloc baseline but did not run — was it renamed?", name),
			})
			continue
		}
		if cur.AllocsPerOp == nil {
			diags = append(diags, Diagnostic{
				Pos:     positionFrom(baselineName, 1, 1),
				Check:   CheckEscape,
				Message: fmt.Sprintf("benchmark %s no longer reports allocs/op (lost its ReportAllocs?)", name),
			})
			continue
		}
		allowed := *base.AllocsPerOp * (1 + benchAllocSlack)
		if *cur.AllocsPerOp > allowed {
			diags = append(diags, Diagnostic{
				Pos:   positionFrom(baselineName, 1, 1),
				Check: CheckEscape,
				Message: fmt.Sprintf("allocs/op regression in Benchmark%s: %.0f now vs %.0f in %s",
					name, *cur.AllocsPerOp, *base.AllocsPerOp, baselineName),
			})
		}
	}
	return diags
}

// positionFrom builds a root-relative position.
func positionFrom(file string, line, col int) token.Position {
	return token.Position{Filename: file, Line: line, Column: col}
}

// atoi parses a digits-only string (pre-matched by regexp).
func atoi(s string) int {
	n := 0
	for _, c := range s {
		n = n*10 + int(c-'0')
	}
	return n
}
