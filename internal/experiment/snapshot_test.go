package experiment

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/idr"
	"repro/internal/topology"
)

// ribDump renders every legacy router's Loc-RIB (and the collector's,
// when present) as one string, in ASN order.
func ribDump(t *testing.T, e *Experiment) string {
	t.Helper()
	var b strings.Builder
	for _, asn := range e.ASNs() {
		r, ok := e.Routers[asn]
		if !ok {
			continue
		}
		b.WriteString("== " + asn.String() + " ==\n")
		if err := r.WriteRIB(&b); err != nil {
			t.Fatal(err)
		}
	}
	if e.Coll != nil {
		b.WriteString("== collector ==\n")
		if err := e.Coll.Router().WriteRIB(&b); err != nil {
			t.Fatal(err)
		}
	}
	return b.String()
}

// warmedUp builds cfg, starts it, announces every prefix and runs to
// quiescence — the exact state Sweep.Run snapshots.
func warmedUp(t *testing.T, cfg Config) *Experiment {
	t.Helper()
	e := build(t, cfg)
	announceAllAndSettle(t, e)
	return e
}

// driveTrigger withdraws then re-announces the origin and settles,
// returning both convergence durations.
func driveTrigger(t *testing.T, e *Experiment) (d1, d2 time.Duration) {
	t.Helper()
	var err error
	d1, err = e.MeasureConvergence(func() error { return e.Withdraw(1) }, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	d2, err = e.MeasureConvergence(func() error { return e.Announce(1) }, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	return d1, d2
}

// jitterTimers enables MRAI jitter so the kernel RNG stream position
// matters.
func jitterTimers() bgp.Timers {
	tm := fastTimers()
	tm.MRAIJitter = true
	return tm
}

// TestSnapshotRoundTripIdentical is the core fidelity check: capture a
// warmed-up experiment, rebuild it from Config + snapshot bytes, then
// drive the original and the restored copy through the same triggering
// events. Routing state, UPDATE counters, convergence durations and
// the virtual clock must match exactly. Kernel event counts and netem
// delivery counters are deliberately NOT compared: the snapshot drops
// in-flight keepalive frames (behaviorally invisible at quiescence).
func TestSnapshotRoundTripIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"pure-bgp-ring", Config{Seed: 7, Graph: mustGraph(topology.Ring(5)), Timers: jitterTimers()}},
		{"hybrid-clique", Config{Seed: 11, Graph: mustGraph(topology.Clique(5)), Timers: jitterTimers(),
			SDNMembers: []idr.ASN{2, 3}}},
		{"lossy-collector", Config{Seed: 23, Graph: mustGraph(topology.Line(4)), Timers: jitterTimers(),
			LinkLoss: 0.05, LinkJitter: 5 * time.Millisecond, WithCollector: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e1 := warmedUp(t, tc.cfg)

			snap, err := e1.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			raw, err := EncodeSnapshot(snap)
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := DecodeSnapshot(raw)
			if err != nil {
				t.Fatal(err)
			}
			e2, err := Restore(tc.cfg, decoded)
			if err != nil {
				t.Fatal(err)
			}

			if got, want := e2.K.Now(), e1.K.Now(); !got.Equal(want) {
				t.Fatalf("restored clock %v != %v", got, want)
			}
			if got, want := ribDump(t, e2), ribDump(t, e1); got != want {
				t.Fatalf("restored RIBs differ:\n--- original ---\n%s\n--- restored ---\n%s", want, got)
			}

			d1a, d1b := driveTrigger(t, e1)
			d2a, d2b := driveTrigger(t, e2)
			if d1a != d2a || d1b != d2b {
				t.Fatalf("convergence diverged: original (%v, %v), restored (%v, %v)", d1a, d1b, d2a, d2b)
			}
			s1, r1 := e1.UpdateTotals()
			s2, r2 := e2.UpdateTotals()
			if s1 != s2 || r1 != r2 {
				t.Fatalf("update totals diverged: original (%d, %d), restored (%d, %d)", s1, r1, s2, r2)
			}
			if got, want := ribDump(t, e2), ribDump(t, e1); got != want {
				t.Fatalf("post-trigger RIBs differ:\n--- original ---\n%s\n--- restored ---\n%s", want, got)
			}
			if !e2.K.Now().Equal(e1.K.Now()) {
				t.Fatalf("post-trigger clocks diverged: %v != %v", e2.K.Now(), e1.K.Now())
			}
			if e1.Detector.Events() != e2.Detector.Events() {
				t.Fatalf("detector events diverged: %d != %d", e1.Detector.Events(), e2.Detector.Events())
			}
		})
	}
}

// TestSnapshotForkDivergence restores the same snapshot under two
// different seeds: the forks must both stay correct (full
// reachability after re-convergence) while their jittered dynamics
// are free to differ only where randomness enters.
func TestSnapshotForkDivergence(t *testing.T) {
	cfg := Config{Seed: 7, Graph: mustGraph(topology.Clique(5)), Timers: jitterTimers()}
	e1 := warmedUp(t, cfg)
	snap, err := e1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	fork := func(seed int64) *Experiment {
		c := cfg
		c.Seed = seed
		e, err := Restore(c, snap)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	fa, fb := fork(7), fork(1007)
	// Identical fork point: routing state equal before anything runs.
	if ribDump(t, fa) != ribDump(t, fb) {
		t.Fatal("forks differ at the fork point")
	}
	for _, f := range []*Experiment{fa, fb} {
		if _, _, err := driveTriggerOK(f); err != nil {
			t.Fatal(err)
		}
		for _, from := range f.ASNs() {
			if !f.Reachable(from, 1) {
				t.Fatalf("fork: %v cannot reach origin after re-announce", from)
			}
		}
	}
	// Final routing state re-converges to the same answer; only the
	// timing (jitter draws) differed along the way.
	if ribDump(t, fa) != ribDump(t, fb) {
		t.Fatal("forks converged to different routing state")
	}
}

// TestSnapshotMidBatchRoundTripAndFork captures the experiment while
// the kernel is halfway through a same-timestamp event batch — the
// state the batched drain introduced — and checks both continuation
// fidelity and forking. Four test events share one instant; the kernel
// stops after the second, so the snapshot's KernelState carries a
// clock pinned to the batch timestamp and sequence numbers already
// consumed by the unexecuted half.
func TestSnapshotMidBatchRoundTripAndFork(t *testing.T) {
	cfg := Config{Seed: 7, Graph: mustGraph(topology.Clique(5)), Timers: jitterTimers()}
	e1 := warmedUp(t, cfg)

	var ran int
	for i := 0; i < 4; i++ {
		e1.K.AfterFunc(50*time.Millisecond, func() { ran++ })
	}
	at := e1.K.Now().Add(50 * time.Millisecond)
	if err := e1.K.RunWhile(func() bool { return ran < 2 }); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Fatalf("stopped after %d batch events, want 2", ran)
	}
	if !e1.K.Now().Equal(at) {
		t.Fatalf("clock %v not pinned to the batch instant %v", e1.K.Now(), at)
	}

	snap, err := e1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Restore(cfg, decoded)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := e2.K.Now(), e1.K.Now(); !got.Equal(want) {
		t.Fatalf("restored clock %v != %v", got, want)
	}
	if got, want := ribDump(t, e2), ribDump(t, e1); got != want {
		t.Fatalf("restored RIBs differ:\n--- original ---\n%s\n--- restored ---\n%s", want, got)
	}
	d1a, d1b := driveTrigger(t, e1)
	d2a, d2b := driveTrigger(t, e2)
	if d1a != d2a || d1b != d2b {
		t.Fatalf("convergence diverged: original (%v, %v), restored (%v, %v)", d1a, d1b, d2a, d2b)
	}
	s1, r1 := e1.UpdateTotals()
	s2, r2 := e2.UpdateTotals()
	if s1 != s2 || r1 != r2 {
		t.Fatalf("update totals diverged: original (%d, %d), restored (%d, %d)", s1, r1, s2, r2)
	}
	if got, want := ribDump(t, e2), ribDump(t, e1); got != want {
		t.Fatalf("post-trigger RIBs differ:\n--- original ---\n%s\n--- restored ---\n%s", want, got)
	}

	// The same mid-batch snapshot forks under a fresh seed: jittered
	// dynamics may differ, the converged answer must not.
	fc := cfg
	fc.Seed = 1007
	fork, err := Restore(fc, decoded)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := driveTriggerOK(fork); err != nil {
		t.Fatal(err)
	}
	for _, from := range fork.ASNs() {
		if !fork.Reachable(from, 1) {
			t.Fatalf("fork: %v cannot reach origin after re-announce", from)
		}
	}
	if ribDump(t, fork) != ribDump(t, e1) {
		t.Fatal("fork converged to different routing state")
	}
}

// driveTriggerOK is driveTrigger without the test dependency, for
// closures that tolerate errors.
func driveTriggerOK(e *Experiment) (time.Duration, time.Duration, error) {
	d1, err := e.MeasureConvergence(func() error { return e.Withdraw(1) }, 30*time.Minute)
	if err != nil {
		return 0, 0, err
	}
	d2, err := e.MeasureConvergence(func() error { return e.Announce(1) }, 30*time.Minute)
	if err != nil {
		return 0, 0, err
	}
	return d1, d2, nil
}

// TestSnapshotRefusals pins the guarded error paths: unstarted
// experiments and version skew.
func TestSnapshotRefusals(t *testing.T) {
	cfg := Config{Seed: 1, Graph: mustGraph(topology.Line(3)), Timers: fastTimers()}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Snapshot(); err == nil {
		t.Fatal("snapshot of an unstarted experiment succeeded")
	}
	e2 := warmedUp(t, cfg)
	snap, err := e2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap.Version = SnapshotVersion + 1
	if _, err := Restore(cfg, snap); err == nil {
		t.Fatal("restore accepted a future snapshot version")
	}
	raw, err := EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSnapshot(raw); err == nil {
		t.Fatal("decode accepted a future snapshot version")
	}
}
