package experiment

import (
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/idr"
	"repro/internal/topology"
)

// migrateExperiment builds and warms up a 4-clique with the last K
// ASes clustered.
func migrateExperiment(t *testing.T, k int) *Experiment {
	t.Helper()
	g, err := topology.Clique(4)
	if err != nil {
		t.Fatal(err)
	}
	timers := bgp.DefaultTimers()
	timers.MRAI = 2 * time.Second
	timers.MRAIJitter = false
	nodes := g.Nodes()
	e, err := New(Config{Seed: 1, Graph: g, SDNMembers: nodes[len(nodes)-k:], Timers: timers})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.WaitEstablished(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	for _, asn := range e.ASNs() {
		if err := e.Announce(asn); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.WaitConverged(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	return e
}

func requireAllReachable(t *testing.T, e *Experiment, when string) {
	t.Helper()
	for _, dst := range e.ASNs() {
		if !e.AllReachable(dst) {
			t.Fatalf("%s: prefix of %v unreachable", when, dst)
		}
	}
}

// TestMigrateRoundTrip moves an AS into the cluster and back out
// mid-run, exercising all three link rewires (router-router,
// switch-router, switch-switch) on a clique, and checks the network
// re-converges to full reachability each time — including the
// migrated AS's own origination following it across the boundary.
func TestMigrateRoundTrip(t *testing.T) {
	e := migrateExperiment(t, 1)
	target := e.ASNs()[1]

	if err := e.Migrate(target); err != nil {
		t.Fatal(err)
	}
	if !e.IsSDNMember(target) {
		t.Fatalf("%v not a member after migrate-in", target)
	}
	if _, err := e.WaitConverged(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	requireAllReachable(t, e, "after migrate-in")

	if err := e.Migrate(target); err != nil {
		t.Fatal(err)
	}
	if e.IsSDNMember(target) {
		t.Fatalf("%v still a member after migrate-out", target)
	}
	if _, err := e.WaitConverged(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	requireAllReachable(t, e, "after migrate-out")
}

// TestMigrateOutEmptiesCluster retracts the last member; the network
// keeps running as pure BGP under the idle controller.
func TestMigrateOutEmptiesCluster(t *testing.T) {
	e := migrateExperiment(t, 1)
	last := e.ASNs()[3]
	if err := e.Migrate(last); err != nil {
		t.Fatal(err)
	}
	if _, err := e.WaitConverged(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	requireAllReachable(t, e, "after emptying the cluster")
}

// TestUpdateTotalsMonotonicAcrossMigration pins the retired-counter
// accounting: tearing a router down must not make the network-wide
// totals go backwards.
func TestUpdateTotalsMonotonicAcrossMigration(t *testing.T) {
	e := migrateExperiment(t, 1)
	sentBefore, recvBefore := e.UpdateTotals()
	if sentBefore == 0 || recvBefore == 0 {
		t.Fatalf("warm-up counted no updates (%d sent, %d recv)", sentBefore, recvBefore)
	}
	if err := e.Migrate(e.ASNs()[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := e.WaitConverged(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	sentAfter, recvAfter := e.UpdateTotals()
	if sentAfter < sentBefore || recvAfter < recvBefore {
		t.Fatalf("totals went backwards across migration: sent %d->%d recv %d->%d",
			sentBefore, sentAfter, recvBefore, recvAfter)
	}
}

// TestMigrateAcrossDownLink pins the link-state sync: migrating an AS
// while one of its links is down must not leave the controller
// believing the corresponding port is up (ports default to up when
// registered). The data-plane check is end to end: probes across the
// migrated AS must keep flowing over the alternatives.
func TestMigrateAcrossDownLink(t *testing.T) {
	e := migrateExperiment(t, 1)
	asns := e.ASNs() // clique 1..4, member {4}
	if err := e.FailLink(asns[1], asns[3]); err != nil {
		t.Fatal(err)
	}
	if _, err := e.WaitConverged(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// Migrate AS2 in: the down 2-4 link becomes an intra-cluster edge
	// and must enter the switch graph as down.
	if err := e.Migrate(asns[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := e.WaitConverged(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	requireAllReachable(t, e, "after migrating across a down link")
	for _, flow := range [][2]int{{1, 3}, {0, 1}, {1, 0}, {3, 1}} {
		if err := e.InjectProbe(asns[flow[0]], asns[flow[1]]); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	loss := e.Probes.TotalLoss()
	if loss.Delivered != loss.Sent {
		t.Fatalf("probes blackholed across the down link: %d/%d delivered", loss.Delivered, loss.Sent)
	}
	// Restoring the link must flow through the rebuilt state hook.
	if err := e.RestoreLink(asns[1], asns[3]); err != nil {
		t.Fatal(err)
	}
	if _, err := e.WaitConverged(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	requireAllReachable(t, e, "after restoring the link")
}

// TestMigrateErrors pins the unsupported configurations.
func TestMigrateErrors(t *testing.T) {
	g, err := topology.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	timers := bgp.DefaultTimers()
	timers.MRAI = 2 * time.Second
	timers.MRAIJitter = false

	// No controller: migration has nothing to join.
	e, err := New(Config{Seed: 1, Graph: g, Timers: timers})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Migrate(e.ASNs()[0]); err == nil {
		t.Fatal("migrate before Start should error")
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Migrate(e.ASNs()[0]); err == nil {
		t.Fatal("migrate without a controller should error")
	}

	// Unknown AS and collector-attached experiments are rejected.
	g2, _ := topology.Line(3)
	e2, err := New(Config{Seed: 1, Graph: g2, SDNMembers: []idr.ASN{g2.Nodes()[2]}, Timers: timers, WithCollector: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e2.Migrate(idr.ASN(99)); err == nil {
		t.Fatal("migrating an unknown AS should error")
	}
	if err := e2.Migrate(g2.Nodes()[0]); err == nil {
		t.Fatal("migration with a collector should error")
	}
}
