package experiment

import (
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/idr"
	"repro/internal/topology"
)

// fastTimers keeps protocol dynamics but scales MRAI down so tests
// explore quickly.
func fastTimers() bgp.Timers {
	return bgp.Timers{
		HoldTime:          90 * time.Second,
		KeepaliveFraction: 3,
		ConnectRetry:      time.Second,
		MRAI:              2 * time.Second,
		MRAIJitter:        false,
	}
}

func build(t *testing.T, cfg Config) *Experiment {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.WaitEstablished(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	return e
}

func mustGraph(g *topology.Graph, err error) *topology.Graph {
	if err != nil {
		panic(err)
	}
	return g
}

func announceAllAndSettle(t *testing.T, e *Experiment) {
	t.Helper()
	for _, asn := range e.ASNs() {
		if err := e.Announce(asn); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.WaitConverged(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestPureBGPLineReachability(t *testing.T) {
	g := mustGraph(topology.Line(4))
	e := build(t, Config{Seed: 1, Graph: g, Timers: fastTimers()})
	announceAllAndSettle(t, e)
	for _, from := range e.ASNs() {
		for _, to := range e.ASNs() {
			if !e.Reachable(from, to) {
				t.Fatalf("%v cannot reach %v", from, to)
			}
		}
	}
	// Path from AS1 to AS4 is the line [2 3 4].
	path, ok := e.BestPath(1, 4)
	if !ok || path.String() != "2 3 4" {
		t.Fatalf("path 1->4 = %v", path)
	}
}

func TestPureBGPProbesDeliver(t *testing.T) {
	g := mustGraph(topology.Line(3))
	e := build(t, Config{Seed: 1, Graph: g, Timers: fastTimers()})
	announceAllAndSettle(t, e)
	for i := 0; i < 5; i++ {
		if err := e.InjectProbe(1, 3); err != nil {
			t.Fatal(err)
		}
		if err := e.InjectProbe(3, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	total := e.Probes.TotalLoss()
	if total.Sent != 10 || total.Delivered != 10 {
		t.Fatalf("probes: %+v", total)
	}
}

func TestPureBGPWithdrawalConverges(t *testing.T) {
	g := mustGraph(topology.Clique(6))
	e := build(t, Config{Seed: 2, Graph: g, Timers: fastTimers()})
	announceAllAndSettle(t, e)
	d, err := e.MeasureConvergence(func() error { return e.Withdraw(1) }, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("convergence time = %v, want > 0", d)
	}
	// Nobody should still have a route to AS1's prefix.
	for _, asn := range e.ASNs() {
		if asn == 1 {
			continue
		}
		if e.Reachable(asn, 1) {
			t.Fatalf("%v still has a route to withdrawn prefix", asn)
		}
	}
}

func TestHybridClusterReachability(t *testing.T) {
	// Line 1-2-3-4 with 2,3 as SDN members: legacy ASes 1 and 4 talk
	// across the cluster; the cluster originates its own prefixes.
	g := mustGraph(topology.Line(4))
	e := build(t, Config{
		Seed: 3, Graph: g, Timers: fastTimers(),
		SDNMembers: []idr.ASN{2, 3},
		Debounce:   200 * time.Millisecond,
	})
	announceAllAndSettle(t, e)

	// Legacy -> legacy across the cluster keeps full AS transparency.
	path, ok := e.BestPath(1, 4)
	if !ok {
		t.Fatal("1 cannot reach 4")
	}
	if path.String() != "2 3 4" {
		t.Fatalf("path 1->4 = %q, want \"2 3 4\" (cluster transparent)", path.String())
	}
	// Legacy -> member.
	if !e.Reachable(1, 3) || !e.Reachable(4, 2) {
		t.Fatal("legacy cannot reach cluster prefixes")
	}
	// Member -> legacy (controller-computed path).
	path, ok = e.BestPath(2, 4)
	if !ok || path.String() != "3 4" {
		t.Fatalf("path 2->4 = %v", path)
	}
	// Member -> member.
	if !e.Reachable(2, 3) {
		t.Fatal("intra-cluster prefix unreachable")
	}
	if !e.IsSDNMember(2) || e.IsSDNMember(1) {
		t.Fatal("IsSDNMember wrong")
	}
}

func TestHybridProbesTraverseCluster(t *testing.T) {
	g := mustGraph(topology.Line(4))
	e := build(t, Config{
		Seed: 4, Graph: g, Timers: fastTimers(),
		SDNMembers: []idr.ASN{2, 3},
		Debounce:   200 * time.Millisecond,
	})
	announceAllAndSettle(t, e)
	pairs := [][2]idr.ASN{{1, 4}, {4, 1}, {1, 3}, {2, 4}, {2, 3}}
	for _, p := range pairs {
		if err := e.InjectProbe(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	total := e.Probes.TotalLoss()
	if total.Delivered != uint64(len(pairs)) {
		t.Fatalf("probes: %+v (want %d delivered)", total, len(pairs))
	}
}

func TestHybridWithdrawalCleansUp(t *testing.T) {
	g := mustGraph(topology.Line(4))
	e := build(t, Config{
		Seed: 5, Graph: g, Timers: fastTimers(),
		SDNMembers: []idr.ASN{2, 3},
		Debounce:   200 * time.Millisecond,
	})
	announceAllAndSettle(t, e)
	// Withdraw the legacy prefix of AS4: everyone, including cluster
	// members, must lose it.
	if _, err := e.MeasureConvergence(func() error { return e.Withdraw(4) }, time.Hour); err != nil {
		t.Fatal(err)
	}
	for _, asn := range []idr.ASN{1, 2, 3} {
		if e.Reachable(asn, 4) {
			t.Fatalf("%v still reaches withdrawn AS4 prefix", asn)
		}
	}
	// Withdraw a cluster-originated prefix: legacy must lose it.
	if _, err := e.MeasureConvergence(func() error { return e.Withdraw(2) }, time.Hour); err != nil {
		t.Fatal(err)
	}
	if e.Reachable(1, 2) || e.Reachable(4, 2) {
		t.Fatal("legacy still reaches withdrawn cluster prefix")
	}
}

func TestLinkFailureFailover(t *testing.T) {
	// Ring of 4: fail one link, traffic reroutes the long way.
	g := mustGraph(topology.Ring(4))
	e := build(t, Config{Seed: 6, Graph: g, Timers: fastTimers()})
	announceAllAndSettle(t, e)
	path, _ := e.BestPath(1, 2)
	if path.String() != "2" {
		t.Fatalf("pre-failure path 1->2 = %v", path)
	}
	d, err := e.MeasureConvergence(func() error { return e.FailLink(1, 2) }, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0 {
		t.Fatal("negative convergence time")
	}
	path, ok := e.BestPath(1, 2)
	if !ok {
		t.Fatal("1 lost AS2 entirely after single link failure")
	}
	if path.String() != "4 3 2" {
		t.Fatalf("post-failure path 1->2 = %v, want the long way", path)
	}
	// Restore: the direct path returns.
	if _, err := e.MeasureConvergence(func() error { return e.RestoreLink(1, 2) }, time.Hour); err != nil {
		t.Fatal(err)
	}
	path, _ = e.BestPath(1, 2)
	if path.String() != "2" {
		t.Fatalf("post-restore path 1->2 = %v", path)
	}
	if up, exists := e.Link(1, 2); !exists || !up {
		t.Fatal("Link accessor wrong")
	}
}

func TestCollectorRecords(t *testing.T) {
	g := mustGraph(topology.Line(3))
	e := build(t, Config{Seed: 7, Graph: g, Timers: fastTimers(), WithCollector: true})
	announceAllAndSettle(t, e)
	if e.Coll == nil {
		t.Fatal("collector missing")
	}
	recs := e.Coll.Records()
	if len(recs) == 0 {
		t.Fatal("collector saw no updates")
	}
	// Every legacy router should have reported something.
	seen := map[idr.ASN]bool{}
	for _, r := range recs {
		seen[r.From] = true
	}
	for _, asn := range e.ASNs() {
		if !seen[asn] {
			t.Fatalf("no updates from %v at collector", asn)
		}
	}
	if _, ok := e.Coll.LastUpdate(); !ok {
		t.Fatal("LastUpdate missing")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() time.Duration {
		g := mustGraph(topology.Clique(5))
		timers := fastTimers()
		timers.MRAIJitter = true
		e := build(t, Config{Seed: 42, Graph: g, Timers: timers})
		announceAllAndSettle(t, e)
		d, err := e.MeasureConvergence(func() error { return e.Withdraw(1) }, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
}

func TestSDNReducesWithdrawalConvergence(t *testing.T) {
	// The paper's headline claim in miniature: on a clique, withdrawal
	// convergence with half the ASes under the controller is faster
	// than pure BGP.
	measure := func(members []idr.ASN) time.Duration {
		g := mustGraph(topology.Clique(8))
		timers := fastTimers()
		timers.MRAI = 5 * time.Second
		e := build(t, Config{
			Seed: 11, Graph: g, Timers: timers,
			SDNMembers: members,
			Debounce:   500 * time.Millisecond,
		})
		announceAllAndSettle(t, e)
		d, err := e.MeasureConvergence(func() error { return e.Withdraw(1) }, 2*time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	pure := measure(nil)
	hybrid := measure([]idr.ASN{5, 6, 7, 8})
	t.Logf("withdrawal convergence: pure=%v hybrid(4/8 SDN)=%v", pure, hybrid)
	if hybrid >= pure {
		t.Fatalf("SDN deployment did not reduce convergence: pure=%v hybrid=%v", pure, hybrid)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing graph should error")
	}
	g := topology.New()
	g.AddNode(1)
	g.AddNode(2) // disconnected
	if _, err := New(Config{Graph: g}); err == nil {
		t.Fatal("disconnected graph should error")
	}
	line := mustGraph(topology.Line(2))
	if _, err := New(Config{Graph: line, SDNMembers: []idr.ASN{9}}); err == nil {
		t.Fatal("unknown SDN member should error")
	}
	e, err := New(Config{Graph: line, Timers: fastTimers()})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err == nil {
		t.Fatal("double start should error")
	}
	if err := e.Announce(9); err == nil {
		t.Fatal("announce for unknown AS should error")
	}
	if err := e.FailLink(1, 9); err == nil {
		t.Fatal("failing unknown link should error")
	}
	if _, exists := e.Link(1, 9); exists {
		t.Fatal("unknown link should not exist")
	}
}
