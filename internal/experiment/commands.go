package experiment

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/bgp/wire"
	"repro/internal/frames"
	"repro/internal/idr"
)

// OriginPrefix returns the prefix an AS originates under the address
// plan.
func (e *Experiment) OriginPrefix(asn idr.ASN) (netip.Prefix, error) {
	return e.Plan.OriginPrefix(asn)
}

// Announce originates the AS's planned prefix: via its BGP router for
// legacy ASes, via the IDR controller for cluster members.
func (e *Experiment) Announce(asn idr.ASN) error {
	prefix, err := e.Plan.OriginPrefix(asn)
	if err != nil {
		return err
	}
	e.Detector.Touch()
	if e.members[asn] {
		return e.Ctrl.OriginatePrefix(asn, prefix)
	}
	r, ok := e.Routers[asn]
	if !ok {
		return fmt.Errorf("experiment: unknown AS %v", asn)
	}
	return r.Announce(prefix)
}

// Withdraw retracts the AS's planned prefix.
func (e *Experiment) Withdraw(asn idr.ASN) error {
	prefix, err := e.Plan.OriginPrefix(asn)
	if err != nil {
		return err
	}
	e.Detector.Touch()
	if e.members[asn] {
		return e.Ctrl.WithdrawOriginated(prefix)
	}
	r, ok := e.Routers[asn]
	if !ok {
		return fmt.Errorf("experiment: unknown AS %v", asn)
	}
	return r.Withdraw(prefix)
}

// AnnounceForeign originates prefix at asn even though the address
// plan assigns the prefix to a different AS — the prefix-hijack
// trigger. Only legacy routers can originate foreign prefixes;
// cluster members announce through the controller's planned
// origination (Announce).
func (e *Experiment) AnnounceForeign(asn idr.ASN, prefix netip.Prefix) error {
	r, ok := e.Routers[asn]
	if !ok {
		return fmt.Errorf("experiment: %v is not a legacy BGP router", asn)
	}
	e.Detector.Touch()
	return r.Announce(prefix)
}

// Link returns the emulated link between two ASes.
func (e *Experiment) Link(a, b idr.ASN) (linkUp bool, exists bool) {
	l, ok := e.links[linkKey(a, b)]
	if !ok {
		return false, false
	}
	return l.Up(), true
}

// FailLink takes the a-b link down (dynamic topology change).
func (e *Experiment) FailLink(a, b idr.ASN) error {
	l, ok := e.links[linkKey(a, b)]
	if !ok {
		return fmt.Errorf("experiment: no link %v-%v", a, b)
	}
	e.Detector.Touch()
	l.SetUp(false)
	return nil
}

// RestoreLink brings the a-b link back up.
func (e *Experiment) RestoreLink(a, b idr.ASN) error {
	l, ok := e.links[linkKey(a, b)]
	if !ok {
		return fmt.Errorf("experiment: no link %v-%v", a, b)
	}
	e.Detector.Touch()
	l.SetUp(true)
	return nil
}

// RunFor advances virtual time by d.
func (e *Experiment) RunFor(d time.Duration) error { return e.K.RunFor(d) }

// WaitConverged advances the clock until routing activity has been
// quiet for the settle window (paper: "the framework detects when the
// network has converged") and returns how long convergence took,
// measured from the detector's last Reset to the final routing
// activity.
func (e *Experiment) WaitConverged(timeout time.Duration) (time.Duration, error) {
	start := e.Detector.LastActivity()
	// The triggering command touched the detector; measure from there.
	instant, err := e.Detector.WaitConverged(e.K, timeout)
	if err != nil {
		return 0, err
	}
	return instant.Sub(start), nil
}

// MeasureConvergence resets the detector, runs trigger, then waits for
// quiescence and returns the convergence time: the interval between
// the trigger and the last routing activity it caused.
func (e *Experiment) MeasureConvergence(trigger func() error, timeout time.Duration) (time.Duration, error) {
	e.Detector.Reset()
	t0 := e.K.Now()
	if err := trigger(); err != nil {
		return 0, err
	}
	instant, err := e.Detector.WaitConverged(e.K, timeout)
	if err != nil {
		return 0, err
	}
	d := instant.Sub(t0)
	if d < 0 {
		d = 0
	}
	return d, nil
}

// forwardFromRouter forwards a probe at a legacy router using its
// Loc-RIB, delivering locally when the destination is in the router's
// own origin prefix.
func (e *Experiment) forwardFromRouter(asn idr.ASN, p frames.Probe) error {
	origin, err := e.Plan.OriginPrefix(asn)
	if err != nil {
		return err
	}
	if origin.Contains(p.Dst) {
		e.Probes.OnDelivered(p)
		return nil
	}
	if p.TTL == 0 {
		return nil
	}
	r := e.Routers[asn]
	route, ok := r.Table().Lookup(p.Dst)
	if !ok || route.Local {
		return nil // blackhole: no route
	}
	ep, ok := e.peerEndpoint[asn][route.Peer]
	if !ok {
		return nil
	}
	p.TTL--
	payload, err := frames.EncodeProbe(p)
	if err != nil {
		return err
	}
	return ep.Send(frames.Encode(frames.KindProbe, payload))
}

// InjectProbe sends one probe from src's host to dst's host address
// and registers it with the probe engine.
func (e *Experiment) InjectProbe(src, dst idr.ASN) error {
	srcAddr, err := e.Plan.HostAddr(src, 10)
	if err != nil {
		return err
	}
	dstAddr, err := e.Plan.HostAddr(dst, 10)
	if err != nil {
		return err
	}
	e.registerProbeSource(src)
	return e.Probes.Send(src, dst, srcAddr, dstAddr)
}

func (e *Experiment) registerProbeSource(src idr.ASN) {
	if e.members[src] {
		sw := e.Switches[src]
		e.Probes.RegisterSource(src, sw.InjectProbe)
		return
	}
	e.Probes.RegisterSource(src, func(p frames.Probe) error {
		return e.forwardFromRouter(src, p)
	})
}

// BestPath returns the AS path an AS currently uses toward the
// destination AS's origin prefix. For cluster members the path is the
// controller's computed route (internal members then external path);
// for legacy ASes it is the Loc-RIB best path. ok is false when there
// is no route.
func (e *Experiment) BestPath(from, to idr.ASN) (wire.ASPath, bool) {
	prefix, err := e.Plan.OriginPrefix(to)
	if err != nil {
		return nil, false
	}
	if e.members[from] {
		return e.Ctrl.PathFrom(from, prefix)
	}
	r, ok := e.Routers[from]
	if !ok {
		return nil, false
	}
	best, ok := r.Table().Best(prefix)
	if !ok {
		return nil, false
	}
	return best.Attrs.ASPath, true
}

// Reachable reports whether from currently has a route toward to's
// origin prefix.
func (e *Experiment) Reachable(from, to idr.ASN) bool {
	if from == to {
		return true
	}
	_, ok := e.BestPath(from, to)
	return ok
}

// AllReachable reports whether every AS has a route to dst (dst's own
// view excluded).
func (e *Experiment) AllReachable(dst idr.ASN) bool {
	for _, asn := range e.cfg.Graph.Nodes() {
		if asn == dst {
			continue
		}
		if !e.Reachable(asn, dst) {
			return false
		}
	}
	return true
}

// IsSDNMember reports whether asn is operated by the controller.
func (e *Experiment) IsSDNMember(asn idr.ASN) bool { return e.members[asn] }

// ASNs returns the topology's AS numbers.
func (e *Experiment) ASNs() []idr.ASN { return e.cfg.Graph.Nodes() }
