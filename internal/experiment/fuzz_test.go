package experiment

import (
	"strings"
	"testing"
	"time"

	"repro/internal/topology"
)

// FuzzSnapshotDecode hardens the snapshot codec: arbitrary (malformed,
// truncated, version-skewed) input must always return an error or a
// valid snapshot — never panic, and never both a snapshot and an
// error. Valid input must round-trip through a re-encode.
func FuzzSnapshotDecode(f *testing.F) {
	g, err := topology.Line(3)
	if err != nil {
		f.Fatal(err)
	}
	cfg := Config{Seed: 1, Graph: g}
	e, err := New(cfg)
	if err != nil {
		f.Fatal(err)
	}
	if err := e.Start(); err != nil {
		f.Fatal(err)
	}
	if err := e.WaitEstablished(120e9); err != nil {
		f.Fatal(err)
	}
	snap, err := e.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	raw, err := EncodeSnapshot(snap)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	// A snapshot captured mid-batch: four timers share one instant and
	// the kernel stops after the second, so the encoded KernelState
	// carries a clock pinned inside a half-consumed batch.
	var ran int
	for i := 0; i < 4; i++ {
		e.K.AfterFunc(time.Millisecond, func() { ran++ })
	}
	if err := e.K.RunWhile(func() bool { return ran < 2 }); err != nil {
		f.Fatal(err)
	}
	midSnap, err := e.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	midRaw, err := EncodeSnapshot(midSnap)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(midRaw)
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":2,"kernel":{}}`))
	f.Add([]byte(`{"version":"1"}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Add([]byte(`{"version":1,"routers":[{"asn":1,"state":{"stats":null}}]}`))

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := DecodeSnapshot(b)
		if err != nil {
			if s != nil {
				t.Fatalf("DecodeSnapshot returned both a snapshot and %v", err)
			}
			return
		}
		if s == nil {
			t.Fatal("DecodeSnapshot returned neither a snapshot nor an error")
		}
		if s.Version != SnapshotVersion {
			t.Fatalf("DecodeSnapshot accepted version %d", s.Version)
		}
		re, err := EncodeSnapshot(s)
		if err != nil {
			t.Fatalf("re-encode of accepted snapshot failed: %v", err)
		}
		if !strings.Contains(string(re), `"version":1`) {
			t.Fatalf("re-encode lost the version field: %s", re)
		}
	})
}
