// Package experiment is the framework's high-level orchestration API
// (paper §2: "the user should be able to actively control the
// experiments" while the framework "takes care of configuration
// management"). Given an AS-level topology, a set of SDN cluster
// members and a policy template, it builds the whole emulated network:
//
//   - one BGP router per legacy AS (internal/bgp),
//   - one OpenFlow switch per cluster member plus the IDR controller
//     and its cluster BGP speaker sessions (internal/sdn,
//     internal/core, internal/speaker),
//   - automatic address/prefix assignment (internal/addressing),
//   - a route collector peering with every legacy router
//     (internal/collector),
//   - convergence detection, probe-based loss measurement and event
//     logging (internal/monitor).
//
// Experiment lifecycle commands mirror the paper's Mininet-BGP
// commands: Announce, Withdraw, FailLink, RestoreLink, WaitConverged.
package experiment

import (
	"fmt"
	"time"

	"repro/internal/addressing"
	"repro/internal/bgp"
	"repro/internal/bgp/rib"
	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/frames"
	"repro/internal/idr"
	"repro/internal/monitor"
	"repro/internal/netem"
	"repro/internal/policy"
	"repro/internal/sdn"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Config describes one experiment.
type Config struct {
	// Seed drives all randomness (MRAI jitter, loss draws); two runs
	// with the same config and seed are identical.
	Seed int64
	// Graph is the AS-level topology (required, connected).
	Graph *topology.Graph
	// SDNMembers lists the ASes operated as SDN cluster switches under
	// the IDR controller. Empty means pure BGP.
	SDNMembers []idr.ASN
	// Policy is the BGP policy template (default policy.PermitAll).
	Policy policy.Policy
	// Timers are the BGP protocol timers (default bgp.DefaultTimers).
	Timers bgp.Timers
	// Debounce is the controller's delayed-recomputation window.
	// Zero selects the controller default (core.DefaultDebounce); a
	// negative value disables the delay entirely (recompute
	// immediately). This zero/negative convention is shared verbatim
	// with lab.Trial.Debounce and core.Config.Debounce — a zero-length
	// window is the same thing as disabled, so express "no debounce"
	// with a negative value (the convergence CLI maps an explicit
	// -debounce 0 to disabled).
	Debounce time.Duration
	// LinkDelay is the default inter-AS link delay (default
	// netem.DefaultDelay); per-edge delays from the topology override.
	LinkDelay time.Duration
	// LinkLoss is the per-message loss probability in [0, 1] applied to
	// every inter-AS topology link (control links to the controller and
	// the collector stay clean). Reliable BGP transport recovers lost
	// attempts with retransmission delays; probe traffic is simply
	// dropped. See netem.LinkConfig.Loss.
	LinkLoss float64
	// LinkJitter is the maximum extra random delay on unreliable
	// (probe) sends across every inter-AS topology link, uniform in
	// [0, LinkJitter]. See netem.LinkConfig.Jitter.
	LinkJitter time.Duration
	// ControlDelay is the switch-controller channel delay (default 1ms).
	ControlDelay time.Duration
	// ProcessingDelay is each router's per-UPDATE processing cost
	// (see bgp.Config.ProcessingDelay). Zero disables the model.
	ProcessingDelay time.Duration
	// Damping enables RFC 2439 route-flap damping on every legacy
	// router (nil = off).
	Damping *bgp.DampingConfig
	// WithCollector attaches the route collector to every legacy
	// router (default off; it adds one session per router).
	WithCollector bool
	// Settle is the convergence quiescence window (default
	// monitor.DefaultSettle).
	Settle time.Duration
	// Tuning selects hot-path execution strategies. Every combination
	// produces byte-identical results — the knobs exist for performance
	// work and for the equivalence suite that pins that property.
	Tuning Tuning
}

// Tuning holds execution-only knobs for the data-plane hot paths. None
// of them may change any observable result: traces, snapshots, metrics
// and figure outputs are pinned byte-identical across every setting by
// the hot-path equivalence tests. They are excluded from canonical spec
// serialization (and hence from artifact cache keys) for the same
// reason.
type Tuning struct {
	// RIBShards is the per-router RIB shard count (see
	// bgp.Config.RIBShards): 0 = rib.DefaultShards, 1 = the historical
	// single-map layout, n is rounded up to a power of two.
	RIBShards int
	// SerialDrain disables same-timestamp event batching in the
	// kernel, draining one event per scheduler pass (see
	// sim.Kernel.SerialDrain).
	SerialDrain bool
	// HeapTimers disables the hierarchical timer wheel, filing every
	// timer straight into the binary heap (see sim.Kernel.NoWheel).
	HeapTimers bool
}

// Experiment is one built emulation.
type Experiment struct {
	cfg Config

	// K is the run's private discrete-event kernel; all protocol code
	// and measurement run on its virtual clock.
	K *sim.Kernel
	// Net is the emulated link substrate the frames cross.
	Net *netem.Network
	// Plan is the deterministic address plan: one origin /24 and
	// router ID per AS, one /30 per link.
	Plan *addressing.Plan
	// Routers holds the legacy BGP daemons by AS (cluster members have
	// no entry; a migrated-out AS regains one).
	Routers map[idr.ASN]*bgp.Router
	// Switches holds the cluster members' OpenFlow-like switches.
	Switches map[idr.ASN]*sdn.Switch
	// Ctrl is the IDR controller (nil in pure-BGP experiments).
	Ctrl *core.Controller
	// Coll is the route collector (nil unless WithCollector).
	Coll *collector.Collector
	// Detector is the quiescence-based convergence detector.
	Detector *monitor.Detector
	// Log is the event log behind path-exploration analysis.
	Log *monitor.EventLog
	// Probes is the data-plane probe engine (loss measurements).
	Probes *monitor.ProbeEngine

	members map[idr.ASN]bool
	links   map[[2]idr.ASN]*netem.Link
	// kinds is the per-speaker neighbor-kind table, computed once from
	// the topology at build time (policy.FromTopology) so session
	// setup and policy evaluation never probe the graph again.
	kinds map[[2]idr.ASN]topology.NeighborKind
	// peerEndpoint maps a legacy router's session key to the endpoint
	// it rides on (probe forwarding).
	peerEndpoint map[idr.ASN]map[rib.PeerKey]*netem.Endpoint
	// keyOf maps a legacy node's endpoint to its session key.
	keyOf map[*netem.Endpoint]rib.PeerKey
	// portOf maps a switch node's endpoint to its port number.
	portOf map[*netem.Endpoint]uint32
	// ctrlPeers maps controller-node endpoints to the member served.
	ctrlPeers map[*netem.Endpoint]idr.ASN
	// ctrlEPOf maps a member to its controller-side control endpoint;
	// ctrlLinkOf to the control link itself (torn down on migration).
	ctrlEPOf   map[idr.ASN]*netem.Endpoint
	ctrlLinkOf map[idr.ASN]*netem.Link
	// endpointOf maps (owner, neighbor) to the owner's endpoint on the
	// topology link between them, so migration can rewire in place.
	endpointOf map[[2]idr.ASN]*netem.Endpoint
	// onLinkState is the mutable per-link state-change dispatch: each
	// topology link subscribes once and forwards through this map, so
	// migration can swap a link's protocol hook without leaking stale
	// subscriptions to torn-down routers or switches.
	onLinkState map[[2]idr.ASN]func(up bool)
	// retiredSent/retiredRecv accumulate the UPDATE counters of
	// routers torn down by migration, so UpdateTotals stays monotonic.
	retiredSent, retiredRecv uint64

	// crashedMembers remembers the cluster membership at the instant of
	// a controller crash (ControllerDown), so recovery re-joins exactly
	// the members that fell back to legacy BGP.
	crashedMembers []idr.ASN
	// partitionCut is the seeded AS cut whose links Partition failed
	// (nil while the network is whole); Heal restores them.
	partitionCut [][2]idr.ASN

	started bool
}

func linkKey(a, b idr.ASN) [2]idr.ASN {
	if b < a {
		a, b = b, a
	}
	return [2]idr.ASN{a, b}
}

// ControllerNodeName is the netem node hosting the controller and the
// cluster BGP speaker.
const ControllerNodeName = "controller"

// CollectorNodeName is the netem node hosting the route collector.
const CollectorNodeName = "collector"

// New builds the experiment network. Nothing runs until Start.
func New(cfg Config) (*Experiment, error) {
	if cfg.Graph == nil || cfg.Graph.NumNodes() == 0 {
		return nil, fmt.Errorf("experiment: config needs a topology")
	}
	if !cfg.Graph.Connected() {
		return nil, fmt.Errorf("experiment: topology must be connected")
	}
	if cfg.Policy == nil {
		cfg.Policy = policy.PermitAll{}
	}
	if cfg.ControlDelay == 0 {
		cfg.ControlDelay = time.Millisecond
	}
	if cfg.LinkLoss < 0 || cfg.LinkLoss > 1 {
		return nil, fmt.Errorf("experiment: link loss %v outside [0, 1]", cfg.LinkLoss)
	}
	if cfg.LinkJitter < 0 {
		return nil, fmt.Errorf("experiment: negative link jitter %v", cfg.LinkJitter)
	}

	e := &Experiment{
		cfg:          cfg,
		K:            sim.NewKernel(cfg.Seed),
		Routers:      make(map[idr.ASN]*bgp.Router),
		Switches:     make(map[idr.ASN]*sdn.Switch),
		members:      make(map[idr.ASN]bool),
		links:        make(map[[2]idr.ASN]*netem.Link),
		peerEndpoint: make(map[idr.ASN]map[rib.PeerKey]*netem.Endpoint),
		keyOf:        make(map[*netem.Endpoint]rib.PeerKey),
		portOf:       make(map[*netem.Endpoint]uint32),
		ctrlEPOf:     make(map[idr.ASN]*netem.Endpoint),
		ctrlLinkOf:   make(map[idr.ASN]*netem.Link),
		endpointOf:   make(map[[2]idr.ASN]*netem.Endpoint),
		onLinkState:  make(map[[2]idr.ASN]func(up bool)),
		kinds:        policy.FromTopology(cfg.Graph),
	}
	e.K.SerialDrain = cfg.Tuning.SerialDrain
	e.K.NoWheel = cfg.Tuning.HeapTimers
	e.Net = netem.NewNetwork(e.K, e.K.Rand())
	// Every link draws loss and jitter from a private stream derived
	// from the run seed, so lossy runs stay byte-reproducible no matter
	// how protocol randomness interleaves.
	e.Net.SeedLinks(cfg.Seed)
	// The quiescence window must exceed the largest legitimate gap
	// between routing-update batches, which is the (jittered) MRAI —
	// otherwise a lull between exploration rounds reads as
	// convergence. 1.5x leaves margin for chained propagation delays.
	settle := cfg.Settle
	if settle == 0 {
		mrai := cfg.Timers.MRAI
		if mrai == 0 {
			mrai = bgp.DefaultTimers().MRAI
		}
		settle = mrai + mrai/2
		if settle < monitor.DefaultSettle {
			settle = monitor.DefaultSettle
		}
	}
	e.Detector = monitor.NewDetector(e.K, settle)
	e.Log = monitor.NewEventLog()
	e.Probes = monitor.NewProbeEngine(e.K)

	for _, m := range cfg.SDNMembers {
		if !cfg.Graph.HasNode(m) {
			return nil, fmt.Errorf("experiment: SDN member %v not in topology", m)
		}
		e.members[m] = true
	}

	plan, err := addressing.NewPlan(cfg.Graph.Nodes())
	if err != nil {
		return nil, err
	}
	e.Plan = plan

	if err := e.buildNodes(); err != nil {
		return nil, err
	}
	if err := e.buildLinks(); err != nil {
		return nil, err
	}
	if cfg.WithCollector {
		if err := e.buildCollector(); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// trace fans router events into the log and the convergence detector.
func (e *Experiment) trace(ev bgp.TraceEvent) {
	e.Log.Append(ev)
	e.Detector.BGPActivityTrace(ev)
}

func (e *Experiment) buildNodes() error {
	hasCluster := len(e.members) > 0
	var ctrlNode *netem.Node
	if hasCluster {
		var err error
		ctrlNode, err = e.Net.AddNode(ControllerNodeName)
		if err != nil {
			return err
		}
		e.Ctrl, err = core.New(core.Config{
			Clock:       e.K,
			Debounce:    e.cfg.Debounce,
			HoldTime:    e.cfg.Timers.HoldTime,
			OnRecompute: func(int) { e.Detector.Touch() },
		})
		if err != nil {
			return err
		}
	}

	for _, asn := range e.cfg.Graph.Nodes() {
		node, err := e.Net.AddNode(asn.String())
		if err != nil {
			return err
		}
		if e.members[asn] {
			if err := e.buildSwitch(asn, node, ctrlNode); err != nil {
				return err
			}
			continue
		}
		if err := e.buildRouter(asn, node); err != nil {
			return err
		}
	}

	if hasCluster {
		// The controller node dispatches control frames per member
		// endpoint; the handler is installed when switches are built
		// via ctrlEndpoints. Install the shared dispatcher now.
		ctrlNode.OnMessage(func(from *netem.Endpoint, data []byte) {
			kind, payload, err := frames.Decode(data)
			if err != nil || kind != frames.KindOpenFlow {
				return
			}
			if asn, ok := e.ctrlPeers[from]; ok {
				_ = e.Ctrl.HandleControl(asn, payload)
			}
		})
	}
	return nil
}

func (e *Experiment) buildRouter(asn idr.ASN, node *netem.Node) error {
	id, err := e.Plan.RouterID(asn)
	if err != nil {
		return err
	}
	r, err := bgp.New(bgp.Config{
		ASN:             asn,
		RouterID:        id,
		Clock:           e.K,
		Rand:            e.K.Rand(),
		Policy:          e.cfg.Policy,
		Timers:          e.cfg.Timers,
		Trace:           e.trace,
		ProcessingDelay: e.cfg.ProcessingDelay,
		Damping:         e.cfg.Damping,
		RIBShards:       e.cfg.Tuning.RIBShards,
	})
	if err != nil {
		return err
	}
	e.Routers[asn] = r
	e.peerEndpoint[asn] = make(map[rib.PeerKey]*netem.Endpoint)
	node.OnMessage(e.routerNodeHandler(asn))
	return nil
}

// routerNodeHandler is the receive handler of a legacy-router node. It
// resolves the router at dispatch time, so frames in flight across a
// migration are dropped instead of reaching a torn-down router.
func (e *Experiment) routerNodeHandler(asn idr.ASN) func(from *netem.Endpoint, data []byte) {
	return func(from *netem.Endpoint, data []byte) {
		r, ok := e.Routers[asn]
		if !ok {
			return
		}
		kind, payload, err := frames.Decode(data)
		if err != nil {
			return
		}
		switch kind {
		case frames.KindBGP:
			r.Deliver(e.keyOf[from], payload)
		case frames.KindProbe:
			p, err := frames.DecodeProbe(payload)
			if err != nil {
				return
			}
			_ = e.forwardFromRouter(asn, p)
		}
	}
}

func (e *Experiment) buildSwitch(asn idr.ASN, node, ctrlNode *netem.Node) error {
	// Control channel: a dedicated link to the controller node.
	link, err := e.Net.Connect(node, ctrlNode, netem.LinkConfig{Delay: e.cfg.ControlDelay})
	if err != nil {
		return err
	}
	swEP, ctrlEP := link.Endpoints()
	sw, err := sdn.NewSwitch(asn, func(b []byte) error {
		return swEP.Send(frames.Encode(frames.KindOpenFlow, b))
	})
	if err != nil {
		return err
	}
	origin, err := e.Plan.OriginPrefix(asn)
	if err != nil {
		return err
	}
	sw.AddLocalPrefix(origin)
	sw.OnLocalDeliver = e.Probes.OnDelivered
	e.Switches[asn] = sw
	if err := e.Ctrl.AddMember(asn, func(b []byte) error {
		return ctrlEP.Send(frames.Encode(frames.KindOpenFlow, b))
	}); err != nil {
		return err
	}
	if e.ctrlPeers == nil {
		e.ctrlPeers = make(map[*netem.Endpoint]idr.ASN)
	}
	e.ctrlPeers[ctrlEP] = asn
	e.ctrlEPOf[asn] = ctrlEP
	e.ctrlLinkOf[asn] = link

	node.OnMessage(e.switchNodeHandler(asn, swEP))
	return nil
}

// switchNodeHandler is the receive handler of a cluster-member node:
// control frames from its control endpoint go to the switch's control
// path, everything else arrives on a numbered data port. The switch is
// resolved at dispatch time so frames in flight across a migration are
// dropped instead of reaching a torn-down switch.
func (e *Experiment) switchNodeHandler(asn idr.ASN, swEP *netem.Endpoint) func(from *netem.Endpoint, data []byte) {
	return func(from *netem.Endpoint, data []byte) {
		sw, ok := e.Switches[asn]
		if !ok {
			return
		}
		if from == swEP {
			kind, payload, err := frames.Decode(data)
			if err != nil || kind != frames.KindOpenFlow {
				return
			}
			_ = sw.HandleControl(payload)
			return
		}
		port, ok := e.portOf[from]
		if !ok {
			return
		}
		_ = sw.HandlePort(port, data)
	}
}
