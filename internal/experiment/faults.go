package experiment

import (
	"fmt"
	"math/rand"

	"repro/internal/idr"
)

// Fault-injection commands: the chaos half of the lifecycle API. Each
// command is built from the same migration and link machinery the
// clean workloads use, so a fault leaves the experiment in a state
// every other command still understands.

// SessionReset tears down the BGP session riding the a-b link and lets
// it re-establish — both transports bounce as if the TCP connection
// was reset, while the link itself stays up (no in-flight frames are
// dropped, unlike a link flap). For a router-router session both peer
// FSMs reset and re-open; for a member-router session the controller's
// speaker session resets through the port-status path; for an
// intra-cluster link both switch ports flap.
func (e *Experiment) SessionReset(a, b idr.ASN) error {
	key := linkKey(a, b)
	l, ok := e.links[key]
	if !ok {
		return fmt.Errorf("experiment: no link %v-%v", a, b)
	}
	if !l.Up() {
		return fmt.Errorf("experiment: cannot reset session %v-%v: link is down", a, b)
	}
	h := e.onLinkState[key]
	if h == nil {
		return fmt.Errorf("experiment: no session state hook for %v-%v", a, b)
	}
	e.Detector.Touch()
	h(false)
	h(true)
	return nil
}

// ControllerDown crashes the SDN controller mid-run: every current
// cluster member falls back to a plain legacy BGP router (MigrateOut),
// its control channel dies, and the membership at the instant of the
// crash is remembered so ControllerUp can rebuild it. On a pure-BGP
// experiment (no controller) the crash is a no-op — there is nothing
// to lose — which lets cluster-size sweeps include the K=0 baseline.
func (e *Experiment) ControllerDown() error {
	if e.Ctrl == nil {
		return nil
	}
	if e.crashedMembers != nil {
		return fmt.Errorf("experiment: controller is already down")
	}
	members := e.Ctrl.Members()
	if len(members) == 0 {
		return fmt.Errorf("experiment: controller has no members to crash")
	}
	for _, m := range members {
		if err := e.MigrateOut(m); err != nil {
			return fmt.Errorf("experiment: controller crash: %v: %w", m, err)
		}
	}
	e.crashedMembers = members
	return nil
}

// ControllerUp recovers from a ControllerDown: every member recorded
// at crash time re-joins the cluster (MigrateIn), re-establishing its
// control channel and rewiring its links back into the switch fabric.
// A no-op on a pure-BGP experiment, mirroring ControllerDown.
func (e *Experiment) ControllerUp() error {
	if e.Ctrl == nil {
		return nil
	}
	if e.crashedMembers == nil {
		return fmt.Errorf("experiment: controller is not down")
	}
	members := e.crashedMembers
	e.crashedMembers = nil
	for _, m := range members {
		if err := e.MigrateIn(m); err != nil {
			return fmt.Errorf("experiment: controller recovery: %v: %w", m, err)
		}
	}
	return nil
}

// ControllerCrashed reports whether a ControllerDown is in effect.
func (e *Experiment) ControllerCrashed() bool { return e.crashedMembers != nil }

// Partition fails every link across a seeded AS cut, splitting the
// network into two halves. The cut is derived deterministically from
// the experiment seed: a connected half grows from a seeded start node
// by randomized flood fill until it holds half the ASes, and every
// edge crossing the boundary goes down. Heal restores exactly those
// links. Partitioning an already partitioned network is an error.
func (e *Experiment) Partition() error {
	if e.partitionCut != nil {
		return fmt.Errorf("experiment: network is already partitioned")
	}
	cut := e.seededCut()
	if len(cut) == 0 {
		return fmt.Errorf("experiment: topology too small to partition")
	}
	e.Detector.Touch()
	for _, k := range cut {
		e.links[linkKey(k[0], k[1])].SetUp(false)
	}
	e.partitionCut = cut
	return nil
}

// Heal restores the links failed by the last Partition.
func (e *Experiment) Heal() error {
	if e.partitionCut == nil {
		return fmt.Errorf("experiment: network is not partitioned")
	}
	cut := e.partitionCut
	e.partitionCut = nil
	e.Detector.Touch()
	for _, k := range cut {
		e.links[linkKey(k[0], k[1])].SetUp(true)
	}
	return nil
}

// PartitionCut returns the AS pairs whose links the current partition
// holds down (nil while the network is whole).
func (e *Experiment) PartitionCut() [][2]idr.ASN {
	return append([][2]idr.ASN(nil), e.partitionCut...)
}

// seededCut derives the partition's edge cut from the experiment seed:
// a randomized flood fill (over the deterministic node and neighbor
// orders) grows one connected side to half the topology, and the cut
// is every edge with exactly one endpoint inside.
func (e *Experiment) seededCut() [][2]idr.ASN {
	nodes := e.cfg.Graph.Nodes()
	if len(nodes) < 2 {
		return nil
	}
	rng := rand.New(rand.NewSource(e.cfg.Seed ^ 0x7a47171090))
	target := len(nodes) / 2
	inside := map[idr.ASN]bool{}
	frontier := []idr.ASN{nodes[rng.Intn(len(nodes))]}
	inside[frontier[0]] = true
	for len(inside) < target && len(frontier) > 0 {
		i := rng.Intn(len(frontier))
		cur := frontier[i]
		frontier = append(frontier[:i], frontier[i+1:]...)
		for _, nb := range e.cfg.Graph.Neighbors(cur) {
			if len(inside) >= target {
				break
			}
			if !inside[nb] {
				inside[nb] = true
				frontier = append(frontier, nb)
			}
		}
	}
	var cut [][2]idr.ASN
	for _, edge := range e.cfg.Graph.Edges() {
		if inside[edge.A] != inside[edge.B] {
			cut = append(cut, [2]idr.ASN{edge.A, edge.B})
		}
	}
	return cut
}
