// Converged-state checkpointing: Snapshot captures a started
// experiment's complete mutable state — kernel clock/counters/RNG
// position, link substrate, every BGP router, the controller with its
// speaker sessions, every switch, and the monitors — as one deep,
// self-contained, versioned value. Restore rebuilds the network from
// the same Config (all wiring is reconstructed by construction, never
// serialized) and overlays the captured state, re-arming pending
// timers in globally sorted (deadline, original sequence) order so a
// restored run replays byte-identically to the original.
//
// Seed-dependent randomness is never serialized as generator state:
// every stream is re-derived from the restoring Config's seed and
// fast-forwarded to the captured draw position. Restoring with the
// snapshot's own seed continues the original run exactly; restoring
// with a different seed FORKS it — the run diverges exactly where
// randomness enters (MRAI jitter, loss draws) and nowhere else.
package experiment

import (
	"encoding/json"
	"fmt"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/idr"
	"repro/internal/monitor"
	"repro/internal/netem"
	"repro/internal/sdn"
	"repro/internal/sim"
)

// SnapshotVersion is the current snapshot codec version. Decode
// rejects every other value.
const SnapshotVersion = 1

// RouterEntry pairs a legacy AS with its router state.
type RouterEntry struct {
	// ASN identifies the router.
	ASN idr.ASN `json:"asn"`
	// State is the router's captured state.
	State bgp.RouterState `json:"state"`
}

// SwitchEntry pairs a cluster member with its switch state.
type SwitchEntry struct {
	// ASN identifies the switch.
	ASN idr.ASN `json:"asn"`
	// State is the switch's captured state.
	State sdn.SwitchState `json:"state"`
}

// Snapshot is the complete serializable state of a started experiment.
type Snapshot struct {
	// Version is the codec version (SnapshotVersion).
	Version int `json:"version"`
	// Kernel is the execution state: clock, counters, RNG position.
	Kernel sim.KernelState `json:"kernel"`
	// Net is the link substrate state.
	Net netem.NetworkState `json:"net"`
	// Routers holds the legacy routers, sorted by ASN.
	Routers []RouterEntry `json:"routers,omitempty"`
	// Collector is the route collector's router state (only when the
	// experiment runs one).
	Collector *bgp.RouterState `json:"collector,omitempty"`
	// Controller is the IDR controller state (nil in pure BGP).
	Controller *core.ControllerState `json:"controller,omitempty"`
	// Switches holds the cluster members' switches, sorted by ASN.
	Switches []SwitchEntry `json:"switches,omitempty"`
	// Detector is the convergence detector's state. The event log is
	// not captured: all lab analyses over it are windowed to start at
	// the measurement trigger, after any snapshot point.
	Detector monitor.DetectorState `json:"detector"`
	// Probes is the data-plane prober's state.
	Probes monitor.ProbeState `json:"probes"`
	// RetiredSent is the sent-UPDATE total of routers torn down by
	// migration (kept so UpdateTotals stays monotonic).
	RetiredSent uint64 `json:"retired_sent,omitempty"`
	// RetiredRecv is the received-UPDATE counterpart of RetiredSent.
	RetiredRecv uint64 `json:"retired_recv,omitempty"`
}

// Snapshot captures the experiment's complete mutable state. It
// requires a started experiment whose wiring still matches its build
// configuration: an experiment reshaped by migration, a controller
// crash or a partition cannot be rebuilt from its Config, so it
// refuses to snapshot.
func (e *Experiment) Snapshot() (*Snapshot, error) {
	if !e.started {
		return nil, fmt.Errorf("experiment: snapshot of an unstarted experiment")
	}
	if e.crashedMembers != nil || e.partitionCut != nil {
		return nil, fmt.Errorf("experiment: snapshot during an active fault (controller crash or partition)")
	}
	if len(e.members) != len(e.cfg.SDNMembers) {
		return nil, fmt.Errorf("experiment: snapshot after migration changed the cluster")
	}
	for _, m := range e.cfg.SDNMembers {
		if !e.members[m] {
			return nil, fmt.Errorf("experiment: snapshot after migration changed the cluster")
		}
	}
	snap := &Snapshot{
		Version:     SnapshotVersion,
		Kernel:      e.K.State(),
		Net:         e.Net.State(),
		Detector:    e.Detector.State(),
		Probes:      e.Probes.State(),
		RetiredSent: e.retiredSent,
		RetiredRecv: e.retiredRecv,
	}
	for _, asn := range e.ASNs() {
		if r, ok := e.Routers[asn]; ok {
			snap.Routers = append(snap.Routers, RouterEntry{ASN: asn, State: r.State()})
		}
		if sw, ok := e.Switches[asn]; ok {
			snap.Switches = append(snap.Switches, SwitchEntry{ASN: asn, State: sw.State()})
		}
	}
	if e.Coll != nil {
		st := e.Coll.Router().State()
		snap.Collector = &st
	}
	if e.Ctrl != nil {
		st := e.Ctrl.State()
		snap.Controller = &st
	}
	return snap, nil
}

// Restore builds a runnable experiment that continues snap: the
// network is rebuilt from cfg (which must describe the same topology,
// membership and policy the snapshot was taken under), the captured
// state is overlaid, and every pending timer is re-armed in globally
// sorted (deadline, original sequence) order. The restored experiment
// is already started — do not call Start.
//
// cfg.Seed chooses the continuation's random streams: the snapshot's
// own seed replays the original run byte-identically; a different
// seed forks it, diverging exactly where randomness enters.
func Restore(cfg Config, snap *Snapshot) (*Experiment, error) {
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("experiment: unsupported snapshot version %d (want %d)", snap.Version, SnapshotVersion)
	}
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	// The clock must be restored before any timer re-arms: AfterFunc
	// deadlines are computed against the restored now.
	e.K.BeginRestore(snap.Kernel, cfg.Seed)
	if err := e.Net.RestoreState(snap.Net); err != nil {
		return nil, err
	}
	if len(snap.Routers) != len(e.Routers) {
		return nil, fmt.Errorf("experiment: restore: %d router states for %d routers", len(snap.Routers), len(e.Routers))
	}
	var arms []sim.TimerArm
	for _, re := range snap.Routers {
		r, ok := e.Routers[re.ASN]
		if !ok {
			return nil, fmt.Errorf("experiment: restore: no router %v", re.ASN)
		}
		a, err := r.RestoreState(re.State)
		if err != nil {
			return nil, err
		}
		arms = append(arms, a...)
	}
	if (snap.Collector != nil) != (e.Coll != nil) {
		return nil, fmt.Errorf("experiment: restore: collector presence mismatch")
	}
	if snap.Collector != nil {
		a, err := e.Coll.Router().RestoreState(*snap.Collector)
		if err != nil {
			return nil, err
		}
		arms = append(arms, a...)
	}
	if (snap.Controller != nil) != (e.Ctrl != nil) {
		return nil, fmt.Errorf("experiment: restore: controller presence mismatch")
	}
	if snap.Controller != nil {
		a, err := e.Ctrl.RestoreState(*snap.Controller)
		if err != nil {
			return nil, err
		}
		arms = append(arms, a...)
	}
	if len(snap.Switches) != len(e.Switches) {
		return nil, fmt.Errorf("experiment: restore: %d switch states for %d switches", len(snap.Switches), len(e.Switches))
	}
	for _, se := range snap.Switches {
		sw, ok := e.Switches[se.ASN]
		if !ok {
			return nil, fmt.Errorf("experiment: restore: no switch %v", se.ASN)
		}
		sw.RestoreState(se.State)
	}
	e.Detector.RestoreState(snap.Detector)
	e.Probes.RestoreState(snap.Probes)
	e.retiredSent, e.retiredRecv = snap.RetiredSent, snap.RetiredRecv
	sim.ArmAll(arms)
	e.K.FinishRestore(snap.Kernel)
	e.started = true
	return e, nil
}

// EncodeSnapshot serializes a snapshot with the versioned JSON codec.
// The encoding is deterministic: every collection inside a Snapshot
// is sorted at capture time.
func EncodeSnapshot(s *Snapshot) ([]byte, error) {
	return json.Marshal(s)
}

// DecodeSnapshot parses a versioned snapshot. Malformed or truncated
// input yields an error, never a panic; any version other than
// SnapshotVersion is rejected before the body is decoded.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	var probe struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(b, &probe); err != nil {
		return nil, fmt.Errorf("experiment: snapshot decode: %w", err)
	}
	if probe.Version != SnapshotVersion {
		return nil, fmt.Errorf("experiment: unsupported snapshot version %d (want %d)", probe.Version, SnapshotVersion)
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("experiment: snapshot decode: %w", err)
	}
	return &s, nil
}
