package experiment

import (
	mrand "math/rand"
	"testing"
	"time"

	"repro/internal/sim"

	"repro/internal/idr"
	"repro/internal/policy"
	"repro/internal/topology"
)

func TestGaoRexfordHybrid(t *testing.T) {
	// Provider hierarchy: AS1 provides AS2 and AS3; AS2 provides AS4;
	// AS3 provides AS5; AS2-AS3 peer. The cluster takes over AS2 and
	// AS4 (a provider and its customer).
	g := topology.New()
	for _, e := range []topology.Edge{
		{A: 1, B: 2, Rel: topology.P2C},
		{A: 1, B: 3, Rel: topology.P2C},
		{A: 2, B: 4, Rel: topology.P2C},
		{A: 3, B: 5, Rel: topology.P2C},
		{A: 2, B: 3, Rel: topology.P2P},
	} {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	e := build(t, Config{
		Seed: 8, Graph: g, Timers: fastTimers(),
		SDNMembers: []idr.ASN{2, 4},
		Policy:     policy.GaoRexford{},
		Debounce:   200 * time.Millisecond,
	})
	announceAllAndSettle(t, e)
	// The stub customer AS5 must reach the cluster prefixes and vice
	// versa (up through AS3, across the top, down into the cluster).
	if !e.Reachable(5, 4) {
		t.Fatal("AS5 cannot reach cluster customer AS4")
	}
	if !e.Reachable(5, 2) {
		t.Fatal("AS5 cannot reach cluster member AS2")
	}
	// Everyone reaches everyone in a pure hierarchy (no valleys needed).
	for _, from := range e.ASNs() {
		for _, to := range e.ASNs() {
			if !e.Reachable(from, to) {
				t.Fatalf("%v cannot reach %v", from, to)
			}
		}
	}
	// Valley-freeness at the legacy ASes: AS3's path to AS4 must go up
	// through its provider AS1 or across its peer AS2 — never through
	// a customer.
	path, _ := e.BestPath(3, 4)
	if first, ok := path.First(); !ok || (first != 1 && first != 2) {
		t.Fatalf("AS3's path to AS4 = %v (first hop must be provider or peer)", path)
	}
}

func TestMultiplePrefixesIndependent(t *testing.T) {
	// Withdrawal of one prefix must not disturb routing for others.
	g := mustGraph(topology.Clique(5))
	e := build(t, Config{Seed: 9, Graph: g, Timers: fastTimers(),
		SDNMembers: []idr.ASN{4, 5}, Debounce: 200 * time.Millisecond})
	announceAllAndSettle(t, e)
	before := make(map[idr.ASN]string)
	for _, asn := range e.ASNs() {
		if asn == 2 {
			continue
		}
		p, ok := e.BestPath(asn, 2)
		if !ok {
			t.Fatalf("%v missing route to AS2", asn)
		}
		before[asn] = p.String()
	}
	if _, err := e.MeasureConvergence(func() error { return e.Withdraw(1) }, time.Hour); err != nil {
		t.Fatal(err)
	}
	for asn, want := range before {
		p, ok := e.BestPath(asn, 2)
		if !ok || p.String() != want {
			t.Fatalf("%v's route to AS2 changed after unrelated withdrawal: %v (was %s)", asn, p, want)
		}
	}
}

func TestInternetLikeHybridReachability(t *testing.T) {
	// A synthesized CAIDA-style topology with the tier-1 core under
	// the controller and Gao-Rexford policies everywhere.
	e := buildInternetLike(t, 20, []idr.ASN{1, 2, 3})
	announceAllAndSettle(t, e)
	for _, from := range e.ASNs() {
		for _, to := range e.ASNs() {
			if !e.Reachable(from, to) {
				t.Fatalf("%v cannot reach %v", from, to)
			}
		}
	}
}

func buildInternetLike(t *testing.T, n int, members []idr.ASN) *Experiment {
	t.Helper()
	k := newSeededRand(77)
	g, err := topology.SynthesizeInternetLike(topology.InternetLikeConfig{ASes: n}, k)
	if err != nil {
		t.Fatal(err)
	}
	return build(t, Config{
		Seed: 77, Graph: g, Timers: fastTimers(),
		SDNMembers: members,
		Policy:     policy.GaoRexford{},
		Debounce:   200 * time.Millisecond,
	})
}

func TestBlackoutShorterWithCluster(t *testing.T) {
	// The demo scenario (examples/video-loss) as a regression test: a
	// mid-path link failure after bystander churn blackholes traffic
	// for an MRAI round under pure BGP, but only for about a debounce
	// window when the mid-path ASes are cluster switches.
	measure := func(members []idr.ASN) float64 {
		g := mustGraph(topology.Ring(6))
		timers := fastTimers()
		timers.MRAI = 5 * time.Second
		timers.MRAIJitter = false
		e := build(t, Config{
			Seed: 7, Graph: g, Timers: timers,
			SDNMembers: members, Debounce: 200 * time.Millisecond,
		})
		announceAllAndSettle(t, e)
		e.Probes.ResetStats()
		stopStream := sim.Every(e.K, 50*time.Millisecond, func() {
			_ = e.InjectProbe(1, 4)
		})
		if err := e.RunFor(2 * time.Second); err != nil {
			t.Fatal(err)
		}
		if err := e.Withdraw(5); err != nil { // consume the MRAI slots
			t.Fatal(err)
		}
		if err := e.RunFor(2 * time.Second); err != nil {
			t.Fatal(err)
		}
		if err := e.FailLink(3, 4); err != nil {
			t.Fatal(err)
		}
		if err := e.RunFor(20 * time.Second); err != nil {
			t.Fatal(err)
		}
		stopStream()
		if err := e.RunFor(2 * time.Second); err != nil {
			t.Fatal(err)
		}
		return e.Probes.TotalLoss().Loss()
	}
	pure := measure(nil)
	hybrid := measure([]idr.ASN{2, 3})
	t.Logf("probe loss: pure=%.1f%% hybrid=%.1f%%", 100*pure, 100*hybrid)
	if hybrid >= pure {
		t.Fatalf("cluster should shorten the blackout: pure=%.3f hybrid=%.3f", pure, hybrid)
	}
	if pure < 0.02 {
		t.Fatalf("pure BGP blackout suspiciously short: %.3f", pure)
	}
}

func TestProbeLossDuringBlackhole(t *testing.T) {
	// Probes sent while a prefix is withdrawn are lost, not queued.
	g := mustGraph(topology.Line(3))
	e := build(t, Config{Seed: 10, Graph: g, Timers: fastTimers()})
	announceAllAndSettle(t, e)
	if _, err := e.MeasureConvergence(func() error { return e.Withdraw(3) }, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := e.InjectProbe(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := e.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	stats := e.Probes.TotalLoss()
	if stats.Sent != 1 || stats.Delivered != 0 {
		t.Fatalf("stats = %+v, want 1 sent 0 delivered", stats)
	}
}

func TestReAnnounceAfterWithdraw(t *testing.T) {
	g := mustGraph(topology.Clique(4))
	e := build(t, Config{Seed: 11, Graph: g, Timers: fastTimers(),
		SDNMembers: []idr.ASN{4}, Debounce: 200 * time.Millisecond})
	announceAllAndSettle(t, e)
	for cycle := 0; cycle < 3; cycle++ {
		if _, err := e.MeasureConvergence(func() error { return e.Withdraw(1) }, time.Hour); err != nil {
			t.Fatalf("cycle %d withdraw: %v", cycle, err)
		}
		if e.Reachable(3, 1) || e.Reachable(4, 1) {
			t.Fatalf("cycle %d: prefix still reachable after withdrawal", cycle)
		}
		if _, err := e.MeasureConvergence(func() error { return e.Announce(1) }, time.Hour); err != nil {
			t.Fatalf("cycle %d announce: %v", cycle, err)
		}
		if !e.Reachable(3, 1) || !e.Reachable(4, 1) {
			t.Fatalf("cycle %d: prefix unreachable after re-announcement", cycle)
		}
	}
}

// newSeededRand returns a deterministic rand for topology synthesis.
func newSeededRand(seed int64) *mrand.Rand { return mrand.New(mrand.NewSource(seed)) }
