package experiment

import (
	"fmt"
	"sort"

	"repro/internal/bgp"
	"repro/internal/bgp/rib"
	"repro/internal/idr"
)

// Migrate toggles an AS between legacy BGP and the SDN cluster while
// the experiment runs — the workload engine's "migrate" event. A
// legacy AS joins the cluster (MigrateIn); a member leaves it
// (MigrateOut).
func (e *Experiment) Migrate(asn idr.ASN) error {
	if e.members[asn] {
		return e.MigrateOut(asn)
	}
	return e.MigrateIn(asn)
}

// migratable rejects configurations the mid-run rewiring does not
// support.
func (e *Experiment) migratable(asn idr.ASN) error {
	if !e.started {
		return fmt.Errorf("experiment: migrate before Start; configure membership instead")
	}
	if !e.cfg.Graph.HasNode(asn) {
		return fmt.Errorf("experiment: unknown AS %v", asn)
	}
	if e.Ctrl == nil {
		return fmt.Errorf("experiment: migration needs a controller; build the experiment with at least one SDN member")
	}
	if e.cfg.WithCollector {
		return fmt.Errorf("experiment: migration with an attached route collector is not supported")
	}
	return nil
}

// MigrateIn converts a legacy AS into an SDN cluster member mid-run:
// its BGP router is torn down, an OpenFlow switch takes over its node
// and links, the controller terminates the eBGP sessions its legacy
// neighbors re-establish, and links to member neighbors become
// intra-cluster switch-graph edges. The AS's prefix origination (if
// currently announced) moves to the controller.
func (e *Experiment) MigrateIn(asn idr.ASN) error {
	if err := e.migratable(asn); err != nil {
		return err
	}
	r, ok := e.Routers[asn]
	if !ok {
		return fmt.Errorf("experiment: %v is already a cluster member", asn)
	}
	origin, err := e.Plan.OriginPrefix(asn)
	if err != nil {
		return err
	}
	announced := false
	for _, p := range r.Originated() {
		if p == origin {
			announced = true
		}
	}

	// Retire the router: drop every session (neighbors see the
	// transport reset) and fold its counters into the retired totals.
	for _, key := range sortedPeerKeys(r) {
		r.Peers()[key].TransportDown()
	}
	st := r.Stats()
	e.retiredSent += st.UpdatesSent
	e.retiredRecv += st.UpdatesReceived
	delete(e.Routers, asn)
	for _, ep := range e.peerEndpoint[asn] {
		delete(e.keyOf, ep)
	}
	delete(e.peerEndpoint, asn)

	// Raise the switch on the same node with a fresh control channel.
	node, _ := e.Net.Node(asn.String())
	ctrlNode, ok := e.Net.Node(ControllerNodeName)
	if !ok {
		return fmt.Errorf("experiment: controller node missing")
	}
	e.members[asn] = true
	if err := e.buildSwitch(asn, node, ctrlNode); err != nil {
		return err
	}
	sw := e.Switches[asn]

	// Rewire every incident link.
	for _, nb := range e.cfg.Graph.Neighbors(asn) {
		epSelf := e.endpointOf[[2]idr.ASN{asn, nb}]
		epNb := e.endpointOf[[2]idr.ASN{nb, asn}]
		port, err := sw.AddPort(epSelf.Send)
		if err != nil {
			return err
		}
		e.portOf[epSelf] = port
		key := linkKey(asn, nb)
		if e.members[nb] {
			// The neighbor's external peering toward the old router
			// becomes an intra-cluster switch-graph edge.
			nbPort := e.portOf[epNb]
			if err := e.Ctrl.RemovePeering(nb, nbPort); err != nil {
				return err
			}
			if err := e.Ctrl.SetPortMembership(nb, nbPort, true); err != nil {
				return err
			}
			if err := e.Ctrl.RegisterPort(asn, port, nb, true); err != nil {
				return err
			}
			nbSw := e.Switches[nb]
			e.onLinkState[key] = func(up bool) {
				_ = sw.NotifyPortState(port, up)
				_ = nbSw.NotifyPortState(nbPort, up)
			}
			continue
		}
		// Legacy neighbor: reset its session so it re-establishes with
		// the controller's speaker on the same endpoint.
		nbPeer, ok := e.Routers[nb].Peer(peerKeyTo(asn))
		if !ok {
			return fmt.Errorf("experiment: router %v has no session toward %v", nb, asn)
		}
		nbPeer.TransportDown()
		if err := e.Ctrl.RegisterPort(asn, port, nb, false); err != nil {
			return err
		}
		id, err := e.Plan.RouterID(asn)
		if err != nil {
			return err
		}
		ln, ok := e.Plan.Link(asn, nb)
		if !ok {
			return fmt.Errorf("experiment: no transfer network for %v-%v", asn, nb)
		}
		addrSelf, _ := ln.Addr(asn)
		if err := e.Ctrl.AddExternalPeering(asn, port, nb, id, addrSelf); err != nil {
			return err
		}
		if link := e.links[key]; link.Up() {
			nbPeer.TransportUp()
		}
		e.onLinkState[key] = func(up bool) {
			_ = sw.NotifyPortState(port, up)
			if up {
				nbPeer.TransportUp()
			} else {
				nbPeer.TransportDown()
			}
		}
	}
	e.syncDownLinks(asn)

	if announced {
		if err := e.Ctrl.OriginatePrefix(asn, origin); err != nil {
			return err
		}
	}
	e.registerProbeSource(asn)
	e.Detector.Touch()
	return nil
}

// MigrateOut converts a cluster member back into a legacy BGP router
// mid-run: the controller retracts the member (withdrawing its routes
// from the cluster computation), a fresh router takes over the node
// and re-peers with every neighbor — member neighbors gain a new
// external peering toward it. A cluster-originated prefix owned by the
// member is re-originated by the reborn router.
func (e *Experiment) MigrateOut(asn idr.ASN) error {
	if err := e.migratable(asn); err != nil {
		return err
	}
	if _, ok := e.Switches[asn]; !ok {
		return fmt.Errorf("experiment: %v is not a cluster member", asn)
	}
	origin, err := e.Plan.OriginPrefix(asn)
	if err != nil {
		return err
	}
	owned := false
	if owner, ok := e.Ctrl.Originator(origin); ok && owner == asn {
		owned = true
		if err := e.Ctrl.WithdrawOriginated(origin); err != nil {
			return err
		}
	}
	if err := e.Ctrl.RemoveMember(asn); err != nil {
		return err
	}
	// Tear the switch down: kill the control channel (dropping
	// in-flight OpenFlow frames) and forget the port mappings.
	if link := e.ctrlLinkOf[asn]; link != nil {
		link.SetUp(false)
	}
	delete(e.ctrlPeers, e.ctrlEPOf[asn])
	delete(e.ctrlEPOf, asn)
	delete(e.ctrlLinkOf, asn)
	delete(e.Switches, asn)
	delete(e.members, asn)
	for _, nb := range e.cfg.Graph.Neighbors(asn) {
		delete(e.portOf, e.endpointOf[[2]idr.ASN{asn, nb}])
	}

	// Raise the router on the node and re-peer with every neighbor.
	node, _ := e.Net.Node(asn.String())
	if err := e.buildRouter(asn, node); err != nil {
		return err
	}
	for _, nb := range e.cfg.Graph.Neighbors(asn) {
		epSelf := e.endpointOf[[2]idr.ASN{asn, nb}]
		epNb := e.endpointOf[[2]idr.ASN{nb, asn}]
		ln, ok := e.Plan.Link(asn, nb)
		if !ok {
			return fmt.Errorf("experiment: no transfer network for %v-%v", asn, nb)
		}
		addrSelf, _ := ln.Addr(asn)
		addrNb, _ := ln.Addr(nb)
		key := linkKey(asn, nb)
		selfPeer, err := e.addRouterPeer(asn, nb, epSelf, addrSelf)
		if err != nil {
			return err
		}
		if e.members[nb] {
			// The neighbor's intra-cluster port becomes an external
			// peering terminated by the controller.
			nbPort := e.portOf[epNb]
			if err := e.Ctrl.SetPortMembership(nb, nbPort, false); err != nil {
				return err
			}
			id, err := e.Plan.RouterID(nb)
			if err != nil {
				return err
			}
			if err := e.Ctrl.AddExternalPeering(nb, nbPort, asn, id, addrNb); err != nil {
				return err
			}
			nbSw := e.Switches[nb]
			if link := e.links[key]; link.Up() {
				selfPeer.TransportUp()
			}
			e.onLinkState[key] = func(up bool) {
				_ = nbSw.NotifyPortState(nbPort, up)
				if up {
					selfPeer.TransportUp()
				} else {
					selfPeer.TransportDown()
				}
			}
			continue
		}
		// Legacy neighbor: its session pointed at the speaker; reset it
		// so both router ends re-establish directly.
		nbPeer, ok := e.Routers[nb].Peer(peerKeyTo(asn))
		if !ok {
			return fmt.Errorf("experiment: router %v has no session toward %v", nb, asn)
		}
		nbPeer.TransportDown()
		if link := e.links[key]; link.Up() {
			selfPeer.TransportUp()
			nbPeer.TransportUp()
		}
		e.onLinkState[key] = func(up bool) {
			if up {
				selfPeer.TransportUp()
				nbPeer.TransportUp()
			} else {
				selfPeer.TransportDown()
				nbPeer.TransportDown()
			}
		}
	}
	e.syncDownLinks(asn)

	if owned {
		if err := e.Routers[asn].Announce(origin); err != nil {
			return err
		}
	}
	e.registerProbeSource(asn)
	e.Detector.Touch()
	return nil
}

// syncDownLinks replays a "down" transition through the freshly
// installed state hooks of asn's incident links that are currently
// down. Controller ports default to up when registered, so without
// this a migration across a failed link would leave the controller
// routing over it until the link's next real transition.
func (e *Experiment) syncDownLinks(asn idr.ASN) {
	for _, nb := range e.cfg.Graph.Neighbors(asn) {
		key := linkKey(asn, nb)
		if link := e.links[key]; link != nil && !link.Up() {
			if h := e.onLinkState[key]; h != nil {
				h(false)
			}
		}
	}
}

// sortedPeerKeys returns a router's session keys in sorted order, so
// migration tears sessions down deterministically.
func sortedPeerKeys(r *bgp.Router) []rib.PeerKey {
	keys := make([]rib.PeerKey, 0, len(r.Peers()))
	for k := range r.Peers() {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// UpdateTotals returns the network-wide legacy BGP UPDATE counters,
// including the counters of routers retired by mid-run migration (so
// deltas taken across a migration stay monotonic).
func (e *Experiment) UpdateTotals() (sent, recv uint64) {
	sent, recv = e.retiredSent, e.retiredRecv
	//lint:maporder integer sums of per-router counters commute; Stats only reads
	for _, r := range e.Routers {
		s := r.Stats()
		sent += s.UpdatesSent
		recv += s.UpdatesReceived
	}
	return sent, recv
}
