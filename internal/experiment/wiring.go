package experiment

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"repro/internal/addressing"
	"repro/internal/bgp"
	"repro/internal/bgp/rib"
	"repro/internal/collector"
	"repro/internal/frames"
	"repro/internal/idr"
	"repro/internal/monitor"
	"repro/internal/netem"
	"repro/internal/policy"
	"repro/internal/topology"
)

// peerKeyTo is the conventional session key a router uses for its
// session toward a neighbor AS.
func peerKeyTo(remote idr.ASN) rib.PeerKey {
	return rib.PeerKey(fmt.Sprintf("to-%s", remote))
}

// buildLinks wires every topology edge: router-router peerings,
// router-switch external peerings, and switch-switch cluster links.
func (e *Experiment) buildLinks() error {
	for _, edge := range e.cfg.Graph.Edges() {
		if err := e.buildLink(edge); err != nil {
			return err
		}
	}
	return nil
}

func (e *Experiment) buildLink(edge topology.Edge) error {
	a, b := edge.A, edge.B
	nodeA, _ := e.Net.Node(a.String())
	nodeB, _ := e.Net.Node(b.String())
	delay := edge.Delay
	if delay == 0 {
		delay = e.cfg.LinkDelay
	}
	link, err := e.Net.Connect(nodeA, nodeB, netem.LinkConfig{
		Delay:  delay,
		Jitter: e.cfg.LinkJitter,
		Loss:   e.cfg.LinkLoss,
	})
	if err != nil {
		return err
	}
	key := linkKey(a, b)
	e.links[key] = link
	ln, err := e.Plan.AddLink(a, b)
	if err != nil {
		return err
	}
	epA, epB := link.Endpoints()
	e.endpointOf[[2]idr.ASN{a, b}] = epA
	e.endpointOf[[2]idr.ASN{b, a}] = epB
	// One state-change subscription per link, dispatched through the
	// mutable onLinkState table so migration can swap the protocol
	// hook without leaking subscriptions to torn-down devices.
	link.OnStateChange(func(up bool) {
		if h := e.onLinkState[key]; h != nil {
			h(up)
		}
	})

	memberA, memberB := e.members[a], e.members[b]
	switch {
	case !memberA && !memberB:
		return e.wireRouterRouter(edge, epA, epB, ln)
	case memberA && memberB:
		return e.wireSwitchSwitch(edge, epA, epB)
	case memberA && !memberB:
		return e.wireSwitchRouter(a, b, epA, epB, ln)
	default:
		return e.wireSwitchRouter(b, a, epB, epA, ln)
	}
}

// neighborOf builds the policy neighbor descriptor for remote as seen
// from local, using the neighbor-kind table precomputed at build time
// (pairs without a topology edge — e.g. the collector — resolve to
// KindNone).
func (e *Experiment) neighborOf(local, remote idr.ASN) policy.Neighbor {
	return policy.Neighbor{Key: peerKeyTo(remote), ASN: remote, Kind: e.kinds[[2]idr.ASN{local, remote}]}
}

func (e *Experiment) addRouterPeer(local, remote idr.ASN, ep *netem.Endpoint, addr netip.Addr) (*bgp.Peer, error) {
	r := e.Routers[local]
	key := peerKeyTo(remote)
	p, err := r.AddPeer(bgp.PeerConfig{
		Key:       key,
		RemoteASN: remote,
		Neighbor:  e.neighborOf(local, remote),
		NextHop:   addr,
		Send: func(b []byte) error {
			return ep.Send(frames.Encode(frames.KindBGP, b))
		},
	})
	if err != nil {
		return nil, err
	}
	e.keyOf[ep] = key
	e.peerEndpoint[local][key] = ep
	return p, nil
}

func (e *Experiment) wireRouterRouter(edge topology.Edge, epA, epB *netem.Endpoint, ln addressing.LinkNet) error {
	a, b := edge.A, edge.B
	addrA, _ := ln.Addr(a)
	addrB, _ := ln.Addr(b)
	pa, err := e.addRouterPeer(a, b, epA, addrA)
	if err != nil {
		return err
	}
	pb, err := e.addRouterPeer(b, a, epB, addrB)
	if err != nil {
		return err
	}
	e.onLinkState[linkKey(a, b)] = func(up bool) {
		if up {
			pa.TransportUp()
			pb.TransportUp()
		} else {
			pa.TransportDown()
			pb.TransportDown()
		}
	}
	return nil
}

func (e *Experiment) wireSwitchSwitch(edge topology.Edge, epA, epB *netem.Endpoint) error {
	a, b := edge.A, edge.B
	swA, swB := e.Switches[a], e.Switches[b]
	portA, err := swA.AddPort(epA.Send)
	if err != nil {
		return err
	}
	portB, err := swB.AddPort(epB.Send)
	if err != nil {
		return err
	}
	e.portOf[epA] = portA
	e.portOf[epB] = portB
	if err := e.Ctrl.RegisterPort(a, portA, b, true); err != nil {
		return err
	}
	if err := e.Ctrl.RegisterPort(b, portB, a, true); err != nil {
		return err
	}
	e.onLinkState[linkKey(a, b)] = func(up bool) {
		_ = swA.NotifyPortState(portA, up)
		_ = swB.NotifyPortState(portB, up)
	}
	return nil
}

// wireSwitchRouter wires an external peering: member m's switch port
// faces legacy router l, and the controller terminates the eBGP
// session through the speaker.
func (e *Experiment) wireSwitchRouter(m, l idr.ASN, epM, epL *netem.Endpoint, ln addressing.LinkNet) error {
	sw := e.Switches[m]
	port, err := sw.AddPort(epM.Send)
	if err != nil {
		return err
	}
	e.portOf[epM] = port
	if err := e.Ctrl.RegisterPort(m, port, l, false); err != nil {
		return err
	}
	id, err := e.Plan.RouterID(m)
	if err != nil {
		return err
	}
	addrM, _ := ln.Addr(m)
	addrL, _ := ln.Addr(l)
	if err := e.Ctrl.AddExternalPeering(m, port, l, id, addrM); err != nil {
		return err
	}
	pl, err := e.addRouterPeer(l, m, epL, addrL)
	if err != nil {
		return err
	}
	e.onLinkState[linkKey(m, l)] = func(up bool) {
		_ = sw.NotifyPortState(port, up)
		if up {
			pl.TransportUp()
		} else {
			pl.TransportDown()
		}
	}
	return nil
}

// buildCollector attaches the route collector to every legacy router.
func (e *Experiment) buildCollector() error {
	coll, err := collector.New(collector.Config{
		Clock:  e.K,
		Rand:   e.K.Rand(),
		Timers: e.cfg.Timers,
	})
	if err != nil {
		return err
	}
	e.Coll = coll
	collNode, err := e.Net.AddNode(CollectorNodeName)
	if err != nil {
		return err
	}
	collKeys := make(map[*netem.Endpoint]rib.PeerKey)
	collNode.OnMessage(func(from *netem.Endpoint, data []byte) {
		kind, payload, err := frames.Decode(data)
		if err != nil || kind != frames.KindBGP {
			return
		}
		coll.Router().Deliver(collKeys[from], payload)
	})
	for _, asn := range e.cfg.Graph.Nodes() {
		if e.members[asn] {
			continue // cluster members do not run BGP themselves
		}
		node, _ := e.Net.Node(asn.String())
		link, err := e.Net.Connect(node, collNode, netem.LinkConfig{Delay: e.cfg.ControlDelay})
		if err != nil {
			return err
		}
		epR, epC := link.Endpoints()
		// Router side: a normal peering toward the collector AS.
		pr, err := e.addRouterPeer(asn, coll.ASN(), epR, netip.AddrFrom4([4]byte{172, 31, 0, byte(asn)}))
		if err != nil {
			return err
		}
		// Collector side.
		key := collector.PeerKeyFor(asn)
		pc, err := coll.Router().AddPeer(bgp.PeerConfig{
			Key:       key,
			RemoteASN: asn,
			NextHop:   netip.AddrFrom4([4]byte{172, 31, 255, 1}),
			Send: func(b []byte) error {
				return epC.Send(frames.Encode(frames.KindBGP, b))
			},
		})
		if err != nil {
			return err
		}
		collKeys[epC] = key
		link.OnStateChange(func(up bool) {
			if up {
				pr.TransportUp()
				pc.TransportUp()
			} else {
				pr.TransportDown()
				pc.TransportDown()
			}
		})
	}
	return nil
}

// Start brings every transport up and starts the controller. It does
// not advance the clock; call WaitEstablished or RunFor next.
func (e *Experiment) Start() error {
	if e.started {
		return fmt.Errorf("experiment: already started")
	}
	e.started = true
	if e.Ctrl != nil {
		if err := e.Ctrl.Start(); err != nil {
			return err
		}
	}
	startRouter := func(r *bgp.Router) {
		keys := make([]rib.PeerKey, 0, len(r.Peers()))
		for k := range r.Peers() {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			p := r.Peers()[k]
			e.K.Go(p.TransportUp)
		}
	}
	for _, asn := range e.ASNs() {
		if r, ok := e.Routers[asn]; ok {
			startRouter(r)
		}
	}
	if e.Coll != nil {
		startRouter(e.Coll.Router())
	}
	// Cluster speaker sessions come up via the controller's Start.
	return nil
}

// expectedSessions counts the sessions that should establish.
func (e *Experiment) expectedSessions() (routerSessions int) {
	//lint:maporder integer sums of per-router session counts commute; Peers only reads
	for _, r := range e.Routers {
		routerSessions += len(r.Peers())
	}
	if e.Coll != nil {
		routerSessions += len(e.Coll.Router().Peers())
	}
	return routerSessions
}

// WaitEstablished runs the clock until every BGP session (router side)
// is Established, or errors after timeout.
func (e *Experiment) WaitEstablished(timeout time.Duration) error {
	deadline := e.K.Now().Add(timeout)
	for {
		established := 0
		//lint:maporder integer sums of per-router session counts commute; EstablishedCount only reads
		for _, r := range e.Routers {
			established += r.EstablishedCount()
		}
		if e.Coll != nil {
			established += e.Coll.Router().EstablishedCount()
		}
		if established == e.expectedSessions() {
			return nil
		}
		if !e.K.Now().Before(deadline) {
			return fmt.Errorf("experiment: %d/%d sessions established after %v: %w",
				established, e.expectedSessions(), timeout, monitor.ErrTimeout)
		}
		if err := e.K.RunFor(100 * time.Millisecond); err != nil {
			return err
		}
	}
}
