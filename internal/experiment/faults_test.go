package experiment

import (
	"testing"
	"time"

	"repro/internal/idr"
	"repro/internal/topology"
)

// TestSessionReset pins the reset/reconnect fault: bouncing a live
// session leaves the link up, and the network re-converges to the same
// routes it held before the reset.
func TestSessionReset(t *testing.T) {
	g := mustGraph(topology.Clique(4))
	e := build(t, Config{Seed: 1, Graph: g, Timers: fastTimers()})
	announceAllAndSettle(t, e)
	if err := e.SessionReset(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := e.WaitConverged(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	for _, from := range e.ASNs() {
		for _, to := range e.ASNs() {
			if !e.Reachable(from, to) {
				t.Fatalf("%v cannot reach %v after the session reset", from, to)
			}
		}
	}
	// Resetting a missing or downed link errors.
	if err := e.SessionReset(1, 99); err == nil {
		t.Fatal("reset of a missing link should error")
	}
	if err := e.FailLink(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := e.SessionReset(1, 2); err == nil {
		t.Fatal("reset across a downed link should error")
	}
}

// TestControllerCrashRecovery pins the crash/recover cycle: members
// fall back to legacy BGP (the network stays reachable without the
// controller), recovery rebuilds the cluster, and the state machine
// rejects double crashes and recoveries without a crash.
func TestControllerCrashRecovery(t *testing.T) {
	g := mustGraph(topology.Line(4))
	e := build(t, Config{
		Seed: 3, Graph: g, Timers: fastTimers(),
		SDNMembers: []idr.ASN{2, 3},
		Debounce:   200 * time.Millisecond,
	})
	announceAllAndSettle(t, e)

	if e.ControllerCrashed() {
		t.Fatal("crashed before the crash")
	}
	if err := e.ControllerDown(); err != nil {
		t.Fatal(err)
	}
	if !e.ControllerCrashed() {
		t.Fatal("ControllerCrashed() false after ControllerDown")
	}
	if err := e.ControllerDown(); err == nil {
		t.Fatal("double crash should error")
	}
	if _, err := e.WaitConverged(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// Headless: the ex-members are plain routers now and the network
	// still routes end to end.
	if e.IsSDNMember(2) || e.IsSDNMember(3) {
		t.Fatal("members still in the cluster after the crash")
	}
	for _, from := range e.ASNs() {
		for _, to := range e.ASNs() {
			if !e.Reachable(from, to) {
				t.Fatalf("%v cannot reach %v while the controller is down", from, to)
			}
		}
	}

	if err := e.ControllerUp(); err != nil {
		t.Fatal(err)
	}
	if e.ControllerCrashed() {
		t.Fatal("still crashed after recovery")
	}
	if err := e.ControllerUp(); err == nil {
		t.Fatal("recovery without a crash should error")
	}
	if _, err := e.WaitConverged(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !e.IsSDNMember(2) || !e.IsSDNMember(3) {
		t.Fatal("members did not re-join on recovery")
	}
	for _, from := range e.ASNs() {
		for _, to := range e.ASNs() {
			if !e.Reachable(from, to) {
				t.Fatalf("%v cannot reach %v after recovery", from, to)
			}
		}
	}
}

// TestControllerCrashNoopWithoutCluster pins the K=0 baseline: crash
// and recovery are no-ops on a pure-BGP experiment, so cluster-size
// sweeps keep their zero column.
func TestControllerCrashNoopWithoutCluster(t *testing.T) {
	g := mustGraph(topology.Line(3))
	e := build(t, Config{Seed: 1, Graph: g, Timers: fastTimers()})
	if err := e.ControllerDown(); err != nil {
		t.Fatalf("pure-BGP crash should be a no-op: %v", err)
	}
	if e.ControllerCrashed() {
		t.Fatal("pure-BGP experiment reports a crashed controller")
	}
	if err := e.ControllerUp(); err != nil {
		t.Fatalf("pure-BGP recovery should be a no-op: %v", err)
	}
}

// TestPartitionHeal pins the seeded partition: the cut splits the
// network (some pair loses reachability), the same seed cuts the same
// edges, and Heal restores full reachability.
func TestPartitionHeal(t *testing.T) {
	g := mustGraph(topology.Ring(6))
	e := build(t, Config{Seed: 5, Graph: g, Timers: fastTimers()})
	announceAllAndSettle(t, e)

	if err := e.Partition(); err != nil {
		t.Fatal(err)
	}
	cut := e.PartitionCut()
	if len(cut) == 0 {
		t.Fatal("partition cut no links")
	}
	if err := e.Partition(); err == nil {
		t.Fatal("double partition should error")
	}
	if _, err := e.WaitConverged(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// A ring split in two halves loses cross-half reachability.
	lost := false
	for _, from := range e.ASNs() {
		for _, to := range e.ASNs() {
			if from != to && !e.Reachable(from, to) {
				lost = true
			}
		}
	}
	if !lost {
		t.Fatalf("partition (cut %v) severed nothing", cut)
	}

	// The cut is a pure function of the seed.
	e2 := build(t, Config{Seed: 5, Graph: mustGraph(topology.Ring(6)), Timers: fastTimers()})
	if err := e2.Partition(); err != nil {
		t.Fatal(err)
	}
	cut2 := e2.PartitionCut()
	if len(cut) != len(cut2) {
		t.Fatalf("same seed cut %v then %v", cut, cut2)
	}
	for i := range cut {
		if cut[i] != cut2[i] {
			t.Fatalf("same seed cut %v then %v", cut, cut2)
		}
	}

	if err := e.Heal(); err != nil {
		t.Fatal(err)
	}
	if err := e.Heal(); err == nil {
		t.Fatal("double heal should error")
	}
	if e.PartitionCut() != nil {
		t.Fatal("cut still reported after heal")
	}
	if _, err := e.WaitConverged(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	for _, from := range e.ASNs() {
		for _, to := range e.ASNs() {
			if !e.Reachable(from, to) {
				t.Fatalf("%v cannot reach %v after heal", from, to)
			}
		}
	}
}
