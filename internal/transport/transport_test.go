package transport

import (
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/bgp/rib"
	"repro/internal/bgp/wire"
	"repro/internal/idr"
	"repro/internal/sim"
)

// serialize funnels all router entry points through one mutex: the bgp
// package is single-threaded by contract, and in wall-clock mode
// timers fire on their own goroutines. (The sim.Kernel provides this
// guarantee automatically in virtual-time mode.)
type serialize struct{ mu sync.Mutex }

func (s *serialize) do(f func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f()
}

// lockedClock wraps the wall clock so timer callbacks take the router
// lock before running.
type lockedClock struct {
	inner sim.Clock
	lock  *serialize
}

func (c lockedClock) Now() time.Time { return c.inner.Now() }
func (c lockedClock) AfterFunc(d time.Duration, fn func()) sim.Timer {
	return c.inner.AfterFunc(d, func() { c.lock.do(fn) })
}
func (c lockedClock) Go(fn func()) { c.inner.Go(func() { c.lock.do(fn) }) }

func lockedRouter(t *testing.T, asn idr.ASN, seed int64, lock *serialize) *bgp.Router {
	t.Helper()
	k := sim.NewKernel(seed)
	r, err := bgp.New(bgp.Config{
		ASN:      asn,
		RouterID: idr.RouterIDFromAddr(netip.AddrFrom4([4]byte{172, 16, 0, byte(asn)})),
		Clock:    lockedClock{inner: sim.WallClock{}, lock: lock},
		Rand:     k.Rand(),
		Timers: bgp.Timers{
			HoldTime:          3 * time.Second,
			KeepaliveFraction: 3,
			ConnectRetry:      200 * time.Millisecond,
			MRAI:              50 * time.Millisecond,
			MRAIJitter:        false,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// wireUp attaches a router peer to one net.Conn end and starts the
// read pump.
func wireUp(t *testing.T, r *bgp.Router, remote idr.ASN, conn net.Conn, lock *serialize) (*Stream, *bgp.Peer) {
	t.Helper()
	st := NewStream(conn)
	key := rib.PeerKey("to-" + remote.String())
	p, err := r.AddPeer(bgp.PeerConfig{
		Key:       key,
		RemoteASN: remote,
		NextHop:   netip.AddrFrom4([4]byte{100, 64, 0, byte(remote)}),
		Send:      st.Send,
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		_ = st.Run(func(frame []byte) {
			lock.do(func() { r.Deliver(key, frame) })
		})
	}()
	lock.do(p.TransportUp)
	return st, p
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not met within", timeout)
}

// TestBGPOverRealTCP runs two routers over an actual TCP loopback
// connection in wall-clock time: session establishment, route
// exchange and withdrawal — the framework's live-demo mode.
func TestBGPOverRealTCP(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	lock := &serialize{}
	r1 := lockedRouter(t, 1, 1, lock)
	r2 := lockedRouter(t, 2, 2, lock)

	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	dialed, err := Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	serverConn := <-accepted

	st1, _ := wireUp(t, r1, 2, dialed, lock)
	st2, _ := wireUp(t, r2, 1, serverConn, lock)
	defer st1.Close()
	defer st2.Close()

	waitFor(t, 5*time.Second, func() bool {
		lock.mu.Lock()
		defer lock.mu.Unlock()
		return r1.EstablishedCount() == 1 && r2.EstablishedCount() == 1
	})

	pfx := netip.MustParsePrefix("10.0.1.0/24")
	lock.do(func() {
		if err := r1.Announce(pfx); err != nil {
			t.Error(err)
		}
	})
	waitFor(t, 5*time.Second, func() bool {
		lock.mu.Lock()
		defer lock.mu.Unlock()
		_, ok := r2.Table().Best(pfx)
		return ok
	})
	lock.do(func() {
		best, _ := r2.Table().Best(pfx)
		if !best.Attrs.ASPath.Equal(wire.NewASPath(1)) {
			t.Errorf("path = %v", best.Attrs.ASPath)
		}
	})
	lock.do(func() {
		if err := r1.Withdraw(pfx); err != nil {
			t.Error(err)
		}
	})
	waitFor(t, 5*time.Second, func() bool {
		lock.mu.Lock()
		defer lock.mu.Unlock()
		_, ok := r2.Table().Best(pfx)
		return !ok
	})
}

func TestBGPOverDelayedPipe(t *testing.T) {
	lock := &serialize{}
	r1 := lockedRouter(t, 1, 1, lock)
	r2 := lockedRouter(t, 2, 2, lock)
	c1, c2 := DelayedPipe(10 * time.Millisecond)
	st1, _ := wireUp(t, r1, 2, c1, lock)
	st2, _ := wireUp(t, r2, 1, c2, lock)
	defer st1.Close()
	defer st2.Close()
	waitFor(t, 5*time.Second, func() bool {
		lock.mu.Lock()
		defer lock.mu.Unlock()
		return r1.EstablishedCount() == 1 && r2.EstablishedCount() == 1
	})
}

func TestDelayedPipeLatency(t *testing.T) {
	const delay = 50 * time.Millisecond
	a, b := DelayedPipe(delay)
	defer a.Close()
	defer b.Close()
	msg := []byte("hello")
	start := time.Now()
	go func() {
		if _, err := a.Write(msg); err != nil {
			t.Error(err)
		}
	}()
	buf := make([]byte, len(msg))
	if _, err := b.Read(buf); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < delay {
		t.Fatalf("message arrived after %v, want >= %v", elapsed, delay)
	}
	if string(buf) != "hello" {
		t.Fatalf("payload = %q", buf)
	}
}

func TestDelayedPipeZeroDelay(t *testing.T) {
	a, b := DelayedPipe(0)
	defer a.Close()
	defer b.Close()
	go a.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := b.Read(buf); err != nil {
		t.Fatal(err)
	}
}

func TestStreamSendAfterClose(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	st := NewStream(a)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Send([]byte{1}); err == nil {
		t.Fatal("send after close should error")
	}
	if err := st.Close(); err != nil {
		t.Fatal("double close should be a no-op")
	}
}

func TestStreamRunStopsOnClose(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	st := NewStream(a)
	done := make(chan error, 1)
	go func() { done <- st.Run(func([]byte) {}) }()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Run should return an error on close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop")
	}
}

func TestStreamReframesPartialReads(t *testing.T) {
	// Write a frame byte by byte: the reader must still assemble it.
	a, b := net.Pipe()
	st := NewStream(b)
	got := make(chan []byte, 1)
	go func() {
		_ = st.Run(func(frame []byte) { got <- frame })
	}()
	frame, err := wire.Marshal(wire.Keepalive{})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for _, by := range frame {
			if _, err := a.Write([]byte{by}); err != nil {
				return
			}
		}
	}()
	select {
	case f := <-got:
		if len(f) != len(frame) {
			t.Fatalf("frame length = %d, want %d", len(f), len(frame))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("frame not assembled")
	}
	a.Close()
	st.Close()
}

func TestListenDialErrors(t *testing.T) {
	if _, err := Listen("256.0.0.1:0"); err == nil {
		t.Fatal("bad listen address should error")
	}
	if _, err := Dial("127.0.0.1:1", 50*time.Millisecond); err == nil {
		t.Fatal("dial to closed port should error")
	}
}
