// Package transport runs the framework's BGP speakers over real byte
// streams for wall-clock ("live demo") mode: the virtual-time emulator
// in internal/netem is the default substrate, but every speaker in
// this repository sends and receives byte-exact RFC 4271 frames, so
// sessions work unchanged over net.Conn — TCP on the loopback, Unix
// sockets, or the in-memory DelayedPipe.
//
// Stream adapts between the speakers' frame-oriented interface
// (Send func([]byte) error on the way out, Deliver([]byte) on the way
// in) and a net.Conn: outbound frames are written whole, inbound bytes
// are re-framed with wire.ReadMessage.
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/bgp/wire"
)

// Stream pumps BGP frames over one net.Conn.
type Stream struct {
	conn net.Conn

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// NewStream wraps conn. Call Run to start the read loop.
func NewStream(conn net.Conn) *Stream {
	return &Stream{conn: conn}
}

// Send writes one complete BGP frame to the stream. It is safe for
// concurrent use.
func (s *Stream) Send(frame []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("transport: stream closed")
	}
	if _, err := s.conn.Write(frame); err != nil {
		return fmt.Errorf("transport: write: %w", err)
	}
	return nil
}

// Run reads frames until the connection fails or Close is called,
// passing each complete BGP message frame to deliver. It returns the
// terminal read error (io.EOF on orderly shutdown). deliver runs on
// the read-loop goroutine; callers needing an executor (e.g. a
// sim.Clock) must hop themselves.
func (s *Stream) Run(deliver func(frame []byte)) error {
	s.wg.Add(1)
	defer s.wg.Done()
	for {
		frame, err := wire.ReadMessage(s.conn)
		if err != nil {
			return err
		}
		deliver(frame)
	}
}

// Close shuts the connection down; Run returns.
func (s *Stream) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

// DelayedPipe returns an in-memory, reliable, in-order duplex
// connection pair whose writes become readable on the far side only
// after the given one-way delay — net.Pipe with link latency. It is
// the wall-clock analogue of a netem link for stream transports.
func DelayedPipe(delay time.Duration) (net.Conn, net.Conn) {
	a, b := net.Pipe()
	if delay <= 0 {
		return a, b
	}
	da, db := net.Pipe() // da handed to the caller; db pumps into a
	go shuttle(a, db, delay)
	go shuttle(db, a, delay)
	return da, b
}

// shuttle copies src->dst delaying each chunk by delay. Closing either
// side stops the pump and closes both.
func shuttle(src, dst net.Conn, delay time.Duration) {
	//lint:errcheck pump teardown closes both ends; a second Close returning "already closed" is expected
	defer dst.Close()
	//lint:errcheck pump teardown closes both ends; a second Close returning "already closed" is expected
	defer src.Close()
	buf := make([]byte, 64<<10)
	type chunk struct {
		at   time.Time
		data []byte
	}
	queue := make(chan chunk, 1024)
	go func() {
		defer close(queue)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				queue <- chunk{at: time.Now().Add(delay), data: append([]byte(nil), buf[:n]...)}
			}
			if err != nil {
				return
			}
		}
	}()
	for c := range queue {
		if d := time.Until(c.at); d > 0 {
			time.Sleep(d)
		}
		if _, err := dst.Write(c.data); err != nil {
			return
		}
	}
}

// Listen starts a TCP listener on addr ("127.0.0.1:0" for an ephemeral
// loopback port) and returns it.
func Listen(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return ln, nil
}

// Dial connects to a listener created with Listen.
func Dial(addr string, timeout time.Duration) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return conn, nil
}
