// Package collector implements the framework's BGP route collector
// (paper §3: "All BGP routers peer with a BGP route collector, which
// collects routing updates for monitoring purposes").
//
// The collector is a real BGP speaker: it accepts sessions, imports
// everything into its RIB and exports nothing, while recording every
// UPDATE with a timestamp for offline analysis — a lightweight
// MRT-like feed in the spirit of RFC 6396's BGP4MP records, traded
// down to a self-describing JSON Lines serialisation.
//
// # Dump schema
//
// WriteJSONL emits one JSON object per collected UPDATE, in arrival
// order, with the following fields (see Record):
//
//	{
//	  "time": "2000-01-01T00:05:42.103Z",       // RFC 3339, virtual clock
//	  "from": 7,                                 // monitored router's ASN
//	  "announced": {"10.0.3.0/24": "7 3"},       // prefix -> AS path,
//	                                             //   omitted when empty
//	  "withdrawn": ["10.0.9.0/24"]               // omitted when empty
//	}
//
// "time" is the emulation's virtual clock (sim.Epoch-based), so dumps
// from the same seed are byte-identical. "announced" maps every NLRI
// prefix of the UPDATE to the advertised AS_PATH in the conventional
// "1 2 {3,4}" rendering; "withdrawn" lists withdrawn prefixes in
// UPDATE order. ReadJSONL parses the format back into Records, so a
// dump round-trips for offline analysis.
package collector

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/bgp"
	"repro/internal/bgp/rib"
	"repro/internal/bgp/wire"
	"repro/internal/idr"
	"repro/internal/policy"
	"repro/internal/sim"
)

// DefaultASN is the collector's conventional private AS number.
const DefaultASN idr.ASN = 65000

// Record is one collected routing update — one line of the JSONL dump
// (see the package doc for the full schema).
type Record struct {
	// Time is the virtual-clock arrival instant of the UPDATE.
	Time time.Time `json:"time"`
	// From is the router the update came from.
	From idr.ASN `json:"from"`
	// Announced maps prefix -> AS path for the NLRI in the update
	// (omitted when the UPDATE announced nothing).
	Announced map[string]string `json:"announced,omitempty"`
	// Withdrawn lists withdrawn prefixes (omitted when none).
	Withdrawn []string `json:"withdrawn,omitempty"`
}

// silentPolicy imports everything and exports nothing: the collector
// listens only.
type silentPolicy struct{}

func (silentPolicy) Import(policy.Neighbor, *rib.Route) bool                  { return true }
func (silentPolicy) Export(policy.Neighbor, policy.Neighbor, *rib.Route) bool { return false }

// Collector is the route collector instance.
type Collector struct {
	router  *bgp.Router
	clock   sim.Clock
	records []Record
	last    time.Time
}

// Config configures the collector.
type Config struct {
	// ASN defaults to DefaultASN.
	ASN   idr.ASN
	Clock sim.Clock
	Rand  *rand.Rand
	// Timers defaults to bgp.DefaultTimers with MRAI irrelevant (the
	// collector never advertises).
	Timers bgp.Timers
}

// New builds a collector.
func New(cfg Config) (*Collector, error) {
	if cfg.ASN == 0 {
		cfg.ASN = DefaultASN
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("collector: needs a clock")
	}
	c := &Collector{clock: cfg.Clock}
	router, err := bgp.New(bgp.Config{
		ASN:      cfg.ASN,
		RouterID: idr.RouterIDFromAddr(netip.AddrFrom4([4]byte{172, 31, 255, 1})),
		Clock:    cfg.Clock,
		Rand:     cfg.Rand,
		Policy:   silentPolicy{},
		Timers:   cfg.Timers,
		Trace:    c.onTrace,
	})
	if err != nil {
		return nil, err
	}
	c.router = router
	return c, nil
}

// Router exposes the collector's BGP speaker for session wiring.
func (c *Collector) Router() *bgp.Router { return c.router }

// ASN returns the collector's AS number.
func (c *Collector) ASN() idr.ASN { return c.router.ASN() }

func (c *Collector) onTrace(ev bgp.TraceEvent) {
	if ev.Kind != bgp.TraceRecv {
		return
	}
	u, ok := ev.Msg.(wire.Update)
	if !ok {
		return
	}
	rec := Record{Time: ev.Time, From: peerASNFromKey(ev.Peer)}
	if len(u.NLRI) > 0 {
		rec.Announced = make(map[string]string, len(u.NLRI))
		for _, p := range u.NLRI {
			rec.Announced[p.String()] = u.Attrs.ASPath.String()
		}
	}
	for _, p := range u.Withdrawn {
		rec.Withdrawn = append(rec.Withdrawn, p.String())
	}
	c.records = append(c.records, rec)
	c.last = ev.Time
}

// peerASNFromKey extracts the remote ASN from the framework's
// conventional peer keys ("from-AS<number>"). Unknown shapes yield 0.
func peerASNFromKey(key rib.PeerKey) idr.ASN {
	var n uint32
	if _, err := fmt.Sscanf(string(key), "from-AS%d", &n); err == nil {
		return idr.ASN(n)
	}
	return 0
}

// PeerKeyFor returns the conventional collector-side peer key for a
// monitored router.
func PeerKeyFor(asn idr.ASN) rib.PeerKey {
	return rib.PeerKey(fmt.Sprintf("from-AS%d", uint32(asn)))
}

// Records returns all collected updates in arrival order.
func (c *Collector) Records() []Record { return c.records }

// LastUpdate returns the time of the most recent update, or false when
// nothing was collected.
func (c *Collector) LastUpdate() (time.Time, bool) {
	if c.last.IsZero() {
		return time.Time{}, false
	}
	return c.last, true
}

// CountSince counts updates at or after t.
func (c *Collector) CountSince(t time.Time) int {
	n := 0
	for _, r := range c.records {
		if !r.Time.Before(t) {
			n++
		}
	}
	return n
}

// Buckets histograms update arrivals into fixed-width buckets starting
// at start; useful for plotting update bursts during convergence.
func (c *Collector) Buckets(start time.Time, width time.Duration, n int) []int {
	out := make([]int, n)
	for _, r := range c.records {
		if r.Time.Before(start) {
			continue
		}
		idx := int(r.Time.Sub(start) / width)
		if idx >= 0 && idx < n {
			out[idx]++
		}
	}
	return out
}

// WriteJSONL streams the collected records as JSON lines in the
// package doc's dump schema, one record per line, in arrival order.
func (c *Collector) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range c.records {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a dump written by WriteJSONL back into records,
// preserving order — the offline-analysis half of the round trip.
// Blank lines are skipped; a malformed line errors with its number.
func ReadJSONL(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(r)
	var out []Record
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("collector: record %d: %w", len(out)+1, err)
		}
		out = append(out, rec)
	}
}
