package collector

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/idr"
	"repro/internal/netem"
	"repro/internal/policy"
	"repro/internal/sim"
)

// rig peers one monitored router (AS 7) with a collector over netem.
func rig(t *testing.T) (*sim.Kernel, *Collector, *bgp.Router) {
	t.Helper()
	k := sim.NewKernel(1)
	net := netem.NewNetwork(k, k.Rand())
	coll, err := New(Config{Clock: k, Rand: k.Rand(),
		Timers: bgp.Timers{MRAI: time.Second, MRAIJitter: false}})
	if err != nil {
		t.Fatal(err)
	}
	r, err := bgp.New(bgp.Config{
		ASN:      7,
		RouterID: idr.RouterIDFromAddr(netip.MustParseAddr("172.16.0.7")),
		Clock:    k,
		Rand:     k.Rand(),
		Timers:   bgp.Timers{MRAI: time.Second, MRAIJitter: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	rNode, _ := net.AddNode("r")
	cNode, _ := net.AddNode("coll")
	link, err := net.Connect(rNode, cNode, netem.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	epR, epC := link.Endpoints()
	pr, err := r.AddPeer(bgp.PeerConfig{
		Key: "to-coll", RemoteASN: coll.ASN(),
		NextHop: netip.MustParseAddr("172.31.0.7"), Send: epR.Send,
	})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := coll.Router().AddPeer(bgp.PeerConfig{
		Key: PeerKeyFor(7), RemoteASN: 7,
		NextHop: netip.MustParseAddr("172.31.255.1"), Send: epC.Send,
	})
	if err != nil {
		t.Fatal(err)
	}
	rNode.OnMessage(func(from *netem.Endpoint, data []byte) { r.Deliver("to-coll", data) })
	cNode.OnMessage(func(from *netem.Endpoint, data []byte) { coll.Router().Deliver(PeerKeyFor(7), data) })
	k.Go(func() {
		pr.TransportUp()
		pc.TransportUp()
	})
	return k, coll, r
}

func TestCollectorRecordsAnnounceAndWithdraw(t *testing.T) {
	k, coll, r := rig(t)
	pfx := netip.MustParsePrefix("10.0.7.0/24")
	k.AfterFunc(time.Second, func() { _ = r.Announce(pfx) })
	k.AfterFunc(10*time.Second, func() { _ = r.Withdraw(pfx) })
	if err := k.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	recs := coll.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2 (%+v)", len(recs), recs)
	}
	if recs[0].From != 7 || recs[0].Announced[pfx.String()] != "7" {
		t.Fatalf("announce record = %+v", recs[0])
	}
	if len(recs[1].Withdrawn) != 1 || recs[1].Withdrawn[0] != pfx.String() {
		t.Fatalf("withdraw record = %+v", recs[1])
	}
	if recs[0].Time.After(recs[1].Time) {
		t.Fatal("records out of order")
	}
	// The collector's own RIB holds nothing after the withdrawal.
	if _, ok := coll.Router().Table().Best(pfx); ok {
		t.Fatal("collector RIB should be empty after withdrawal")
	}
	last, ok := coll.LastUpdate()
	if !ok || !last.Equal(recs[1].Time) {
		t.Fatal("LastUpdate wrong")
	}
	if coll.CountSince(recs[1].Time) != 1 {
		t.Fatal("CountSince wrong")
	}
}

func TestCollectorNeverAdvertises(t *testing.T) {
	k, coll, r := rig(t)
	pfx := netip.MustParsePrefix("10.0.7.0/24")
	k.AfterFunc(time.Second, func() { _ = r.Announce(pfx) })
	// Give the collector something it could in principle re-advertise,
	// plus plenty of time.
	if err := k.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if sent := coll.Router().Stats().UpdatesSent; sent != 0 {
		t.Fatalf("collector sent %d updates; must be silent", sent)
	}
	// The monitored router never received an UPDATE from the collector.
	if got := r.Stats().UpdatesReceived; got != 0 {
		t.Fatalf("router received %d updates from collector", got)
	}
}

func TestCollectorBuckets(t *testing.T) {
	k, coll, r := rig(t)
	pfx1 := netip.MustParsePrefix("10.0.7.0/24")
	pfx2 := netip.MustParsePrefix("10.1.7.0/24")
	k.AfterFunc(time.Second, func() { _ = r.Announce(pfx1) })
	k.AfterFunc(11*time.Second, func() { _ = r.Announce(pfx2) })
	if err := k.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	buckets := coll.Buckets(sim.Epoch, 5*time.Second, 4)
	if buckets[0] != 1 || buckets[2] != 1 {
		t.Fatalf("buckets = %v", buckets)
	}
	// Out-of-range records are ignored.
	if coll.Buckets(sim.Epoch.Add(time.Hour), time.Second, 2)[0] != 0 {
		t.Fatal("future start should see nothing")
	}
}

func TestCollectorJSONL(t *testing.T) {
	k, coll, r := rig(t)
	pfx := netip.MustParsePrefix("10.0.7.0/24")
	k.AfterFunc(time.Second, func() { _ = r.Announce(pfx) })
	if err := k.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := coll.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"from":7`) || !strings.Contains(out, "10.0.7.0/24") {
		t.Fatalf("jsonl = %q", out)
	}
}

// TestCollectorJSONLRoundTrip pins the dump schema: a feed written
// with WriteJSONL parses back into the identical records, so offline
// analysis can consume dumps without touching the emulator.
func TestCollectorJSONLRoundTrip(t *testing.T) {
	k, coll, r := rig(t)
	pfx := netip.MustParsePrefix("10.0.7.0/24")
	k.AfterFunc(time.Second, func() { _ = r.Announce(pfx) })
	k.AfterFunc(10*time.Second, func() { _ = r.Withdraw(pfx) })
	if err := k.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	want := coll.Records()
	if len(want) != 2 {
		t.Fatalf("records = %d, want 2", len(want))
	}
	var buf bytes.Buffer
	if err := coll.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("round trip lost records: %d != %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Time.Equal(want[i].Time) || got[i].From != want[i].From {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
		if len(got[i].Announced) != len(want[i].Announced) {
			t.Fatalf("record %d announced: got %v, want %v", i, got[i].Announced, want[i].Announced)
		}
		for p, path := range want[i].Announced {
			if got[i].Announced[p] != path {
				t.Fatalf("record %d prefix %s: got path %q, want %q", i, p, got[i].Announced[p], path)
			}
		}
		if len(got[i].Withdrawn) != len(want[i].Withdrawn) {
			t.Fatalf("record %d withdrawn: got %v, want %v", i, got[i].Withdrawn, want[i].Withdrawn)
		}
		for j := range want[i].Withdrawn {
			if got[i].Withdrawn[j] != want[i].Withdrawn[j] {
				t.Fatalf("record %d withdrawn[%d]: got %q, want %q", i, j, got[i].Withdrawn[j], want[i].Withdrawn[j])
			}
		}
	}
	// Malformed input errors with the record number instead of
	// silently truncating the feed.
	if _, err := ReadJSONL(strings.NewReader("{\"time\":\"2000-01-01T00:00:00Z\"}\n{broken")); err == nil {
		t.Fatal("malformed line should error")
	}
}

func TestPeerKeyRoundTrip(t *testing.T) {
	if got := peerASNFromKey(PeerKeyFor(64500)); got != 64500 {
		t.Fatalf("round trip = %v", got)
	}
	if got := peerASNFromKey("weird"); got != 0 {
		t.Fatalf("unknown key = %v, want 0", got)
	}
}

func TestCollectorConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing clock should error")
	}
	k := sim.NewKernel(1)
	c, err := New(Config{Clock: k, Rand: k.Rand()})
	if err != nil {
		t.Fatal(err)
	}
	if c.ASN() != DefaultASN {
		t.Fatalf("default ASN = %v", c.ASN())
	}
	if _, ok := c.LastUpdate(); ok {
		t.Fatal("fresh collector should have no updates")
	}
	// silentPolicy: imports everything, exports nothing.
	var p silentPolicy
	if !p.Import(policy.Neighbor{}, nil) {
		t.Fatal("silent policy must import")
	}
	if p.Export(policy.Neighbor{}, policy.Neighbor{}, nil) {
		t.Fatal("silent policy must not export")
	}
}
