package netem

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/sim"
)

func newNet(t *testing.T) (*sim.Kernel, *Network) {
	t.Helper()
	k := sim.NewKernel(1)
	return k, NewNetwork(k, k.Rand())
}

func twoNodes(t *testing.T, n *Network) (*Node, *Node) {
	t.Helper()
	a, err := n.AddNode("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.AddNode("b")
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestSendDeliversAfterDelay(t *testing.T) {
	k, n := newNet(t)
	a, b := twoNodes(t, n)
	l, err := n.Connect(a, b, LinkConfig{Delay: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	var at time.Duration
	b.OnMessage(func(from *Endpoint, data []byte) {
		got = data
		at = k.Elapsed()
	})
	epA, _ := l.Endpoints()
	if err := epA.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	if at != 10*time.Millisecond {
		t.Fatalf("delivered at %v, want 10ms", at)
	}
	if l.Delivered != 1 || n.Delivered != 1 || n.BytesDelivered != 5 {
		t.Fatalf("counters: link=%d net=%d bytes=%d", l.Delivered, n.Delivered, n.BytesDelivered)
	}
}

func TestSendInOrder(t *testing.T) {
	k, n := newNet(t)
	a, b := twoNodes(t, n)
	l, err := n.Connect(a, b, LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	b.OnMessage(func(from *Endpoint, data []byte) { got = append(got, string(data)) })
	epA, _ := l.Endpoints()
	for _, m := range []string{"1", "2", "3", "4"} {
		if err := epA.Send([]byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"1", "2", "3", "4"} {
		if got[i] != want {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestBidirectional(t *testing.T) {
	k, n := newNet(t)
	a, b := twoNodes(t, n)
	l, err := n.Connect(a, b, LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	gotA, gotB := "", ""
	a.OnMessage(func(from *Endpoint, data []byte) { gotA = string(data) })
	b.OnMessage(func(from *Endpoint, data []byte) { gotB = string(data) })
	epA, epB := l.Endpoints()
	if err := epA.Send([]byte("to-b")); err != nil {
		t.Fatal(err)
	}
	if err := epB.Send([]byte("to-a")); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if gotA != "to-a" || gotB != "to-b" {
		t.Fatalf("gotA=%q gotB=%q", gotA, gotB)
	}
}

func TestSendOnDownLink(t *testing.T) {
	k, n := newNet(t)
	a, b := twoNodes(t, n)
	l, err := n.Connect(a, b, LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	l.SetUp(false)
	epA, _ := l.Endpoints()
	if err := epA.Send([]byte("x")); err != ErrLinkDown {
		t.Fatalf("Send on down link = %v, want ErrLinkDown", err)
	}
	if epA.SendUnreliable([]byte("x")) {
		t.Fatal("SendUnreliable on down link should report false")
	}
	_ = k
}

func TestLinkDownDropsInFlight(t *testing.T) {
	k, n := newNet(t)
	a, b := twoNodes(t, n)
	l, err := n.Connect(a, b, LinkConfig{Delay: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	received := false
	b.OnMessage(func(from *Endpoint, data []byte) { received = true })
	epA, _ := l.Endpoints()
	if err := epA.Send([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	// Take the link down before delivery, and bring it back up: the
	// in-flight message must still die (epoch bump).
	k.AfterFunc(2*time.Millisecond, func() { l.SetUp(false) })
	k.AfterFunc(4*time.Millisecond, func() { l.SetUp(true) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if received {
		t.Fatal("message survived a link flap")
	}
	if l.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", l.Dropped)
	}
}

func TestLinkStateCallbacks(t *testing.T) {
	k, n := newNet(t)
	a, b := twoNodes(t, n)
	l, err := n.Connect(a, b, LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var trans []bool
	l.OnStateChange(func(up bool) { trans = append(trans, up) })
	l.SetUp(false)
	l.SetUp(false) // no-op
	l.SetUp(true)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(trans) != 2 || trans[0] != false || trans[1] != true {
		t.Fatalf("transitions = %v", trans)
	}
	if !l.Up() {
		t.Fatal("link should be up")
	}
}

func TestUnreliableLoss(t *testing.T) {
	k, n := newNet(t)
	a, b := twoNodes(t, n)
	l, err := n.Connect(a, b, LinkConfig{Loss: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	recv := 0
	b.OnMessage(func(from *Endpoint, data []byte) { recv++ })
	epA, _ := l.Endpoints()
	const total = 1000
	for i := 0; i < total; i++ {
		epA.SendUnreliable([]byte{1})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if recv < 350 || recv > 650 {
		t.Fatalf("received %d of %d with 50%% loss", recv, total)
	}
	if l.Delivered+l.Dropped != total {
		t.Fatalf("delivered+dropped = %d, want %d", l.Delivered+l.Dropped, total)
	}
}

func TestUnreliableJitterBounds(t *testing.T) {
	k, n := newNet(t)
	a, b := twoNodes(t, n)
	base, jitter := 5*time.Millisecond, 10*time.Millisecond
	l, err := n.Connect(a, b, LinkConfig{Delay: base, Jitter: jitter})
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []time.Duration
	b.OnMessage(func(from *Endpoint, data []byte) { arrivals = append(arrivals, k.Elapsed()) })
	epA, _ := l.Endpoints()
	for i := 0; i < 100; i++ {
		epA.SendUnreliable([]byte{1})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, at := range arrivals {
		if at < base || at > base+jitter {
			t.Fatalf("arrival %v outside [%v, %v]", at, base, base+jitter)
		}
	}
}

func TestConnectValidation(t *testing.T) {
	k, n := newNet(t)
	a, b := twoNodes(t, n)
	if _, err := n.Connect(a, a, LinkConfig{}); err == nil {
		t.Fatal("self-connect should error")
	}
	if _, err := n.Connect(nil, b, LinkConfig{}); err == nil {
		t.Fatal("nil node should error")
	}
	if _, err := n.Connect(a, b, LinkConfig{Loss: 2}); err == nil {
		t.Fatal("loss > 1 should error")
	}
	if _, err := n.Connect(a, b, LinkConfig{Delay: -time.Second}); err == nil {
		t.Fatal("negative delay should error")
	}
	other := NewNetwork(k, nil)
	c, _ := other.AddNode("c")
	if _, err := n.Connect(a, c, LinkConfig{}); err == nil {
		t.Fatal("cross-network connect should error")
	}
	// Loss without rng.
	n2 := NewNetwork(k, nil)
	x, _ := n2.AddNode("x")
	y, _ := n2.AddNode("y")
	if _, err := n2.Connect(x, y, LinkConfig{Loss: 0.1}); err == nil {
		t.Fatal("loss without rng should error")
	}
}

func TestDuplicateNodeName(t *testing.T) {
	_, n := newNet(t)
	if _, err := n.AddNode("dup"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddNode("dup"); err == nil {
		t.Fatal("duplicate name should error")
	}
}

func TestEndpointNavigation(t *testing.T) {
	_, n := newNet(t)
	a, b := twoNodes(t, n)
	l, err := n.Connect(a, b, LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	epA, epB := l.Endpoints()
	if epA.Node() != a || epA.PeerNode() != b || epA.Peer() != epB {
		t.Fatal("endpoint navigation broken")
	}
	if epA.Link() != l {
		t.Fatal("Link() wrong")
	}
	ep, ok := a.EndpointTo("b")
	if !ok || ep != epA {
		t.Fatal("EndpointTo wrong")
	}
	if _, ok := a.EndpointTo("zz"); ok {
		t.Fatal("EndpointTo should miss")
	}
	if l.String() != "a<->b" || epA.String() != "a->b" {
		t.Fatalf("String: %q %q", l.String(), epA.String())
	}
	nd, ok := n.Node("a")
	if !ok || nd != a {
		t.Fatal("Network.Node lookup wrong")
	}
	if len(n.Links()) != 1 {
		t.Fatal("Links() wrong")
	}
	if len(a.Endpoints()) != 1 {
		t.Fatal("Endpoints() wrong")
	}
	if a.Name() != "a" {
		t.Fatal("Name() wrong")
	}
	if n.Clock() == nil {
		t.Fatal("Clock() nil")
	}
	if l.Config().Delay != DefaultDelay {
		t.Fatalf("default delay = %v", l.Config().Delay)
	}
}

func TestManyNodesStress(t *testing.T) {
	k, n := newNet(t)
	const N = 50
	nodes := make([]*Node, N)
	for i := range nodes {
		var err error
		nodes[i], err = n.AddNode(string(rune('A'+i/26)) + string(rune('a'+i%26)))
		if err != nil {
			t.Fatal(err)
		}
	}
	recv := 0
	for _, nd := range nodes {
		nd.OnMessage(func(from *Endpoint, data []byte) { recv++ })
	}
	rng := rand.New(rand.NewSource(2))
	var links []*Link
	for i := 1; i < N; i++ {
		l, err := n.Connect(nodes[i-1], nodes[i], LinkConfig{
			Delay: time.Duration(1+rng.Intn(10)) * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		links = append(links, l)
	}
	sent := 0
	for _, l := range links {
		a, b := l.Endpoints()
		for i := 0; i < 10; i++ {
			if err := a.Send([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			if err := b.Send([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			sent += 2
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if recv != sent {
		t.Fatalf("received %d of %d", recv, sent)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	k, n := newNet(t)
	a, b := twoNodes(t, n)
	// 8000 bps: a 100-byte frame takes 100ms to serialize.
	l, err := n.Connect(a, b, LinkConfig{Delay: 10 * time.Millisecond, BandwidthBps: 8000})
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []time.Duration
	b.OnMessage(func(from *Endpoint, data []byte) { arrivals = append(arrivals, k.Elapsed()) })
	epA, _ := l.Endpoints()
	frame := make([]byte, 100)
	for i := 0; i < 3; i++ {
		if err := epA.Send(frame); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	// First frame: 100ms serialization + 10ms propagation; the rest
	// queue 100ms apart.
	want := []time.Duration{110 * time.Millisecond, 210 * time.Millisecond, 310 * time.Millisecond}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Fatalf("arrival %d = %v, want %v (all: %v)", i, arrivals[i], want[i], arrivals)
		}
	}
}

func TestBandwidthZeroIsInfinite(t *testing.T) {
	k, n := newNet(t)
	a, b := twoNodes(t, n)
	l, err := n.Connect(a, b, LinkConfig{Delay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []time.Duration
	b.OnMessage(func(from *Endpoint, data []byte) { arrivals = append(arrivals, k.Elapsed()) })
	epA, _ := l.Endpoints()
	for i := 0; i < 3; i++ {
		if err := epA.Send(make([]byte, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, at := range arrivals {
		if at != 5*time.Millisecond {
			t.Fatalf("infinite bandwidth should deliver all at 5ms: %v", arrivals)
		}
	}
}

func TestBandwidthValidation(t *testing.T) {
	_, n := newNet(t)
	a, b := twoNodes(t, n)
	if _, err := n.Connect(a, b, LinkConfig{BandwidthBps: -1}); err == nil {
		t.Fatal("negative bandwidth should error")
	}
}

func TestBandwidthAppliesToUnreliable(t *testing.T) {
	k, n := newNet(t)
	a, b := twoNodes(t, n)
	l, err := n.Connect(a, b, LinkConfig{Delay: time.Millisecond, BandwidthBps: 8000})
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []time.Duration
	b.OnMessage(func(from *Endpoint, data []byte) { arrivals = append(arrivals, k.Elapsed()) })
	epA, _ := l.Endpoints()
	for i := 0; i < 2; i++ {
		if !epA.SendUnreliable(make([]byte, 100)) {
			t.Fatal("send failed")
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if gap := arrivals[1] - arrivals[0]; gap < 100*time.Millisecond {
		t.Fatalf("unreliable frames not queued: gap %v", gap)
	}
}

// TestReliableLossPenalty pins the reliable-transport loss model: on a
// lossy link each lost attempt adds a doubling retransmission timeout
// (starting at the classic 200ms minimum RTO) to the delivery, the
// Retransmits counter ticks per lost attempt, and delivery still
// happens in order.
func TestReliableLossPenalty(t *testing.T) {
	k, n := newNet(t)
	n.SeedLinks(7)
	a, b := twoNodes(t, n)
	l, err := n.Connect(a, b, LinkConfig{Delay: 10 * time.Millisecond, Loss: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var deliveries int
	b.OnMessage(func(from *Endpoint, data []byte) { deliveries++ })
	epA, _ := l.Endpoints()
	for i := 0; i < 50; i++ {
		if err := epA.Send([]byte("m")); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if deliveries+int(l.Dropped) != 50 {
		t.Fatalf("delivered %d + dropped %d != 50", deliveries, l.Dropped)
	}
	if l.Retransmits == 0 {
		t.Fatal("50%% loss produced no retransmissions")
	}
	// Retransmissions cost virtual time: the last delivery must land
	// later than the loss-free schedule (50 in-order sends, 10ms each,
	// back-to-back departures).
	if k.Elapsed() <= 10*time.Millisecond {
		t.Fatalf("elapsed %v shows no retransmission penalty", k.Elapsed())
	}
}

// TestTotalLossDeliversNothing pins the Loss=1.0 edge for both
// transports: the reliable sender gives up after its retransmission
// budget, the unreliable sender drops immediately, and nothing is ever
// delivered — a session across such a link can never establish.
func TestTotalLossDeliversNothing(t *testing.T) {
	k, n := newNet(t)
	n.SeedLinks(1)
	a, b := twoNodes(t, n)
	l, err := n.Connect(a, b, LinkConfig{Loss: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	b.OnMessage(func(from *Endpoint, data []byte) { t.Fatalf("delivered %q across a fully lossy link", data) })
	epA, _ := l.Endpoints()
	for i := 0; i < 10; i++ {
		if err := epA.Send([]byte("reliable")); err != nil {
			t.Fatal(err)
		}
		if !epA.SendUnreliable([]byte("probe")) {
			t.Fatal("SendUnreliable reported a down link")
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Delivered != 0 || l.Delivered != 0 {
		t.Fatalf("delivered = %d, want 0", n.Delivered)
	}
	if l.Dropped != 20 || n.Dropped != 20 {
		t.Fatalf("dropped = %d, want all 20 sends", l.Dropped)
	}
}

// TestSeededLossDeterministic pins the reproducibility contract: two
// networks built with the same SeedLinks seed draw identical loss and
// jitter streams per link, so the same send sequence produces
// identical counters and delivery times — independent of the kernel's
// shared rand, which other goroutines may consume concurrently.
func TestSeededLossDeterministic(t *testing.T) {
	runOnce := func(burnKernelRand int) (uint64, uint64, time.Duration) {
		k, n := newNet(t)
		n.SeedLinks(42)
		a, b := twoNodes(t, n)
		l, err := n.Connect(a, b, LinkConfig{Delay: time.Millisecond, Loss: 0.3, Jitter: 5 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		// Perturb the kernel's shared rand: per-link streams must not care.
		for i := 0; i < burnKernelRand; i++ {
			k.Rand().Int63()
		}
		epA, _ := l.Endpoints()
		for i := 0; i < 40; i++ {
			if err := epA.Send([]byte("r")); err != nil {
				t.Fatal(err)
			}
			epA.SendUnreliable([]byte("u"))
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return l.Retransmits, l.Delivered, k.Elapsed()
	}
	r1, d1, e1 := runOnce(0)
	r2, d2, e2 := runOnce(17)
	if r1 != r2 || d1 != d2 || e1 != e2 {
		t.Fatalf("seeded loss not deterministic: (%d,%d,%v) vs (%d,%d,%v)", r1, d1, e1, r2, d2, e2)
	}
	if r1 == 0 {
		t.Fatal("30%% loss produced no retransmissions")
	}

	// A different seed draws a different stream.
	k, n := newNet(t)
	n.SeedLinks(43)
	a, b := twoNodes(t, n)
	l, err := n.Connect(a, b, LinkConfig{Delay: time.Millisecond, Loss: 0.3, Jitter: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	epA, _ := l.Endpoints()
	for i := 0; i < 40; i++ {
		if err := epA.Send([]byte("r")); err != nil {
			t.Fatal(err)
		}
		epA.SendUnreliable([]byte("u"))
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if l.Retransmits == r1 && l.Delivered == d1 && k.Elapsed() == e1 {
		t.Fatal("different link seeds drew identical loss streams")
	}
}

// TestUnseededLinksFallBackToSharedRand pins that networks built
// without SeedLinks keep the pre-chaos behavior: links draw from the
// construction-time shared rand.
func TestUnseededLinksFallBackToSharedRand(t *testing.T) {
	k := sim.NewKernel(1)
	n := NewNetwork(k, rand.New(rand.NewSource(9)))
	a, err := n.AddNode("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.AddNode("b")
	if err != nil {
		t.Fatal(err)
	}
	l, err := n.Connect(a, b, LinkConfig{Loss: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	epA, _ := l.Endpoints()
	for i := 0; i < 20; i++ {
		epA.SendUnreliable([]byte("u"))
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if l.Delivered == 0 || l.Dropped == 0 {
		t.Fatalf("50%% loss should deliver some and drop some: delivered=%d dropped=%d", l.Delivered, l.Dropped)
	}
}
