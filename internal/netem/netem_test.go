package netem

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/sim"
)

func newNet(t *testing.T) (*sim.Kernel, *Network) {
	t.Helper()
	k := sim.NewKernel(1)
	return k, NewNetwork(k, k.Rand())
}

func twoNodes(t *testing.T, n *Network) (*Node, *Node) {
	t.Helper()
	a, err := n.AddNode("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.AddNode("b")
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestSendDeliversAfterDelay(t *testing.T) {
	k, n := newNet(t)
	a, b := twoNodes(t, n)
	l, err := n.Connect(a, b, LinkConfig{Delay: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	var at time.Duration
	b.OnMessage(func(from *Endpoint, data []byte) {
		got = data
		at = k.Elapsed()
	})
	epA, _ := l.Endpoints()
	if err := epA.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	if at != 10*time.Millisecond {
		t.Fatalf("delivered at %v, want 10ms", at)
	}
	if l.Delivered != 1 || n.Delivered != 1 || n.BytesDelivered != 5 {
		t.Fatalf("counters: link=%d net=%d bytes=%d", l.Delivered, n.Delivered, n.BytesDelivered)
	}
}

func TestSendInOrder(t *testing.T) {
	k, n := newNet(t)
	a, b := twoNodes(t, n)
	l, err := n.Connect(a, b, LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	b.OnMessage(func(from *Endpoint, data []byte) { got = append(got, string(data)) })
	epA, _ := l.Endpoints()
	for _, m := range []string{"1", "2", "3", "4"} {
		if err := epA.Send([]byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"1", "2", "3", "4"} {
		if got[i] != want {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestBidirectional(t *testing.T) {
	k, n := newNet(t)
	a, b := twoNodes(t, n)
	l, err := n.Connect(a, b, LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	gotA, gotB := "", ""
	a.OnMessage(func(from *Endpoint, data []byte) { gotA = string(data) })
	b.OnMessage(func(from *Endpoint, data []byte) { gotB = string(data) })
	epA, epB := l.Endpoints()
	if err := epA.Send([]byte("to-b")); err != nil {
		t.Fatal(err)
	}
	if err := epB.Send([]byte("to-a")); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if gotA != "to-a" || gotB != "to-b" {
		t.Fatalf("gotA=%q gotB=%q", gotA, gotB)
	}
}

func TestSendOnDownLink(t *testing.T) {
	k, n := newNet(t)
	a, b := twoNodes(t, n)
	l, err := n.Connect(a, b, LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	l.SetUp(false)
	epA, _ := l.Endpoints()
	if err := epA.Send([]byte("x")); err != ErrLinkDown {
		t.Fatalf("Send on down link = %v, want ErrLinkDown", err)
	}
	if epA.SendUnreliable([]byte("x")) {
		t.Fatal("SendUnreliable on down link should report false")
	}
	_ = k
}

func TestLinkDownDropsInFlight(t *testing.T) {
	k, n := newNet(t)
	a, b := twoNodes(t, n)
	l, err := n.Connect(a, b, LinkConfig{Delay: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	received := false
	b.OnMessage(func(from *Endpoint, data []byte) { received = true })
	epA, _ := l.Endpoints()
	if err := epA.Send([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	// Take the link down before delivery, and bring it back up: the
	// in-flight message must still die (epoch bump).
	k.AfterFunc(2*time.Millisecond, func() { l.SetUp(false) })
	k.AfterFunc(4*time.Millisecond, func() { l.SetUp(true) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if received {
		t.Fatal("message survived a link flap")
	}
	if l.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", l.Dropped)
	}
}

func TestLinkStateCallbacks(t *testing.T) {
	k, n := newNet(t)
	a, b := twoNodes(t, n)
	l, err := n.Connect(a, b, LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var trans []bool
	l.OnStateChange(func(up bool) { trans = append(trans, up) })
	l.SetUp(false)
	l.SetUp(false) // no-op
	l.SetUp(true)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(trans) != 2 || trans[0] != false || trans[1] != true {
		t.Fatalf("transitions = %v", trans)
	}
	if !l.Up() {
		t.Fatal("link should be up")
	}
}

func TestUnreliableLoss(t *testing.T) {
	k, n := newNet(t)
	a, b := twoNodes(t, n)
	l, err := n.Connect(a, b, LinkConfig{Loss: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	recv := 0
	b.OnMessage(func(from *Endpoint, data []byte) { recv++ })
	epA, _ := l.Endpoints()
	const total = 1000
	for i := 0; i < total; i++ {
		epA.SendUnreliable([]byte{1})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if recv < 350 || recv > 650 {
		t.Fatalf("received %d of %d with 50%% loss", recv, total)
	}
	if l.Delivered+l.Dropped != total {
		t.Fatalf("delivered+dropped = %d, want %d", l.Delivered+l.Dropped, total)
	}
}

func TestUnreliableJitterBounds(t *testing.T) {
	k, n := newNet(t)
	a, b := twoNodes(t, n)
	base, jitter := 5*time.Millisecond, 10*time.Millisecond
	l, err := n.Connect(a, b, LinkConfig{Delay: base, Jitter: jitter})
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []time.Duration
	b.OnMessage(func(from *Endpoint, data []byte) { arrivals = append(arrivals, k.Elapsed()) })
	epA, _ := l.Endpoints()
	for i := 0; i < 100; i++ {
		epA.SendUnreliable([]byte{1})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, at := range arrivals {
		if at < base || at > base+jitter {
			t.Fatalf("arrival %v outside [%v, %v]", at, base, base+jitter)
		}
	}
}

func TestConnectValidation(t *testing.T) {
	k, n := newNet(t)
	a, b := twoNodes(t, n)
	if _, err := n.Connect(a, a, LinkConfig{}); err == nil {
		t.Fatal("self-connect should error")
	}
	if _, err := n.Connect(nil, b, LinkConfig{}); err == nil {
		t.Fatal("nil node should error")
	}
	if _, err := n.Connect(a, b, LinkConfig{Loss: 2}); err == nil {
		t.Fatal("loss > 1 should error")
	}
	if _, err := n.Connect(a, b, LinkConfig{Delay: -time.Second}); err == nil {
		t.Fatal("negative delay should error")
	}
	other := NewNetwork(k, nil)
	c, _ := other.AddNode("c")
	if _, err := n.Connect(a, c, LinkConfig{}); err == nil {
		t.Fatal("cross-network connect should error")
	}
	// Loss without rng.
	n2 := NewNetwork(k, nil)
	x, _ := n2.AddNode("x")
	y, _ := n2.AddNode("y")
	if _, err := n2.Connect(x, y, LinkConfig{Loss: 0.1}); err == nil {
		t.Fatal("loss without rng should error")
	}
}

func TestDuplicateNodeName(t *testing.T) {
	_, n := newNet(t)
	if _, err := n.AddNode("dup"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddNode("dup"); err == nil {
		t.Fatal("duplicate name should error")
	}
}

func TestEndpointNavigation(t *testing.T) {
	_, n := newNet(t)
	a, b := twoNodes(t, n)
	l, err := n.Connect(a, b, LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	epA, epB := l.Endpoints()
	if epA.Node() != a || epA.PeerNode() != b || epA.Peer() != epB {
		t.Fatal("endpoint navigation broken")
	}
	if epA.Link() != l {
		t.Fatal("Link() wrong")
	}
	ep, ok := a.EndpointTo("b")
	if !ok || ep != epA {
		t.Fatal("EndpointTo wrong")
	}
	if _, ok := a.EndpointTo("zz"); ok {
		t.Fatal("EndpointTo should miss")
	}
	if l.String() != "a<->b" || epA.String() != "a->b" {
		t.Fatalf("String: %q %q", l.String(), epA.String())
	}
	nd, ok := n.Node("a")
	if !ok || nd != a {
		t.Fatal("Network.Node lookup wrong")
	}
	if len(n.Links()) != 1 {
		t.Fatal("Links() wrong")
	}
	if len(a.Endpoints()) != 1 {
		t.Fatal("Endpoints() wrong")
	}
	if a.Name() != "a" {
		t.Fatal("Name() wrong")
	}
	if n.Clock() == nil {
		t.Fatal("Clock() nil")
	}
	if l.Config().Delay != DefaultDelay {
		t.Fatalf("default delay = %v", l.Config().Delay)
	}
}

func TestManyNodesStress(t *testing.T) {
	k, n := newNet(t)
	const N = 50
	nodes := make([]*Node, N)
	for i := range nodes {
		var err error
		nodes[i], err = n.AddNode(string(rune('A'+i/26)) + string(rune('a'+i%26)))
		if err != nil {
			t.Fatal(err)
		}
	}
	recv := 0
	for _, nd := range nodes {
		nd.OnMessage(func(from *Endpoint, data []byte) { recv++ })
	}
	rng := rand.New(rand.NewSource(2))
	var links []*Link
	for i := 1; i < N; i++ {
		l, err := n.Connect(nodes[i-1], nodes[i], LinkConfig{
			Delay: time.Duration(1+rng.Intn(10)) * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		links = append(links, l)
	}
	sent := 0
	for _, l := range links {
		a, b := l.Endpoints()
		for i := 0; i < 10; i++ {
			if err := a.Send([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			if err := b.Send([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			sent += 2
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if recv != sent {
		t.Fatalf("received %d of %d", recv, sent)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	k, n := newNet(t)
	a, b := twoNodes(t, n)
	// 8000 bps: a 100-byte frame takes 100ms to serialize.
	l, err := n.Connect(a, b, LinkConfig{Delay: 10 * time.Millisecond, BandwidthBps: 8000})
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []time.Duration
	b.OnMessage(func(from *Endpoint, data []byte) { arrivals = append(arrivals, k.Elapsed()) })
	epA, _ := l.Endpoints()
	frame := make([]byte, 100)
	for i := 0; i < 3; i++ {
		if err := epA.Send(frame); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	// First frame: 100ms serialization + 10ms propagation; the rest
	// queue 100ms apart.
	want := []time.Duration{110 * time.Millisecond, 210 * time.Millisecond, 310 * time.Millisecond}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Fatalf("arrival %d = %v, want %v (all: %v)", i, arrivals[i], want[i], arrivals)
		}
	}
}

func TestBandwidthZeroIsInfinite(t *testing.T) {
	k, n := newNet(t)
	a, b := twoNodes(t, n)
	l, err := n.Connect(a, b, LinkConfig{Delay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []time.Duration
	b.OnMessage(func(from *Endpoint, data []byte) { arrivals = append(arrivals, k.Elapsed()) })
	epA, _ := l.Endpoints()
	for i := 0; i < 3; i++ {
		if err := epA.Send(make([]byte, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, at := range arrivals {
		if at != 5*time.Millisecond {
			t.Fatalf("infinite bandwidth should deliver all at 5ms: %v", arrivals)
		}
	}
}

func TestBandwidthValidation(t *testing.T) {
	_, n := newNet(t)
	a, b := twoNodes(t, n)
	if _, err := n.Connect(a, b, LinkConfig{BandwidthBps: -1}); err == nil {
		t.Fatal("negative bandwidth should error")
	}
}

func TestBandwidthAppliesToUnreliable(t *testing.T) {
	k, n := newNet(t)
	a, b := twoNodes(t, n)
	l, err := n.Connect(a, b, LinkConfig{Delay: time.Millisecond, BandwidthBps: 8000})
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []time.Duration
	b.OnMessage(func(from *Endpoint, data []byte) { arrivals = append(arrivals, k.Elapsed()) })
	epA, _ := l.Endpoints()
	for i := 0; i < 2; i++ {
		if !epA.SendUnreliable(make([]byte, 100)) {
			t.Fatal("send failed")
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if gap := arrivals[1] - arrivals[0]; gap < 100*time.Millisecond {
		t.Fatalf("unreliable frames not queued: gap %v", gap)
	}
}
