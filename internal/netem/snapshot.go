package netem

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Snapshot support: NetworkState captures everything a restored
// network needs to continue byte-identically — per-link operational
// state, counters and random-stream position, per-endpoint FIFO/
// bandwidth clamps, and the network-wide counters. In-flight frames
// are deliberately NOT captured: snapshots are taken at protocol
// quiescence, where the only traffic on the wire is keepalives, and
// dropping those is behaviorally invisible (hold-timer re-arms are
// idempotent and the captured deadlines outlive the next re-arm).
// Per-link random streams are never serialized as generator state;
// they are re-derived from the link seed and fast-forwarded to the
// captured draw count, which is what lets a fork re-seed them.

// tsNS and nsTS serialize timestamps as nanoseconds since sim.Epoch,
// preserving the zero value (sim.TimeNone).
func tsNS(t time.Time) int64  { return sim.TimeToNS(t) }
func nsTS(ns int64) time.Time { return sim.TimeFromNS(ns) }

// LinkState is the serializable state of one link, keyed by creation
// index (the restored network builds its links in the same order).
type LinkState struct {
	// Up is the link's operational state.
	Up bool `json:"up"`
	// Epoch is the down-transition counter that kills in-flight
	// traffic.
	Epoch uint64 `json:"epoch"`
	// Delivered, Dropped and Retransmits are the per-link counters.
	Delivered   uint64 `json:"delivered"`
	Dropped     uint64 `json:"dropped"`
	Retransmits uint64 `json:"retransmits"`
	// Draws is the position of the link's private random stream
	// (seeded networks only; zero otherwise).
	Draws uint64 `json:"draws"`
	// AArrivalNS/ADepartureNS and the B pair are endpoint a's and b's
	// in-order-delivery and bandwidth-queue clamps, as tsNS values.
	AArrivalNS   int64 `json:"a_arrival_ns"`
	ADepartureNS int64 `json:"a_departure_ns"`
	BArrivalNS   int64 `json:"b_arrival_ns"`
	BDepartureNS int64 `json:"b_departure_ns"`
}

// NetworkState is the serializable state of a Network.
type NetworkState struct {
	// Delivered, Dropped and BytesDelivered are the network-wide
	// counters.
	Delivered      uint64 `json:"delivered"`
	Dropped        uint64 `json:"dropped"`
	BytesDelivered uint64 `json:"bytes_delivered"`
	// Links holds one entry per link in creation order.
	Links []LinkState `json:"links"`
}

// State captures the network's serializable state.
func (n *Network) State() NetworkState {
	st := NetworkState{
		Delivered:      n.Delivered,
		Dropped:        n.Dropped,
		BytesDelivered: n.BytesDelivered,
		Links:          make([]LinkState, len(n.links)),
	}
	for i, l := range n.links {
		ls := LinkState{
			Up:           l.up,
			Epoch:        l.epoch,
			Delivered:    l.Delivered,
			Dropped:      l.Dropped,
			Retransmits:  l.Retransmits,
			AArrivalNS:   tsNS(l.a.lastArrival),
			ADepartureNS: tsNS(l.a.lastDeparture),
			BArrivalNS:   tsNS(l.b.lastArrival),
			BDepartureNS: tsNS(l.b.lastDeparture),
		}
		if l.src != nil {
			ls.Draws = l.src.Draws()
		}
		st.Links[i] = ls
	}
	return st
}

// RestoreState overlays a captured state onto a freshly built network
// with the identical topology (same links in the same creation
// order). Link state is set directly — no SetUp events fire — and
// seeded per-link streams are fast-forwarded to the captured draw
// counts (their seeds were already re-derived at Connect time, so a
// fork that seeded the network differently diverges exactly where
// link randomness enters).
func (n *Network) RestoreState(st NetworkState) error {
	if len(st.Links) != len(n.links) {
		return fmt.Errorf("netem: restore: %d link states for %d links", len(st.Links), len(n.links))
	}
	n.Delivered = st.Delivered
	n.Dropped = st.Dropped
	n.BytesDelivered = st.BytesDelivered
	for i, ls := range st.Links {
		l := n.links[i]
		l.up = ls.Up
		l.epoch = ls.Epoch
		l.Delivered = ls.Delivered
		l.Dropped = ls.Dropped
		l.Retransmits = ls.Retransmits
		l.a.lastArrival = nsTS(ls.AArrivalNS)
		l.a.lastDeparture = nsTS(ls.ADepartureNS)
		l.b.lastArrival = nsTS(ls.BArrivalNS)
		l.b.lastDeparture = nsTS(ls.BDepartureNS)
		if l.src != nil {
			l.src.FastForward(ls.Draws)
		} else if ls.Draws > 0 {
			return fmt.Errorf("netem: restore: link %d has %d recorded draws but no private stream", i, ls.Draws)
		}
	}
	return nil
}
