// Package netem is the framework's network emulator: the stand-in for
// Mininet in the paper's stack (see DESIGN.md). It moves opaque
// control-plane messages between nodes over point-to-point links with
// configurable latency, jitter and loss, supports dynamic link
// failure/restore ("dynamically changing the topology", paper §2), and
// counts traffic for the analysis tools.
//
// Delivery semantics: Send is reliable and in-order per direction, like
// the TCP connections BGP rides on — messages are never reordered and
// are lost only when the link goes down while they are in flight. On a
// lossy link, Send models TCP recovery: each lost transmission attempt
// delays delivery by a doubling retransmission timeout, and after
// maxRetransmits consecutive losses the transport gives up and the
// message is dropped (so Loss 1.0 delivers nothing and sessions never
// establish). SendUnreliable applies jitter and plain random loss, for
// probe traffic.
//
// All timing runs on a sim.Clock, so the emulator works both in virtual
// and in wall-clock time.
package netem

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/sim"
)

// ErrLinkDown is returned by Send when the link is administratively or
// operationally down.
var ErrLinkDown = errors.New("netem: link is down")

// Network owns nodes and links and carries the shared clock.
type Network struct {
	clock sim.Clock
	rng   *rand.Rand
	nodes map[string]*Node
	links []*Link

	// linkSeed derives a private random stream per link (SeedLinks).
	linkSeed int64
	seeded   bool

	// Delivered and Dropped count messages network-wide.
	Delivered, Dropped uint64
	// BytesDelivered counts payload bytes network-wide.
	BytesDelivered uint64
}

// NewNetwork returns an empty network on the given clock. rng is used
// for jitter and loss decisions; it may be nil if no link uses them.
func NewNetwork(clock sim.Clock, rng *rand.Rand) *Network {
	return &Network{
		clock: clock,
		rng:   rng,
		nodes: make(map[string]*Node),
	}
}

// SeedLinks gives every link created after this call a private random
// source derived from seed and the link's creation index, instead of
// the shared network source. Per-link streams keep loss and jitter
// draws on one link independent of activity on every other link (and
// of protocol randomness like MRAI jitter), so a lossy run is
// byte-reproducible from the seed no matter how the experiment layers
// interleave their own draws.
func (n *Network) SeedLinks(seed int64) {
	n.linkSeed = seed
	n.seeded = true
}

// Clock returns the network's clock.
func (n *Network) Clock() sim.Clock { return n.clock }

// AddNode creates a node with a unique name.
func (n *Network) AddNode(name string) (*Node, error) {
	if _, ok := n.nodes[name]; ok {
		return nil, fmt.Errorf("netem: duplicate node %q", name)
	}
	node := &Node{name: name, net: n}
	n.nodes[name] = node
	return node, nil
}

// Node returns the named node, if present.
func (n *Network) Node(name string) (*Node, bool) {
	nd, ok := n.nodes[name]
	return nd, ok
}

// Links returns all links in creation order.
func (n *Network) Links() []*Link { return n.links }

// LinkConfig sets the transmission characteristics of one link.
type LinkConfig struct {
	// Delay is the one-way propagation delay (default 1ms if zero and
	// DefaultDelay not overridden by the caller).
	Delay time.Duration
	// Jitter is the maximum extra random delay applied to unreliable
	// sends (uniform in [0, Jitter]).
	Jitter time.Duration
	// Loss is the probability in [0, 1] that an unreliable send is
	// dropped.
	Loss float64
	// BandwidthBps, when non-zero, models link capacity in bits per
	// second: each frame occupies the link for its serialization time
	// and frames queue behind each other per direction (an infinite
	// FIFO; the control-plane loads here never need a drop-tail).
	BandwidthBps int64
}

// DefaultDelay is applied when LinkConfig.Delay is zero.
const DefaultDelay = 1 * time.Millisecond

// Connect creates a bidirectional link between a and b.
func (n *Network) Connect(a, b *Node, cfg LinkConfig) (*Link, error) {
	if a == nil || b == nil {
		return nil, errors.New("netem: Connect with nil node")
	}
	if a == b {
		return nil, fmt.Errorf("netem: cannot connect %q to itself", a.name)
	}
	if a.net != n || b.net != n {
		return nil, errors.New("netem: node belongs to a different network")
	}
	if cfg.Delay == 0 {
		cfg.Delay = DefaultDelay
	}
	if cfg.Delay < 0 || cfg.Jitter < 0 || cfg.Loss < 0 || cfg.Loss > 1 || cfg.BandwidthBps < 0 {
		return nil, fmt.Errorf("netem: invalid link config %+v", cfg)
	}
	if cfg.Loss > 0 || cfg.Jitter > 0 {
		if n.rng == nil && !n.seeded {
			return nil, errors.New("netem: loss/jitter need a network random source")
		}
	}
	l := &Link{net: n, cfg: cfg, up: true}
	if n.seeded {
		// Mix the creation index into the seed (splitmix64-style odd
		// constant) so adjacent links get well-separated streams. The
		// source is draw-counted so snapshots can record the stream
		// position and restores re-derive it from the seed.
		l.src = sim.NewCountingSource(n.linkSeed ^ int64(len(n.links)+1)*-0x61c8864680b583eb)
		l.rng = rand.New(l.src)
	}
	l.a = &Endpoint{node: a, link: l}
	l.b = &Endpoint{node: b, link: l}
	l.a.peer, l.b.peer = l.b, l.a
	a.endpoints = append(a.endpoints, l.a)
	b.endpoints = append(b.endpoints, l.b)
	n.links = append(n.links, l)
	return l, nil
}

// Node is a network device: one per AS in the paper's model ("every AS
// is emulated by a single network device").
type Node struct {
	name      string
	net       *Network
	endpoints []*Endpoint
	handler   func(from *Endpoint, data []byte)
}

// Name returns the node's unique name.
func (nd *Node) Name() string { return nd.name }

// Endpoints returns the node's link endpoints in attachment order.
func (nd *Node) Endpoints() []*Endpoint { return nd.endpoints }

// OnMessage installs the node's receive handler. Handlers run on the
// clock's executor; installing a handler replaces the previous one.
func (nd *Node) OnMessage(h func(from *Endpoint, data []byte)) { nd.handler = h }

// EndpointTo returns this node's endpoint on a link to the named peer
// node, if one exists (the first match when parallel links exist).
func (nd *Node) EndpointTo(peer string) (*Endpoint, bool) {
	for _, ep := range nd.endpoints {
		if ep.peer.node.name == peer {
			return ep, true
		}
	}
	return nil, false
}

// Link is a bidirectional point-to-point connection.
type Link struct {
	net   *Network
	a, b  *Endpoint
	cfg   LinkConfig
	rng   *rand.Rand // private stream when the network is seeded
	src   *sim.CountingSource
	up    bool
	epoch uint64 // incremented on every down transition; kills in-flight traffic
	subs  []func(up bool)

	// Stats, per link.
	Delivered, Dropped uint64
	// Retransmits counts reliable-send transmission attempts lost to
	// the link's loss rate and recovered by the retransmission model.
	Retransmits uint64
}

// rand returns the link's random source: its private per-link stream
// when the network was seeded, the shared network source otherwise.
func (l *Link) rand() *rand.Rand {
	if l.rng != nil {
		return l.rng
	}
	return l.net.rng
}

// Endpoints returns the two endpoints of the link.
func (l *Link) Endpoints() (*Endpoint, *Endpoint) { return l.a, l.b }

// Config returns the link's configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// Up reports the link's operational state.
func (l *Link) Up() bool { return l.up }

// SetUp changes the link state. Taking the link down invalidates all
// in-flight messages (they are counted as dropped on delivery time).
// State-change subscribers run immediately, then once more via the
// clock so protocol code observes the change as an event.
func (l *Link) SetUp(up bool) {
	if l.up == up {
		return
	}
	l.up = up
	if !up {
		l.epoch++
	}
	for _, s := range l.subs {
		s := s
		l.net.clock.Go(func() { s(up) })
	}
}

// OnStateChange subscribes to link up/down transitions.
func (l *Link) OnStateChange(f func(up bool)) { l.subs = append(l.subs, f) }

// String names the link after its endpoints.
func (l *Link) String() string {
	return fmt.Sprintf("%s<->%s", l.a.node.name, l.b.node.name)
}

// Endpoint is one side of a link, owned by a node.
type Endpoint struct {
	node *Node
	link *Link
	peer *Endpoint
	// lastArrival enforces in-order delivery for reliable sends.
	lastArrival time.Time
	// lastDeparture tracks when the link frees up in this direction
	// (bandwidth queueing).
	lastDeparture time.Time
}

// serializationDelay is how long a frame of n bytes occupies the link.
func (e *Endpoint) serializationDelay(n int) time.Duration {
	bps := e.link.cfg.BandwidthBps
	if bps <= 0 {
		return 0
	}
	return time.Duration(float64(n*8) / float64(bps) * float64(time.Second))
}

// departAt reserves the transmitter: the frame starts when the link is
// free and holds it for its serialization time.
func (e *Endpoint) departAt(now time.Time, n int) time.Time {
	start := now
	if e.lastDeparture.After(start) {
		start = e.lastDeparture
	}
	dep := start.Add(e.serializationDelay(n))
	e.lastDeparture = dep
	return dep
}

// Node returns the owning node.
func (e *Endpoint) Node() *Node { return e.node }

// Link returns the underlying link.
func (e *Endpoint) Link() *Link { return e.link }

// Peer returns the endpoint on the other side.
func (e *Endpoint) Peer() *Endpoint { return e.peer }

// PeerNode returns the node on the other side.
func (e *Endpoint) PeerNode() *Node { return e.peer.node }

// initialRTO is the first retransmission timeout of the reliable-send
// loss model (the classic TCP minimum RTO), doubling per lost attempt.
const initialRTO = 200 * time.Millisecond

// maxRetransmits bounds consecutive lost transmission attempts of one
// reliable send. Once exceeded the message is dropped outright — the
// emulated TCP gives up — so a Loss of 1.0 delivers nothing at all
// instead of looping forever.
const maxRetransmits = 6

// lossPenalty draws the reliable-send loss model on one message: each
// lost transmission attempt (probability cfg.Loss, from the link's
// random stream) adds a doubling retransmission timeout to the
// delivery. It returns the accumulated penalty and whether the sender
// gave up after maxRetransmits consecutive losses.
func (l *Link) lossPenalty() (time.Duration, bool) {
	if l.cfg.Loss <= 0 {
		return 0, false
	}
	rng := l.rand()
	var penalty time.Duration
	rto := initialRTO
	for attempt := 0; rng.Float64() < l.cfg.Loss; attempt++ {
		if attempt == maxRetransmits {
			return 0, true
		}
		l.Retransmits++
		penalty += rto
		rto *= 2
	}
	return penalty, false
}

// Send transmits data reliably and in order to the peer node, which
// receives it via its OnMessage handler after the link delay. It fails
// immediately if the link is down. If the link goes down while the
// message is in flight, the message is dropped (like a TCP connection
// reset mid-transfer). On a lossy link delivery is delayed by the
// retransmission model (lossPenalty) — and abandoned entirely once the
// emulated transport gives up, so sessions across a fully lossy link
// can never establish.
func (e *Endpoint) Send(data []byte) error {
	l := e.link
	if !l.up {
		return ErrLinkDown
	}
	penalty, gaveUp := l.lossPenalty()
	if gaveUp {
		l.Dropped++
		l.net.Dropped++
		return nil
	}
	clock := l.net.clock
	arrival := e.departAt(clock.Now(), len(data)).Add(l.cfg.Delay + penalty)
	if arrival.Before(e.lastArrival) {
		arrival = e.lastArrival
	}
	e.lastArrival = arrival
	epoch := l.epoch
	dst := e.peer
	clock.AfterFunc(arrival.Sub(clock.Now()), func() {
		if !l.up || l.epoch != epoch {
			l.Dropped++
			l.net.Dropped++
			return
		}
		l.Delivered++
		l.net.Delivered++
		l.net.BytesDelivered += uint64(len(data))
		if dst.node.handler != nil {
			dst.node.handler(dst, data)
		}
	})
	return nil
}

// SendUnreliable transmits data with the link's loss probability and
// jitter and no ordering guarantee. It reports whether the message was
// put on the wire (false only when the link is down).
func (e *Endpoint) SendUnreliable(data []byte) bool {
	l := e.link
	if !l.up {
		return false
	}
	if l.cfg.Loss > 0 && l.rand().Float64() < l.cfg.Loss {
		l.Dropped++
		l.net.Dropped++
		return true
	}
	now := l.net.clock.Now()
	delay := e.departAt(now, len(data)).Sub(now) + l.cfg.Delay
	if l.cfg.Jitter > 0 {
		delay += time.Duration(l.rand().Int63n(int64(l.cfg.Jitter) + 1))
	}
	epoch := l.epoch
	dst := e.peer
	l.net.clock.AfterFunc(delay, func() {
		if !l.up || l.epoch != epoch {
			l.Dropped++
			l.net.Dropped++
			return
		}
		l.Delivered++
		l.net.Delivered++
		l.net.BytesDelivered += uint64(len(data))
		if dst.node.handler != nil {
			dst.node.handler(dst, data)
		}
	})
	return true
}

// String names the endpoint by its node and peer.
func (e *Endpoint) String() string {
	return fmt.Sprintf("%s->%s", e.node.name, e.peer.node.name)
}
