// Package rib implements the three BGP routing information bases of
// RFC 4271 §3.2 — Adj-RIB-In, Loc-RIB and Adj-RIB-Out — plus the
// decision process (§9.1) that ties them together.
package rib

import (
	"fmt"
	"net/netip"
	"sort"

	"repro/internal/bgp/wire"
	"repro/internal/idr"
)

// PeerKey uniquely identifies one BGP session on a router.
type PeerKey string

// DefaultLocalPref is the preference assumed when LOCAL_PREF is unset
// (RFC 4271 leaves this to policy; 100 is the universal default).
const DefaultLocalPref uint32 = 100

// Route is one path to a prefix as held in a RIB.
type Route struct {
	Prefix netip.Prefix
	Attrs  wire.PathAttrs
	// Peer identifies the session the route was learned from; empty
	// for locally-originated routes.
	Peer PeerKey
	// PeerASN is the neighbor AS of that session.
	PeerASN idr.ASN
	// PeerID is the neighbor's BGP identifier (decision tie-break).
	PeerID idr.RouterID
	// Local marks locally-originated routes, which always win the
	// decision process.
	Local bool
}

// LocalPref returns the route's effective LOCAL_PREF.
func (r *Route) LocalPref() uint32 {
	if r.Attrs.LocalPref != nil {
		return *r.Attrs.LocalPref
	}
	return DefaultLocalPref
}

// med returns the effective MULTI_EXIT_DISC (missing = 0, the
// missing-as-best convention).
func (r *Route) med() uint32 {
	if r.Attrs.MED != nil {
		return *r.Attrs.MED
	}
	return 0
}

// Clone deep-copies the route.
func (r *Route) Clone() *Route {
	if r == nil {
		return nil
	}
	out := *r
	out.Attrs = r.Attrs.Clone()
	return &out
}

// String renders the route for logs.
func (r *Route) String() string {
	if r == nil {
		return "<nil>"
	}
	src := string(r.Peer)
	if r.Local {
		src = "local"
	}
	return fmt.Sprintf("%v via %s [%s]", r.Prefix, src, r.Attrs.ASPath)
}

// Better reports whether a is preferred over b by the BGP decision
// process (RFC 4271 §9.1.2.2), with the framework's conventions:
//
//  0. a locally-originated route beats any learned route;
//  1. highest LOCAL_PREF;
//  2. shortest AS_PATH;
//  3. lowest ORIGIN (IGP < EGP < incomplete);
//  4. lowest MED, compared only between routes from the same
//     neighbor AS;
//  5. lowest peer BGP identifier;
//  6. lowest peer key (final deterministic tie-break for parallel
//     sessions to one router).
//
// All sessions in the framework are eBGP, so the eBGP-over-iBGP and
// IGP-cost steps do not apply. b may be nil (anything beats nothing).
func Better(a, b *Route) bool {
	if a == nil {
		return false
	}
	if b == nil {
		return true
	}
	if a.Local != b.Local {
		return a.Local
	}
	if la, lb := a.LocalPref(), b.LocalPref(); la != lb {
		return la > lb
	}
	if pa, pb := a.Attrs.ASPath.Length(), b.Attrs.ASPath.Length(); pa != pb {
		return pa < pb
	}
	if a.Attrs.Origin != b.Attrs.Origin {
		return a.Attrs.Origin < b.Attrs.Origin
	}
	if a.PeerASN == b.PeerASN {
		if ma, mb := a.med(), b.med(); ma != mb {
			return ma < mb
		}
	}
	if a.PeerID != b.PeerID {
		return a.PeerID.Less(b.PeerID)
	}
	return a.Peer < b.Peer
}

// Table is a router's complete RIB state: per-peer Adj-RIB-In, the
// locally originated routes, and the Loc-RIB (best routes).
//
// Two indexes keep the hot paths off the maps: cands holds, per
// prefix, every Adj-RIB-In candidate sorted by peer key (maintained
// incrementally, so the decision process neither allocates nor sorts
// per UPDATE), and byLen buckets the Loc-RIB by prefix length so
// Lookup probes one masked prefix per populated length instead of
// scanning the whole Loc-RIB.
type Table struct {
	adjIn map[PeerKey]map[netip.Prefix]*Route
	local map[netip.Prefix]*Route
	best  map[netip.Prefix]*Route
	cands map[netip.Prefix][]*Route
	byLen [maxPrefixBits + 1]map[netip.Prefix]*Route
}

// maxPrefixBits is the longest prefix length Table can index (IPv6).
const maxPrefixBits = 128

// NewTable returns an empty RIB.
func NewTable() *Table {
	return &Table{
		adjIn: make(map[PeerKey]map[netip.Prefix]*Route),
		local: make(map[netip.Prefix]*Route),
		best:  make(map[netip.Prefix]*Route),
		cands: make(map[netip.Prefix][]*Route),
	}
}

// searchCands returns the position of peer in the candidate slice
// (sorted by peer key) and whether it is present. Open-coded so the
// steady-state decision path stays closure- and allocation-free.
func searchCands(s []*Route, peer PeerKey) (int, bool) {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid].Peer < peer {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s) && s[lo].Peer == peer
}

// indexCand inserts or replaces r in the prefix's candidate slice.
func (t *Table) indexCand(r *Route) {
	s := t.cands[r.Prefix]
	i, ok := searchCands(s, r.Peer)
	if ok {
		s[i] = r
		return
	}
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = r
	t.cands[r.Prefix] = s
}

// unindexCand removes the peer's route from the prefix's candidates.
func (t *Table) unindexCand(peer PeerKey, prefix netip.Prefix) {
	s := t.cands[prefix]
	i, ok := searchCands(s, peer)
	if !ok {
		return
	}
	copy(s[i:], s[i+1:])
	s[len(s)-1] = nil
	// Keep the (possibly empty) slice so a withdraw/re-announce cycle
	// reuses its capacity instead of reallocating.
	t.cands[prefix] = s[:len(s)-1]
}

// setBest installs r as the Loc-RIB entry for prefix, maintaining the
// by-length lookup buckets; nil r removes the entry.
func (t *Table) setBest(prefix netip.Prefix, r *Route) {
	if prefix.Bits() < 0 || prefix.Bits() > maxPrefixBits {
		panic(fmt.Sprintf("rib: invalid prefix %v", prefix))
	}
	if r == nil {
		delete(t.best, prefix)
		if m := t.byLen[prefix.Bits()]; m != nil {
			delete(m, prefix)
		}
		return
	}
	t.best[prefix] = r
	m := t.byLen[prefix.Bits()]
	if m == nil {
		m = make(map[netip.Prefix]*Route)
		t.byLen[prefix.Bits()] = m
	}
	m[prefix] = r
}

// Change describes one Loc-RIB transition for a prefix.
type Change struct {
	Prefix   netip.Prefix
	Old, New *Route // nil = no route
}

// Changed reports whether the transition is material (route added,
// removed, or replaced with different attributes/source).
func (c Change) Changed() bool {
	switch {
	case c.Old == nil && c.New == nil:
		return false
	case (c.Old == nil) != (c.New == nil):
		return true
	default:
		return c.Old.Peer != c.New.Peer || c.Old.Local != c.New.Local ||
			!c.Old.Attrs.Equal(c.New.Attrs)
	}
}

// SetAdjIn installs r into the Adj-RIB-In of r.Peer (implicit
// withdrawal of any previous route for the prefix from that peer) and
// re-runs the decision process for the prefix.
func (t *Table) SetAdjIn(r *Route) Change {
	if r.Peer == "" {
		panic("rib: SetAdjIn with empty peer key")
	}
	m := t.adjIn[r.Peer]
	if m == nil {
		m = make(map[netip.Prefix]*Route)
		t.adjIn[r.Peer] = m
	}
	m[r.Prefix] = r
	t.indexCand(r)
	return t.decide(r.Prefix)
}

// WithdrawAdjIn removes the peer's route for prefix and re-decides.
func (t *Table) WithdrawAdjIn(peer PeerKey, prefix netip.Prefix) Change {
	if m := t.adjIn[peer]; m != nil {
		delete(m, prefix)
	}
	t.unindexCand(peer, prefix)
	return t.decide(prefix)
}

// AdjIn returns the peer's current route for prefix, if any.
func (t *Table) AdjIn(peer PeerKey, prefix netip.Prefix) (*Route, bool) {
	r, ok := t.adjIn[peer][prefix]
	return r, ok
}

// AdjInPeerKeys returns every peer with a non-empty Adj-RIB-In,
// sorted — the deterministic enumeration order for dumps and
// snapshots.
func (t *Table) AdjInPeerKeys() []PeerKey {
	out := make([]PeerKey, 0, len(t.adjIn))
	for k, m := range t.adjIn {
		if len(m) > 0 {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AdjInPrefixes returns all prefixes present in the peer's Adj-RIB-In,
// sorted.
func (t *Table) AdjInPrefixes(peer PeerKey) []netip.Prefix {
	m := t.adjIn[peer]
	out := make([]netip.Prefix, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return idr.PrefixLess(out[i], out[j]) })
	return out
}

// DropPeer removes the peer's entire Adj-RIB-In (session failure) and
// re-decides every affected prefix, returning the material changes.
func (t *Table) DropPeer(peer PeerKey) []Change {
	m := t.adjIn[peer]
	if m == nil {
		return nil
	}
	prefixes := make([]netip.Prefix, 0, len(m))
	for p := range m {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return idr.PrefixLess(prefixes[i], prefixes[j]) })
	delete(t.adjIn, peer)
	var out []Change
	for _, p := range prefixes {
		t.unindexCand(peer, p)
		if c := t.decide(p); c.Changed() {
			out = append(out, c)
		}
	}
	return out
}

// Originate installs a locally-originated route and re-decides.
func (t *Table) Originate(prefix netip.Prefix, attrs wire.PathAttrs) Change {
	t.local[prefix] = &Route{Prefix: prefix, Attrs: attrs, Local: true}
	return t.decide(prefix)
}

// WithdrawLocal removes a locally-originated route and re-decides.
func (t *Table) WithdrawLocal(prefix netip.Prefix) Change {
	delete(t.local, prefix)
	return t.decide(prefix)
}

// Best returns the Loc-RIB entry for prefix, if any.
func (t *Table) Best(prefix netip.Prefix) (*Route, bool) {
	r, ok := t.best[prefix]
	return r, ok
}

// BestRoutes returns the whole Loc-RIB, sorted by prefix.
func (t *Table) BestRoutes() []*Route {
	out := make([]*Route, 0, len(t.best))
	for _, r := range t.best {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return idr.PrefixLess(out[i].Prefix, out[j].Prefix) })
	return out
}

// Prefixes returns every prefix known to any RIB, sorted.
func (t *Table) Prefixes() []netip.Prefix {
	set := make(map[netip.Prefix]bool, len(t.cands)+len(t.local))
	for p := range t.local {
		set[p] = true
	}
	for p, s := range t.cands {
		if len(s) > 0 {
			set[p] = true
		}
	}
	out := make([]netip.Prefix, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return idr.PrefixLess(out[i], out[j]) })
	return out
}

// Lookup returns the Loc-RIB route whose prefix contains addr,
// preferring the longest match — the data-plane forwarding decision.
// It walks the by-length buckets from most to least specific, probing
// the single masked prefix that could contain addr at each populated
// length, so cost scales with the number of distinct prefix lengths
// rather than the Loc-RIB size.
func (t *Table) Lookup(addr netip.Addr) (*Route, bool) {
	for bits := addr.BitLen(); bits >= 0; bits-- {
		m := t.byLen[bits]
		if len(m) == 0 {
			continue
		}
		p, err := addr.Prefix(bits)
		if err != nil {
			continue
		}
		if r, ok := m[p]; ok {
			return r, true
		}
	}
	return nil, false
}

// decide re-runs the decision process for prefix by walking the
// prefix's candidate index — already sorted by peer key, so the
// iteration order (and therefore every MED tie-break) is deterministic
// and identical to the historical sorted-peers scan, without
// allocating or sorting per UPDATE.
func (t *Table) decide(prefix netip.Prefix) Change {
	old := t.best[prefix]
	var best *Route
	if lr, ok := t.local[prefix]; ok {
		best = lr
	}
	for _, r := range t.cands[prefix] {
		if Better(r, best) {
			best = r
		}
	}
	t.setBest(prefix, best)
	return Change{Prefix: prefix, Old: old, New: best}
}

// AdjOut tracks what has actually been advertised to each peer, so the
// update sender can emit minimal diffs and correct withdrawals.
type AdjOut struct {
	routes map[PeerKey]map[netip.Prefix]wire.PathAttrs
}

// NewAdjOut returns an empty Adj-RIB-Out.
func NewAdjOut() *AdjOut {
	return &AdjOut{routes: make(map[PeerKey]map[netip.Prefix]wire.PathAttrs)}
}

// Get returns the attributes last advertised to peer for prefix.
func (a *AdjOut) Get(peer PeerKey, prefix netip.Prefix) (wire.PathAttrs, bool) {
	attrs, ok := a.routes[peer][prefix]
	return attrs, ok
}

// Set records an advertisement.
func (a *AdjOut) Set(peer PeerKey, prefix netip.Prefix, attrs wire.PathAttrs) {
	m := a.routes[peer]
	if m == nil {
		m = make(map[netip.Prefix]wire.PathAttrs)
		a.routes[peer] = m
	}
	m[prefix] = attrs
}

// Delete records a withdrawal, reporting whether the prefix had been
// advertised.
func (a *AdjOut) Delete(peer PeerKey, prefix netip.Prefix) bool {
	m := a.routes[peer]
	if _, ok := m[prefix]; !ok {
		return false
	}
	delete(m, prefix)
	return true
}

// DropPeer forgets everything advertised to peer (session reset),
// returning the previously advertised prefixes, sorted.
func (a *AdjOut) DropPeer(peer PeerKey) []netip.Prefix {
	m := a.routes[peer]
	out := make([]netip.Prefix, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	delete(a.routes, peer)
	sort.Slice(out, func(i, j int) bool { return idr.PrefixLess(out[i], out[j]) })
	return out
}

// Peers returns every peer with a non-empty Adj-RIB-Out, sorted —
// the deterministic enumeration order for snapshots.
func (a *AdjOut) Peers() []PeerKey {
	out := make([]PeerKey, 0, len(a.routes))
	for k, m := range a.routes {
		if len(m) > 0 {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Prefixes returns the prefixes currently advertised to peer, sorted.
func (a *AdjOut) Prefixes(peer PeerKey) []netip.Prefix {
	m := a.routes[peer]
	out := make([]netip.Prefix, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return idr.PrefixLess(out[i], out[j]) })
	return out
}
